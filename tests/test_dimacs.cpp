// Tests for DIMACS(+XOR) parsing, writing, and Cnf utilities.

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

TEST(Dimacs, ParsesPlainCnf) {
  std::istringstream in(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  Cnf cnf = parse_dimacs(in);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<Lit>{mk_lit(0), ~mk_lit(1)}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<Lit>{mk_lit(1), mk_lit(2)}));
  EXPECT_TRUE(cnf.xors.empty());
}

TEST(Dimacs, ParsesXorClauses) {
  std::istringstream in(
      "p cnf 3 2\n"
      "x1 2 3 0\n"
      "x-1 2 0\n");
  Cnf cnf = parse_dimacs(in);
  ASSERT_EQ(cnf.xors.size(), 2u);
  EXPECT_EQ(cnf.xors[0].first, (std::vector<Var>{0, 1, 2}));
  EXPECT_TRUE(cnf.xors[0].second);  // x1^x2^x3 = 1
  EXPECT_EQ(cnf.xors[1].first, (std::vector<Var>{0, 1}));
  EXPECT_FALSE(cnf.xors[1].second);  // ~x1^x2 = 1 <=> x1^x2 = 0
}

// Parse `text`, which must fail, and return the thrown DimacsError.
DimacsError parse_error(const std::string& text) {
  std::istringstream in(text);
  try {
    parse_dimacs(in);
  } catch (const DimacsError& e) {
    return e;
  }
  ADD_FAILURE() << "expected DimacsError for: " << text;
  return DimacsError(0, "no error");
}

TEST(Dimacs, RejectsMalformedHeader) {
  std::istringstream in("p sat 3 1\n1 0\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);

  const DimacsError wrong_fmt = parse_error("p sat 3 1\n1 0\n");
  EXPECT_EQ(wrong_fmt.line(), 1u);
  EXPECT_NE(std::string(wrong_fmt.what()).find("expected 'p cnf'"),
            std::string::npos);

  const DimacsError truncated = parse_error("p cnf 3\n");
  EXPECT_EQ(truncated.line(), 1u);
  EXPECT_NE(std::string(truncated.what()).find("malformed problem line"),
            std::string::npos);

  const DimacsError negative = parse_error("p cnf -3 1\n1 0\n");
  EXPECT_EQ(negative.line(), 1u);
  EXPECT_NE(std::string(negative.what()).find("negative count"),
            std::string::npos);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  std::istringstream in("p cnf 2 1\n1 2\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);

  // The error names the offending 1-based line, with and without a
  // trailing newline and regardless of what follows the broken clause.
  const DimacsError eof = parse_error("p cnf 2 1\n1 2");
  EXPECT_EQ(eof.line(), 2u);
  EXPECT_NE(std::string(eof.what()).find("not 0-terminated"),
            std::string::npos);
  EXPECT_NE(std::string(eof.what()).find("line 2"), std::string::npos);

  const DimacsError mid_file = parse_error("p cnf 2 3\n1 0\n1 2\n-1 0\n");
  EXPECT_EQ(mid_file.line(), 3u);

  const DimacsError in_xor = parse_error("p cnf 2 1\nx1 2\n");
  EXPECT_EQ(in_xor.line(), 2u);
}

TEST(Dimacs, RejectsJunkLiteral) {
  const DimacsError junk = parse_error("p cnf 2 1\n1 z 0\n");
  EXPECT_EQ(junk.line(), 2u);
  EXPECT_NE(std::string(junk.what()).find("got 'z'"), std::string::npos);
}

TEST(Dimacs, RejectsTrailingTokens) {
  const DimacsError trailing = parse_error("p cnf 2 1\n1 0 2\n");
  EXPECT_EQ(trailing.line(), 2u);
  EXPECT_NE(std::string(trailing.what()).find("after the terminating 0"),
            std::string::npos);
}

TEST(Dimacs, WriteParseRoundTrip) {
  Cnf cnf;
  cnf.num_vars = 5;
  cnf.clauses = {{mk_lit(0), ~mk_lit(3)}, {mk_lit(4)}};
  cnf.xors = {{{0, 1, 2}, true}, {{2, 4}, false}};

  std::ostringstream out;
  write_dimacs(cnf, out);
  std::istringstream in(out.str());
  Cnf parsed = parse_dimacs(in);

  EXPECT_EQ(parsed.num_vars, cnf.num_vars);
  EXPECT_EQ(parsed.clauses, cnf.clauses);
  EXPECT_EQ(parsed.xors, cnf.xors);
}

TEST(Dimacs, WritesEmptyXorWithParityAsEmptyClause) {
  // An empty XOR asserting parity 1 is plain falsity; the writer must not
  // silently drop it or the round-trip flips UNSAT to SAT.
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.xors = {{{}, true}, {{}, false}};
  std::ostringstream out;
  write_dimacs(cnf, out);
  std::istringstream in(out.str());
  const Cnf parsed = parse_dimacs(in);
  ASSERT_EQ(parsed.clauses.size(), 1u);
  EXPECT_TRUE(parsed.clauses[0].empty());
  EXPECT_FALSE(parsed.satisfied_by({false}));
}

TEST(Dimacs, SatisfiedByChecksClausesAndXors) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{mk_lit(0), mk_lit(1)}};
  cnf.xors = {{{1, 2}, true}};
  EXPECT_TRUE(cnf.satisfied_by({true, false, true}));
  EXPECT_FALSE(cnf.satisfied_by({false, false, true}));   // clause fails
  EXPECT_FALSE(cnf.satisfied_by({true, true, true}));     // xor fails
}

TEST(Dimacs, LoadIntoSolverAgreesWithReference) {
  std::istringstream in(
      "p cnf 4 3\n"
      "1 2 0\n"
      "-3 4 0\n"
      "x1 3 4 0\n");
  Cnf cnf = parse_dimacs(in);
  const auto models = reference_all_models(cnf);
  Solver s;
  ASSERT_TRUE(cnf.load_into(s));
  EXPECT_EQ(s.solve(), models.empty() ? Status::Unsat : Status::Sat);
}

TEST(Dimacs, LoadIntoCanonicalizesClauses) {
  // The loader must drop tautologies and merge duplicate literals before
  // the clauses reach the solver. Observe the stream through the proof
  // axiom hook, which records clauses exactly as the solver receives them.
  std::istringstream in(
      "p cnf 3 4\n"
      "1 -1 2 0\n"   // tautology: must vanish entirely
      "2 2 3 0\n"    // duplicate literal: stored once
      "-3 1 -3 0\n"  // duplicate negative literal
      "1 2 3 0\n");  // already canonical
  Cnf cnf = parse_dimacs(in);

  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  Solver s(opts);
  EXPECT_TRUE(cnf.load_into(s));

  ASSERT_EQ(proof.formula().size(), 3u);  // tautology never arrived
  // load_into sorts by literal code (positive before negative per var).
  EXPECT_EQ(proof.formula()[0], (IntClause{2, 3}));
  EXPECT_EQ(proof.formula()[1], (IntClause{1, -3}));
  EXPECT_EQ(proof.formula()[2], (IntClause{1, 2, 3}));

  // Canonicalization must not change satisfiability.
  EXPECT_EQ(s.solve(), Status::Sat);
  const auto reference = reference_all_models(cnf);
  EXPECT_FALSE(reference.empty());
}

TEST(Dimacs, GrowsVarCountFromLiterals) {
  // Header says 2 vars but a clause mentions var 5.
  std::istringstream in("p cnf 2 1\n5 0\n");
  Cnf cnf = parse_dimacs(in);
  EXPECT_EQ(cnf.num_vars, 5);
}

}  // namespace
}  // namespace tp::sat
