// Tests for DIMACS(+XOR) parsing, writing, and Cnf utilities.

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

TEST(Dimacs, ParsesPlainCnf) {
  std::istringstream in(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  Cnf cnf = parse_dimacs(in);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<Lit>{mk_lit(0), ~mk_lit(1)}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<Lit>{mk_lit(1), mk_lit(2)}));
  EXPECT_TRUE(cnf.xors.empty());
}

TEST(Dimacs, ParsesXorClauses) {
  std::istringstream in(
      "p cnf 3 2\n"
      "x1 2 3 0\n"
      "x-1 2 0\n");
  Cnf cnf = parse_dimacs(in);
  ASSERT_EQ(cnf.xors.size(), 2u);
  EXPECT_EQ(cnf.xors[0].first, (std::vector<Var>{0, 1, 2}));
  EXPECT_TRUE(cnf.xors[0].second);  // x1^x2^x3 = 1
  EXPECT_EQ(cnf.xors[1].first, (std::vector<Var>{0, 1}));
  EXPECT_FALSE(cnf.xors[1].second);  // ~x1^x2 = 1 <=> x1^x2 = 0
}

TEST(Dimacs, RejectsMalformedHeader) {
  std::istringstream in("p sat 3 1\n1 0\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  std::istringstream in("p cnf 2 1\n1 2\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);
}

TEST(Dimacs, WriteParseRoundTrip) {
  Cnf cnf;
  cnf.num_vars = 5;
  cnf.clauses = {{mk_lit(0), ~mk_lit(3)}, {mk_lit(4)}};
  cnf.xors = {{{0, 1, 2}, true}, {{2, 4}, false}};

  std::ostringstream out;
  write_dimacs(cnf, out);
  std::istringstream in(out.str());
  Cnf parsed = parse_dimacs(in);

  EXPECT_EQ(parsed.num_vars, cnf.num_vars);
  EXPECT_EQ(parsed.clauses, cnf.clauses);
  EXPECT_EQ(parsed.xors, cnf.xors);
}

TEST(Dimacs, SatisfiedByChecksClausesAndXors) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{mk_lit(0), mk_lit(1)}};
  cnf.xors = {{{1, 2}, true}};
  EXPECT_TRUE(cnf.satisfied_by({true, false, true}));
  EXPECT_FALSE(cnf.satisfied_by({false, false, true}));   // clause fails
  EXPECT_FALSE(cnf.satisfied_by({true, true, true}));     // xor fails
}

TEST(Dimacs, LoadIntoSolverAgreesWithReference) {
  std::istringstream in(
      "p cnf 4 3\n"
      "1 2 0\n"
      "-3 4 0\n"
      "x1 3 4 0\n");
  Cnf cnf = parse_dimacs(in);
  const auto models = reference_all_models(cnf);
  Solver s;
  ASSERT_TRUE(cnf.load_into(s));
  EXPECT_EQ(s.solve(), models.empty() ? Status::Unsat : Status::Sat);
}

TEST(Dimacs, GrowsVarCountFromLiterals) {
  // Header says 2 vars but a clause mentions var 5.
  std::istringstream in("p cnf 2 1\n5 0\n");
  Cnf cnf = parse_dimacs(in);
  EXPECT_EQ(cnf.num_vars, 5);
}

}  // namespace
}  // namespace tp::sat
