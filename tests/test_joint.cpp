// Tests for joint reconstruction across adjacent trace-cycles.

#include <gtest/gtest.h>

#include "can/forensics.hpp"
#include "timeprint/joint.hpp"

namespace tp::core {
namespace {

TEST(Joint, SingleWindowEqualsPlainReconstruction) {
  auto enc = TimestampEncoding::random_constrained(16, 9, 4, 3);
  Logger logger(enc);
  const Signal s = Signal::from_change_cycles(16, {2, 3, 9});
  const LogEntry entry = logger.log(s);

  Reconstructor plain(enc);
  auto a = plain.reconstruct(entry);
  JointReconstructor joint(enc);
  auto b = joint.reconstruct({entry});
  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  EXPECT_EQ(a.signals.size(), b.signals.size());
}

TEST(Joint, TwoWindowsFactorize) {
  // Without span properties, solutions of two windows are the cartesian
  // product of each window's solutions.
  auto enc = TimestampEncoding::random_constrained(12, 8, 4, 5);
  Logger logger(enc);
  f2::Rng rng(9);
  const Signal s0 = Signal::random_with_changes(12, 3, rng);
  const Signal s1 = Signal::random_with_changes(12, 2, rng);
  const LogEntry e0 = logger.log(s0);
  const LogEntry e1 = logger.log(s1);

  Reconstructor plain(enc);
  const std::size_t n0 = plain.reconstruct(e0).signals.size();
  const std::size_t n1 = plain.reconstruct(e1).signals.size();

  JointReconstructor joint(enc);
  auto jr = joint.reconstruct({e0, e1});
  ASSERT_TRUE(jr.complete());
  EXPECT_EQ(jr.signals.size(), n0 * n1);
  for (const Signal& s : jr.signals) {
    EXPECT_EQ(s.length(), 24u);
    // Each half must abstract to its window's entry.
    Signal lo(12), hi(12);
    for (std::size_t i = 0; i < 12; ++i) {
      lo.set_change(i, s.has_change(i));
      hi.set_change(i, s.has_change(12 + i));
    }
    EXPECT_EQ(logger.log(lo), e0);
    EXPECT_EQ(logger.log(hi), e1);
  }
}

TEST(Joint, SpanPropertyCrossesBoundary) {
  // A pattern straddling the boundary: changes at cycles 10, 11 (window 0)
  // and 12, 13 (window 1) of the concatenated span.
  auto enc = TimestampEncoding::random_constrained(12, 8, 4, 7);
  Logger logger(enc);
  Signal lo(12), hi(12);
  lo.set_change(10);
  lo.set_change(11);
  hi.set_change(0);
  hi.set_change(1);
  const LogEntry e0 = logger.log(lo);
  const LogEntry e1 = logger.log(hi);

  // Span property: four consecutive changes starting somewhere in [8, 16).
  std::vector<bool> pattern(4, true);
  can::FrameAtUnknownStart prop(24, pattern, 8, 16);

  JointReconstructor joint(enc);
  joint.add_property(prop);
  auto jr = joint.reconstruct({e0, e1});
  ASSERT_TRUE(jr.complete());
  ASSERT_FALSE(jr.signals.empty());
  for (const Signal& s : jr.signals) {
    EXPECT_TRUE(prop.holds(s));
  }
  // The actual concatenated signal is among the solutions.
  Signal actual(24);
  for (std::size_t c : {10u, 11u, 12u, 13u}) actual.set_change(c);
  EXPECT_NE(std::find(jr.signals.begin(), jr.signals.end(), actual),
            jr.signals.end());
}

TEST(Joint, InconsistentEntriesAreUnsat) {
  auto enc = TimestampEncoding::one_hot(8);
  // k = 1 with a zero timeprint is impossible under one-hot.
  JointReconstructor joint(enc);
  auto jr = joint.reconstruct({{f2::BitVec(8), 1}, {f2::BitVec(8), 0}});
  EXPECT_TRUE(jr.complete());
  EXPECT_TRUE(jr.signals.empty());
}

TEST(Joint, ThreeWindows) {
  auto enc = TimestampEncoding::one_hot(6);  // unambiguous per window
  Logger logger(enc);
  f2::Rng rng(4);
  std::vector<Signal> parts;
  std::vector<LogEntry> entries;
  for (int w = 0; w < 3; ++w) {
    parts.push_back(Signal::random_with_changes(6, 2, rng));
    entries.push_back(logger.log(parts.back()));
  }
  JointReconstructor joint(enc);
  auto jr = joint.reconstruct(entries);
  ASSERT_TRUE(jr.complete());
  ASSERT_EQ(jr.signals.size(), 1u);
  for (int w = 0; w < 3; ++w) {
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(jr.signals[0].has_change(static_cast<std::size_t>(w) * 6 + i),
                parts[static_cast<std::size_t>(w)].has_change(i));
    }
  }
}

}  // namespace
}  // namespace tp::core
