// Tests for the abstract solver boundary (sat/interface.hpp) and the
// racing portfolio backend (sat/portfolio.hpp):
//
//  * interface conformance — the same fixture suite runs against both the
//    single sat::Solver and PortfolioSolver via SolverFactory;
//  * first-wins determinism — complete enumerations report the same model
//    set (compared by fingerprint) regardless of which member wins which
//    race;
//  * UNSAT-under-assumptions parity — failed() is a clause over the
//    caller's assumption literals on every backend;
//  * clause-import fuzz — 200 random incremental instances solved by a
//    4-member sharing portfolio against a single-solver reference;
//  * proof ownership — a portfolio UNSAT is certified by member 0's DRAT
//    stream, checked by the independent DratChecker;
//  * clone()/set_tracer thread-safety — the TSan regression for the
//    "clones must not share a ProofSink; a Tracer is shared but locks"
//    contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "sat/allsat.hpp"
#include "sat/drat.hpp"
#include "sat/interface.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

std::unique_ptr<SolverInterface> make_backend(SolverBackend backend,
                                              const SolverOptions& opts = {},
                                              std::size_t members = 3) {
  PortfolioOptions popts;
  popts.members = members;
  return SolverFactory::make(backend, opts, popts);
}

// ---------------------------------------------------------------------------
// Interface conformance: identical fixtures against both backends.
// ---------------------------------------------------------------------------

class Conformance : public ::testing::TestWithParam<SolverBackend> {
 protected:
  std::unique_ptr<SolverInterface> make(const SolverOptions& opts = {}) const {
    return make_backend(GetParam(), opts);
  }
};

TEST_P(Conformance, EmptyFormulaIsSat) {
  auto s = make();
  EXPECT_EQ(s->solve(), Status::Sat);
  EXPECT_TRUE(s->okay());
}

TEST_P(Conformance, UnitClausesFixTheModel) {
  auto s = make();
  const Var a = s->new_var();
  const Var b = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a)}));
  ASSERT_TRUE(s->add_clause({~mk_lit(b)}));
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(a), LBool::True);
  EXPECT_EQ(s->model(b), LBool::False);
  EXPECT_EQ(s->model_value(mk_lit(b)), LBool::False);
  EXPECT_EQ(s->model_value(~mk_lit(b)), LBool::True);
  EXPECT_EQ(s->fixed_value(a), LBool::True);
  EXPECT_EQ(s->fixed_value(b), LBool::False);
}

TEST_P(Conformance, ContradictionIsUnsatAndSticky) {
  auto s = make();
  const Var a = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a)}));
  EXPECT_FALSE(s->add_clause({~mk_lit(a)}));
  EXPECT_FALSE(s->okay());
  EXPECT_EQ(s->solve(), Status::Unsat);
  EXPECT_FALSE(s->simplify());
}

TEST_P(Conformance, XorSystemIsRespected) {
  auto s = make();
  std::vector<Var> x;
  for (int i = 0; i < 4; ++i) x.push_back(s->new_var());
  ASSERT_TRUE(s->add_xor({x[0], x[1]}, true));
  ASSERT_TRUE(s->add_xor({x[1], x[2]}, true));
  ASSERT_TRUE(s->add_xor({x[2], x[3]}, false));
  ASSERT_TRUE(s->add_clause({mk_lit(x[0])}));
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(x[0]), LBool::True);
  EXPECT_EQ(s->model(x[1]), LBool::False);
  EXPECT_EQ(s->model(x[2]), LBool::True);
  EXPECT_EQ(s->model(x[3]), LBool::True);
}

TEST_P(Conformance, AssumptionsApplyToOneSolveOnly) {
  auto s = make();
  const Var a = s->new_var();
  // Assumed ~a: model must set a false.
  s->assume(~mk_lit(a));
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(a), LBool::False);
  // The assumption queue is cleared: a is free again.
  s->assume(mk_lit(a));
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(a), LBool::True);
}

TEST_P(Conformance, FailedIsAClauseOverTheAssumptions) {
  auto s = make();
  const Var a = s->new_var();
  const Var b = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a), mk_lit(b)}));
  const std::vector<Lit> assumptions = {~mk_lit(a), ~mk_lit(b)};
  ASSERT_EQ(s->solve_assuming(assumptions), Status::Unsat);
  const std::vector<Lit>& failed = s->failed();
  ASSERT_FALSE(failed.empty());
  for (const Lit l : failed) {
    // Each failed literal is the negation of one of the assumptions.
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), ~l),
              assumptions.end());
  }
  // The instance itself is still satisfiable.
  EXPECT_EQ(s->solve(), Status::Sat);
}

TEST_P(Conformance, CloneIsIndependent) {
  auto s = make();
  const Var a = s->new_var();
  const Var b = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a), mk_lit(b)}));
  auto c = s->clone();
  // The second unit may already conflict during propagation, so its return
  // value is not asserted — the clone being Unsat afterwards is.
  c->add_clause({~mk_lit(a)});
  c->add_clause({~mk_lit(b)});
  EXPECT_EQ(c->solve(), Status::Unsat);
  // The original never saw the clone's units.
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_TRUE(s->model(a) == LBool::True || s->model(b) == LBool::True);
}

TEST_P(Conformance, EnumerationThroughInterfaceIsComplete) {
  auto s = make();
  std::vector<Var> x;
  for (int i = 0; i < 3; ++i) x.push_back(s->new_var());
  // Exactly-one over three variables: three models.
  ASSERT_TRUE(s->add_clause({mk_lit(x[0]), mk_lit(x[1]), mk_lit(x[2])}));
  ASSERT_TRUE(s->add_clause({~mk_lit(x[0]), ~mk_lit(x[1])}));
  ASSERT_TRUE(s->add_clause({~mk_lit(x[0]), ~mk_lit(x[2])}));
  ASSERT_TRUE(s->add_clause({~mk_lit(x[1]), ~mk_lit(x[2])}));
  const AllSatResult r = enumerate_models(*s, x);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.models.size(), 3u);
}

TEST_P(Conformance, BudgetReturnsUnknownAndStaysUsable) {
  auto s = make();
  // A small hard instance: 14-variable odd parity plus exclusion clauses.
  std::vector<Var> x;
  for (int i = 0; i < 14; ++i) x.push_back(s->new_var());
  ASSERT_TRUE(s->add_xor(x, true));
  SolveLimits tight;
  tight.max_conflicts = 0;
  const Status st = s->solve(tight);
  // Either the backend finished within the budget (legal: limits are
  // polled) or it reports Unknown; it must stay usable either way.
  EXPECT_TRUE(st == Status::Unknown || st == Status::Sat);
  EXPECT_EQ(s->solve(), Status::Sat);
}

TEST_P(Conformance, InterruptTokenCancelsCooperatively) {
  auto s = make();
  std::vector<Var> x;
  for (int i = 0; i < 10; ++i) x.push_back(s->new_var());
  ASSERT_TRUE(s->add_xor(x, true));
  std::atomic<bool> stop{true};  // pre-set: the solve must bail out
  SolveLimits limits;
  limits.interrupt = &stop;
  EXPECT_EQ(s->solve(limits), Status::Unknown);
  EXPECT_EQ(s->solve(), Status::Sat);
}

TEST_P(Conformance, StatsAccumulate) {
  auto s = make();
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s->new_var());
  ASSERT_TRUE(s->add_xor(x, false));
  ASSERT_TRUE(s->add_clause({mk_lit(x[0]), mk_lit(x[1])}));
  ASSERT_EQ(s->solve(), Status::Sat);
  const SolverStats st = s->stats();
  EXPECT_GE(st.decisions + st.propagations, 1);
  EXPECT_EQ(s->num_vars(), 8);
  EXPECT_GE(s->num_clauses(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, Conformance,
                         ::testing::Values(SolverBackend::Single,
                                           SolverBackend::Portfolio),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Randomized parity instances shared by the determinism / parity / fuzz
// suites below.
// ---------------------------------------------------------------------------

struct RandomInstance {
  int num_vars = 0;
  std::vector<std::pair<std::vector<Var>, bool>> xors;
  std::vector<std::vector<Lit>> clauses;
};

RandomInstance random_instance(std::mt19937& rng, int num_vars, int num_xors,
                               int num_clauses) {
  RandomInstance inst;
  inst.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int j = 0; j < num_xors; ++j) {
    std::set<Var> row;
    std::uniform_int_distribution<int> arity(2, 5);
    const int n = arity(rng);
    while (static_cast<int>(row.size()) < n) row.insert(var(rng));
    inst.xors.emplace_back(std::vector<Var>(row.begin(), row.end()),
                           coin(rng) == 1);
  }
  for (int j = 0; j < num_clauses; ++j) {
    std::set<Var> vars;
    std::uniform_int_distribution<int> arity(2, 4);
    const int n = arity(rng);
    while (static_cast<int>(vars.size()) < n) vars.insert(var(rng));
    std::vector<Lit> clause;
    for (const Var v : vars) clause.emplace_back(v, coin(rng) == 1);
    inst.clauses.push_back(std::move(clause));
  }
  return inst;
}

std::vector<Var> load(SolverInterface& s, const RandomInstance& inst) {
  std::vector<Var> vars;
  for (int i = 0; i < inst.num_vars; ++i) vars.push_back(s.new_var());
  for (const auto& [row, rhs] : inst.xors) s.add_xor(row, rhs);
  for (const auto& clause : inst.clauses) s.add_clause(clause);
  return vars;
}

bool satisfies(const RandomInstance& inst, const std::vector<bool>& model) {
  for (const auto& [row, rhs] : inst.xors) {
    bool parity = false;
    for (const Var v : row) parity ^= model[static_cast<std::size_t>(v)];
    if (parity != rhs) return false;
  }
  for (const auto& clause : inst.clauses) {
    bool sat = false;
    for (const Lit l : clause) {
      sat = sat || (model[static_cast<std::size_t>(l.var())] != l.negated());
    }
    if (!sat) return false;
  }
  return true;
}

std::uint64_t fingerprint(const std::vector<bool>& model) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const bool b : model) {
    h ^= b ? 0x9eu : 0x31u;
    h *= 1099511628211ull;
  }
  return h;
}

// The model *set* of a complete enumeration is a property of the formula;
// which member wins which race must not change it. Fingerprints of the
// sorted set compare equal across backends.
TEST(PortfolioDeterminism, CompleteEnumerationsMatchSingleBackend) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 25; ++round) {
    const RandomInstance inst = random_instance(rng, 10, 5, 6);
    std::multiset<std::uint64_t> prints[2];
    const SolverBackend backends[2] = {SolverBackend::Single,
                                       SolverBackend::Portfolio};
    for (int b = 0; b < 2; ++b) {
      auto s = make_backend(backends[b], SolverOptions{}, 4);
      const std::vector<Var> vars = load(*s, inst);
      const AllSatResult r = enumerate_models(*s, vars);
      ASSERT_TRUE(r.complete()) << "round " << round;
      for (const auto& model : r.models) {
        EXPECT_TRUE(satisfies(inst, model)) << "round " << round;
        prints[b].insert(fingerprint(model));
      }
    }
    EXPECT_EQ(prints[0], prints[1]) << "round " << round;
  }
}

TEST(PortfolioParity, UnsatUnderAssumptionsAgreesWithSingleBackend) {
  std::mt19937 rng(77);
  int unsat_seen = 0;
  for (int round = 0; round < 40; ++round) {
    const RandomInstance inst = random_instance(rng, 12, 8, 10);
    auto single = make_backend(SolverBackend::Single);
    auto port = make_backend(SolverBackend::Portfolio, SolverOptions{}, 4);
    const std::vector<Var> sv = load(*single, inst);
    const std::vector<Var> pv = load(*port, inst);
    ASSERT_EQ(sv.size(), pv.size());

    // A random assumption cube over the first few variables.
    std::uniform_int_distribution<int> coin(0, 1);
    std::vector<Lit> cube;
    for (int i = 0; i < 4; ++i) cube.emplace_back(sv[static_cast<std::size_t>(i)], coin(rng) == 1);

    const Status ss = single->solve_assuming(cube);
    const Status ps = port->solve_assuming(cube);
    EXPECT_EQ(ss, ps) << "round " << round;
    if (ps == Status::Unsat) {
      ++unsat_seen;
      for (const Lit l : port->failed()) {
        EXPECT_NE(std::find(cube.begin(), cube.end(), ~l), cube.end())
            << "failed() literal is not the negation of an assumption";
      }
    } else if (ps == Status::Sat) {
      std::vector<bool> model;
      for (const Var v : pv) model.push_back(port->model(v) == LBool::True);
      EXPECT_TRUE(satisfies(inst, model)) << "round " << round;
      for (const Lit l : cube) {
        EXPECT_EQ(port->model_value(l), LBool::True)
            << "assumption not honoured in round " << round;
      }
    }
  }
  EXPECT_GT(unsat_seen, 0) << "fixture never exercised the UNSAT path";
}

// 200 random instances, each driven through several races on one sharing
// portfolio so learnt-clause import happens between solves; every verdict
// is compared against a fresh single-solver reference.
TEST(PortfolioFuzz, ClauseImportPreservesVerdicts) {
  std::mt19937 rng(987654321);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int round = 0; round < 200; ++round) {
    const RandomInstance inst = random_instance(rng, 14, 9, 12);
    PortfolioOptions popts;
    popts.members = 4;
    popts.share_max_lbd = 4;       // aggressive sharing to stress import
    popts.share_max_clauses = 128;
    auto port = SolverFactory::make(SolverBackend::Portfolio, SolverOptions{},
                                    popts);
    const std::vector<Var> pv = load(*port, inst);

    for (int race = 0; race < 3; ++race) {
      std::vector<Lit> cube;
      for (int i = 0; i < 3; ++i) {
        cube.emplace_back(pv[static_cast<std::size_t>((race * 3 + i) % inst.num_vars)],
                          coin(rng) == 1);
      }
      auto ref = make_backend(SolverBackend::Single);
      load(*ref, inst);
      const Status expect = ref->solve_assuming(cube);
      const Status got = port->solve_assuming(cube);
      ASSERT_EQ(got, expect) << "round " << round << " race " << race;
      if (got == Status::Sat) {
        std::vector<bool> model;
        for (const Var v : pv) model.push_back(port->model(v) == LBool::True);
        ASSERT_TRUE(satisfies(inst, model))
            << "round " << round << " race " << race;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Proof ownership and the clone()/set_tracer thread-safety contract.
// ---------------------------------------------------------------------------

TEST(PortfolioProof, UnsatVerdictIsDratCheckable) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  PortfolioOptions popts;
  popts.members = 4;
  auto s = SolverFactory::make(SolverBackend::Portfolio, opts, popts);

  // Pigeonhole PHP(3,2): 3 pigeons, 2 holes — UNSAT with a short proof.
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s->new_var();
  }
  for (const auto& row : p) s->add_clause({mk_lit(row[0]), mk_lit(row[1])});
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s->add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  EXPECT_EQ(s->solve(), Status::Unsat);

  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  std::vector<ProofOp> ops = proof.ops();
  ops.push_back(ProofOp{ProofOp::Kind::Add, {}});  // final empty clause
  const DratChecker::Result r = checker.check(ops);
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_TRUE(r.proved_unsat);
}

TEST(PortfolioProof, SatVerdictsStillWorkInProofMode) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  auto s = SolverFactory::make(SolverBackend::Portfolio, opts, {});
  const Var a = s->new_var();
  const Var b = s->new_var();
  s->add_clause({mk_lit(a), mk_lit(b)});
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_TRUE(s->model(a) == LBool::True || s->model(b) == LBool::True);
}

// clone() must detach the ProofSink: a clone driven to UNSAT on another
// thread must never write into the original's stream (which would
// interleave two derivations and corrupt both proofs).
TEST(CloneSafety, CloneDetachesProofSink) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  Solver s(opts);
  const Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  const std::size_t ops_before = proof.ops().size();

  auto c = s.clone();
  c->add_clause({~mk_lit(a)});
  EXPECT_EQ(c->solve(), Status::Unsat);
  // The clone's refutation left no trace in the original's proof.
  EXPECT_EQ(proof.ops().size(), ops_before);
}

// The TSan regression for the satellite bugfix: a Tracer is shared by
// clones *by design* (it locks internally), so concurrent traced solves on
// clones must be race-free. Run under -fsanitize=thread in CI.
TEST(CloneSafety, SharedTracerAcrossCloneThreadsIsRaceFree) {
  std::ostringstream sink;
  obs::Tracer tracer(sink);
  SolverOptions opts;
  opts.tracer = &tracer;
  Solver base(opts);
  std::vector<Var> x;
  for (int i = 0; i < 12; ++i) x.push_back(base.new_var());
  base.add_xor(x, true);

  std::vector<std::unique_ptr<SolverInterface>> clones;
  for (int i = 0; i < 4; ++i) clones.push_back(base.clone());
  std::vector<std::thread> threads;
  threads.reserve(clones.size());
  for (auto& c : clones) {
    threads.emplace_back([&c] {
      c->set_tracer(nullptr);  // exercise the setter concurrently
      ASSERT_EQ(c->solve(), Status::Sat);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(base.solve(), Status::Sat);
}

TEST(CloneSafety, TracedPortfolioRaceIsRaceFree) {
  std::ostringstream sink;
  obs::Tracer tracer(sink);
  SolverOptions opts;
  opts.tracer = &tracer;
  PortfolioOptions popts;
  popts.members = 4;
  auto s = SolverFactory::make(SolverBackend::Portfolio, opts, popts);
  std::vector<Var> x;
  for (int i = 0; i < 12; ++i) x.push_back(s->new_var());
  s->add_xor(x, true);
  s->add_clause({mk_lit(x[0]), mk_lit(x[1])});
  EXPECT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->solve(), Status::Sat);  // second race reuses warm members
}

// ---------------------------------------------------------------------------
// Portfolio-specific bookkeeping.
// ---------------------------------------------------------------------------

TEST(PortfolioStats, RacesAndWinsAreCounted) {
  PortfolioOptions popts;
  popts.members = 3;
  PortfolioSolver s(SolverOptions{}, popts);
  ASSERT_EQ(s.members(), 3u);
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.new_var());
  s.add_xor(x, false);
  ASSERT_EQ(s.solve(), Status::Sat);
  ASSERT_EQ(s.solve(), Status::Sat);
  const PortfolioSolver::Stats& st = s.portfolio_stats();
  EXPECT_EQ(st.races, 2);
  EXPECT_EQ(st.sat_races, 2);
  std::int64_t wins = 0;
  for (const std::int64_t w : st.wins) wins += w;
  EXPECT_EQ(wins, 2);
}

TEST(PortfolioStats, MembersAreDiversified) {
  PortfolioOptions popts;
  popts.members = 4;
  popts.diversity = PortfolioDiversity::Mixed;
  SolverOptions base;
  base.use_gauss = false;
  PortfolioSolver s(base, popts);
  // Member 0 runs the base configuration unchanged.
  EXPECT_EQ(s.member_options(0).use_gauss, base.use_gauss);
  EXPECT_EQ(s.member_options(0).restart_base, base.restart_base);
  // At least one sibling differs from the base in some knob.
  bool any_diverse = false;
  for (std::size_t i = 1; i < s.members(); ++i) {
    const SolverOptions& o = s.member_options(i);
    any_diverse = any_diverse || o.use_gauss != base.use_gauss ||
                  o.restart_base != base.restart_base ||
                  o.var_decay != base.var_decay ||
                  o.default_polarity != base.default_polarity ||
                  o.xor_chunk_size != base.xor_chunk_size ||
                  o.phase_saving != base.phase_saving;
  }
  EXPECT_TRUE(any_diverse);
}

TEST(PortfolioStats, SinglemEmberPortfolioDegradesGracefully) {
  PortfolioOptions popts;
  popts.members = 1;
  auto s = SolverFactory::make(SolverBackend::Portfolio, SolverOptions{}, popts);
  const Var a = s->new_var();
  s->add_clause({mk_lit(a)});
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(a), LBool::True);
}

}  // namespace
}  // namespace tp::sat
