// Tests for temporal properties: concrete evaluation, SAT encoding
// faithfulness (models of the encoding == signals satisfying the
// property), and negation.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <memory>

#include "sat/allsat.hpp"
#include "sat/solver.hpp"
#include "timeprint/properties.hpp"

namespace tp::core {
namespace {

using sat::Solver;
using sat::Var;

// Enumerate all 2^m signals, split them by `holds`, and check that the SAT
// encoding of the property accepts exactly the satisfying ones.
void check_encoding_faithful(const Property& p, std::size_t m) {
  Solver solver;
  std::vector<Var> x;
  for (std::size_t i = 0; i < m; ++i) x.push_back(solver.new_var());
  p.encode(solver, x);
  auto result = sat::enumerate_models(solver, x);
  ASSERT_TRUE(result.complete());

  std::set<std::vector<bool>> sat_models(result.models.begin(), result.models.end());
  std::size_t expected = 0;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << m); ++bits) {
    Signal s(m);
    std::vector<bool> as_vec(m);
    for (std::size_t i = 0; i < m; ++i) {
      const bool v = (bits >> i) & 1;
      as_vec[i] = v;
      if (v) s.set_change(i);
    }
    if (p.holds(s)) {
      ++expected;
      EXPECT_TRUE(sat_models.contains(as_vec))
          << p.describe() << ": missing model " << s.to_string();
    } else {
      EXPECT_FALSE(sat_models.contains(as_vec))
          << p.describe() << ": spurious model " << s.to_string();
    }
  }
  EXPECT_EQ(sat_models.size(), expected) << p.describe();
}

TEST(ExistsConsecutivePair, Holds) {
  ExistsConsecutivePair p;
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {3, 4})));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(8, {3, 5})));
  EXPECT_FALSE(p.holds(Signal(8)));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {0, 1, 5})));
}

TEST(ExistsConsecutivePair, EncodingFaithful) {
  check_encoding_faithful(ExistsConsecutivePair{}, 6);
}

TEST(ExistsConsecutivePair, NegationIsNoConsecutivePair) {
  ExistsConsecutivePair p;
  auto n = p.negation();
  ASSERT_NE(n, nullptr);
  Signal pair = Signal::from_change_cycles(8, {2, 3});
  Signal spread = Signal::from_change_cycles(8, {2, 4});
  EXPECT_TRUE(p.holds(pair));
  EXPECT_FALSE(n->holds(pair));
  EXPECT_FALSE(p.holds(spread));
  EXPECT_TRUE(n->holds(spread));
}

TEST(NoConsecutivePair, EncodingFaithful) {
  check_encoding_faithful(NoConsecutivePair{}, 6);
}

TEST(ChangesInConsecutivePairs, Holds) {
  ChangesInConsecutivePairs p;
  EXPECT_TRUE(p.holds(Signal(8)));  // vacuously: no runs
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {1, 2})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {0, 1, 4, 5})));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(8, {3})));          // isolated
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(8, {2, 3, 4})));    // run of 3
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(8, {2, 3, 4, 5}))); // run of 4
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {6, 7})));        // at boundary
}

TEST(ChangesInConsecutivePairs, EncodingFaithful) {
  check_encoding_faithful(ChangesInConsecutivePairs{}, 7);
}

TEST(ChangesInConsecutivePairs, Figure4UniqueReconstruction) {
  // Paper §3.3: among the 8 candidate signals of the didactic example only
  // one has all changes in consecutive pairs.
  ChangesInConsecutivePairs p;
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(16, {3, 4, 9, 10})));
}

TEST(MinChangesBefore, Holds) {
  MinChangesBefore p(/*deadline=*/8, /*min_changes=*/3);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(16, {0, 3, 7})));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(16, {0, 3, 8})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(16, {0, 1, 2, 3})));
}

TEST(MinChangesBefore, EncodingFaithful) {
  check_encoding_faithful(MinChangesBefore(4, 2), 6);
}

TEST(MinChangesBefore, NegationRoundTrip) {
  MinChangesBefore p(10, 3);
  auto n = p.negation();
  ASSERT_NE(n, nullptr);
  f2::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    Signal s = Signal::random_with_changes(16, rng.below(17), rng);
    EXPECT_NE(p.holds(s), n->holds(s)) << s.to_string();
  }
}

TEST(MaxChangesBefore, EncodingFaithful) {
  check_encoding_faithful(MaxChangesBefore(4, 1), 6);
}

TEST(MaxChangesBefore, NegationRoundTrip) {
  MaxChangesBefore p(9, 2);
  auto n = p.negation();
  ASSERT_NE(n, nullptr);
  f2::Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    Signal s = Signal::random_with_changes(16, rng.below(17), rng);
    EXPECT_NE(p.holds(s), n->holds(s)) << s.to_string();
  }
}

TEST(Windows, HoldsAndNegation) {
  ChangeInWindow in(3, 6);
  NoChangeInWindow none(3, 6);
  Signal inside = Signal::from_change_cycles(10, {4});
  Signal outside = Signal::from_change_cycles(10, {7});
  EXPECT_TRUE(in.holds(inside));
  EXPECT_FALSE(in.holds(outside));
  EXPECT_FALSE(none.holds(inside));
  EXPECT_TRUE(none.holds(outside));
  EXPECT_FALSE(in.negation()->holds(inside));
  EXPECT_TRUE(none.negation()->holds(inside));
}

TEST(Windows, EncodingFaithful) {
  check_encoding_faithful(ChangeInWindow(2, 5), 6);
  check_encoding_faithful(NoChangeInWindow(2, 5), 6);
  check_encoding_faithful(ExactlyKInWindow(1, 5, 2), 6);
}

TEST(MinGap, Holds) {
  MinGap p(3);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(12, {0, 3, 6})));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(12, {0, 2})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(12, {5})));
  EXPECT_TRUE(p.holds(Signal(12)));
}

TEST(MinGap, EncodingFaithful) {
  check_encoding_faithful(MinGap(3), 7);
}

TEST(KnownValue, HoldsAndEncoding) {
  KnownValue p(3, true);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(8, {3})));
  EXPECT_FALSE(p.holds(Signal(8)));
  check_encoding_faithful(p, 5);
  check_encoding_faithful(KnownValue(2, false), 5);
  EXPECT_FALSE(p.negation()->holds(Signal::from_change_cycles(8, {3})));
}

TEST(OneChangeDelayed, VariantsConstruction) {
  // Reference changes at 2, 5; both can be delayed by 1 (3 and 6 free).
  Signal ref = Signal::from_change_cycles(10, {2, 5});
  OneChangeDelayed p(ref, 1);
  ASSERT_EQ(p.variants().size(), 2u);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(10, {3, 5})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(10, {2, 6})));
  EXPECT_FALSE(p.holds(ref));  // zero delays is not "one delayed"
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(10, {3, 6})));  // two delays
}

TEST(OneChangeDelayed, CollisionAndBoundaryVariantsExcluded) {
  // Change at 4 cannot delay onto the change at 5; change at 9 cannot
  // leave the trace-cycle.
  Signal ref = Signal::from_change_cycles(10, {4, 5, 9});
  OneChangeDelayed p(ref, 1);
  // Only the change at 5 can be delayed (to 6).
  ASSERT_EQ(p.variants().size(), 1u);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(10, {4, 6, 9})));
}

TEST(OneChangeDelayed, EncodingFaithful) {
  check_encoding_faithful(OneChangeDelayed(Signal::from_change_cycles(6, {1, 4}), 1), 6);
}

TEST(OneChangeDelayed, NoFeasibleVariantIsUnsat) {
  Signal ref = Signal::from_change_cycles(4, {3});  // delay would leave cycle
  OneChangeDelayed p(ref, 1);
  EXPECT_TRUE(p.variants().empty());
  Solver solver;
  std::vector<Var> x;
  for (int i = 0; i < 4; ++i) x.push_back(solver.new_var());
  p.encode(solver, x);
  EXPECT_EQ(solver.solve(), sat::Status::Unsat);
}

TEST(SuffixDelayed, VariantsConstruction) {
  // Reference changes at 2, 5, 8; cut at 2 shifts all, cut at 5 shifts the
  // last two, cut at 8 shifts the last one.
  Signal ref = Signal::from_change_cycles(12, {2, 5, 8});
  SuffixDelayed p(ref, 1);
  EXPECT_EQ(p.variants().size(), 3u);
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(12, {3, 6, 9})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(12, {2, 6, 9})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(12, {2, 5, 9})));
  EXPECT_FALSE(p.holds(ref));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(12, {3, 5, 9})));  // not a suffix
}

TEST(SuffixDelayed, BoundaryCutInfeasible) {
  // The last change cannot shift past the trace-cycle end.
  Signal ref = Signal::from_change_cycles(6, {1, 5});
  SuffixDelayed p(ref, 1);
  // Only... shifting suffix from cycle 1 would move 5 -> 6 (out); cut at 5
  // also moves 5 -> 6 (out). No feasible variant.
  EXPECT_TRUE(p.variants().empty());
}

TEST(SuffixDelayed, CollisionVariantsExcluded) {
  // Shifting the suffix starting at 4 moves 4 onto the unshifted 3? No:
  // changes at 3 and 4; cut at 4 moves 4->5 (fine); cut at 3 moves both
  // (3->4, 4->5, fine).
  Signal ref = Signal::from_change_cycles(8, {3, 4});
  SuffixDelayed p(ref, 1);
  EXPECT_EQ(p.variants().size(), 2u);
  // With delay collapsing onto a later unshifted change: 2,3 with cut at
  // 2 only (3 shifts too) — but cut at 2 moving 2->3 collides only if 3
  // does not shift; here both shift, so it is feasible.
  Signal ref2 = Signal::from_change_cycles(8, {2, 3});
  SuffixDelayed p2(ref2, 1);
  EXPECT_EQ(p2.variants().size(), 2u);
}

TEST(SuffixDelayed, EncodingFaithful) {
  check_encoding_faithful(SuffixDelayed(Signal::from_change_cycles(6, {1, 3}), 1), 6);
}

TEST(MaxGap, Holds) {
  MaxGap p(3);
  EXPECT_TRUE(p.holds(Signal(10)));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(10, {4})));
  EXPECT_TRUE(p.holds(Signal::from_change_cycles(10, {1, 4, 7})));
  EXPECT_FALSE(p.holds(Signal::from_change_cycles(10, {1, 6})));
}

TEST(MaxGap, EncodingFaithful) {
  check_encoding_faithful(MaxGap(2), 6);
  check_encoding_faithful(MaxGap(3), 7);
}

TEST(Conjunction, HoldsAndEncoding) {
  std::vector<std::unique_ptr<Property>> parts;
  parts.push_back(std::make_unique<ChangeInWindow>(0, 3));
  parts.push_back(std::make_unique<NoChangeInWindow>(3, 6));
  Conjunction c(std::move(parts));
  EXPECT_TRUE(c.holds(Signal::from_change_cycles(6, {1})));
  EXPECT_FALSE(c.holds(Signal::from_change_cycles(6, {1, 4})));
  EXPECT_FALSE(c.holds(Signal(6)));
  check_encoding_faithful(c, 6);
  EXPECT_NE(c.describe().find("all of"), std::string::npos);
}

TEST(Properties, DescribeIsNonEmpty) {
  EXPECT_FALSE(ExistsConsecutivePair{}.describe().empty());
  EXPECT_FALSE(MinChangesBefore(4, 2).describe().empty());
  EXPECT_FALSE(MinGap(2).describe().empty());
  EXPECT_FALSE(OneChangeDelayed(Signal(4), 1).describe().empty());
}

}  // namespace
}  // namespace tp::core
