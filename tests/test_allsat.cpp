// Tests for AllSAT enumeration: completeness against the brute-force
// reference, projection behaviour, and limits.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/cardinality.hpp"
#include "sat/dimacs.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

std::vector<Var> make_vars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  return vars;
}

TEST(AllSat, UnconstrainedEnumeratesAllAssignments) {
  Solver s;
  auto vars = make_vars(s, 4);
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 16u);
  std::set<std::vector<bool>> unique(result.models.begin(), result.models.end());
  EXPECT_EQ(unique.size(), 16u);  // no duplicates
}

TEST(AllSat, UnsatEnumeratesNothing) {
  Solver s;
  Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  s.add_clause({~mk_lit(a)});
  auto result = enumerate_models(s, {a});
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.models.empty());
}

TEST(AllSat, MaxModelsCapStopsEarly) {
  Solver s;
  auto vars = make_vars(s, 6);
  auto result = enumerate_models(s, vars, {.max_models = 5, .limits = {}});
  EXPECT_EQ(result.models.size(), 5u);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.final_status, Status::Sat);
}

TEST(AllSat, ProjectionHidesAuxiliaryVariables) {
  // exactly-1 of 4 vars, with sequential-counter auxiliaries present: the
  // projected enumeration must yield exactly 4 models, not one per full
  // assignment of the auxiliaries.
  Solver s;
  auto vars = make_vars(s, 4);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 1, CardEncoding::SequentialCounter));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 4u);
}

TEST(AllSat, MatchesReferenceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    f2::Rng rng(seed);
    Cnf cnf;
    cnf.num_vars = 10;
    for (int i = 0; i < 14; ++i) {
      std::vector<Lit> c;
      const int len = 2 + static_cast<int>(rng.below(2));
      for (int j = 0; j < len; ++j) {
        c.push_back(Lit(static_cast<Var>(rng.below(10)), rng.flip()));
      }
      cnf.clauses.push_back(std::move(c));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<Var> xv;
      for (int j = 0; j < 4; ++j) xv.push_back(static_cast<Var>(rng.below(10)));
      cnf.xors.emplace_back(std::move(xv), rng.flip());
    }

    const auto reference = reference_all_models(cnf);

    Solver s;
    cnf.load_into(s);
    std::vector<Var> projection;
    for (Var v = 0; v < cnf.num_vars; ++v) projection.push_back(v);
    auto result = enumerate_models(s, projection);
    ASSERT_TRUE(result.complete()) << "seed " << seed;

    auto sorted_ref = reference;
    auto sorted_got = result.models;
    std::sort(sorted_ref.begin(), sorted_ref.end());
    std::sort(sorted_got.begin(), sorted_got.end());
    EXPECT_EQ(sorted_got, sorted_ref) << "seed " << seed;
  }
}

TEST(AllSat, SecondsToModelIsMonotone) {
  Solver s;
  auto vars = make_vars(s, 5);
  auto result = enumerate_models(s, vars, {.max_models = 10, .limits = {}});
  ASSERT_EQ(result.seconds_to_model.size(), result.models.size());
  for (std::size_t i = 1; i < result.seconds_to_model.size(); ++i) {
    EXPECT_LE(result.seconds_to_model[i - 1], result.seconds_to_model[i]);
  }
  EXPECT_LE(result.seconds_to_model.back(), result.seconds_total);
}

TEST(AllSat, SolverRemainsUsableAfterEnumeration) {
  Solver s;
  auto vars = make_vars(s, 3);
  auto r1 = enumerate_models(s, vars, {.max_models = 2, .limits = {}});
  EXPECT_EQ(r1.models.size(), 2u);
  // Add another constraint and keep enumerating the remaining models.
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0])}));
  auto r2 = enumerate_models(s, vars);
  EXPECT_TRUE(r2.complete());
  // Total distinct models with x0=1 is 4; two may already be blocked.
  EXPECT_LE(r2.models.size(), 4u);
  for (const auto& m : r2.models) EXPECT_TRUE(m[0]);
}

TEST(AllSat, AssumptionsRestrictTheEnumeration) {
  Solver s;
  auto vars = make_vars(s, 4);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 1, CardEncoding::SequentialCounter));

  AllSatOptions opts;
  opts.assumptions = {~mk_lit(vars[0])};
  auto result = enumerate_models(s, vars, opts);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 3u);  // exactly-1 with v0 excluded
  for (const auto& m : result.models) EXPECT_FALSE(m[0]);
}

TEST(AllSat, ConflictingAssumptionsEnumerateNothingButKeepSolverUsable) {
  Solver s;
  auto vars = make_vars(s, 3);
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1])}));

  AllSatOptions opts;
  opts.assumptions = {~mk_lit(vars[0]), ~mk_lit(vars[1])};
  auto result = enumerate_models(s, vars, opts);
  EXPECT_TRUE(result.complete());  // the cube is exhausted (it is empty)
  EXPECT_TRUE(result.models.empty());
  auto unconstrained = enumerate_models(s, vars);
  EXPECT_TRUE(unconstrained.complete());
  EXPECT_GT(unconstrained.models.size(), 0u);
}

TEST(AllSat, MaxModelsCapWinsOverGenerousLimits) {
  // When the cap is hit first the run reports Sat (more models may remain),
  // not Unknown — the limit never fired.
  Solver s;
  auto vars = make_vars(s, 6);
  AllSatOptions opts;
  opts.max_models = 3;
  opts.limits.max_conflicts = 1 << 20;
  opts.limits.max_seconds = 3600.0;
  auto result = enumerate_models(s, vars, opts);
  EXPECT_EQ(result.models.size(), 3u);
  EXPECT_EQ(result.final_status, Status::Sat);
}

TEST(AllSat, ConflictLimitUnderTheCapReportsUnknown) {
  // Random XOR-heavy instances under a zero conflict budget: every
  // enumeration that needs a single conflict must stop with Unknown, and
  // whatever models it did find must be genuine (a subset of the
  // reference enumeration).
  int unknowns = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    f2::Rng rng(seed);
    Cnf cnf;
    cnf.num_vars = 9;
    for (int i = 0; i < 10; ++i) {
      std::vector<Lit> c;
      for (int j = 0; j < 2; ++j) {
        c.push_back(Lit(static_cast<Var>(rng.below(9)), rng.flip()));
      }
      cnf.clauses.push_back(std::move(c));
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<Var> xv;
      for (int j = 0; j < 4; ++j) xv.push_back(static_cast<Var>(rng.below(9)));
      cnf.xors.emplace_back(std::move(xv), rng.flip());
    }
    const auto reference = reference_all_models(cnf);

    Solver s;
    cnf.load_into(s);
    std::vector<Var> projection;
    for (Var v = 0; v < cnf.num_vars; ++v) projection.push_back(v);
    AllSatOptions opts;
    opts.limits.max_conflicts = 0;
    auto result = enumerate_models(s, projection, opts);

    EXPECT_LE(result.models.size(), reference.size()) << "seed " << seed;
    for (const auto& m : result.models) {
      EXPECT_NE(std::find(reference.begin(), reference.end(), m), reference.end())
          << "seed " << seed;
    }
    if (result.final_status == Status::Unknown) {
      ++unknowns;
      EXPECT_FALSE(result.complete());
    }
  }
  // The budget must actually have bitten somewhere across the seeds.
  EXPECT_GT(unknowns, 0);
}

TEST(AllSat, AssumptionEnumerationDoesNotPoisonLaterSolves) {
  // Regression: an assumption-restricted enumeration used to add its
  // blocking clauses permanently, so the models it found stayed excluded
  // from every later solve on the same solver. The internal guard must
  // retire them: the follow-up unrestricted enumeration sees the full
  // model space again.
  Solver s;
  auto vars = make_vars(s, 3);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 1, CardEncoding::SequentialCounter));

  AllSatOptions restricted;
  restricted.assumptions = {~mk_lit(vars[0])};
  auto r1 = enumerate_models(s, vars, restricted);
  ASSERT_TRUE(r1.complete());
  EXPECT_EQ(r1.models.size(), 2u);  // exactly-1 among {v1, v2}

  auto r2 = enumerate_models(s, vars);
  ASSERT_TRUE(r2.complete());
  EXPECT_EQ(r2.models.size(), 3u);  // all three unit models, none blocked
}

TEST(AllSat, ExplicitGuardScopesBlockingClausesToTheRun) {
  // Caller-owned guard: the run's blocking clauses stay conditional on the
  // guard, so retiring it restores the full model space — while *not*
  // retiring it keeps the blocks in force for guarded re-runs.
  Solver s;
  auto vars = make_vars(s, 3);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 1, CardEncoding::SequentialCounter));

  const Lit guard = mk_lit(s.new_var());
  AllSatOptions guarded;
  guarded.guard = guard;
  auto r1 = enumerate_models(s, vars, guarded);
  ASSERT_TRUE(r1.complete());
  EXPECT_EQ(r1.models.size(), 3u);

  // Same guard still assumed: the previous blocks hold, nothing is left.
  auto r2 = enumerate_models(s, vars, guarded);
  ASSERT_TRUE(r2.complete());
  EXPECT_TRUE(r2.models.empty());

  // Retire the guard: all of its blocking clauses become level-0
  // satisfied and the full space is visible again.
  ASSERT_TRUE(s.add_clause({~guard}));
  auto r3 = enumerate_models(s, vars);
  ASSERT_TRUE(r3.complete());
  EXPECT_EQ(r3.models.size(), 3u);
}

TEST(AllSat, WeightAwareBlockingFindsTheSameModels) {
  // With a declared fixed projection weight the blocking clauses shrink to
  // the k true literals; the enumeration must still be exhaustive and
  // duplicate-free. Cross-check against the brute-force count C(6, k).
  for (std::size_t k = 0; k <= 6; ++k) {
    Solver s;
    auto vars = make_vars(s, 6);
    std::vector<Lit> lits;
    for (Var v : vars) lits.push_back(mk_lit(v));
    ASSERT_TRUE(encode_exactly(s, lits, static_cast<int>(k),
                               CardEncoding::SequentialCounter));

    AllSatOptions opts;
    opts.fixed_weight = k;
    auto result = enumerate_models(s, vars, opts);
    ASSERT_TRUE(result.complete()) << "k = " << k;

    std::size_t expected = 1;  // C(6, k)
    for (std::size_t i = 0; i < k; ++i) expected = expected * (6 - i) / (i + 1);
    std::set<std::vector<bool>> unique(result.models.begin(), result.models.end());
    EXPECT_EQ(unique.size(), result.models.size()) << "k = " << k;
    EXPECT_EQ(result.models.size(), expected) << "k = " << k;
    for (const auto& m : result.models) {
      EXPECT_EQ(static_cast<std::size_t>(std::count(m.begin(), m.end(), true)), k);
    }
  }
}

TEST(AllSat, WeightAwareBlockingComposesWithGuardAndAssumptions) {
  // The incremental engine's exact shape: guard + assumptions +
  // fixed_weight in one run, retired afterwards, repeated with a
  // different cube. Each run must be exhaustive within its cube and leave
  // no residue for the next.
  Solver s;
  auto vars = make_vars(s, 5);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 2, CardEncoding::SequentialCounter));

  for (int round = 0; round < 3; ++round) {
    const Lit guard = mk_lit(s.new_var());
    AllSatOptions opts;
    opts.guard = guard;
    opts.fixed_weight = 2;
    opts.assumptions = {mk_lit(vars[0])};
    auto with_v0 = enumerate_models(s, vars, opts);
    ASSERT_TRUE(with_v0.complete()) << "round " << round;
    EXPECT_EQ(with_v0.models.size(), 4u) << "round " << round;  // v0 + one of 4
    ASSERT_TRUE(s.add_clause({~guard}));
  }
  auto all = enumerate_models(s, vars, {.fixed_weight = 2});
  ASSERT_TRUE(all.complete());
  EXPECT_EQ(all.models.size(), 10u);  // C(5, 2), nothing poisoned
}

}  // namespace
}  // namespace tp::sat
