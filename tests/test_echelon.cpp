// Differential tests: the word-parallel elimination kernels (Matrix via
// detail::row_reduce, Echelonizer incl. the bit-sliced batch paths)
// against the scalar reference kernels, on randomized and adversarial
// shapes. The two implementations must agree *exactly* — same pivot
// columns, same canonical particular solution (free variables 0), same
// canonical null-space basis — not just on solvability.

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "f2/echelon.hpp"
#include "f2/matrix.hpp"
#include "f2/reference.hpp"

namespace tp::f2 {
namespace {

// Random matrix with a controllable amount of adversarial structure:
// some all-zero rows, some duplicated rows (rank deficiency), plus a low
// density option so pivot columns scatter.
Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     bool inject_structure) {
  Matrix a(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) a.row(r) = BitVec::random(cols, rng);
  if (inject_structure && rows >= 4) {
    a.row(rows / 2) = BitVec(cols);                 // all-zero row
    a.row(rows - 1) = a.row(0) ^ a.row(rows / 3);   // dependent row
  }
  return a;
}

void expect_same_solution(const std::optional<LinearSolution>& got,
                          const std::optional<LinearSolution>& want) {
  ASSERT_EQ(got.has_value(), want.has_value());
  if (!got.has_value()) return;
  EXPECT_EQ(got->particular, want->particular);
  ASSERT_EQ(got->nullspace.size(), want->nullspace.size());
  for (std::size_t i = 0; i < got->nullspace.size(); ++i) {
    EXPECT_EQ(got->nullspace[i], want->nullspace[i]) << "basis vector " << i;
  }
}

// The shape grid deliberately includes cols % 64 != 0 (tail-word masking),
// cols > rows, rows > cols and single-digit sizes.
struct Shape {
  std::size_t rows, cols;
};
const Shape kShapes[] = {{1, 1},  {3, 7},   {8, 16},  {16, 8},  {13, 64},
                         {20, 65}, {64, 63}, {70, 100}, {100, 70}, {33, 129}};

TEST(Differential, RankMatchesReference) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    for (int trial = 0; trial < 8; ++trial) {
      Matrix a = random_matrix(s.rows, s.cols, rng, trial % 2 == 1);
      EXPECT_EQ(a.rank(), reference::rank(a))
          << s.rows << "x" << s.cols << " trial " << trial;
    }
  }
}

TEST(Differential, SolveMatchesReferenceOnConsistentSystems) {
  Rng rng(202);
  for (const Shape& s : kShapes) {
    for (int trial = 0; trial < 8; ++trial) {
      Matrix a = random_matrix(s.rows, s.cols, rng, trial % 2 == 0);
      // b in the column space by construction.
      BitVec b = a.multiply(BitVec::random(s.cols, rng));
      expect_same_solution(a.solve(b), reference::solve(a, b));
    }
  }
}

TEST(Differential, SolveMatchesReferenceOnArbitraryRhs) {
  Rng rng(303);
  std::size_t inconsistent_seen = 0;
  for (const Shape& s : kShapes) {
    for (int trial = 0; trial < 8; ++trial) {
      Matrix a = random_matrix(s.rows, s.cols, rng, true);
      BitVec b = BitVec::random(s.rows, rng);  // often not in column space
      auto want = reference::solve(a, b);
      expect_same_solution(a.solve(b), want);
      if (!want.has_value()) ++inconsistent_seen;
    }
  }
  // The grid must actually exercise the inconsistent branch.
  EXPECT_GT(inconsistent_seen, 0u);
}

TEST(Differential, ReduceMatchesReferenceRref) {
  Rng rng(404);
  for (const Shape& s : kShapes) {
    Matrix a = random_matrix(s.rows, s.cols, rng, true);
    std::vector<BitVec> fast, slow;
    for (std::size_t r = 0; r < s.rows; ++r) {
      fast.push_back(a.row(r));
      slow.push_back(a.row(r));
    }
    const auto fp = detail::row_reduce(fast, s.cols);
    const auto sp = reference::row_reduce(slow);
    EXPECT_EQ(fp, sp);
    for (std::size_t r = 0; r < s.rows; ++r) EXPECT_EQ(fast[r], slow[r]);
  }
}

TEST(Echelonizer, AgreesWithMatrixSolveEverywhere) {
  Rng rng(505);
  for (const Shape& s : kShapes) {
    Matrix a = random_matrix(s.rows, s.cols, rng, true);
    Echelonizer ech(a);
    EXPECT_EQ(ech.rank(), reference::rank(a));
    EXPECT_EQ(ech.rank() + ech.nullity(), s.cols);
    for (int trial = 0; trial < 6; ++trial) {
      BitVec b = trial % 2 == 0 ? a.multiply(BitVec::random(s.cols, rng))
                                : BitVec::random(s.rows, rng);
      expect_same_solution(ech.solve(b), reference::solve(a, b));
    }
  }
}

TEST(Echelonizer, TransformCarriesRowOperations) {
  Rng rng(606);
  Matrix a = random_matrix(24, 40, rng, true);
  Echelonizer ech(a);
  for (int trial = 0; trial < 10; ++trial) {
    BitVec b = BitVec::random(24, rng);
    BitVec tb = ech.transform(b);
    const bool consistent = ech.consistent_transformed(tb);
    EXPECT_EQ(consistent, reference::solve(a, b).has_value());
    if (consistent) {
      EXPECT_EQ(a.multiply(ech.particular_from_transformed(tb)), b);
    }
  }
}

// The batch kernel sweeps 64 RHS per pass; sizes straddling the chunk
// boundary (63, 64, 65, 200) catch transpose/tail bugs.
class BatchSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeTest, SolveBatchMatchesPerEntrySolve) {
  const std::size_t n = GetParam();
  Rng rng(707 + n);
  Matrix a = random_matrix(30, 50, rng, true);
  Echelonizer ech(a);
  std::vector<BitVec> rhs;
  for (std::size_t i = 0; i < n; ++i) {
    rhs.push_back(i % 3 == 0 ? BitVec::random(30, rng)
                             : a.multiply(BitVec::random(50, rng)));
  }
  const auto batch = ech.solve_batch(rhs);
  const auto transformed = ech.transform_batch(rhs);
  ASSERT_EQ(batch.size(), n);
  ASSERT_EQ(transformed.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto want = reference::solve(a, rhs[i]);
    ASSERT_EQ(batch[i].has_value(), want.has_value()) << "entry " << i;
    if (want.has_value()) EXPECT_EQ(*batch[i], want->particular) << "entry " << i;
    EXPECT_EQ(transformed[i], ech.transform(rhs[i])) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkBoundaries, BatchSizeTest,
                         ::testing::Values(1, 5, 63, 64, 65, 200));

TEST(Echelonizer, EmptyShapes) {
  // 0xN: no constraints — everything consistent, full nullity.
  Echelonizer zero_rows{Matrix(0, 5)};
  EXPECT_EQ(zero_rows.rank(), 0u);
  EXPECT_EQ(zero_rows.nullity(), 5u);
  auto sol = zero_rows.solve(BitVec(0));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->nullspace.size(), 5u);

  // Nx0: no unknowns — consistent iff b == 0.
  Echelonizer zero_cols{Matrix(3, 0)};
  EXPECT_TRUE(zero_cols.solve(BitVec(3)).has_value());
  BitVec b(3);
  b.set(1, true);
  EXPECT_FALSE(zero_cols.solve(b).has_value());

  // 0x0 and the empty batch.
  Echelonizer empty{Matrix(0, 0)};
  EXPECT_TRUE(empty.solve(BitVec(0)).has_value());
  EXPECT_TRUE(empty.solve_batch({}).empty());
}

TEST(Echelonizer, AllZeroMatrix) {
  Echelonizer ech{Matrix(6, 9)};
  EXPECT_EQ(ech.rank(), 0u);
  EXPECT_EQ(ech.nullity(), 9u);
  BitVec b(6);
  EXPECT_TRUE(ech.solve(b).has_value());
  b.set(5, true);
  EXPECT_FALSE(ech.solve(b).has_value());
}

}  // namespace
}  // namespace tp::f2
