// Tests for the logging procedure α̃, the streaming logger and TraceLog.

#include <gtest/gtest.h>

#include <sstream>

#include "timeprint/logger.hpp"

namespace tp::core {
namespace {

// The 16 timestamps of the paper's Figure 4, MSB-first strings.
const char* kFig4Timestamps[16] = {
    "00010100", "00111010", "00001111", "01000100", "00000010", "10101110",
    "01100000", "11110101", "00010111", "11100111", "10100000", "10101000",
    "10011110", "10001111", "01110000", "01101100"};

TEST(Logger, Figure4TimeprintByExplicitArithmetic) {
  // Aggregate TS(4), TS(5), TS(10), TS(11) (1-based) by XOR: the paper's
  // logged timeprint is 00000001.
  f2::BitVec tp(8);
  for (int i : {3, 4, 9, 10}) {
    tp ^= f2::BitVec::from_string(kFig4Timestamps[i]);
  }
  EXPECT_EQ(tp.to_string(), "00000001");
}

TEST(Logger, LogMatchesDefinition) {
  auto enc = TimestampEncoding::random_constrained(32, 12, 4, 7);
  Logger logger(enc);
  f2::Rng rng(3);
  for (int iter = 0; iter < 20; ++iter) {
    Signal s = Signal::random_with_changes(32, rng.below(33), rng);
    LogEntry e = logger.log(s);
    EXPECT_EQ(e.k, s.num_changes());
    f2::BitVec expect(12);
    for (std::size_t i : s.change_cycles()) expect ^= enc.timestamp(i);
    EXPECT_EQ(e.tp, expect);
  }
}

TEST(Logger, EmptySignalLogsZero) {
  auto enc = TimestampEncoding::binary(16);
  Logger logger(enc);
  LogEntry e = logger.log(Signal(16));
  EXPECT_TRUE(e.tp.is_zero());
  EXPECT_EQ(e.k, 0u);
}

TEST(Logger, XorCancellationLosesChangePairs) {
  // Two identical timestamp contributions cancel in TP but k still counts
  // them — exactly why k is logged (paper §3.1).
  auto enc = TimestampEncoding::one_hot(8);
  Logger logger(enc);
  Signal s(8);
  s.set_change(3);
  LogEntry one = logger.log(s);
  EXPECT_EQ(one.tp.popcount(), 1u);
  EXPECT_EQ(one.k, 1u);
}

TEST(StreamingLogger, EmitsOneEntryPerTraceCycle) {
  auto enc = TimestampEncoding::random_constrained(16, 10, 4, 11);
  StreamingLogger sl(enc);
  f2::Rng rng(21);
  std::vector<Signal> cycles;
  for (int c = 0; c < 5; ++c) {
    Signal s = Signal::random_with_changes(16, rng.below(17), rng);
    cycles.push_back(s);
    for (std::size_t i = 0; i < 16; ++i) sl.tick(s.has_change(i));
  }
  ASSERT_EQ(sl.log().size(), 5u);
  Logger reference(enc);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(sl.log()[c], reference.log(cycles[c])) << "trace-cycle " << c;
  }
  EXPECT_EQ(sl.cycles(), 80u);
  EXPECT_EQ(sl.phase(), 0u);
}

TEST(StreamingLogger, FlushPadsPartialCycle) {
  auto enc = TimestampEncoding::binary(8);
  StreamingLogger sl(enc);
  sl.tick(true);
  sl.tick(false);
  sl.tick(true);
  EXPECT_EQ(sl.log().size(), 0u);
  sl.flush();
  ASSERT_EQ(sl.log().size(), 1u);
  EXPECT_EQ(sl.log()[0].k, 2u);
  sl.flush();  // no-op at a boundary
  EXPECT_EQ(sl.log().size(), 1u);
}

TEST(TraceLog, TotalBitsIsConstantPerEntry) {
  // m=1000, b=24: 34 bits per entry (paper §5.2.1's 24+10).
  TraceLog log(1000, 24);
  EXPECT_EQ(log.total_bits(), 0u);
  log.append({f2::BitVec(24), 0});
  log.append({f2::BitVec(24), 3});
  EXPECT_EQ(log.total_bits(), 2u * 34u);
}

TEST(TraceLog, FirstMismatchFindsDivergence) {
  TraceLog a(16, 8), b(16, 8);
  for (int i = 0; i < 4; ++i) {
    a.append({f2::BitVec::from_uint(8, static_cast<std::uint64_t>(i)), 1});
    b.append({f2::BitVec::from_uint(8, static_cast<std::uint64_t>(i == 2 ? 99 : i)), 1});
  }
  EXPECT_EQ(a.first_mismatch(b), 2u);
  EXPECT_EQ(a.first_count_mismatch(b), 4u);  // counts all equal
}

TEST(TraceLog, FirstCountMismatch) {
  TraceLog a(16, 8), b(16, 8);
  a.append({f2::BitVec(8), 2});
  b.append({f2::BitVec(8), 2});
  a.append({f2::BitVec(8), 3});
  b.append({f2::BitVec(8), 5});
  EXPECT_EQ(a.first_count_mismatch(b), 1u);
}

TEST(TraceLog, IdenticalLogsHaveNoMismatch) {
  TraceLog a(16, 8), b(16, 8);
  a.append({f2::BitVec::from_uint(8, 5), 1});
  b.append({f2::BitVec::from_uint(8, 5), 1});
  EXPECT_EQ(a.first_mismatch(b), 1u);  // == size(): no mismatch
}

TEST(TraceLog, SaveLoadRoundTrip) {
  auto enc = TimestampEncoding::random_constrained(32, 12, 4, 13);
  StreamingLogger sl(enc);
  f2::Rng rng(31);
  for (int i = 0; i < 96; ++i) sl.tick(rng.below(4) == 0);

  std::ostringstream out;
  sl.log().save(out);
  std::istringstream in(out.str());
  TraceLog loaded = TraceLog::load(in);

  EXPECT_EQ(loaded.m(), 32u);
  EXPECT_EQ(loaded.width(), 12u);
  ASSERT_EQ(loaded.size(), sl.log().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i], sl.log()[i]);
  }
}

TEST(TraceLog, LoadRejectsGarbage) {
  std::istringstream bad("not a log\n");
  EXPECT_THROW(TraceLog::load(bad), std::runtime_error);
  std::istringstream truncated("timeprint-log m=8 b=4 n=2\n0101 1\n");
  EXPECT_THROW(TraceLog::load(truncated), std::runtime_error);
}

TEST(TraceLog, LoadRejectsImpossibleChangeCount) {
  // k is the number of changes in an m-cycle trace-cycle, so k > m cannot
  // come from the logger — only from corruption.
  std::istringstream bad("timeprint-log m=8 b=4 n=1\n0101 9\n");
  EXPECT_THROW(TraceLog::load(bad), std::runtime_error);
  std::istringstream edge("timeprint-log m=8 b=4 n=1\n0101 8\n");
  EXPECT_NO_THROW(TraceLog::load(edge));
}

TEST(TraceLog, LoadRejectsMalformedHeader) {
  std::istringstream zero_m("timeprint-log m=0 b=4 n=0\n");
  EXPECT_THROW(TraceLog::load(zero_m), std::runtime_error);
  std::istringstream zero_b("timeprint-log m=8 b=0 n=0\n");
  EXPECT_THROW(TraceLog::load(zero_b), std::runtime_error);
  std::istringstream trailing("timeprint-log m=8 b=4 n=0 extra\n");
  EXPECT_THROW(TraceLog::load(trailing), std::runtime_error);
}

TEST(TraceLog, LoadRejectsTrailingEntries) {
  // The header promises exactly n entries; more data means the header and
  // body disagree, and silently dropping the tail would hide corruption.
  std::istringstream extra("timeprint-log m=8 b=4 n=1\n0101 1\n1111 2\n");
  EXPECT_THROW(TraceLog::load(extra), std::runtime_error);
}

TEST(TraceLog, LoadRejectsNonBinaryTimeprint) {
  std::istringstream bad("timeprint-log m=8 b=4 n=1\n01x1 1\n");
  EXPECT_THROW(TraceLog::load(bad), std::runtime_error);
}

}  // namespace
}  // namespace tp::core
