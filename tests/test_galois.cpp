// Property tests for the Galois insertion of §4.1 (Lemma 1): exhaustive
// checks of both laws on small trace-cycles for every encoding scheme.

#include <gtest/gtest.h>

#include "timeprint/galois.hpp"

namespace tp::core {
namespace {

std::vector<Signal> random_signal_set(std::size_t m, std::size_t count,
                                      f2::Rng& rng) {
  std::vector<Signal> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Signal::random_with_changes(m, rng.below(m + 1), rng));
  }
  return out;
}

TEST(Galois, AlphaDeduplicates) {
  auto enc = TimestampEncoding::binary(8);
  Signal a = Signal::from_change_cycles(8, {1});
  std::vector<Signal> twice = {a, a};
  EXPECT_EQ(alpha(enc, twice).size(), 1u);
}

TEST(Galois, GammaOfAlphaContainsOriginal) {
  // γ̃(α̃(S)) always contains S (single-signal form of law 1).
  auto enc = TimestampEncoding::binary(10);
  Logger logger(enc);
  f2::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    Signal s = Signal::random_with_changes(10, rng.below(11), rng);
    auto pre = gamma(enc, logger.log(s));
    EXPECT_NE(std::find(pre.begin(), pre.end(), s), pre.end());
  }
}

TEST(Galois, GammaPreimageAllAbstractToEntry) {
  auto enc = TimestampEncoding::random_constrained(12, 8, 4, 4);
  Logger logger(enc);
  f2::Rng rng(8);
  Signal s = Signal::random_with_changes(12, 4, rng);
  const LogEntry entry = logger.log(s);
  for (const Signal& t : gamma(enc, entry)) {
    EXPECT_EQ(logger.log(t), entry);
  }
}

struct GaloisCase {
  std::size_t m;
  std::uint64_t seed;
  EncodingScheme scheme;
};

class GaloisLawTest : public ::testing::TestWithParam<GaloisCase> {
 protected:
  TimestampEncoding make_encoding() const {
    const auto& p = GetParam();
    switch (p.scheme) {
      case EncodingScheme::OneHot: return TimestampEncoding::one_hot(p.m);
      case EncodingScheme::Binary: return TimestampEncoding::binary(p.m);
      case EncodingScheme::RandomConstrained:
        return TimestampEncoding::random_constrained(p.m, p.m / 2 + 4, 4, p.seed);
      case EncodingScheme::Incremental:
        return TimestampEncoding::incremental_auto(p.m, 4);
    }
    return TimestampEncoding::one_hot(p.m);
  }
};

TEST_P(GaloisLawTest, ExtensiveLaw) {
  // F ⊆ γ(α(F)) for random F.
  auto enc = make_encoding();
  f2::Rng rng(GetParam().seed + 100);
  EXPECT_TRUE(check_extensive(enc, random_signal_set(GetParam().m, 6, rng)));
}

TEST_P(GaloisLawTest, InsertionLaw) {
  // V = α(γ(V)) for V built from reachable log entries.
  auto enc = make_encoding();
  Logger logger(enc);
  f2::Rng rng(GetParam().seed + 200);
  std::vector<LogEntry> v;
  for (int i = 0; i < 5; ++i) {
    v.push_back(logger.log(Signal::random_with_changes(GetParam().m,
                                                       rng.below(GetParam().m + 1), rng)));
  }
  EXPECT_TRUE(check_insertion(enc, v));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, GaloisLawTest,
    ::testing::Values(GaloisCase{8, 1, EncodingScheme::OneHot},
                      GaloisCase{8, 2, EncodingScheme::Binary},
                      GaloisCase{10, 3, EncodingScheme::RandomConstrained},
                      GaloisCase{10, 4, EncodingScheme::Incremental},
                      GaloisCase{12, 5, EncodingScheme::Binary},
                      GaloisCase{12, 6, EncodingScheme::RandomConstrained}));

TEST(Galois, UnreachableEntryHasEmptyPreimage) {
  // An entry with impossible (TP, k) has empty γ — and α(∅) = ∅, so the
  // insertion law only holds for reachable entries, which is what Lemma 1
  // ranges over (Log is defined as outputs of the logging procedure).
  auto enc = TimestampEncoding::one_hot(6);
  // k = 0 but a nonzero timeprint is unreachable.
  LogEntry impossible{f2::BitVec::from_uint(6, 1), 0};
  EXPECT_TRUE(gamma(enc, impossible).empty());
}

}  // namespace
}  // namespace tp::core
