// Tests for the Lion3 SoC substrate and the §5.2.2 divergence analysis.

#include <gtest/gtest.h>

#include "soc/analysis.hpp"
#include "soc/isa.hpp"
#include "soc/system.hpp"

namespace tp::soc {
namespace {

core::TimestampEncoding test_encoding() {
  return core::TimestampEncoding::random_constrained(64, 13, 4, /*seed=*/1);
}

SocSystem::Config base_config() {
  SocSystem::Config cfg;
  cfg.program = demo_image(16, 8);
  cfg.mem.wait_states = 1;
  cfg.mem.refresh_enabled = false;
  return cfg;
}

TEST(Lion3, RegisterZeroIsHardwired) {
  SocSystem::Config cfg;
  cfg.program = {loadi(0, 42), loadi(1, 7), halt()};
  SocSystem soc(cfg);
  while (!soc.halted()) soc.tick();
  EXPECT_EQ(soc.reg(0), 0);
  EXPECT_EQ(soc.reg(1), 7);
}

TEST(Lion3, AluAndBranches) {
  // Sum 1..5 with a loop.
  SocSystem::Config cfg;
  cfg.program = {
      loadi(1, 0),  // i
      loadi(2, 0),  // sum
      loadi(3, 5),  // limit
      addi(1, 1, 1),
      add(2, 2, 1),
      bne(1, 3, -3),
      halt(),
  };
  SocSystem soc(cfg);
  while (!soc.halted()) soc.tick();
  EXPECT_EQ(soc.reg(2), 15);
}

TEST(Lion3, LoadStoreRoundTrip) {
  SocSystem::Config cfg;
  cfg.program = {
      loadi(1, 0x100),
      loadi(2, 1234),
      store(2, 1, 0),
      load(3, 1, 0),
      halt(),
  };
  SocSystem soc(cfg);
  while (!soc.halted()) soc.tick();
  EXPECT_EQ(soc.reg(3), 1234);
  EXPECT_EQ(soc.memory().at(0x100), 1234u);
}

TEST(Lion3, DemoImageComputesFibonacci) {
  SocSystem::Config cfg = base_config();
  SocSystem soc(cfg);
  for (int i = 0; i < 200000 && !soc.halted(); ++i) soc.tick();
  ASSERT_TRUE(soc.halted());
  // fib table at 0x1000: 1, 1, 2, 3, 5, 8, ...
  EXPECT_EQ(soc.memory().at(0x1000), 1u);
  EXPECT_EQ(soc.memory().at(0x1004), 1u);
  EXPECT_EQ(soc.memory().at(0x1008), 2u);
  EXPECT_EQ(soc.memory().at(0x100C), 3u);
  EXPECT_EQ(soc.memory().at(0x1010), 5u);
  EXPECT_EQ(soc.memory().at(0x103C), 987u);  // fib(16)
}

TEST(Lion3, WaitStatesSlowTheCore) {
  auto run_cycles = [](unsigned ws) {
    SocSystem::Config cfg = base_config();
    cfg.mem.wait_states = ws;
    SocSystem soc(cfg);
    while (!soc.halted()) soc.tick();
    return soc.cycle();
  };
  const auto fast = run_cycles(0);
  const auto slow = run_cycles(3);
  EXPECT_GT(slow, fast);
}

TEST(Soc, RunIsDeterministic) {
  auto enc = test_encoding();
  const auto a = run_soc(base_config(), enc, 20000);
  const auto b = run_soc(base_config(), enc, 20000);
  ASSERT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.log.first_mismatch(b.log), a.log.size());
  EXPECT_EQ(a.signals.size(), a.log.size());
}

TEST(Soc, GroundTruthSignalsMatchLog) {
  auto enc = test_encoding();
  const auto result = run_soc(base_config(), enc, 20000);
  core::Logger logger(enc);
  for (std::size_t i = 0; i < result.log.size(); ++i) {
    EXPECT_EQ(logger.log(result.signals[i]), result.log[i]) << "trace-cycle " << i;
  }
}

TEST(Soc, WrongWaitStatesShowUpAsCountMismatch) {
  // The experiment's first finding: the simulation's wrong SRAM wait
  // states are exposed by differing k values.
  auto enc = test_encoding();
  SocSystem::Config hw_cfg = base_config();
  hw_cfg.mem.wait_states = 1;
  SocSystem::Config sim_cfg = base_config();
  sim_cfg.mem.wait_states = 0;  // the bug

  const auto hw = run_soc(hw_cfg, enc, 20000);
  const auto sim = run_soc(sim_cfg, enc, 20000);
  const Divergence d = compare_logs(hw.log, sim.log);
  EXPECT_LT(d.first_k_mismatch, d.compared);
}

TEST(Soc, FixedWaitStatesMatchWithoutRefresh) {
  auto enc = test_encoding();
  const auto hw = run_soc(base_config(), enc, 20000);
  const auto sim = run_soc(base_config(), enc, 20000);
  const Divergence d = compare_logs(hw.log, sim.log);
  EXPECT_EQ(d.first_entry_mismatch, d.compared);  // no divergence at all
}

SocSystem::Config fpga_config(double ambient) {
  SocSystem::Config cfg = base_config();
  cfg.program = demo_image(16, 64);
  cfg.mem.refresh_enabled = true;
  cfg.mem.ambient_c = ambient;
  cfg.mem.refresh_base_interval = 1500;
  cfg.mem.refresh_slope = 20.0;
  return cfg;
}

SocSystem::Config sim_config() {
  SocSystem::Config cfg = base_config();
  cfg.program = demo_image(16, 64);
  cfg.mem.refresh_enabled = false;  // Gaisler SRAM model: no refresh
  return cfg;
}

TEST(Soc, RefreshCausesEntryMismatchWithEqualCounts) {
  auto enc = test_encoding();
  const auto hw = run_soc(fpga_config(45.0), enc, 60000);
  const auto sim = run_soc(sim_config(), enc, 60000);
  ASSERT_GT(hw.refresh_collisions, 0u);
  const Divergence d = compare_logs(hw.log, sim.log);
  // k agrees everywhere (the refresh only delays events, never merges
  // them in this workload), but the timeprints diverge.
  EXPECT_EQ(d.first_k_mismatch, d.compared);
  EXPECT_LT(d.first_entry_mismatch, d.compared);
}

TEST(Soc, LocalizeDelayFindsTheExactCycle) {
  auto enc = test_encoding();
  const auto hw = run_soc(fpga_config(45.0), enc, 60000);
  const auto sim = run_soc(sim_config(), enc, 60000);
  const Divergence d = compare_logs(hw.log, sim.log);
  ASSERT_LT(d.first_entry_mismatch, d.compared);

  const std::size_t t = d.first_entry_mismatch;
  auto loc = localize_delay(enc, hw.log[t], sim.signals[t]);
  ASSERT_TRUE(loc.has_value());
  // Ground truth: the hardware's actual signal for that trace-cycle.
  EXPECT_EQ(loc->hw_signal, hw.signals[t]);
  // The reported cycle is a sim change that the hw moved one cycle later.
  EXPECT_TRUE(sim.signals[t].has_change(loc->delayed_cycle));
  EXPECT_FALSE(hw.signals[t].has_change(loc->delayed_cycle));
  EXPECT_TRUE(hw.signals[t].has_change(loc->delayed_cycle + 1));
}

TEST(Soc, HigherTemperatureDivergesEarlier) {
  // The paper's headline §5.2.2 observation: "this one clock-cycle delay
  // happens earlier if temperature is higher". Like the paper, which
  // re-ran the image several times per temperature, we average the first
  // mismatching trace-cycle over several runs (modelled as different
  // refresh-oscillator phases) per ambient temperature.
  auto enc = test_encoding();
  const auto sim = run_soc(sim_config(), enc, 60000);

  std::vector<double> mean_mismatch;
  for (double ambient : {25.0, 45.0, 65.0}) {
    double total = 0;
    int runs = 0;
    for (std::uint64_t phase = 0; phase < 8; ++phase) {
      SocSystem::Config cfg = fpga_config(ambient);
      cfg.mem.refresh_phase = phase * 131;
      const auto hw = run_soc(cfg, enc, 60000);
      const Divergence d = compare_logs(hw.log, sim.log);
      total += static_cast<double>(d.first_entry_mismatch);
      ++runs;
    }
    mean_mismatch.push_back(total / runs);
  }
  // Hotter silicon refreshes more often, so the first collision lands in
  // an earlier trace-cycle on average.
  EXPECT_GT(mean_mismatch[0], mean_mismatch[1]);
  EXPECT_GT(mean_mismatch[1], mean_mismatch[2]);
}

TEST(Soc, NoRefreshMeansNoCollisions) {
  auto enc = test_encoding();
  const auto result = run_soc(sim_config(), enc, 60000);
  EXPECT_EQ(result.refresh_collisions, 0u);
}

TEST(Lion3, MemcpyImageCopiesCorrectly) {
  SocSystem::Config cfg;
  cfg.program = memcpy_image(16);
  SocSystem soc(cfg);
  for (int i = 0; i < 100000 && !soc.halted(); ++i) soc.tick();
  ASSERT_TRUE(soc.halted());
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(soc.memory().at(0x3000 + i * 4), i) << i;
  }
}

TEST(Lion3, MatmulImageRunsToCompletion) {
  SocSystem::Config cfg;
  cfg.program = matmul_image(4);
  SocSystem soc(cfg);
  for (int i = 0; i < 400000 && !soc.halted(); ++i) soc.tick();
  ASSERT_TRUE(soc.halted());
  // Inner loop: acc = sum_l (A[l] + B[l]) = sum_l (l+1 + l+2) for l<4 = 24.
  EXPECT_EQ(soc.memory().at(0x6000), 24u);
  EXPECT_GT(soc.instructions(), 100u);
}

TEST(Soc, WorkloadsProduceDistinctTraceSignatures) {
  // Different software images must yield different timeprint streams —
  // the premise of using timeprints to identify what ran.
  auto enc = test_encoding();
  auto run_with = [&](std::vector<Instr> prog) {
    SocSystem::Config cfg = base_config();
    cfg.program = std::move(prog);
    return run_soc(cfg, enc, 20000);
  };
  const auto fib = run_with(demo_image(16, 8));
  const auto copy = run_with(memcpy_image(64));
  const auto mat = run_with(matmul_image(6));
  EXPECT_LT(fib.log.first_mismatch(copy.log), std::min(fib.log.size(), copy.log.size()));
  EXPECT_LT(copy.log.first_mismatch(mat.log), std::min(copy.log.size(), mat.log.size()));
}

TEST(Soc, TemperatureRisesWithActivity) {
  SocSystem::Config cfg = fpga_config(25.0);
  SocSystem soc(cfg);
  for (int i = 0; i < 30000 && !soc.halted(); ++i) soc.tick();
  EXPECT_GT(soc.temperature(), 25.0);
}

}  // namespace
}  // namespace tp::soc
