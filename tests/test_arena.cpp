// Tests for the arena-allocated clause store and the inprocessing that
// runs on top of it: ClauseArena alloc/free/compaction mechanics, solver
// garbage collection under reduce_db() and AllSAT guard literals, clone
// parity across GC, XOR search-position determinism, a vivification +
// subsumption differential fuzz against the brute-force reference, and
// DRAT certification of runs that inprocessed their clause database.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/arena.hpp"
#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

std::vector<Lit> make_lits(std::initializer_list<int> codes) {
  std::vector<Lit> out;
  for (int c : codes) out.push_back(Lit::from_code(c));
  return out;
}

// ---------------------------------------------------------- arena ----

TEST(ClauseArena, AllocStoresHeaderAndLiterals) {
  ClauseArena a;
  const auto lits = make_lits({0, 3, 5, 6});
  const ClauseRef r = a.alloc(lits, /*learnt=*/true);

  EXPECT_EQ(a.size(r), 4u);
  EXPECT_TRUE(a.learnt(r));
  EXPECT_FALSE(a.dead(r));
  EXPECT_EQ(a.lbd(r), 0u);
  EXPECT_FLOAT_EQ(a.activity(r), 0.0f);
  for (std::size_t i = 0; i < lits.size(); ++i) EXPECT_EQ(a.lit(r, i), lits[i]);

  a.set_lbd(r, 7);
  a.set_activity(r, 2.5f);
  a.swap_lits(r, 0, 3);
  EXPECT_EQ(a.lbd(r), 7u);
  EXPECT_FLOAT_EQ(a.activity(r), 2.5f);
  EXPECT_EQ(a.lit(r, 0), lits[3]);
  EXPECT_EQ(a.lit(r, 3), lits[0]);

  const ClauseRef q = a.alloc(make_lits({8, 11, 12}), /*learnt=*/false);
  EXPECT_FALSE(a.learnt(q));
  EXPECT_EQ(a.size(q), 3u);
  // The first clause is untouched by the second allocation.
  EXPECT_EQ(a.size(r), 4u);
  EXPECT_EQ(a.lit(r, 1), lits[1]);
}

TEST(ClauseArena, FreeListRecyclesExactSizedSlot) {
  ClauseArena a;
  const ClauseRef r = a.alloc(make_lits({0, 2, 4, 6, 8}), /*learnt=*/true);
  a.alloc(make_lits({1, 3, 5}), /*learnt=*/false);  // pin the buffer end
  const std::size_t before = a.buffer_words();

  a.free_clause(r);
  EXPECT_TRUE(a.dead(r));
  EXPECT_GT(a.wasted_words(), 0u);

  // A same-sized clause reuses the freed slot: same ref, no buffer growth,
  // and the waste accounting returns to zero.
  const ClauseRef r2 = a.alloc(make_lits({10, 12, 14, 16, 18}), /*learnt=*/false);
  EXPECT_EQ(r2, r);
  EXPECT_FALSE(a.dead(r2));
  EXPECT_FALSE(a.learnt(r2));
  EXPECT_EQ(a.buffer_words(), before);
  EXPECT_EQ(a.wasted_words(), 0u);
}

TEST(ClauseArena, CompactionReclaimsWasteAndForwardsRefs) {
  // Clauses wider than the free-list buckets stay dead until compaction,
  // so freeing half of them accumulates real waste.
  {
    ClauseArena fresh;
    std::vector<ClauseRef> all;
    for (int i = 0; i < 200; ++i) {
      std::vector<Lit> lits;
      for (int j = 0; j < 80; ++j) lits.push_back(Lit(Var(j), (i + j) % 2 == 0));
      all.push_back(fresh.alloc(lits, i % 3 == 0));
    }
    for (int i = 1; i < 200; i += 2) fresh.free_clause(all[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(fresh.want_gc());

    fresh.gc_begin();
    std::vector<ClauseRef> moved;
    for (int i = 0; i < 200; i += 2) {
      const ClauseRef nr = fresh.gc_move(all[static_cast<std::size_t>(i)]);
      // Moving is idempotent: a second move (a watcher seeing the clause
      // from its other side) forwards to the same new ref.
      EXPECT_EQ(fresh.gc_move(all[static_cast<std::size_t>(i)]), nr);
      EXPECT_EQ(fresh.reloc(all[static_cast<std::size_t>(i)]), nr);
      moved.push_back(nr);
    }
    const std::size_t reclaimed = fresh.gc_end();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(fresh.gc_runs(), 1);
    EXPECT_EQ(fresh.bytes_reclaimed(), static_cast<std::int64_t>(reclaimed));
    EXPECT_EQ(fresh.wasted_words(), 0u);
    EXPECT_FALSE(fresh.want_gc());

    // Survivor payloads are intact at their new addresses.
    for (std::size_t k = 0; k < moved.size(); ++k) {
      const int i = static_cast<int>(2 * k);
      ASSERT_EQ(fresh.size(moved[k]), 80u);
      EXPECT_EQ(fresh.learnt(moved[k]), i % 3 == 0);
      for (int j = 0; j < 80; ++j) {
        EXPECT_EQ(fresh.lit(moved[k], static_cast<std::size_t>(j)),
                  Lit(Var(j), (i + j) % 2 == 0));
      }
    }
  }
}

TEST(ClauseArena, WantGcNeedsBothFloorAndFraction) {
  ClauseArena a;
  // A tiny database never asks for GC, no matter the dead fraction.
  const ClauseRef r = a.alloc(make_lits({0, 2, 4, 6, 8, 10, 12, 14}), false);
  a.free_clause(r);
  EXPECT_FALSE(a.want_gc());

  // A large mostly-live database does not ask either: the floor is met
  // only together with the quarter-dead fraction.
  ClauseArena b;
  std::vector<Lit> wide;
  for (int j = 0; j < 100; ++j) wide.push_back(mk_lit(Var(j)));
  std::vector<ClauseRef> refs;
  for (int i = 0; i < 400; ++i) refs.push_back(b.alloc(wide, false));
  for (int i = 0; i < 40; ++i) b.free_clause(refs[static_cast<std::size_t>(i)]);
  EXPECT_GT(b.wasted_words(), 4096u / 2);  // floor territory...
  EXPECT_FALSE(b.want_gc());               // ...but under a quarter dead
  for (int i = 40; i < 200; ++i) b.free_clause(refs[static_cast<std::size_t>(i)]);
  EXPECT_TRUE(b.want_gc());
}

// ------------------------------------------------- solver-level GC ----

void add_pigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(static_cast<std::size_t>(pigeons));
  for (auto& row : p) {
    for (int j = 0; j < holes; ++j) row.push_back(s.new_var());
  }
  for (const auto& row : p) {
    std::vector<Lit> c;
    for (Var x : row) c.push_back(mk_lit(x));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (std::size_t j = 0; j < static_cast<std::size_t>(holes); ++j) {
    for (std::size_t i1 = 0; i1 < p.size(); ++i1) {
      for (std::size_t i2 = i1 + 1; i2 < p.size(); ++i2) {
        ASSERT_TRUE(s.add_clause({~mk_lit(p[i1][j]), ~mk_lit(p[i2][j])}));
      }
    }
  }
}

/// Options that churn the learnt database hard enough to drive the arena
/// through mark-and-compact cycles inside a small test instance.
SolverOptions churn_options() {
  SolverOptions o;
  o.reduce_base = 30;
  o.reduce_increment = 0;
  o.restart_base = 5;
  return o;
}

TEST(ArenaGC, RunsOnHardInstanceAndAnswerUnchanged) {
  Solver s(churn_options());
  add_pigeonhole(s, 8, 7);
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_GE(s.stats().arena_gc_runs, 1);
  EXPECT_GT(s.stats().arena_bytes_reclaimed, 0);
}

Cnf random_instance(std::uint64_t seed, int nvars = 12) {
  f2::Rng rng(seed);
  Cnf cnf;
  cnf.num_vars = nvars;
  const int clauses = 10 + static_cast<int>(rng.below(8));
  for (int i = 0; i < clauses; ++i) {
    std::vector<Lit> c;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int j = 0; j < len; ++j) {
      c.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(nvars))),
                      rng.flip()));
    }
    cnf.clauses.push_back(std::move(c));
  }
  const int xors = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < xors; ++i) {
    std::vector<Var> xv;
    const int len = 2 + static_cast<int>(rng.below(7));
    for (int j = 0; j < len; ++j) {
      xv.push_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(nvars))));
    }
    cnf.xors.emplace_back(std::move(xv), rng.flip());
  }
  return cnf;
}

TEST(ArenaGC, CloneAfterReduceDbParity) {
  // Run the original deep enough that reduce_db() has freed clauses (and
  // GC has likely compacted), clone mid-problem, and check that original
  // and clone finish the remaining search in lockstep: the flat-copied
  // arena must leave the clone in a bit-identical search state.
  Solver s(churn_options());
  add_pigeonhole(s, 7, 6);
  SolveLimits budget;
  budget.max_conflicts = 400;
  ASSERT_EQ(s.solve(budget), Status::Unknown);
  EXPECT_GT(s.stats().removed_clauses, 0);

  auto c = s.clone();
  const SolverStats at_clone = s.stats();  // clone starts from zero stats

  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_EQ(c->solve(), Status::Unsat);

  EXPECT_EQ(s.stats().conflicts - at_clone.conflicts, c->stats().conflicts);
  EXPECT_EQ(s.stats().decisions - at_clone.decisions, c->stats().decisions);
  EXPECT_EQ(s.stats().propagations - at_clone.propagations,
            c->stats().propagations);
  EXPECT_EQ(s.stats().restarts - at_clone.restarts, c->stats().restarts);
}

TEST(ArenaGC, CloneParityOnSatInstances) {
  // Same lockstep check on satisfiable CNF+XOR instances: identical
  // models, not just identical effort.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Cnf cnf = random_instance(seed * 7919 + 13, /*nvars=*/14);
    Solver s(churn_options());
    if (!cnf.load_into(s)) continue;
    SolveLimits budget;
    budget.max_conflicts = 5;
    const Status first = s.solve(budget);

    auto c = s.clone();
    const SolverStats at_clone = s.stats();
    const Status a = s.solve();
    const Status b = c->solve();
    ASSERT_EQ(a, b) << "seed " << seed << " after " << int(first);
    EXPECT_EQ(s.stats().decisions - at_clone.decisions, c->stats().decisions);
    if (a == Status::Sat) {
      for (Var v = 0; v < cnf.num_vars; ++v) {
        EXPECT_EQ(s.model_value(v), c->model_value(v)) << "seed " << seed;
      }
    }
  }
}

TEST(ArenaGC, UnderAllSatGuardLiterals) {
  // Blocking clauses of a guarded AllSAT run live in the arena alongside
  // problem clauses; database churn (reduce/vivify/GC) while the guard is
  // active must not lose or corrupt them. The enumeration must stay
  // complete and the solver reusable after the guard retires.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Cnf cnf = random_instance(seed * 104729 + 1, /*nvars=*/13);
    const auto reference = reference_all_models(cnf);

    Solver s(churn_options());
    ASSERT_TRUE(cnf.load_into(s) || reference.empty());
    if (!s.okay()) continue;
    const Var g = s.new_var();
    std::vector<Var> projection;
    for (Var v = 0; v < cnf.num_vars; ++v) projection.push_back(v);

    AllSatOptions opts;
    opts.guard = mk_lit(g);
    const AllSatResult res = enumerate_models(s, projection, opts);
    ASSERT_TRUE(res.complete()) << "seed " << seed;

    auto models = res.models;
    std::sort(models.begin(), models.end());
    auto expect = reference;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(models, expect) << "seed " << seed;

    // Retire the guard: the solver is reusable and sees every model again.
    ASSERT_TRUE(s.add_clause({~mk_lit(g)}));
    const Status st = s.solve();
    EXPECT_EQ(st, reference.empty() ? Status::Unsat : Status::Sat);
  }
}

TEST(ArenaGC, ParallelBatchSolvers) {
  // One solver per thread, each churning its own arena through GC — the
  // sanitizer job runs this under TSan to prove the arena holds no hidden
  // shared state across solver instances.
  const unsigned n = std::max(4u, std::thread::hardware_concurrency() / 2);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < n; ++t) {
    threads.emplace_back([t, &failures] {
      Solver s(churn_options());
      add_pigeonhole(s, 7, 6);
      if (s.solve() != Status::Unsat) failures.fetch_add(1);
      if (s.stats().arena_gc_runs < 1) failures.fetch_add(1);
      (void)t;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------------------- XOR clone determinism ----

TEST(XorCloneDeterminism, SearchPosTravelsWithClone) {
  // XorConstraint::search_pos is a circular scan cursor; if a clone reset
  // it, the clone's watch replacement would visit variables in a different
  // order and its search would diverge from the original's. Interrupt a
  // run mid-search (cursors well off their start positions), clone, and
  // demand lockstep on the remaining search.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    f2::Rng rng(seed * 6151 + 3);
    Solver s;  // default options: watched XORs, chunk size 10
    std::vector<Var> vars;
    for (int i = 0; i < 24; ++i) vars.push_back(s.new_var());
    for (int i = 0; i < 14; ++i) {
      std::vector<Var> xv;
      const int len = 4 + static_cast<int>(rng.below(14));
      for (int j = 0; j < len; ++j) {
        xv.push_back(vars[rng.below(vars.size())]);
      }
      if (!s.add_xor(std::move(xv), rng.flip())) break;
    }
    for (int i = 0; i < 20; ++i) {
      std::vector<Lit> c;
      for (int j = 0; j < 3; ++j) {
        c.push_back(Lit(vars[rng.below(vars.size())], rng.flip()));
      }
      if (!s.add_clause(std::move(c))) break;
    }
    if (!s.okay()) continue;

    SolveLimits budget;
    budget.max_conflicts = 10;
    (void)s.solve(budget);

    auto c = s.clone();
    const SolverStats at_clone = s.stats();
    const Status a = s.solve();
    const Status b = c->solve();
    ASSERT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(s.stats().decisions - at_clone.decisions, c->stats().decisions)
        << "seed " << seed;
    EXPECT_EQ(s.stats().xor_propagations - at_clone.xor_propagations,
              c->stats().xor_propagations)
        << "seed " << seed;
    if (a == Status::Sat) {
      for (Var v : vars) EXPECT_EQ(s.model_value(v), c->model_value(v));
    }
  }
}

// ------------------------------------------------- inprocessing ----

TEST(Inprocessing, FuzzAgainstReference) {
  // 300 random CNF+XOR instances, solved under configurations that stress
  // vivification, subsumption and arena churn, checked against the
  // brute-force reference for satisfiability (and model validity).
  std::vector<SolverOptions> configs;
  {
    SolverOptions o;  // defaults: vivify on
    configs.push_back(o);
  }
  {
    SolverOptions o = churn_options();  // frantic reduce/restart + vivify
    configs.push_back(o);
  }
  {
    SolverOptions o = churn_options();
    o.vivify_budget = 50;  // budget exhaustion mid-round, cursor resume
    configs.push_back(o);
  }
  {
    SolverOptions o;
    o.vivify = false;  // control: inprocessing off
    configs.push_back(o);
  }

  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const Cnf cnf = random_instance(seed);
    const bool expect_sat = reference_model_count(cnf) > 0;

    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      Solver s(configs[ci]);
      if (!cnf.load_into(s)) {
        EXPECT_FALSE(expect_sat) << "seed " << seed << " config " << ci;
        continue;
      }
      // Exercise simplify()/vivification explicitly, then solve.
      if (!s.simplify()) {
        EXPECT_FALSE(expect_sat) << "seed " << seed << " config " << ci;
        continue;
      }
      const Status st = s.solve();
      if (expect_sat) {
        ASSERT_EQ(st, Status::Sat) << "seed " << seed << " config " << ci;
        std::vector<bool> model;
        for (Var v = 0; v < cnf.num_vars; ++v) {
          model.push_back(s.model_value(v) == LBool::True);
        }
        EXPECT_TRUE(cnf.satisfied_by(model))
            << "seed " << seed << " config " << ci;
      } else {
        EXPECT_EQ(st, Status::Unsat) << "seed " << seed << " config " << ci;
      }
    }
  }
}

DratChecker::Result certify(const MemoryProof& proof) {
  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  const auto res = checker.check(proof.ops());
  EXPECT_TRUE(res.valid) << res.error;
  EXPECT_TRUE(res.proved_unsat);
  return res;
}

TEST(Inprocessing, DratAcceptedAfterInprocessing) {
  // Vivification shrinks stored clauses and subsumption deletes them;
  // both must log add-before-delete so the emitted DRAT stream still
  // certifies. Pigeonhole drives thousands of conflicts through the
  // churned database.
  MemoryProof proof;
  SolverOptions o = churn_options();
  o.proof = &proof;
  Solver s(o);
  add_pigeonhole(s, 6, 5);
  ASSERT_TRUE(s.simplify());
  ASSERT_EQ(s.solve(), Status::Unsat);
  EXPECT_GT(s.stats().removed_clauses + s.stats().subsumed_clauses, 0);
  certify(proof);
}

TEST(Inprocessing, DratAcceptedOnRandomUnsatInstances) {
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200 && checked < 25; ++seed) {
    const Cnf cnf = random_instance(seed * 31 + 5);
    if (reference_model_count(cnf) > 0) continue;
    ++checked;

    MemoryProof proof;
    SolverOptions o = churn_options();
    o.proof = &proof;
    o.vivify_budget = 200;
    Solver s(o);
    if (!cnf.load_into(s)) continue;  // conflict at load: no proof to check
    if (!s.simplify()) {
      // Root-level refutation during inprocessing must still have logged
      // the empty-clause derivation.
      certify(proof);
      continue;
    }
    ASSERT_EQ(s.solve(), Status::Unsat) << "seed " << seed;
    certify(proof);
  }
  EXPECT_GE(checked, 5);
}

TEST(Inprocessing, VivificationStrengthensAndCounts) {
  // A clause with a literal that unit propagation refutes in isolation:
  // a ∨ b, plus (x ∨ a) where ~x forces a — vivification under the
  // assumption ~x, ~a derives a conflict and drops x from (x ∨ a ∨ c).
  Solver s(churn_options());
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var(), x = s.new_var();
  (void)b;
  // ~x alone implies a (binary), so in (x ∨ a ∨ c) the literal c is
  // redundant: assuming ~x and ~a conflicts before c is reached.
  ASSERT_TRUE(s.add_clause({mk_lit(x), mk_lit(a)}));
  ASSERT_TRUE(s.add_clause({mk_lit(x), mk_lit(a), mk_lit(c)}));
  ASSERT_TRUE(s.add_clause({~mk_lit(x), mk_lit(a), mk_lit(c)}));
  const std::size_t before = s.num_clauses();
  ASSERT_TRUE(s.simplify());
  // The wide clause is subsumed/shortened: either dropped entirely
  // (satisfied/subsumed) or vivified shorter.
  EXPECT_TRUE(s.stats().vivified_literals > 0 ||
              s.num_clauses() < before);
  EXPECT_EQ(s.solve(), Status::Sat);
}

}  // namespace
}  // namespace tp::sat
