// Unit and property tests for tp::f2::Matrix and LiChecker.

#include <gtest/gtest.h>

#include "f2/matrix.hpp"

namespace tp::f2 {
namespace {

TEST(Matrix, IdentityActsAsIdentity) {
  Matrix id = Matrix::identity(8);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    BitVec x = BitVec::random(8, rng);
    EXPECT_EQ(id.multiply(x), x);
  }
  EXPECT_EQ(id.rank(), 8u);
}

TEST(Matrix, FromColumnsLayout) {
  // Columns (1,0), (1,1), (0,1): A = [1 1 0; 0 1 1].
  std::vector<BitVec> cols = {BitVec::from_string("01"), BitVec::from_string("11"),
                              BitVec::from_string("10")};
  Matrix a = Matrix::from_columns(cols);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_TRUE(a.get(0, 0));
  EXPECT_TRUE(a.get(0, 1));
  EXPECT_FALSE(a.get(0, 2));
  EXPECT_FALSE(a.get(1, 0));
  EXPECT_TRUE(a.get(1, 1));
  EXPECT_TRUE(a.get(1, 2));
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(a.column(c), cols[c]);
}

TEST(Matrix, MultiplyMatchesColumnSum) {
  Rng rng(5);
  std::vector<BitVec> cols;
  for (int i = 0; i < 10; ++i) cols.push_back(BitVec::random(6, rng));
  Matrix a = Matrix::from_columns(cols);
  BitVec x = BitVec::random(10, rng);
  BitVec expect(6);
  for (std::size_t i = 0; i < 10; ++i) {
    if (x.get(i)) expect ^= cols[i];
  }
  EXPECT_EQ(a.multiply(x), expect);
}

TEST(Matrix, RankOfDependentRows) {
  Matrix m(3, 4);
  m.row(0) = BitVec::from_string("1010");
  m.row(1) = BitVec::from_string("0110");
  m.row(2) = m.row(0) ^ m.row(1);  // dependent
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Matrix, SolveConsistentSystem) {
  Rng rng(11);
  Matrix a(5, 8);
  for (std::size_t r = 0; r < 5; ++r) a.row(r) = BitVec::random(8, rng);
  BitVec x_true = BitVec::random(8, rng);
  BitVec b = a.multiply(x_true);
  auto sol = a.solve(b);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(a.multiply(sol->particular), b);
  for (const BitVec& n : sol->nullspace) {
    EXPECT_TRUE(a.multiply(n).is_zero());
    EXPECT_EQ(a.multiply(sol->particular ^ n), b);
  }
}

TEST(Matrix, SolveInconsistentSystem) {
  // x0 = 0 and x0 = 1 simultaneously.
  Matrix a(2, 1);
  a.set(0, 0, true);
  a.set(1, 0, true);
  BitVec b(2);
  b.set(0, true);  // row0: x0 = 1, row1: x0 = 0
  EXPECT_FALSE(a.solve(b).has_value());
}

TEST(Matrix, SolutionCountIsTwoToNullity) {
  // 3 independent equations over 6 unknowns -> 2^3 = 8 solutions.
  Rng rng(17);
  Matrix a(3, 6);
  a.row(0) = BitVec::from_string("100101");
  a.row(1) = BitVec::from_string("010011");
  a.row(2) = BitVec::from_string("001110");
  ASSERT_EQ(a.rank(), 3u);
  auto sol = a.solve(BitVec::from_string("101"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->nullspace.size(), 3u);
  EXPECT_EQ(sol->count(), 8u);
}

TEST(Matrix, NullspaceBasisIsIndependent) {
  Rng rng(23);
  Matrix a(4, 10);
  for (std::size_t r = 0; r < 4; ++r) a.row(r) = BitVec::random(10, rng);
  auto sol = a.solve(BitVec(4));
  ASSERT_TRUE(sol.has_value());  // homogeneous is always consistent
  EXPECT_TRUE(Matrix::linearly_independent(sol->nullspace));
}

TEST(Matrix, LinearlyIndependentDetectsDependence) {
  std::vector<BitVec> vecs = {BitVec::from_string("1100"), BitVec::from_string("0110"),
                              BitVec::from_string("1010")};  // v0 ^ v1 == v2
  EXPECT_FALSE(Matrix::linearly_independent(vecs));
  vecs.pop_back();
  EXPECT_TRUE(Matrix::linearly_independent(vecs));
}

// ---- Degenerate shapes (regressions: from_columns({}) used to read
// cols.front() of an empty vector) ----

TEST(Matrix, FromColumnsEmptyListIsZeroByZero) {
  Matrix a = Matrix::from_columns({});
  EXPECT_EQ(a.rows(), 0u);
  EXPECT_EQ(a.cols(), 0u);
  EXPECT_EQ(a.rank(), 0u);
}

TEST(Matrix, ZeroRowSystemIsUnconstrained) {
  Matrix a(0, 4);
  EXPECT_EQ(a.rank(), 0u);
  auto sol = a.solve(BitVec(0));
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sol->particular.is_zero());
  EXPECT_EQ(sol->nullspace.size(), 4u);  // every column free
  EXPECT_TRUE(Matrix::linearly_independent(sol->nullspace));
}

TEST(Matrix, ZeroColumnSystemConsistencyDependsOnRhs) {
  Matrix a(3, 0);
  EXPECT_EQ(a.rank(), 0u);
  auto sol = a.solve(BitVec(3));  // 0 = 0: the empty vector solves it
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->nullspace.size(), 0u);
  BitVec b(3);
  b.set(0, true);
  EXPECT_FALSE(a.solve(b).has_value());  // 0 = 1: inconsistent
}

TEST(Matrix, ZeroByZeroSystem) {
  Matrix a(0, 0);
  EXPECT_EQ(a.rank(), 0u);
  auto sol = a.solve(BitVec(0));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->count(), 1u);
}

// ---- LiChecker ----

TEST(LiChecker, RejectsZeroAndDuplicates) {
  LiChecker li(8, 4);
  EXPECT_FALSE(li.can_add(BitVec(8)));
  BitVec v = BitVec::from_uint(8, 5);
  EXPECT_TRUE(li.can_add(v));
  li.add(v);
  EXPECT_FALSE(li.can_add(v));
}

TEST(LiChecker, Depth3RejectsPairSum) {
  LiChecker li(8, 3);
  BitVec a = BitVec::from_uint(8, 0x03);
  BitVec b = BitVec::from_uint(8, 0x05);
  li.add(a);
  li.add(b);
  EXPECT_FALSE(li.can_add(a ^ b));
  EXPECT_TRUE(li.can_add(BitVec::from_uint(8, 0x07)));
}

TEST(LiChecker, Depth4RejectsTripleSum) {
  LiChecker li(10, 4);
  BitVec a = BitVec::from_uint(10, 0x003);
  BitVec b = BitVec::from_uint(10, 0x014);
  BitVec c = BitVec::from_uint(10, 0x060);
  li.add(a);
  li.add(b);
  li.add(c);
  EXPECT_FALSE(li.can_add(a ^ b ^ c));
  // Depth 3 checker accepts the same candidate (only pair sums excluded).
  LiChecker li3(10, 3);
  li3.add(a);
  li3.add(b);
  li3.add(c);
  EXPECT_TRUE(li3.can_add(a ^ b ^ c));
}

// Regression: the pair-XOR exclusion set only serves depth >= 3 queries
// (and member_set_ only depth >= 2), so shallow checkers must not grow
// the quadratic set at all.
TEST(LiChecker, ShallowDepthsSkipPairXorBookkeeping) {
  for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    LiChecker li(24, depth);
    Rng rng(900 + depth);
    while (li.size() < 20) {
      BitVec v = BitVec::random(24, rng);
      if (li.can_add(v)) li.add(v);
    }
    EXPECT_EQ(li.pair_xor_count(), 0u) << "depth " << depth;
  }
  // Control: depth 3 does populate it (one entry per unordered pair; at
  // 24 bits the 190 random pair sums are collision-free for this seed).
  LiChecker li3(24, 3);
  Rng rng(950);
  while (li3.size() < 20) {
    BitVec v = BitVec::random(24, rng);
    if (li3.can_add(v)) li3.add(v);
  }
  EXPECT_EQ(li3.pair_xor_count(), 20u * 19u / 2u);
}

// Property: any set accepted by LiChecker(depth d) has every subset of
// size <= d linearly independent (cross-check against Gaussian rank).
class LiCheckerPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LiCheckerPropertyTest, AllSmallSubsetsIndependent) {
  const std::size_t depth = GetParam();
  const std::size_t dim = 10;
  Rng rng(depth * 101 + 7);
  LiChecker li(dim, depth);
  while (li.size() < 12) {
    BitVec v = BitVec::random(dim, rng);
    if (li.can_add(v)) li.add(v);
  }
  const auto& vecs = li.members();
  const std::size_t n = vecs.size();
  // Enumerate all subsets of size <= depth.
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const auto bits = static_cast<std::size_t>(__builtin_popcount(mask));
    if (bits > depth) continue;
    std::vector<BitVec> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(vecs[i]);
    }
    EXPECT_TRUE(Matrix::linearly_independent(subset))
        << "dependent subset mask=" << mask << " at depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LiCheckerPropertyTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tp::f2
