// Tests for the observability layer: the JSONL tracer (line format, span
// lifecycle, thread ids), the Json value type, and the metrics registry.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace tp;

namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Json --

TEST(Json, ScalarsAndEscaping) {
  EXPECT_EQ(obs::Json().dump(), "null");
  EXPECT_EQ(obs::Json(true).dump(), "true");
  EXPECT_EQ(obs::Json(false).dump(), "false");
  EXPECT_EQ(obs::Json(42).dump(), "42");
  EXPECT_EQ(obs::Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(obs::Json(std::uint64_t{18446744073709551615u}).dump(),
            "18446744073709551615");
  EXPECT_EQ(obs::Json(0.5).dump(), "0.5");
  EXPECT_EQ(obs::Json("plain").dump(), "\"plain\"");
  EXPECT_EQ(obs::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(obs::Json(std::nan("")).dump(), "null");
  EXPECT_EQ(obs::Json(INFINITY).dump(), "null");
}

TEST(Json, ObjectsAndArrays) {
  obs::Json obj = obs::Json::object();
  obj.set("b", 1).set("a", "x");
  obs::Json arr = obs::Json::array();
  arr.push(obs::Json(true));
  arr.push(obj);
  // Object keys keep insertion order; nesting round-trips through dump().
  EXPECT_EQ(arr.dump(), "[true,{\"b\":1,\"a\":\"x\"}]");
}

// -------------------------------------------------------------- Tracer --

TEST(Tracer, DisabledTracerEmitsNothing) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.event("ev", {{"x", 1}});
  auto span = tracer.span("sp");
  EXPECT_FALSE(span.active());
  span.add("y", 2);
  span.finish();
  // Nothing to assert beyond "does not crash": there is no sink.
}

TEST(Tracer, EventLineFormat) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  ASSERT_TRUE(tracer.enabled());
  tracer.event("solver.restart",
               {{"restart", 3}, {"ok", true}, {"note", "he\"llo"}, {"none", obs::Json()}});
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const std::string& l = lines[0];
  EXPECT_EQ(l.front(), '{');
  EXPECT_EQ(l.back(), '}');
  EXPECT_NE(l.find("\"ts\":"), std::string::npos);
  EXPECT_NE(l.find("\"tid\":"), std::string::npos);
  EXPECT_NE(l.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(l.find("\"name\":\"solver.restart\""), std::string::npos);
  EXPECT_NE(l.find("\"restart\":3"), std::string::npos);
  EXPECT_NE(l.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(l.find("\"note\":\"he\\\"llo\""), std::string::npos);
  EXPECT_NE(l.find("\"none\":null"), std::string::npos);
  EXPECT_EQ(l.find("\"dur\":"), std::string::npos);  // events carry no dur
}

TEST(Tracer, SpanEmitsOnceWithDuration) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    auto span = tracer.span("sr.encode", {{"vars", 10}});
    EXPECT_TRUE(span.active());
    span.add("ok", true);
    EXPECT_TRUE(lines_of(out.str()).empty());  // emitted at close, not open
    span.finish();
    span.finish();  // idempotent
  }  // destructor must not re-emit after an explicit finish()
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"sr.encode\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"dur\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"vars\":10"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
}

TEST(Tracer, SpanEmitsOnDestruction) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  { auto span = tracer.span("scoped"); }
  EXPECT_EQ(lines_of(out.str()).size(), 1u);
}

TEST(Tracer, MovedFromSpanDoesNotEmit) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    auto a = tracer.span("only-once");
    auto b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(lines_of(out.str()).size(), 1u);
}

TEST(Tracer, NestedSpansCloseInnerFirst) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    auto outer = tracer.span("outer");
    { auto inner = tracer.span("inner"); }
    tracer.event("between");
  }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"between\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"name\":\"outer\""), std::string::npos);
}

TEST(Tracer, ConcurrentWritersKeepLinesIntact) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  constexpr int kThreads = 4;
  constexpr int kEvents = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kEvents; ++i) {
        tracer.event("tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kEvents));
  for (const auto& l : lines) {
    // Every line is one complete object — no interleaved writes.
    ASSERT_FALSE(l.empty());
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"name\":\"tick\""), std::string::npos);
  }
}

TEST(Tracer, ElapsedIsMonotonic) {
  obs::Tracer tracer;
  const double a = tracer.elapsed();
  const double b = tracer.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// ------------------------------------------------------------- Metrics --

TEST(Metrics, CounterAddValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, TimingTracksCountTotalMinMax) {
  obs::Timing t;
  EXPECT_EQ(t.count(), 0);
  EXPECT_EQ(t.min_seconds(), 0.0);
  EXPECT_EQ(t.max_seconds(), 0.0);
  t.observe(0.5);
  t.observe(0.25);
  t.observe(2.0);
  EXPECT_EQ(t.count(), 3);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2.75);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 2.0);
}

TEST(Metrics, RegistryFindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.count");
  obs::Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(reg.counter_value("x.count"), 5);
  EXPECT_EQ(reg.counter_value("never.registered"), 0);
}

TEST(Metrics, RegistryRejectsKindClash) {
  obs::MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.timing("name"), std::logic_error);
  reg.timing("other");
  EXPECT_THROW(reg.counter("other"), std::logic_error);
}

TEST(Metrics, SnapshotSerializesBothKinds) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.timing("b.time").observe(1.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"b.time\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":1.5"), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter_value("a.count"), 0);
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&obs::MetricsRegistry::global(), &obs::MetricsRegistry::global());
}

// ----------------------------------------------------------- ObsHammer --
//
// Multi-threaded hammer suite for the "shared tracer / shared registry is
// thread-safe" contract that the parallel engines (batch fan-out, racing
// portfolio) lean on. Runs in the plain suite as a correctness check and
// in the CI TSan job (test filter `ObsHammer`) as a race check.

TEST(ObsHammer, RegistryCountersNTimesMThreadsSumExactly) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kCounters = 16;
  constexpr int kIters = 500;

  std::vector<std::string> names;
  names.reserve(kCounters);
  for (int c = 0; c < kCounters; ++c) {
    names.push_back("hammer.c" + std::to_string(c));
  }

  // Every thread resolves every counter itself (registration path under
  // contention), then hammers lock-free adds.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &names] {
      std::vector<obs::Counter*> counters;
      counters.reserve(names.size());
      for (const std::string& n : names) counters.push_back(&reg.counter(n));
      for (int i = 0; i < kIters; ++i) {
        for (obs::Counter* c : counters) c->add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& n : names) {
    EXPECT_EQ(reg.counter_value(n), kThreads * kIters) << n;
  }
}

TEST(ObsHammer, RegistryMixedKindsUnderContentionWithSnapshots) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kIters = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("mix.count").add(1);
        reg.gauge("mix.gauge").set(t);
        reg.timing("mix.time").observe(0.001 * (t + 1));
      }
    });
  }
  // One reader races snapshot() against the writers; every snapshot must
  // be a well-formed object regardless of interleaving.
  threads.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) {
      const std::string json = reg.to_json();
      ASSERT_FALSE(json.empty());
      ASSERT_EQ(json.front(), '{');
      ASSERT_EQ(json.back(), '}');
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter_value("mix.count"), kThreads * kIters);
  obs::Timing& timing = reg.timing("mix.time");
  EXPECT_EQ(timing.count(), kThreads * kIters);
  EXPECT_DOUBLE_EQ(timing.min_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(timing.max_seconds(), 0.001 * kThreads);
}

TEST(ObsHammer, TracerNThreadsMSpansAndEventsAllComplete) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  constexpr int kThreads = 8;
  constexpr int kSpans = 100;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        obs::Tracer::Span span =
            tracer.span("hammer.span", {{"thread", t}, {"i", i}});
        tracer.event("hammer.event", {{"thread", t}});
        span.add("closed", true);
      }  // span emits at scope exit
    });
  }
  for (auto& th : threads) th.join();

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kSpans * 2));
  std::size_t spans = 0;
  for (const auto& l : lines) {
    ASSERT_FALSE(l.empty());
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    if (l.find("\"kind\":\"span\"") != std::string::npos) {
      ++spans;
      EXPECT_NE(l.find("\"dur\":"), std::string::npos);
      EXPECT_NE(l.find("\"closed\":true"), std::string::npos);
    }
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads * kSpans));
}

TEST(ObsHammer, TracerOpenWhileEmittingNeverTearsALine) {
  // Regression for the sink-replacement race: enabled() used to read the
  // sink pointer unsynchronized against open(), so a producer could race
  // the sink swap. The pointer is atomic now; swapping sinks mid-stream
  // must tear no line on either sink. (The TSan CI job runs this test to
  // check the access itself, not just the output.)
  std::ostringstream out;
  obs::Tracer tracer(out);
  const std::string path =
      ::testing::TempDir() + "/tracer_open_hammer.jsonl";

  constexpr int kThreads = 4;
  constexpr int kEvents = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kEvents; ++i) {
        tracer.event("swap.tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  tracer.open(path);  // swap the sink while producers are mid-hammer
  for (auto& th : threads) th.join();

  std::size_t total = 0;
  for (const std::string& text :
       {out.str(), [&path] {
          std::ifstream in(path);
          std::ostringstream buf;
          buf << in.rdbuf();
          return buf.str();
        }()}) {
    for (const std::string& l : lines_of(text)) {
      ASSERT_FALSE(l.empty());
      EXPECT_EQ(l.front(), '{');
      EXPECT_EQ(l.back(), '}');
      ++total;
    }
  }
  // The sink is never null in this test (it swaps from the stream to the
  // file), so every event must land whole in exactly one sink: no drops,
  // no duplicates, no interleaving.
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads * kEvents));
}
