// Tests for the trace archive: time indexing, wear-out retention,
// multi-channel storage and serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "timeprint/archive.hpp"

namespace tp::core {
namespace {

LogEntry mk_entry(std::size_t b, std::uint64_t tag, std::size_t k) {
  return {f2::BitVec::from_uint(b, tag & ((1u << b) - 1)), k};
}

TEST(TraceChannel, AppendAndIndex) {
  TraceChannel ch(64, 13);
  for (std::uint64_t i = 0; i < 5; ++i) ch.append(mk_entry(13, i, i));
  EXPECT_EQ(ch.size(), 5u);
  EXPECT_EQ(ch.first_retained(), 0u);
  auto e = ch.at(3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->index, 3u);
  EXPECT_EQ(e->first_cycle, 3u * 64u);
  EXPECT_EQ(e->entry.k, 3u);
  EXPECT_FALSE(ch.at(5).has_value());  // future
}

TEST(TraceChannel, CoveringCycle) {
  TraceChannel ch(100, 10);
  for (std::uint64_t i = 0; i < 4; ++i) ch.append(mk_entry(10, i, i));
  EXPECT_EQ(ch.covering_cycle(0)->index, 0u);
  EXPECT_EQ(ch.covering_cycle(99)->index, 0u);
  EXPECT_EQ(ch.covering_cycle(100)->index, 1u);
  EXPECT_EQ(ch.covering_cycle(399)->index, 3u);
  EXPECT_FALSE(ch.covering_cycle(400).has_value());
}

TEST(TraceChannel, WindowQuery) {
  TraceChannel ch(50, 8);
  for (std::uint64_t i = 0; i < 10; ++i) ch.append(mk_entry(8, i, i));
  // [120, 260) covers trace-cycles 2..5.
  auto window = ch.in_window(120, 260);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.front().index, 2u);
  EXPECT_EQ(window.back().index, 5u);
  EXPECT_TRUE(ch.in_window(200, 200).empty());
}

TEST(TraceChannel, WearOutEvictsOldest) {
  TraceChannel ch(64, 13, /*capacity=*/3);
  for (std::uint64_t i = 0; i < 7; ++i) ch.append(mk_entry(13, i, 1));
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.first_retained(), 4u);
  EXPECT_EQ(ch.total_appended(), 7u);
  EXPECT_FALSE(ch.at(3).has_value());  // worn out
  ASSERT_TRUE(ch.at(4).has_value());
  EXPECT_EQ(ch.at(6)->entry.tp.to_uint(), 6u);
}

TEST(TraceChannel, RetainedBitsConstantPerEntry) {
  TraceChannel ch(1000, 24);
  ch.append(mk_entry(24, 1, 0));
  ch.append(mk_entry(24, 2, 999));
  EXPECT_EQ(ch.retained_bits(), 2u * 34u);
}

TEST(TraceArchive, ChannelsByName) {
  TraceArchive archive;
  archive.channel("can-bus", 1000, 24).append(mk_entry(24, 1, 3));
  archive.channel("ahb-addr", 1024, 24).append(mk_entry(24, 2, 5));
  archive.channel("ahb-addr", 1024, 24).append(mk_entry(24, 3, 6));
  EXPECT_EQ(archive.names(), (std::vector<std::string>{"ahb-addr", "can-bus"}));
  EXPECT_EQ(archive.find("ahb-addr")->size(), 2u);
  EXPECT_EQ(archive.find("nope"), nullptr);
}

TEST(TraceArchive, MismatchedReopenThrows) {
  TraceArchive archive;
  archive.channel("x", 64, 13);
  EXPECT_THROW(archive.channel("x", 128, 13), std::invalid_argument);
  EXPECT_THROW(archive.channel("x", 64, 16), std::invalid_argument);
  EXPECT_NO_THROW(archive.channel("x", 64, 13));
}

TEST(TraceArchive, SaveLoadRoundTrip) {
  TraceArchive archive;
  auto& a = archive.channel("sig-a", 64, 13, 4);
  for (std::uint64_t i = 0; i < 7; ++i) a.append(mk_entry(13, i * 3 + 1, i));
  auto& b = archive.channel("sig-b", 128, 16);
  b.append(mk_entry(16, 77, 2));

  std::ostringstream out;
  archive.save(out);
  std::istringstream in(out.str());
  TraceArchive loaded = TraceArchive::load(in);

  ASSERT_NE(loaded.find("sig-a"), nullptr);
  const TraceChannel& la = *loaded.find("sig-a");
  EXPECT_EQ(la.size(), 4u);  // capacity bound survived
  EXPECT_EQ(la.first_retained(), 3u);
  for (std::uint64_t i = 3; i < 7; ++i) {
    EXPECT_EQ(la.at(i)->entry, a.at(i)->entry) << i;
  }
  ASSERT_NE(loaded.find("sig-b"), nullptr);
  EXPECT_EQ(loaded.find("sig-b")->at(0)->entry.tp.to_uint(), 77u);
}

TEST(TraceArchive, LoadRejectsGarbage) {
  std::istringstream bad("not an archive\n");
  EXPECT_THROW(TraceArchive::load(bad), std::runtime_error);
  std::istringstream truncated(
      "timeprint-archive channels=1\n"
      "channel x m=8 b=4 cap=0 first=0 n=2\n"
      "0101 1\n");
  EXPECT_THROW(TraceArchive::load(truncated), std::runtime_error);
}

TEST(TraceArchive, EndToEndWithStreamingLogger) {
  // Deployment: stream a signal into the logger, archive every entry;
  // postmortem: retrieve the entry covering a suspicious cycle.
  auto enc = TimestampEncoding::random_constrained(32, 12, 4, 6);
  StreamingLogger logger(enc);
  f2::Rng rng(8);
  TraceArchive archive;
  auto& ch = archive.channel("bus", enc.m(), enc.width(), 100);
  std::size_t logged = 0;
  for (int cycle = 0; cycle < 32 * 20; ++cycle) {
    logger.tick(rng.below(4) == 0);
    while (logger.log().size() > logged) {
      ch.append(logger.log()[logged++]);
    }
  }
  EXPECT_EQ(ch.size(), 20u);
  const std::uint64_t suspicious_cycle = 13 * 32 + 7;
  auto e = ch.covering_cycle(suspicious_cycle);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->entry, logger.log()[13]);
}

}  // namespace
}  // namespace tp::core
