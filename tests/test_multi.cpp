// Tests for multi-signal tracing and cross-channel latency analysis.

#include <gtest/gtest.h>

#include "timeprint/multi.hpp"
#include "timeprint/reconstruct.hpp"

namespace tp::core {
namespace {

TEST(MultiTracer, MatchesIndividualLoggers) {
  auto enc_a = TimestampEncoding::random_constrained(16, 9, 4, 1);
  auto enc_b = TimestampEncoding::random_constrained(16, 10, 4, 2);
  TraceArchive archive;
  MultiTracer tracer(archive);
  tracer.add_channel("a", enc_a);
  tracer.add_channel("b", enc_b);

  StreamingLogger ref_a(enc_a), ref_b(enc_b);
  f2::Rng rng(3);
  for (int cycle = 0; cycle < 16 * 6; ++cycle) {
    const bool ca = rng.below(4) == 0;
    const bool cb = rng.below(3) == 0;
    tracer.tick({ca, cb});
    ref_a.tick(ca);
    ref_b.tick(cb);
  }
  const TraceChannel* a = archive.find("a");
  const TraceChannel* b = archive.find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->size(), 6u);
  ASSERT_EQ(b->size(), 6u);
  for (std::uint64_t w = 0; w < 6; ++w) {
    EXPECT_EQ(a->at(w)->entry, ref_a.log()[w]) << w;
    EXPECT_EQ(b->at(w)->entry, ref_b.log()[w]) << w;
  }
  EXPECT_EQ(tracer.cycles(), 96u);
  EXPECT_EQ(tracer.name(0), "a");
}

TEST(MultiTracer, RejectsMismatchedTraceCycleLengths) {
  auto enc_a = TimestampEncoding::binary(16);
  auto enc_b = TimestampEncoding::binary(32);
  TraceArchive archive;
  MultiTracer tracer(archive);
  tracer.add_channel("a", enc_a);
  EXPECT_THROW(tracer.add_channel("b", enc_b), std::invalid_argument);
}

TEST(MultiTracer, RejectsLateChannelAdds) {
  auto enc = TimestampEncoding::binary(8);
  TraceArchive archive;
  MultiTracer tracer(archive);
  tracer.add_channel("a", enc);
  tracer.tick({false});
  EXPECT_THROW(tracer.add_channel("b", enc), std::logic_error);
}

TEST(WorstLatency, BasicCases) {
  // Requests at 2, 8; responses at 5, 9: latencies 3 and 1 -> worst 3.
  Signal req = Signal::from_change_cycles(12, {2, 8});
  Signal resp = Signal::from_change_cycles(12, {5, 9});
  EXPECT_EQ(worst_latency(req, resp), 3u);
  // Same-cycle response counts as latency 0.
  EXPECT_EQ(worst_latency(Signal::from_change_cycles(12, {4}),
                          Signal::from_change_cycles(12, {4})),
            0u);
  // Unanswered request.
  EXPECT_EQ(worst_latency(Signal::from_change_cycles(12, {10}),
                          Signal::from_change_cycles(12, {5})),
            std::nullopt);
  // No requests: trivially 0.
  EXPECT_EQ(worst_latency(Signal(12), resp), 0u);
}

TEST(LatencyBounds, OverCandidateSets) {
  std::vector<Signal> reqs = {Signal::from_change_cycles(10, {2}),
                              Signal::from_change_cycles(10, {4})};
  std::vector<Signal> resps = {Signal::from_change_cycles(10, {6}),
                               Signal::from_change_cycles(10, {7})};
  // Latencies: 4, 5, 2, 3 -> [2, 5], all answered.
  const auto bounds = latency_bounds(reqs, resps);
  EXPECT_EQ(bounds.min, 2u);
  EXPECT_EQ(bounds.max, 5u);
  EXPECT_FALSE(bounds.unanswered);
}

TEST(LatencyBounds, FlagsUnansweredPairs) {
  std::vector<Signal> reqs = {Signal::from_change_cycles(10, {8})};
  std::vector<Signal> resps = {Signal::from_change_cycles(10, {9}),
                               Signal::from_change_cycles(10, {1})};
  const auto bounds = latency_bounds(reqs, resps);
  EXPECT_TRUE(bounds.unanswered);
  EXPECT_EQ(bounds.min, 1u);  // the answered pair
}

TEST(MultiSignal, EndToEndLiabilityAnalysis) {
  // The intro scenario: St goes from C1 (request) to C2 (response). Both
  // are traced; postmortem, reconstruct each channel and bound the
  // worst-case latency over all consistent signal pairs.
  const std::size_t m = 20;
  auto enc = TimestampEncoding::random_constrained(m, 10, 4, 9);
  TraceArchive archive;
  MultiTracer tracer(archive);
  tracer.add_channel("request", enc);
  tracer.add_channel("response", enc);

  const Signal request = Signal::from_change_cycles(m, {3, 4, 12, 13});
  const Signal response = Signal::from_change_cycles(m, {6, 7, 15, 16});
  for (std::size_t i = 0; i < m; ++i) {
    tracer.tick({request.has_change(i), response.has_change(i)});
  }

  // Both modules' write protocols are verified: pairs property.
  ChangesInConsecutivePairs pairs;
  auto reconstruct = [&](const char* name) {
    Reconstructor rec(enc);
    rec.add_property(pairs);
    auto res = rec.reconstruct(archive.find(name)->at(0)->entry);
    EXPECT_TRUE(res.complete());
    return res.signals;
  };
  const auto req_candidates = reconstruct("request");
  const auto resp_candidates = reconstruct("response");
  ASSERT_FALSE(req_candidates.empty());
  ASSERT_FALSE(resp_candidates.empty());

  const auto bounds = latency_bounds(req_candidates, resp_candidates);
  // Ground truth worst latency is 3; the bound interval must contain it.
  EXPECT_LE(bounds.min, 3u);
  EXPECT_GE(bounds.max, 3u);
  // And if the deadline is 'max', it is provably met whichever signals
  // actually occurred (when all pairs are answered).
  EXPECT_FALSE(bounds.unanswered);
}

}  // namespace
}  // namespace tp::core
