// Differential testing of the SAT solver across its option matrix: every
// configuration must agree on satisfiability (and on full projected model
// sets) over randomized CNF+XOR instances. This is the broadest guard
// against configuration-dependent soundness bugs (chunking, Gauss engine,
// gating, polarity, restarts).

#include <gtest/gtest.h>

#include <algorithm>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/dimacs.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

Cnf random_instance(std::uint64_t seed) {
  f2::Rng rng(seed);
  Cnf cnf;
  cnf.num_vars = 12;
  const int clauses = 10 + static_cast<int>(rng.below(8));
  for (int i = 0; i < clauses; ++i) {
    std::vector<Lit> c;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int j = 0; j < len; ++j) {
      c.push_back(Lit(static_cast<Var>(rng.below(12)), rng.flip()));
    }
    cnf.clauses.push_back(std::move(c));
  }
  const int xors = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < xors; ++i) {
    std::vector<Var> xv;
    const int len = 2 + static_cast<int>(rng.below(7));
    for (int j = 0; j < len; ++j) xv.push_back(static_cast<Var>(rng.below(12)));
    cnf.xors.emplace_back(std::move(xv), rng.flip());
  }
  return cnf;
}

std::vector<SolverOptions> option_matrix() {
  std::vector<SolverOptions> out;
  {
    SolverOptions o;  // defaults: watched XORs, chunk 10
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.xor_chunk_size = 0;  // monolithic XOR rows
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.xor_chunk_size = 3;  // aggressive chunking
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.use_gauss = true;  // Gaussian engine, auto gate
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.use_gauss = true;
    o.gauss_max_unassigned = SIZE_MAX;  // ungated Gauss
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.default_polarity = true;  // opposite phase default
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.restart_base = 5;  // frantic restarts
    o.reduce_base = 50;  // frantic clause deletion
    out.push_back(o);
  }
  {
    SolverOptions o;
    o.phase_saving = false;
    o.var_decay = 0.6;
    out.push_back(o);
  }
  return out;
}

class SolverMatrixTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverMatrixTest, AllConfigurationsAgreeWithReference) {
  const Cnf cnf = random_instance(GetParam());
  const auto reference = reference_all_models(cnf);

  for (std::size_t ci = 0; ci < option_matrix().size(); ++ci) {
    Solver s(option_matrix()[ci]);
    cnf.load_into(s);
    const Status st = s.solve();
    if (reference.empty()) {
      EXPECT_EQ(st, Status::Unsat) << "config " << ci;
    } else {
      ASSERT_EQ(st, Status::Sat) << "config " << ci;
      std::vector<bool> model;
      for (Var v = 0; v < cnf.num_vars; ++v) {
        model.push_back(s.model_value(v) == LBool::True);
      }
      EXPECT_TRUE(cnf.satisfied_by(model)) << "config " << ci;
    }
  }
}

TEST_P(SolverMatrixTest, AllConfigurationsEnumerateTheSameModels) {
  const Cnf cnf = random_instance(GetParam() + 1000);
  const auto reference = reference_all_models(cnf);
  auto sorted_ref = reference;
  std::sort(sorted_ref.begin(), sorted_ref.end());

  std::vector<Var> projection;
  for (Var v = 0; v < cnf.num_vars; ++v) projection.push_back(v);

  for (std::size_t ci = 0; ci < option_matrix().size(); ++ci) {
    Solver s(option_matrix()[ci]);
    cnf.load_into(s);
    auto result = enumerate_models(s, projection);
    ASSERT_TRUE(result.complete()) << "config " << ci;
    auto got = result.models;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sorted_ref) << "config " << ci;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverMatrixTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tp::sat
