// Fuzz-style robustness tests for the two deserialization boundaries:
// TraceLog::load (textual log format) and rtl::deserialize_entry (fixed
// width wire frames). Deterministic pseudo-random mutations — truncation,
// character substitution, bit flips, resizes — must never crash, never
// produce an out-of-contract value, and fail only with std::runtime_error.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "f2/bitvec.hpp"
#include "rtlsim/framing.hpp"
#include "timeprint/design.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/signal.hpp"

using namespace tp;

namespace {

// A small but non-trivial saved log to mutate.
std::string make_saved_log(std::size_t m, std::size_t b, std::size_t entries) {
  const auto enc = core::TimestampEncoding::random_constrained(m, b, 4, 7);
  core::Logger logger(enc);
  core::TraceLog log(m, b);
  f2::Rng rng(11);
  for (std::size_t i = 0; i < entries; ++i) {
    log.append(logger.log(core::Signal::random_with_changes(m, 1 + i % 5, rng)));
  }
  std::ostringstream out;
  log.save(out);
  return out.str();
}

// Load must either succeed with in-contract entries or throw
// std::runtime_error; anything else (other exception types, k > m) fails
// the test.
void expect_load_contract(const std::string& text, std::size_t m) {
  std::istringstream in(text);
  try {
    const core::TraceLog log = core::TraceLog::load(in);
    for (const auto& e : log.entries()) {
      ASSERT_LE(e.k, m);
    }
  } catch (const std::runtime_error&) {
    // Rejected cleanly: fine.
  }
}

}  // namespace

TEST(CorruptTraceLog, RoundTripBaseline) {
  const std::string text = make_saved_log(16, 9, 8);
  std::istringstream in(text);
  const core::TraceLog log = core::TraceLog::load(in);
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.m(), 16u);
  EXPECT_EQ(log.width(), 9u);
}

TEST(CorruptTraceLog, SurvivesTruncationAtEveryPosition) {
  const std::string text = make_saved_log(16, 9, 6);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_load_contract(text.substr(0, cut), 16);
  }
}

TEST(CorruptTraceLog, SurvivesSingleCharacterSubstitutions) {
  const std::string text = make_saved_log(16, 9, 6);
  const char replacements[] = {'0', '1', '9', 'x', '-', ' ', '\n', '=', '\t'};
  f2::Rng rng(23);
  for (int trial = 0; trial < 400; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    std::string mutated = text;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = replacements[rng.below(sizeof(replacements))];
    expect_load_contract(mutated, 16);
  }
}

TEST(CorruptTraceLog, SurvivesRandomInsertionsAndDeletions) {
  const std::string text = make_saved_log(16, 9, 6);
  f2::Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    std::string mutated = text;
    const std::size_t pos = rng.below(mutated.size());
    if (trial % 2 == 0) {
      mutated.insert(pos, 1, "01 \n9"[rng.below(5)]);
    } else {
      mutated.erase(pos, 1);
    }
    expect_load_contract(mutated, 16);
  }
}

TEST(CorruptFraming, RoundTripBaseline) {
  const std::size_t m = 16, b = 9;
  const auto enc = core::TimestampEncoding::random_constrained(m, b, 4, 7);
  core::Logger logger(enc);
  f2::Rng rng(3);
  const core::LogEntry entry =
      logger.log(core::Signal::random_with_changes(m, 3, rng));
  const auto bits = rtl::serialize_entry(entry, m);
  EXPECT_EQ(bits.size(), rtl::entry_payload_bits(m, b));
  EXPECT_EQ(rtl::deserialize_entry(bits, m, b), entry);
}

TEST(CorruptFraming, BitFlipsNeverEscapeTheContract) {
  const std::size_t m = 16, b = 9;
  const auto enc = core::TimestampEncoding::random_constrained(m, b, 4, 7);
  core::Logger logger(enc);
  f2::Rng rng(5);
  const core::LogEntry entry =
      logger.log(core::Signal::random_with_changes(m, 4, rng));
  const auto bits = rtl::serialize_entry(entry, m);
  // Single flips at every position, plus random multi-flips.
  for (int trial = 0; trial < static_cast<int>(bits.size()) + 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    auto mutated = bits;
    if (trial < static_cast<int>(bits.size())) {
      mutated[trial] = !mutated[trial];
    } else {
      const std::size_t flips = 1 + rng.below(6);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] = !mutated[pos];
      }
    }
    try {
      const core::LogEntry decoded = rtl::deserialize_entry(mutated, m, b);
      EXPECT_LE(decoded.k, m);
      EXPECT_EQ(decoded.tp.size(), b);
    } catch (const std::runtime_error&) {
      // k decoded above m: rejected cleanly.
    }
  }
}

TEST(CorruptFraming, WrongPayloadSizesAreRejected) {
  const std::size_t m = 16, b = 9;
  const auto enc = core::TimestampEncoding::random_constrained(m, b, 4, 7);
  core::Logger logger(enc);
  f2::Rng rng(7);
  const core::LogEntry entry =
      logger.log(core::Signal::random_with_changes(m, 2, rng));
  const auto bits = rtl::serialize_entry(entry, m);
  for (std::size_t size = 0; size < bits.size() + 8; ++size) {
    if (size == bits.size()) continue;
    SCOPED_TRACE("size=" + std::to_string(size));
    std::vector<bool> resized = bits;
    resized.resize(size, false);
    EXPECT_THROW(rtl::deserialize_entry(resized, m, b), std::runtime_error);
  }
}
