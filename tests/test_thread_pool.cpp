// Tests for the work-stealing thread pool backing the batch engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace tp::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, StealsWorkAcrossWorkers) {
  // One long task pins a worker; the many short tasks queued round-robin
  // behind it must be stolen and finished by the others long before the
  // sleeper wakes. With stealing broken this would take ~1s; give the
  // assertion plenty of slack but check the short tasks all ran.
  ThreadPool pool(4);
  std::atomic<int> short_done{0};
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 64; ++i) {
    pool.submit([&short_done] { short_done.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (short_done.load() < 64 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(short_done.load(), 64);
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&count] { ++count; });
    }
    ++count;
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, SingleWorkerDrainsSequentially) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(order.size(), 5u);
}

}  // namespace
}  // namespace tp::util
