// Tests for the DRAT proof layer: the independent RUP/RAT checker, the
// text/binary writers and parsers, solver proof emission end-to-end, and a
// randomized certification fuzz (every UNSAT verdict re-derived by the
// checker, every run swept by the invariant auditor).

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/audit.hpp"
#include "sat/cardinality.hpp"
#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

// ---------------------------------------------------------- checker ----

TEST(DratChecker, ResolventIsRup) {
  DratChecker checker;
  checker.add_clause({1, 2});
  checker.add_clause({-1, 2});
  const auto res = checker.check({{ProofOp::Kind::Add, {2}}});
  EXPECT_TRUE(res.valid);
  EXPECT_FALSE(res.proved_unsat);
  EXPECT_EQ(res.ops_checked, 1u);
}

TEST(DratChecker, BogusAdditionRejected) {
  // {~a, c} blocks the vacuous-RAT escape: the resolvent {c} is not RUP.
  DratChecker checker;
  checker.add_clause({1, 2});
  checker.add_clause({-1, 3});
  const auto res = checker.check({{ProofOp::Kind::Add, {1}}});
  EXPECT_FALSE(res.valid);
  EXPECT_FALSE(res.error.empty());
}

TEST(DratChecker, EmptyClauseProvesUnsat) {
  DratChecker checker;
  checker.add_clause({1});
  checker.add_clause({-1});
  const auto res = checker.check({{ProofOp::Kind::Add, {}}});
  EXPECT_TRUE(res.valid);
  EXPECT_TRUE(res.proved_unsat);
}

TEST(DratChecker, EmptyClauseNotDerivableIsRejected) {
  DratChecker checker;
  checker.add_clause({1, 2});
  const auto res = checker.check({{ProofOp::Kind::Add, {}}});
  EXPECT_FALSE(res.valid);
  EXPECT_FALSE(res.proved_unsat);
}

TEST(DratChecker, DeletionRemovesPropagationPower) {
  // {b} is RUP via {a} and {~a, b} — but not once the binary is deleted.
  // ({~b, c} keeps a ~b occurrence around so RAT cannot pass vacuously.)
  DratChecker with_del;
  with_del.add_clause({1});
  with_del.add_clause({-1, 2});
  with_del.add_clause({-2, 3});
  const auto res = with_del.check(
      {{ProofOp::Kind::Delete, {-1, 2}}, {ProofOp::Kind::Add, {2}}});
  EXPECT_FALSE(res.valid);

  // Deletion matching is by literal multiset, order-insensitive.
  DratChecker reordered;
  reordered.add_clause({1});
  reordered.add_clause({-1, 2});
  const auto res2 = reordered.check({{ProofOp::Kind::Delete, {2, -1}}});
  EXPECT_TRUE(res2.valid);
  EXPECT_EQ(res2.ignored_deletions, 0u);
}

TEST(DratChecker, UnknownDeletionIsIgnoredNotFailed) {
  DratChecker checker;
  checker.add_clause({1, 2});
  const auto res = checker.check({{ProofOp::Kind::Delete, {3, 4}}});
  EXPECT_TRUE(res.valid);
  EXPECT_EQ(res.ignored_deletions, 1u);
}

TEST(DratChecker, FreshVariableUnitIsRatButNotRup) {
  // {x} with x unmentioned: no clause contains ~x, so the RAT check passes
  // vacuously; plain RUP cannot derive it.
  DratChecker rat_ok(/*check_rat=*/true);
  rat_ok.add_clause({1, 2});
  EXPECT_TRUE(rat_ok.check({{ProofOp::Kind::Add, {3}}}).valid);

  DratChecker rup_only(/*check_rat=*/false);
  rup_only.add_clause({1, 2});
  EXPECT_FALSE(rup_only.check({{ProofOp::Kind::Add, {3}}}).valid);
}

// ------------------------------------------- writers and parsers ----

TEST(DratFormat, TextRoundTrip) {
  std::ostringstream out;
  TextDratWriter writer(out);
  writer.add({Lit(0, false), Lit(1, true)});
  writer.del({Lit(2, false)});
  writer.add({});

  std::istringstream in(out.str());
  const auto ops = parse_drat_text(in);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, ProofOp::Kind::Add);
  EXPECT_EQ(ops[0].lits, (IntClause{1, -2}));
  EXPECT_EQ(ops[1].kind, ProofOp::Kind::Delete);
  EXPECT_EQ(ops[1].lits, (IntClause{3}));
  EXPECT_EQ(ops[2].kind, ProofOp::Kind::Add);
  EXPECT_TRUE(ops[2].lits.empty());
}

TEST(DratFormat, TextParserSkipsCommentsAndBlanks) {
  std::istringstream in("c a comment\n\n1 -2 0\n");
  const auto ops = parse_drat_text(in);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].lits, (IntClause{1, -2}));
}

TEST(DratFormat, TextParserRejectsMalformedInput) {
  std::istringstream junk("1 x 0\n");
  EXPECT_THROW(parse_drat_text(junk), std::runtime_error);
  std::istringstream unterminated("1 -2\n");
  EXPECT_THROW(parse_drat_text(unterminated), std::runtime_error);
  std::istringstream trailing("1 0 2\n");
  EXPECT_THROW(parse_drat_text(trailing), std::runtime_error);
}

TEST(DratFormat, BinaryRoundTrip) {
  // Variable 299 forces a multi-byte varint (2*300 = 600 > 127).
  std::ostringstream out;
  BinaryDratWriter writer(out);
  writer.add({Lit(0, false), Lit(299, true)});
  writer.del({Lit(1, false)});
  writer.add({});

  std::istringstream in(out.str());
  const auto ops = parse_drat_binary(in);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, ProofOp::Kind::Add);
  EXPECT_EQ(ops[0].lits, (IntClause{1, -300}));
  EXPECT_EQ(ops[1].kind, ProofOp::Kind::Delete);
  EXPECT_EQ(ops[1].lits, (IntClause{2}));
  EXPECT_TRUE(ops[2].lits.empty());
}

TEST(DratFormat, BinaryParserRejectsTruncation) {
  std::istringstream bad_prefix("x");
  EXPECT_THROW(parse_drat_binary(bad_prefix), std::runtime_error);
  std::string cut("a");
  cut.push_back(static_cast<char>(0x82));  // continuation bit, then EOF
  std::istringstream truncated(cut);
  EXPECT_THROW(parse_drat_binary(truncated), std::runtime_error);
}

TEST(DratFormat, XorClausesExpandParity) {
  const auto cs = xor_clauses({1, 2}, true);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], (IntClause{1, 2}));       // forbid 00
  EXPECT_EQ(cs[1], (IntClause{-1, -2}));     // forbid 11
  EXPECT_TRUE(xor_clauses({}, false).empty());
  const auto contradiction = xor_clauses({}, true);
  ASSERT_EQ(contradiction.size(), 1u);
  EXPECT_TRUE(contradiction[0].empty());
  EXPECT_THROW(xor_clauses(std::vector<int>(25, 1), true),
               std::invalid_argument);
}

TEST(DratFormat, ClausalViewCancelsDuplicateXorVars) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses.push_back({Lit(0, false)});
  // x0 ^ x0 ^ x1 = 1 reduces to x1 = 1: a single unit clause.
  cnf.xors.emplace_back(std::vector<Var>{0, 0, 1}, true);
  const auto view = clausal_view(cnf);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[1], (IntClause{2}));
}

// ------------------------------------- solver proof emission ----

// Certify a finished solver run: replay the recorded proof against the
// recorded axiom stream with a fresh independent checker. `extra_units`
// extends the formula (used for assumption-conditional UNSAT), and
// `expect_unsat` additionally requires a verified empty clause.
DratChecker::Result certify(const MemoryProof& proof, bool expect_unsat,
                            const std::vector<IntClause>& extra_units = {},
                            bool append_empty = false) {
  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  for (const auto& c : extra_units) checker.add_clause(c);
  std::vector<ProofOp> ops = proof.ops();
  if (append_empty) ops.push_back({ProofOp::Kind::Add, {}});
  const auto res = checker.check(ops);
  EXPECT_TRUE(res.valid) << res.error;
  if (expect_unsat) {
    EXPECT_TRUE(res.proved_unsat);
  }
  return res;
}

Solver make_proof_solver(MemoryProof& proof) {
  SolverOptions opts;
  opts.proof = &proof;
  return Solver(opts);
}

std::vector<Var> make_vars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  return vars;
}

void add_pigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(static_cast<std::size_t>(pigeons));
  for (auto& row : p) {
    for (int j = 0; j < holes; ++j) row.push_back(s.new_var());
  }
  for (const auto& row : p) {
    std::vector<Lit> c;
    for (Var x : row) c.push_back(mk_lit(x));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (std::size_t j = 0; j < static_cast<std::size_t>(holes); ++j) {
    for (std::size_t i1 = 0; i1 < p.size(); ++i1) {
      for (std::size_t i2 = i1 + 1; i2 < p.size(); ++i2) {
        ASSERT_TRUE(s.add_clause({~mk_lit(p[i1][j]), ~mk_lit(p[i2][j])}));
      }
    }
  }
}

TEST(SolverProof, PigeonholeCertified) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  add_pigeonhole(s, 4, 3);
  ASSERT_EQ(s.solve(), Status::Unsat);
  ASSERT_FALSE(proof.ops().empty());
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, ContradictingUnitsCertified) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  EXPECT_FALSE(s.add_clause({~mk_lit(a)}));
  EXPECT_EQ(s.solve(), Status::Unsat);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, XorParityConflictCertified) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({a, c}, true));
  ASSERT_TRUE(s.add_xor({b, c}, true));
  ASSERT_EQ(s.solve(), Status::Unsat);
  // The axiom stream must carry the XOR expansions.
  ASSERT_EQ(proof.formula().size(), 6u);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, CardinalityConflictCertified) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  auto v = make_vars(s, 5);
  std::vector<Lit> lits;
  for (Var x : v) lits.push_back(mk_lit(x));
  ASSERT_TRUE(encode_at_most(s, lits, 1));
  ASSERT_TRUE(s.add_clause({mk_lit(v[0])}));
  // Forcing a second true literal contradicts the at-most-1 counter.
  const bool ok = s.add_clause({mk_lit(v[1])});
  ASSERT_EQ(ok ? s.solve() : Status::Unsat, Status::Unsat);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, EmptyXorCertified) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  Var a = s.new_var();
  ASSERT_TRUE(s.add_xor({a, a}, false));
  EXPECT_FALSE(s.add_xor({a, a}, true));  // folds to 0 = 1
  EXPECT_EQ(s.solve(), Status::Unsat);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, AssumptionUnsatCertifiedWithAssumptionUnits) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({~mk_lit(a), mk_lit(b)}));  // a -> b
  ASSERT_EQ(s.solve_assuming({mk_lit(a), ~mk_lit(b)}), Status::Unsat);
  ASSERT_FALSE(s.final_conflict().empty());
  // The logged failure clause is implied by the formula alone; under the
  // assumptions (added as formula units) it completes a refutation.
  certify(proof, /*expect_unsat=*/true, {{1}, {-2}}, /*append_empty=*/true);
  // The solver stays usable and the unconditional problem is still SAT.
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(SolverProof, MutatedProofRejected) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  add_pigeonhole(s, 4, 3);
  ASSERT_EQ(s.solve(), Status::Unsat);

  // An empty clause out of thin air: unit propagation on the pigeonhole
  // axioms alone yields no conflict, so the checker must reject it.
  auto forged_empty = proof.ops();
  forged_empty.insert(forged_empty.begin(), {ProofOp::Kind::Add, {}});
  DratChecker c1;
  for (const auto& c : proof.formula()) c1.add_clause(c);
  const auto r1 = c1.check(forged_empty);
  EXPECT_FALSE(r1.valid);
  EXPECT_FALSE(r1.proved_unsat);

  // A forged unit ("pigeon 1 sits in hole 1") is neither RUP nor RAT.
  auto forged_unit = proof.ops();
  forged_unit.insert(forged_unit.begin(), {ProofOp::Kind::Add, {1}});
  DratChecker c2;
  for (const auto& c : proof.formula()) c2.add_clause(c);
  EXPECT_FALSE(c2.check(forged_unit).valid);
}

TEST(SolverProof, GaussIsIncompatible) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  opts.use_gauss = true;
  EXPECT_THROW(Solver{opts}, std::invalid_argument);
}

TEST(SolverProof, WideXorThrowsInProofMode) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  auto v = make_vars(s, static_cast<int>(kProofMaxXorArity) + 1);
  EXPECT_THROW(s.add_xor(v, true), std::invalid_argument);
}

TEST(SolverProof, ProofModeDisablesXorChunking) {
  // A 16-wide XOR would normally be split with auxiliary link variables;
  // in proof mode it attaches whole, so no fresh variables appear.
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  opts.xor_chunk_size = 4;
  Solver s{opts};
  auto v = make_vars(s, 16);
  ASSERT_TRUE(s.add_xor(v, true));
  EXPECT_EQ(s.num_vars(), 16);
  EXPECT_EQ(proof.formula().size(), std::size_t{1} << 15);
}

TEST(SolverProof, CloneDetachesFromSink) {
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  add_pigeonhole(s, 4, 3);
  const auto axioms_before = proof.formula().size();
  const auto ops_before = proof.ops().size();
  auto twin = s.clone();
  ASSERT_EQ(twin->solve(), Status::Unsat);
  EXPECT_EQ(proof.formula().size(), axioms_before);
  EXPECT_EQ(proof.ops().size(), ops_before);
  // The original still proves — and certifies — on its own.
  ASSERT_EQ(s.solve(), Status::Unsat);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, GaussVerdictCertifiedByTwinWithoutGauss) {
  // DRAT cannot express the Gaussian engine's row combinations; the Gauss
  // UNSAT verdict is certified by re-solving the instance on a proof-
  // logging twin with the watched-XOR engine.
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.xors.emplace_back(std::vector<Var>{0, 1}, true);
  cnf.xors.emplace_back(std::vector<Var>{1, 2}, true);
  cnf.xors.emplace_back(std::vector<Var>{0, 2}, true);

  SolverOptions gopts;
  gopts.use_gauss = true;
  Solver gauss(gopts);
  cnf.load_into(gauss);
  ASSERT_EQ(gauss.solve(), Status::Unsat);

  MemoryProof proof;
  Solver twin = make_proof_solver(proof);
  cnf.load_into(twin);
  ASSERT_EQ(twin.solve(), Status::Unsat);
  certify(proof, /*expect_unsat=*/true);
}

TEST(SolverProof, GuardedAllSatCompletionCertified) {
  // Guarded enumeration: blocking clauses carry ~guard and enter the axiom
  // stream; the completion UNSAT is conditional on the guard, so the
  // certificate adds {guard} as a formula unit and derives the empty
  // clause from the logged assumption-failure clause.
  MemoryProof proof;
  Solver s = make_proof_solver(proof);
  Var a = s.new_var(), b = s.new_var();
  Var guard = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a), mk_lit(b)}));

  AllSatOptions opts;
  opts.guard = mk_lit(guard);
  const auto result = enumerate_models(s, {a, b}, opts);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 3u);

  certify(proof, /*expect_unsat=*/true, {{lit_to_dimacs(mk_lit(guard))}},
          /*append_empty=*/true);

  // Retiring the guard keeps the solver reusable: the blocking clauses die
  // and the instance is SAT again.
  ASSERT_TRUE(s.add_clause({~mk_lit(guard)}));
  EXPECT_EQ(s.solve(), Status::Sat);
}

// -------------------------------------------------- auditor ----

TEST(Auditor, SweepsCleanSolver) {
  AuditOptions aopts;
  aopts.check_learnt_rup = true;
  Auditor auditor(aopts);
  Solver s;
  s.set_auditor(&auditor);
  ASSERT_EQ(s.auditor(), &auditor);
  add_pigeonhole(s, 4, 3);
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_GT(auditor.checkpoints_seen(), 0u);
  EXPECT_GT(auditor.audits_run(), 0u);
}

TEST(Auditor, ManualAuditAtLevelZero) {
  Auditor auditor;
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a), mk_lit(b)}));
  ASSERT_TRUE(s.add_xor({a, b}, true));
  EXPECT_NO_THROW(auditor.audit(s));
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_NO_THROW(auditor.audit(s));
}

TEST(Auditor, PeriodSkipsCheckpoints) {
  AuditOptions aopts;
  aopts.period = 1000000;  // sweep (at most) the first checkpoint only
  Auditor auditor(aopts);
  Solver s;
  s.set_auditor(&auditor);
  add_pigeonhole(s, 4, 3);
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_GT(auditor.checkpoints_seen(), auditor.audits_run());
}

// ------------------------------------------ certification fuzz ----

// 50 seeds x 4 configurations = 200 randomized instances, every one solved
// with proof logging on and a period-1 auditor (learnt-RUP sweep included)
// attached. UNSAT verdicts must be certified by the independent checker;
// SAT models must satisfy the instance.
struct ProofFuzzParams {
  std::uint64_t seed;
  int config;  // 0 = cnf, 1 = cnf+xor, 2 = cnf+card, 3 = cnf+xor+assumptions
};

class ProofFuzzTest : public ::testing::TestWithParam<ProofFuzzParams> {};

Cnf random_cnf(f2::Rng& rng, int num_vars, int num_clauses, int num_xors) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    const int len = 1 + static_cast<int>(rng.below(3));
    std::vector<Lit> c;
    for (int j = 0; j < len; ++j) {
      c.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(num_vars))),
                      rng.flip()));
    }
    cnf.clauses.push_back(std::move(c));
  }
  for (int i = 0; i < num_xors; ++i) {
    const int len = 2 + static_cast<int>(rng.below(4));
    std::vector<Var> vars;
    for (int j = 0; j < len; ++j) {
      vars.push_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(num_vars))));
    }
    cnf.xors.emplace_back(std::move(vars), rng.flip());
  }
  return cnf;
}

TEST_P(ProofFuzzTest, EveryUnsatVerdictIsCertified) {
  const auto p = GetParam();
  f2::Rng rng(p.seed * 4 + static_cast<std::uint64_t>(p.config) + 1);
  const int num_vars = 6 + static_cast<int>(rng.below(5));
  const bool with_xors = p.config == 1 || p.config == 3;
  const int num_clauses = 10 + static_cast<int>(rng.below(8));
  const int num_xors = with_xors ? 2 + static_cast<int>(rng.below(3)) : 0;
  const Cnf cnf = random_cnf(rng, num_vars, num_clauses, num_xors);

  MemoryProof proof;
  AuditOptions aopts;
  aopts.check_learnt_rup = true;
  Auditor auditor(aopts);

  SolverOptions sopts;
  sopts.proof = &proof;
  Solver s(sopts);
  s.set_auditor(&auditor);

  bool ok = cnf.load_into(s);
  if (ok && p.config == 2) {
    // Random cardinality layer over the problem variables.
    std::vector<Lit> lits;
    for (Var v = 0; v < cnf.num_vars; ++v) lits.push_back(mk_lit(v));
    const int k = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars - 1)));
    ok = encode_exactly(s, lits, k);
  }

  std::vector<Lit> assumptions;
  if (p.config == 3) {
    const int n = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < n; ++i) {
      assumptions.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(num_vars))),
                                rng.flip()));
    }
  }

  const Status st = !ok                   ? Status::Unsat
                    : assumptions.empty() ? s.solve()
                                          : s.solve_assuming(assumptions);
  ASSERT_NE(st, Status::Unknown);
  // Instances refuted while loading never reach a search checkpoint; every
  // searched-to-SAT run hits at least one post-propagate fixpoint.
  if (st == Status::Sat) {
    EXPECT_GT(auditor.audits_run(), 0u);
  }

  // Replaying the proof must succeed for every verdict: a SAT run's learnt
  // clauses are implied too.
  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  auto res = checker.check(proof.ops());
  EXPECT_TRUE(res.valid) << "seed " << p.seed << " config " << p.config
                         << ": " << res.error;

  if (st == Status::Unsat) {
    if (!res.proved_unsat) {
      // Conditional (assumption) UNSAT: the assumptions close the proof.
      ASSERT_FALSE(assumptions.empty());
      DratChecker closing;
      for (const auto& c : proof.formula()) closing.add_clause(c);
      for (Lit a : assumptions) closing.add_clause({lit_to_dimacs(a)});
      auto ops = proof.ops();
      ops.push_back({ProofOp::Kind::Add, {}});
      res = closing.check(ops);
      EXPECT_TRUE(res.valid) << "seed " << p.seed << " config " << p.config
                             << ": " << res.error;
      EXPECT_TRUE(res.proved_unsat);
    }
  } else {
    std::vector<bool> model;
    for (Var v = 0; v < cnf.num_vars; ++v) {
      model.push_back(s.model_value(v) == LBool::True);
    }
    EXPECT_TRUE(cnf.satisfied_by(model));
    for (Lit a : assumptions) {
      EXPECT_EQ(s.model_value(a), LBool::True);
    }
  }

  // Small pure instances: cross-check the verdict against brute force.
  if (p.config == 0 || p.config == 1) {
    const bool any_model = !reference_all_models(cnf).empty();
    if (assumptions.empty()) {
      EXPECT_EQ(st == Status::Sat, any_model);
    } else if (st == Status::Sat) {
      EXPECT_TRUE(any_model);
    }
  }
}

std::vector<ProofFuzzParams> proof_fuzz_params() {
  std::vector<ProofFuzzParams> out;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (int config = 0; config < 4; ++config) out.push_back({seed, config});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Random, ProofFuzzTest,
                         ::testing::ValuesIn(proof_fuzz_params()));

}  // namespace
}  // namespace tp::sat
