// Tests for util/sync.hpp: the capability-annotated Mutex/MutexLock/
// CondVar wrappers and the debug lock-rank checker. The *static* half of
// the contract (guarded-by proofs) is checked by the CI thread-safety job
// under clang; what's testable at runtime is mutual exclusion, condvar
// signaling, and the rank-order assertions.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/sync.hpp"

using namespace tp;

TEST(SyncMutex, MutexLockProvidesMutualExclusion) {
  util::Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SyncMutex, TryLockReportsContention) {
  util::Mutex mu;
  mu.lock();
  // A *different* thread must fail to acquire: try_lock on the owning
  // thread would be UB on a plain std::mutex.
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();

  std::thread probe2([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(SyncCondVar, WaitWakesOnNotify) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    util::MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    observed = 1;
  });
  {
    util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 1);
}

TEST(SyncCondVar, WaitForTimesOutWithoutNotify) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  const auto st = cv.wait_for(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(st, std::cv_status::timeout);
}

TEST(SyncRank, AscendingAcquisitionIsAccepted) {
  // The documented hierarchy: engine < portfolio < pool < obs. Nesting in
  // that order must be silent in every build type.
  util::Mutex engine(util::LockRank::kEngine);
  util::Mutex pool(util::LockRank::kPool);
  util::Mutex obs(util::LockRank::kObs);
  util::MutexLock a(engine);
  util::MutexLock b(pool);
  util::MutexLock c(obs);
  SUCCEED();
}

TEST(SyncRank, UnrankedMutexesOptOut) {
  util::Mutex obs(util::LockRank::kObs);
  util::Mutex plain;  // e.g. a test-local mutex with no hierarchy slot
  util::MutexLock a(obs);
  util::MutexLock b(plain);  // acquiring below a ranked lock is fine
  SUCCEED();
}

TEST(SyncRank, RanksAreReusableAfterRelease) {
  util::Mutex pool(util::LockRank::kPool);
  util::Mutex obs(util::LockRank::kObs);
  for (int i = 0; i < 3; ++i) {
    util::MutexLock a(pool);
    util::MutexLock b(obs);
  }
  {
    // Sequential (non-nested) same-rank use is legal: the order check
    // constrains what is held *simultaneously*.
    util::MutexLock a(pool);
  }
  {
    util::MutexLock b(pool);
  }
  SUCCEED();
}

#ifndef NDEBUG
// The rank checker is an assert, so inversion tests are debug-only death
// tests (the ASan/UBSan CI job builds Debug and runs them).

TEST(SyncRankDeathTest, DescendingAcquisitionAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        util::Mutex obs(util::LockRank::kObs);
        util::Mutex engine(util::LockRank::kEngine);
        util::MutexLock a(obs);
        util::MutexLock b(engine);  // obs is the leaf: nothing nests below
      },
      "lock-order violation");
}

TEST(SyncRankDeathTest, SameRankNestingAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        util::Mutex a(util::LockRank::kPool);
        util::Mutex b(util::LockRank::kPool);
        util::MutexLock la(a);
        util::MutexLock lb(b);  // the ABBA shape the hierarchy forbids
      },
      "lock-order violation");
}
#endif  // NDEBUG
