// Tests for timestamp encodings: construction, LI-depth guarantees,
// widths, and the logging-rate arithmetic.

#include <gtest/gtest.h>

#include <unordered_set>

#include "f2/matrix.hpp"
#include "timeprint/design.hpp"
#include "timeprint/encoding.hpp"

namespace tp::core {
namespace {

TEST(CounterBits, MatchesCeilLog2) {
  EXPECT_EQ(counter_bits(1), 1u);
  EXPECT_EQ(counter_bits(2), 2u);
  EXPECT_EQ(counter_bits(3), 2u);
  EXPECT_EQ(counter_bits(4), 3u);
  EXPECT_EQ(counter_bits(15), 4u);
  EXPECT_EQ(counter_bits(16), 5u);
  EXPECT_EQ(counter_bits(1000), 10u);
  EXPECT_EQ(counter_bits(1024), 11u);
}

TEST(Encoding, OneHotIsFullyIndependent) {
  auto enc = TimestampEncoding::one_hot(12);
  EXPECT_EQ(enc.m(), 12u);
  EXPECT_EQ(enc.width(), 12u);
  EXPECT_TRUE(f2::Matrix::linearly_independent(enc.timestamps()));
  EXPECT_EQ(enc.to_matrix().rank(), 12u);
}

TEST(Encoding, BinaryTimestampsAreDistinctNonzero) {
  auto enc = TimestampEncoding::binary(100);
  EXPECT_EQ(enc.width(), counter_bits(100));
  std::unordered_set<f2::BitVec> seen;
  for (const auto& ts : enc.timestamps()) {
    EXPECT_FALSE(ts.is_zero());
    EXPECT_TRUE(seen.insert(ts).second) << "duplicate timestamp";
  }
}

TEST(Encoding, RandomConstrainedSatisfiesLi4) {
  auto enc = TimestampEncoding::random_constrained(64, 13, 4, /*seed=*/1);
  EXPECT_EQ(enc.m(), 64u);
  EXPECT_EQ(enc.width(), 13u);
  EXPECT_TRUE(enc.verify_li(4));
  EXPECT_TRUE(enc.verify_li(3));
  EXPECT_TRUE(enc.verify_li(2));
}

TEST(Encoding, RandomConstrainedThrowsWhenWidthTooSmall) {
  // 64 LI-4 timestamps cannot fit in 7 bits (pairwise XORs alone need
  // C(64,2)=2016 distinct nonzero values out of 127).
  EXPECT_THROW(TimestampEncoding::random_constrained(64, 7, 4, 1, /*max_attempts=*/100000),
               std::runtime_error);
}

TEST(Encoding, RandomConstrainedIsSeedDeterministic) {
  auto a = TimestampEncoding::random_constrained(32, 12, 4, 99);
  auto b = TimestampEncoding::random_constrained(32, 12, 4, 99);
  auto c = TimestampEncoding::random_constrained(32, 12, 4, 100);
  EXPECT_EQ(a.timestamps(), b.timestamps());
  EXPECT_NE(a.timestamps(), c.timestamps());
}

TEST(Encoding, IncrementalIsLexicographicallyMinimal) {
  auto enc = TimestampEncoding::incremental(16, 10, 4);
  EXPECT_TRUE(enc.verify_li(4));
  // Greedy lexicode starts 1, 2, 4, 8, ... for the first independent picks?
  // At minimum it must be strictly increasing as integers.
  for (std::size_t i = 1; i < enc.m(); ++i) {
    EXPECT_LT(enc.timestamp(i - 1), enc.timestamp(i));
  }
  EXPECT_EQ(enc.timestamp(0).to_uint(), 1u);
  EXPECT_EQ(enc.timestamp(1).to_uint(), 2u);
}

TEST(Encoding, IncrementalDepth2IsAllNonzeroValues) {
  // At depth 2 the greedy code takes every nonzero value: 1, 2, 3, ...
  auto enc = TimestampEncoding::incremental(7, 3, 2);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(enc.timestamp(i).to_uint(), i + 1);
  }
}

TEST(Encoding, IncrementalAutoFindsMinimalWidth) {
  auto enc = TimestampEncoding::incremental_auto(64, 4);
  EXPECT_EQ(enc.m(), 64u);
  EXPECT_TRUE(enc.verify_li(4));
  // The same construction must fail at width-1.
  EXPECT_THROW(TimestampEncoding::incremental(64, enc.width() - 1, 4),
               std::runtime_error);
}

TEST(Encoding, GreedyLexicodeWidthIsNearTheoreticalBound) {
  // A distance-5 (LI-4) code with m codewords needs roughly 2·log2(m)
  // parity bits (BCH bound). The greedy lexicode should land close for the
  // paper's trace-cycle lengths.
  auto enc64 = TimestampEncoding::incremental_auto(64, 4);
  EXPECT_GE(enc64.width(), 12u);
  EXPECT_LE(enc64.width(), 16u);
}

TEST(Encoding, VerifyLiDetectsViolation) {
  // Hand-build an encoding-like set that is LI-2 but not LI-3 using the
  // checker on a binary encoding (1, 2, 3 = 1^2 violates depth 3).
  auto enc = TimestampEncoding::binary(7);
  EXPECT_TRUE(enc.verify_li(2));   // all distinct and nonzero
  EXPECT_FALSE(enc.verify_li(3));  // 3 = 1 XOR 2
}

TEST(Encoding, BitsPerTraceCycleAndLogRate) {
  // Paper §5.2.1: m = 1000, b = 24 on a 5 MHz CAN bus => 5 entries/s of
  // 24+10 bits = 170 bps.
  auto enc = TimestampEncoding::random_constrained(1000, 24, 4, 3);
  EXPECT_EQ(enc.bits_per_trace_cycle(), 34u);
  EXPECT_NEAR(enc.log_rate_bps(5e6), 170000.0 / 1000.0 * 1000.0, 1e-6);
  EXPECT_NEAR(enc.log_rate_bps(5e6), 170.0 * 1000.0, 1e-6);
}

TEST(Encoding, PaperTable1LogRates) {
  // Table 1's R column at 100 MHz: m=64,b=13 -> (13+7)/64*100MHz? The
  // paper reports 20.97 MHz-equivalent bit rate for m=64. Counter bits for
  // m=64 is ceil(log2(65)) = 7; (13+7)/64*100e6 = 31.25 Mbps. The paper's
  // 20.97 corresponds to (13.42)/64 -- it uses log2(m)=6 and truncates.
  // We assert our own formula's value and its monotone decrease with m.
  const double r64 = log_rate_bps(64, 13, 100e6);
  const double r128 = log_rate_bps(128, 16, 100e6);
  const double r512 = log_rate_bps(512, 22, 100e6);
  const double r1024 = log_rate_bps(1024, 24, 100e6);
  EXPECT_GT(r64, r128);
  EXPECT_GT(r128, r512);
  EXPECT_GT(r512, r1024);
  EXPECT_NEAR(r64, (13 + 7) / 64.0 * 100e6, 1);
  EXPECT_NEAR(r1024, (24 + 11) / 1024.0 * 100e6, 1);
}

TEST(Design, PaperWidths) {
  EXPECT_EQ(paper_width(64), 13u);
  EXPECT_EQ(paper_width(128), 16u);
  EXPECT_EQ(paper_width(512), 22u);
  EXPECT_EQ(paper_width(1024), 24u);
}

TEST(Design, ExpectedSolutionsShrinksWithWidth) {
  const double wide = expected_solutions(64, 4, 20);
  const double narrow = expected_solutions(64, 4, 10);
  EXPECT_LT(wide, narrow);
  // C(16,4) = 1820; with b=8: 1820/256 ~ 7.1 expected solutions — the
  // Figure 4 didactic instance indeed has 8.
  EXPECT_NEAR(expected_solutions(16, 4, 8), 1820.0 / 256.0, 1e-9);
}

struct SchemeCase {
  EncodingScheme scheme;
  const char* name;
};

class SchemeNameTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeNameTest, ToString) {
  EXPECT_STREQ(to_string(GetParam().scheme), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    All, SchemeNameTest,
    ::testing::Values(SchemeCase{EncodingScheme::OneHot, "one-hot"},
                      SchemeCase{EncodingScheme::Binary, "binary"},
                      SchemeCase{EncodingScheme::RandomConstrained, "random-constrained"},
                      SchemeCase{EncodingScheme::Incremental, "incremental"}));

// Property sweep: both LI-4 constructions stay LI-4 across sizes.
struct LiSweep {
  std::size_t m;
  std::size_t b;
};

class LiSweepTest : public ::testing::TestWithParam<LiSweep> {};

TEST_P(LiSweepTest, RandomConstrainedVerifies) {
  const auto [m, b] = GetParam();
  auto enc = TimestampEncoding::random_constrained(m, b, 4, /*seed=*/m * 31 + b);
  EXPECT_TRUE(enc.verify_li(4));
  EXPECT_EQ(enc.scheme(), EncodingScheme::RandomConstrained);
}

TEST_P(LiSweepTest, IncrementalVerifies) {
  const auto [m, b] = GetParam();
  auto enc = TimestampEncoding::incremental(m, b + 4, 4);  // greedy needs more width
  EXPECT_TRUE(enc.verify_li(4));
  EXPECT_EQ(enc.scheme(), EncodingScheme::Incremental);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LiSweepTest,
                         ::testing::Values(LiSweep{16, 10}, LiSweep{32, 12},
                                           LiSweep{64, 13}, LiSweep{128, 16}));

}  // namespace
}  // namespace tp::core
