// Integration tests for the Signal Reconstruction solver, including the
// paper's complete Figure 4 didactic example.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "f2/matrix.hpp"
#include "obs/trace.hpp"
#include "sat/drat.hpp"
#include "timeprint/galois.hpp"
#include "timeprint/reconstruct.hpp"
#include "timeprint/verify.hpp"

namespace tp::core {
namespace {

// The 16 8-bit timestamps of the paper's Figure 4 (MSB-first strings).
TimestampEncoding fig4_encoding() {
  const char* strs[16] = {"00010100", "00111010", "00001111", "01000100",
                          "00000010", "10101110", "01100000", "11110101",
                          "00010111", "11100111", "10100000", "10101000",
                          "10011110", "10001111", "01110000", "01101100"};
  std::vector<f2::BitVec> ts;
  for (const char* s : strs) ts.push_back(f2::BitVec::from_string(s));
  return TimestampEncoding::from_vectors(std::move(ts), 2);
}

std::set<std::string> to_strings(const std::vector<Signal>& signals) {
  std::set<std::string> out;
  for (const Signal& s : signals) out.insert(s.to_string());
  return out;
}

TEST(Figure4, LinearSystemHas256Solutions) {
  // "There are 256 possible change combinations of timestamps that can
  // lead to TP" — solutions of A·x = TP ignoring k.
  auto enc = fig4_encoding();
  f2::Matrix a = enc.to_matrix();
  auto sol = a.solve(f2::BitVec::from_string("00000001"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->count(), 256u);
}

TEST(Figure4, ExactlyEightSignalsWithFourChanges) {
  // "Only 8 combinations has 4 ones, k = 4".
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};

  const auto brute = Reconstructor::brute_force(enc, entry);
  EXPECT_EQ(brute.size(), 8u);

  Reconstructor rec(enc);
  auto result = rec.reconstruct(entry);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.signals.size(), 8u);
  EXPECT_EQ(to_strings(result.signals), to_strings(brute));

  // The actual signal (changes at 1-based cycles 4,5,10,11) is among them.
  const Signal actual = Signal::from_change_cycles(16, {3, 4, 9, 10});
  EXPECT_TRUE(to_strings(result.signals).contains(actual.to_string()));
}

TEST(Figure4, AlternativeCombinationAlsoExplainsTimeprint) {
  // The paper lists TS(1)+TS(5)+TS(9) as another combination summing to
  // TP (with k = 3, so excluded once k is used).
  auto enc = fig4_encoding();
  f2::BitVec sum = enc.timestamp(0) ^ enc.timestamp(4) ^ enc.timestamp(8);
  EXPECT_EQ(sum.to_string(), "00000001");
  const LogEntry entry3{f2::BitVec::from_string("00000001"), 3};
  const auto k3 = Reconstructor::brute_force(enc, entry3);
  const Signal alt = Signal::from_change_cycles(16, {0, 4, 8});
  EXPECT_TRUE(to_strings(k3).contains(alt.to_string()));
}

TEST(Figure4, PairPropertyIsolatesTheActualSignal) {
  // §3.3: with the "changes come as two consecutive ones" property the
  // reconstruction is unique and equals the actual signal.
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};
  ChangesInConsecutivePairs pairs;
  Reconstructor rec(enc);
  rec.add_property(pairs);
  auto result = rec.reconstruct(entry);
  ASSERT_TRUE(result.complete());
  ASSERT_EQ(result.signals.size(), 1u);
  EXPECT_EQ(result.signals[0], Signal::from_change_cycles(16, {3, 4, 9, 10}));
}

TEST(Figure4, DeadlinePropertyHoldsForAllReconstructions) {
  // §3.3: "all 8 possible reconstructed signals have a 1-bit already
  // before the 8-th position" — the deadline is met no matter which signal
  // actually occurred.
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};
  Reconstructor rec(enc);
  MinChangesBefore deadline_met(/*deadline=*/8, /*min_changes=*/1);
  auto check = rec.check_hypothesis(entry, deadline_met);
  EXPECT_EQ(check.verdict, CheckVerdict::HoldsForAll);
  EXPECT_FALSE(check.witness.has_value());
}

TEST(Figure4, FalseHypothesisYieldsWitness) {
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};
  Reconstructor rec(enc);
  // "At least one change in the first two cycles" is not true of every
  // reconstruction; expect a counterexample witness.
  ChangeInWindow early(0, 2);
  auto check = rec.check_hypothesis(entry, early);
  EXPECT_EQ(check.verdict, CheckVerdict::ViolatedBySome);
  ASSERT_TRUE(check.witness.has_value());
  // The witness must be a genuine reconstruction violating the hypothesis.
  Logger logger(enc);
  EXPECT_EQ(logger.log(*check.witness), entry);
  EXPECT_FALSE(early.holds(*check.witness));
}

TEST(Reconstruct, HypothesisWithoutNegationThrows) {
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  ChangesInConsecutivePairs pairs;  // no negation implemented
  EXPECT_THROW(rec.check_hypothesis({f2::BitVec(8), 0}, pairs), std::invalid_argument);
}

TEST(Reconstruct, EmptyPreimageIsUnsat) {
  // k = 1 with a timeprint matching no single timestamp.
  auto enc = fig4_encoding();
  f2::BitVec impossible = f2::BitVec::from_string("11111111");
  bool is_some_timestamp = false;
  for (const auto& ts : enc.timestamps()) is_some_timestamp |= (ts == impossible);
  ASSERT_FALSE(is_some_timestamp);
  Reconstructor rec(enc);
  auto result = rec.reconstruct({impossible, 1});
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.signals.empty());
}

TEST(Reconstruct, ZeroChangesHasUniqueEmptySolution) {
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  auto result = rec.reconstruct({f2::BitVec(8), 0});
  ASSERT_TRUE(result.complete());
  ASSERT_EQ(result.signals.size(), 1u);
  EXPECT_EQ(result.signals[0], Signal(16));
}

TEST(Reconstruct, MaxSolutionsCapStopsEarly) {
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  ReconstructionOptions opt;
  opt.max_solutions = 3;
  auto result = rec.reconstruct({f2::BitVec::from_string("00000001"), 4}, opt);
  EXPECT_EQ(result.signals.size(), 3u);
  EXPECT_FALSE(result.complete());
}

TEST(Reconstruct, OneHotEncodingIsUnambiguous) {
  // With one-hot timestamps the preimage of any reachable entry is a
  // single signal (paper §4.3's "ideal" case).
  auto enc = TimestampEncoding::one_hot(20);
  Logger logger(enc);
  f2::Rng rng(12);
  Reconstructor rec(enc);
  for (int iter = 0; iter < 5; ++iter) {
    Signal s = Signal::random_with_changes(20, 1 + rng.below(19), rng);
    auto result = rec.reconstruct(logger.log(s));
    ASSERT_TRUE(result.complete());
    ASSERT_EQ(result.signals.size(), 1u);
    EXPECT_EQ(result.signals[0], s);
  }
}

// ---- randomized agreement with brute force across configurations ----

struct ReconCase {
  std::uint64_t seed;
  std::size_t m;
  std::size_t b;
  std::size_t k;
  bool native_xor;
  sat::CardEncoding card;
};

class ReconstructAgreementTest : public ::testing::TestWithParam<ReconCase> {};

TEST_P(ReconstructAgreementTest, SatMatchesBruteForce) {
  const auto& p = GetParam();
  auto enc = TimestampEncoding::random_constrained(p.m, p.b, 4, p.seed);
  Logger logger(enc);
  f2::Rng rng(p.seed * 7 + 1);
  const Signal actual = Signal::random_with_changes(p.m, p.k, rng);
  const LogEntry entry = logger.log(actual);

  const auto brute = Reconstructor::brute_force(enc, entry);

  Reconstructor rec(enc);
  ReconstructionOptions opt;
  opt.native_xor = p.native_xor;
  opt.use_gauss = p.native_xor;  // the Gaussian engine needs native XOR rows
  opt.card_encoding = p.card;
  auto result = rec.reconstruct(entry, opt);
  ASSERT_TRUE(result.complete());

  EXPECT_EQ(to_strings(result.signals), to_strings(brute));
  EXPECT_TRUE(to_strings(result.signals).contains(actual.to_string()));
  // Every reconstruction abstracts back to the same log entry.
  for (const Signal& s : result.signals) {
    EXPECT_EQ(logger.log(s), entry);
  }
}

std::vector<ReconCase> recon_cases() {
  std::vector<ReconCase> out;
  std::uint64_t seed = 1;
  for (bool native : {true, false}) {
    for (auto card : {sat::CardEncoding::SequentialCounter, sat::CardEncoding::Totalizer}) {
      out.push_back({seed++, 16, 9, 3, native, card});
      out.push_back({seed++, 20, 10, 4, native, card});
      out.push_back({seed++, 24, 11, 5, native, card});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Configs, ReconstructAgreementTest,
                         ::testing::ValuesIn(recon_cases()));

TEST(Reconstruct, PropertyPruningMatchesFilteredBruteForce) {
  auto enc = TimestampEncoding::random_constrained(18, 9, 4, 42);
  Logger logger(enc);
  // Actual signal: two pairs of consecutive changes.
  const Signal actual = Signal::from_change_cycles(18, {2, 3, 11, 12});
  const LogEntry entry = logger.log(actual);

  ChangesInConsecutivePairs pairs;
  const std::vector<const Property*> props = {&pairs};
  const auto brute = Reconstructor::brute_force(enc, entry, props);

  Reconstructor rec(enc);
  rec.add_property(pairs);
  auto result = rec.reconstruct(entry);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(to_strings(result.signals), to_strings(brute));
  EXPECT_TRUE(to_strings(result.signals).contains(actual.to_string()));
}

TEST(Reconstruct, KnownPropertiesNeverDropTheActualSignal) {
  // Soundness of pruning: encoding properties the actual signal satisfies
  // must keep it in the solution set.
  auto enc = TimestampEncoding::random_constrained(24, 12, 4, 8);
  Logger logger(enc);
  f2::Rng rng(9);
  for (int iter = 0; iter < 5; ++iter) {
    const Signal actual = Signal::random_with_changes(24, 4, rng);
    const LogEntry entry = logger.log(actual);
    const auto cycles = actual.change_cycles();
    // Use a true-by-construction window property around the first change.
    ChangeInWindow window(cycles.front(), cycles.front() + 1);
    Reconstructor rec(enc);
    rec.add_property(window);
    auto result = rec.reconstruct(entry);
    ASSERT_TRUE(result.complete());
    EXPECT_TRUE(to_strings(result.signals).contains(actual.to_string()));
  }
}

TEST(Reconstruct, StatsArePopulated) {
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  auto result = rec.reconstruct({f2::BitVec::from_string("00000001"), 4});
  EXPECT_EQ(result.num_xors, 8u);     // one per timeprint bit
  EXPECT_GT(result.num_vars, 16);     // cycle vars + cardinality registers
  EXPECT_GT(result.num_clauses, 0u);
  EXPECT_GE(result.seconds_total, 0.0);
  EXPECT_EQ(result.seconds_to_each.size(), result.signals.size());
}

TEST(Reconstruct, TrivialUnsatEncodingShortCircuitsEnumeration) {
  // k > m makes the cardinality constraint contradictory at encode time;
  // reconstruct() must report a complete empty preimage without spinning
  // up the enumeration loop (observable as the missing "allsat.enumerate"
  // span), and must still report the encoded problem size.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  std::ostringstream trace;
  obs::Tracer tracer(trace);
  ReconstructionOptions opt;
  opt.tracer = &tracer;
  auto result = rec.reconstruct({f2::BitVec::from_string("00000001"), 17}, opt);
  EXPECT_EQ(result.final_status, sat::Status::Unsat);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.signals.empty());
  EXPECT_GT(result.num_vars, 0);
  EXPECT_GE(result.seconds_total, 0.0);
  const std::string lines = trace.str();
  EXPECT_NE(lines.find("sr.trivial_unsat"), std::string::npos);
  EXPECT_EQ(lines.find("allsat.enumerate"), std::string::npos);
}

TEST(Reconstruct, CheckHypothesisShortCircuitsOnTrivialUnsat) {
  // With an encode-time contradiction there is no reconstruction at all,
  // so every hypothesis holds vacuously — without a solve.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  MinChangesBefore hyp(/*deadline=*/8, /*min_changes=*/1);
  std::ostringstream trace;
  obs::Tracer tracer(trace);
  ReconstructionOptions opt;
  opt.tracer = &tracer;
  auto check = rec.check_hypothesis({f2::BitVec::from_string("00000001"), 17},
                                    hyp, opt);
  EXPECT_EQ(check.verdict, CheckVerdict::HoldsForAll);
  EXPECT_FALSE(check.witness.has_value());
  const std::string lines = trace.str();
  EXPECT_NE(lines.find("sr.trivial_unsat"), std::string::npos);
  EXPECT_EQ(lines.find("solver.solve"), std::string::npos);
}

TEST(Reconstruct, CheckResultReportsProblemSize) {
  // CheckResult carries the same encoded-size fields as
  // ReconstructionResult.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  MinChangesBefore hyp(/*deadline=*/8, /*min_changes=*/1);
  auto check =
      rec.check_hypothesis({f2::BitVec::from_string("00000001"), 4}, hyp);
  EXPECT_EQ(check.verdict, CheckVerdict::HoldsForAll);
  EXPECT_EQ(check.num_xors, 8u);
  EXPECT_GT(check.num_vars, 16);
  EXPECT_GT(check.num_clauses, 0u);
}

// ---- proof round-trips and solver-independent model verification ----

// Replay a reconstruction's recorded proof with the independent checker
// and require a verified refutation.
void expect_certified_refutation(const sat::MemoryProof& proof) {
  sat::DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  const auto res = checker.check(proof.ops());
  EXPECT_TRUE(res.valid) << res.error;
  EXPECT_TRUE(res.proved_unsat);
}

ReconstructionOptions proof_options(sat::MemoryProof& proof) {
  ReconstructionOptions opt;
  opt.use_gauss = false;  // DRAT cannot express Gaussian reasoning
  opt.proof = &proof;
  return opt;
}

TEST(ReconstructProof, CardinalityConflictCertified) {
  // k = 1 with a timeprint matching no single timestamp: the refutation
  // needs the interplay of the XOR system and the cardinality counter.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  sat::MemoryProof proof;
  auto result = rec.reconstruct({f2::BitVec::from_string("11111111"), 1},
                                proof_options(proof));
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.signals.empty());
  expect_certified_refutation(proof);
}

TEST(ReconstructProof, PureXorConflictCertified) {
  // Two identical nonzero rows forced to different parities: the timeprint
  // lies outside the encoding's column space, so the XOR system alone is
  // contradictory (the cardinality layer plays no part).
  std::vector<f2::BitVec> ts;
  for (int i = 0; i < 4; ++i) ts.push_back(f2::BitVec::from_string("110"));
  auto enc = TimestampEncoding::from_vectors(std::move(ts), 2);
  Reconstructor rec(enc);
  sat::MemoryProof proof;
  auto result =
      rec.reconstruct({f2::BitVec::from_string("100"), 2}, proof_options(proof));
  EXPECT_EQ(result.final_status, sat::Status::Unsat);
  EXPECT_TRUE(result.signals.empty());
  expect_certified_refutation(proof);
}

TEST(ReconstructProof, TrivialUnsatAtEncodeTimeCertified) {
  // k > m contradicts the cardinality constraint while it is being
  // encoded; the proof must close (empty clause) before any search.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  sat::MemoryProof proof;
  auto result = rec.reconstruct({f2::BitVec::from_string("00000001"), 17},
                                proof_options(proof));
  EXPECT_EQ(result.final_status, sat::Status::Unsat);
  expect_certified_refutation(proof);
}

TEST(ReconstructProof, CompletedEnumerationCertified) {
  // A SAT entry enumerated to completion: the blocking clauses are logged
  // as axioms, so the final "no further models" UNSAT certifies that the
  // enumerated preimage is exhaustive.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  sat::MemoryProof proof;
  ReconstructionOptions opt = proof_options(proof);
  opt.verify_models = true;
  auto result =
      rec.reconstruct({f2::BitVec::from_string("00000001"), 4}, opt);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.signals.size(), 8u);
  expect_certified_refutation(proof);
}

TEST(ReconstructProof, ProofRequiresNonGaussEngine) {
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  sat::MemoryProof proof;
  ReconstructionOptions opt;
  opt.use_gauss = true;
  opt.proof = &proof;
  EXPECT_THROW(rec.reconstruct({f2::BitVec::from_string("00000001"), 4}, opt),
               std::invalid_argument);
}

TEST(ReconstructVerify, AcceptsGenuinePreimage) {
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};
  Reconstructor rec(enc);
  auto result = rec.reconstruct(entry);
  ASSERT_TRUE(result.complete());
  const auto verdict = verify_signals(enc, entry, result.signals);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
  EXPECT_EQ(verdict.checked, result.signals.size());
}

TEST(ReconstructVerify, RejectsCorruptedSignals) {
  auto enc = fig4_encoding();
  const LogEntry entry{f2::BitVec::from_string("00000001"), 4};
  Reconstructor rec(enc);
  auto result = rec.reconstruct(entry);
  ASSERT_TRUE(result.complete());
  ASSERT_GE(result.signals.size(), 2u);

  // Flipping one change bit breaks A·x = TP (or |x| = k).
  auto corrupted = result.signals;
  Signal& victim = corrupted[0];
  Signal flipped(enc.m());
  for (std::size_t i = 0; i < enc.m(); ++i) {
    const bool bit = victim.bits().get(i);
    if (bit != (i == 0)) flipped.set_change(i);
  }
  corrupted[0] = flipped;
  const auto bad_bits = verify_signals(enc, entry, corrupted);
  EXPECT_FALSE(bad_bits.ok);
  EXPECT_FALSE(bad_bits.failure.empty());

  // A duplicated signal is rejected even though each copy verifies.
  auto duplicated = result.signals;
  duplicated.push_back(duplicated[0]);
  const auto dupes = verify_signals(enc, entry, duplicated);
  EXPECT_FALSE(dupes.ok);

  EXPECT_THROW(require_verified(enc, entry, duplicated), std::logic_error);
}

TEST(ReconstructVerify, CheckHypothesisWitnessIsVerified) {
  // Same setup as Figure4.FalseHypothesisYieldsWitness, with the
  // solver-independent witness re-validation switched on.
  auto enc = fig4_encoding();
  Reconstructor rec(enc);
  MinChangesBefore hyp(/*deadline=*/2, /*min_changes=*/1);
  ReconstructionOptions opt;
  opt.verify_models = true;
  auto check = rec.check_hypothesis({f2::BitVec::from_string("00000001"), 4},
                                    hyp, opt);
  EXPECT_EQ(check.verdict, CheckVerdict::ViolatedBySome);
  ASSERT_TRUE(check.witness.has_value());
  EXPECT_FALSE(hyp.holds(*check.witness));
}

TEST(Reconstruct, TimeLimitReturnsUnknown) {
  // A large instance with an unreachable time limit must come back Unknown
  // (not hang): m=512, k=8, tiny budget.
  auto enc = TimestampEncoding::random_constrained(256, 20, 4, 5);
  Logger logger(enc);
  f2::Rng rng(2);
  const Signal actual = Signal::random_with_changes(256, 8, rng);
  Reconstructor rec(enc);
  ReconstructionOptions opt;
  opt.limits.max_conflicts = 1;  // absurdly small
  auto result = rec.reconstruct(logger.log(actual), opt);
  // Either it got lucky on propagation alone or it must report Unknown.
  if (!result.complete()) {
    EXPECT_EQ(result.final_status, sat::Status::Unknown);
  }
}

}  // namespace
}  // namespace tp::core
