// Tests for tp::core::Signal.

#include <gtest/gtest.h>

#include "timeprint/signal.hpp"

namespace tp::core {
namespace {

TEST(Signal, EmptyHasNoChanges) {
  Signal s(16);
  EXPECT_EQ(s.length(), 16u);
  EXPECT_EQ(s.num_changes(), 0u);
  EXPECT_TRUE(s.change_cycles().empty());
}

TEST(Signal, FromChangeCycles) {
  // The paper's Figure 4 signal: changes at (1-based) cycles 4, 5, 10, 11.
  Signal s = Signal::from_change_cycles(16, {3, 4, 9, 10});
  EXPECT_EQ(s.num_changes(), 4u);
  EXPECT_TRUE(s.has_change(3));
  EXPECT_TRUE(s.has_change(4));
  EXPECT_TRUE(s.has_change(9));
  EXPECT_TRUE(s.has_change(10));
  EXPECT_FALSE(s.has_change(0));
  EXPECT_EQ(s.to_string(), "0001100001100000");
  EXPECT_EQ(s.change_cycles(), (std::vector<std::size_t>{3, 4, 9, 10}));
}

TEST(Signal, SetAndClearChanges) {
  Signal s(8);
  s.set_change(2);
  s.set_change(5);
  EXPECT_EQ(s.num_changes(), 2u);
  s.set_change(2, false);
  EXPECT_EQ(s.num_changes(), 1u);
  EXPECT_FALSE(s.has_change(2));
}

TEST(Signal, FromWaveformDetectsValueChanges) {
  // Waveform 1,1,0,0,0,1 starting from initial value 1: changes at cycles
  // 2 (1->0) and 5 (0->1).
  Signal s = Signal::from_waveform({true, true, false, false, false, true}, true);
  EXPECT_EQ(s.change_cycles(), (std::vector<std::size_t>{2, 5}));
}

TEST(Signal, FromWaveformInitialValueMatters) {
  // Same waveform, initial 0: extra change at cycle 0.
  Signal s = Signal::from_waveform({true, true, false, false, false, true}, false);
  EXPECT_EQ(s.change_cycles(), (std::vector<std::size_t>{0, 2, 5}));
}

TEST(Signal, RandomHasExactlyKChanges) {
  f2::Rng rng(77);
  for (std::size_t k : {0u, 1u, 5u, 16u, 64u}) {
    Signal s = Signal::random_with_changes(64, k, rng);
    EXPECT_EQ(s.num_changes(), k);
    EXPECT_EQ(s.length(), 64u);
  }
}

TEST(Signal, RandomIsReasonablyUniform) {
  // Over many draws of 1-change signals, every cycle should be hit.
  f2::Rng rng(5);
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 2000; ++i) {
    Signal s = Signal::random_with_changes(16, 1, rng);
    ++hits[s.change_cycles()[0]];
  }
  for (int h : hits) EXPECT_GT(h, 50);
}

TEST(Signal, EqualityComparesContent) {
  Signal a = Signal::from_change_cycles(10, {1, 2});
  Signal b = Signal::from_change_cycles(10, {1, 2});
  Signal c = Signal::from_change_cycles(10, {1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Signal, FromBitsRoundTrip) {
  f2::Rng rng(9);
  f2::BitVec bits = f2::BitVec::random(33, rng);
  Signal s = Signal::from_bits(bits);
  EXPECT_EQ(s.bits(), bits);
  EXPECT_EQ(s.num_changes(), bits.popcount());
}

}  // namespace
}  // namespace tp::core
