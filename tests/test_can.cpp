// Tests for the CAN substrate: frame codec (CRC-15, stuffing), bus
// arbitration, the CANoe-demo traffic generator and the forensics
// constraints.

#include <gtest/gtest.h>

#include <set>

#include "can/bus.hpp"
#include "can/forensics.hpp"
#include "can/frame.hpp"
#include "can/traffic.hpp"
#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/solver.hpp"

namespace tp::can {
namespace {

TEST(Crc15, EmptyIsZero) { EXPECT_EQ(crc15({}), 0u); }

TEST(Crc15, SingleBit) {
  // One 1-bit: register shifts once and XORs the polynomial.
  EXPECT_EQ(crc15({true}), 0x4599);
  EXPECT_EQ(crc15({false}), 0x0000);
}

TEST(Crc15, DetectsSingleBitErrors) {
  f2::Rng rng(1);
  std::vector<bool> bits;
  for (int i = 0; i < 64; ++i) bits.push_back(rng.flip());
  const std::uint16_t good = crc15(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto corrupted = bits;
    corrupted[i] = !corrupted[i];
    EXPECT_NE(crc15(corrupted), good) << "undetected flip at " << i;
  }
}

TEST(Crc15, IsLinearOverF2) {
  // CRC of XOR = XOR of CRCs (it is a linear code).
  f2::Rng rng(2);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<bool> a, b, x;
    for (int i = 0; i < 48; ++i) {
      a.push_back(rng.flip());
      b.push_back(rng.flip());
      x.push_back(a.back() ^ b.back());
    }
    EXPECT_EQ(crc15(x), crc15(a) ^ crc15(b));
  }
}

TEST(Frame, GearBoxInfoMatchesPaperStructure) {
  // The paper prints m1 = GearBoxInfo(1020) d 1 01 as a wire string. Its
  // string omits the r0 control bit of ISO 11898-1 (and uses a
  // non-standard CRC width); the SOF + 11-bit ID + RTR + IDE prefix and
  // the DLC/data fields line up exactly once r0 is accounted for.
  const std::string paper =
      "00111111110000000100000001000000010110000110111111111111";
  const auto wire = encode_frame(gearbox_info_frame(), /*stuffing=*/false);
  const std::string mine = to_wire_string(wire);
  // SOF + ID(01111111100) + RTR + IDE: identical.
  EXPECT_EQ(mine.substr(0, 14), paper.substr(0, 14));
  // Our frame inserts r0 at index 14; the paper's string continues with
  // DLC directly. DLC(0001) + data(00000001) match at the shifted offset.
  EXPECT_EQ(mine.substr(15, 12), paper.substr(14, 12));
  // Unstuffed standard frame with DLC 1: 1+11+1+1+1+4+8+15+1+1+1+7 = 52.
  EXPECT_EQ(wire.size(), 52u);
}

TEST(Frame, BitLengths) {
  // DLC 0: 44 bits; each data byte adds 8.
  EXPECT_EQ(frame_bit_length({5, {}}, false), 44u);
  EXPECT_EQ(frame_bit_length({5, {0xAA}}, false), 52u);
  EXPECT_EQ(frame_bit_length(engine_data_frame(), false), 44u + 64u);
}

TEST(Frame, RoundTripAllDlcsNoStuffing) {
  f2::Rng rng(3);
  for (std::size_t dlc = 0; dlc <= 8; ++dlc) {
    CanFrame f;
    f.id = static_cast<std::uint32_t>(rng.below(2048));
    for (std::size_t i = 0; i < dlc; ++i) {
      f.data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    const auto wire = encode_frame(f, false);
    const auto back = decode_frame(wire, false);
    ASSERT_TRUE(back.has_value()) << "dlc " << dlc;
    EXPECT_EQ(*back, f);
  }
}

TEST(Frame, RoundTripWithStuffing) {
  f2::Rng rng(4);
  for (int iter = 0; iter < 50; ++iter) {
    CanFrame f;
    f.id = static_cast<std::uint32_t>(rng.below(2048));
    const std::size_t dlc = rng.below(9);
    for (std::size_t i = 0; i < dlc; ++i) {
      f.data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    const auto wire = encode_frame(f, true);
    const auto back = decode_frame(wire, true);
    ASSERT_TRUE(back.has_value()) << "iter " << iter;
    EXPECT_EQ(*back, f);
  }
}

TEST(Frame, StuffingPreventsLongRuns) {
  // A frame full of zeros would have long dominant runs; stuffing must
  // bound every run in the stuffed region to 5.
  CanFrame f{0, {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}};
  const auto wire = encode_frame(f, true);
  // Check the region before the CRC delimiter (frame tail is fixed and
  // contains the 7-bit EOF by design).
  int run = 1;
  for (std::size_t i = 1; i + 10 < wire.size(); ++i) {
    run = wire[i] == wire[i - 1] ? run + 1 : 1;
    EXPECT_LE(run, 5) << "at bit " << i;
  }
  EXPECT_GT(wire.size(), frame_bit_length(f, false));
}

TEST(Frame, CorruptedBitFailsDecode) {
  const auto wire = encode_frame(engine_data_frame(), false);
  // Flip a data bit: CRC check must fail.
  auto corrupted = wire;
  corrupted[25] = !corrupted[25];
  EXPECT_FALSE(decode_frame(corrupted, false).has_value());
}

TEST(Frame, PaperMessageDefinitions) {
  EXPECT_EQ(gearbox_info_frame().id, 1020u);
  EXPECT_EQ(gearbox_info_frame().data, (std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(engine_data_frame().id, 100u);
  EXPECT_EQ(engine_data_frame().data.size(), 8u);
  EXPECT_EQ(engine_data_frame().data[2], 0x19);
  EXPECT_EQ(abs_data_frame().id, 201u);
  EXPECT_EQ(abs_data_frame().data.size(), 6u);
  EXPECT_EQ(ignition_info_frame().id, 103u);
  EXPECT_EQ(ignition_info_frame().data, (std::vector<std::uint8_t>{0x01, 0x00}));
}

TEST(Bus, SingleMessageTransmits) {
  CanBus bus(false);
  const auto node = bus.add_node();
  bus.schedule(node, {gearbox_info_frame(), 0, 0, "GearBoxInfo"});
  bus.run(200);
  ASSERT_EQ(bus.records().size(), 1u);
  const BusRecord& r = bus.records()[0];
  EXPECT_EQ(r.frame, gearbox_info_frame());
  EXPECT_EQ(r.end_bit - r.start_bit, frame_bit_length(gearbox_info_frame(), false));
  // The waveform at the start bit is the SOF (dominant).
  EXPECT_FALSE(bus.waveform()[r.start_bit]);
  // Decode the frame straight off the recorded waveform.
  std::vector<bool> span(bus.waveform().begin() + static_cast<long>(r.start_bit),
                         bus.waveform().begin() + static_cast<long>(r.end_bit));
  auto decoded = decode_frame(span, false);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, gearbox_info_frame());
}

TEST(Bus, IdleLineIsRecessive) {
  CanBus bus(false);
  bus.add_node();
  bus.run(50);
  for (bool level : bus.waveform()) EXPECT_TRUE(level);
}

TEST(Bus, ArbitrationLowestIdWins) {
  CanBus bus(false);
  const auto n1 = bus.add_node();
  const auto n2 = bus.add_node();
  // Both due immediately; ABSdata (201) beats GearBoxInfo (1020).
  bus.schedule(n1, {gearbox_info_frame(), 0, 0, "GearBoxInfo"});
  bus.schedule(n2, {abs_data_frame(), 0, 0, "ABSdata"});
  bus.run(400);
  ASSERT_EQ(bus.records().size(), 2u);
  EXPECT_EQ(bus.records()[0].name, "ABSdata");
  EXPECT_EQ(bus.records()[1].name, "GearBoxInfo");
  // The loser starts only after the winner's frame plus inter-frame space.
  EXPECT_GE(bus.records()[1].start_bit,
            bus.records()[0].end_bit + kInterFrameSpace);
}

TEST(Bus, PeriodicMessagesRepeat) {
  CanBus bus(false);
  const auto node = bus.add_node();
  bus.schedule(node, {ignition_info_frame(), 10, 500, "Ignition_Info"});
  bus.run(2600);
  // Releases at 10, 510, 1010, 1510, 2010, 2510 -> at least 5 complete.
  EXPECT_GE(bus.records().size(), 5u);
  for (std::size_t i = 1; i < bus.records().size(); ++i) {
    EXPECT_GE(bus.records()[i].start_bit, bus.records()[i - 1].end_bit);
  }
}

TEST(Bus, CanoeDemoProducesAllFourMessages) {
  CanBus bus = make_canoe_demo();
  bus.run(200000);  // 40 ms of bus time
  std::set<std::string> names;
  for (const auto& r : bus.records()) names.insert(r.name);
  EXPECT_TRUE(names.contains("EngineData"));
  EXPECT_TRUE(names.contains("ABSdata"));
  EXPECT_TRUE(names.contains("GearBoxInfo"));
  EXPECT_TRUE(names.contains("Ignition_Info"));
  // All recorded frames decode off the waveform.
  for (const auto& r : bus.records()) {
    std::vector<bool> span(bus.waveform().begin() + static_cast<long>(r.start_bit),
                           bus.waveform().begin() + static_cast<long>(r.end_bit));
    auto decoded = decode_frame(span, false);
    ASSERT_TRUE(decoded.has_value()) << r.name << " at " << r.start_bit;
    EXPECT_EQ(*decoded, r.frame);
  }
}

TEST(Bus, EngineExtraDelayShiftsTransmission) {
  CanoeDemoConfig base;
  CanBus a = make_canoe_demo(base);
  base.engine_extra_delay = 777;
  CanBus b = make_canoe_demo(base);
  a.run(60000);
  b.run(60000);
  auto first_engine = [](const CanBus& bus) -> std::uint64_t {
    for (const auto& r : bus.records()) {
      if (r.name == "EngineData") return r.start_bit;
    }
    return 0;
  };
  EXPECT_EQ(first_engine(b), first_engine(a) + 777);
}

TEST(Forensics, ChangePatternStartsWithSofEdge) {
  const auto pattern = frame_change_pattern(engine_data_frame(), false);
  EXPECT_EQ(pattern.size(), frame_bit_length(engine_data_frame(), false));
  EXPECT_TRUE(pattern[0]);  // idle(1) -> SOF(0)
}

TEST(Forensics, PatternMatchesWaveformDerivedSignal) {
  CanBus bus(false);
  const auto node = bus.add_node();
  bus.schedule(node, {engine_data_frame(), 40, 0, "EngineData"});
  bus.run(300);
  const auto& r = bus.records()[0];
  core::Signal signal = core::Signal::from_waveform(bus.waveform(), true);
  const auto pattern = frame_change_pattern(engine_data_frame(), false);
  const auto hits = find_pattern(signal, pattern, 0, signal.length());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], r.start_bit);
}

TEST(Forensics, FrameAtUnknownStartHolds) {
  // Small synthetic pattern inside a small trace-cycle.
  std::vector<bool> pattern = {true, false, true};
  FrameAtUnknownStart prop(8, pattern, 0, 8);
  // Signal with pattern at position 2: changes at 2 and 4, none at 3.
  core::Signal s = core::Signal::from_change_cycles(8, {2, 4});
  EXPECT_TRUE(prop.holds(s));
  // Changes at 2,3,4 break the pattern's middle zero everywhere it could
  // start... except a match at position 4 would need changes at 4 and 6.
  EXPECT_FALSE(prop.holds(core::Signal::from_change_cycles(8, {2, 3, 4})));
}

TEST(Forensics, FrameAtUnknownStartWindowClipping) {
  std::vector<bool> pattern(5, true);
  FrameAtUnknownStart prop(8, pattern, 0, 100);
  EXPECT_EQ(prop.first_start(), 0u);
  EXPECT_EQ(prop.last_start(), 4u);  // 8 - 5 + 1
}

TEST(Forensics, EncodeRestrictsModelsToPatternPlacements) {
  // Every model of the encoding must contain the pattern in the window.
  const std::size_t m = 8;
  std::vector<bool> pattern = {true, true, false, true};
  FrameAtUnknownStart prop(m, pattern, 1, 5);
  sat::Solver solver;
  std::vector<sat::Var> x;
  for (std::size_t i = 0; i < m; ++i) x.push_back(solver.new_var());
  ASSERT_TRUE(prop.encode(solver, x));
  auto result = sat::enumerate_models(solver, x);
  ASSERT_TRUE(result.complete());
  ASSERT_FALSE(result.models.empty());
  for (const auto& model : result.models) {
    core::Signal s(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (model[i]) s.set_change(i);
    }
    EXPECT_TRUE(prop.holds(s)) << s.to_string();
  }
  // And every satisfying signal is a model (faithful encoding).
  std::size_t holding = 0;
  for (std::uint32_t bits = 0; bits < (1u << m); ++bits) {
    core::Signal s(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (bits & (1u << i)) s.set_change(i);
    }
    if (prop.holds(s)) ++holding;
  }
  EXPECT_EQ(result.models.size(), holding);
}

TEST(Forensics, InfeasibleWindowIsUnsat) {
  std::vector<bool> pattern(10, true);
  FrameAtUnknownStart prop(8, pattern, 0, 8);  // pattern longer than cycle
  sat::Solver solver;
  std::vector<sat::Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(solver.new_var());
  prop.encode(solver, x);
  EXPECT_EQ(solver.solve(), sat::Status::Unsat);
}

}  // namespace
}  // namespace tp::can
