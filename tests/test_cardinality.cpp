// Tests for cardinality encodings: correctness of model sets against the
// brute-force reference, for both the Sinz sequential counter (the paper's
// choice) and the totalizer.

#include <gtest/gtest.h>

#include <numeric>

#include "sat/allsat.hpp"
#include "sat/cardinality.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

std::uint64_t binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::uint64_t r = 1;
  for (int i = 0; i < k; ++i) r = r * static_cast<std::uint64_t>(n - i) / static_cast<std::uint64_t>(i + 1);
  return r;
}

std::vector<Var> make_vars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  return vars;
}

std::vector<Lit> pos_lits(const std::vector<Var>& vars) {
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  return lits;
}

struct CardCase {
  int n;
  int k;
  CardEncoding enc;
};

class ExactlyKTest : public ::testing::TestWithParam<CardCase> {};

TEST_P(ExactlyKTest, ModelCountIsBinomial) {
  const auto [n, k, enc] = GetParam();
  Solver s;
  auto vars = make_vars(s, n);
  ASSERT_TRUE(encode_exactly(s, pos_lits(vars), k, enc));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), binomial(n, k));
  for (const auto& model : result.models) {
    const auto ones = static_cast<int>(std::accumulate(model.begin(), model.end(), 0));
    EXPECT_EQ(ones, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sinz, ExactlyKTest,
    ::testing::Values(CardCase{5, 0, CardEncoding::SequentialCounter},
                      CardCase{5, 1, CardEncoding::SequentialCounter},
                      CardCase{5, 2, CardEncoding::SequentialCounter},
                      CardCase{5, 5, CardEncoding::SequentialCounter},
                      CardCase{8, 3, CardEncoding::SequentialCounter},
                      CardCase{8, 4, CardEncoding::SequentialCounter},
                      CardCase{10, 2, CardEncoding::SequentialCounter},
                      CardCase{12, 6, CardEncoding::SequentialCounter}));

INSTANTIATE_TEST_SUITE_P(
    Totalizer, ExactlyKTest,
    ::testing::Values(CardCase{5, 0, CardEncoding::Totalizer},
                      CardCase{5, 1, CardEncoding::Totalizer},
                      CardCase{5, 2, CardEncoding::Totalizer},
                      CardCase{5, 5, CardEncoding::Totalizer},
                      CardCase{8, 3, CardEncoding::Totalizer},
                      CardCase{8, 4, CardEncoding::Totalizer},
                      CardCase{10, 2, CardEncoding::Totalizer},
                      CardCase{12, 6, CardEncoding::Totalizer}));

class AtMostKTest : public ::testing::TestWithParam<CardCase> {};

TEST_P(AtMostKTest, ModelCountIsPartialBinomialSum) {
  const auto [n, k, enc] = GetParam();
  Solver s;
  auto vars = make_vars(s, n);
  ASSERT_TRUE(encode_at_most(s, pos_lits(vars), k, enc));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  std::uint64_t expect = 0;
  for (int j = 0; j <= k; ++j) expect += binomial(n, j);
  EXPECT_EQ(result.models.size(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Both, AtMostKTest,
    ::testing::Values(CardCase{6, 1, CardEncoding::SequentialCounter},
                      CardCase{6, 3, CardEncoding::SequentialCounter},
                      CardCase{6, 5, CardEncoding::SequentialCounter},
                      CardCase{6, 1, CardEncoding::Totalizer},
                      CardCase{6, 3, CardEncoding::Totalizer},
                      CardCase{6, 5, CardEncoding::Totalizer}));

class AtLeastKTest : public ::testing::TestWithParam<CardCase> {};

TEST_P(AtLeastKTest, ModelCountIsUpperBinomialSum) {
  const auto [n, k, enc] = GetParam();
  Solver s;
  auto vars = make_vars(s, n);
  ASSERT_TRUE(encode_at_least(s, pos_lits(vars), k, enc));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  std::uint64_t expect = 0;
  for (int j = k; j <= n; ++j) expect += binomial(n, j);
  EXPECT_EQ(result.models.size(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Both, AtLeastKTest,
    ::testing::Values(CardCase{6, 2, CardEncoding::SequentialCounter},
                      CardCase{6, 4, CardEncoding::SequentialCounter},
                      CardCase{6, 6, CardEncoding::SequentialCounter},
                      CardCase{6, 2, CardEncoding::Totalizer},
                      CardCase{6, 4, CardEncoding::Totalizer},
                      CardCase{6, 6, CardEncoding::Totalizer}));

TEST(Cardinality, ImpossibleBoundsAreUnsat) {
  {
    Solver s;
    auto vars = make_vars(s, 4);
    encode_exactly(s, pos_lits(vars), 5, CardEncoding::SequentialCounter);
    EXPECT_EQ(s.solve(), Status::Unsat);
  }
  {
    Solver s;
    auto vars = make_vars(s, 4);
    encode_at_least(s, pos_lits(vars), 5, CardEncoding::Totalizer);
    EXPECT_EQ(s.solve(), Status::Unsat);
  }
}

TEST(Cardinality, MixedPolarityLiterals) {
  // exactly-2 over {a, ~b, c}: models where (a) + (1-b) + (c) == 2.
  Solver s;
  auto vars = make_vars(s, 3);
  std::vector<Lit> lits = {mk_lit(vars[0]), ~mk_lit(vars[1]), mk_lit(vars[2])};
  ASSERT_TRUE(encode_exactly(s, lits, 2, CardEncoding::SequentialCounter));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 3u);
  for (const auto& m : result.models) {
    const int count = (m[0] ? 1 : 0) + (m[1] ? 0 : 1) + (m[2] ? 1 : 0);
    EXPECT_EQ(count, 2);
  }
}

TEST(Cardinality, SinzWithConflictingUnits) {
  // Force 3 variables true, then demand at most 2: UNSAT.
  Solver s;
  auto vars = make_vars(s, 5);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.add_clause({mk_lit(vars[static_cast<std::size_t>(i)])}));
  encode_at_most(s, pos_lits(vars), 2, CardEncoding::SequentialCounter);
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Cardinality, TotalizerOutputsAreMonotone) {
  // In any model, output j+1 true implies output j true.
  Solver s;
  auto vars = make_vars(s, 7);
  const auto outs = totalizer_outputs(s, pos_lits(vars), 7);
  ASSERT_EQ(outs.size(), 7u);
  auto result = enumerate_models(s, vars, {.max_models = 200, .limits = {}});
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 128u);  // unconstrained: all 2^7 models
}

TEST(Cardinality, TotalizerOutputsTrackCount) {
  Solver s;
  auto vars = make_vars(s, 6);
  const auto outs = totalizer_outputs(s, pos_lits(vars), 6);
  // Fix an assignment with 4 ones and check the unary outputs.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(s.add_clause({Lit(vars[static_cast<std::size_t>(i)], /*negated=*/i >= 4)}));
  }
  ASSERT_EQ(s.solve(), Status::Sat);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(s.model_value(outs[static_cast<std::size_t>(j)]) == LBool::True, j < 4)
        << "output " << j;
  }
}

}  // namespace
}  // namespace tp::sat
