// Tests for the textual property language.

#include <gtest/gtest.h>

#include "timeprint/parse.hpp"

#include "sat/solver.hpp"

namespace tp::core {
namespace {

TEST(Parse, P2Family) {
  EXPECT_TRUE(parse_property("p2")->holds(Signal::from_change_cycles(8, {2, 3})));
  EXPECT_FALSE(parse_property("p2")->holds(Signal::from_change_cycles(8, {2, 4})));
  EXPECT_TRUE(parse_property("no-p2")->holds(Signal::from_change_cycles(8, {2, 4})));
  EXPECT_TRUE(parse_property("pairs")->holds(Signal::from_change_cycles(8, {2, 3})));
  EXPECT_FALSE(parse_property("pairs")->holds(Signal::from_change_cycles(8, {2})));
}

TEST(Parse, Before) {
  auto dk = parse_property("before 32 min 3");
  EXPECT_TRUE(dk->holds(Signal::from_change_cycles(64, {1, 2, 3})));
  EXPECT_FALSE(dk->holds(Signal::from_change_cycles(64, {1, 2, 40})));
  auto maxp = parse_property("before 10 max 1");
  EXPECT_TRUE(maxp->holds(Signal::from_change_cycles(64, {5, 20})));
  EXPECT_FALSE(maxp->holds(Signal::from_change_cycles(64, {5, 6})));
}

TEST(Parse, Windows) {
  EXPECT_TRUE(parse_property("window 2 5 any")->holds(Signal::from_change_cycles(8, {3})));
  EXPECT_FALSE(parse_property("window 2 5 any")->holds(Signal::from_change_cycles(8, {6})));
  EXPECT_TRUE(parse_property("window 2 5 none")->holds(Signal::from_change_cycles(8, {6})));
  EXPECT_TRUE(parse_property("window 0 8 exactly 2")
                  ->holds(Signal::from_change_cycles(8, {1, 6})));
  EXPECT_FALSE(parse_property("window 0 8 exactly 2")
                   ->holds(Signal::from_change_cycles(8, {1})));
}

TEST(Parse, GapAndKnown) {
  EXPECT_TRUE(parse_property("gap 3")->holds(Signal::from_change_cycles(12, {0, 4})));
  EXPECT_FALSE(parse_property("gap 3")->holds(Signal::from_change_cycles(12, {0, 2})));
  EXPECT_TRUE(parse_property("known 3 1")->holds(Signal::from_change_cycles(8, {3})));
  EXPECT_TRUE(parse_property("known 3 0")->holds(Signal(8)));
}

TEST(Parse, ConjunctionViaSemicolons) {
  auto p = parse_properties("p2; before 8 min 1 ; gap 1");
  EXPECT_TRUE(p->holds(Signal::from_change_cycles(16, {2, 3})));
  EXPECT_FALSE(p->holds(Signal::from_change_cycles(16, {10, 11})));  // deadline
  // A single expression parses to the property itself.
  auto single = parse_properties("p2");
  EXPECT_NE(single->describe().find("P2"), std::string::npos);
}

TEST(Parse, WhitespaceTolerance) {
  EXPECT_NO_THROW(parse_property("  before   32   min  3 "));
  EXPECT_NO_THROW(parse_properties(" p2 ;; pairs ; "));
}

TEST(Parse, RejectsNegativeAndSignedNumbers) {
  // std::stoull accepts a leading '-' and wraps modulo 2^64, so "before -3
  // min 1" used to parse with deadline 18446744073709551613. Any signed or
  // non-digit-leading token must be an error.
  EXPECT_THROW(parse_property("before -3 min 1"), std::invalid_argument);
  EXPECT_THROW(parse_property("before 32 min -1"), std::invalid_argument);
  EXPECT_THROW(parse_property("gap -2"), std::invalid_argument);
  EXPECT_THROW(parse_property("window -1 5 any"), std::invalid_argument);
  EXPECT_THROW(parse_property("window 0 8 exactly -2"), std::invalid_argument);
  EXPECT_THROW(parse_property("known -1 0"), std::invalid_argument);
  EXPECT_THROW(parse_property("gap +2"), std::invalid_argument);
}

TEST(Parse, RejectsOverflowingNumbers) {
  EXPECT_THROW(parse_property("gap 99999999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(parse_property("before 18446744073709551616 min 1"),
               std::invalid_argument);
}

TEST(Parse, Errors) {
  EXPECT_THROW(parse_property(""), std::invalid_argument);
  EXPECT_THROW(parse_property("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_property("p2 extra"), std::invalid_argument);
  EXPECT_THROW(parse_property("before 32 min"), std::invalid_argument);
  EXPECT_THROW(parse_property("before 32 avg 3"), std::invalid_argument);
  EXPECT_THROW(parse_property("before x min 3"), std::invalid_argument);
  EXPECT_THROW(parse_property("window 5 2 any"), std::invalid_argument);
  EXPECT_THROW(parse_property("window 2 5 maybe"), std::invalid_argument);
  EXPECT_THROW(parse_property("known 3 2"), std::invalid_argument);
  EXPECT_THROW(parse_properties(" ; ; "), std::invalid_argument);
}

TEST(Parse, ParsedPropertiesEncode) {
  // A parsed property must be usable in a reconstruction directly.
  auto p = parse_properties("before 8 min 1; gap 2");
  sat::Solver solver;
  std::vector<sat::Var> x;
  for (int i = 0; i < 12; ++i) x.push_back(solver.new_var());
  EXPECT_TRUE(p->encode(solver, x));
  EXPECT_EQ(solver.solve(), sat::Status::Sat);
}

}  // namespace
}  // namespace tp::core
