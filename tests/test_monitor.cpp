// Tests for the RV monitor subsystem: automaton-vs-property agreement and
// the monitor->reconstruction pruning flow of Figure 3.

#include <gtest/gtest.h>

#include <functional>

#include "monitor/monitor.hpp"
#include "monitor/rtl_adapter.hpp"
#include "rtlsim/agg_log.hpp"
#include "timeprint/reconstruct.hpp"

namespace tp::monitor {
namespace {

using core::Signal;

// Property cross-check: the monitor's verdict must equal the certified
// property's holds() on random signals.
void check_agreement(const std::function<std::unique_ptr<WindowMonitor>()>& make,
                     std::size_t m, std::uint64_t seed) {
  f2::Rng rng(seed);
  auto monitor = make();
  const auto property = monitor->certified_property();
  for (int iter = 0; iter < 200; ++iter) {
    Signal s = Signal::random_with_changes(m, rng.below(m + 1), rng);
    EXPECT_EQ(monitor->evaluate(s), property->holds(s))
        << monitor->name() << " on " << s.to_string();
  }
}

TEST(Monitors, NoConsecutiveAgreesWithProperty) {
  check_agreement([] { return std::make_unique<NoConsecutiveMonitor>(); }, 16, 1);
}

TEST(Monitors, PairsAgreesWithProperty) {
  check_agreement([] { return std::make_unique<PairsMonitor>(); }, 16, 2);
}

TEST(Monitors, MinGapAgreesWithProperty) {
  for (std::size_t gap : {1u, 2u, 3u, 5u}) {
    check_agreement([gap] { return std::make_unique<MinGapMonitor>(gap); }, 20,
                    gap * 7 + 3);
  }
}

TEST(Monitors, MaxGapAgreesWithProperty) {
  for (std::size_t gap : {1u, 2u, 4u, 8u}) {
    check_agreement([gap] { return std::make_unique<MaxGapMonitor>(gap); }, 20,
                    gap * 11 + 5);
  }
}

TEST(Monitors, DeadlineAgreesWithProperty) {
  check_agreement([] { return std::make_unique<DeadlineMonitor>(8, 2); }, 24, 4);
  check_agreement([] { return std::make_unique<DeadlineMonitor>(16, 5); }, 24, 5);
}

TEST(Monitors, WindowCountAgreesWithProperty) {
  check_agreement([] { return std::make_unique<WindowCountMonitor>(4, 12, 3); }, 20, 6);
  check_agreement([] { return std::make_unique<WindowCountMonitor>(0, 20, 0); }, 20, 7);
}

TEST(MonitorBank, VerdictsPerWindow) {
  MonitorBank bank(8);
  bank.add(std::make_unique<NoConsecutiveMonitor>());
  bank.add(std::make_unique<DeadlineMonitor>(4, 1));
  ASSERT_EQ(bank.size(), 2u);

  // Window 0: changes at 1,2 (consecutive; one before cycle 4).
  // Window 1: changes at 0,5 (spread; one before cycle 4).
  const Signal w0 = Signal::from_change_cycles(8, {1, 2});
  const Signal w1 = Signal::from_change_cycles(8, {0, 5});
  for (std::size_t i = 0; i < 8; ++i) bank.tick(w0.has_change(i));
  for (std::size_t i = 0; i < 8; ++i) bank.tick(w1.has_change(i));

  ASSERT_EQ(bank.history().size(), 2u);
  EXPECT_FALSE(bank.history()[0][0]);  // consecutive pair -> fail
  EXPECT_TRUE(bank.history()[0][1]);
  EXPECT_TRUE(bank.history()[1][0]);
  EXPECT_TRUE(bank.history()[1][1]);

  const auto certified0 = bank.certified_for(0);
  const auto certified1 = bank.certified_for(1);
  EXPECT_EQ(certified0.size(), 1u);
  EXPECT_EQ(certified1.size(), 2u);
  for (const auto& p : certified0) EXPECT_TRUE(p->holds(w0));
  for (const auto& p : certified1) EXPECT_TRUE(p->holds(w1));
}

TEST(MonitorBank, NamesAreStable) {
  MonitorBank bank(8);
  bank.add(std::make_unique<MinGapMonitor>(3));
  bank.add(std::make_unique<DeadlineMonitor>(4, 2));
  const auto names = bank.names();
  EXPECT_EQ(names[0], "min-gap(3)");
  EXPECT_EQ(names[1], "deadline(D=4,k=2)");
}

TEST(MonitorFlow, CertifiedPropertiesPruneReconstruction) {
  // The Figure 3 flow: deployment runs monitors alongside the agg-log;
  // postmortem, the PASSed properties prune the SAT query — and never
  // exclude the actual signal.
  const std::size_t m = 24;
  auto enc = core::TimestampEncoding::random_constrained(m, 11, 4, 5);
  core::Logger logger(enc);

  const Signal actual = Signal::from_change_cycles(m, {2, 3, 10, 11, 18, 19});
  MonitorBank bank(m);
  bank.add(std::make_unique<PairsMonitor>());
  bank.add(std::make_unique<DeadlineMonitor>(8, 2));
  bank.add(std::make_unique<MaxGapMonitor>(2));  // will FAIL on this signal
  for (std::size_t i = 0; i < m; ++i) bank.tick(actual.has_change(i));

  const auto certified = bank.certified_for(0);
  ASSERT_EQ(certified.size(), 2u);  // pairs + deadline passed, max-gap failed

  const core::LogEntry entry = logger.log(actual);
  core::Reconstructor unpruned(enc);
  const auto base = unpruned.reconstruct(entry);

  core::Reconstructor pruned(enc);
  for (const auto& p : certified) pruned.add_property(*p);
  const auto refined = pruned.reconstruct(entry);

  ASSERT_TRUE(refined.complete());
  EXPECT_LE(refined.signals.size(), base.signals.size());
  EXPECT_NE(std::find(refined.signals.begin(), refined.signals.end(), actual),
            refined.signals.end());
}

TEST(MonitorRtl, BankAndAggLogShareTheClock) {
  // Monitors and the agg-log hardware observe the same change stream from
  // one Simulator; verdicts and log entries line up window for window.
  const std::size_t m = 16;
  auto enc = core::TimestampEncoding::random_constrained(m, 9, 4, 3);

  MonitorBank bank(m);
  bank.add(std::make_unique<NoConsecutiveMonitor>());
  MonitorBankComponent mon(bank);
  rtl::AggLogUnit agg(enc);
  rtl::Simulator sim;
  sim.add(agg);
  sim.add(mon);

  core::Logger ref(enc);
  f2::Rng rng(12);
  for (int w = 0; w < 5; ++w) {
    Signal s = Signal::random_with_changes(m, rng.below(m / 2), rng);
    for (std::size_t i = 0; i < m; ++i) {
      const bool change = s.has_change(i);
      agg.set_change(change);
      mon.set_change(change);
      sim.step();
    }
    ASSERT_EQ(bank.history().size(), static_cast<std::size_t>(w + 1));
    ASSERT_EQ(agg.log().size(), static_cast<std::size_t>(w + 1));
    EXPECT_EQ(agg.log()[static_cast<std::size_t>(w)], ref.log(s));
    EXPECT_EQ(bank.history().back()[0], core::NoConsecutivePair{}.holds(s));
  }
}

}  // namespace
}  // namespace tp::monitor
