// Unit and property tests for tp::f2::BitVec and Rng.

#include <gtest/gtest.h>

#include <unordered_set>

#include "f2/bitvec.hpp"

namespace tp::f2 {
namespace {

TEST(BitVec, DefaultIsZero) {
  BitVec v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);  // spans three words
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.flip(64);
  EXPECT_TRUE(v.get(64));
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, FromUintRoundTrip) {
  BitVec v = BitVec::from_uint(16, 0xBEEF);
  EXPECT_EQ(v.to_uint(), 0xBEEFu);
  EXPECT_EQ(v.popcount(), 13u);
}

TEST(BitVec, FromStringMatchesPaperFigure4) {
  // TS(1) in Figure 4 is the MSB-first string 00010100.
  BitVec ts1 = BitVec::from_string("00010100");
  EXPECT_EQ(ts1.size(), 8u);
  EXPECT_EQ(ts1.to_uint(), 0x14u);
  EXPECT_EQ(ts1.to_string(), "00010100");
}

TEST(BitVec, Figure4TimeprintAggregation) {
  // The paper's didactic example: TS(4) + TS(5) + TS(10) + TS(11) with
  // XOR aggregation yields the timeprint 00000001.
  BitVec ts4 = BitVec::from_string("01000100");
  BitVec ts5 = BitVec::from_string("00000010");
  BitVec ts10 = BitVec::from_string("11100111");
  BitVec ts11 = BitVec::from_string("10100000");
  BitVec tp = ts4 ^ ts5 ^ ts10 ^ ts11;
  EXPECT_EQ(tp.to_string(), "00000001");
}

TEST(BitVec, XorIsSelfInverse) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    BitVec a = BitVec::random(100, rng);
    BitVec b = BitVec::random(100, rng);
    EXPECT_TRUE(((a ^ b) ^ b) == a);
    EXPECT_TRUE((a ^ a).is_zero());
  }
}

TEST(BitVec, IncrementCountsLikeInteger) {
  BitVec v(9);
  for (std::uint64_t expect = 1; expect < 512; ++expect) {
    v.increment();
    EXPECT_EQ(v.to_uint(), expect);
  }
  v.increment();  // wraps modulo 2^9
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVec, IncrementCarriesAcrossWords) {
  BitVec v(70);
  for (std::size_t i = 0; i < 64; ++i) v.set(i, true);  // low word all ones
  v.increment();
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, OrderingIsInteger) {
  EXPECT_LT(BitVec::from_uint(8, 3), BitVec::from_uint(8, 5));
  EXPECT_LT(BitVec::from_uint(8, 0x0F), BitVec::from_uint(8, 0xF0));
  BitVec lo(70), hi(70);
  lo.set(63, true);
  hi.set(64, true);
  EXPECT_LT(lo, hi);
}

TEST(BitVec, UnitVector) {
  BitVec v = BitVec::unit(20, 13);
  EXPECT_EQ(v.popcount(), 1u);
  EXPECT_TRUE(v.get(13));
  EXPECT_EQ(v.lowest_set(), 13u);
  EXPECT_EQ(v.highest_set(), 13u);
}

TEST(BitVec, HighestLowestSetOnZero) {
  BitVec v(40);
  EXPECT_EQ(v.highest_set(), 40u);
  EXPECT_EQ(v.lowest_set(), 40u);
}

TEST(BitVec, DotProductParity) {
  BitVec a = BitVec::from_string("1101");
  BitVec b = BitVec::from_string("1011");
  // overlap = 1001 -> two ones -> even parity
  EXPECT_FALSE(a.dot(b));
  BitVec c = BitVec::from_string("0111");
  // a & c = 0101 -> two ones -> even
  EXPECT_FALSE(a.dot(c));
  BitVec d = BitVec::from_string("0001");
  EXPECT_TRUE(a.dot(d));
}

TEST(BitVec, HashDistinguishesVectors) {
  Rng rng(7);
  std::unordered_set<BitVec> set;
  for (int i = 0; i < 1000; ++i) set.insert(BitVec::random(64, rng));
  // With a 64-bit space, 1000 random vectors collide with negligible
  // probability; the hash-set must keep them all distinct.
  EXPECT_GT(set.size(), 995u);
}

TEST(BitVec, RandomRespectsDimension) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    BitVec v = BitVec::random(13, rng);
    EXPECT_EQ(v.size(), 13u);
    EXPECT_LT(v.to_uint(), 1u << 13);
  }
}

TEST(Rng, DeterministicStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

class BitVecWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecWidthTest, ToStringRoundTrip) {
  Rng rng(GetParam());
  BitVec v = BitVec::random(GetParam(), rng);
  EXPECT_EQ(BitVec::from_string(v.to_string()), v);
}

TEST_P(BitVecWidthTest, PopcountMatchesManualCount) {
  Rng rng(GetParam() * 31 + 1);
  BitVec v = BitVec::random(GetParam(), rng);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < v.size(); ++i) manual += v.get(i) ? 1 : 0;
  EXPECT_EQ(v.popcount(), manual);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidthTest,
                         ::testing::Values(1, 7, 8, 63, 64, 65, 127, 128, 129,
                                           1000));

}  // namespace
}  // namespace tp::f2
