// Tests for the CNF preprocessing front-end (sat/preprocess.hpp) and the
// dense variable remapper (sat/remap.hpp):
//
//  * remapper unit coverage — fate bookkeeping, clause/XOR translation
//    through fixed variables, model extension via stash replay;
//  * wrapper conformance — the factory wraps on SolverConfig::preprocess,
//    edge formulas (empty, trivially conflicting, degenerate XORs) keep
//    their verdicts, clone() is independent on both sides of the build;
//  * restoration contract — freezing is a performance hint, not a
//    correctness requirement: an eliminated variable used in a late
//    assumption or post-build clause is transparently *restored* from its
//    stashed witness clauses, and the combined formula keeps exact
//    verdicts, models and DRAT certificates;
//  * fuzz parity — random CNF+XOR instances solved raw and preprocessed
//    must agree on SAT/UNSAT, models, failed() cores and complete AllSAT
//    model sets (compared by fingerprint);
//  * DRAT — UNSAT verdicts from preprocessed solves certify against the
//    *original* formula via the independent DratChecker;
//  * incremental templates — the template reconstructor with preprocess
//    on matches the raw fresh-solver path across the k = 0 and
//    k > k_max rebuild edges.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/drat.hpp"
#include "sat/interface.hpp"
#include "sat/preprocess.hpp"
#include "sat/remap.hpp"
#include "sat/solver.hpp"
#include "timeprint/incremental.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/reconstruct.hpp"

namespace tp::sat {
namespace {

std::unique_ptr<SolverInterface> make_preprocessed(SolverOptions opts = {}) {
  opts.preprocess = true;
  return SolverFactory::make(opts);
}

// ---------------------------------------------------------------------------
// VarRemapper unit coverage.
// ---------------------------------------------------------------------------

TEST(Remap, FatesAndDenseAssignment) {
  VarRemapper remap(6);
  remap.set_fixed(1, true);
  remap.set_fixed(4, false);
  remap.set_eliminated(mk_lit(3), {{mk_lit(3), mk_lit(0)}});
  // Keep 0 and 2; 5 is dropped (never occurs, not frozen).
  const int inner = remap.assign_dense([](Var v) { return v == 0 || v == 2; });
  EXPECT_EQ(inner, 2);
  EXPECT_EQ(remap.num_inner(), 2);
  EXPECT_EQ(remap.fate(0), VarRemapper::Fate::Mapped);
  EXPECT_EQ(remap.fate(1), VarRemapper::Fate::FixedTrue);
  EXPECT_EQ(remap.fate(2), VarRemapper::Fate::Mapped);
  EXPECT_EQ(remap.fate(3), VarRemapper::Fate::Eliminated);
  EXPECT_EQ(remap.fate(4), VarRemapper::Fate::FixedFalse);
  EXPECT_EQ(remap.fate(5), VarRemapper::Fate::Dropped);
  // Dense, in outer order.
  EXPECT_EQ(remap.inner_of(Var(0)), 0);
  EXPECT_EQ(remap.inner_of(Var(2)), 1);
  EXPECT_EQ(remap.outer_of(Var(0)), 0);
  EXPECT_EQ(remap.outer_of(Var(1)), 2);
  // Literal translation preserves polarity.
  EXPECT_EQ(remap.inner_of(~mk_lit(2)), ~mk_lit(1));
  EXPECT_EQ(remap.outer_lit_of(~mk_lit(1)), ~mk_lit(2));
}

TEST(Remap, ClauseTranslationFoldsFixedVariables) {
  VarRemapper remap(4);
  remap.set_fixed(1, true);
  remap.set_fixed(2, false);
  remap.assign_dense([](Var v) { return v == 0 || v == 3; });

  std::vector<Lit> out;
  // Clause satisfied by the fixed-true literal.
  EXPECT_EQ(remap.translate_clause({mk_lit(0), mk_lit(1)}, &out),
            VarRemapper::ClauseFate::Satisfied);
  // False literals fold away, survivors are renumbered.
  EXPECT_EQ(remap.translate_clause({~mk_lit(1), mk_lit(2), mk_lit(3)}, &out),
            VarRemapper::ClauseFate::Keep);
  EXPECT_EQ(out, (std::vector<Lit>{mk_lit(1)}));  // x3 -> inner 1
  // Every literal false: the empty clause.
  EXPECT_EQ(remap.translate_clause({~mk_lit(1), mk_lit(2)}, &out),
            VarRemapper::ClauseFate::Empty);

  // XORs fold fixed values into the right-hand side.
  std::vector<Var> xout;
  bool rhs = false;
  EXPECT_EQ(remap.translate_xor({0, 1, 3}, true, &xout, &rhs),
            VarRemapper::ClauseFate::Keep);
  EXPECT_EQ(xout, (std::vector<Var>{0, 1}));
  EXPECT_FALSE(rhs);  // fixed-true member flips the parity
  EXPECT_EQ(remap.translate_xor({1, 2}, true, &xout, &rhs),
            VarRemapper::ClauseFate::Satisfied);  // 1 ^ 0 = 1 holds
  EXPECT_EQ(remap.translate_xor({1, 2}, false, &xout, &rhs),
            VarRemapper::ClauseFate::Empty);
}

TEST(Remap, ModelExtensionReplaysStashes) {
  // Eliminate x2 by resolution from {x1 -> x2, x2 -> x3} (stash the
  // positive phase {x2, ~x1}): with x1 true and x3 false in the inner
  // model, the stashed clause forces x2 true.
  VarRemapper remap(3);
  remap.set_eliminated(mk_lit(1), {{mk_lit(1), ~mk_lit(0)}});
  remap.assign_dense([](Var) { return true; });
  const auto model = remap.extend_model([](Var inner) {
    return inner == 0 ? LBool::True : LBool::False;  // x1=T, x3=F
  });
  ASSERT_EQ(model.size(), 3u);
  EXPECT_EQ(model[0], LBool::True);
  EXPECT_EQ(model[1], LBool::True);  // stash demanded it
  EXPECT_EQ(model[2], LBool::False);

  // With x1 false the stashed clause is already satisfied; the stashed
  // literal takes its "free" polarity (false).
  VarRemapper remap2(3);
  remap2.set_eliminated(mk_lit(1), {{mk_lit(1), ~mk_lit(0)}});
  remap2.assign_dense([](Var) { return true; });
  const auto model2 =
      remap2.extend_model([](Var) { return LBool::False; });
  EXPECT_EQ(model2[1], LBool::False);
}

// ---------------------------------------------------------------------------
// Wrapper conformance and edge formulas.
// ---------------------------------------------------------------------------

TEST(Preprocess, FactoryWrapsWhenConfigured) {
  SolverOptions opts;
  opts.preprocess = true;
  auto s = SolverFactory::make(opts);
  auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_FALSE(wrapper->preprocessed());
  EXPECT_EQ(s->solve(), Status::Sat);  // empty formula
  EXPECT_TRUE(wrapper->preprocessed());
  EXPECT_TRUE(s->okay());
}

TEST(Preprocess, UnitsFixValuesThroughTheFrontEnd) {
  auto s = make_preprocessed();
  const Var a = s->new_var();
  const Var b = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a)}));
  ASSERT_TRUE(s->add_clause({~mk_lit(b)}));
  EXPECT_EQ(s->fixed_value(a), LBool::True);  // visible pre-build
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(a), LBool::True);
  EXPECT_EQ(s->model(b), LBool::False);
  EXPECT_EQ(s->fixed_value(a), LBool::True);
  EXPECT_EQ(s->fixed_value(b), LBool::False);
}

TEST(Preprocess, TriviallyConflictingFormulaIsUnsat) {
  auto s = make_preprocessed();
  const Var a = s->new_var();
  ASSERT_TRUE(s->add_clause({mk_lit(a)}));
  EXPECT_FALSE(s->add_clause({~mk_lit(a)}));
  EXPECT_EQ(s->solve(), Status::Unsat);
  EXPECT_FALSE(s->okay());
}

TEST(Preprocess, DegenerateXorsKeepTheirVerdicts) {
  {
    auto s = make_preprocessed();
    EXPECT_FALSE(s->add_xor({}, true));  // 0 = 1
    EXPECT_EQ(s->solve(), Status::Unsat);
  }
  {
    auto s = make_preprocessed();
    const Var a = s->new_var();
    EXPECT_TRUE(s->add_xor({a}, true));  // unit: a = 1
    ASSERT_EQ(s->solve(), Status::Sat);
    EXPECT_EQ(s->model(a), LBool::True);
  }
  {
    auto s = make_preprocessed();
    const Var a = s->new_var();
    EXPECT_TRUE(s->add_xor({a, a}, false));  // cancels to 0 = 0
    EXPECT_EQ(s->solve(), Status::Sat);
  }
}

TEST(Preprocess, EquivalenceChainRoundTripsThroughElimination) {
  // x0 <-> x1 <-> ... <-> x7 with only x0 frozen: the interior of the
  // chain is fair game for elimination, and the extended model must still
  // satisfy every equivalence.
  auto s = make_preprocessed();
  constexpr int kN = 8;
  std::vector<Var> v;
  for (int i = 0; i < kN; ++i) v.push_back(s->new_var());
  for (int i = 0; i + 1 < kN; ++i) {
    ASSERT_TRUE(s->add_clause({~mk_lit(v[i]), mk_lit(v[i + 1])}));
    ASSERT_TRUE(s->add_clause({mk_lit(v[i]), ~mk_lit(v[i + 1])}));
  }
  s->freeze(v[0]);
  ASSERT_EQ(s->solve(), Status::Sat);
  const LBool head = s->model(v[0]);
  ASSERT_NE(head, LBool::Undef);
  for (int i = 1; i < kN; ++i) EXPECT_EQ(s->model(v[i]), head) << "x" << i;

  auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
  ASSERT_NE(wrapper, nullptr);
  // The front-end must actually have removed something here.
  EXPECT_GT(wrapper->preprocess_stats().vars_eliminated +
                wrapper->preprocess_stats().vars_fixed,
            0);

  // The frozen head is still usable incrementally: force it to both
  // polarities under assumptions.
  ASSERT_EQ(s->solve_assuming({mk_lit(v[0])}), Status::Sat);
  EXPECT_EQ(s->model(v[0]), LBool::True);
  ASSERT_EQ(s->solve_assuming({~mk_lit(v[0])}), Status::Sat);
  EXPECT_EQ(s->model(v[0]), LBool::False);
}

TEST(Preprocess, UnfrozenEliminatedVariableIsRestoredOnLateUse) {
  // x9 occurs only positively in one clause: a pure literal, eliminated
  // with zero resolvents. A warm template master leaves such variables
  // eliminable on purpose; a late use must transparently *restore* the
  // variable from its stashed witness clauses, not throw and not
  // mistranslate.
  auto build = [] {
    auto s = make_preprocessed();
    std::vector<Var> v;
    for (int i = 0; i < 10; ++i) v.push_back(s->new_var());
    s->add_clause({mk_lit(v[0]), mk_lit(v[1])});
    s->add_clause({mk_lit(v[9]), ~mk_lit(v[0])});
    s->freeze(v[0]);
    s->freeze(v[1]);
    EXPECT_EQ(s->solve(), Status::Sat);
    auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
    EXPECT_NE(wrapper, nullptr);
    EXPECT_EQ(wrapper->remapper().fate(Var(9)),
              VarRemapper::Fate::Eliminated);
    return s;
  };
  {
    // Late clause over the eliminated variable: restoration brings the
    // witness (x9 | ~x0) back, so adding (x9 | x0) makes ~x9 genuinely
    // unsat.
    auto s = build();
    EXPECT_TRUE(s->add_clause({mk_lit(Var(9)), mk_lit(Var(0))}));
    auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
    EXPECT_GT(wrapper->restored_vars(), 0);
    EXPECT_EQ(s->solve_assuming({~mk_lit(Var(9))}), Status::Unsat);
    EXPECT_EQ(s->solve_assuming({mk_lit(Var(9))}), Status::Sat);
  }
  {
    // A late assumption alone restores too, and the restored witness
    // clause binds the assumed variable to the surviving ones.
    auto s = build();
    EXPECT_EQ(s->solve_assuming({~mk_lit(Var(9))}), Status::Sat);
    auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
    EXPECT_GT(wrapper->restored_vars(), 0);
    EXPECT_EQ(s->model(Var(9)), LBool::False);
    EXPECT_EQ(s->model(Var(0)), LBool::False);  // witness (x9 | ~x0)
    EXPECT_EQ(s->model(Var(1)), LBool::True);   // (x0 | x1)
  }
}

TEST(Preprocess, CloneStatsStartAtZero) {
  // Regression: the wrapper used to copy the *outer* preprocessing-time
  // propagation count into every clone, so a batch of N warm clones
  // reported the front-end's unit propagations N+1 times. Clone stats —
  // inner solver and front-end alike — must start at zero.
  auto s = make_preprocessed();
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s->new_var());
  s->add_clause({mk_lit(v[0])});  // root unit: front-end propagation
  for (int i = 0; i + 1 < 8; ++i) {
    s->add_clause({~mk_lit(v[i]), mk_lit(v[i + 1])});
  }
  ASSERT_EQ(s->solve(), Status::Sat);
  ASSERT_GT(s->stats().propagations, 0);

  const auto clone = s->clone();
  EXPECT_EQ(clone->stats().propagations, 0)
      << "clone re-reports the master's preprocessing propagations";
  EXPECT_EQ(clone->stats().conflicts, 0);
  // The clone still works and counts only its own effort afterwards.
  EXPECT_EQ(clone->solve(), Status::Sat);
  EXPECT_EQ(clone->model(v[7]), LBool::True);
}

TEST(Preprocess, CloneIsIndependentOnBothSidesOfTheBuild) {
  // Pre-build clone: diverges from the original before the front-end runs.
  {
    auto s = make_preprocessed();
    const Var a = s->new_var();
    s->add_clause({mk_lit(a)});
    auto c = s->clone();
    // Contradicting the buffered unit is a root conflict (same contract
    // as the raw solver's add_clause).
    EXPECT_FALSE(c->add_clause({~mk_lit(a)}));
    EXPECT_EQ(c->solve(), Status::Unsat);
    EXPECT_EQ(s->solve(), Status::Sat);
  }
  // Post-build clone: carries the preprocessed inner state.
  {
    auto s = make_preprocessed();
    const Var a = s->new_var();
    const Var b = s->new_var();
    s->add_clause({mk_lit(a), mk_lit(b)});
    s->freeze(a);
    s->freeze(b);
    ASSERT_EQ(s->solve(), Status::Sat);
    auto c = s->clone();
    ASSERT_TRUE(c->add_clause({~mk_lit(a)}));
    EXPECT_FALSE(c->add_clause({~mk_lit(b)}));  // UP fixed b after ~a
    EXPECT_EQ(c->solve(), Status::Unsat);
    EXPECT_EQ(s->solve(), Status::Sat);
  }
}

TEST(Preprocess, NewVariablesAfterTheBuildKeepWorking) {
  auto s = make_preprocessed();
  const Var a = s->new_var();
  s->add_clause({mk_lit(a)});
  ASSERT_EQ(s->solve(), Status::Sat);
  const Var late = s->new_var();
  ASSERT_TRUE(s->add_clause({~mk_lit(late)}));
  ASSERT_EQ(s->solve(), Status::Sat);
  EXPECT_EQ(s->model(late), LBool::False);
  EXPECT_EQ(s->model(a), LBool::True);
}

// ---------------------------------------------------------------------------
// Fuzz parity against the raw backend.
// ---------------------------------------------------------------------------

struct RandomInstance {
  int num_vars = 0;
  std::vector<std::pair<std::vector<Var>, bool>> xors;
  std::vector<std::vector<Lit>> clauses;
};

RandomInstance random_instance(std::mt19937& rng, int num_vars, int num_xors,
                               int num_clauses) {
  RandomInstance inst;
  inst.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int j = 0; j < num_xors; ++j) {
    std::set<Var> row;
    std::uniform_int_distribution<int> arity(2, 5);
    const int n = arity(rng);
    while (static_cast<int>(row.size()) < n) row.insert(var(rng));
    inst.xors.emplace_back(std::vector<Var>(row.begin(), row.end()),
                           coin(rng) == 1);
  }
  for (int j = 0; j < num_clauses; ++j) {
    std::set<Var> vars;
    std::uniform_int_distribution<int> arity(1, 4);
    const int n = arity(rng);
    while (static_cast<int>(vars.size()) < n) vars.insert(var(rng));
    std::vector<Lit> clause;
    for (const Var v : vars) clause.emplace_back(v, coin(rng) == 1);
    inst.clauses.push_back(std::move(clause));
  }
  return inst;
}

std::vector<Var> load(SolverInterface& s, const RandomInstance& inst) {
  std::vector<Var> vars;
  for (int i = 0; i < inst.num_vars; ++i) vars.push_back(s.new_var());
  for (const auto& [row, rhs] : inst.xors) s.add_xor(row, rhs);
  for (const auto& clause : inst.clauses) s.add_clause(clause);
  return vars;
}

bool satisfies(const RandomInstance& inst, const std::vector<bool>& model) {
  for (const auto& [row, rhs] : inst.xors) {
    bool parity = false;
    for (const Var v : row) parity ^= model[static_cast<std::size_t>(v)];
    if (parity != rhs) return false;
  }
  for (const auto& clause : inst.clauses) {
    bool sat = false;
    for (const Lit l : clause) {
      sat = sat || (model[static_cast<std::size_t>(l.var())] != l.negated());
    }
    if (!sat) return false;
  }
  return true;
}

std::uint64_t fingerprint(const std::vector<bool>& model) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const bool b : model) {
    h ^= b ? 0x9eu : 0x31u;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(PreprocessFuzz, VerdictsAndModelsAgreeWithRawBackend) {
  std::mt19937 rng(20260808);
  int unsat_seen = 0;
  for (int round = 0; round < 150; ++round) {
    // Alternate pure-CNF and CNF+XOR instances (XOR members are pinned by
    // the implicit freeze; pure CNF exercises deeper elimination).
    const int xors = (round % 2 == 0) ? 0 : 4;
    const RandomInstance inst = random_instance(rng, 12, xors, 26);
    Solver raw;
    auto pre = make_preprocessed();
    load(raw, inst);
    const std::vector<Var> vars = load(*pre, inst);

    const Status rs = raw.solve();
    const Status ps = pre->solve();
    ASSERT_EQ(rs, ps) << "round " << round;
    if (ps == Status::Unsat) {
      ++unsat_seen;
    } else {
      std::vector<bool> model;
      for (const Var v : vars) model.push_back(pre->model(v) == LBool::True);
      EXPECT_TRUE(satisfies(inst, model)) << "round " << round;
    }
  }
  EXPECT_GT(unsat_seen, 0) << "fixture never exercised the UNSAT path";
}

TEST(PreprocessFuzz, AssumptionCoresAgreeWithRawBackend) {
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> coin(0, 1);
  int unsat_seen = 0;
  for (int round = 0; round < 80; ++round) {
    const RandomInstance inst = random_instance(rng, 12, 3, 18);
    Solver raw;
    auto pre = make_preprocessed();
    load(raw, inst);
    const std::vector<Var> vars = load(*pre, inst);

    std::vector<Lit> cube;
    for (int i = 0; i < 4; ++i) {
      cube.emplace_back(vars[static_cast<std::size_t>(i)], coin(rng) == 1);
      pre->freeze(cube.back().var());  // assumption vars must survive
    }
    const Status rs = raw.solve_assuming(cube);
    const Status ps = pre->solve_assuming(cube);
    ASSERT_EQ(rs, ps) << "round " << round;
    if (ps == Status::Unsat) {
      ++unsat_seen;
      for (const Lit l : pre->failed()) {
        EXPECT_NE(std::find(cube.begin(), cube.end(), ~l), cube.end())
            << "failed() literal is not the negation of an assumption";
      }
    } else if (ps == Status::Sat) {
      for (const Lit l : cube) {
        EXPECT_EQ(pre->model_value(l), LBool::True)
            << "assumption not honoured in round " << round;
      }
    }
  }
  EXPECT_GT(unsat_seen, 0) << "fixture never exercised the UNSAT path";
}

TEST(PreprocessFuzz, CompleteEnumerationsMatchRawBackend) {
  // Project onto the first half of the variables: the other half stays
  // eligible for elimination, so this exercises blocking clauses over a
  // frozen projection against a genuinely reduced inner formula.
  std::mt19937 rng(987651);
  for (int round = 0; round < 30; ++round) {
    const RandomInstance inst = random_instance(rng, 10, 2, 14);
    Solver raw;
    auto pre = make_preprocessed();
    load(raw, inst);
    const std::vector<Var> vars = load(*pre, inst);
    const std::vector<Var> projection(vars.begin(),
                                      vars.begin() + vars.size() / 2);

    std::multiset<std::uint64_t> prints[2];
    SolverInterface* solvers[2] = {&raw, pre.get()};
    for (int b = 0; b < 2; ++b) {
      const AllSatResult r = enumerate_models(*solvers[b], projection);
      ASSERT_TRUE(r.complete()) << "round " << round;
      for (const auto& model : r.models) prints[b].insert(fingerprint(model));
    }
    EXPECT_EQ(prints[0], prints[1]) << "round " << round;
  }
}

TEST(PreprocessFuzz, LateClausesRestoreAndAgreeWithRawBackend) {
  // Nothing is frozen, so elimination runs unconstrained; the late
  // clauses and XORs below then land on eliminated variables and force
  // witness restoration mid-stream. Verdicts and models must keep
  // matching the raw backend after every restoration.
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> coin(0, 1);
  std::int64_t restored_total = 0;
  int unsat_seen = 0;
  for (int round = 0; round < 60; ++round) {
    RandomInstance inst = random_instance(rng, 14, 0, 20);
    Solver raw;
    auto pre = make_preprocessed();
    load(raw, inst);
    const std::vector<Var> vars = load(*pre, inst);

    const Status first = raw.solve();
    ASSERT_EQ(first, pre->solve()) << "round " << round;
    if (first == Status::Unsat) {
      ++unsat_seen;
      continue;
    }
    for (int batch = 0; batch < 6; ++batch) {
      if (batch % 2 == 0) {
        std::set<Var> cv;
        std::uniform_int_distribution<int> var(0, inst.num_vars - 1);
        while (cv.size() < 3) cv.insert(var(rng));
        std::vector<Lit> clause;
        for (const Var v : cv) clause.emplace_back(v, coin(rng) == 1);
        raw.add_clause(clause);
        pre->add_clause(clause);
        inst.clauses.push_back(clause);
      } else {
        std::set<Var> xv;
        std::uniform_int_distribution<int> var(0, inst.num_vars - 1);
        while (xv.size() < 3) xv.insert(var(rng));
        const std::vector<Var> row(xv.begin(), xv.end());
        const bool rhs = coin(rng) == 1;
        raw.add_xor(row, rhs);
        pre->add_xor(row, rhs);
        inst.xors.emplace_back(row, rhs);
      }
      const Status rs = raw.solve();
      const Status ps = pre->solve();
      ASSERT_EQ(rs, ps) << "round " << round << " batch " << batch;
      if (ps == Status::Unsat) {
        ++unsat_seen;
        break;
      }
      std::vector<bool> model;
      for (const Var v : vars) model.push_back(pre->model(v) == LBool::True);
      ASSERT_TRUE(satisfies(inst, model))
          << "round " << round << " batch " << batch;
    }
    auto* wrapper = dynamic_cast<PreprocessingSolver*>(pre.get());
    ASSERT_NE(wrapper, nullptr);
    restored_total += wrapper->restored_vars();
  }
  EXPECT_GT(restored_total, 0) << "fixture never triggered a restoration";
  EXPECT_GT(unsat_seen, 0) << "fixture never exercised the UNSAT path";
}

// ---------------------------------------------------------------------------
// DRAT: preprocessed UNSAT verdicts certify against the original formula.
// ---------------------------------------------------------------------------

DratChecker::Result certify(const MemoryProof& proof) {
  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  std::vector<ProofOp> ops = proof.ops();
  ops.push_back(ProofOp{ProofOp::Kind::Add, {}});  // final empty clause
  return checker.check(ops);
}

TEST(PreprocessProof, PigeonholeUnsatCertifies) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  auto s = make_preprocessed(opts);
  Var p[4][3];
  for (auto& row : p) {
    for (Var& v : row) v = s->new_var();
  }
  for (const auto& row : p) {
    s->add_clause({mk_lit(row[0]), mk_lit(row[1]), mk_lit(row[2])});
  }
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        s->add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  ASSERT_EQ(s->solve(), Status::Unsat);
  const DratChecker::Result r = certify(proof);
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_TRUE(r.proved_unsat);
}

TEST(PreprocessProof, RandomUnsatInstancesCertify) {
  std::mt19937 rng(31337);
  int certified = 0;
  for (int round = 0; round < 60 && certified < 8; ++round) {
    const RandomInstance inst =
        random_instance(rng, 9, round % 2 == 0 ? 0 : 3, 30);
    MemoryProof proof;
    SolverOptions opts;
    opts.proof = &proof;
    auto s = make_preprocessed(opts);
    load(*s, inst);
    if (s->solve() != Status::Unsat) continue;
    ++certified;
    const DratChecker::Result r = certify(proof);
    EXPECT_TRUE(r.valid) << "round " << round << ": " << r.error;
    EXPECT_TRUE(r.proved_unsat) << "round " << round;
  }
  EXPECT_GE(certified, 4) << "fixture produced too few UNSAT instances";
}

TEST(PreprocessProof, RestoredLateClauseUnsatCertifies) {
  // Drive instances UNSAT through *late* clauses over eliminated
  // variables: each late add restores witness clauses into the inner
  // solver (re-added as RUP steps, since the keep-parents policy never
  // deleted their BVE parents from the checker's database), and the
  // final empty clause must still certify against original formula +
  // late axioms.
  std::mt19937 rng(90210);
  std::uniform_int_distribution<int> coin(0, 1);
  int certified = 0;
  std::int64_t restored_total = 0;
  for (int round = 0; round < 40 && certified < 6; ++round) {
    RandomInstance inst = random_instance(rng, 10, 0, 16);
    MemoryProof proof;
    SolverOptions opts;
    opts.proof = &proof;
    auto s = make_preprocessed(opts);
    load(*s, inst);
    if (s->solve() != Status::Sat) continue;

    Status status = Status::Sat;
    for (int batch = 0; batch < 12 && status == Status::Sat; ++batch) {
      std::set<Var> cv;
      std::uniform_int_distribution<int> var(0, inst.num_vars - 1);
      while (cv.size() < 2) cv.insert(var(rng));
      std::vector<Lit> clause;
      for (const Var v : cv) clause.emplace_back(v, coin(rng) == 1);
      s->add_clause(clause);
      status = s->solve();
    }
    if (status != Status::Unsat) continue;
    auto* wrapper = dynamic_cast<PreprocessingSolver*>(s.get());
    ASSERT_NE(wrapper, nullptr);
    restored_total += wrapper->restored_vars();
    ++certified;
    const DratChecker::Result r = certify(proof);
    EXPECT_TRUE(r.valid) << "round " << round << ": " << r.error;
    EXPECT_TRUE(r.proved_unsat) << "round " << round;
  }
  EXPECT_GE(certified, 3) << "fixture produced too few late-UNSAT instances";
  EXPECT_GT(restored_total, 0) << "fixture never triggered a restoration";
}

TEST(PreprocessProof, EnumerationBlockingClausesStayCheckable) {
  // Drive an enumeration to completion in proof mode: the final UNSAT
  // must certify against original formula + logged blocking clauses.
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  auto s = make_preprocessed(opts);
  const Var a = s->new_var();
  const Var b = s->new_var();
  const Var c = s->new_var();
  s->add_clause({mk_lit(a), mk_lit(b)});
  s->add_clause({mk_lit(c), ~mk_lit(a)});
  const AllSatResult r = enumerate_models(*s, {a, b});
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.models.size(), 3u);
  const DratChecker::Result res = certify(proof);
  EXPECT_TRUE(res.valid) << res.error;
  EXPECT_TRUE(res.proved_unsat);
}

// ---------------------------------------------------------------------------
// Incremental templates: preprocess composes with the selector encoding.
// ---------------------------------------------------------------------------

}  // namespace
}  // namespace tp::sat

namespace tp::core {
namespace {

std::set<std::string> signal_set(const std::vector<Signal>& signals) {
  std::set<std::string> out;
  for (const Signal& s : signals) out.insert(s.to_string());
  return out;
}

TEST(PreprocessTemplate, MatchesFreshPathAcrossRebuildEdges) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    f2::Rng rng(seed * 31);
    const TimestampEncoding enc =
        TimestampEncoding::random_constrained_auto(12, 3, seed);
    Logger logger(enc);

    ReconstructionOptions pre_opts;
    pre_opts.preprocess = true;
    ReconstructionOptions raw_opts;  // fresh-solver reference, no front-end
    Reconstructor fresh(enc);
    // k_max = 2 so the k = 4 entry forces a template rebuild mid-stream.
    TemplateReconstructor tmpl(enc, {}, pre_opts, /*k_max=*/2);

    std::vector<LogEntry> entries;
    entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 0, rng)));
    entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 2, rng)));
    entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 4, rng)));
    entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 1, rng)));
    entries.push_back({f2::BitVec::random(enc.width(), rng), 2});

    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ReconstructionResult t = tmpl.reconstruct(entries[i]);
      const ReconstructionResult f = fresh.reconstruct(entries[i], raw_opts);
      ASSERT_TRUE(t.complete()) << "seed " << seed << " entry " << i;
      ASSERT_TRUE(f.complete()) << "seed " << seed << " entry " << i;
      EXPECT_EQ(signal_set(t.signals), signal_set(f.signals))
          << "seed " << seed << " entry " << i;
    }
    EXPECT_EQ(tmpl.stats().builds, 2);  // initial + the k > k_max rebuild
  }
}

}  // namespace
}  // namespace tp::core
