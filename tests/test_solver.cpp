// Unit, integration and randomized property tests for the CDCL solver.

#include <gtest/gtest.h>

#include "f2/bitvec.hpp"
#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"
#include "sat/xor_to_cnf.hpp"

namespace tp::sat {
namespace {

std::vector<Var> make_vars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  return vars;
}

// Re-solve the instance on a proof-logging solver and certify the UNSAT
// verdict with the independent DRAT checker. Every UNSAT answer asserted in
// this file funnels through here, so a wrong refutation cannot hide behind
// an agreeing (but equally wrong) second search: the checker re-derives the
// empty clause by unit propagation alone.
void expect_certified_unsat(const Cnf& cnf) {
  MemoryProof proof;
  SolverOptions opts;
  opts.proof = &proof;
  Solver s(opts);
  const bool ok = cnf.load_into(s);
  ASSERT_EQ(ok ? s.solve() : Status::Unsat, Status::Unsat);
  DratChecker checker;
  for (const auto& c : proof.formula()) checker.add_clause(c);
  const auto res = checker.check(proof.ops());
  EXPECT_TRUE(res.valid) << res.error;
  EXPECT_TRUE(res.proved_unsat);
}

Cnf pigeonhole_cnf(int pigeons, int holes) {
  Cnf cnf;
  cnf.num_vars = pigeons * holes;
  const auto var = [holes](int i, int j) {
    return static_cast<Var>(i * holes + j);
  };
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < holes; ++j) c.push_back(mk_lit(var(i, j)));
    cnf.clauses.push_back(std::move(c));
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        cnf.clauses.push_back({~mk_lit(var(i1, j)), ~mk_lit(var(i2, j))});
      }
    }
  }
  return cnf;
}

TEST(Solver, EmptyProblemIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.model_value(a), LBool::True);
}

TEST(Solver, ContradictingUnitsAreUnsat) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  EXPECT_FALSE(s.add_clause({~mk_lit(a)}));
  EXPECT_EQ(s.solve(), Status::Unsat);

  Cnf cnf;
  cnf.num_vars = 1;
  cnf.clauses = {{mk_lit(0)}, {~mk_lit(0)}};
  expect_certified_unsat(cnf);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_FALSE(s.okay());

  Cnf cnf;
  cnf.clauses = {{}};
  expect_certified_unsat(cnf);
}

TEST(Solver, TautologyIsDropped) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a), ~mk_lit(a)}));
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Solver, ImplicationChainPropagates) {
  // a, a->b, b->c, c->d ... forces all true.
  Solver s;
  auto v = make_vars(s, 20);
  ASSERT_TRUE(s.add_clause({mk_lit(v[0])}));
  for (int i = 0; i + 1 < 20; ++i) {
    ASSERT_TRUE(s.add_clause({~mk_lit(v[static_cast<std::size_t>(i)]),
                              mk_lit(v[static_cast<std::size_t>(i + 1)])}));
  }
  ASSERT_EQ(s.solve(), Status::Sat);
  for (Var x : v) EXPECT_EQ(s.model_value(x), LBool::True);
}

TEST(Solver, FixedValueAtLevelZero) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({~mk_lit(a)}));
  EXPECT_EQ(s.fixed_value(a), LBool::False);
  EXPECT_EQ(s.fixed_value(b), LBool::Undef);
}

TEST(Solver, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: classic small UNSAT requiring real search.
  const Cnf cnf = pigeonhole_cnf(4, 3);
  Solver s;
  ASSERT_TRUE(cnf.load_into(s));
  EXPECT_EQ(s.solve(), Status::Unsat);
  expect_certified_unsat(cnf);
}

TEST(Solver, XorUnitPropagation) {
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.model_value(a), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::False);
}

TEST(Solver, XorParityConflict) {
  // a^b=1, a^c=1, b^c=1 is unsatisfiable (sum of all three = 0 != 1).
  Solver s;
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({a, c}, true));
  ASSERT_TRUE(s.add_xor({b, c}, true));
  EXPECT_EQ(s.solve(), Status::Unsat);

  Cnf cnf;
  cnf.num_vars = 3;
  cnf.xors = {{{a, b}, true}, {{a, c}, true}, {{b, c}, true}};
  expect_certified_unsat(cnf);
}

TEST(Solver, XorDuplicateVariablesCancel) {
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  // a ^ a ^ b = 1 simplifies to b = 1.
  ASSERT_TRUE(s.add_xor({a, a, b}, true));
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.model_value(b), LBool::True);
}

TEST(Solver, XorEmptyAfterCancellation) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_xor({a, a}, false));  // 0 = 0, fine
  EXPECT_FALSE(s.add_xor({a, a}, true));  // 0 = 1, contradiction
  EXPECT_EQ(s.solve(), Status::Unsat);

  Cnf cnf;
  cnf.num_vars = 1;
  cnf.xors = {{{a, a}, false}, {{a, a}, true}};
  expect_certified_unsat(cnf);
}

TEST(Solver, LongXorChainSat) {
  Solver s;
  auto v = make_vars(s, 50);
  ASSERT_TRUE(s.add_xor(v, true));
  ASSERT_EQ(s.solve(), Status::Sat);
  int ones = 0;
  for (Var x : v) ones += s.model_value(x) == LBool::True ? 1 : 0;
  EXPECT_EQ(ones % 2, 1);
}

TEST(Solver, XorSystemWithUniqueSolution) {
  // Upper-triangular system x_i ^ x_{i+1} = b_i with x_n fixed: unique model.
  Solver s;
  const int n = 16;
  auto v = make_vars(s, n);
  f2::Rng rng(8);
  std::vector<bool> expect(static_cast<std::size_t>(n));
  expect[static_cast<std::size_t>(n - 1)] = true;
  ASSERT_TRUE(s.add_clause({mk_lit(v[static_cast<std::size_t>(n - 1)])}));
  for (int i = n - 2; i >= 0; --i) {
    const bool bit = rng.flip();
    expect[static_cast<std::size_t>(i)] = bit ^ expect[static_cast<std::size_t>(i + 1)];
    ASSERT_TRUE(s.add_xor({v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i + 1)]}, bit));
  }
  ASSERT_EQ(s.solve(), Status::Sat);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(s.model_value(v[static_cast<std::size_t>(i)]) == LBool::True,
              expect[static_cast<std::size_t>(i)]);
  }
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard-enough pigeonhole with a tiny conflict budget.
  const Cnf cnf = pigeonhole_cnf(8, 7);
  Solver s;
  ASSERT_TRUE(cnf.load_into(s));
  SolveLimits limits;
  limits.max_conflicts = 10;
  EXPECT_EQ(s.solve(limits), Status::Unknown);
  // Without the limit the instance resolves (to UNSAT).
  EXPECT_EQ(s.solve(), Status::Unsat);
  expect_certified_unsat(cnf);
}

TEST(Solver, IncrementalSolveAfterSat) {
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a), mk_lit(b)}));
  ASSERT_EQ(s.solve(), Status::Sat);
  // Block both variables' current values and solve again.
  std::vector<Lit> blocking;
  for (Var v : {a, b}) {
    blocking.push_back(Lit(v, s.model_value(v) == LBool::True));
  }
  ASSERT_TRUE(s.add_clause(blocking));
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Luby, FirstTerms) {
  // Luby sequence with base 2: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
  const double expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (int i = 0; i < 15; ++i) EXPECT_DOUBLE_EQ(luby(2.0, i), expect[i]) << i;
}

// ---- randomized cross-check against the brute-force reference ----

struct RandomInstanceParams {
  std::uint64_t seed;
  int num_vars;
  int num_clauses;
  int num_xors;
};

class SolverFuzzTest : public ::testing::TestWithParam<RandomInstanceParams> {};

Cnf random_instance(const RandomInstanceParams& p) {
  f2::Rng rng(p.seed);
  Cnf cnf;
  cnf.num_vars = p.num_vars;
  for (int i = 0; i < p.num_clauses; ++i) {
    const int len = 1 + static_cast<int>(rng.below(3));
    std::vector<Lit> c;
    for (int j = 0; j < len; ++j) {
      c.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(p.num_vars))),
                      rng.flip()));
    }
    cnf.clauses.push_back(std::move(c));
  }
  for (int i = 0; i < p.num_xors; ++i) {
    const int len = 2 + static_cast<int>(rng.below(5));
    std::vector<Var> vars;
    for (int j = 0; j < len; ++j) {
      vars.push_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(p.num_vars))));
    }
    cnf.xors.emplace_back(std::move(vars), rng.flip());
  }
  return cnf;
}

TEST_P(SolverFuzzTest, AgreesWithReferenceOnSatisfiability) {
  const Cnf cnf = random_instance(GetParam());
  const auto reference = reference_all_models(cnf);

  Solver s;
  cnf.load_into(s);
  const Status st = s.solve();
  if (reference.empty()) {
    EXPECT_EQ(st, Status::Unsat);
    expect_certified_unsat(cnf);
  } else {
    ASSERT_EQ(st, Status::Sat);
    // The model must actually satisfy the instance.
    std::vector<bool> model;
    for (Var v = 0; v < cnf.num_vars; ++v) {
      model.push_back(s.model_value(v) == LBool::True);
    }
    EXPECT_TRUE(cnf.satisfied_by(model));
  }
}

TEST_P(SolverFuzzTest, GaussEngineAgreesWithReference) {
  const Cnf cnf = random_instance(GetParam());
  const auto reference = reference_all_models(cnf);

  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  cnf.load_into(s);
  const Status st = s.solve();
  if (reference.empty()) {
    EXPECT_EQ(st, Status::Unsat);
    // DRAT cannot express the Gaussian engine's row combinations, so its
    // UNSAT verdict is certified through a proof-logging twin solve on the
    // watched-XOR engine.
    expect_certified_unsat(cnf);
  } else {
    ASSERT_EQ(st, Status::Sat);
    std::vector<bool> model;
    for (Var v = 0; v < cnf.num_vars; ++v) {
      model.push_back(s.model_value(v) == LBool::True);
    }
    EXPECT_TRUE(cnf.satisfied_by(model));
  }
}

TEST(Solver, GaussXorUnitPropagation) {
  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  // a^b=1, b^c=0, a=1  =>  b=0, c=0.
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({b, c}, false));
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.model_value(b), LBool::False);
  EXPECT_EQ(s.model_value(c), LBool::False);
}

TEST(Solver, GaussFindsCombinationConflicts) {
  // a^b=1, b^c=1, a^c=1 is unsatisfiable only via the combination of all
  // three rows (sum = 0 = 1) — the watched-xor engine needs search to see
  // this; the Gaussian engine derives it by elimination.
  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({b, c}, true));
  ASSERT_TRUE(s.add_xor({a, c}, true));
  EXPECT_EQ(s.solve(), Status::Unsat);

  // Certify via the watched-XOR twin (the Gaussian derivation itself has
  // no DRAT representation).
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.xors = {{{a, b}, true}, {{b, c}, true}, {{a, c}, true}};
  expect_certified_unsat(cnf);
}

TEST_P(SolverFuzzTest, CnfChainedXorAgreesWithNative) {
  const Cnf cnf = random_instance(GetParam());

  Solver native;
  cnf.load_into(native);

  Solver chained;
  while (chained.num_vars() < cnf.num_vars) chained.new_var();
  for (const auto& c : cnf.clauses) chained.add_clause(c);
  for (const auto& [vars, rhs] : cnf.xors) add_xor_as_cnf(chained, vars, rhs);

  const Status st = native.solve();
  EXPECT_EQ(st, chained.solve());
  if (st == Status::Unsat) expect_certified_unsat(cnf);
}

std::vector<RandomInstanceParams> fuzz_params() {
  std::vector<RandomInstanceParams> out;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    out.push_back({seed, 8 + static_cast<int>(seed % 7), 12 + static_cast<int>(seed % 9),
                   3 + static_cast<int>(seed % 4)});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Random, SolverFuzzTest, ::testing::ValuesIn(fuzz_params()));

}  // namespace
}  // namespace tp::sat
