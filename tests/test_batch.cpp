// Tests for the parallel batch reconstruction engine: agreement with the
// single-threaded path, determinism across thread counts, cube-and-conquer
// splitting, cancellation, options validation and progress reporting.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "timeprint/batch.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/properties.hpp"

namespace tp::core {
namespace {

TimestampEncoding test_encoding(std::size_t m = 32, std::size_t b = 16) {
  return TimestampEncoding::random_constrained(m, b, 4, /*seed=*/7);
}

std::vector<LogEntry> test_entries(const TimestampEncoding& enc, std::size_t n,
                                   std::size_t k) {
  Logger logger(enc);
  f2::Rng rng(99);
  std::vector<LogEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back(logger.log(Signal::random_with_changes(enc.m(), k, rng)));
  }
  return entries;
}

std::vector<std::string> ordered_strings(const std::vector<Signal>& signals) {
  std::vector<std::string> out;
  for (const Signal& s : signals) out.push_back(s.to_string());
  return out;
}

std::set<std::string> to_set(const std::vector<Signal>& signals) {
  const auto strings = ordered_strings(signals);
  return {strings.begin(), strings.end()};
}

TEST(BatchReconstructor, ReconstructAllMatchesSequential) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 6, 3);

  BatchReconstructor batch(enc);
  BatchOptions opts;
  opts.num_threads = 2;
  const BatchResult result = batch.reconstruct_all(entries, opts);

  ASSERT_EQ(result.results.size(), entries.size());
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.threads_used, 2u);

  Reconstructor rec(enc);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto sequential = rec.reconstruct(entries[i]);
    // Same engine per entry => byte-identical signal lists, same order.
    EXPECT_EQ(ordered_strings(result.results[i].signals),
              ordered_strings(sequential.signals))
        << "entry " << i;
    EXPECT_EQ(result.results[i].final_status, sequential.final_status);
  }
  EXPECT_GT(result.signals_total(), 0u);
}

TEST(BatchReconstructor, BatchOutputIdenticalAcross1_2_8Threads) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 5, 3);
  BatchReconstructor batch(enc);

  std::vector<std::vector<std::string>> per_thread_outputs;
  std::vector<sat::Status> statuses;
  for (std::size_t threads : {1u, 2u, 8u}) {
    BatchOptions opts;
    opts.num_threads = threads;
    const BatchResult r = batch.reconstruct_all(entries, opts);
    std::vector<std::string> flat;
    for (const auto& rr : r.results) {
      for (const auto& s : ordered_strings(rr.signals)) flat.push_back(s);
      statuses.push_back(rr.final_status);
    }
    per_thread_outputs.push_back(std::move(flat));
  }
  EXPECT_EQ(per_thread_outputs[0], per_thread_outputs[1]);
  EXPECT_EQ(per_thread_outputs[0], per_thread_outputs[2]);
}

TEST(BatchReconstructor, SplitEnumeratesTheFullPreimage) {
  // k beyond the encoding's uniqueness range: a genuinely multi-signal
  // preimage for the split to enumerate.
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 1, 6);

  Reconstructor rec(enc);
  const auto plain = rec.reconstruct(entries[0]);
  ASSERT_TRUE(plain.complete());

  BatchReconstructor batch(enc);
  BatchOptions opts;
  opts.num_threads = 4;
  const auto split = batch.reconstruct_split(entries[0], opts);
  EXPECT_TRUE(split.complete());
  EXPECT_EQ(to_set(split.signals), to_set(plain.signals));
  EXPECT_EQ(split.signals.size(), plain.signals.size());  // no duplicates
  EXPECT_GT(split.stats.propagations, 0);
  EXPECT_EQ(split.num_vars, plain.num_vars);
}

TEST(BatchReconstructor, SplitOutputIdenticalAcross1_2_8Threads) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 1, 6);
  BatchReconstructor batch(enc);

  std::vector<std::vector<std::string>> outputs;
  std::vector<sat::Status> statuses;
  for (std::size_t threads : {1u, 2u, 8u}) {
    BatchOptions opts;
    opts.num_threads = threads;
    const auto r = batch.reconstruct_split(entries[0], opts);
    outputs.push_back(ordered_strings(r.signals));
    statuses.push_back(r.final_status);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_EQ(statuses[0], statuses[1]);
  EXPECT_EQ(statuses[0], statuses[2]);
}

TEST(BatchReconstructor, SplitHonoursMaxSolutionsDeterministically) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 1, 6);
  BatchReconstructor batch(enc);

  // Full preimage first, to know the cap is actually binding.
  const auto full = batch.reconstruct_split(entries[0], {});
  ASSERT_TRUE(full.complete());
  ASSERT_GT(full.signals.size(), 2u);

  std::vector<std::vector<std::string>> outputs;
  for (std::size_t threads : {1u, 4u}) {
    BatchOptions opts;
    opts.num_threads = threads;
    opts.recon.max_solutions = 2;
    const auto r = batch.reconstruct_split(entries[0], opts);
    EXPECT_EQ(r.signals.size(), 2u);
    EXPECT_EQ(r.final_status, sat::Status::Sat);  // cut short at the cap
    outputs.push_back(ordered_strings(r.signals));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  // The capped output is the prefix of the uncapped cube-ordered merge.
  const auto full_strings = ordered_strings(full.signals);
  EXPECT_EQ(outputs[0],
            std::vector<std::string>(full_strings.begin(), full_strings.begin() + 2));
}

TEST(BatchReconstructor, SplitRespectsProperties) {
  const auto enc = test_encoding();
  Logger logger(enc);
  f2::Rng rng(3);
  Signal actual(enc.m());
  actual.set_change(5);
  actual.set_change(6);
  actual.set_change(20);
  const LogEntry entry = logger.log(actual);

  ExistsConsecutivePair p2;
  BatchReconstructor batch(enc);
  batch.add_property(p2);
  const auto split = batch.reconstruct_split(entry, {});
  ASSERT_TRUE(split.complete());

  const auto brute = Reconstructor::brute_force(enc, entry, {&p2});
  EXPECT_EQ(to_set(split.signals), to_set(brute));
}

TEST(BatchReconstructor, ExplicitCubeVarsDepthIsHonoured) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 1, 3);
  BatchReconstructor batch(enc);

  std::size_t units = 0;
  BatchOptions opts;
  opts.cube_vars = 3;  // 8 cubes
  opts.on_progress = [&units](const BatchProgress& p) {
    units = p.total;
  };
  const auto r = batch.reconstruct_split(entries[0], opts);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(units, 8u);
}

TEST(BatchReconstructor, ProgressCallbackReportsEveryEntry) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 4, 3);
  BatchReconstructor batch(enc);

  std::vector<BatchProgress> seen;
  BatchOptions opts;
  opts.num_threads = 2;
  opts.on_progress = [&seen](const BatchProgress& p) { seen.push_back(p); };
  const BatchResult r = batch.reconstruct_all(entries, opts);

  ASSERT_EQ(seen.size(), entries.size());
  std::set<std::size_t> indexes;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].total, entries.size());
    EXPECT_EQ(seen[i].completed, i + 1);  // serialized, monotone
    indexes.insert(seen[i].index);
  }
  EXPECT_EQ(indexes.size(), entries.size());  // every entry reported once
  EXPECT_EQ(seen.back().signals_found, r.signals_total());
}

TEST(BatchReconstructor, InterruptTokenCancelsTheWholeBatch) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 3, 3);
  BatchReconstructor batch(enc);

  std::atomic<bool> stop{true};  // pre-cancelled: nothing may be decoded
  BatchOptions opts;
  opts.num_threads = 2;
  opts.recon.limits.interrupt = &stop;
  const BatchResult r = batch.reconstruct_all(entries, opts);
  for (const auto& rr : r.results) {
    EXPECT_EQ(rr.final_status, sat::Status::Unknown);
    EXPECT_TRUE(rr.signals.empty());
  }
  const auto split = batch.reconstruct_split(entries[0], opts);
  EXPECT_EQ(split.final_status, sat::Status::Unknown);
  EXPECT_TRUE(split.signals.empty());
}

TEST(BatchReconstructor, StatsAggregateAcrossWorkers) {
  const auto enc = test_encoding();
  const auto entries = test_entries(enc, 4, 3);
  BatchReconstructor batch(enc);
  const BatchResult r = batch.reconstruct_all(entries, {});

  sat::SolverStats sum;
  for (const auto& rr : r.results) sum += rr.stats;
  EXPECT_EQ(r.stats.propagations, sum.propagations);
  EXPECT_EQ(r.stats.decisions, sum.decisions);
  EXPECT_GT(r.stats.propagations, 0);
}

TEST(BatchOptions, ValidateRejectsInconsistentKnobs) {
  const auto enc = test_encoding();
  BatchReconstructor batch(enc);
  const auto entries = test_entries(enc, 1, 3);

  BatchOptions gauss_without_native;
  gauss_without_native.recon.native_xor = false;  // use_gauss stays true
  EXPECT_THROW(batch.reconstruct_all(entries, gauss_without_native),
               std::invalid_argument);
  EXPECT_THROW(batch.reconstruct_split(entries[0], gauss_without_native),
               std::invalid_argument);

  BatchOptions zero_solutions;
  zero_solutions.recon.max_solutions = 0;
  EXPECT_THROW(batch.reconstruct_all(entries, zero_solutions),
               std::invalid_argument);

  BatchOptions dead_gate;
  dead_gate.recon.use_gauss = false;
  dead_gate.recon.gauss_gate = SIZE_MAX;
  EXPECT_THROW(batch.reconstruct_all(entries, dead_gate), std::invalid_argument);

  BatchOptions too_many_cubes;
  too_many_cubes.cube_vars = 17;
  EXPECT_THROW(batch.reconstruct_split(entries[0], too_many_cubes),
               std::invalid_argument);

  // The single-instance API validates the same way.
  Reconstructor rec(enc);
  ReconstructionOptions bad;
  bad.native_xor = false;
  EXPECT_THROW(rec.reconstruct(entries[0], bad), std::invalid_argument);
}

}  // namespace
}  // namespace tp::core
