// Tests for encoding quality metrics.

#include <gtest/gtest.h>

#include "timeprint/metrics.hpp"

namespace tp::core {
namespace {

TEST(Metrics, OneHot) {
  const auto s = encoding_stats(TimestampEncoding::one_hot(10));
  EXPECT_EQ(s.m, 10u);
  EXPECT_EQ(s.b, 10u);
  EXPECT_EQ(s.rank, 10u);
  EXPECT_EQ(s.li_depth, 4u);  // fully independent
  EXPECT_EQ(s.min_timestamp_weight, 1u);
  EXPECT_EQ(s.min_pair_distance, 2u);  // e_i ^ e_j has weight 2
}

TEST(Metrics, Binary) {
  const auto s = encoding_stats(TimestampEncoding::binary(7));
  EXPECT_EQ(s.b, 3u);
  EXPECT_EQ(s.rank, 3u);
  EXPECT_EQ(s.li_depth, 2u);   // 1 XOR 2 == 3
  EXPECT_NEAR(s.density, 7.0 / 8.0, 1e-12);
  EXPECT_EQ(s.min_pair_distance, 1u);  // 1 vs 3 differ in one bit
}

TEST(Metrics, RandomConstrainedLi4) {
  const auto enc = TimestampEncoding::random_constrained(64, 13, 4, 1);
  const auto s = encoding_stats(enc);
  EXPECT_EQ(s.li_depth, 4u);
  EXPECT_EQ(s.rank, 13u);  // 64 random-ish vectors span all of F2^13
  // LI-4 means no pair XOR equals another pair XOR; individual pairs can
  // still be close in Hamming distance but never zero.
  EXPECT_GE(s.min_pair_distance, 1u);
  EXPECT_GE(s.min_timestamp_weight, 1u);
  EXPECT_GT(s.expected_solutions_k4, 0.0);
}

TEST(Metrics, ExpectedSolutionsUsesRankNotWidth) {
  // Pad a binary encoding with constant-zero high bits: width grows, rank
  // does not, and the ambiguity estimate must not change.
  auto base = TimestampEncoding::binary(15);
  std::vector<f2::BitVec> padded;
  for (const auto& ts : base.timestamps()) {
    f2::BitVec wide(base.width() + 6);
    for (std::size_t i = 0; i < base.width(); ++i) wide.set(i, ts.get(i));
    padded.push_back(wide);
  }
  const auto wide_enc = TimestampEncoding::from_vectors(std::move(padded), 1);
  const auto s_base = encoding_stats(base);
  const auto s_wide = encoding_stats(wide_enc);
  EXPECT_EQ(s_base.rank, s_wide.rank);
  EXPECT_NEAR(s_base.expected_solutions_k4, s_wide.expected_solutions_k4, 1e-12);
  EXPECT_GT(s_wide.b, s_base.b);
}

TEST(Metrics, DenserDepthLowersAmbiguityEstimate) {
  const auto d2 = encoding_stats(TimestampEncoding::incremental_auto(32, 2));
  const auto d4 = encoding_stats(TimestampEncoding::incremental_auto(32, 4));
  EXPECT_GE(d2.expected_solutions_k4, d4.expected_solutions_k4);
  EXPECT_LE(d2.b, d4.b);
}

}  // namespace
}  // namespace tp::core
