// Tests for the incremental (template) reconstruction engine: differential
// equivalence against the fresh-solver path and the brute-force reference
// over random encodings and random (TP, k) streams, across encoding knobs
// and properties, plus the template lifecycle edges (k = 0, k > k_max
// rebuild, k > m) and the batch engine's incremental mode. The warm
// template master section at the bottom drives the preprocess-once
// front-end, the budgeted inprocessing schedule and the bounded
// per-worker template cache (LRU eviction) through the same differential
// gates, including a 10k-entry soak.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "f2/bitvec.hpp"
#include "obs/metrics.hpp"
#include "timeprint/batch.hpp"
#include "timeprint/incremental.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/properties.hpp"
#include "timeprint/reconstruct.hpp"

namespace tp::core {
namespace {

std::set<std::string> signal_set(const std::vector<Signal>& signals) {
  std::set<std::string> out;
  for (const Signal& s : signals) out.insert(s.to_string());
  return out;
}

// A stream mixing genuinely-logged entries (SAT by construction) with
// random timeprints (frequently UNSAT), so both outcomes are exercised.
std::vector<LogEntry> random_stream(const TimestampEncoding& enc,
                                    std::size_t n, f2::Rng& rng) {
  Logger logger(enc);
  std::vector<LogEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = rng.below(5);
    if (rng.flip()) {
      entries.push_back(logger.log(Signal::random_with_changes(enc.m(), k, rng)));
    } else {
      entries.push_back({f2::BitVec::random(enc.width(), rng), k});
    }
  }
  return entries;
}

TEST(Incremental, MatchesFreshAndBruteForceOnRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    f2::Rng rng(seed * 101);
    const std::size_t m = 10 + rng.below(8);
    const TimestampEncoding enc =
        TimestampEncoding::random_constrained_auto(m, 3, seed);
    Reconstructor fresh(enc);
    ReconstructionOptions opts;
    TemplateReconstructor tmpl(enc, {}, opts);

    for (const LogEntry& entry : random_stream(enc, 8, rng)) {
      const ReconstructionResult t = tmpl.reconstruct(entry);
      const ReconstructionResult f = fresh.reconstruct(entry, opts);
      ASSERT_TRUE(t.complete()) << "seed " << seed;
      ASSERT_TRUE(f.complete()) << "seed " << seed;
      EXPECT_EQ(signal_set(t.signals), signal_set(f.signals)) << "seed " << seed;
      EXPECT_EQ(signal_set(t.signals),
                signal_set(Reconstructor::brute_force(enc, entry)))
          << "seed " << seed;
    }
    EXPECT_EQ(tmpl.stats().entries, 8);
    EXPECT_EQ(tmpl.stats().builds, 1);  // k < 5 ≤ m: no rebuild ever needed
  }
}

TEST(Incremental, MatchesFreshAcrossEncodingKnobs) {
  // The template path always uses the totalizer internally and native XOR
  // per the knob; the fresh path varies both. Signal sets must agree in
  // every combination (use_gauss requires native_xor, hence 3 XOR configs).
  struct Knobs {
    bool native_xor;
    bool use_gauss;
  };
  const Knobs xor_knobs[] = {{true, true}, {true, false}, {false, false}};
  const sat::CardEncoding cards[] = {sat::CardEncoding::SequentialCounter,
                                     sat::CardEncoding::Totalizer};

  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(12, 3, 7);
  f2::Rng rng(77);
  const std::vector<LogEntry> entries = random_stream(enc, 5, rng);

  for (const Knobs& kn : xor_knobs) {
    for (const sat::CardEncoding card : cards) {
      ReconstructionOptions opts;
      opts.native_xor = kn.native_xor;
      opts.use_gauss = kn.use_gauss;
      opts.card_encoding = card;
      Reconstructor fresh(enc);
      TemplateReconstructor tmpl(enc, {}, opts);
      for (const LogEntry& entry : entries) {
        const ReconstructionResult t = tmpl.reconstruct(entry);
        const ReconstructionResult f = fresh.reconstruct(entry, opts);
        ASSERT_TRUE(t.complete());
        ASSERT_TRUE(f.complete());
        EXPECT_EQ(signal_set(t.signals), signal_set(f.signals))
            << "native_xor=" << kn.native_xor << " gauss=" << kn.use_gauss;
      }
    }
  }
}

TEST(Incremental, PropertiesPruneIdentically) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(14, 3, 11);
  const ExistsConsecutivePair p2;
  const MinChangesBefore dk(10, 2);
  const std::vector<const Property*> props = {&p2, &dk};

  Reconstructor fresh(enc);
  fresh.add_property(p2);
  fresh.add_property(dk);
  ReconstructionOptions opts;
  TemplateReconstructor tmpl(fresh, opts);

  f2::Rng rng(5);
  for (const LogEntry& entry : random_stream(enc, 6, rng)) {
    const ReconstructionResult t = tmpl.reconstruct(entry);
    const ReconstructionResult f = fresh.reconstruct(entry, opts);
    ASSERT_TRUE(t.complete());
    ASSERT_TRUE(f.complete());
    EXPECT_EQ(signal_set(t.signals), signal_set(f.signals));
    EXPECT_EQ(signal_set(t.signals),
              signal_set(Reconstructor::brute_force(enc, entry, props)));
  }
}

TEST(Incremental, KZeroDecodesTheEmptySignal) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(10, 2, 3);
  TemplateReconstructor tmpl(enc, {}, {});

  // k = 0 with the zero timeprint: exactly the all-quiet signal.
  const ReconstructionResult quiet =
      tmpl.reconstruct({f2::BitVec(enc.width()), 0});
  ASSERT_TRUE(quiet.complete());
  ASSERT_EQ(quiet.signals.size(), 1u);
  EXPECT_EQ(quiet.signals[0].num_changes(), 0u);

  // k = 0 with a nonzero timeprint: contradiction, empty preimage.
  f2::BitVec tp(enc.width());
  tp.flip(0);
  const ReconstructionResult none = tmpl.reconstruct({tp, 0});
  ASSERT_TRUE(none.complete());
  EXPECT_TRUE(none.signals.empty());
}

TEST(Incremental, RebuildsOnceWhenKExceedsKmax) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(10, 2, 3);
  Reconstructor fresh(enc);
  ReconstructionOptions opts;
  TemplateReconstructor tmpl(enc, {}, opts, /*k_max=*/2);
  EXPECT_EQ(tmpl.k_max(), 2u);
  Logger logger(enc);
  f2::Rng rng(9);

  const LogEntry small = logger.log(Signal::random_with_changes(enc.m(), 2, rng));
  const LogEntry big = logger.log(Signal::random_with_changes(enc.m(), 5, rng));

  EXPECT_EQ(signal_set(tmpl.reconstruct(small).signals),
            signal_set(fresh.reconstruct(small, opts).signals));
  EXPECT_EQ(tmpl.stats().builds, 1);

  // k = 5 > k_max = 2: one rebuild at the safe maximum, then served.
  EXPECT_EQ(signal_set(tmpl.reconstruct(big).signals),
            signal_set(fresh.reconstruct(big, opts).signals));
  EXPECT_EQ(tmpl.stats().builds, 2);
  EXPECT_EQ(tmpl.k_max(), enc.m());

  // Both k regimes keep working against the rebuilt template.
  EXPECT_EQ(signal_set(tmpl.reconstruct(small).signals),
            signal_set(fresh.reconstruct(small, opts).signals));
  EXPECT_EQ(tmpl.stats().builds, 2);
}

TEST(Incremental, KAboveMIsTriviallyUnsatWithoutRebuild) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(8, 2, 13);
  TemplateReconstructor tmpl(enc, {}, {}, /*k_max=*/3);
  const ReconstructionResult r =
      tmpl.reconstruct({f2::BitVec(enc.width()), enc.m() + 3});
  ASSERT_TRUE(r.complete());
  EXPECT_TRUE(r.signals.empty());
  EXPECT_EQ(tmpl.stats().builds, 1);  // no rebuild for an impossible k
}

TEST(Incremental, CloneCarriesTheTemplateButCountsItsOwnStats) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(12, 3, 21);
  Reconstructor fresh(enc);
  ReconstructionOptions opts;
  TemplateReconstructor tmpl(enc, {}, opts);
  f2::Rng rng(3);
  const std::vector<LogEntry> entries = random_stream(enc, 4, rng);

  for (const LogEntry& e : entries) tmpl.reconstruct(e);  // warm the original
  const std::unique_ptr<TemplateReconstructor> copy = tmpl.clone();
  EXPECT_EQ(copy->stats().entries, 0);
  EXPECT_EQ(copy->stats().builds, 0);  // inherited the base, never re-encoded

  for (const LogEntry& e : entries) {
    EXPECT_EQ(signal_set(copy->reconstruct(e).signals),
              signal_set(fresh.reconstruct(e, opts).signals));
  }
  EXPECT_EQ(copy->stats().entries, 4);
}

TEST(Incremental, BatchIncrementalMatchesFreshBatch) {
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(16, 3, 31);
  const ExistsConsecutivePair p2;
  BatchReconstructor batch(enc);
  batch.add_property(p2);

  f2::Rng rng(17);
  std::vector<LogEntry> entries = random_stream(enc, 24, rng);
  entries.push_back({f2::BitVec(enc.width()), 0});          // trivial entries
  entries.push_back({f2::BitVec(enc.width()), enc.m() + 1});  // in-stream too

  BatchOptions fresh_opts;
  fresh_opts.num_threads = 4;
  BatchOptions incr_opts = fresh_opts;
  incr_opts.recon.incremental = true;

  const BatchResult fresh = batch.reconstruct_all(entries, fresh_opts);
  const BatchResult incr = batch.reconstruct_all(entries, incr_opts);

  ASSERT_EQ(fresh.results.size(), entries.size());
  ASSERT_EQ(incr.results.size(), entries.size());
  EXPECT_TRUE(fresh.complete());
  EXPECT_TRUE(incr.complete());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(signal_set(incr.results[i].signals),
              signal_set(fresh.results[i].signals))
        << "entry " << i;
    EXPECT_EQ(incr.results[i].final_status, fresh.results[i].final_status)
        << "entry " << i;
  }
}

TEST(Incremental, PresolveParityAcrossConfigs) {
  // The substituted (presolved) encoding must reconstruct exactly the same
  // signal sets as the classic one, on both engines, across the XOR /
  // Gauss / cardinality configurations. This is the end-to-end fingerprint
  // parity gate for the pre-CNF pivot elimination.
  struct Knobs {
    bool native_xor;
    bool use_gauss;
    sat::CardEncoding card;
  };
  const Knobs configs[] = {
      {true, true, sat::CardEncoding::SequentialCounter},
      {true, false, sat::CardEncoding::Totalizer},
      {false, false, sat::CardEncoding::SequentialCounter},
  };
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(13, 3, 51);
  Reconstructor fresh(enc);
  f2::Rng rng(53);
  const std::vector<LogEntry> entries = random_stream(enc, 6, rng);

  for (const Knobs& kn : configs) {
    ReconstructionOptions on;
    on.native_xor = kn.native_xor;
    on.use_gauss = kn.use_gauss;
    on.card_encoding = kn.card;
    on.presolve = true;
    on.verify_models = true;
    ReconstructionOptions off = on;
    off.presolve = false;
    TemplateReconstructor tmpl_on(enc, {}, on);
    TemplateReconstructor tmpl_off(enc, {}, off);
    for (const LogEntry& entry : entries) {
      const auto want = signal_set(fresh.reconstruct(entry, off).signals);
      EXPECT_EQ(signal_set(fresh.reconstruct(entry, on).signals), want);
      EXPECT_EQ(signal_set(tmpl_on.reconstruct(entry).signals), want);
      EXPECT_EQ(signal_set(tmpl_off.reconstruct(entry).signals), want);
    }
  }
}

TEST(Incremental, PresolveShrinksTheEncodedProblem) {
  // Redundant timeprint bits (width > rank) vanish in the substituted
  // base: classic encodes one XOR row + selector per width bit, presolved
  // one per RREF row. Same fingerprints, strictly fewer variables.
  f2::Rng rng(67);
  std::vector<f2::BitVec> ts;
  for (int i = 0; i < 10; ++i) ts.push_back(f2::BitVec::random(24, rng));
  // Two dependent timestamps give nullity >= 2, keeping the comparison on
  // the actual solver path (not the enumeration fast path).
  ts.push_back(ts[0] ^ ts[1]);
  ts.push_back(ts[2] ^ ts[3]);
  const TimestampEncoding enc = TimestampEncoding::from_vectors(ts, 1);
  ASSERT_GT(enc.width(), enc.m());  // rank <= m = 12 < 24 = b

  ReconstructionOptions on;       // presolve defaults to true
  on.presolve_enum_limit = 0;     // nullity 2 > 0: both configs must solve
  ReconstructionOptions off = on;
  off.presolve = false;
  TemplateReconstructor tmpl_on(enc, {}, on);
  TemplateReconstructor tmpl_off(enc, {}, off);
  Logger logger(enc);
  const LogEntry entry = logger.log(Signal::random_with_changes(enc.m(), 3, rng));

  const ReconstructionResult r_on = tmpl_on.reconstruct(entry);
  const ReconstructionResult r_off = tmpl_off.reconstruct(entry);
  ASSERT_TRUE(r_on.complete());
  ASSERT_TRUE(r_off.complete());
  EXPECT_EQ(signal_set(r_on.signals), signal_set(r_off.signals));
  EXPECT_LT(r_on.num_vars, r_off.num_vars);
  EXPECT_LT(r_on.num_xors, r_off.num_xors);
}

TEST(Incremental, PresolveDecodesSmallNullityWithoutSolving) {
  // One-hot timestamps: rank m, nullity 0 — every entry is fully
  // determined by the linear system alone and must bypass the solver (the
  // solver-effort delta stays zero), presolve_enum_limit >= 0 suffices.
  const TimestampEncoding enc = TimestampEncoding::one_hot(9);
  Reconstructor fresh(enc);
  ReconstructionOptions opts;
  TemplateReconstructor tmpl(enc, {}, opts);
  Logger logger(enc);
  f2::Rng rng(71);
  for (int i = 0; i < 5; ++i) {
    const LogEntry entry =
        logger.log(Signal::random_with_changes(enc.m(), rng.below(4), rng));
    const ReconstructionResult t = tmpl.reconstruct(entry);
    ASSERT_TRUE(t.complete());
    EXPECT_EQ(t.stats.decisions, 0);
    EXPECT_EQ(t.stats.propagations, 0);
    EXPECT_EQ(signal_set(t.signals),
              signal_set(fresh.reconstruct(entry, opts).signals));
    EXPECT_EQ(t.signals.size(), 1u);  // nullity 0: unique solution
  }
}

TEST(Incremental, LearntClauseCapitalAccumulates) {
  // Not a semantic requirement, but the whole point of the engine: after a
  // non-trivial stream the retained-learnts counter must have moved (the
  // fresh path would have thrown every one of those clauses away).
  const TimestampEncoding enc = TimestampEncoding::random_constrained_auto(18, 3, 41);
  TemplateReconstructor tmpl(enc, {}, {});
  Logger logger(enc);
  f2::Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    tmpl.reconstruct(logger.log(Signal::random_with_changes(enc.m(), 4, rng)));
  }
  EXPECT_EQ(tmpl.stats().entries, 10);
  EXPECT_GE(tmpl.stats().learnt_retained, 0);
}

// ---------------------------------------------------------------------------
// Warm template masters: the preprocess-once front-end must be invisible in
// the reconstructed signal sets.
// ---------------------------------------------------------------------------

TEST(Incremental, TemplatePreprocessParityAcrossConfigsAndEdges) {
  // Four-way differential — template+preprocess vs raw template vs fresh
  // vs brute force — across the XOR/cardinality configurations, over a
  // stream that walks the lifecycle edges: k = 0, the k > k_max rebuild,
  // frequently-UNSAT random timeprints, and AllSAT guard retirement
  // *after* the rebuild. The CNF-XOR row is the load-bearing one: without
  // the native XOR engine nothing implicitly freezes the cycle
  // variables, so elimination and per-entry witness restoration actually
  // run. inprocess_interval = 2 forces budgeted inprocessing rounds
  // mid-stream on both template variants.
  struct Knobs {
    bool native_xor;
    bool use_gauss;
    sat::CardEncoding card;
  };
  const Knobs knob_sets[] = {
      {true, true, sat::CardEncoding::SequentialCounter},
      {true, false, sat::CardEncoding::Totalizer},
      {false, false, sat::CardEncoding::SequentialCounter},
  };

  const TimestampEncoding enc =
      TimestampEncoding::random_constrained_auto(12, 3, 19);
  Logger logger(enc);
  f2::Rng rng(191);
  std::vector<LogEntry> entries;
  entries.push_back({f2::BitVec(enc.width()), 0});  // k = 0: quiet signal
  entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 2, rng)));
  // k = 4 > k_max = 2: forces the template rebuild mid-stream.
  entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 4, rng)));
  entries.push_back({f2::BitVec::random(enc.width(), rng), 2});
  entries.push_back(logger.log(Signal::random_with_changes(enc.m(), 1, rng)));

  for (const Knobs& kn : knob_sets) {
    ReconstructionOptions raw_opts;
    raw_opts.native_xor = kn.native_xor;
    raw_opts.use_gauss = kn.use_gauss;
    raw_opts.card_encoding = kn.card;
    raw_opts.inprocess_interval = 2;
    ReconstructionOptions pre_opts = raw_opts;
    pre_opts.preprocess = true;

    Reconstructor fresh(enc);
    TemplateReconstructor raw_tmpl(enc, {}, raw_opts, /*k_max=*/2);
    TemplateReconstructor pre_tmpl(enc, {}, pre_opts, /*k_max=*/2);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ReconstructionResult p = pre_tmpl.reconstruct(entries[i]);
      const ReconstructionResult t = raw_tmpl.reconstruct(entries[i]);
      const ReconstructionResult f = fresh.reconstruct(entries[i], raw_opts);
      ASSERT_TRUE(p.complete()) << "entry " << i;
      ASSERT_TRUE(t.complete()) << "entry " << i;
      ASSERT_TRUE(f.complete()) << "entry " << i;
      const std::set<std::string> expect = signal_set(f.signals);
      EXPECT_EQ(signal_set(p.signals), expect)
          << "native_xor=" << kn.native_xor << " entry " << i;
      EXPECT_EQ(signal_set(t.signals), expect)
          << "native_xor=" << kn.native_xor << " entry " << i;
      EXPECT_EQ(expect,
                signal_set(Reconstructor::brute_force(enc, entries[i])))
          << "entry " << i;
    }
    EXPECT_EQ(pre_tmpl.stats().builds, 2);  // initial + the k = 4 rebuild
    EXPECT_GT(pre_tmpl.stats().inprocess_rounds, 0);
    EXPECT_GT(raw_tmpl.stats().inprocess_rounds, 0);
  }
}

TEST(Incremental, TemplatePreprocessMatchesFreshOnPortfolioBackend) {
  const TimestampEncoding enc =
      TimestampEncoding::random_constrained_auto(12, 3, 29);
  ReconstructionOptions opts;
  opts.preprocess = true;
  opts.solver_backend = sat::SolverBackend::Portfolio;
  opts.portfolio_members = 2;
  Reconstructor fresh(enc);
  TemplateReconstructor tmpl(enc, {}, opts);
  f2::Rng rng(97);
  for (const LogEntry& entry : random_stream(enc, 5, rng)) {
    const ReconstructionResult t = tmpl.reconstruct(entry);
    const ReconstructionResult f = fresh.reconstruct(entry, opts);
    ASSERT_TRUE(t.complete());
    ASSERT_TRUE(f.complete());
    EXPECT_EQ(signal_set(t.signals), signal_set(f.signals));
  }
}

TEST(Incremental, BatchEvictionKeepsParityWithFreshBatch) {
  // A one-byte cache bound evicts every template the moment a worker
  // returns it, so each entry is served by a cold re-clone of the master
  // — the adversarial schedule for guard retirement (every guard retires
  // into a template that is then destroyed) and for the preprocess
  // front-end (model reconstruction state must live in the master, not
  // the evicted clone). Results must still match the fresh batch exactly.
  const TimestampEncoding enc =
      TimestampEncoding::random_constrained_auto(14, 3, 37);
  BatchReconstructor batch(enc);
  f2::Rng rng(53);
  const std::vector<LogEntry> entries = random_stream(enc, 20, rng);

  BatchOptions fresh_opts;
  fresh_opts.num_threads = 4;
  BatchOptions evict_opts = fresh_opts;
  evict_opts.recon.incremental = true;
  evict_opts.recon.preprocess = true;
  evict_opts.template_cache_bytes = 1;

  const auto& reg = obs::MetricsRegistry::global();
  const std::int64_t evictions_before =
      reg.counter_value("incremental.template_evictions");
  const BatchResult fresh = batch.reconstruct_all(entries, fresh_opts);
  const BatchResult evicting = batch.reconstruct_all(entries, evict_opts);
  EXPECT_TRUE(fresh.complete());
  EXPECT_TRUE(evicting.complete());
  ASSERT_EQ(evicting.results.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(signal_set(evicting.results[i].signals),
              signal_set(fresh.results[i].signals))
        << "entry " << i;
  }
  EXPECT_GT(reg.counter_value("incremental.template_evictions"),
            evictions_before);
  // Nothing idle may outlive the bound.
  EXPECT_LE(reg.gauge_value("incremental.template_cache_bytes"), 1);
}

TEST(Incremental, CacheBoundHoldsOverTenThousandEntrySoak) {
  // Long-stream soak: 10k entries through the incremental batch engine
  // under a cache bound sized to roughly two cold templates. Warm
  // templates outgrow the bound as learnts accumulate, so the LRU must
  // evict continuously while the idle cache never ends above the bound.
  const TimestampEncoding enc =
      TimestampEncoding::random_constrained_auto(10, 2, 43);
  BatchOptions opts;
  opts.num_threads = 4;
  opts.recon.incremental = true;
  const TemplateReconstructor probe(enc, {}, opts.recon);
  opts.template_cache_bytes = 2 * probe.retained_bytes();
  ASSERT_GT(opts.template_cache_bytes, 0u);

  BatchReconstructor batch(enc);
  f2::Rng rng(61);
  const std::vector<LogEntry> entries = random_stream(enc, 10000, rng);

  const auto& reg = obs::MetricsRegistry::global();
  const std::int64_t evictions_before =
      reg.counter_value("incremental.template_evictions");
  const BatchResult r = batch.reconstruct_all(entries, opts);
  EXPECT_TRUE(r.complete());
  ASSERT_EQ(r.results.size(), entries.size());
  EXPECT_GT(reg.counter_value("incremental.template_evictions"),
            evictions_before);
  EXPECT_LE(reg.gauge_value("incremental.template_cache_bytes"),
            static_cast<std::int64_t>(opts.template_cache_bytes));
}

}  // namespace
}  // namespace tp::core
