// Tests for the RTL simulation kernel, the agg-log hardware model (and its
// cycle-exact equivalence to the behavioural logger), the UART models and
// entry framing.

#include <gtest/gtest.h>

#include "rtlsim/agg_log.hpp"
#include "rtlsim/framing.hpp"
#include "rtlsim/sim.hpp"
#include "rtlsim/uart.hpp"

namespace tp::rtl {
namespace {

using core::LogEntry;
using core::Signal;
using core::StreamingLogger;
using core::TimestampEncoding;

// A toy counter component for kernel sanity checks.
class ToyCounter final : public Component {
 public:
  void eval() override { value_.write(value_.read() + 1); }
  void commit() override { value_.commit(); }
  void reset() override { value_.reset(); }
  int value() const { return value_.read(); }

 private:
  Reg<int> value_{0};
};

TEST(SimKernel, StepAdvancesAllComponents) {
  Simulator sim;
  ToyCounter a, b;
  sim.add(a);
  sim.add(b);
  sim.run(5);
  EXPECT_EQ(sim.cycle(), 5u);
  EXPECT_EQ(a.value(), 5);
  EXPECT_EQ(b.value(), 5);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(a.value(), 0);
}

TEST(SimKernel, TwoPhaseSemantics) {
  // A component reading another's output must see the previous cycle's
  // value, not the freshly evaluated one.
  Simulator sim;
  ToyCounter src;
  int observed_at_eval = -1;
  class Probe final : public Component {
   public:
    Probe(const ToyCounter& src, int& out) : src_(&src), out_(&out) {}
    void eval() override { *out_ = src_->value(); }
    void commit() override {}
    void reset() override {}

   private:
    const ToyCounter* src_;
    int* out_;
  } probe(src, observed_at_eval);
  sim.add(src);
  sim.add(probe);
  sim.step();
  EXPECT_EQ(observed_at_eval, 0);  // pre-commit value
  sim.step();
  EXPECT_EQ(observed_at_eval, 1);
}

TEST(AggLog, MatchesStreamingLoggerCycleExactly) {
  auto enc = TimestampEncoding::random_constrained(32, 12, 4, 17);
  AggLogUnit hw(enc);
  StreamingLogger sw(enc);
  Simulator sim;
  sim.add(hw);

  f2::Rng rng(55);
  for (int cycle = 0; cycle < 32 * 10; ++cycle) {
    const bool change = rng.below(3) == 0;
    hw.set_change(change);
    sim.step();
    sw.tick(change);
    ASSERT_EQ(hw.log().size(), sw.log().size()) << "cycle " << cycle;
  }
  ASSERT_EQ(hw.log().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hw.log()[i], sw.log()[i]) << "entry " << i;
  }
}

TEST(AggLog, EntryValidStrobesExactlyOncePerTraceCycle) {
  auto enc = TimestampEncoding::binary(8);
  AggLogUnit hw(enc);
  Simulator sim;
  sim.add(hw);
  int strobes = 0;
  for (int cycle = 0; cycle < 8 * 4; ++cycle) {
    hw.set_change(cycle % 3 == 0);
    sim.step();
    if (hw.entry_valid()) ++strobes;
  }
  EXPECT_EQ(strobes, 4);
}

TEST(AggLog, OutputEntryMatchesLoggedEntry) {
  auto enc = TimestampEncoding::binary(8);
  AggLogUnit hw(enc);
  Simulator sim;
  sim.add(hw);
  Signal s = Signal::from_change_cycles(8, {1, 2, 6});
  for (std::size_t i = 0; i < 8; ++i) {
    hw.set_change(s.has_change(i));
    sim.step();
  }
  ASSERT_TRUE(hw.entry_valid());
  core::Logger ref(enc);
  EXPECT_EQ(hw.entry(), ref.log(s));
  EXPECT_EQ(hw.log()[0], ref.log(s));
}

TEST(AggLog, ResetClearsEverything) {
  auto enc = TimestampEncoding::binary(8);
  AggLogUnit hw(enc);
  Simulator sim;
  sim.add(hw);
  hw.set_change(true);
  sim.run(5);
  sim.reset();
  EXPECT_EQ(hw.log().size(), 0u);
  EXPECT_EQ(hw.phase(), 0u);
  // After reset the unit behaves as if fresh.
  hw.set_change(false);
  sim.run(8);
  ASSERT_EQ(hw.log().size(), 1u);
  EXPECT_EQ(hw.log()[0].k, 0u);
}

TEST(Framing, RoundTrip) {
  f2::Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t m = 16 + rng.below(1000);
    const std::size_t b = 8 + rng.below(24);
    LogEntry e{f2::BitVec::random(b, rng), rng.below(m + 1)};
    const auto bits = serialize_entry(e, m);
    EXPECT_EQ(bits.size(), entry_payload_bits(m, b));
    EXPECT_EQ(deserialize_entry(bits, m, b), e);
  }
}

TEST(Framing, PaperCanPayloadIs34Bits) {
  // §5.2.1: m = 1000, b = 24 -> 24 + 10 = 34 bits per trace-cycle.
  EXPECT_EQ(entry_payload_bits(1000, 24), 34u);
}

TEST(Framing, DeserializeRejectsWrongPayloadSize) {
  // A truncated or over-long frame must be a hard error in release builds,
  // not a debug-only assert: a framing slip otherwise decodes to a
  // plausible-looking entry.
  const std::size_t m = 16, b = 8;  // payload = 8 + 5 bits
  std::vector<bool> bits(entry_payload_bits(m, b), false);
  EXPECT_NO_THROW(deserialize_entry(bits, m, b));
  bits.pop_back();
  EXPECT_THROW(deserialize_entry(bits, m, b), std::runtime_error);
  bits.push_back(false);
  bits.push_back(false);
  EXPECT_THROW(deserialize_entry(bits, m, b), std::runtime_error);
  EXPECT_THROW(deserialize_entry({}, m, b), std::runtime_error);
}

TEST(Framing, DeserializeRejectsImpossibleChangeCount) {
  // counter_bits(16) = 5, so the counter field can encode up to 31 — but
  // only 0..16 changes are possible in a 16-cycle trace-cycle.
  const std::size_t m = 16, b = 8;
  LogEntry e{f2::BitVec(b), m};  // k = m is the legal maximum
  auto bits = serialize_entry(e, m);
  EXPECT_NO_THROW(deserialize_entry(bits, m, b));
  // Patch the counter field (LSB-first, after the b timeprint bits) to 17.
  for (std::size_t i = b; i < bits.size(); ++i) bits[i] = ((17u >> (i - b)) & 1) != 0;
  EXPECT_THROW(deserialize_entry(bits, m, b), std::runtime_error);
}

class UartRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UartRoundTripTest, FramesSurviveTheWire) {
  const std::size_t divisor = GetParam();
  const std::size_t payload = 12;
  Simulator sim;
  UartTx tx(divisor);
  UartRx rx(divisor, payload, [&] { return tx.line(); });
  sim.add(tx);
  sim.add(rx);

  f2::Rng rng(divisor * 13 + 1);
  std::vector<std::vector<bool>> sent;
  for (int f = 0; f < 5; ++f) {
    std::vector<bool> frame;
    for (std::size_t i = 0; i < payload; ++i) frame.push_back(rng.flip());
    sent.push_back(frame);
    tx.send(frame);
  }
  // Run long enough for all frames plus slack.
  sim.run((payload + 2) * divisor * 7 + 100);

  EXPECT_FALSE(tx.busy());
  EXPECT_EQ(rx.framing_errors(), 0u);
  ASSERT_EQ(rx.frames().size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(rx.frames()[i], sent[i]) << "frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, UartRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Uart, LineIdlesHigh) {
  UartTx tx(4);
  EXPECT_TRUE(tx.line());
  EXPECT_FALSE(tx.busy());
}

TEST(Uart, QueueDepthTracksBacklog) {
  UartTx tx(1000);  // very slow line
  tx.send({true});
  tx.send({false});
  tx.send({true});
  EXPECT_EQ(tx.queue_depth(), 3u);
  EXPECT_EQ(tx.max_queue_depth(), 3u);
}

TEST(EndToEnd, AggLogThroughUartReconstructsTraceLog) {
  // The full §5.2.2-style pipeline: traced signal -> agg-log HW -> UART ->
  // line -> receiver -> decoded TraceLog equal to the behavioural one.
  auto enc = TimestampEncoding::random_constrained(64, 13, 4, 23);
  const std::size_t payload = entry_payload_bits(64, 13);
  // Line budget: payload+2 bits per 64 cycles -> divisor 3 fits
  // ((13+7+2)*3 = 66... too tight; use 2).
  const std::size_t divisor = 2;

  Simulator sim;
  AggLogUnit hw(enc);
  UartTx tx(divisor);
  UartRx rx(divisor, payload, [&] { return tx.line(); });
  sim.add(hw);
  sim.add(tx);
  sim.add(rx);

  StreamingLogger sw(enc);
  f2::Rng rng(3);
  const int trace_cycles = 12;
  for (int c = 0; c < 64 * trace_cycles; ++c) {
    const bool change = rng.below(5) == 0;
    hw.set_change(change);
    sw.tick(change);
    sim.step();
    if (hw.entry_valid()) {
      tx.send(serialize_entry(hw.entry(), enc.m()));
    }
  }
  hw.set_change(false);
  sim.run((payload + 2) * divisor + 50);  // drain the last frame

  EXPECT_EQ(rx.framing_errors(), 0u);
  ASSERT_EQ(rx.frames().size(), static_cast<std::size_t>(trace_cycles));
  // The transmitter never accumulated a backlog: constant-rate logging
  // without a trace buffer.
  EXPECT_LE(tx.max_queue_depth(), 1u);
  for (int i = 0; i < trace_cycles; ++i) {
    const core::LogEntry decoded =
        deserialize_entry(rx.frames()[static_cast<std::size_t>(i)], enc.m(), enc.width());
    EXPECT_EQ(decoded, sw.log()[static_cast<std::size_t>(i)]) << "entry " << i;
  }
}

}  // namespace
}  // namespace tp::rtl
