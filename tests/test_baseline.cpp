// Tests for the baseline tracing schemes and the storage-rate comparison.

#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "timeprint/design.hpp"
#include "timeprint/logger.hpp"

namespace tp::baseline {
namespace {

TEST(RawWaveform, StoresEverythingLosslessly) {
  RawWaveformLogger logger(32);
  f2::Rng rng(1);
  std::vector<core::Signal> originals;
  for (int i = 0; i < 5; ++i) {
    originals.push_back(core::Signal::random_with_changes(32, rng.below(33), rng));
    logger.log(originals.back());
  }
  EXPECT_EQ(logger.total_bits(), 5u * 32u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(logger.reconstruct(i), originals[i]);
  }
}

TEST(EventLogger, LosslessReconstruction) {
  EventLogger logger(64);
  f2::Rng rng(2);
  std::vector<core::Signal> originals;
  for (int i = 0; i < 8; ++i) {
    originals.push_back(core::Signal::random_with_changes(64, rng.below(65), rng));
    logger.log(originals.back());
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(logger.reconstruct(i), originals[i]);
  }
}

TEST(EventLogger, BitsGrowLinearlyWithChanges) {
  EventLogger logger(64);
  logger.log(core::Signal(64));  // k = 0
  const std::size_t empty_bits = logger.total_bits();
  logger.log(core::Signal::from_change_cycles(64, {1, 2, 3, 4}));  // k = 4
  const std::size_t four_bits = logger.total_bits() - empty_bits;
  // 4 events of 6 bits each plus the 7-bit counter field.
  EXPECT_EQ(logger.bits_per_event(), 6u);
  EXPECT_EQ(four_bits, 4u * 6u + core::counter_bits(64));
  EXPECT_EQ(empty_bits, core::counter_bits(64));
}

TEST(EventLogger, PinBandwidthBound) {
  // With one logging pin, at most m / log2(m) events fit per trace-cycle
  // (paper §3): 64/6 ~ 10.67.
  EXPECT_NEAR(EventLogger::max_loggable_events(64), 64.0 / 6.0, 1e-9);
  EXPECT_NEAR(EventLogger::max_loggable_events(1024), 1024.0 / 10.0, 1e-9);
}

TEST(CompareRates, TimeprintIsConstantAndSmallest) {
  // At realistic change densities the timeprint rate undercuts both
  // baselines; the raw waveform always costs the full clock rate.
  const auto rates = compare_rates(1024, 24, 100e6, /*density=*/0.2);
  ASSERT_EQ(rates.size(), 3u);
  const double raw = rates[0].bits_per_second;
  const double events = rates[1].bits_per_second;
  const double timeprint = rates[2].bits_per_second;
  EXPECT_DOUBLE_EQ(raw, 100e6);
  EXPECT_LT(timeprint, events);
  EXPECT_LT(timeprint, raw);
  // Timeprint rate is density-independent.
  const auto denser = compare_rates(1024, 24, 100e6, 0.9);
  EXPECT_DOUBLE_EQ(denser[2].bits_per_second, timeprint);
  EXPECT_GT(denser[1].bits_per_second, events);
}

TEST(CompareRates, EventLogWinsOnlyWhenNearlySilent) {
  // With almost no activity the event log can beat the timeprint — the
  // paper's constant-rate pitch targets signals that do toggle.
  const auto quiet = compare_rates(1024, 24, 100e6, 1e-5);
  EXPECT_LT(quiet[1].bits_per_second, quiet[2].bits_per_second);
}

TEST(CompareRates, MeasuredBitsMatchRateFormulas) {
  // Stream the same workload through all three loggers and compare the
  // measured totals with the closed-form rates.
  const std::size_t m = 128;
  const std::size_t windows = 50;
  f2::Rng rng(3);
  RawWaveformLogger raw(m);
  EventLogger events(m);
  auto enc = core::TimestampEncoding::random_constrained(m, 16, 4, 9);
  core::StreamingLogger tpr(enc);

  std::size_t total_changes = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    core::Signal s = core::Signal::random_with_changes(m, rng.below(m / 4), rng);
    total_changes += s.num_changes();
    raw.log(s);
    events.log(s);
    for (std::size_t i = 0; i < m; ++i) tpr.tick(s.has_change(i));
  }

  EXPECT_EQ(raw.total_bits(), windows * m);
  EXPECT_EQ(events.total_bits(),
            total_changes * events.bits_per_event() +
                windows * core::counter_bits(m));
  EXPECT_EQ(tpr.log().total_bits(), windows * enc.bits_per_trace_cycle());
}

}  // namespace
}  // namespace tp::baseline
