// Feature-interaction tests for the SAT solver: XOR chunking, the
// Gaussian engine combined with AllSAT/cardinality, stats and options.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "f2/bitvec.hpp"
#include "sat/allsat.hpp"
#include "sat/cardinality.hpp"
#include "sat/dimacs.hpp"
#include "sat/reference.hpp"
#include "sat/solver.hpp"

namespace tp::sat {
namespace {

std::vector<Var> make_vars(Solver& s, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  return vars;
}

TEST(XorChunking, LongXorSplitsIntoShortOnes) {
  SolverOptions opts;
  opts.xor_chunk_size = 5;
  Solver s(opts);
  auto vars = make_vars(s, 20);
  ASSERT_TRUE(s.add_xor(vars, true));
  // Chunked: several constraints instead of one 20-variable row.
  EXPECT_GT(s.num_xors(), 1u);
  ASSERT_EQ(s.solve(), Status::Sat);
  int ones = 0;
  for (Var v : vars) ones += s.model_value(v) == LBool::True ? 1 : 0;
  EXPECT_EQ(ones % 2, 1);
}

TEST(XorChunking, ChunkedAndUnchunkedAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    f2::Rng rng(seed);
    Cnf cnf;
    cnf.num_vars = 14;
    for (int i = 0; i < 6; ++i) {
      std::vector<Var> xv;
      for (int j = 0; j < 9; ++j) xv.push_back(static_cast<Var>(rng.below(14)));
      cnf.xors.emplace_back(std::move(xv), rng.flip());
    }
    for (int i = 0; i < 8; ++i) {
      cnf.clauses.push_back({Lit(static_cast<Var>(rng.below(14)), rng.flip()),
                             Lit(static_cast<Var>(rng.below(14)), rng.flip())});
    }
    SolverOptions chunked;
    chunked.xor_chunk_size = 4;
    SolverOptions unchunked;
    unchunked.xor_chunk_size = 0;
    Solver a(chunked), b(unchunked);
    cnf.load_into(a);
    cnf.load_into(b);
    EXPECT_EQ(a.solve(), b.solve()) << "seed " << seed;
  }
}

TEST(XorChunking, ProjectedModelCountUnaffectedByAuxVars) {
  // Chunking introduces auxiliary variables; enumeration over the original
  // variables must still produce each solution exactly once.
  SolverOptions opts;
  opts.xor_chunk_size = 3;
  Solver s(opts);
  auto vars = make_vars(s, 8);
  ASSERT_TRUE(s.add_xor(vars, false));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  EXPECT_EQ(result.models.size(), 128u);  // 2^7 even-parity assignments
}

TEST(Gauss, AllSatEnumerationWorks) {
  SolverOptions opts;
  opts.use_gauss = true;
  opts.gauss_max_unassigned = SIZE_MAX;
  Solver s(opts);
  auto vars = make_vars(s, 6);
  ASSERT_TRUE(s.add_xor({vars[0], vars[1], vars[2]}, true));
  ASSERT_TRUE(s.add_xor({vars[3], vars[4]}, false));
  auto result = enumerate_models(s, vars);
  ASSERT_TRUE(result.complete());
  // 4 odd-parity triples x 2 equal pairs x 2 free = 16 models.
  EXPECT_EQ(result.models.size(), 16u);
  for (const auto& mo : result.models) {
    EXPECT_TRUE(mo[0] ^ mo[1] ^ mo[2]);
    EXPECT_EQ(mo[3], mo[4]);
  }
}

TEST(Gauss, WithCardinalityMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    f2::Rng rng(seed);
    const int n = 10;
    Cnf cnf;
    cnf.num_vars = n;
    for (int i = 0; i < 4; ++i) {
      std::vector<Var> xv;
      for (int j = 0; j < 5; ++j) xv.push_back(static_cast<Var>(rng.below(n)));
      cnf.xors.emplace_back(std::move(xv), rng.flip());
    }
    const auto reference = reference_all_models(cnf);
    std::size_t ref_with_3 = 0;
    for (const auto& mo : reference) {
      int ones = 0;
      for (bool v : mo) ones += v;
      if (ones == 3) ++ref_with_3;
    }

    SolverOptions opts;
    opts.use_gauss = true;
    Solver s(opts);
    cnf.load_into(s);
    std::vector<Lit> lits;
    std::vector<Var> proj;
    for (Var v = 0; v < n; ++v) {
      lits.push_back(mk_lit(v));
      proj.push_back(v);
    }
    encode_exactly(s, lits, 3);
    auto result = enumerate_models(s, proj);
    ASSERT_TRUE(result.complete()) << "seed " << seed;
    EXPECT_EQ(result.models.size(), ref_with_3) << "seed " << seed;
  }
}

TEST(Gauss, GateThresholdDoesNotChangeAnswers) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    f2::Rng rng(seed * 3 + 1);
    Cnf cnf;
    cnf.num_vars = 12;
    for (int i = 0; i < 5; ++i) {
      std::vector<Var> xv;
      for (int j = 0; j < 6; ++j) xv.push_back(static_cast<Var>(rng.below(12)));
      cnf.xors.emplace_back(std::move(xv), rng.flip());
    }
    cnf.clauses.push_back({mk_lit(0), mk_lit(1)});

    SolverOptions always;
    always.use_gauss = true;
    always.gauss_max_unassigned = SIZE_MAX;
    SolverOptions gated;
    gated.use_gauss = true;
    gated.gauss_max_unassigned = 4;
    Solver a(always), b(gated);
    cnf.load_into(a);
    cnf.load_into(b);
    EXPECT_EQ(a.solve(), b.solve()) << "seed " << seed;
  }
}

TEST(Gauss, XorFoldedAtLevelZero) {
  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));     // a fixed true
  ASSERT_TRUE(s.add_xor({a, b}, true));       // folds to b = 0
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.model_value(b), LBool::False);
}

TEST(Assumptions, SatUnderCompatibleAssumptions) {
  Solver s;
  auto vars = make_vars(s, 4);
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1])}));
  ASSERT_EQ(s.solve_assuming({~mk_lit(vars[0])}), Status::Sat);
  EXPECT_EQ(s.model_value(vars[0]), LBool::False);
  EXPECT_EQ(s.model_value(vars[1]), LBool::True);
  // The solver is still usable with different assumptions afterwards.
  ASSERT_EQ(s.solve_assuming({~mk_lit(vars[1])}), Status::Sat);
  EXPECT_EQ(s.model_value(vars[0]), LBool::True);
}

TEST(Assumptions, UnsatUnderAssumptionsKeepsSolverUsable) {
  Solver s;
  auto vars = make_vars(s, 3);
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1])}));
  EXPECT_EQ(s.solve_assuming({~mk_lit(vars[0]), ~mk_lit(vars[1])}), Status::Unsat);
  EXPECT_TRUE(s.okay());  // not unconditionally unsat
  // final_conflict is a clause over the failed assumptions.
  EXPECT_FALSE(s.final_conflict().empty());
  for (Lit l : s.final_conflict()) {
    EXPECT_TRUE(l == mk_lit(vars[0]) || l == mk_lit(vars[1]));
  }
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Assumptions, PropagatedConflictFindsResponsibleSubset) {
  // a -> b; assuming a and ~b is unsat; assuming a and an unrelated c is
  // fine.
  Solver s;
  auto vars = make_vars(s, 3);
  ASSERT_TRUE(s.add_clause({~mk_lit(vars[0]), mk_lit(vars[1])}));
  EXPECT_EQ(s.solve_assuming({mk_lit(vars[0]), ~mk_lit(vars[1]), mk_lit(vars[2])}),
            Status::Unsat);
  // vars[2] must not be blamed.
  for (Lit l : s.final_conflict()) EXPECT_NE(l.var(), vars[2]);
  EXPECT_EQ(s.solve_assuming({mk_lit(vars[0]), mk_lit(vars[2])}), Status::Sat);
}

TEST(Assumptions, WithXorConstraints) {
  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  auto vars = make_vars(s, 4);
  ASSERT_TRUE(s.add_xor({vars[0], vars[1], vars[2]}, true));
  ASSERT_EQ(s.solve_assuming({mk_lit(vars[0]), mk_lit(vars[1])}), Status::Sat);
  EXPECT_EQ(s.model_value(vars[2]), LBool::True);
  EXPECT_EQ(s.solve_assuming({mk_lit(vars[0]), mk_lit(vars[1]),
                              ~mk_lit(vars[2])}),
            Status::Unsat);
  EXPECT_TRUE(s.okay());
}

TEST(Assumptions, UnconditionalUnsatStillPoisonsSolver) {
  Solver s;
  Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({mk_lit(a)}));
  s.add_clause({~mk_lit(a)});
  EXPECT_EQ(s.solve_assuming({mk_lit(a)}), Status::Unsat);
  EXPECT_FALSE(s.okay());
}

TEST(SolverStats, CountersIncrease) {
  Solver s;
  auto vars = make_vars(s, 12);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  encode_exactly(s, lits, 6);
  s.add_xor({vars[0], vars[1], vars[2], vars[3]}, true);
  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_GT(s.stats().decisions, 0);
  EXPECT_GT(s.stats().propagations, 0);
}

TEST(SolverOptions, DefaultPolarityRespected) {
  SolverOptions opts;
  opts.default_polarity = true;
  Solver s(opts);
  auto vars = make_vars(s, 4);
  (void)vars;
  ASSERT_EQ(s.solve(), Status::Sat);
  // With no constraints, the first decision polarity is the default.
  for (Var v = 0; v < 4; ++v) EXPECT_EQ(s.model_value(v), LBool::True);
}

TEST(Assumptions, IncrementalReSolveAfterBacktracking) {
  // The cube-and-conquer loop of the batch engine: solve under one cube,
  // block the model, re-solve the same cube, then switch cubes — the
  // solver must backtrack out of the assumption prefix cleanly each time.
  Solver s;
  auto vars = make_vars(s, 6);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 2));
  ASSERT_TRUE(s.add_xor({vars[0], vars[1], vars[2]}, true));

  int models_cube0 = 0;
  while (s.solve_assuming({mk_lit(vars[0])}) == Status::Sat) {
    ++models_cube0;
    std::vector<Lit> blocking;
    for (Var v : vars) {
      blocking.push_back(Lit(v, s.model_value(v) == LBool::True));
    }
    ASSERT_TRUE(s.add_clause(std::move(blocking)));
    ASSERT_LE(models_cube0, 32);  // enumeration must terminate
  }
  EXPECT_TRUE(s.okay());  // only assumption-unsat, not unconditional
  // v0=1 and exactly-2 with v0^v1^v2=1 forces the second change outside
  // {v1, v2}: pairs (0,3), (0,4), (0,5).
  EXPECT_EQ(models_cube0, 3);

  // The complementary cube still enumerates (v0=0: v1^v2=1, one of the
  // pair plus one free change — (1,3),(1,4),(1,5),(2,3),(2,4),(2,5)).
  EXPECT_EQ(s.solve_assuming({~mk_lit(vars[0])}), Status::Sat);
  EXPECT_EQ(s.model_value(vars[0]), LBool::False);
  // And an unconstrained solve still works after all of it.
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(SolverClone, CloneSolvesLikeTheOriginal) {
  SolverOptions opts;
  opts.use_gauss = true;
  Solver s(opts);
  auto vars = make_vars(s, 10);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 4));
  ASSERT_TRUE(s.add_xor({vars[0], vars[1], vars[2], vars[3]}, true));
  ASSERT_TRUE(s.add_xor({vars[2], vars[5], vars[7]}, false));

  auto c = s.clone();
  ASSERT_EQ(s.solve(), Status::Sat);
  ASSERT_EQ(c->solve(), Status::Sat);
  // Identical state + deterministic search => identical model.
  for (Var v : vars) EXPECT_EQ(s.model_value(v), c->model_value(v));
}

TEST(SolverClone, CloneIsIndependentOfTheOriginal) {
  Solver s;
  auto vars = make_vars(s, 4);
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1])}));

  auto c = s.clone();
  ASSERT_TRUE(c->add_clause({~mk_lit(vars[0])}));   // propagates v1 = true
  EXPECT_FALSE(c->add_clause({~mk_lit(vars[1])}));  // contradiction: clone unsat
  EXPECT_EQ(c->solve(), Status::Unsat);
  EXPECT_FALSE(c->okay());
  // The original never saw those clauses.
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(SolverClone, CloneAfterSearchCarriesLearntState) {
  // Clone mid-enumeration: learnt clauses, saved phases and level-0 units
  // travel with the clone, and both copies enumerate the same remainder.
  Solver s;
  auto vars = make_vars(s, 8);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 3));
  ASSERT_TRUE(s.add_xor({vars[0], vars[3], vars[6]}, true));
  ASSERT_EQ(s.solve(), Status::Sat);
  std::vector<Lit> blocking;
  for (Var v : vars) blocking.push_back(Lit(v, s.model_value(v) == LBool::True));
  ASSERT_TRUE(s.add_clause(std::move(blocking)));

  auto c = s.clone();
  auto rest_s = enumerate_models(s, vars);
  auto rest_c = enumerate_models(*c, vars);
  ASSERT_TRUE(rest_s.complete());
  ASSERT_TRUE(rest_c.complete());
  EXPECT_EQ(rest_s.models, rest_c.models);  // same models, same order
}

TEST(SolverClone, CloneUnderAssumptionsPartitionsTheModelSpace) {
  // Enumerate a projection fully, then re-enumerate it as two cubes on
  // fresh clones: the cubes are disjoint and their union is the whole set.
  Solver s;
  auto vars = make_vars(s, 5);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 2));

  const auto whole = s.clone();
  auto full = enumerate_models(*whole, vars);
  ASSERT_TRUE(full.complete());

  AllSatOptions cube0, cube1;
  cube0.assumptions = {mk_lit(vars[0])};
  cube1.assumptions = {~mk_lit(vars[0])};
  auto r0 = enumerate_models(*s.clone(), vars, cube0);
  auto r1 = enumerate_models(*s.clone(), vars, cube1);
  ASSERT_TRUE(r0.complete());
  ASSERT_TRUE(r1.complete());
  EXPECT_EQ(r0.models.size() + r1.models.size(), full.models.size());
  std::set<std::vector<bool>> all(r0.models.begin(), r0.models.end());
  all.insert(r1.models.begin(), r1.models.end());
  std::set<std::vector<bool>> expected(full.models.begin(), full.models.end());
  EXPECT_EQ(all, expected);
}

TEST(SolverInterrupt, PreSetTokenStopsTheSolveImmediately) {
  Solver s;
  auto vars = make_vars(s, 10);
  std::vector<Lit> lits;
  for (Var v : vars) lits.push_back(mk_lit(v));
  ASSERT_TRUE(encode_exactly(s, lits, 5));

  std::atomic<bool> stop{true};
  SolveLimits limits;
  limits.interrupt = &stop;
  EXPECT_EQ(s.solve(limits), Status::Unknown);
  EXPECT_TRUE(s.okay());

  // Clearing the token makes the same solve succeed.
  stop.store(false);
  EXPECT_EQ(s.solve(limits), Status::Sat);
}

TEST(Simplify, SweepsRootSatisfiedClausesAndKeepsSemantics) {
  // A guard-style scenario: clauses conditional on g become root-satisfied
  // ballast once g is fixed false; simplify() must drop them from the
  // database while leaving the solver's answers unchanged.
  Solver s;
  auto vars = make_vars(s, 4);
  const Lit g = mk_lit(s.new_var());
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1])}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.add_clause({~g, Lit(vars[2], i % 2 == 0), mk_lit(vars[3])}));
  }
  const std::size_t before = s.num_clauses();
  ASSERT_TRUE(s.add_clause({~g}));  // retire: the 3 guarded clauses die
  ASSERT_TRUE(s.simplify());
  EXPECT_EQ(s.num_clauses(), before - 3);

  ASSERT_EQ(s.solve(), Status::Sat);
  EXPECT_TRUE(s.model_value(vars[0]) == LBool::True ||
              s.model_value(vars[1]) == LBool::True);
  // The unguarded clause survived: forcing both of its literals false must
  // hit the root conflict (the second unit is rejected at level 0, since
  // the first one already propagated vars[1] true through that clause).
  ASSERT_TRUE(s.add_clause({~mk_lit(vars[0])}));
  EXPECT_FALSE(s.add_clause({~mk_lit(vars[1])}));
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Simplify, IsANoOpWithoutRootAssignments) {
  Solver s;
  auto vars = make_vars(s, 3);
  ASSERT_TRUE(s.add_clause({mk_lit(vars[0]), mk_lit(vars[1]), mk_lit(vars[2])}));
  const std::size_t before = s.num_clauses();
  ASSERT_TRUE(s.simplify());
  EXPECT_EQ(s.num_clauses(), before);
  EXPECT_EQ(s.solve(), Status::Sat);
}

}  // namespace
}  // namespace tp::sat
