#!/usr/bin/env python3
"""Project-invariant linter for the timeprints tree (CI `lint` job).

Checks the conventions that keep the codebase reviewable but that no
compiler flag enforces. Every rule has a name; every finding prints as

    path:line: [rule-name] message

and any finding makes the exit status 1. Rules are individually
suppressible, either globally (--disable RULE) or per line with a marker
comment that *must* carry a rationale:

    util::Mutex legacy_;  // tp-lint: allow(raw-mutex) migration shim, PR 9

A marker without a rationale is itself a finding (allow-requires-reason),
mirroring the NOLINT policy checked by nolint-reason.

The linter is text-based but token-aware: comments and string literals are
blanked before code rules run, so prose mentioning `std::mutex` or
`sat::Solver` never trips a rule. Scope is src/**/*.{hpp,cpp} — tests,
bench and examples may use raw primitives and concrete classes
deliberately (they exercise them).

Run `tools/lint.py --list-rules` for the rule catalogue; unit tests live
in tools/test_lint.py (registered with ctest as lint.selftest, while
lint.tree runs this script over the repository).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One file plus its comment/string-stripped shadow."""

    path: pathlib.Path
    rel: str  # path relative to the repo root, with forward slashes
    raw: str
    code: str  # raw with comments and string/char literals blanked

    @property
    def raw_lines(self) -> List[str]:
        return self.raw.splitlines()

    @property
    def code_lines(self) -> List[str]:
        return self.code.splitlines()


def strip_comments_and_strings(text: str) -> str:
    """Blank comments, string literals and char literals with spaces.

    Newlines are preserved so line numbers survive. Handles //, block
    comments, escape sequences and simple raw strings R"delim(...)delim".
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            closer = f"){m.group(1)}\""
            end = text.find(closer, i + m.end())
            end = n if end < 0 else end + len(closer)
            out.extend("\n" if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Suppression markers
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(r"tp-lint:\s*allow\(([a-z0-9-]+)\)\s*(.*)")


def parse_allows(sf: SourceFile, rule_names: set,
                 findings: List[Finding]) -> dict:
    """Per-line rule suppressions; malformed markers become findings.

    A marker trailing code suppresses its own line; a marker on a pure
    comment line suppresses the next line (the NOLINTNEXTLINE shape).
    """
    allows: dict = {}
    code_lines = sf.code_lines
    for idx, line in enumerate(sf.raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            if "tp-lint" in line and "allow" in line:
                findings.append(Finding(
                    sf.path, idx, "allow-requires-reason",
                    "malformed suppression; use `tp-lint: allow(rule) reason`"))
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in rule_names:
            findings.append(Finding(
                sf.path, idx, "allow-requires-reason",
                f"unknown rule '{rule}' in suppression marker"))
            continue
        if not reason:
            findings.append(Finding(
                sf.path, idx, "allow-requires-reason",
                f"suppression of '{rule}' needs a rationale on the same line"))
            continue
        comment_only = (idx <= len(code_lines)
                        and not code_lines[idx - 1].strip())
        allows.setdefault(idx + 1 if comment_only else idx, set()).add(rule)
    return allows


# --------------------------------------------------------------------------
# Rules. Each returns findings for one file; scope filtering is inside the
# rule so the catalogue below stays flat.
# --------------------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")


def rule_raw_mutex(sf: SourceFile) -> List[Finding]:
    """No raw std synchronization outside src/util/sync.hpp.

    util::Mutex / util::MutexLock / util::CondVar carry the thread-safety
    capability annotations and the debug lock-rank check; a raw std::mutex
    is invisible to both, so the compile-time concurrency proofs would
    silently stop covering whatever it guards.
    """
    if sf.rel == "src/util/sync.hpp":
        return []
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        m = RAW_SYNC_RE.search(line)
        if m is not None:
            out.append(Finding(
                sf.path, idx, "raw-mutex",
                f"std::{m.group(1)} outside util/sync.hpp; use the "
                "annotated util::Mutex/MutexLock/CondVar wrappers"))
    return out


SOLVER_TYPE_RE = re.compile(r"\bsat::Solver\b(?![A-Za-z0-9_])")
SOLVER_INCLUDE_RE = re.compile(r'#\s*include\s*"sat/solver\.hpp"')


def rule_solver_interface_only(sf: SourceFile) -> List[Finding]:
    """Outside src/sat/, solvers are reached through SolverInterface.

    Reconstruction code builds backends via sat::SolverFactory and talks
    to sat::SolverInterface only; naming the concrete sat::Solver (or
    including its header) couples callers to one backend and bypasses the
    portfolio/preprocessing wrappers.
    """
    if sf.rel.startswith("src/sat/"):
        return []
    out = []
    raw_lines = sf.raw_lines
    for idx, line in enumerate(sf.code_lines, start=1):
        # Include paths are string literals, blanked in the code shadow —
        # match the raw line, gated on the code line still being a real
        # preprocessor include (not a commented-out one).
        if (re.match(r"\s*#\s*include\b", line)
                and SOLVER_INCLUDE_RE.search(raw_lines[idx - 1])):
            out.append(Finding(
                sf.path, idx, "solver-interface-only",
                'include of "sat/solver.hpp" outside src/sat/; program '
                "against sat/interface.hpp (SolverInterface/SolverFactory)"))
        if SOLVER_TYPE_RE.search(line):
            out.append(Finding(
                sf.path, idx, "solver-interface-only",
                "concrete sat::Solver use outside src/sat/; go through "
                "SolverInterface"))
    return out


PREPROCESS_TYPE_RE = re.compile(
    r"\b(?:sat::)?(Preprocessor|PreprocessingSolver)\b")
PREPROCESS_INCLUDE_RE = re.compile(r'#\s*include\s*"sat/preprocess\.hpp"')


def rule_preprocess_gateway(sf: SourceFile) -> List[Finding]:
    """Outside src/sat/, the CNF front-end is reached through the factory.

    SolverFactory::make wraps any backend in PreprocessingSolver when
    SolverConfig::preprocess is set, and that wrapper owns the variable
    remapping, witness restoration and DRAT bookkeeping as one unit.
    Constructing sat::Preprocessor or sat::PreprocessingSolver directly
    (or including sat/preprocess.hpp) elsewhere bypasses the factory and
    can hand callers inner literals that no longer mean what the outer
    encoding thinks they mean.
    """
    if sf.rel.startswith("src/sat/"):
        return []
    out = []
    raw_lines = sf.raw_lines
    for idx, line in enumerate(sf.code_lines, start=1):
        # Include paths are string literals, blanked in the code shadow —
        # match the raw line, gated on the code line still being a real
        # preprocessor include (not a commented-out one).
        if (re.match(r"\s*#\s*include\b", line)
                and PREPROCESS_INCLUDE_RE.search(raw_lines[idx - 1])):
            out.append(Finding(
                sf.path, idx, "preprocess-gateway",
                'include of "sat/preprocess.hpp" outside src/sat/; set '
                "SolverConfig::preprocess and build via SolverFactory"))
        m = PREPROCESS_TYPE_RE.search(line)
        if m is not None:
            out.append(Finding(
                sf.path, idx, "preprocess-gateway",
                f"direct sat::{m.group(1)} use outside src/sat/; set "
                "SolverConfig::preprocess and build via SolverFactory"))
    return out


NOLINT_RE = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b(\([^)]*\))?(.*)")


def rule_nolint_reason(sf: SourceFile) -> List[Finding]:
    """Every NOLINT names the silenced check and carries a rationale.

    A bare NOLINT suppresses *everything* on the line forever, with no
    record of why; `NOLINT(check-name): reason` keeps the suppression
    narrow and auditable. NOLINTEND only closes a region, so it needs the
    check name but no fresh rationale.
    """
    out = []
    for idx, line in enumerate(sf.raw_lines, start=1):
        for m in NOLINT_RE.finditer(line):
            kind = m.group(1) or ""
            names = m.group(2)
            trail = (m.group(3) or "").strip()
            if names is None or not names.strip("() \t"):
                out.append(Finding(
                    sf.path, idx, "nolint-reason",
                    f"NOLINT{kind} without a check name; write "
                    "NOLINT(check-name): reason"))
                continue
            if kind == "END":
                continue
            if not re.match(r"^[:—-]\s*\S", trail):
                out.append(Finding(
                    sf.path, idx, "nolint-reason",
                    f"NOLINT{kind}{names} without a rationale; append "
                    "`: why this is safe`"))
    return out


OPTIONS_BY_VALUE_RE = re.compile(
    r"[(,]\s*((?:\w+::)*\w*Options)\s+(\w+)\s*(?=[,)=])")


def rule_options_const_ref(sf: SourceFile) -> List[Finding]:
    """Options structs are passed by const reference, not by value.

    The knob structs (SolverOptions, BatchOptions, ...) are dozens of
    fields and growing; copying one per call hides real cost and lets a
    callee silently diverge from the caller's configuration. Heuristic:
    a parameter-position `FooOptions name` not preceded by const& shape.
    """
    out = []
    for m in OPTIONS_BY_VALUE_RE.finditer(sf.code):
        line = sf.code.count("\n", 0, m.start(1)) + 1
        out.append(Finding(
            sf.path, line, "options-const-ref",
            f"{m.group(1)} parameter '{m.group(2)}' passed by value; "
            f"take `const {m.group(1)}&`"))
    return out


NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?")
WRAPPED_NEW_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;={]*>\s*\(\s*new\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def rule_naked_new(sf: SourceFile) -> List[Finding]:
    """No naked new/delete in src/.

    Ownership lives in smart pointers and containers. `new` is tolerated
    only when the result lands directly in a unique_ptr/shared_ptr on the
    same line (the private-copy-constructor clone() idiom make_unique
    cannot express); every `delete` (except `= delete`) is a finding.
    """
    out = []
    for idx, line in enumerate(sf.code_lines, start=1):
        if NEW_RE.search(line) and not WRAPPED_NEW_RE.search(line):
            out.append(Finding(
                sf.path, idx, "naked-new",
                "naked new; use make_unique or wrap in a smart pointer "
                "on the same line"))
        for m in DELETE_RE.finditer(line):
            before = line[:m.start()]
            if DELETED_FN_RE.search(before + "delete"):
                continue
            out.append(Finding(
                sf.path, idx, "naked-new",
                "naked delete; ownership belongs in a smart pointer"))
    return out


RULES: List[Callable[[SourceFile], List[Finding]]] = [
    rule_raw_mutex,
    rule_solver_interface_only,
    rule_preprocess_gateway,
    rule_nolint_reason,
    rule_options_const_ref,
    rule_naked_new,
]


def rule_name(rule: Callable) -> str:
    return rule.__name__.removeprefix("rule_").replace("_", "-")


RULE_NAMES = {rule_name(r) for r in RULES} | {"allow-requires-reason"}


def lint_file(path: pathlib.Path, root: pathlib.Path,
              disabled: set) -> List[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    rel = path.relative_to(root).as_posix()
    sf = SourceFile(path=path, rel=rel, raw=raw,
                    code=strip_comments_and_strings(raw))
    findings: List[Finding] = []
    allows = parse_allows(sf, RULE_NAMES, findings)
    for rule in RULES:
        name = rule_name(rule)
        if name in disabled:
            continue
        for f in rule(sf):
            if name in allows.get(f.line, set()):
                continue
            findings.append(f)
    return [f for f in findings if f.rule not in disabled]


def collect_files(root: pathlib.Path) -> List[pathlib.Path]:
    src = root / "src"
    return sorted(p for p in src.rglob("*") if p.suffix in (".hpp", ".cpp"))


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files to lint (default: src/ under --root)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the linter's repo)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule by name")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule_name(rule):24} {doc}")
        print(f"{'allow-requires-reason':24} "
              "suppression markers must name a known rule and give a reason")
        return 0

    root = args.root.resolve()
    unknown = [d for d in args.disable if d not in RULE_NAMES]
    if unknown:
        print(f"lint.py: unknown rule(s) in --disable: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    files = [p.resolve() for p in args.paths] or collect_files(root)
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, root, set(args.disable)))

    for f in sorted(findings, key=lambda f: (str(f.path), f.line, f.rule)):
        print(f)
    if findings:
        print(f"\nlint.py: {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
