#!/usr/bin/env python3
"""Unit tests for tools/lint.py (ctest: lint.selftest).

Each rule is exercised on fixture snippets in both directions: a
violation must be reported, and the idiomatic form (or a suppressed
violation) must pass. Fixtures are written into a synthetic src/ tree so
the path-scoping logic (sync.hpp exemption, src/sat/ exemption) is under
test too.
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def run_lint(self, rel_path: str, text: str, disabled=()):
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return lint.lint_file(path, self.root, set(disabled))

    def rules_of(self, findings):
        return sorted(f.rule for f in findings)


class StripTest(LintFixture):
    def test_line_and_block_comments_are_blanked(self):
        code = lint.strip_comments_and_strings(
            "int a; // std::mutex\n/* sat::Solver */ int b;\n")
        self.assertNotIn("mutex", code)
        self.assertNotIn("Solver", code)
        self.assertIn("int a;", code)
        self.assertIn("int b;", code)

    def test_strings_are_blanked_and_newlines_survive(self):
        code = lint.strip_comments_and_strings(
            'f("std::mutex");\ng(\'x\');\nh(R"(new delete)");\n')
        self.assertNotIn("mutex", code)
        self.assertNotIn("new", code)
        self.assertEqual(code.count("\n"), 3)

    def test_escaped_quote_does_not_end_string(self):
        code = lint.strip_comments_and_strings('f("a\\"b std::mutex");int z;')
        self.assertNotIn("mutex", code)
        self.assertIn("int z;", code)


class RawMutexTest(LintFixture):
    def test_raw_mutex_in_src_is_flagged(self):
        findings = self.run_lint("src/foo/a.cpp", "std::mutex mu;\n")
        self.assertEqual(self.rules_of(findings), ["raw-mutex"])

    def test_condition_variable_and_lock_guard_are_flagged(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "std::condition_variable cv;\nstd::lock_guard<std::mutex> l(m);\n")
        self.assertEqual(len(findings), 2)  # one finding per offending line

    def test_sync_hpp_itself_is_exempt(self):
        findings = self.run_lint(
            "src/util/sync.hpp", "std::mutex mu_;\nstd::condition_variable_any cv_;\n")
        self.assertEqual(findings, [])

    def test_util_wrappers_pass(self):
        findings = self.run_lint(
            "src/foo/a.cpp", "util::Mutex mu;\nutil::MutexLock lock(mu);\n")
        self.assertEqual(findings, [])

    def test_mention_in_comment_or_string_passes(self):
        findings = self.run_lint(
            "src/foo/a.cpp", '// std::mutex is banned\nf("std::mutex");\n')
        self.assertEqual(findings, [])


class SolverInterfaceTest(LintFixture):
    def test_concrete_solver_outside_sat_is_flagged(self):
        findings = self.run_lint("src/timeprint/x.cpp", "sat::Solver s;\n")
        self.assertEqual(self.rules_of(findings), ["solver-interface-only"])

    def test_solver_header_include_outside_sat_is_flagged(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", '#include "sat/solver.hpp"\n')
        self.assertEqual(self.rules_of(findings), ["solver-interface-only"])

    def test_commented_out_include_passes(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", '// #include "sat/solver.hpp"\n')
        self.assertEqual(findings, [])

    def test_interface_names_pass(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp",
            "sat::SolverInterface* s;\nsat::SolverOptions o;\n"
            "sat::SolverFactory::make(o);\nsat::SolverStats st;\n")
        self.assertEqual(findings, [])

    def test_inside_sat_is_exempt(self):
        findings = self.run_lint("src/sat/x.cpp",
                                 '#include "sat/solver.hpp"\nsat::Solver s;\n')
        self.assertEqual(findings, [])


class PreprocessGatewayTest(LintFixture):
    def test_direct_preprocessing_solver_outside_sat_is_flagged(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", "sat::PreprocessingSolver s(b, o, p);\n")
        self.assertEqual(self.rules_of(findings), ["preprocess-gateway"])

    def test_direct_preprocessor_outside_sat_is_flagged(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", "sat::Preprocessor pre(cfg);\n")
        self.assertEqual(self.rules_of(findings), ["preprocess-gateway"])

    def test_preprocess_header_include_outside_sat_is_flagged(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", '#include "sat/preprocess.hpp"\n')
        self.assertEqual(self.rules_of(findings), ["preprocess-gateway"])

    def test_commented_out_include_passes(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp", '// #include "sat/preprocess.hpp"\n')
        self.assertEqual(findings, [])

    def test_factory_route_passes(self):
        findings = self.run_lint(
            "src/timeprint/x.cpp",
            "sat::SolverOptions o;\no.preprocess = true;\n"
            "auto s = sat::SolverFactory::make(b, o);\n"
            "sat::PreprocessStats ps;\n")
        self.assertEqual(findings, [])

    def test_inside_sat_is_exempt(self):
        findings = self.run_lint(
            "src/sat/x.cpp",
            '#include "sat/preprocess.hpp"\n'
            "sat::PreprocessingSolver s(b, o, p);\nPreprocessor pre(cfg);\n")
        self.assertEqual(findings, [])


class NolintReasonTest(LintFixture):
    def test_bare_nolint_is_flagged(self):
        findings = self.run_lint("src/foo/a.hpp", "int x;  // NOLINT\n")
        self.assertEqual(self.rules_of(findings), ["nolint-reason"])

    def test_named_nolint_without_reason_is_flagged(self):
        findings = self.run_lint(
            "src/foo/a.hpp", "int x;  // NOLINT(bugprone-foo)\n")
        self.assertEqual(self.rules_of(findings), ["nolint-reason"])

    def test_named_nolint_with_reason_passes(self):
        findings = self.run_lint(
            "src/foo/a.hpp",
            "int x;  // NOLINT(bugprone-foo): field aliases the arena\n")
        self.assertEqual(findings, [])

    def test_nolintbegin_needs_reason_end_does_not(self):
        text = ("// NOLINTBEGIN(google-explicit-constructor): implicit API\n"
                "Json(bool v);\n"
                "// NOLINTEND(google-explicit-constructor)\n")
        self.assertEqual(self.run_lint("src/foo/a.hpp", text), [])
        findings = self.run_lint(
            "src/foo/b.hpp", "// NOLINTBEGIN(google-explicit-constructor)\n")
        self.assertEqual(self.rules_of(findings), ["nolint-reason"])


class OptionsConstRefTest(LintFixture):
    def test_by_value_param_is_flagged(self):
        findings = self.run_lint(
            "src/foo/a.hpp", "void run(BatchOptions options);\n")
        self.assertEqual(self.rules_of(findings), ["options-const-ref"])

    def test_by_value_in_multiline_param_list_is_flagged(self):
        findings = self.run_lint(
            "src/foo/a.hpp",
            "void run(int entries,\n         sat::SolverOptions opts);\n")
        self.assertEqual(self.rules_of(findings), ["options-const-ref"])
        self.assertEqual(findings[0].line, 2)

    def test_const_ref_param_passes(self):
        findings = self.run_lint(
            "src/foo/a.hpp",
            "void run(const BatchOptions& options);\n"
            "void go(const sat::SolverOptions& o, int k);\n")
        self.assertEqual(findings, [])

    def test_local_declaration_and_member_field_pass(self):
        findings = self.run_lint(
            "src/foo/a.hpp",
            "struct BatchOptions {\n  ReconstructionOptions recon;\n};\n"
            "void f() {\n  SolverOptions o = base;\n}\n")
        self.assertEqual(findings, [])


class NakedNewTest(LintFixture):
    def test_naked_new_and_delete_are_flagged(self):
        findings = self.run_lint(
            "src/foo/a.cpp", "int* p = new int;\ndelete p;\n")
        self.assertEqual(self.rules_of(findings), ["naked-new", "naked-new"])

    def test_wrapped_clone_idiom_passes(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "return std::unique_ptr<SolverInterface>(new PortfolioSolver(*this));\n")
        self.assertEqual(findings, [])

    def test_deleted_function_passes(self):
        findings = self.run_lint(
            "src/foo/a.hpp",
            "ThreadPool(const ThreadPool&) = delete;\n"
            "ThreadPool& operator=(const ThreadPool&) = delete;\n")
        self.assertEqual(findings, [])

    def test_identifiers_containing_new_pass(self):
        findings = self.run_lint(
            "src/foo/a.cpp", "Var v = new_var();\nint renewed = 0;\n")
        self.assertEqual(findings, [])


class SuppressionTest(LintFixture):
    def test_trailing_marker_with_reason_suppresses(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "std::mutex mu;  // tp-lint: allow(raw-mutex) FFI boundary\n")
        self.assertEqual(findings, [])

    def test_comment_line_marker_suppresses_next_line(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "// tp-lint: allow(raw-mutex) FFI boundary\nstd::mutex mu;\n")
        self.assertEqual(findings, [])

    def test_marker_without_reason_is_a_finding(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "std::mutex mu;  // tp-lint: allow(raw-mutex)\n")
        self.assertIn("allow-requires-reason", self.rules_of(findings))
        self.assertIn("raw-mutex", self.rules_of(findings))

    def test_marker_with_unknown_rule_is_a_finding(self):
        findings = self.run_lint(
            "src/foo/a.cpp", "int x;  // tp-lint: allow(no-such-rule) why\n")
        self.assertEqual(self.rules_of(findings), ["allow-requires-reason"])

    def test_disable_flag_silences_rule(self):
        findings = self.run_lint("src/foo/a.cpp", "std::mutex mu;\n",
                                 disabled=["raw-mutex"])
        self.assertEqual(findings, [])

    def test_marker_does_not_leak_to_other_lines(self):
        findings = self.run_lint(
            "src/foo/a.cpp",
            "std::mutex a;  // tp-lint: allow(raw-mutex) shim\n"
            "std::mutex b;\n")
        self.assertEqual(self.rules_of(findings), ["raw-mutex"])
        self.assertEqual(findings[0].line, 2)


class ScanBuildCheckerTest(LintFixture):
    """tools/check_scan_build.py on a synthetic plist + baseline."""

    PLIST = {
        "files": ["/ci/workspace/repo/src/sat/solver.cpp"],
        "diagnostics": [{
            "check_name": "core.NullDereference",
            "description": "Dereference of null pointer",
            "location": {"line": 42, "col": 3, "file": 0},
        }],
    }

    def write_results(self):
        import plistlib
        results = self.root / "results"
        results.mkdir()
        with open(results / "report.plist", "wb") as fh:
            plistlib.dump(self.PLIST, fh)
        return results

    def write_baseline(self, findings):
        import json
        path = self.root / "baseline.json"
        path.write_text(json.dumps({"findings": findings}))
        return path

    def test_unbaselined_finding_fails(self):
        import check_scan_build
        results = self.write_results()
        baseline = self.write_baseline([])
        rc = check_scan_build.main([str(results), "--baseline", str(baseline)])
        self.assertEqual(rc, 1)

    def test_baselined_finding_passes_and_paths_are_normalized(self):
        import check_scan_build
        results = self.write_results()
        baseline = self.write_baseline([{
            "checker": "core.NullDereference",
            "file": "src/sat/solver.cpp",
            "description": "Dereference of null pointer",
            "why": "fixture",
        }])
        rc = check_scan_build.main([str(results), "--baseline", str(baseline)])
        self.assertEqual(rc, 0)

    def test_stale_baseline_entry_still_passes(self):
        import check_scan_build
        results = self.root / "empty"
        results.mkdir()
        baseline = self.write_baseline([{
            "checker": "deadcode.DeadStores",
            "file": "src/f2/matrix.cpp",
            "description": "gone",
            "why": "fixture",
        }])
        rc = check_scan_build.main([str(results), "--baseline", str(baseline)])
        self.assertEqual(rc, 0)

    def test_repo_baseline_is_well_formed(self):
        import check_scan_build
        repo_baseline = pathlib.Path(__file__).resolve().parent / \
            "scan_build_baseline.json"
        entries = check_scan_build.load_baseline(repo_baseline)
        self.assertIsInstance(entries, list)


if __name__ == "__main__":
    unittest.main()
