#!/usr/bin/env python3
"""Validate the machine-readable bench report schema.

Every bench binary accepts `--json <path>` and writes one object:

    {
      "bench": "<name>",                  # non-empty string
      "config": { ... },                  # object (may be empty)
      "rows": [ { ... }, ... ],           # list of objects
      "wall_seconds": 1.23,               # non-negative number
      "solver_stats": {                   # object with a source marker
        "source": "bench" | "global-metrics",
        "<counter>": <int >= 0>, ...
      }
    }

Usage: check_bench_json.py report.json [report2.json ...]
Exits non-zero with a per-file message on the first violation.
No third-party dependencies — CI runs it with a stock python3.
"""

import json
import numbers
import sys


class SchemaError(Exception):
    pass


def check_report(data):
    if not isinstance(data, dict):
        raise SchemaError("top level is not an object")

    required = {"bench", "config", "rows", "wall_seconds", "solver_stats"}
    missing = required - data.keys()
    if missing:
        raise SchemaError(f"missing keys: {sorted(missing)}")

    if not isinstance(data["bench"], str) or not data["bench"]:
        raise SchemaError("'bench' must be a non-empty string")

    if not isinstance(data["config"], dict):
        raise SchemaError("'config' must be an object")

    if not isinstance(data["rows"], list):
        raise SchemaError("'rows' must be a list")
    for i, row in enumerate(data["rows"]):
        if not isinstance(row, dict):
            raise SchemaError(f"rows[{i}] is not an object")
        if not row:
            raise SchemaError(f"rows[{i}] is empty")

    wall = data["wall_seconds"]
    if not isinstance(wall, numbers.Real) or isinstance(wall, bool):
        raise SchemaError("'wall_seconds' must be a number")
    if wall < 0:
        raise SchemaError(f"'wall_seconds' is negative: {wall}")

    stats = data["solver_stats"]
    if not isinstance(stats, dict):
        raise SchemaError("'solver_stats' must be an object")
    source = stats.get("source")
    if source not in ("bench", "global-metrics"):
        raise SchemaError(f"solver_stats.source is {source!r}, expected "
                          "'bench' or 'global-metrics'")
    for key, value in stats.items():
        if key == "source":
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(f"solver_stats[{key!r}] is not an integer")
        if value < 0:
            raise SchemaError(f"solver_stats[{key!r}] is negative: {value}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            check_report(data)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
            continue
        print(f"{path}: OK ({data['bench']}, {len(data['rows'])} rows, "
              f"stats from {data['solver_stats']['source']})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
