#!/usr/bin/env python3
"""Validate the machine-readable bench report schema and diff baselines.

Every bench binary accepts `--json <path>` and writes one object:

    {
      "bench": "<name>",                  # non-empty string
      "config": { ... },                  # object (may be empty)
      "rows": [ { ... }, ... ],           # list of objects
      "wall_seconds": 1.23,               # non-negative number
      "solver_stats": {                   # object with a source marker
        "source": "bench" | "global-metrics",
        "<stat>": <number >= 0>, ...
      }
    }

Usage:
    check_bench_json.py report.json [report2.json ...]
    check_bench_json.py --baseline BASE.json [--min-ratio R] report.json

Plain mode validates each report against the schema above.

Baseline mode additionally diffs one report against a committed baseline
report (e.g. BENCH_solver.json). Rows are matched by their "config" value;
for each matched pair the checks are:

  * "fingerprint", when present in the baseline row, must be identical —
    a throughput win that changes answers is a bug, not a win;
  * "props_per_sec" and "entries_per_sec", when present in both rows,
    must be at least --min-ratio times the baseline value (default 0.85,
    i.e. tolerate 15% machine noise but fail on real regressions). The
    ratio gate is skipped — fingerprint and coverage checks are not —
    when the report's config carries "underprovisioned": true (the bench
    detected fewer cores than its parallelism needs, so its throughput
    says nothing about the code).

Rows present only in the baseline fail the check (a silently dropped
config is a regression in coverage); rows present only in the current
report are reported but pass (new configs are fine).

Baseline mode also compares the solver backend identity: the report's
"config.backend" / "config.members" / "config.preprocess" (absent =
"single" / 1 / "off", the values every report implied before the
portfolio backend and the CNF preprocessing front-end existed) must equal
the baseline's, so a portfolio run — or a run whose preprocess axis
differs — can never silently pollute a baseline diff; the numbers are
not comparable across backends or front-end modes.

When a report carries preprocessed twin rows ("<name>_pre" next to
"<name>", the --preprocess both mode of bench_solver and
bench_incremental), baseline mode also prints the front-end gain per
pair — the conflict reduction and the seconds speedup of the _pre row
over its raw sibling — and fails if a _pre row's fingerprint differs
from its raw sibling's (the front-end must change search effort, never
answers). For bench_incremental pairs the in-run warm-template ratio
(_pre template_entries_per_sec over the raw sibling's) is additionally
gated against the committed baseline's same ratio: machine speed cancels
out of the ratio, so a collapse there means the preprocess-once template
path itself regressed. The underprovisioned flag skips this gate like
every other throughput gate. Any row that records
"identical_signal_sets": false fails schema validation outright.

Exits non-zero with a per-file message on the first violation.
No third-party dependencies — CI runs it with a stock python3.
"""

import argparse
import json
import math
import numbers
import sys


class SchemaError(Exception):
    pass


class BaselineError(Exception):
    pass


def check_report(data):
    if not isinstance(data, dict):
        raise SchemaError("top level is not an object")

    required = {"bench", "config", "rows", "wall_seconds", "solver_stats"}
    missing = required - data.keys()
    if missing:
        raise SchemaError(f"missing keys: {sorted(missing)}")

    if not isinstance(data["bench"], str) or not data["bench"]:
        raise SchemaError("'bench' must be a non-empty string")

    if not isinstance(data["config"], dict):
        raise SchemaError("'config' must be an object")

    if not isinstance(data["rows"], list):
        raise SchemaError("'rows' must be a list")
    for i, row in enumerate(data["rows"]):
        if not isinstance(row, dict):
            raise SchemaError(f"rows[{i}] is not an object")
        if not row:
            raise SchemaError(f"rows[{i}] is empty")
        # Benches that differentially check answers (bench_incremental)
        # record the verdict per row; a false verdict is a correctness
        # bug no throughput number can excuse.
        if row.get("identical_signal_sets") is False:
            raise SchemaError(
                f"rows[{i}] ({row_key(row, i)!r}): identical_signal_sets "
                "is false — the compared paths reconstructed different "
                "signal sets")

    wall = data["wall_seconds"]
    if not isinstance(wall, numbers.Real) or isinstance(wall, bool):
        raise SchemaError("'wall_seconds' must be a number")
    if wall < 0:
        raise SchemaError(f"'wall_seconds' is negative: {wall}")

    stats = data["solver_stats"]
    if not isinstance(stats, dict):
        raise SchemaError("'solver_stats' must be an object")
    source = stats.get("source")
    if source not in ("bench", "global-metrics"):
        raise SchemaError(f"solver_stats.source is {source!r}, expected "
                          "'bench' or 'global-metrics'")
    for key, value in stats.items():
        if key == "source":
            continue
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise SchemaError(f"solver_stats[{key!r}] is not a number")
        if not math.isfinite(value) or value < 0:
            raise SchemaError(f"solver_stats[{key!r}] is not a finite "
                              f"non-negative number: {value}")


def row_key(row, index):
    key = row.get("config")
    if isinstance(key, str) and key:
        return key
    return f"<row {index}>"


def backend_identity(report):
    """(backend, members, preprocess) of a report; absent keys mean the
    single solver with the front-end off — what every report implied
    before those axes existed."""
    config = report.get("config", {})
    return (config.get("backend", "single"), config.get("members", 1),
            config.get("preprocess", "off"))


def front_end_gain_lines(rows):
    """Per ("<name>", "<name>_pre") pair: conflict delta and speedup.

    Raises BaselineError when a _pre row's fingerprint differs from its
    raw sibling's — the front-end may only change search effort.
    """
    lines = []
    for key in sorted(rows):
        if not key.endswith("_pre"):
            continue
        raw = rows.get(key[:-len("_pre")])
        pre = rows[key]
        if raw is None:
            continue
        raw_fp = raw.get("fingerprint")
        if raw_fp is not None and pre.get("fingerprint") != raw_fp:
            raise BaselineError(
                f"row {key!r}: fingerprint {pre.get('fingerprint')!r} != "
                f"raw sibling {raw_fp!r} (the front-end changed answers)")
        parts = []
        rc, pc = raw.get("conflicts"), pre.get("conflicts")
        if isinstance(rc, numbers.Real) and isinstance(pc, numbers.Real) and rc:
            parts.append(f"conflicts {rc:,.0f} -> {pc:,.0f} "
                         f"({(1 - pc / rc) * 100:+.0f}% saved)")
        rs, ps = raw.get("seconds"), pre.get("seconds")
        if isinstance(rs, numbers.Real) and isinstance(ps, numbers.Real) and ps:
            parts.append(f"speedup x{rs / ps:.2f}")
        ratio = template_pre_ratio(raw, pre)
        if ratio is not None:
            parts.append(f"template entries/sec x{ratio:.2f}")
        if parts:
            lines.append(f"  front-end {key[:-len('_pre')]}: "
                         + ", ".join(parts))
    return lines


def template_pre_ratio(raw, pre):
    """Preprocessed-template throughput over the raw template's, for a
    ("<name>", "<name>_pre") bench_incremental row pair. None when either
    row lacks the rate (e.g. bench_solver pairs)."""
    raw_eps = raw.get("template_entries_per_sec")
    pre_eps = pre.get("template_entries_per_sec")
    if not isinstance(raw_eps, numbers.Real) or not raw_eps:
        return None
    if not isinstance(pre_eps, numbers.Real):
        return None
    return pre_eps / raw_eps


def check_baseline(base, current, min_ratio):
    if backend_identity(base) != backend_identity(current):
        raise BaselineError(
            f"identity mismatch: report ran {backend_identity(current)} but "
            f"baseline is {backend_identity(base)} — numbers are not "
            "comparable across backends or preprocess modes")

    base_rows = {row_key(r, i): r for i, r in enumerate(base["rows"])}
    cur_rows = {row_key(r, i): r for i, r in enumerate(current["rows"])}

    missing = sorted(base_rows.keys() - cur_rows.keys())
    if missing:
        raise BaselineError(f"baseline rows missing from report: {missing}")

    skip_ratio = bool(current.get("config", {}).get("underprovisioned"))
    lines = []
    if skip_ratio:
        lines.append("  report is underprovisioned (fewer cores than the "
                     "bench's parallelism): ratio gate skipped")
    for key in sorted(base_rows):
        b, c = base_rows[key], cur_rows[key]

        base_fp = b.get("fingerprint")
        if base_fp is not None and c.get("fingerprint") != base_fp:
            raise BaselineError(
                f"row {key!r}: fingerprint {c.get('fingerprint')!r} != "
                f"baseline {base_fp!r} (answers changed)")

        for field in ("props_per_sec", "entries_per_sec"):
            base_rate = b.get(field)
            cur_rate = c.get(field)
            if not base_rate or not isinstance(cur_rate, numbers.Real):
                continue
            ratio = cur_rate / base_rate
            lines.append(f"  {key}: {base_rate:,.0f} -> {cur_rate:,.0f} "
                         f"{field} (x{ratio:.2f})")
            if skip_ratio:
                continue
            if ratio < min_ratio:
                raise BaselineError(
                    f"row {key!r}: {field} regressed to "
                    f"{ratio:.2f}x of baseline (< {min_ratio:.2f}x): "
                    f"{base_rate:,.0f} -> {cur_rate:,.0f}")

    # Warm-template front-end gate: for every committed ("<name>",
    # "<name>_pre") pair, the preprocessed template's throughput advantage
    # over the raw template (template_entries_per_sec ratio) must not
    # collapse relative to the committed baseline's. The ratio is taken
    # within one run, so it is robust to machine speed; min_ratio supplies
    # the same noise allowance as the absolute gates.
    for key in sorted(base_rows):
        if not key.endswith("_pre"):
            continue
        raw_key = key[:-len("_pre")]
        if raw_key not in base_rows or raw_key not in cur_rows:
            continue
        base_ratio = template_pre_ratio(base_rows[raw_key], base_rows[key])
        cur_ratio = template_pre_ratio(cur_rows[raw_key], cur_rows[key])
        if base_ratio is None or cur_ratio is None:
            continue
        lines.append(f"  {raw_key}: template+preprocess ratio "
                     f"x{base_ratio:.2f} -> x{cur_ratio:.2f}")
        if skip_ratio:
            continue
        if cur_ratio < min_ratio * base_ratio:
            raise BaselineError(
                f"row {key!r}: template+preprocess ratio regressed to "
                f"x{cur_ratio:.2f} vs baseline x{base_ratio:.2f} "
                f"(< {min_ratio:.2f} of baseline) — the warm-template "
                "front-end payoff collapsed")

    extra = sorted(cur_rows.keys() - base_rows.keys())
    if extra:
        lines.append(f"  new rows (not in baseline): {extra}")
    lines.extend(front_end_gain_lines(cur_rows))
    return lines


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate bench JSON reports; optionally diff a "
                    "baseline.", add_help=True)
    parser.add_argument("reports", nargs="+", metavar="report.json")
    parser.add_argument("--baseline", metavar="BASE.json",
                        help="committed baseline report to diff against")
    parser.add_argument("--min-ratio", type=float, default=0.85,
                        help="minimum allowed props_per_sec ratio vs the "
                             "baseline (default: %(default)s)")
    args = parser.parse_args(argv[1:])

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            check_report(baseline)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"{args.baseline}: FAIL: {err}", file=sys.stderr)
            return 1

    failed = False
    for path in args.reports:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            check_report(data)
            diff_lines = None
            if baseline is not None:
                diff_lines = check_baseline(baseline, data, args.min_ratio)
        except (OSError, json.JSONDecodeError, SchemaError,
                BaselineError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
            continue
        print(f"{path}: OK ({data['bench']}, {len(data['rows'])} rows, "
              f"stats from {data['solver_stats']['source']})")
        if diff_lines:
            print(f"  vs baseline {args.baseline} "
                  f"(min ratio {args.min_ratio:.2f}):")
            print("\n".join(diff_lines))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
