#!/usr/bin/env python3
"""Diff Clang Static Analyzer (scan-build) results against a baseline.

The CI `scan-build` job runs the analyzer over src/ with plist output and
then calls

    tools/check_scan_build.py <results-dir> \
        --baseline tools/scan_build_baseline.json

A finding is identified by (checker, file, description) — deliberately
not by line number, which drifts with every edit. Findings present in the
results but not in the baseline fail the job (exit 1): either fix the
code or, for a deliberate false positive, add the finding to the baseline
in the same PR that introduces it, with a `why` string. Baseline entries
that no longer occur are reported as stale (exit 0) so the baseline
shrinks back over time instead of fossilizing.

File paths are normalized to their `src/...` suffix so the baseline is
independent of checkout and build directories.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import plistlib
import sys
from typing import List, Tuple

Finding = Tuple[str, str, str]  # (checker, file, description)


def normalize_path(path: str) -> str:
    """Reduce an absolute source path to its repo-relative src/ suffix."""
    parts = pathlib.PurePosixPath(path.replace("\\", "/")).parts
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        return "/".join(parts[idx:])
    return parts[-1] if parts else path


def findings_from_plist(path: pathlib.Path) -> List[Finding]:
    with open(path, "rb") as fh:
        data = plistlib.load(fh)
    files = data.get("files", [])
    out = []
    for diag in data.get("diagnostics", []):
        checker = diag.get("check_name") or diag.get("type", "unknown")
        desc = diag.get("description", "")
        loc = diag.get("location", {})
        file_idx = loc.get("file", -1)
        fname = files[file_idx] if 0 <= file_idx < len(files) else "unknown"
        out.append((checker, normalize_path(fname), desc))
    return out


def collect_findings(results_dir: pathlib.Path) -> List[Finding]:
    out: List[Finding] = []
    for plist in sorted(results_dir.rglob("*.plist")):
        out.extend(findings_from_plist(plist))
    return out


def load_baseline(path: pathlib.Path) -> List[dict]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("findings", [])
    for e in entries:
        for key in ("checker", "file", "description", "why"):
            if key not in e:
                raise SystemExit(
                    f"{path}: baseline entry missing '{key}': {e}")
    return entries


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=pathlib.Path,
                        help="scan-build plist output directory")
    parser.add_argument("--baseline", type=pathlib.Path, required=True)
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    suppressed = {(e["checker"], e["file"], e["description"])
                  for e in baseline}
    found = collect_findings(args.results)

    fresh = [f for f in found if f not in suppressed]
    stale = sorted(suppressed - set(found))

    for checker, fname, desc in fresh:
        print(f"NEW  {fname}: [{checker}] {desc}")
    for checker, fname, desc in stale:
        print(f"STALE baseline entry (fix landed? prune it): "
              f"{fname}: [{checker}] {desc}")

    print(f"scan-build: {len(found)} finding(s), {len(fresh)} new, "
          f"{len(suppressed) - len(stale)} baselined, {len(stale)} stale")
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
