#include "obs/trace.hpp"

#include <atomic>
#include <stdexcept>

namespace tp::obs {

namespace {

// Dense per-process thread numbering: the first thread that traces gets 0,
// the next 1, ... Stable for the lifetime of the process, cheap to read
// (one thread_local load after the first use).
std::atomic<int> g_next_thread{0};
thread_local int t_thread_number = -1;

int current_thread_number() {
  if (t_thread_number < 0) {
    t_thread_number = g_next_thread.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_number;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer::Tracer(std::ostream& out) : Tracer() {
  sink_.store(&out, std::memory_order_release);
}

Tracer::~Tracer() = default;

void Tracer::open(const std::string& path) {
  util::MutexLock lock(mu_);
  file_.open(path, std::ios::out | std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("Tracer::open: cannot open '" + path + "'");
  }
  sink_.store(&file_, std::memory_order_release);
}

double Tracer::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::thread_number() { return current_thread_number(); }

void Tracer::write_line(std::string_view kind, std::string_view name, double ts,
                        double dur, bool has_dur,
                        const std::vector<std::pair<std::string, Json>>& fields) {
  // Format outside the lock; the critical section is one stream write.
  std::string line;
  line.reserve(96 + 24 * fields.size());
  line += "{\"ts\":";
  Json(ts).dump(line);
  line += ",\"tid\":";
  line += std::to_string(thread_number());
  line += ",\"kind\":\"";
  json_escape(kind, line);
  line += "\",\"name\":\"";
  json_escape(name, line);
  line += '"';
  if (has_dur) {
    line += ",\"dur\":";
    Json(dur).dump(line);
  }
  for (const auto& [key, value] : fields) {
    line += ",\"";
    json_escape(key, line);
    line += "\":";
    value.dump(line);
  }
  line += "}\n";

  util::MutexLock lock(mu_);
  std::ostream* const sink = sink_.load(std::memory_order_relaxed);
  if (sink == nullptr) return;  // sink detached after the producer checked
  sink->write(line.data(), static_cast<std::streamsize>(line.size()));
  sink->flush();
}

void Tracer::event(std::string_view name, std::initializer_list<Field> fields) {
  if (!enabled()) return;
  std::vector<std::pair<std::string, Json>> fs;
  fs.reserve(fields.size());
  for (const Field& f : fields) fs.emplace_back(std::string(f.key), f.value);
  write_line("event", name, elapsed(), 0.0, /*has_dur=*/false, fs);
}

Tracer::Span::Span(Tracer* tracer, std::string_view name,
                   std::initializer_list<Field> fields)
    : tracer_(tracer), name_(name), start_(tracer->elapsed()) {
  fields_.reserve(fields.size() + 4);
  for (const Field& f : fields) fields_.emplace_back(std::string(f.key), f.value);
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->write_line("span", name_, start_, t->elapsed() - start_, /*has_dur=*/true,
                fields_);
  fields_.clear();
}

Tracer::Span Tracer::span(std::string_view name,
                          std::initializer_list<Field> fields) {
  if (!enabled()) return {};
  return Span(this, name, fields);
}

}  // namespace tp::obs
