#pragma once
// json.hpp — a minimal owned JSON value and serializer.
//
// The observability layer speaks one wire format: JSON objects, either one
// per line (the tracer's JSONL event stream) or one per file (the bench
// --json reports, the metrics snapshot). This header provides the small
// value type both producers share. It is write-only by design — nothing in
// the repo parses JSON at runtime — and deliberately tiny: ordered object
// members (stable, diffable output), no DOM queries, no allocator games.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tp::obs {

/// Append `s` to `out` with JSON string escaping (quotes not included).
inline void json_escape(std::string_view s, std::string& out) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

/// An owned JSON value: null, bool, integer, double, string, array or
/// object (with insertion-ordered members).
class Json {
 public:
  Json() : kind_(Kind::Null) {}
  // The converting constructors are implicit by design: tracer fields are
  // written as literals ({"k", entry.k}), which an `explicit` would break.
  // NOLINTBEGIN(google-explicit-constructor): implicit conversion is the API
  Json(bool v) : kind_(Kind::Bool), bool_(v) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(std::string v) : kind_(Kind::String), str_(std::move(v)) {}
  Json(std::string_view v) : Json(std::string(v)) {}
  Json(const char* v) : Json(std::string(v)) {}
  // NOLINTEND(google-explicit-constructor)

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  /// Object member append (keeps insertion order). Returns *this.
  Json& set(std::string key, Json value) {
    assert(kind_ == Kind::Object);
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Array element append. Returns *this.
  Json& push(Json value) {
    assert(kind_ == Kind::Array);
    elements_.push_back(std::move(value));
    return *this;
  }

  void dump(std::string& out) const {
    switch (kind_) {
      case Kind::Null: out += "null"; return;
      case Kind::Bool: out += bool_ ? "true" : "false"; return;
      case Kind::Int: out += std::to_string(int_); return;
      case Kind::Uint: out += std::to_string(uint_); return;
      case Kind::Double: {
        if (!std::isfinite(double_)) {  // JSON has no NaN/Inf
          out += "null";
          return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", double_);
        out += buf;
        return;
      }
      case Kind::String:
        out += '"';
        json_escape(str_, out);
        out += '"';
        return;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json& e : elements_) {
          if (!first) out += ',';
          first = false;
          e.dump(out);
        }
        out += ']';
        return;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : members_) {
          if (!first) out += ',';
          first = false;
          out += '"';
          json_escape(k, out);
          out += "\":";
          v.dump(out);
        }
        out += '}';
        return;
      }
    }
  }

  std::string dump() const {
    std::string out;
    dump(out);
    return out;
  }

 private:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tp::obs
