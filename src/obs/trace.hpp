#pragma once
// trace.hpp — a thread-safe JSONL event tracer with scoped spans.
//
// The tracer answers the question the paper's evaluation keeps asking:
// *where does solver time go?* Producers hold a `Tracer*` that is null by
// default; every instrumentation site is a single pointer test when tracing
// is off, so the hot path (CDCL inner loop, enumeration loop) pays nothing
// measurable. When a sink is attached, each event or completed span becomes
// one self-contained JSON object per line:
//
//   {"ts":0.000124,"tid":1,"kind":"event","name":"solver.restart","restarts":3}
//   {"ts":0.000098,"tid":1,"kind":"span","name":"sr.encode","dur":2.1e-05,...}
//
// `ts` is seconds since the tracer was constructed, `tid` a small dense
// per-process thread number (stable within a run, meaningless across runs).
// Spans are emitted at *close* with their start timestamp and duration, so
// a consumer sorts by `ts` to recover the timeline. Lines are written
// atomically under one mutex; producers format into a local buffer first,
// keeping the critical section to a single stream write.

#include <atomic>
#include <chrono>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/sync.hpp"

namespace tp::obs {

/// One key/value of an event or span. The value is any JSON scalar (the
/// Json converting constructors make call sites read like literals:
/// `{"k", entry.k}`, `{"status", "sat"}`).
struct Field {
  std::string_view key;
  Json value;
};

/// JSONL event tracer. See the file comment for the line format. All
/// methods are thread-safe; the object must outlive every producer holding
/// a pointer to it.
class Tracer {
 public:
  /// A tracer with no sink: enabled() is false, every emit is a no-op.
  Tracer();

  /// Trace into `out`, which must outlive the tracer (e.g. a test's
  /// ostringstream or std::cout).
  explicit Tracer(std::ostream& out);

  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open `path` for writing and trace into it. Throws std::runtime_error
  /// if the file cannot be opened. Replaces any previous sink.
  void open(const std::string& path);

  /// True iff a sink is attached. Producers gate every emission on this
  /// (or on the pointer itself being non-null). Lock-free: the sink
  /// pointer is atomic precisely so this hot-path test never contends
  /// with writers (mutation still happens under the line mutex).
  bool enabled() const {
    return sink_.load(std::memory_order_acquire) != nullptr;
  }

  /// Seconds since construction (the `ts` clock).
  double elapsed() const;

  /// Emit one instantaneous event line.
  void event(std::string_view name, std::initializer_list<Field> fields = {});

  /// A scoped span: remembers its start time at creation and emits one
  /// "kind":"span" line with `dur` when finished (or destroyed). A
  /// default-constructed Span is inert — the pattern for disabled tracing:
  ///
  ///   obs::Tracer::Span span;                  // no-op unless armed
  ///   if (tracer) span = tracer->span("sr.reconstruct", {{"k", k}});
  ///   ...
  ///   span.add("status", "sat");               // fields attached at close
  class Span {
   public:
    Span() = default;
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept {
      finish();
      tracer_ = o.tracer_;
      o.tracer_ = nullptr;
      name_ = std::move(o.name_);
      start_ = o.start_;
      fields_ = std::move(o.fields_);
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// True iff this span is armed and will emit a line on finish().
    bool active() const { return tracer_ != nullptr; }

    /// Attach a field reported when the span closes.
    void add(std::string_view key, Json value) {
      if (tracer_ != nullptr) fields_.emplace_back(std::string(key), std::move(value));
    }

    /// Emit the span line now (idempotent).
    void finish();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string_view name,
         std::initializer_list<Field> fields);

    Tracer* tracer_ = nullptr;
    std::string name_;
    double start_ = 0.0;
    std::vector<std::pair<std::string, Json>> fields_;
  };

  /// Start a span. Returns an inert span when disabled.
  Span span(std::string_view name, std::initializer_list<Field> fields = {});

 private:
  void write_line(std::string_view kind, std::string_view name, double ts,
                  double dur, bool has_dur,
                  const std::vector<std::pair<std::string, Json>>& fields);
  /// Small dense id of the calling thread, assigned on first use.
  int thread_number();

  std::chrono::steady_clock::time_point epoch_;
  /// Serializes line emission and sink replacement (LockRank::kObs — the
  /// leaf of the lock hierarchy; see util/sync.hpp).
  mutable util::Mutex mu_{util::LockRank::kObs};
  /// Current sink, or null when disabled. Atomic so the enabled() fast
  /// path is race-free against open(); stores happen only under `mu_`,
  /// and the stream itself is only written under `mu_`.
  std::atomic<std::ostream*> sink_{nullptr};
  std::ofstream file_ TP_GUARDED_BY(mu_);
};

}  // namespace tp::obs
