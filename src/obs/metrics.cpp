#include "obs/metrics.hpp"

#include <stdexcept>

namespace tp::obs {

void Timing::observe(double seconds) {
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; emulate with a CAS loop to stay
  // friendly to toolchains without native FP atomics.
  double cur = total_.load(std::memory_order_relaxed);
  while (!total_.compare_exchange_weak(cur, cur + seconds,
                                       std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // First observation seeds min/max. Racy first observers both land here;
    // the CAS loops below converge to the true extrema regardless.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, seconds, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, seconds, std::memory_order_relaxed);
  }
  double mn = min_.load(std::memory_order_relaxed);
  while (seconds < mn &&
         !min_.compare_exchange_weak(mn, seconds, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (seconds > mx &&
         !max_.compare_exchange_weak(mx, seconds, std::memory_order_relaxed)) {
  }
}

double Timing::min_seconds() const { return min_.load(std::memory_order_relaxed); }
double Timing::max_seconds() const { return max_.load(std::memory_order_relaxed); }

void Timing::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.counter = std::make_unique<Counter>();
  }
  if (it->second.counter == nullptr) {
    throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                           "' is not a counter");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.gauge = std::make_unique<Gauge>();
  }
  if (it->second.gauge == nullptr) {
    throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                           "' is not a gauge");
  }
  return *it->second.gauge;
}

Timing& MetricsRegistry::timing(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.timing = std::make_unique<Timing>();
  }
  if (it->second.timing == nullptr) {
    throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                           "' is not a timing");
  }
  return *it->second.timing;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  util::MutexLock lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  util::MutexLock lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.gauge == nullptr) return 0;
  return it->second.gauge->value();
}

Json MetricsRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  Json out = Json::object();
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      out.set(name, entry.counter->value());
    } else if (entry.gauge != nullptr) {
      out.set(name, entry.gauge->value());
    } else {
      Json t = Json::object();
      t.set("count", entry.timing->count());
      t.set("total_seconds", entry.timing->total_seconds());
      t.set("min_seconds", entry.timing->min_seconds());
      t.set("max_seconds", entry.timing->max_seconds());
      out.set(name, std::move(t));
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->reset();
    if (entry.gauge != nullptr) entry.gauge->reset();
    if (entry.timing != nullptr) entry.timing->reset();
  }
}

}  // namespace tp::obs
