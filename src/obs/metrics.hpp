#pragma once
// metrics.hpp — a process-wide registry of named monotonic counters and
// timing accumulators.
//
// Where the tracer (trace.hpp) answers "what happened when", the registry
// answers "how much, in total": solves run, conflicts burned, models
// enumerated, reconstructions finished. Producers resolve a metric once
// (registration takes a mutex) and then update it lock-free — a Counter is
// one relaxed atomic add, a Timing two adds and two CAS min/max updates —
// so instrumentation stays cheap enough to be always-on. Updates happen at
// coarse boundaries (per solve, per reconstruction), never per conflict.
//
// The global() registry is what the bench --json reports and the metrics
// snapshot serialize; tests may construct private registries.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "util/sync.hpp"

namespace tp::obs {

/// A monotonically increasing counter. add() is lock-free.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A last-value gauge for levels that move both ways (bytes of a clause
/// arena currently live, workers currently busy). set() is lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// An accumulator of durations: count, total, min and max seconds.
/// observe() is lock-free.
class Timing {
 public:
  void observe(double seconds);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const { return total_.load(std::memory_order_relaxed); }
  /// 0 when nothing was observed yet.
  double min_seconds() const;
  double max_seconds() const;
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> total_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Thread-safe name -> metric registry. Metric objects live as long as the
/// registry; the references returned by counter()/timing() stay valid.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& global();

  /// Find-or-create. A name has exactly one kind — counter, gauge or
  /// timing (throws std::logic_error on a kind clash).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timing& timing(std::string_view name);

  /// Current counter value, 0 if the name was never registered.
  std::int64_t counter_value(std::string_view name) const;

  /// Current gauge value, 0 if the name was never registered.
  std::int64_t gauge_value(std::string_view name) const;

  /// Snapshot of every metric as one JSON object: counters and gauges
  /// serialize to their value, timings to {count, total_seconds,
  /// min_seconds, max_seconds}. Keys are sorted (std::map order) for
  /// stable output.
  Json snapshot() const;
  std::string to_json() const { return snapshot().dump(); }

  /// Zero every registered metric (tests and bench warm-up isolation).
  void reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timing> timing;
  };

  /// Guards registration and iteration only — the metric objects behind
  /// the map update lock-free (LockRank::kObs, the lock-hierarchy leaf).
  mutable util::Mutex mu_{util::LockRank::kObs};
  std::map<std::string, Entry, std::less<>> entries_ TP_GUARDED_BY(mu_);
};

}  // namespace tp::obs
