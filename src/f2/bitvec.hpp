#pragma once
// bitvec.hpp — fixed-size bit vectors over F2 (the two-element field).
//
// A BitVec models an element of F2^n: addition is bitwise XOR, scalar
// multiplication is trivial. BitVec is the basic datatype of the whole
// library: timestamps TS(i), timeprints TP, signals, and matrix rows are
// all BitVecs. Bit 0 is the least-significant bit; to_string() prints
// MSB-first so that the printed form matches the paper's figures.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace tp::f2 {

/// Deterministic 64-bit PRNG (splitmix64). Used everywhere randomness is
/// needed so that experiments are reproducible from a seed.
class Rng {
 public:
  /// Construct with an explicit seed; the same seed always yields the same
  /// stream on every platform.
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Fair coin flip.
  bool flip() { return (next() >> 63) != 0; }

 private:
  std::uint64_t state_;
};

/// A fixed-dimension vector over F2, packed 64 bits per word.
///
/// The dimension is set at construction and never changes; all binary
/// operations require equal dimensions (checked with assertions).
class BitVec {
 public:
  /// Zero vector of dimension n (n may be 0).
  explicit BitVec(std::size_t n = 0);

  /// Vector of dimension n whose low 64 bits are `value` (bit i of `value`
  /// becomes coordinate i). Bits at positions >= n must be zero in `value`
  /// when n < 64.
  static BitVec from_uint(std::size_t n, std::uint64_t value);

  /// Parse an MSB-first string of '0'/'1' characters, e.g. "00010100".
  /// The string length gives the dimension.
  static BitVec from_string(std::string_view bits);

  /// Uniformly random vector of dimension n.
  static BitVec random(std::size_t n, Rng& rng);

  /// One-hot vector of dimension n with coordinate `pos` set.
  static BitVec unit(std::size_t n, std::size_t pos);

  /// Dimension of the vector.
  std::size_t size() const { return size_; }

  /// Read coordinate i (0-based, i < size()).
  bool get(std::size_t i) const;

  /// Write coordinate i.
  void set(std::size_t i, bool value);

  /// Toggle coordinate i.
  void flip(std::size_t i);

  /// True iff every coordinate is 0.
  bool is_zero() const;

  /// Number of coordinates set to 1 (Hamming weight).
  std::size_t popcount() const;

  /// Index of the highest set coordinate; size() if the vector is zero.
  std::size_t highest_set() const;

  /// Index of the lowest set coordinate; size() if the vector is zero.
  std::size_t lowest_set() const;

  /// In-place vector addition over F2 (bitwise XOR).
  BitVec& operator^=(const BitVec& other);

  /// Vector addition over F2.
  friend BitVec operator^(BitVec a, const BitVec& b) {
    a ^= b;
    return a;
  }

  /// Coordinate-wise AND (useful for masking).
  BitVec& operator&=(const BitVec& other);

  /// Clear every coordinate that is set in `other` (this &= ~other).
  BitVec& and_not(const BitVec& other);

  /// Interpret the vector as an unsigned integer and add 1 (mod 2^n).
  /// Used by the incremental (lexicographic greedy) timestamp encoding.
  void increment();

  /// Equality of dimension and all coordinates.
  bool operator==(const BitVec& other) const = default;

  /// Lexicographic order treating the vector as an integer (coordinate 0 is
  /// the least significant bit). Vectors of different dimensions compare by
  /// dimension first.
  std::strong_ordering operator<=>(const BitVec& other) const;

  /// MSB-first textual form, e.g. "00010100" (matches the paper's Figure 4).
  std::string to_string() const;

  /// The low min(size, 64) coordinates as an integer.
  std::uint64_t to_uint() const;

  /// FNV-style hash of the content (for hash sets of vectors).
  std::size_t hash() const;

  /// Dot product over F2: parity of the AND of the two vectors.
  bool dot(const BitVec& other) const;

  /// Raw word storage (read-only), 64 coordinates per word, LSB-first.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Number of 64-bit storage words (== ceil(size() / 64)).
  std::size_t num_words() const { return words_.size(); }

  /// Word i of the packed storage (i < num_words()).
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  /// Copy of this vector with dimension n: coordinates < min(size, n) are
  /// preserved, new coordinates are zero, excess coordinates are dropped.
  /// Word-level copy — used by the elimination kernels to widen rows into
  /// augmented form without a per-bit loop.
  BitVec resized(std::size_t n) const;

 private:
  void clear_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tp::f2

template <>
struct std::hash<tp::f2::BitVec> {
  std::size_t operator()(const tp::f2::BitVec& v) const { return v.hash(); }
};
