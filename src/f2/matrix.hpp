#pragma once
// matrix.hpp — dense matrices and linear-system solving over F2.
//
// The reconstruction problem of the paper is, in linear-algebra form,
// "find all x in F2^m with A·x = TP and |x| = k" where the columns of A are
// the timestamps (paper §4.2). This module provides the plain linear
// algebra: rank, consistency, one particular solution and a null-space
// basis, which together describe the full (unweighted) solution set with
// 2^(m - rank) elements. The SAT layer adds the cardinality constraint.

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "f2/bitvec.hpp"

namespace tp::f2 {

namespace detail {

/// Row-reduce `rows` in place to reduced row-echelon form over columns
/// [0, col_limit); columns >= col_limit never become pivots but are
/// updated by every row operation, so an augmented RHS (or a transform
/// block [A | I]) can ride along inside the row words. Returns the pivot
/// columns in increasing order; pivot row i ends up at rows[i], and rows
/// without a pivot end up zero (over [0, col_limit)) at the back.
///
/// Blocked "method of four Russians" elimination: pivots are collected in
/// stripes of up to ~log2(rows) columns, a 2^s table of stripe-row
/// combinations is built with one whole-row XOR per entry, and each
/// remaining row is cleared across the whole stripe with s bit reads plus
/// a single table XOR instead of s row XORs.
std::vector<std::size_t> row_reduce(std::vector<BitVec>& rows,
                                    std::size_t col_limit);

}  // namespace detail

/// Result of solving a linear system A·x = b over F2.
struct LinearSolution {
  /// One particular solution (any x with A·x = b).
  BitVec particular;
  /// Basis of the null space of A; the full solution set is
  /// { particular + sum of any subset of basis vectors }.
  std::vector<BitVec> nullspace;

  /// Number of solutions = 2^nullspace.size() (as long as it fits 64 bits).
  std::uint64_t count() const {
    return nullspace.size() >= 64 ? UINT64_MAX
                                  : (std::uint64_t{1} << nullspace.size());
  }
};

/// A rows × cols matrix over F2, stored row-major as BitVecs.
class Matrix {
 public:
  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build a matrix whose columns are the given vectors (all of equal
  /// dimension, which becomes the row count). This matches the paper's
  /// A = [TS(1) | ... | TS(m)].
  static Matrix from_columns(const std::vector<BitVec>& columns);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access.
  bool get(std::size_t r, std::size_t c) const { return data_[r].get(c); }
  void set(std::size_t r, std::size_t c, bool v) { data_[r].set(c, v); }

  /// Row access (rows are BitVecs of dimension cols()).
  const BitVec& row(std::size_t r) const { return data_[r]; }
  BitVec& row(std::size_t r) { return data_[r]; }

  /// Column c as a BitVec of dimension rows().
  BitVec column(std::size_t c) const;

  /// Matrix-vector product A·x (x has dimension cols(), result rows()).
  BitVec multiply(const BitVec& x) const;

  /// Rank via Gaussian elimination (does not modify *this).
  std::size_t rank() const;

  /// Solve A·x = b. Returns std::nullopt when inconsistent; otherwise a
  /// particular solution plus a null-space basis describing all solutions.
  std::optional<LinearSolution> solve(const BitVec& b) const;

  /// True iff the given set of vectors is linearly independent.
  static bool linearly_independent(const std::vector<BitVec>& vectors);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<BitVec> data_;
};

/// Incrementally maintained check that every subset of size <= depth of a
/// growing set of vectors stays linearly independent ("LI-d" in the paper,
/// §4.3). Supports depth 2..4. Equivalent characterisations used:
///   depth 1: no zero vector;
///   depth 2: all vectors distinct (and nonzero);
///   depth 3: v ∉ {a ^ b} for existing pairs;
///   depth 4: v ^ a ∉ {b ^ c}  (all pairwise XORs distinct).
/// The pairwise-XOR set makes the depth-4 check O(|S|) per candidate
/// instead of O(|S|^3).
class LiChecker {
 public:
  /// depth must be in [1, 4]; dim is the vector dimension b.
  LiChecker(std::size_t dim, std::size_t depth);

  /// True iff the current set plus `candidate` would still be LI-depth.
  bool can_add(const BitVec& candidate) const;

  /// Add a vector (precondition: can_add(v)).
  void add(const BitVec& v);

  /// Number of vectors added so far.
  std::size_t size() const { return members_.size(); }

  /// The vectors added so far, in insertion order.
  const std::vector<BitVec>& members() const { return members_; }

  /// Size of the pairwise-XOR set. Only depths >= 3 consult the set, so
  /// lower depths keep it empty rather than paying its O(|S|^2) memory.
  std::size_t pair_xor_count() const { return pair_xors_.size(); }

 private:
  std::size_t dim_;
  std::size_t depth_;
  std::vector<BitVec> members_;
  std::unordered_set<BitVec> member_set_;
  std::unordered_set<BitVec> pair_xors_;
};

}  // namespace tp::f2
