#include "f2/matrix.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tp::f2 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows, BitVec(cols)) {}

Matrix Matrix::from_columns(const std::vector<BitVec>& columns) {
  // An empty column list is a legal degenerate input (an m=0 trace log):
  // the 0x0 matrix, not UB. Previously this dereferenced columns.front().
  if (columns.empty()) return Matrix(0, 0);
  const std::size_t rows = columns.front().size();
  Matrix m(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    assert(columns[c].size() == rows);
    for (std::size_t r = 0; r < rows; ++r) {
      if (columns[c].get(r)) m.data_[r].set(c, true);
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.data_[i].set(i, true);
  return m;
}

BitVec Matrix::column(std::size_t c) const {
  assert(c < cols_);
  BitVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (data_[r].get(c)) v.set(r, true);
  }
  return v;
}

BitVec Matrix::multiply(const BitVec& x) const {
  assert(x.size() == cols_);
  BitVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (data_[r].dot(x)) out.set(r, true);
  }
  return out;
}

namespace detail {

std::vector<std::size_t> row_reduce(std::vector<BitVec>& rows,
                                    std::size_t col_limit) {
  std::vector<std::size_t> pivots;
  if (rows.empty() || col_limit == 0) return pivots;
  const std::size_t nrows = rows.size();
  assert(col_limit <= rows.front().size());

  // Stripe width: the 2^s table costs ~2^s row XORs to build and saves
  // (s - 1) row XORs per remaining row, so s ~ log2(nrows) - 2 balances
  // the two; clamped to [1, 8] (a 256-entry table already amortizes).
  std::size_t lg = 0;
  while ((std::size_t{1} << (lg + 1)) <= nrows) ++lg;
  const std::size_t stripe_max = std::clamp<std::size_t>(lg >= 2 ? lg - 2 : 1, 1, 8);

  std::size_t next_row = 0;
  std::size_t col = 0;
  while (col < col_limit && next_row < nrows) {
    // Collect a stripe of up to stripe_max pivots. Rows below next_row are
    // not yet reduced by the stripe, so a candidate's true bit at `col` is
    // its stored bit corrected by the stripe rows its stripe-column bits
    // select — exact because the stripe rows are kept mutually reduced
    // (each has 1 at its own pivot column, 0 at the others).
    const std::size_t base = next_row;
    std::vector<std::size_t> stripe_cols;
    while (col < col_limit && stripe_cols.size() < stripe_max &&
           next_row < nrows) {
      std::size_t found = nrows;
      for (std::size_t r = next_row; r < nrows && found == nrows; ++r) {
        bool bit = rows[r].get(col);
        for (std::size_t j = 0; j < stripe_cols.size(); ++j) {
          if (rows[r].get(stripe_cols[j])) bit ^= rows[base + j].get(col);
        }
        if (bit) found = r;
      }
      if (found == nrows) {
        ++col;
        continue;
      }
      std::swap(rows[found], rows[next_row]);
      for (std::size_t j = 0; j < stripe_cols.size(); ++j) {
        if (rows[next_row].get(stripe_cols[j])) rows[next_row] ^= rows[base + j];
      }
      for (std::size_t j = 0; j < stripe_cols.size(); ++j) {
        if (rows[base + j].get(col)) rows[base + j] ^= rows[next_row];
      }
      stripe_cols.push_back(col);
      pivots.push_back(col);
      ++next_row;
      ++col;
    }
    const std::size_t s = stripe_cols.size();
    if (s == 0) continue;  // no pivot in the remaining columns; loop exits

    // table[mask] = XOR of the stripe rows selected by mask, built with one
    // row XOR per entry via table[mask without lowest bit].
    std::vector<BitVec> table;
    table.reserve(std::size_t{1} << s);
    table.emplace_back(rows.front().size());
    for (std::size_t mask = 1; mask < (std::size_t{1} << s); ++mask) {
      const auto low = static_cast<std::size_t>(std::countr_zero(mask));
      table.push_back(table[mask & (mask - 1)] ^ rows[base + low]);
    }

    // Clear the whole stripe from every other row (Jordan: above and
    // below) with s bit reads and one table XOR per row.
    for (std::size_t r = 0; r < nrows; ++r) {
      if (r >= base && r < base + s) continue;
      std::size_t mask = 0;
      for (std::size_t j = 0; j < s; ++j) {
        if (rows[r].get(stripe_cols[j])) mask |= std::size_t{1} << j;
      }
      if (mask != 0) rows[r] ^= table[mask];
    }
  }
  return pivots;
}

}  // namespace detail

std::size_t Matrix::rank() const {
  std::vector<BitVec> rows = data_;
  return detail::row_reduce(rows, cols_).size();
}

std::optional<LinearSolution> Matrix::solve(const BitVec& b) const {
  assert(b.size() == rows_);
  // Augmented matrix [A | b] with the RHS bit kept inside the row words at
  // column index cols_ — widening is a word copy, not a per-bit loop.
  std::vector<BitVec> aug;
  aug.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    aug.push_back(data_[r].resized(cols_ + 1));
    if (b.get(r)) aug.back().set(cols_, true);
  }
  std::vector<std::size_t> pivots = detail::row_reduce(aug, cols_ + 1);
  // Inconsistent iff some pivot landed on the augmented column.
  if (!pivots.empty() && pivots.back() == cols_) return std::nullopt;

  LinearSolution sol{BitVec(cols_), {}};
  // Particular solution: free variables 0, pivot variables take the
  // augmented value of their row.
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    is_pivot[pivots[r]] = true;
    if (aug[r].get(cols_)) sol.particular.set(pivots[r], true);
  }
  // Null-space basis: one vector per free column f — set x_f = 1 and give
  // each pivot variable the coefficient of column f in its (reduced) row.
  for (std::size_t f = 0; f < cols_; ++f) {
    if (is_pivot[f]) continue;
    BitVec v(cols_);
    v.set(f, true);
    for (std::size_t r = 0; r < pivots.size(); ++r) {
      if (aug[r].get(f)) v.set(pivots[r], true);
    }
    sol.nullspace.push_back(std::move(v));
  }
  return sol;
}

bool Matrix::linearly_independent(const std::vector<BitVec>& vectors) {
  if (vectors.empty()) return true;
  std::vector<BitVec> rows = vectors;
  return detail::row_reduce(rows, rows.front().size()).size() == vectors.size();
}

LiChecker::LiChecker(std::size_t dim, std::size_t depth)
    : dim_(dim), depth_(depth) {
  assert(depth >= 1 && depth <= 4);
}

bool LiChecker::can_add(const BitVec& candidate) const {
  assert(candidate.size() == dim_);
  if (candidate.is_zero()) return false;                       // depth 1
  if (depth_ >= 2 && member_set_.contains(candidate)) return false;
  if (depth_ >= 3 && pair_xors_.contains(candidate)) return false;
  if (depth_ >= 4) {
    // {v, a, b, c} dependent <=> v ^ a == b ^ c. A hit v ^ a == a ^ b would
    // mean v == b which depth 2 already excluded, so the set test is exact.
    for (const BitVec& a : members_) {
      if (pair_xors_.contains(candidate ^ a)) return false;
    }
  }
  return true;
}

void LiChecker::add(const BitVec& v) {
  assert(can_add(v));
  // Each auxiliary set is maintained only at the depths whose can_add
  // consults it; below that it would be pure O(|S|^2) ballast.
  if (depth_ >= 3) {
    for (const BitVec& a : members_) pair_xors_.insert(v ^ a);
  }
  members_.push_back(v);
  if (depth_ >= 2) member_set_.insert(v);
}

}  // namespace tp::f2
