#include "f2/matrix.hpp"

#include <cassert>

namespace tp::f2 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows, BitVec(cols)) {}

Matrix Matrix::from_columns(const std::vector<BitVec>& columns) {
  assert(!columns.empty());
  const std::size_t rows = columns.front().size();
  Matrix m(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    assert(columns[c].size() == rows);
    for (std::size_t r = 0; r < rows; ++r) {
      if (columns[c].get(r)) m.data_[r].set(c, true);
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.data_[i].set(i, true);
  return m;
}

BitVec Matrix::column(std::size_t c) const {
  assert(c < cols_);
  BitVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (data_[r].get(c)) v.set(r, true);
  }
  return v;
}

BitVec Matrix::multiply(const BitVec& x) const {
  assert(x.size() == cols_);
  BitVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (data_[r].dot(x)) out.set(r, true);
  }
  return out;
}

namespace {

// Row-reduce `rows` in place; returns the pivot column of each surviving
// row (rows without a pivot become zero and are moved to the back).
// Elimination proceeds from the lowest column index upward.
std::vector<std::size_t> reduce(std::vector<BitVec>& rows) {
  std::vector<std::size_t> pivots;
  std::size_t next_row = 0;
  if (rows.empty()) return pivots;
  const std::size_t cols = rows.front().size();
  for (std::size_t col = 0; col < cols && next_row < rows.size(); ++col) {
    std::size_t pivot = rows.size();
    for (std::size_t r = next_row; r < rows.size(); ++r) {
      if (rows[r].get(col)) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows.size()) continue;
    std::swap(rows[next_row], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && rows[r].get(col)) rows[r] ^= rows[next_row];
    }
    pivots.push_back(col);
    ++next_row;
  }
  return pivots;
}

}  // namespace

std::size_t Matrix::rank() const {
  std::vector<BitVec> rows = data_;
  return reduce(rows).size();
}

std::optional<LinearSolution> Matrix::solve(const BitVec& b) const {
  assert(b.size() == rows_);
  // Work on the augmented matrix [A | b] with the augmented bit stored at
  // column index cols_.
  std::vector<BitVec> aug(rows_, BitVec(cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (data_[r].get(c)) aug[r].set(c, true);
    }
    if (b.get(r)) aug[r].set(cols_, true);
  }
  std::vector<std::size_t> pivots = reduce(aug);
  // Inconsistent iff some pivot landed on the augmented column.
  if (!pivots.empty() && pivots.back() == cols_) return std::nullopt;

  LinearSolution sol{BitVec(cols_), {}};
  // Particular solution: free variables 0, pivot variables take the
  // augmented value of their row.
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    is_pivot[pivots[r]] = true;
    if (aug[r].get(cols_)) sol.particular.set(pivots[r], true);
  }
  // Null-space basis: one vector per free column f — set x_f = 1 and give
  // each pivot variable the coefficient of column f in its (reduced) row.
  for (std::size_t f = 0; f < cols_; ++f) {
    if (is_pivot[f]) continue;
    BitVec v(cols_);
    v.set(f, true);
    for (std::size_t r = 0; r < pivots.size(); ++r) {
      if (aug[r].get(f)) v.set(pivots[r], true);
    }
    sol.nullspace.push_back(std::move(v));
  }
  return sol;
}

bool Matrix::linearly_independent(const std::vector<BitVec>& vectors) {
  if (vectors.empty()) return true;
  std::vector<BitVec> rows = vectors;
  return reduce(rows).size() == vectors.size();
}

LiChecker::LiChecker(std::size_t dim, std::size_t depth)
    : dim_(dim), depth_(depth) {
  assert(depth >= 1 && depth <= 4);
}

bool LiChecker::can_add(const BitVec& candidate) const {
  assert(candidate.size() == dim_);
  if (candidate.is_zero()) return false;                       // depth 1
  if (depth_ >= 2 && member_set_.contains(candidate)) return false;
  if (depth_ >= 3 && pair_xors_.contains(candidate)) return false;
  if (depth_ >= 4) {
    // {v, a, b, c} dependent <=> v ^ a == b ^ c. A hit v ^ a == a ^ b would
    // mean v == b which depth 2 already excluded, so the set test is exact.
    for (const BitVec& a : members_) {
      if (pair_xors_.contains(candidate ^ a)) return false;
    }
  }
  return true;
}

void LiChecker::add(const BitVec& v) {
  assert(can_add(v));
  for (const BitVec& a : members_) pair_xors_.insert(v ^ a);
  members_.push_back(v);
  member_set_.insert(v);
}

}  // namespace tp::f2
