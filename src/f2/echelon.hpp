#pragma once
// echelon.hpp — reusable echelon factorization of an F2 matrix.
//
// Reconstruction decodes a long stream of timeprints against ONE matrix A
// (the timestamp encoding, paper §4.2): every entry is the system
// A·x = TP_i with the same A. Matrix::solve() re-eliminates A from
// scratch per call; an Echelonizer instead factors A once — recording the
// pivot columns, the reduced rows, the null-space basis and the row
// transform T with T·A = RREF(A) — and then answers each RHS with one
// matrix-vector product T·b instead of a fresh elimination.
//
// The transform also enables the bit-sliced batch decode: 64 RHS vectors
// are transposed into one 64-bit word per matrix row, and a single sweep
// of T applies every pivot row to all 64 entries simultaneously
// (solve_batch). This is the kernel behind BatchReconstructor's presolve
// prepass.

#include <cstddef>
#include <optional>
#include <vector>

#include "f2/matrix.hpp"

namespace tp::f2 {

class Echelonizer {
 public:
  /// Factor `a` (one Gauss-Jordan pass over [A | I]); `a` itself is not
  /// retained. Cost is one elimination; every later solve is cheap.
  explicit Echelonizer(const Matrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t rank() const { return rank_; }
  /// Dimension of the null space (number of free columns).
  std::size_t nullity() const { return cols_ - rank_; }

  /// Pivot columns in increasing order, one per reduced row.
  const std::vector<std::size_t>& pivot_cols() const { return pivot_cols_; }
  /// The non-pivot columns in increasing order.
  const std::vector<std::size_t>& free_cols() const { return free_cols_; }
  /// The rank() nonzero rows of RREF(A), width cols(). Row r has a 1 at
  /// pivot_cols()[r], zeros at every other pivot column; its remaining
  /// support is on free columns.
  const std::vector<BitVec>& reduced_rows() const { return reduced_; }
  /// Null-space basis, one vector per free column (in free_cols() order).
  const std::vector<BitVec>& nullspace() const { return nullspace_; }

  /// T·b — the RHS carried through the factorization's row operations.
  /// Bits [0, rank) are the reduced system's RHS; bits [rank, rows) must
  /// be zero for A·x = b to be consistent.
  BitVec transform(const BitVec& b) const;

  /// Consistency check on an already-transformed RHS.
  bool consistent_transformed(const BitVec& tb) const;

  /// Particular solution (all free variables 0) from a transformed RHS.
  /// Precondition: consistent_transformed(tb).
  BitVec particular_from_transformed(const BitVec& tb) const;

  /// Solve A·x = b using the stored factorization. Same contract as
  /// Matrix::solve (nullopt when inconsistent); the null-space basis is
  /// copied into the result.
  std::optional<LinearSolution> solve(const BitVec& b) const;

  /// Bit-sliced decode of many RHS vectors, 64 per pass: the chunk is
  /// transposed into one word per matrix row, each transform row is
  /// applied to all 64 entries with whole-word XORs, and the per-entry
  /// particular solutions are read back off the result columns. Entry i
  /// is nullopt when A·x = rhs[i] is inconsistent.
  std::vector<std::optional<BitVec>> solve_batch(
      const std::vector<BitVec>& rhs) const;

  /// Bit-sliced T·rhs[i] for every i (same 64-wide sweep as solve_batch,
  /// but returning the transformed RHS vectors themselves — the form the
  /// presolve layer needs to seed per-entry SAT assumptions).
  std::vector<BitVec> transform_batch(const std::vector<BitVec>& rhs) const;

 private:
  /// One 64-entry sweep: transpose rhs[base, base+n) into one word per
  /// matrix row and apply every transform row with whole-word XORs;
  /// c[r] bit j = transformed bit r of rhs[base + j].
  void sweep_chunk(const std::vector<BitVec>& rhs, std::size_t base,
                   std::size_t n, std::vector<std::uint64_t>& c) const;

  std::size_t rows_;
  std::size_t cols_;
  std::size_t rank_ = 0;
  std::vector<std::size_t> pivot_cols_;
  std::vector<std::size_t> free_cols_;
  std::vector<BitVec> reduced_;    // rank_ rows, width cols_
  std::vector<BitVec> transform_;  // rows_ rows, width rows_ (T, incl. zero rows)
  std::vector<BitVec> nullspace_;  // nullity() vectors, width cols_
};

}  // namespace tp::f2
