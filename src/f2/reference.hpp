#pragma once
// reference.hpp — scalar (bit-at-a-time) F2 elimination, kept verbatim
// from the pre-bit-sliced Matrix implementation.
//
// These kernels exist for two reasons: the randomized differential tests
// check the word-parallel kernels in matrix.cpp/echelon.cpp against them
// on every shape (they must agree exactly, including the pivot-column
// list), and bench_f2 uses them as the measured scalar baseline the
// bit-sliced path is gated against. They are deliberately NOT optimized.

#include <cstddef>
#include <optional>
#include <vector>

#include "f2/matrix.hpp"

namespace tp::f2::reference {

/// Scalar row reduction to RREF; same contract as detail::row_reduce with
/// col_limit == row width (every column a pivot candidate).
std::vector<std::size_t> row_reduce(std::vector<BitVec>& rows);

/// Scalar rank of the matrix.
std::size_t rank(const Matrix& a);

/// Scalar solve of A·x = b; same result contract as Matrix::solve.
std::optional<LinearSolution> solve(const Matrix& a, const BitVec& b);

}  // namespace tp::f2::reference
