#include "f2/bitvec.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tp::f2 {

std::uint64_t Rng::next() {
  // splitmix64 (public domain, Sebastiano Vigna).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t n) { return (n + kWordBits - 1) / kWordBits; }
}  // namespace

BitVec::BitVec(std::size_t n) : size_(n), words_(words_for(n), 0) {}

BitVec BitVec::from_uint(std::size_t n, std::uint64_t value) {
  BitVec v(n);
  if (n > 0) {
    if (n < kWordBits) {
      assert((value >> n) == 0 && "value has bits beyond dimension");
    }
    v.words_[0] = value;
    v.clear_tail();
  } else {
    assert(value == 0);
  }
  return v;
}

BitVec BitVec::from_string(std::string_view bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    assert(bits[i] == '0' || bits[i] == '1');
    // MSB-first string: character 0 is the highest coordinate.
    v.set(bits.size() - 1 - i, bits[i] == '1');
  }
  return v;
}

BitVec BitVec::random(std::size_t n, Rng& rng) {
  BitVec v(n);
  for (auto& w : v.words_) w = rng.next();
  v.clear_tail();
  return v;
}

BitVec BitVec::unit(std::size_t n, std::size_t pos) {
  BitVec v(n);
  v.set(pos, true);
  return v;
}

bool BitVec::get(std::size_t i) const {
  assert(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  assert(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  assert(i < size_);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

bool BitVec::is_zero() const {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::highest_set() const {
  for (std::size_t wi = words_.size(); wi-- > 0;) {
    if (words_[wi] != 0) {
      return wi * kWordBits + (kWordBits - 1 -
                               static_cast<std::size_t>(std::countl_zero(words_[wi])));
    }
  }
  return size_;
}

std::size_t BitVec::lowest_set() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return size_;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::and_not(const BitVec& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

BitVec BitVec::resized(std::size_t n) const {
  BitVec out(n);
  const std::size_t copy = std::min(out.words_.size(), words_.size());
  for (std::size_t i = 0; i < copy; ++i) out.words_[i] = words_[i];
  out.clear_tail();
  return out;
}

void BitVec::increment() {
  for (auto& w : words_) {
    if (++w != 0) break;  // no carry out of this word
  }
  clear_tail();
}

std::strong_ordering BitVec::operator<=>(const BitVec& other) const {
  if (size_ != other.size_) return size_ <=> other.size_;
  for (std::size_t wi = words_.size(); wi-- > 0;) {
    if (words_[wi] != other.words_[wi]) return words_[wi] <=> other.words_[wi];
  }
  return std::strong_ordering::equal;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[size_ - 1 - i] = '1';
  }
  return s;
}

std::uint64_t BitVec::to_uint() const {
  if (words_.empty()) return 0;
  return words_[0];
}

std::size_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
  for (auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  }
  return static_cast<std::size_t>(h);
}

bool BitVec::dot(const BitVec& other) const {
  assert(size_ == other.size_);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) acc ^= words_[i] & other.words_[i];
  return (std::popcount(acc) & 1) != 0;
}

void BitVec::clear_tail() {
  const std::size_t used = size_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

}  // namespace tp::f2
