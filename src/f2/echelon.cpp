#include "f2/echelon.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tp::f2 {

Echelonizer::Echelonizer(const Matrix& a) : rows_(a.rows()), cols_(a.cols()) {
  // Eliminate [A | I]: pivots are restricted to the A block, so the right
  // half of row r accumulates the combination of original rows that
  // produced reduced row r — the transform T with T·A = RREF(A).
  std::vector<BitVec> work;
  work.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    work.push_back(a.row(r).resized(cols_ + rows_));
    work.back().set(cols_ + r, true);
  }
  pivot_cols_ = detail::row_reduce(work, cols_);
  rank_ = pivot_cols_.size();

  reduced_.reserve(rank_);
  transform_.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r < rank_) reduced_.push_back(work[r].resized(cols_));
    // Right half: bits [cols_, cols_ + rows_) -> a BitVec of width rows_.
    BitVec t(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (work[r].get(cols_ + i)) t.set(i, true);
    }
    transform_.push_back(std::move(t));
  }

  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t c : pivot_cols_) is_pivot[c] = true;
  free_cols_.reserve(cols_ - rank_);
  nullspace_.reserve(cols_ - rank_);
  for (std::size_t f = 0; f < cols_; ++f) {
    if (is_pivot[f]) continue;
    free_cols_.push_back(f);
    BitVec v(cols_);
    v.set(f, true);
    for (std::size_t r = 0; r < rank_; ++r) {
      if (reduced_[r].get(f)) v.set(pivot_cols_[r], true);
    }
    nullspace_.push_back(std::move(v));
  }
}

BitVec Echelonizer::transform(const BitVec& b) const {
  assert(b.size() == rows_);
  BitVec tb(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (transform_[r].dot(b)) tb.set(r, true);
  }
  return tb;
}

bool Echelonizer::consistent_transformed(const BitVec& tb) const {
  assert(tb.size() == rows_);
  // Bits at or above rank_ witness 0 = 1 rows.
  const std::size_t high = tb.highest_set();
  return high == rows_ || high < rank_;
}

BitVec Echelonizer::particular_from_transformed(const BitVec& tb) const {
  assert(consistent_transformed(tb));
  BitVec x(cols_);
  for (std::size_t r = 0; r < rank_; ++r) {
    if (tb.get(r)) x.set(pivot_cols_[r], true);
  }
  return x;
}

std::optional<LinearSolution> Echelonizer::solve(const BitVec& b) const {
  const BitVec tb = transform(b);
  if (!consistent_transformed(tb)) return std::nullopt;
  return LinearSolution{particular_from_transformed(tb), nullspace_};
}

void Echelonizer::sweep_chunk(const std::vector<BitVec>& rhs, std::size_t base,
                              std::size_t n, std::vector<std::uint64_t>& c) const {
  // Transpose the chunk: w[s] holds bit j = rhs[base + j] coordinate s,
  // i.e. one 64-entry slice of the RHS block per matrix row.
  std::vector<std::uint64_t> w(rows_, 0);
  for (std::size_t j = 0; j < n; ++j) {
    assert(rhs[base + j].size() == rows_);
    const auto& words = rhs[base + j].words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      std::uint64_t word = words[wi];
      while (word != 0) {
        const auto s = static_cast<std::size_t>(std::countr_zero(word));
        w[wi * 64 + s] |= std::uint64_t{1} << j;
        word &= word - 1;
      }
    }
  }
  // One sweep of T over the whole chunk: c[r] = XOR of w[s] over the
  // support of transform row r — 64 transformed RHS bits per XOR.
  c.assign(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto& trow = transform_[r].words();
    std::uint64_t acc = 0;
    for (std::size_t wi = 0; wi < trow.size(); ++wi) {
      std::uint64_t word = trow[wi];
      while (word != 0) {
        const auto s = static_cast<std::size_t>(std::countr_zero(word));
        acc ^= w[wi * 64 + s];
        word &= word - 1;
      }
    }
    c[r] = acc;
  }
}

std::vector<std::optional<BitVec>> Echelonizer::solve_batch(
    const std::vector<BitVec>& rhs) const {
  std::vector<std::optional<BitVec>> out(rhs.size());
  std::vector<std::uint64_t> c;
  for (std::size_t base = 0; base < rhs.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, rhs.size() - base);
    sweep_chunk(rhs, base, n, c);
    // Entries with any transformed bit set at rows >= rank_ are
    // inconsistent; the rest read their particular solution down column j.
    std::uint64_t fail = 0;
    for (std::size_t r = rank_; r < rows_; ++r) fail |= c[r];
    for (std::size_t j = 0; j < n; ++j) {
      if ((fail >> j) & 1u) continue;  // stays nullopt
      BitVec x(cols_);
      for (std::size_t r = 0; r < rank_; ++r) {
        if ((c[r] >> j) & 1u) x.set(pivot_cols_[r], true);
      }
      out[base + j] = std::move(x);
    }
  }
  return out;
}

std::vector<BitVec> Echelonizer::transform_batch(
    const std::vector<BitVec>& rhs) const {
  std::vector<BitVec> out;
  out.reserve(rhs.size());
  std::vector<std::uint64_t> c;
  for (std::size_t base = 0; base < rhs.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, rhs.size() - base);
    sweep_chunk(rhs, base, n, c);
    for (std::size_t j = 0; j < n; ++j) {
      BitVec tb(rows_);
      for (std::size_t r = 0; r < rows_; ++r) {
        if ((c[r] >> j) & 1u) tb.set(r, true);
      }
      out.push_back(std::move(tb));
    }
  }
  return out;
}

}  // namespace tp::f2
