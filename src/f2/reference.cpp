#include "f2/reference.hpp"

#include <cassert>

namespace tp::f2::reference {

std::vector<std::size_t> row_reduce(std::vector<BitVec>& rows) {
  std::vector<std::size_t> pivots;
  std::size_t next_row = 0;
  if (rows.empty()) return pivots;
  const std::size_t cols = rows.front().size();
  for (std::size_t col = 0; col < cols && next_row < rows.size(); ++col) {
    std::size_t pivot = rows.size();
    for (std::size_t r = next_row; r < rows.size(); ++r) {
      if (rows[r].get(col)) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows.size()) continue;
    std::swap(rows[next_row], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && rows[r].get(col)) rows[r] ^= rows[next_row];
    }
    pivots.push_back(col);
    ++next_row;
  }
  return pivots;
}

std::size_t rank(const Matrix& a) {
  std::vector<BitVec> rows;
  rows.reserve(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) rows.push_back(a.row(r));
  return row_reduce(rows).size();
}

std::optional<LinearSolution> solve(const Matrix& a, const BitVec& b) {
  assert(b.size() == a.rows());
  const std::size_t cols = a.cols();
  // Augmented matrix [A | b], copied bit by bit (the scalar baseline).
  std::vector<BitVec> aug(a.rows(), BitVec(cols + 1));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (a.get(r, c)) aug[r].set(c, true);
    }
    if (b.get(r)) aug[r].set(cols, true);
  }
  std::vector<std::size_t> pivots = row_reduce(aug);
  if (!pivots.empty() && pivots.back() == cols) return std::nullopt;

  LinearSolution sol{BitVec(cols), {}};
  std::vector<bool> is_pivot(cols, false);
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    is_pivot[pivots[r]] = true;
    if (aug[r].get(cols)) sol.particular.set(pivots[r], true);
  }
  for (std::size_t f = 0; f < cols; ++f) {
    if (is_pivot[f]) continue;
    BitVec v(cols);
    v.set(f, true);
    for (std::size_t r = 0; r < pivots.size(); ++r) {
      if (aug[r].get(f)) v.set(pivots[r], true);
    }
    sol.nullspace.push_back(std::move(v));
  }
  return sol;
}

}  // namespace tp::f2::reference
