#pragma once
// batch.hpp — the parallel batch reconstruction engine.
//
// Every realistic deployment of the paper's postmortem phase decodes
// *many* (TP, k) log entries — a CAN forensics pass walks a whole trace
// log, a deadline audit checks every window — and each decode is an
// NP-hard SAT query (§4.2). This engine parallelizes on two axes:
//
//  1. reconstruct_all(): independent log entries fan out across a
//     work-stealing thread pool, one SR instance per entry.
//  2. reconstruct_split(): a single hard instance is split
//     cube-and-conquer style — the SR encoding is built once, the solver
//     is clone()d per cube, and each clone enumerates the subspace fixed
//     by its guiding-path assumptions over cycle variables. Disjoint
//     cubes partition the model space, so the per-cube enumerations
//     merge without deduplication.
//
// Determinism: results merge by entry index (then per-entry discovery
// order) or by cube index (then per-cube discovery order), never by
// completion order, and the cube set depends only on the instance and
// options — so the reconstructed signals and final status are identical
// regardless of thread count or scheduling. Only the timing fields
// (seconds_*) vary run to run. Resource limits (max_seconds,
// max_conflicts, an external interrupt) trade this determinism for
// bounded latency, exactly as they do on the single-threaded path.
//
// Incremental mode (ReconstructionOptions::incremental): reconstruct_all
// routes entries through per-worker TemplateReconstructors
// (timeprint/incremental.hpp) — the SR base is encoded once into an
// immutable master template, each worker clones it on first use (cache
// miss) and reuses its warm clone for every further entry it serves
// (cache hit), so learnt clauses, saved phases and activity scores carry
// across the stream. Complete enumerations still yield exactly the fresh
// path's signal *sets*; a warm solver may discover them in a different
// *order*, so with a max_solutions cap the truncated subset can differ
// from the fresh path's and vary with scheduling. reconstruct_split
// ignores the flag (it already encodes once and branches per cube).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "timeprint/reconstruct.hpp"

namespace tp::core {

/// Snapshot passed to the progress callback after each unit of work (one
/// log entry of reconstruct_all, one cube of reconstruct_split) finishes.
struct BatchProgress {
  std::size_t total = 0;           ///< units in this run
  std::size_t completed = 0;       ///< units finished so far (incl. this one)
  std::size_t index = 0;           ///< unit that just finished
  std::uint64_t signals_found = 0; ///< cumulative reconstructed signals
};

/// Observability hook. Invoked from worker threads but serialized by the
/// engine (never concurrently), so the callback itself needs no locking.
/// Keep it cheap: the engine's merge lock is held while it runs.
using ProgressCallback = std::function<void(const BatchProgress&)>;

/// Knobs of one batch run.
struct BatchOptions {
  /// Per-instance reconstruction options (encoding knobs, limits,
  /// max_solutions, cancellation token — see ReconstructionOptions).
  ReconstructionOptions recon;
  /// Worker threads (0 = std::thread::hardware_concurrency).
  std::size_t num_threads = 0;
  /// Guiding-path depth g of reconstruct_split(): the search splits into
  /// 2^g cubes over g evenly spaced cycle variables. 0 = auto. Kept
  /// independent of num_threads so the cube set — and therefore the
  /// merged result — does not change with the degree of parallelism.
  std::size_t cube_vars = 0;
  /// Incremental mode only: bound on the summed retained clause-storage
  /// bytes (SolverInterface::retained_bytes) of the idle per-worker
  /// template cache. When returning a template would push the cache over
  /// the bound, the least-recently-used idle templates are evicted (their
  /// learnt clauses and heuristic state are dropped; the next worker
  /// re-clones the master). 0 = unbounded. Surfaced through the
  /// "incremental.template_evictions" counter and the
  /// "incremental.template_cache_bytes" gauge.
  std::size_t template_cache_bytes = std::size_t{64} << 20;
  /// Progress hook; see ProgressCallback.
  ProgressCallback on_progress;

  /// Throws std::invalid_argument on inconsistent knobs (delegates to
  /// ReconstructionOptions::validate, bounds cube_vars).
  void validate() const;
};

/// Outcome of a reconstruct_all() run.
struct BatchResult {
  /// One result per input entry, in input order.
  std::vector<ReconstructionResult> results;
  /// Solver effort aggregated over every worker.
  sat::SolverStats stats;
  /// Wall-clock seconds for the whole batch.
  double seconds_total = 0.0;
  /// Worker threads used.
  std::size_t threads_used = 0;

  /// Total signals reconstructed across the batch.
  std::uint64_t signals_total() const;
  /// True iff every entry's enumeration ran to completion.
  bool complete() const;
};

/// Decodes batches of log entries in parallel against one timestamp
/// encoding. The unified front end to the paper's reconstruction: same
/// encoding path as Reconstructor (which it embeds), plus the fan-out,
/// splitting, cancellation and aggregation machinery.
class BatchReconstructor {
 public:
  /// The encoding must outlive the reconstructor.
  explicit BatchReconstructor(const TimestampEncoding& encoding) : rec_(encoding) {}

  /// Register a known (verified) property for every query; must outlive
  /// the reconstructor.
  void add_property(const Property& property) { rec_.add_property(property); }

  /// The embedded single-instance reconstructor (shared encoding and
  /// properties).
  const Reconstructor& reconstructor() const { return rec_; }

  /// Decode every entry of an aggregated log, one SR instance per entry,
  /// fanned out across the pool. Results keep input order. With
  /// options.recon.incremental, entries are served by warm per-worker
  /// template solvers instead of fresh per-entry solvers (see the file
  /// comment's determinism caveat).
  BatchResult reconstruct_all(const std::vector<LogEntry>& entries,
                              const BatchOptions& options = {}) const;

  /// Decode one hard instance by cube-and-conquer: encode once, clone the
  /// solver per cube, enumerate each cube's subspace under assumptions in
  /// parallel. A cooperative cancellation token stops in-flight cubes as
  /// soon as the cubes *preceding* them (in cube order) already supply
  /// max_solutions models — later cubes can then no longer contribute to
  /// the truncated, deterministic output.
  ReconstructionResult reconstruct_split(const LogEntry& entry,
                                         const BatchOptions& options = {}) const;

 private:
  Reconstructor rec_;
};

}  // namespace tp::core
