#include "timeprint/design.hpp"

#include <cmath>

#include "timeprint/encoding.hpp"

namespace tp::core {

double log_rate_bps(std::size_t m, std::size_t b, double clock_hz) {
  return static_cast<double>(b + counter_bits(m)) * clock_hz /
         static_cast<double>(m);
}

std::size_t paper_width(std::size_t m) {
  switch (m) {
    case 64: return 13;
    case 128: return 16;
    case 512: return 22;
    case 1024: return 24;
    default: {
      const double w = 2.2 * std::log2(static_cast<double>(m)) + 0.5;
      return static_cast<std::size_t>(std::ceil(w));
    }
  }
}

double expected_solutions(std::size_t m, std::size_t k, std::size_t b) {
  // log2(C(m, k)) - b, computed in logs to avoid overflow.
  double log2_binom = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    log2_binom += std::log2(static_cast<double>(m - i)) -
                  std::log2(static_cast<double>(i + 1));
  }
  return std::exp2(log2_binom - static_cast<double>(b));
}

}  // namespace tp::core
