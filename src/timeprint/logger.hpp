#pragma once
// logger.hpp — the logging procedure α̃ : Sig -> Log and trace storage.
//
// The logging procedure abstracts a signal S to a log entry (TP, k), where
// TP = Σ_{i : S(i)=1} TS(i) over F2 and k = |{i : S(i)=1}| (paper §4). The
// StreamingLogger models the deployment-phase data path: it consumes one
// change bit per clock cycle, aggregates timestamps into the running
// timeprint register and emits one LogEntry per completed trace-cycle —
// exactly the behaviour of the agg-log hardware (whose register-level model
// lives in src/rtlsim and is tested for equivalence against this one).

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "f2/bitvec.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// What gets logged per trace-cycle: the timeprint and the change count
/// (constant b + ceil(log2(m+1)) bits, irrespective of k — paper §3.1).
struct LogEntry {
  f2::BitVec tp;      ///< aggregated timeprint, b bits
  std::size_t k = 0;  ///< number of changes in the trace-cycle

  bool operator==(const LogEntry&) const = default;
};

/// Behavioural (functional) model of the logging procedure.
class Logger {
 public:
  /// The encoding must outlive the logger.
  explicit Logger(const TimestampEncoding& encoding) : enc_(&encoding) {}

  /// α̃(S): abstract one trace-cycle signal to its log entry.
  LogEntry log(const Signal& signal) const;

  /// The encoding in use.
  const TimestampEncoding& encoding() const { return *enc_; }

 private:
  const TimestampEncoding* enc_;
};

/// A sequence of log entries, one per back-to-back trace-cycle, plus
/// bit-accounting. This is the "central database" of Figure 3.
class TraceLog {
 public:
  explicit TraceLog(std::size_t m, std::size_t b) : m_(m), b_(b) {}

  /// Append a completed trace-cycle's entry.
  void append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const LogEntry& operator[](std::size_t i) const { return entries_[i]; }
  const std::vector<LogEntry>& entries() const { return entries_; }

  /// Trace-cycle length and timeprint width.
  std::size_t m() const { return m_; }
  std::size_t width() const { return b_; }

  /// Total bits this log occupies: size() × (b + counter_bits(m)).
  std::size_t total_bits() const;

  /// Index of the first entry differing from `other`, or size() if equal up
  /// to the shorter length (the §5.2.2 HW-vs-simulation comparison).
  std::size_t first_mismatch(const TraceLog& other) const;

  /// Index of the first entry whose change count k differs, or size().
  std::size_t first_count_mismatch(const TraceLog& other) const;

  /// Serialize as a compact text stream (one "tp_hexlike k" line per
  /// entry); parse back with load().
  void save(std::ostream& out) const;
  static TraceLog load(std::istream& in);

 private:
  std::size_t m_;
  std::size_t b_;
  std::vector<LogEntry> entries_;
};

/// Cycle-driven logger: feed one change bit per clock; emits a LogEntry
/// into the TraceLog at each trace-cycle boundary. Models the constant-rate
/// deployment-phase logging of Figure 3.
class StreamingLogger {
 public:
  explicit StreamingLogger(const TimestampEncoding& encoding);

  /// Advance one clock cycle with the given change bit.
  void tick(bool change);

  /// Number of clock cycles consumed so far.
  std::uint64_t cycles() const { return cycles_; }

  /// Position within the current trace-cycle (0..m-1 before the next tick).
  std::size_t phase() const { return phase_; }

  /// Completed trace-cycles' log.
  const TraceLog& log() const { return log_; }

  /// Flush a partial trace-cycle as if it had completed (pads with
  /// no-change cycles). No-op at a trace-cycle boundary.
  void flush();

 private:
  const TimestampEncoding* enc_;
  TraceLog log_;
  f2::BitVec tp_;
  std::size_t k_ = 0;
  std::size_t phase_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace tp::core
