#include "timeprint/properties.hpp"

#include <algorithm>
#include <cassert>

namespace tp::core {

using sat::Lit;
using sat::mk_lit;
using sat::SolverInterface;
using sat::Var;

// ---- ExistsConsecutivePair (P2) ----

bool ExistsConsecutivePair::holds(const Signal& s) const {
  for (std::size_t i = 0; i + 1 < s.length(); ++i) {
    if (s.has_change(i) && s.has_change(i + 1)) return true;
  }
  return false;
}

bool ExistsConsecutivePair::encode(SolverInterface& solver,
                                   const std::vector<Var>& x) const {
  if (x.size() < 2) return solver.add_clause({});  // impossible
  // Auxiliary p_i => x_i & x_{i+1}; at least one p_i. (One implication
  // direction suffices: any model with a consecutive pair extends to the
  // auxiliaries, and any model of the encoding has a consecutive pair.)
  std::vector<Lit> any;
  bool ok = true;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const Lit p = mk_lit(solver.new_var());
    ok = solver.add_clause({~p, mk_lit(x[i])}) && ok;
    ok = solver.add_clause({~p, mk_lit(x[i + 1])}) && ok;
    any.push_back(p);
  }
  return solver.add_clause(std::move(any)) && ok;
}

std::unique_ptr<Property> ExistsConsecutivePair::negation() const {
  return std::make_unique<NoConsecutivePair>();
}

// ---- NoConsecutivePair ----

bool NoConsecutivePair::holds(const Signal& s) const {
  for (std::size_t i = 0; i + 1 < s.length(); ++i) {
    if (s.has_change(i) && s.has_change(i + 1)) return false;
  }
  return true;
}

bool NoConsecutivePair::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  bool ok = true;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    ok = solver.add_clause({~mk_lit(x[i]), ~mk_lit(x[i + 1])}) && ok;
  }
  return ok;
}

std::unique_ptr<Property> NoConsecutivePair::negation() const {
  return std::make_unique<ExistsConsecutivePair>();
}

// ---- ChangesInConsecutivePairs ----

bool ChangesInConsecutivePairs::holds(const Signal& s) const {
  std::size_t run = 0;
  for (std::size_t i = 0; i <= s.length(); ++i) {
    const bool bit = i < s.length() && s.has_change(i);
    if (bit) {
      ++run;
    } else {
      if (run != 0 && run != 2) return false;
      run = 0;
    }
  }
  return true;
}

bool ChangesInConsecutivePairs::encode(SolverInterface& solver,
                                       const std::vector<Var>& x) const {
  const std::size_t m = x.size();
  bool ok = true;
  // Every maximal run of ones has length exactly 2:
  //  * no isolated one: x_i -> x_{i-1} | x_{i+1} (boundaries force the
  //    single neighbour);
  //  * no run of three: !(x_{i-1} & x_i & x_{i+1}).
  if (m == 1) return solver.add_clause({~mk_lit(x[0])});
  ok = solver.add_clause({~mk_lit(x[0]), mk_lit(x[1])}) && ok;
  ok = solver.add_clause({~mk_lit(x[m - 1]), mk_lit(x[m - 2])}) && ok;
  for (std::size_t i = 1; i + 1 < m; ++i) {
    ok = solver.add_clause({~mk_lit(x[i]), mk_lit(x[i - 1]), mk_lit(x[i + 1])}) && ok;
  }
  for (std::size_t i = 1; i + 1 < m; ++i) {
    ok = solver.add_clause({~mk_lit(x[i - 1]), ~mk_lit(x[i]), ~mk_lit(x[i + 1])}) && ok;
  }
  return ok;
}

// ---- MinChangesBefore (Dk) ----

bool MinChangesBefore::holds(const Signal& s) const {
  std::size_t count = 0;
  const std::size_t hi = std::min(deadline_, s.length());
  for (std::size_t i = 0; i < hi; ++i) count += s.has_change(i) ? 1 : 0;
  return count >= min_changes_;
}

bool MinChangesBefore::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  const std::size_t hi = std::min(deadline_, x.size());
  std::vector<Lit> lits;
  lits.reserve(hi);
  for (std::size_t i = 0; i < hi; ++i) lits.push_back(mk_lit(x[i]));
  return sat::encode_at_least(solver, lits, static_cast<int>(min_changes_), card_);
}

std::unique_ptr<Property> MinChangesBefore::negation() const {
  if (min_changes_ == 0) return nullptr;  // "at least 0" is trivially true
  return std::make_unique<MaxChangesBefore>(deadline_, min_changes_ - 1, card_);
}

std::string MinChangesBefore::describe() const {
  return "Dk: at least " + std::to_string(min_changes_) + " changes before cycle " +
         std::to_string(deadline_);
}

// ---- MaxChangesBefore ----

bool MaxChangesBefore::holds(const Signal& s) const {
  std::size_t count = 0;
  const std::size_t hi = std::min(deadline_, s.length());
  for (std::size_t i = 0; i < hi; ++i) count += s.has_change(i) ? 1 : 0;
  return count <= max_changes_;
}

bool MaxChangesBefore::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  const std::size_t hi = std::min(deadline_, x.size());
  std::vector<Lit> lits;
  lits.reserve(hi);
  for (std::size_t i = 0; i < hi; ++i) lits.push_back(mk_lit(x[i]));
  return sat::encode_at_most(solver, lits, static_cast<int>(max_changes_), card_);
}

std::unique_ptr<Property> MaxChangesBefore::negation() const {
  return std::make_unique<MinChangesBefore>(deadline_, max_changes_ + 1, card_);
}

std::string MaxChangesBefore::describe() const {
  return "at most " + std::to_string(max_changes_) + " changes before cycle " +
         std::to_string(deadline_);
}

// ---- ChangeInWindow ----

bool ChangeInWindow::holds(const Signal& s) const {
  const std::size_t hi = std::min(hi_, s.length());
  for (std::size_t i = lo_; i < hi; ++i) {
    if (s.has_change(i)) return true;
  }
  return false;
}

bool ChangeInWindow::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  const std::size_t hi = std::min(hi_, x.size());
  std::vector<Lit> clause;
  for (std::size_t i = lo_; i < hi; ++i) clause.push_back(mk_lit(x[i]));
  return solver.add_clause(std::move(clause));
}

std::unique_ptr<Property> ChangeInWindow::negation() const {
  return std::make_unique<NoChangeInWindow>(lo_, hi_);
}

std::string ChangeInWindow::describe() const {
  return "some change in [" + std::to_string(lo_) + ", " + std::to_string(hi_) + ")";
}

// ---- NoChangeInWindow ----

bool NoChangeInWindow::holds(const Signal& s) const {
  const std::size_t hi = std::min(hi_, s.length());
  for (std::size_t i = lo_; i < hi; ++i) {
    if (s.has_change(i)) return false;
  }
  return true;
}

bool NoChangeInWindow::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  const std::size_t hi = std::min(hi_, x.size());
  bool ok = true;
  for (std::size_t i = lo_; i < hi; ++i) {
    ok = solver.add_clause({~mk_lit(x[i])}) && ok;
  }
  return ok;
}

std::unique_ptr<Property> NoChangeInWindow::negation() const {
  return std::make_unique<ChangeInWindow>(lo_, hi_);
}

std::string NoChangeInWindow::describe() const {
  return "no change in [" + std::to_string(lo_) + ", " + std::to_string(hi_) + ")";
}

// ---- ExactlyKInWindow ----

bool ExactlyKInWindow::holds(const Signal& s) const {
  std::size_t count = 0;
  const std::size_t hi = std::min(hi_, s.length());
  for (std::size_t i = lo_; i < hi; ++i) count += s.has_change(i) ? 1 : 0;
  return count == k_;
}

bool ExactlyKInWindow::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  const std::size_t hi = std::min(hi_, x.size());
  std::vector<Lit> lits;
  for (std::size_t i = lo_; i < hi; ++i) lits.push_back(mk_lit(x[i]));
  return sat::encode_exactly(solver, lits, static_cast<int>(k_), card_);
}

std::string ExactlyKInWindow::describe() const {
  return "exactly " + std::to_string(k_) + " changes in [" + std::to_string(lo_) +
         ", " + std::to_string(hi_) + ")";
}

// ---- MinGap ----

bool MinGap::holds(const Signal& s) const {
  std::size_t last = s.length();
  for (std::size_t i = 0; i < s.length(); ++i) {
    if (!s.has_change(i)) continue;
    if (last != s.length() && i - last < gap_) return false;
    last = i;
  }
  return true;
}

bool MinGap::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  bool ok = true;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size() && j - i < gap_; ++j) {
      ok = solver.add_clause({~mk_lit(x[i]), ~mk_lit(x[j])}) && ok;
    }
  }
  return ok;
}

std::string MinGap::describe() const {
  return "changes at least " + std::to_string(gap_) + " cycles apart";
}

// ---- KnownValue ----

bool KnownValue::holds(const Signal& s) const {
  return s.has_change(cycle_) == changed_;
}

bool KnownValue::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  assert(cycle_ < x.size());
  return solver.add_clause({Lit(x[cycle_], /*negated=*/!changed_)});
}

std::unique_ptr<Property> KnownValue::negation() const {
  return std::make_unique<KnownValue>(cycle_, !changed_);
}

std::string KnownValue::describe() const {
  return "cycle " + std::to_string(cycle_) + (changed_ ? " changed" : " unchanged");
}

// ---- OneChangeDelayed ----

OneChangeDelayed::OneChangeDelayed(Signal reference, std::size_t delay)
    : reference_(std::move(reference)), delay_(delay), variants_() {
  // A change at cycle c can be delayed to c+delay if that stays inside the
  // trace-cycle and does not collide with another change of the reference.
  for (std::size_t c : reference_.change_cycles()) {
    const std::size_t target = c + delay_;
    if (target >= reference_.length()) continue;
    if (reference_.has_change(target)) continue;
    Signal v = reference_;
    v.set_change(c, false);
    v.set_change(target, true);
    variants_.push_back(std::move(v));
  }
}

bool OneChangeDelayed::holds(const Signal& s) const {
  for (const Signal& v : variants_) {
    if (s == v) return true;
  }
  return false;
}

bool OneChangeDelayed::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  assert(reference_.length() == x.size());
  if (variants_.empty()) return solver.add_clause({});  // no feasible variant
  // One selector per variant; the chosen selector forces the whole signal.
  std::vector<Lit> selectors;
  bool ok = true;
  for (const Signal& v : variants_) {
    const Lit s = mk_lit(solver.new_var());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ok = solver.add_clause({~s, Lit(x[i], /*negated=*/!v.has_change(i))}) && ok;
    }
    selectors.push_back(s);
  }
  ok = solver.add_clause(selectors) && ok;
  return ok;
}

std::string OneChangeDelayed::describe() const {
  return "one change of the reference delayed by " + std::to_string(delay_) +
         " cycle(s) (" + std::to_string(variants_.size()) + " variants)";
}

// ---- SuffixDelayed ----

SuffixDelayed::SuffixDelayed(Signal reference, std::size_t delay)
    : reference_(std::move(reference)), delay_(delay), variants_() {
  // One variant per change cycle c: changes at cycles >= c move +delay.
  // Variants where a shifted change leaves the trace-cycle or collides
  // with an unshifted change are infeasible; duplicates are dropped.
  for (std::size_t c : reference_.change_cycles()) {
    Signal v(reference_.length());
    bool feasible = true;
    for (std::size_t i : reference_.change_cycles()) {
      const std::size_t target = i >= c ? i + delay_ : i;
      if (target >= reference_.length() || v.has_change(target)) {
        feasible = false;
        break;
      }
      v.set_change(target);
    }
    if (!feasible) continue;
    if (std::find(variants_.begin(), variants_.end(), v) == variants_.end()) {
      variants_.push_back(std::move(v));
    }
  }
}

bool SuffixDelayed::holds(const Signal& s) const {
  for (const Signal& v : variants_) {
    if (s == v) return true;
  }
  return false;
}

bool SuffixDelayed::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  assert(reference_.length() == x.size());
  if (variants_.empty()) return solver.add_clause({});
  std::vector<Lit> selectors;
  bool ok = true;
  for (const Signal& v : variants_) {
    const Lit s = mk_lit(solver.new_var());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ok = solver.add_clause({~s, Lit(x[i], /*negated=*/!v.has_change(i))}) && ok;
    }
    selectors.push_back(s);
  }
  ok = solver.add_clause(selectors) && ok;
  return ok;
}

std::string SuffixDelayed::describe() const {
  return "suffix of the reference delayed by " + std::to_string(delay_) +
         " cycle(s) (" + std::to_string(variants_.size()) + " variants)";
}

// ---- MaxGap ----

bool MaxGap::holds(const Signal& s) const {
  std::size_t last = s.length();
  for (std::size_t i = 0; i < s.length(); ++i) {
    if (!s.has_change(i)) continue;
    if (last != s.length() && i - last > gap_) return false;
    last = i;
  }
  return true;
}

bool MaxGap::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  // For each change at i, some change must follow within gap cycles —
  // unless i is the last change. Encode: x_i -> (x_{i+1} | ... |
  // x_{i+gap} | none_after_i), where none_after_i is an auxiliary meaning
  // "no change after cycle i" (chained: none_i <-> !x_{i+1} & none_{i+1}).
  const std::size_t m = x.size();
  if (m == 0) return solver.okay();
  bool ok = true;
  // none[i]: no change at cycles > i. Build from the back.
  std::vector<Lit> none(m, sat::lit_undef);
  Lit prev = sat::lit_undef;
  for (std::size_t i = m; i-- > 0;) {
    const Lit n = mk_lit(solver.new_var());
    if (i + 1 == m) {
      ok = solver.add_clause({n}) && ok;  // nothing after the last cycle
    } else {
      // n <-> !x_{i+1} & none_{i+1}
      ok = solver.add_clause({~n, ~mk_lit(x[i + 1])}) && ok;
      ok = solver.add_clause({~n, prev}) && ok;
      ok = solver.add_clause({n, mk_lit(x[i + 1]), ~prev}) && ok;
    }
    none[i] = n;
    prev = n;
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<Lit> clause = {~mk_lit(x[i])};
    for (std::size_t j = i + 1; j < m && j <= i + gap_; ++j) {
      clause.push_back(mk_lit(x[j]));
    }
    clause.push_back(none[i]);
    ok = solver.add_clause(std::move(clause)) && ok;
  }
  return ok;
}

std::string MaxGap::describe() const {
  return "consecutive changes at most " + std::to_string(gap_) + " cycles apart";
}

// ---- Conjunction ----

bool Conjunction::holds(const Signal& s) const {
  for (const auto& p : parts_) {
    if (!p->holds(s)) return false;
  }
  return true;
}

bool Conjunction::encode(SolverInterface& solver, const std::vector<Var>& x) const {
  bool ok = true;
  for (const auto& p : parts_) ok = p->encode(solver, x) && ok;
  return ok;
}

std::string Conjunction::describe() const {
  std::string out = "all of {";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += "; ";
    out += parts_[i]->describe();
  }
  return out + "}";
}

}  // namespace tp::core
