#pragma once
// properties.hpp — temporal properties of change-signals.
//
// Properties play two roles in the methodology (paper §2, §5.1.3):
//  * *known* properties — verified at run-time by RV monitors or implied by
//    the protocol — are encoded into the reconstruction SAT query to prune
//    the search space;
//  * *hypothesis* properties are checked against all reconstructions: if
//    the query "reconstructions ∧ ¬hypothesis" is UNSAT, every signal that
//    can explain the logged timeprint satisfies the hypothesis (e.g. "the
//    message was sent before the deadline"), no matter which one actually
//    occurred.
//
// Every property can (a) be evaluated on a concrete signal and (b) encode
// itself as clauses over the m per-cycle change variables. Properties whose
// complement is also expressible provide negation() for UNSAT-style proofs.
//
// The paper's two illustration properties are ExistsConsecutivePair (P2)
// and MinChangesBefore (Dk); the didactic §3.3 property is
// ChangesInConsecutivePairs; OneChangeDelayed drives the §5.2.2 experiment.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sat/cardinality.hpp"
#include "sat/interface.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// Abstract temporal property over one trace-cycle's change-signal.
class Property {
 public:
  virtual ~Property() = default;

  /// Evaluate on a concrete signal.
  virtual bool holds(const Signal& signal) const = 0;

  /// Add clauses over `cycle_vars` (one SAT variable per clock cycle,
  /// cycle_vars[i] true <=> change in cycle i) constraining models to
  /// signals satisfying the property. May create auxiliary variables.
  /// Returns false iff the solver became unsatisfiable.
  virtual bool encode(sat::SolverInterface& solver,
                      const std::vector<sat::Var>& cycle_vars) const = 0;

  /// The complement property, or nullptr when not directly expressible.
  virtual std::unique_ptr<Property> negation() const { return nullptr; }

  /// One-line description for reports.
  virtual std::string describe() const = 0;
};

/// P2 (paper §5.1.3): at least one pair of consecutive changes appears.
class ExistsConsecutivePair final : public Property {
 public:
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override { return "P2: some two consecutive changes"; }
};

/// No two consecutive cycles both change (complement of P2).
class NoConsecutivePair final : public Property {
 public:
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override { return "no two consecutive changes"; }
};

/// Didactic §3.3: changes always come as exactly two consecutive ones
/// (every maximal run of 1s has length 2) — the "writes last one cycle"
/// protocol property that isolates the actual signal in Figure 4.
class ChangesInConsecutivePairs final : public Property {
 public:
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override {
    return "changes come as pairs of two consecutive ones";
  }
};

/// Dk (paper §5.1.3): at least `min_changes` changes strictly before
/// (0-based) cycle `deadline`.
class MinChangesBefore final : public Property {
 public:
  MinChangesBefore(std::size_t deadline, std::size_t min_changes,
                   sat::CardEncoding enc = sat::CardEncoding::SequentialCounter)
      : deadline_(deadline), min_changes_(min_changes), card_(enc) {}

  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override;

  std::size_t deadline() const { return deadline_; }
  std::size_t min_changes() const { return min_changes_; }

 private:
  std::size_t deadline_;
  std::size_t min_changes_;
  sat::CardEncoding card_;
};

/// At most `max_changes` changes strictly before cycle `deadline`.
class MaxChangesBefore final : public Property {
 public:
  MaxChangesBefore(std::size_t deadline, std::size_t max_changes,
                   sat::CardEncoding enc = sat::CardEncoding::SequentialCounter)
      : deadline_(deadline), max_changes_(max_changes), card_(enc) {}

  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override;

 private:
  std::size_t deadline_;
  std::size_t max_changes_;
  sat::CardEncoding card_;
};

/// At least one change in the half-open window [lo, hi).
class ChangeInWindow final : public Property {
 public:
  ChangeInWindow(std::size_t lo, std::size_t hi) : lo_(lo), hi_(hi) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override;

 private:
  std::size_t lo_, hi_;
};

/// No change anywhere in the half-open window [lo, hi).
class NoChangeInWindow final : public Property {
 public:
  NoChangeInWindow(std::size_t lo, std::size_t hi) : lo_(lo), hi_(hi) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override;

 private:
  std::size_t lo_, hi_;
};

/// Exactly `k` changes in the half-open window [lo, hi).
class ExactlyKInWindow final : public Property {
 public:
  ExactlyKInWindow(std::size_t lo, std::size_t hi, std::size_t k,
                   sat::CardEncoding enc = sat::CardEncoding::SequentialCounter)
      : lo_(lo), hi_(hi), k_(k), card_(enc) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

 private:
  std::size_t lo_, hi_, k_;
  sat::CardEncoding card_;
};

/// Any two changes are at least `gap` cycles apart (a minimum inter-event
/// separation, e.g. a protocol's minimum inter-frame space).
class MinGap final : public Property {
 public:
  explicit MinGap(std::size_t gap) : gap_(gap) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

 private:
  std::size_t gap_;
};

/// The change bit of one specific cycle is known (e.g. from another log).
class KnownValue final : public Property {
 public:
  KnownValue(std::size_t cycle, bool changed) : cycle_(cycle), changed_(changed) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::unique_ptr<Property> negation() const override;
  std::string describe() const override;

 private:
  std::size_t cycle_;
  bool changed_;
};

/// §5.2.2 delay hypothesis: the signal equals `reference` except that
/// exactly one change instance is delayed by `delay` cycles. Encoded as a
/// one-hot selection over the feasible delayed variants.
class OneChangeDelayed final : public Property {
 public:
  explicit OneChangeDelayed(Signal reference, std::size_t delay = 1);

  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

  /// The feasible delayed variants of the reference signal.
  const std::vector<Signal>& variants() const { return variants_; }

 private:
  Signal reference_;
  std::size_t delay_;
  std::vector<Signal> variants_;
};

/// A variant of the §5.2.2 hypothesis for pipeline-style stalls: the
/// signal equals `reference` except that every change from some cycle c
/// onward arrives `delay` cycles late (a stall shifts the whole suffix,
/// not just one event). Encoded as a one-hot selection over the feasible
/// cut points.
class SuffixDelayed final : public Property {
 public:
  explicit SuffixDelayed(Signal reference, std::size_t delay = 1);

  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

  /// The feasible shifted variants (one per distinct cut point).
  const std::vector<Signal>& variants() const { return variants_; }

 private:
  Signal reference_;
  std::size_t delay_;
  std::vector<Signal> variants_;
};

/// All gaps between consecutive changes are at most `gap` cycles (e.g. a
/// heartbeat signal must keep toggling). Vacuously true for signals with
/// fewer than two changes.
class MaxGap final : public Property {
 public:
  explicit MaxGap(std::size_t gap) : gap_(gap) {}
  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

 private:
  std::size_t gap_;
};

/// Conjunction of several properties.
class Conjunction final : public Property {
 public:
  explicit Conjunction(std::vector<std::unique_ptr<Property>> parts)
      : parts_(std::move(parts)) {}

  bool holds(const Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

 private:
  std::vector<std::unique_ptr<Property>> parts_;
};

}  // namespace tp::core
