#include "timeprint/logger.hpp"

#include <cassert>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tp::core {

LogEntry Logger::log(const Signal& signal) const {
  assert(signal.length() == enc_->m());
  f2::BitVec tp(enc_->width());
  std::size_t k = 0;
  for (std::size_t i = 0; i < signal.length(); ++i) {
    if (signal.has_change(i)) {
      tp ^= enc_->timestamp(i);
      ++k;
    }
  }
  return {std::move(tp), k};
}

std::size_t TraceLog::total_bits() const {
  return entries_.size() * (b_ + counter_bits(m_));
}

std::size_t TraceLog::first_mismatch(const TraceLog& other) const {
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (entries_[i] != other.entries_[i]) return i;
  }
  return size();
}

std::size_t TraceLog::first_count_mismatch(const TraceLog& other) const {
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (entries_[i].k != other.entries_[i].k) return i;
  }
  return size();
}

void TraceLog::save(std::ostream& out) const {
  out << "timeprint-log m=" << m_ << " b=" << b_ << " n=" << entries_.size()
      << '\n';
  for (const LogEntry& e : entries_) {
    out << e.tp.to_string() << ' ' << e.k << '\n';
  }
}

TraceLog TraceLog::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  std::size_t m = 0, b = 0, n = 0;
  int consumed = 0;
  if (std::sscanf(header.c_str(), "timeprint-log m=%zu b=%zu n=%zu%n", &m, &b,
                  &n, &consumed) != 3 ||
      static_cast<std::size_t>(consumed) != header.size()) {
    throw std::runtime_error("TraceLog::load: bad header: " + header);
  }
  if (m == 0 || b == 0) {
    throw std::runtime_error("TraceLog::load: header requires m > 0 and b > 0");
  }
  TraceLog log(m, b);
  for (std::size_t i = 0; i < n; ++i) {
    std::string bits;
    std::size_t k = 0;
    if (!(in >> bits >> k)) {
      throw std::runtime_error("TraceLog::load: truncated log");
    }
    if (bits.size() != b) {
      throw std::runtime_error("TraceLog::load: timeprint width mismatch");
    }
    for (const char c : bits) {
      // BitVec::from_string only asserts on bad characters; a corrupt file
      // must fail in release builds too.
      if (c != '0' && c != '1') {
        throw std::runtime_error("TraceLog::load: bad timeprint bit '" +
                                 std::string(1, c) + "'");
      }
    }
    if (k > m) {
      throw std::runtime_error(
          "TraceLog::load: change count k=" + std::to_string(k) +
          " exceeds trace-cycle length m=" + std::to_string(m));
    }
    log.append({f2::BitVec::from_string(bits), k});
  }
  // The format is exactly n entries; anything else is a corrupt or
  // mislabelled file, not an extended one.
  std::string extra;
  if (in >> extra) {
    throw std::runtime_error("TraceLog::load: trailing garbage after " +
                             std::to_string(n) + " entries: '" + extra + "'");
  }
  return log;
}

StreamingLogger::StreamingLogger(const TimestampEncoding& encoding)
    : enc_(&encoding), log_(encoding.m(), encoding.width()), tp_(encoding.width()) {}

void StreamingLogger::tick(bool change) {
  if (change) {
    tp_ ^= enc_->timestamp(phase_);
    ++k_;
  }
  ++phase_;
  ++cycles_;
  if (phase_ == enc_->m()) {
    log_.append({tp_, k_});
    tp_ = f2::BitVec(enc_->width());
    k_ = 0;
    phase_ = 0;
  }
}

void StreamingLogger::flush() {
  while (phase_ != 0) tick(false);
}

}  // namespace tp::core
