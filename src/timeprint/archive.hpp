#pragma once
// archive.hpp — the postmortem-side timeprint database of Figure 3.
//
// During deployment, log entries stream at a constant rate to a central
// store where "timeprints are stored until they wear out"; when a failure
// is reported, the analyst retrieves the entries covering the suspect time
// window ("Retrieve Timeprint"). This module provides that store: multiple
// named channels (one per traced signal), absolute-time indexing (each
// entry covers m clock cycles of its channel), a bounded retention window
// with wear-out eviction, and round-trippable text serialization.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"

namespace tp::core {

/// One retrieved entry with its provenance.
struct ArchivedEntry {
  LogEntry entry;
  std::uint64_t index = 0;        ///< trace-cycle index within the channel
  std::uint64_t first_cycle = 0;  ///< absolute clock cycle the entry starts at
};

/// A bounded, time-indexed store of log entries for one traced signal.
class TraceChannel {
 public:
  /// `m`/`b` describe the channel's encoding; `capacity` bounds the number
  /// of retained entries (0 = unbounded). When full, the oldest entries
  /// wear out.
  TraceChannel(std::size_t m, std::size_t b, std::size_t capacity = 0);

  /// Append the next trace-cycle's entry (entries arrive in order).
  void append(LogEntry entry);

  /// Number of retained entries.
  std::size_t size() const { return entries_.size(); }

  /// Index of the oldest retained entry (> 0 once wear-out has evicted).
  std::uint64_t first_retained() const { return first_index_; }

  /// Total entries ever appended (retained or worn out).
  std::uint64_t total_appended() const { return first_index_ + entries_.size(); }

  /// The entry for trace-cycle `index`, or nullopt if worn out / future.
  std::optional<ArchivedEntry> at(std::uint64_t index) const;

  /// The entry covering absolute clock cycle `cycle`, or nullopt.
  std::optional<ArchivedEntry> covering_cycle(std::uint64_t cycle) const;

  /// All retained entries overlapping the absolute clock-cycle window
  /// [from_cycle, to_cycle), oldest first.
  std::vector<ArchivedEntry> in_window(std::uint64_t from_cycle,
                                       std::uint64_t to_cycle) const;

  std::size_t m() const { return m_; }
  std::size_t width() const { return b_; }
  std::size_t capacity() const { return capacity_; }

  /// Retained bits (storage accounting; constant per entry by design).
  std::size_t retained_bits() const;

  /// Replace the channel content (deserialization support): the retained
  /// entries start at trace-cycle `first_index`.
  void restore(std::uint64_t first_index, std::vector<LogEntry> entries);

 private:
  std::size_t m_;
  std::size_t b_;
  std::size_t capacity_;
  std::uint64_t first_index_ = 0;
  std::vector<LogEntry> entries_;  // entries_[i] is trace-cycle first_index_+i
};

/// A collection of named channels plus (de)serialization.
class TraceArchive {
 public:
  /// Create (or fetch) a channel. Creating an existing name with different
  /// parameters throws std::invalid_argument.
  TraceChannel& channel(const std::string& name, std::size_t m, std::size_t b,
                        std::size_t capacity = 0);

  /// Fetch an existing channel; nullptr if absent.
  const TraceChannel* find(const std::string& name) const;
  TraceChannel* find(const std::string& name);

  /// Channel names, sorted.
  std::vector<std::string> names() const;

  /// Serialize every channel (retained entries only).
  void save(std::ostream& out) const;

  /// Parse a serialized archive. Throws std::runtime_error on malformed
  /// input.
  static TraceArchive load(std::istream& in);

 private:
  std::map<std::string, TraceChannel> channels_;
};

}  // namespace tp::core
