#include "timeprint/archive.hpp"

#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tp::core {

TraceChannel::TraceChannel(std::size_t m, std::size_t b, std::size_t capacity)
    : m_(m), b_(b), capacity_(capacity) {}

void TraceChannel::append(LogEntry entry) {
  assert(entry.tp.size() == b_);
  assert(entry.k <= m_);
  entries_.push_back(std::move(entry));
  if (capacity_ != 0 && entries_.size() > capacity_) {
    const std::size_t drop = entries_.size() - capacity_;
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<long>(drop));
    first_index_ += drop;
  }
}

std::optional<ArchivedEntry> TraceChannel::at(std::uint64_t index) const {
  if (index < first_index_ || index - first_index_ >= entries_.size()) {
    return std::nullopt;
  }
  return ArchivedEntry{entries_[static_cast<std::size_t>(index - first_index_)],
                       index, index * m_};
}

std::optional<ArchivedEntry> TraceChannel::covering_cycle(
    std::uint64_t cycle) const {
  return at(cycle / m_);
}

std::vector<ArchivedEntry> TraceChannel::in_window(std::uint64_t from_cycle,
                                                   std::uint64_t to_cycle) const {
  std::vector<ArchivedEntry> out;
  if (to_cycle <= from_cycle) return out;
  const std::uint64_t first = from_cycle / m_;
  const std::uint64_t last = (to_cycle - 1) / m_;
  for (std::uint64_t idx = first; idx <= last; ++idx) {
    if (auto e = at(idx)) out.push_back(std::move(*e));
  }
  return out;
}

std::size_t TraceChannel::retained_bits() const {
  return entries_.size() * (b_ + counter_bits(m_));
}

void TraceChannel::restore(std::uint64_t first_index,
                           std::vector<LogEntry> entries) {
  assert(capacity_ == 0 || entries.size() <= capacity_);
  first_index_ = first_index;
  entries_ = std::move(entries);
}

TraceChannel& TraceArchive::channel(const std::string& name, std::size_t m,
                                    std::size_t b, std::size_t capacity) {
  auto it = channels_.find(name);
  if (it != channels_.end()) {
    if (it->second.m() != m || it->second.width() != b) {
      throw std::invalid_argument("TraceArchive: channel '" + name +
                                  "' exists with different parameters");
    }
    return it->second;
  }
  return channels_.emplace(name, TraceChannel(m, b, capacity)).first->second;
}

const TraceChannel* TraceArchive::find(const std::string& name) const {
  auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

TraceChannel* TraceArchive::find(const std::string& name) {
  auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

std::vector<std::string> TraceArchive::names() const {
  std::vector<std::string> out;
  for (const auto& [name, ch] : channels_) out.push_back(name);
  return out;
}

void TraceArchive::save(std::ostream& out) const {
  out << "timeprint-archive channels=" << channels_.size() << '\n';
  for (const auto& [name, ch] : channels_) {
    out << "channel " << name << " m=" << ch.m() << " b=" << ch.width()
        << " cap=" << ch.capacity() << " first=" << ch.first_retained()
        << " n=" << ch.size() << '\n';
    for (std::uint64_t i = ch.first_retained(); i < ch.total_appended(); ++i) {
      const auto e = ch.at(i);
      out << e->entry.tp.to_string() << ' ' << e->entry.k << '\n';
    }
  }
}

TraceArchive TraceArchive::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  std::size_t nchannels = 0;
  if (std::sscanf(header.c_str(), "timeprint-archive channels=%zu", &nchannels) != 1) {
    throw std::runtime_error("TraceArchive::load: bad header: " + header);
  }
  TraceArchive archive;
  for (std::size_t c = 0; c < nchannels; ++c) {
    std::string line;
    std::getline(in, line);
    char name_buf[256];
    std::size_t m = 0, b = 0, cap = 0, n = 0;
    unsigned long long first = 0;
    if (std::sscanf(line.c_str(), "channel %255s m=%zu b=%zu cap=%zu first=%llu n=%zu",
                    name_buf, &m, &b, &cap, &first, &n) != 6) {
      throw std::runtime_error("TraceArchive::load: bad channel line: " + line);
    }
    TraceChannel& ch = archive.channel(name_buf, m, b, cap);
    std::vector<LogEntry> entries;
    entries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string bits;
      std::size_t k = 0;
      if (!(in >> bits >> k)) {
        throw std::runtime_error("TraceArchive::load: truncated channel '" +
                                 std::string(name_buf) + "'");
      }
      if (bits.size() != b) {
        throw std::runtime_error("TraceArchive::load: timeprint width mismatch");
      }
      entries.push_back(LogEntry{f2::BitVec::from_string(bits), k});
    }
    ch.restore(first, std::move(entries));
    in.ignore(1, '\n');
  }
  return archive;
}

}  // namespace tp::core
