#pragma once
// design.hpp — timeprint design-parameter helpers (paper §5.1).
//
// The design space has three knobs: the trace-cycle length m (log rate vs
// average k per trace-cycle), the timestamp width b (ambiguity vs bits
// logged) and the LI depth d (paper fixes d = 4). These helpers compute
// the derived quantities the paper reports: the logging bit-rate R and an
// estimate of the reconstruction ambiguity.

#include <cstddef>

namespace tp::core {

/// Logging bit-rate in bits/second: (b + ceil(log2(m+1))) / m × clock_hz
/// (paper §5.1.1; the counter k needs ceil(log2(m+1)) bits).
double log_rate_bps(std::size_t m, std::size_t b, double clock_hz);

/// The timestamp widths the paper uses for its random-constrained LI-4
/// encodings (Table 1): m=64 -> 13, 128 -> 16, 512 -> 22, 1024 -> 24.
/// Other m fall back to a 2·log2(m)-ish heuristic consistent with those
/// points.
std::size_t paper_width(std::size_t m);

/// Expected number of SR solutions for a random timeprint: C(m, k) / 2^b
/// (each of the C(m, k) weight-k signals hits a uniformly random b-bit
/// timeprint). Values below 1 indicate a likely-unique reconstruction.
double expected_solutions(std::size_t m, std::size_t k, std::size_t b);

}  // namespace tp::core
