#pragma once
// multi.hpp — tracing several on-chip signals in lockstep.
//
// The paper's motivating scenario involves signals exchanged *between*
// modules (chip C1 sends St to chip C2): determining liability needs the
// relative timing of more than one signal. MultiTracer drives one
// agg-log datapath per traced signal off a shared clock and files every
// completed entry into a TraceArchive channel, so the postmortem side can
// retrieve time-aligned entries for any set of signals.
//
// Cross-channel analysis: given per-channel reconstruction sets for the
// same trace-cycle, latency_bounds() computes the tightest interval that
// the worst request→response latency between two channels is guaranteed
// to lie in — over *every* combination of signals that can explain the
// logs. If the upper bound beats the deadline, the deadline was met no
// matter which signals actually occurred (the multi-signal analogue of
// the paper's §3.3 argument).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "timeprint/archive.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// Drives one streaming logger per traced signal off a shared clock.
class MultiTracer {
 public:
  /// Entries are filed into `archive` (must outlive the tracer).
  explicit MultiTracer(TraceArchive& archive) : archive_(&archive) {}

  /// Add a traced signal; the encoding must outlive the tracer. All
  /// channels must share the same trace-cycle length m (one clock).
  /// Returns the channel index.
  std::size_t add_channel(const std::string& name, const TimestampEncoding& encoding,
                          std::size_t capacity = 0);

  /// Number of channels.
  std::size_t channels() const { return chans_.size(); }

  /// Advance one clock cycle; `changes[i]` is channel i's change bit.
  void tick(const std::vector<bool>& changes);

  /// Shared cycle count.
  std::uint64_t cycles() const { return cycles_; }

  /// Channel name by index.
  const std::string& name(std::size_t channel) const { return chans_[channel].name; }

 private:
  struct Chan {
    std::string name;
    StreamingLogger logger;
    TraceChannel* store;
    std::size_t filed = 0;
  };

  TraceArchive* archive_;
  std::vector<Chan> chans_;
  std::uint64_t cycles_ = 0;
  std::size_t m_ = 0;
};

/// Worst request→response latency of one signal pair: the maximum over
/// request changes a of (first response change >= a) - a. nullopt if some
/// request is never answered within the window (or there are no requests,
/// which has no well-defined worst case: we return 0 latency).
std::optional<std::size_t> worst_latency(const Signal& requests,
                                         const Signal& responses);

/// Bounds of the worst latency over every cross pair of candidate
/// request/response signals. `unanswered` reports whether some pair leaves
/// a request without a response (i.e. the latency bound does not hold
/// unconditionally).
struct LatencyBounds {
  std::size_t min = 0;
  std::size_t max = 0;
  bool unanswered = false;
};

LatencyBounds latency_bounds(const std::vector<Signal>& request_candidates,
                             const std::vector<Signal>& response_candidates);

}  // namespace tp::core
