#pragma once
// joint.hpp — joint reconstruction across adjacent trace-cycles.
//
// Events do not respect trace-cycle boundaries: in the paper's own CAN
// experiment the disputed frame may straddle two windows. A joint
// reconstruction treats n consecutive log entries as one SAT query over
// n·m cycle variables — each window contributes its own XOR system and
// cardinality constraint, while temporal properties range over the
// concatenated span. This extends the paper's single-window SR problem to
// event patterns crossing boundaries.

#include <vector>

#include "timeprint/reconstruct.hpp"

namespace tp::core {

/// Reconstructs signals over a span of consecutive trace-cycles.
class JointReconstructor {
 public:
  /// The encoding must outlive the reconstructor; it is shared by every
  /// trace-cycle (back-to-back logging reuses the timestamp ROM).
  explicit JointReconstructor(const TimestampEncoding& encoding)
      : enc_(&encoding) {}

  /// Register a property over the concatenated span of n·m cycles (cycle
  /// index = trace_cycle_index * m + offset).
  void add_property(const Property& property) { properties_.push_back(&property); }

  /// Enumerate concatenated signals (length entries.size() · m) that
  /// explain every log entry simultaneously, subject to the registered
  /// span properties.
  ReconstructionResult reconstruct(const std::vector<LogEntry>& entries,
                                   const ReconstructionOptions& options = {}) const;

 private:
  const TimestampEncoding* enc_;
  std::vector<const Property*> properties_;
};

}  // namespace tp::core
