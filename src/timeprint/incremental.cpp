#include "timeprint/incremental.hpp"

#include <cassert>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/allsat.hpp"
#include "sat/cardinality.hpp"
#include "sat/xor_to_cnf.hpp"
#include "timeprint/verify.hpp"

namespace tp::core {

using sat::Lit;
using sat::mk_lit;
using sat::SolverInterface;
using sat::Status;
using sat::Var;

namespace {

// stats() is cumulative over the solver's lifetime; an entry's effort is
// the difference against the snapshot taken before its solve.
sat::SolverStats stats_delta(const sat::SolverStats& after,
                             const sat::SolverStats& before) {
  sat::SolverStats d;
  d.conflicts = after.conflicts - before.conflicts;
  d.decisions = after.decisions - before.decisions;
  d.propagations = after.propagations - before.propagations;
  d.xor_propagations = after.xor_propagations - before.xor_propagations;
  d.restarts = after.restarts - before.restarts;
  d.learnt_clauses = after.learnt_clauses - before.learnt_clauses;
  d.removed_clauses = after.removed_clauses - before.removed_clauses;
  d.minimized_literals = after.minimized_literals - before.minimized_literals;
  d.gauss_runs = after.gauss_runs - before.gauss_runs;
  d.inprocess_rounds = after.inprocess_rounds - before.inprocess_rounds;
  return d;
}

}  // namespace

TemplateReconstructor::TemplateReconstructor(
    const TimestampEncoding& encoding, std::vector<const Property*> properties,
    const ReconstructionOptions& options, std::size_t k_max)
    : enc_(&encoding),
      properties_(std::move(properties)),
      options_(options),
      k_max_(k_max == 0 ? encoding.m() : k_max),
      presolve_(std::make_shared<const F2Presolve>(encoding)) {
  options_.validate();
  build();
}

TemplateReconstructor::TemplateReconstructor(const Reconstructor& reconstructor,
                                             const ReconstructionOptions& options,
                                             std::size_t k_max)
    : TemplateReconstructor(reconstructor.encoding(), reconstructor.properties(),
                            options, k_max) {}

TemplateReconstructor::TemplateReconstructor(const TemplateReconstructor& other)
    : enc_(other.enc_),
      properties_(other.properties_),
      options_(other.options_),
      k_max_(other.k_max_),
      presolve_(other.presolve_),
      presolved_base_(other.presolved_base_),
      solver_(other.solver_->clone()),
      cycle_vars_(other.cycle_vars_),
      selectors_(other.selectors_),
      card_outs_(other.card_outs_),
      encode_ok_(other.encode_ok_) {}

std::unique_ptr<TemplateReconstructor> TemplateReconstructor::clone() const {
  return std::unique_ptr<TemplateReconstructor>(new TemplateReconstructor(*this));
}

void TemplateReconstructor::build() {
  static obs::Counter& builds =
      obs::MetricsRegistry::global().counter("incremental.template_builds");

  const std::size_t m = enc_->m();
  const std::size_t b = enc_->width();

  // A template master's formula is solved thousands of times, so the
  // front-end trade-off shifts: a BVE step that *grows* the clause count
  // taxes every future propagation for a one-time variable saving. Run
  // the preprocessor NiVER-style — strictly shrinking eliminations only.
  ReconstructionOptions master_options = options_;
  master_options.preprocess_bve_growth = 0;
  solver_ = master_options.make_solver();
  cycle_vars_.clear();
  selectors_.clear();
  card_outs_.clear();
  bool ok = true;

  presolved_base_ = options_.presolve && options_.proof == nullptr;
  if (presolved_base_) {
    // Substituted base over the echelon factorization: one selector XOR
    // row per RREF row (rank(A) of them instead of b), each defining its
    // pivot variable over the free-column variables —
    // pivot ⊕ (free support) ⊕ s_r = 0, so assuming s_r = (T·TP)_r sets
    // the row's constant per entry. A pivot row with empty free support
    // degrades to pivot = s_r, so the selector itself serves as the cycle
    // variable (one variable and one XOR row saved). The b - rank(A)
    // dependent rows never reach the solver: their constraint is exactly
    // the per-entry consistency check on the transformed timeprint.
    const f2::Echelonizer& ech = presolve_->echelon();
    cycle_vars_.assign(m, 0);
    for (std::size_t f : ech.free_cols()) cycle_vars_[f] = solver_->new_var();
    selectors_.reserve(ech.rank());
    for (std::size_t r = 0; r < ech.rank(); ++r) {
      const f2::BitVec& row = ech.reduced_rows()[r];
      const std::size_t pivot = ech.pivot_cols()[r];
      std::vector<Var> xr;
      for (std::size_t f : ech.free_cols()) {
        if (row.get(f)) xr.push_back(cycle_vars_[f]);
      }
      const Var s = solver_->new_var();
      selectors_.push_back(s);
      if (xr.empty()) {
        cycle_vars_[pivot] = s;
        continue;
      }
      const Var y = solver_->new_var();
      cycle_vars_[pivot] = y;
      xr.push_back(y);
      xr.push_back(s);
      if (options_.native_xor) {
        ok = solver_->add_xor(std::move(xr), false) && ok;
      } else {
        ok = sat::add_xor_as_cnf(*solver_, xr, false) && ok;
      }
    }
  } else {
    cycle_vars_.reserve(m);
    for (std::size_t i = 0; i < m; ++i) cycle_vars_.push_back(solver_->new_var());

    // Linear system with per-row selector RHS: parity(row_j) = s_j, encoded
    // as (row_j ∪ {s_j}) with constant RHS 0. An all-zero row degrades to
    // the unit clause ~s_j — an entry whose timeprint sets that bit then
    // fails at the assumption level, the correct (conditional) Unsat.
    selectors_.reserve(b);
    for (std::size_t j = 0; j < b; ++j) {
      std::vector<Var> row;
      for (std::size_t i = 0; i < m; ++i) {
        if (enc_->timestamp(i).get(j)) row.push_back(cycle_vars_[i]);
      }
      const Var s = solver_->new_var();
      selectors_.push_back(s);
      row.push_back(s);
      if (options_.native_xor) {
        ok = solver_->add_xor(std::move(row), false) && ok;
      } else {
        ok = sat::add_xor_as_cnf(*solver_, row, false) && ok;
      }
    }
  }

  // One shared totalizer to k_max; per-entry |x| = k becomes the two
  // assumptions o[k-1] ("at least k") and ~o[k] ("not at least k+1").
  // cap = k_max+1 so the upper-bound literal exists for k = k_max.
  std::vector<Lit> lits;
  lits.reserve(m);
  for (Var v : cycle_vars_) lits.push_back(mk_lit(v));
  const std::size_t cap = k_max_ + 1 < m ? k_max_ + 1 : m;
  card_outs_ = sat::totalizer_outputs(*solver_, lits, static_cast<int>(cap));

  for (const Property* p : properties_) {
    ok = p->encode(*solver_, cycle_vars_) && ok;
  }

  // Hard-freeze only the *assumption-bearing* variables: per-entry
  // assumptions land on the selectors and the totalizer outputs. Cycle
  // variables stay eliminable — a preprocessing front-end restores them
  // on demand when an AllSAT blocking clause mentions one, and per-entry
  // models are reconstructed through the stashed witness clauses, so
  // signal sets stay bit-identical to the classic path. (Guard literals
  // are created per entry, after the build, so they are never candidates
  // for elimination in the first place.)
  for (Var s : selectors_) solver_->freeze(s);
  for (Lit o : card_outs_) solver_->freeze(o.var());

  // Preprocess-once: finalize the master now, so per-entry solves (and
  // every clone() this template serves as a cache master for) start from
  // the already-preprocessed, densely renumbered formula.
  solver_->prepare();

  std::int64_t eliminated = 0;
  for (Var v : cycle_vars_) {
    if (solver_->var_eliminated(v)) ++eliminated;
  }
  static obs::Gauge& cycle_elim = obs::MetricsRegistry::global().gauge(
      "incremental.cycle_vars_eliminated");
  cycle_elim.set(eliminated);

  encode_ok_ = ok && solver_->okay();
  ++stats_.builds;
  builds.add(1);
}

ReconstructionResult TemplateReconstructor::reconstruct(const LogEntry& entry) {
  static obs::Counter& learnt_retained =
      obs::MetricsRegistry::global().counter("incremental.learnt_retained");

  assert(entry.tp.size() == enc_->width());
  const std::size_t m = enc_->m();

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  obs::Tracer::Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->span(
        "sr.reconstruct",
        {{"m", static_cast<std::uint64_t>(m)},
         {"k", static_cast<std::uint64_t>(entry.k)},
         {"properties", static_cast<std::uint64_t>(properties_.size())},
         {"engine", "template"}});
  }

  ++stats_.entries;
  if (stats_.entries > 1) {
    const auto retained = static_cast<std::int64_t>(solver_->num_learnts());
    stats_.learnt_retained += retained;
    learnt_retained.add(retained);
  }

  // A change count above k_max needs totalizer outputs the template never
  // built: rebuild once at the safe maximum and keep serving from there.
  // k > m needs no solver at all — the preimage is empty.
  if (entry.k > m) {
    ReconstructionResult result;
    result.final_status = Status::Unsat;
    result.num_vars = solver_->num_vars();
    result.num_clauses = solver_->num_clauses();
    result.num_xors = solver_->num_xors();
    result.seconds_total =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (options_.tracer != nullptr) options_.tracer->event("sr.trivial_unsat");
    if (span.active()) {
      span.add("signals", std::uint64_t{0});
      span.add("status", sat::to_string(result.final_status));
      span.finish();
    }
    return result;
  }
  // Presolved fast paths (mirroring Reconstructor::reconstruct): an
  // inconsistent linear system has a complete empty preimage, and a
  // small-nullity encoding is decoded by walking the affine solution
  // space directly — neither touches the solver.
  F2Presolve::Analysis analysis;
  if (presolved_base_) {
    analysis = presolve_->analyze(entry.tp);
    if (!analysis.consistent) {
      ReconstructionResult result;
      result.final_status = Status::Unsat;
      result.num_vars = solver_->num_vars();
      result.num_clauses = solver_->num_clauses();
      result.num_xors = solver_->num_xors();
      result.seconds_total =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (options_.tracer != nullptr) options_.tracer->event("sr.presolve_unsat");
      if (span.active()) {
        span.add("signals", std::uint64_t{0});
        span.add("status", sat::to_string(result.final_status));
        span.finish();
      }
      return result;
    }
    if (presolve_->nullity() <= options_.presolve_enum_limit) {
      F2Presolve::Decoded dec = presolve_->decode_by_enumeration(
          analysis, entry.k, properties_, options_.max_solutions);
      ReconstructionResult result;
      result.signals = std::move(dec.signals);
      result.final_status = dec.truncated ? Status::Sat : Status::Unsat;
      result.num_vars = solver_->num_vars();
      result.num_clauses = solver_->num_clauses();
      result.num_xors = solver_->num_xors();
      result.seconds_total =
          std::chrono::duration<double>(Clock::now() - start).count();
      result.seconds_to_each.assign(result.signals.size(),
                                    result.seconds_total);
      if (options_.verify_models) {
        require_verified(*enc_, entry, result.signals, properties_);
      }
      if (options_.tracer != nullptr) {
        options_.tracer->event("sr.presolve_decode");
      }
      if (span.active()) {
        span.add("signals", static_cast<std::uint64_t>(result.signals.size()));
        span.add("status", sat::to_string(result.final_status));
        span.finish();
      }
      return result;
    }
  }

  if (entry.k > k_max_) {
    k_max_ = m;
    build();
    // Rebuild edge of the inprocessing schedule: tighten the fresh base
    // once before the stream resumes.
    solver_->inprocess();
    ++stats_.inprocess_rounds;
  }

  ReconstructionResult result;
  result.num_vars = solver_->num_vars();
  result.num_clauses = solver_->num_clauses();
  result.num_xors = solver_->num_xors();

  if (!encode_ok_) {
    // The base itself (properties vs. structure) is contradictory: every
    // entry has an empty, complete preimage.
    result.final_status = Status::Unsat;
    result.seconds_total =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (options_.tracer != nullptr) options_.tracer->event("sr.trivial_unsat");
    if (span.active()) {
      span.add("signals", std::uint64_t{0});
      span.add("status", sat::to_string(result.final_status));
      span.finish();
    }
    return result;
  }

  sat::AllSatOptions as;
  as.max_models = options_.max_solutions;
  as.limits = options_.limits;
  as.tracer = options_.tracer;
  as.fixed_weight = entry.k;
  as.assumptions.reserve(selectors_.size() + 2);
  if (presolved_base_) {
    // Selector r carries RREF row r's constant: bit r of the transformed
    // timeprint T·TP.
    for (std::size_t r = 0; r < selectors_.size(); ++r) {
      as.assumptions.push_back(
          Lit(selectors_[r], /*negated=*/!analysis.transformed.get(r)));
    }
  } else {
    for (std::size_t j = 0; j < selectors_.size(); ++j) {
      as.assumptions.push_back(Lit(selectors_[j], /*negated=*/!entry.tp.get(j)));
    }
  }
  if (entry.k >= 1) as.assumptions.push_back(card_outs_[entry.k - 1]);
  if (entry.k < card_outs_.size()) as.assumptions.push_back(~card_outs_[entry.k]);

  // Fresh guard per entry; retired below so this entry's blocking clauses
  // cannot constrain the next one.
  const Lit guard = mk_lit(solver_->new_var());
  as.guard = guard;

  const sat::SolverStats before = solver_->stats();
  const sat::AllSatResult models =
      sat::enumerate_models(*solver_, cycle_vars_, as);
  // Retire the entry: fixing ¬guard root-satisfies this run's blocking
  // clauses (and any learnt clause carrying ¬guard); simplify() then sweeps
  // that ballast out of the databases so the solver's propagation cost
  // stays flat over arbitrarily long entry streams. Every
  // inprocess_interval entries the sweep is upgraded to a budgeted
  // inprocess() round (backward subsumption + failed-literal probing on
  // top of the vivifying simplify()).
  solver_->add_clause({~guard});
  const std::uint32_t interval = options_.inprocess_interval;
  if (interval != 0 && stats_.entries % interval == 0) {
    solver_->inprocess();
    ++stats_.inprocess_rounds;
  } else {
    solver_->simplify();
  }
  result.stats = stats_delta(solver_->stats(), before);

  result.final_status = models.final_status;
  result.seconds_to_each = models.seconds_to_model;
  result.seconds_total =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& model : models.models) {
    Signal s(m);
    for (std::size_t i = 0; i < model.size(); ++i) {
      if (model[i]) s.set_change(i);
    }
    result.signals.push_back(std::move(s));
  }
  if (options_.verify_models) {
    require_verified(*enc_, entry, result.signals, properties_);
  }

  if (span.active()) {
    span.add("signals", static_cast<std::uint64_t>(result.signals.size()));
    span.add("status", sat::to_string(result.final_status));
    span.finish();
  }
  return result;
}

}  // namespace tp::core
