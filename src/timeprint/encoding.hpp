#pragma once
// encoding.hpp — timestamp encodings TS : [1..m] -> F2^b.
//
// An encoding assigns each clock cycle of a trace-cycle a b-bit timestamp.
// The choice governs the ambiguity of the logging abstraction (paper §4.3):
// linearly independent timestamps (one-hot) give a unique reconstruction
// but need b = m bits; compressed timestamps shrink the log but admit more
// solutions of A·x = TP. The paper's sweet spot is "linear independence up
// to depth 4" (LI-4): every subset of <= 4 timestamps is independent, i.e.
// any two signals differing in <= 4 change instances stay distinguishable.
//
// Two LI-d constructions from the paper (§5.1.2) are provided:
//  * random-constrained — draw random b-bit vectors, keep those that
//    preserve LI-d;
//  * incremental — lexicographic greedy ("start from the smallest value,
//    increment, keep if LI-d still holds"), a greedy lexicode.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "f2/bitvec.hpp"
#include "f2/matrix.hpp"

namespace tp::core {

/// How an encoding's timestamps were constructed.
enum class EncodingScheme {
  OneHot,             ///< TS(i) = e_i; b = m, zero ambiguity
  Binary,             ///< TS(i) = binary(i+1); b = ceil(log2(m+1)), maximal compression
  RandomConstrained,  ///< random vectors filtered through the LI-d check
  Incremental,        ///< lexicographic greedy lexicode under LI-d
};

/// Human-readable scheme name.
const char* to_string(EncodingScheme scheme);

/// A concrete timestamp encoding for trace-cycles of length m with b-bit
/// timestamps. Immutable after construction.
class TimestampEncoding {
 public:
  /// One-hot encoding: b = m, fully unambiguous (paper §4.3's "ideal" end
  /// of the trade-off).
  static TimestampEncoding one_hot(std::size_t m);

  /// Binary encoding of the cycle index (i+1 so that no timestamp is the
  /// zero vector): b = ceil(log2(m+1)). LI-1 only — maximal ambiguity.
  static TimestampEncoding binary(std::size_t m);

  /// Random-constrained LI-depth encoding with the given width. Draws
  /// random b-bit vectors and keeps those preserving LI-depth; throws
  /// std::runtime_error if m timestamps cannot be found within
  /// `max_attempts` draws (width too small).
  static TimestampEncoding random_constrained(std::size_t m, std::size_t b,
                                              std::size_t depth, std::uint64_t seed,
                                              std::uint64_t max_attempts = 1u << 22);

  /// Incremental (lexicographic greedy) LI-depth encoding with the given
  /// width: starts from value 1 and increments, keeping each value that
  /// preserves LI-depth. Throws std::runtime_error if the b-bit space is
  /// exhausted before m timestamps are found.
  static TimestampEncoding incremental(std::size_t m, std::size_t b,
                                       std::size_t depth);

  /// Smallest width for which the incremental construction reaches m
  /// timestamps (tries growing b until success).
  static TimestampEncoding incremental_auto(std::size_t m, std::size_t depth);

  /// Grows b until the random-constrained construction succeeds.
  static TimestampEncoding random_constrained_auto(std::size_t m, std::size_t depth,
                                                   std::uint64_t seed);

  /// Wrap explicit timestamp vectors (all of equal dimension). Used for
  /// fixed encodings such as the paper's Figure 4 example; `depth` records
  /// the LI depth the caller claims (verify with verify_li()).
  static TimestampEncoding from_vectors(std::vector<f2::BitVec> timestamps,
                                        std::size_t depth);

  /// Trace-cycle length m.
  std::size_t m() const { return timestamps_.size(); }

  /// Timestamp width b.
  std::size_t width() const { return width_; }

  /// LI depth the construction guaranteed (0 for Binary: only nonzero).
  std::size_t depth() const { return depth_; }

  /// The construction scheme.
  EncodingScheme scheme() const { return scheme_; }

  /// TS(i) for 0-based cycle i.
  const f2::BitVec& timestamp(std::size_t i) const { return timestamps_[i]; }

  /// All timestamps, cycle order.
  const std::vector<f2::BitVec>& timestamps() const { return timestamps_; }

  /// The matrix A = [TS(1) | ... | TS(m)] of the reconstruction problem.
  f2::Matrix to_matrix() const { return f2::Matrix::from_columns(timestamps_); }

  /// Exhaustively re-verify that every subset of size <= depth is linearly
  /// independent (test support; O(m) with the pairwise-XOR trick).
  bool verify_li(std::size_t depth) const;

  /// Bits logged per trace-cycle: b for the timeprint plus ceil(log2(m+1))
  /// for the change counter k (paper §3.1).
  std::size_t bits_per_trace_cycle() const;

  /// Logging bit-rate in bits/second for a traced signal clocked at
  /// `clock_hz` (paper §5.1.1: (b + log m) / m × clock rate).
  double log_rate_bps(double clock_hz) const;

 private:
  TimestampEncoding(std::vector<f2::BitVec> timestamps, std::size_t width,
                    std::size_t depth, EncodingScheme scheme)
      : timestamps_(std::move(timestamps)),
        width_(width),
        depth_(depth),
        scheme_(scheme) {}

  std::vector<f2::BitVec> timestamps_;
  std::size_t width_;
  std::size_t depth_;
  EncodingScheme scheme_;
};

/// Number of bits needed for the change counter k in [0..m]:
/// ceil(log2(m+1)).
std::size_t counter_bits(std::size_t m);

}  // namespace tp::core
