#include "timeprint/metrics.hpp"

#include <cmath>

#include "f2/matrix.hpp"
#include "timeprint/design.hpp"

namespace tp::core {

EncodingStats encoding_stats(const TimestampEncoding& encoding) {
  EncodingStats s;
  s.m = encoding.m();
  s.b = encoding.width();
  s.rank = f2::Matrix::from_columns(encoding.timestamps()).rank();

  s.li_depth = 0;
  for (std::size_t d = 1; d <= 4; ++d) {
    if (encoding.verify_li(d)) {
      s.li_depth = d;
    } else {
      break;
    }
  }

  s.density = static_cast<double>(s.m) / std::exp2(static_cast<double>(s.b));

  // Like design.hpp's expected_solutions but with the actual rank.
  double log2_binom = 0.0;
  const std::size_t k = 4;
  for (std::size_t i = 0; i < k && i < s.m; ++i) {
    log2_binom += std::log2(static_cast<double>(s.m - i)) -
                  std::log2(static_cast<double>(i + 1));
  }
  s.expected_solutions_k4 = std::exp2(log2_binom - static_cast<double>(s.rank));

  s.min_timestamp_weight = s.b + 1;
  for (const auto& ts : encoding.timestamps()) {
    s.min_timestamp_weight = std::min(s.min_timestamp_weight, ts.popcount());
  }
  s.min_pair_distance = s.b + 1;
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t j = i + 1; j < s.m; ++j) {
      const std::size_t w = (encoding.timestamp(i) ^ encoding.timestamp(j)).popcount();
      s.min_pair_distance = std::min(s.min_pair_distance, w);
    }
  }
  return s;
}

}  // namespace tp::core
