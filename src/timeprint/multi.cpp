#include "timeprint/multi.hpp"

#include <cassert>
#include <stdexcept>

namespace tp::core {

std::size_t MultiTracer::add_channel(const std::string& name,
                                     const TimestampEncoding& encoding,
                                     std::size_t capacity) {
  if (cycles_ != 0) {
    throw std::logic_error("MultiTracer: add channels before streaming");
  }
  if (m_ == 0) {
    m_ = encoding.m();
  } else if (encoding.m() != m_) {
    throw std::invalid_argument(
        "MultiTracer: all channels must share the trace-cycle length");
  }
  Chan c{name, StreamingLogger(encoding),
         &archive_->channel(name, encoding.m(), encoding.width(), capacity), 0};
  chans_.push_back(std::move(c));
  return chans_.size() - 1;
}

void MultiTracer::tick(const std::vector<bool>& changes) {
  assert(changes.size() == chans_.size());
  for (std::size_t i = 0; i < chans_.size(); ++i) {
    Chan& c = chans_[i];
    c.logger.tick(changes[i]);
    while (c.logger.log().size() > c.filed) {
      c.store->append(c.logger.log()[c.filed++]);
    }
  }
  ++cycles_;
}

std::optional<std::size_t> worst_latency(const Signal& requests,
                                         const Signal& responses) {
  assert(requests.length() == responses.length());
  std::size_t worst = 0;
  for (std::size_t a : requests.change_cycles()) {
    bool answered = false;
    for (std::size_t b = a; b < responses.length(); ++b) {
      if (responses.has_change(b)) {
        worst = std::max(worst, b - a);
        answered = true;
        break;
      }
    }
    if (!answered) return std::nullopt;
  }
  return worst;
}

LatencyBounds latency_bounds(const std::vector<Signal>& request_candidates,
                             const std::vector<Signal>& response_candidates) {
  LatencyBounds bounds;
  bool first = true;
  for (const Signal& req : request_candidates) {
    for (const Signal& resp : response_candidates) {
      const auto w = worst_latency(req, resp);
      if (!w.has_value()) {
        bounds.unanswered = true;
        continue;
      }
      if (first) {
        bounds.min = bounds.max = *w;
        first = false;
      } else {
        bounds.min = std::min(bounds.min, *w);
        bounds.max = std::max(bounds.max, *w);
      }
    }
  }
  return bounds;
}

}  // namespace tp::core
