#include "timeprint/reconstruct.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/xor_to_cnf.hpp"
#include "timeprint/verify.hpp"

namespace tp::core {

using sat::Lit;
using sat::mk_lit;
using sat::SolverInterface;
using sat::Status;
using sat::Var;

void ReconstructionOptions::validate() const {
  if (use_gauss && !native_xor) {
    throw std::invalid_argument(
        "ReconstructionOptions: use_gauss requires native_xor (the Gaussian "
        "engine operates on native XOR rows, not their CNF translation)");
  }
  if ((gauss_gate != 0 || gauss_max_unassigned != 0) && !use_gauss) {
    throw std::invalid_argument(
        "ReconstructionOptions: gauss_gate is set but use_gauss is false");
  }
  if (max_solutions == 0) {
    throw std::invalid_argument(
        "ReconstructionOptions: max_solutions must be at least 1");
  }
  if (proof != nullptr && use_gauss) {
    throw std::invalid_argument(
        "ReconstructionOptions: proof logging is incompatible with use_gauss "
        "(DRAT cannot express Gaussian row-combination reasoning)");
  }
  if (solver_backend == sat::SolverBackend::Portfolio && portfolio_members == 0) {
    throw std::invalid_argument(
        "ReconstructionOptions: a portfolio needs at least one member");
  }
}

sat::SolverOptions ReconstructionOptions::solver_options() const {
  sat::SolverOptions so;
  static_cast<sat::SolverConfig&>(so) = *this;  // the shared knob slice
  // Deprecated alias: a non-zero gauss_gate overrides the inherited field.
  if (gauss_gate != 0) so.gauss_max_unassigned = gauss_gate;
  return so;
}

std::unique_ptr<sat::SolverInterface> ReconstructionOptions::make_solver() const {
  sat::PortfolioOptions popts;
  popts.members = portfolio_members;
  popts.diversity = portfolio_diversity;
  return sat::SolverFactory::make(solver_backend, solver_options(), popts);
}

const char* to_string(CheckVerdict v) {
  switch (v) {
    case CheckVerdict::HoldsForAll: return "holds-for-all";
    case CheckVerdict::ViolatedBySome: return "violated-by-some";
    case CheckVerdict::Unknown: return "unknown";
  }
  return "?";
}

bool Reconstructor::encode_base(SolverInterface& solver, std::vector<Var>& cycle_vars,
                                const LogEntry& entry,
                                const ReconstructionOptions& options) const {
  const std::size_t m = enc_->m();
  const std::size_t b = enc_->width();
  assert(entry.tp.size() == b);

  cycle_vars.clear();
  cycle_vars.reserve(m);
  for (std::size_t i = 0; i < m; ++i) cycle_vars.push_back(solver.new_var());

  bool ok = true;

  // Linear system A·x = TP: one XOR clause per timeprint bit.
  for (std::size_t j = 0; j < b; ++j) {
    std::vector<Var> row;
    for (std::size_t i = 0; i < m; ++i) {
      if (enc_->timestamp(i).get(j)) row.push_back(cycle_vars[i]);
    }
    const bool rhs = entry.tp.get(j);
    if (options.native_xor) {
      ok = solver.add_xor(std::move(row), rhs) && ok;
    } else {
      ok = sat::add_xor_as_cnf(solver, row, rhs) && ok;
    }
  }

  // Cardinality |x| = k.
  std::vector<Lit> lits;
  lits.reserve(m);
  for (Var v : cycle_vars) lits.push_back(mk_lit(v));
  ok = sat::encode_exactly(solver, lits, static_cast<int>(entry.k),
                           options.card_encoding) &&
       ok;

  // Known (verified) properties prune the space.
  for (const Property* p : properties_) ok = p->encode(solver, cycle_vars) && ok;

  return ok;
}

bool Reconstructor::encode_presolved(SolverInterface& solver,
                                     std::vector<Var>& free_vars,
                                     const LogEntry& entry,
                                     const ReconstructionOptions& options,
                                     const F2Presolve::Analysis& analysis) const {
  const f2::Echelonizer& ech = presolve_->echelon();
  const std::size_t m = enc_->m();
  constexpr Var kNoVar = -1;
  std::vector<Var> cycle_vars(m, kNoVar);

  free_vars.clear();
  free_vars.reserve(ech.nullity());
  for (std::size_t f : ech.free_cols()) {
    const Var v = solver.new_var();
    cycle_vars[f] = v;
    free_vars.push_back(v);
  }

  bool ok = true;
  // Properties constrain the full cycle array, so with any registered the
  // constant pivots must exist as (unit-fixed) variables; without, they
  // are eliminated outright and only shift the cardinality bound.
  const bool need_all_vars = !properties_.empty();
  std::size_t fixed_ones = 0;
  for (std::size_t r = 0; r < ech.rank(); ++r) {
    const f2::BitVec& row = ech.reduced_rows()[r];
    const std::size_t pivot = ech.pivot_cols()[r];
    const bool c = analysis.transformed.get(r);
    std::vector<Var> xr;
    for (std::size_t f : ech.free_cols()) {
      if (row.get(f)) xr.push_back(cycle_vars[f]);
    }
    if (xr.empty() && !need_all_vars) {
      if (c) ++fixed_ones;  // pivot forced to 1: pre-counted change
      continue;
    }
    const Var y = solver.new_var();
    cycle_vars[pivot] = y;
    if (xr.empty()) {
      ok = solver.add_clause({Lit(y, /*negated=*/!c)}) && ok;
    } else {
      xr.push_back(y);
      if (options.native_xor) {
        ok = solver.add_xor(std::move(xr), c) && ok;
      } else {
        ok = sat::add_xor_as_cnf(solver, xr, c) && ok;
      }
    }
  }
  if (fixed_ones > entry.k) return false;  // forced changes already exceed k

  // Cardinality over the variables that exist; eliminated constant-1
  // pivots are already-spent changes, so the bound shrinks by fixed_ones.
  std::vector<Lit> lits;
  lits.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (cycle_vars[i] != kNoVar) lits.push_back(mk_lit(cycle_vars[i]));
  }
  ok = sat::encode_exactly(solver, lits, static_cast<int>(entry.k - fixed_ones),
                           options.card_encoding) &&
       ok;

  for (const Property* p : properties_) ok = p->encode(solver, cycle_vars) && ok;
  return ok;
}

ReconstructionResult Reconstructor::reconstruct(
    const LogEntry& entry, const ReconstructionOptions& options) const {
  options.validate();
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("sr.reconstructions");
  static obs::Counter& signals_total =
      obs::MetricsRegistry::global().counter("sr.signals");
  static obs::Timing& run_time =
      obs::MetricsRegistry::global().timing("sr.reconstruct_seconds");

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  obs::Tracer::Span span;
  if (options.tracer != nullptr) {
    span = options.tracer->span(
        "sr.reconstruct",
        {{"m", static_cast<std::uint64_t>(enc_->m())},
         {"k", static_cast<std::uint64_t>(entry.k)},
         {"properties", static_cast<std::uint64_t>(properties_.size())}});
  }

  ReconstructionResult result;
  auto finish = [&](ReconstructionResult& r) {
    runs.add(1);
    signals_total.add(static_cast<std::int64_t>(r.signals.size()));
    run_time.observe(r.seconds_total);
    if (span.active()) {
      span.add("signals", static_cast<std::uint64_t>(r.signals.size()));
      span.add("status", sat::to_string(r.final_status));
      span.finish();
    }
  };

  // The certified path keeps the classic encoding: every verdict must be
  // derivable inside the solver for the DRAT stream to check out.
  const bool use_presolve = options.presolve && options.proof == nullptr;
  F2Presolve::Analysis analysis;
  if (use_presolve) {
    analysis = presolve_->analyze(entry.tp);
    if (!analysis.consistent) {
      // A·x = TP has no solution even without the weight constraint: the
      // preimage is empty and complete, no solver needed.
      result.final_status = Status::Unsat;
      result.seconds_total =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (options.tracer != nullptr) options.tracer->event("sr.presolve_unsat");
      finish(result);
      return result;
    }
    if (presolve_->nullity() <= options.presolve_enum_limit) {
      // The whole affine solution space is small: enumerate it directly,
      // filtering on |x| = k and the properties. Zero solver variables.
      F2Presolve::Decoded dec = presolve_->decode_by_enumeration(
          analysis, entry.k, properties_, options.max_solutions);
      result.signals = std::move(dec.signals);
      result.final_status = dec.truncated ? Status::Sat : Status::Unsat;
      result.seconds_total =
          std::chrono::duration<double>(Clock::now() - start).count();
      result.seconds_to_each.assign(result.signals.size(), result.seconds_total);
      if (options.verify_models) {
        require_verified(*enc_, entry, result.signals, properties_);
      }
      if (options.tracer != nullptr) {
        options.tracer->event(
            "sr.presolve_decode",
            {{"signals", static_cast<std::uint64_t>(result.signals.size())}});
      }
      finish(result);
      return result;
    }
  }

  const std::unique_ptr<SolverInterface> solver_ptr = options.make_solver();
  SolverInterface& solver = *solver_ptr;
  std::vector<Var> projection;  // enumeration projection (cycle or free vars)
  obs::Tracer::Span encode_span;
  if (options.tracer != nullptr) encode_span = options.tracer->span("sr.encode");
  const bool encode_ok =
      use_presolve
          ? encode_presolved(solver, projection, entry, options, analysis)
          : encode_base(solver, projection, entry, options);
  if (encode_span.active()) {
    encode_span.add("ok", encode_ok);
    encode_span.add("presolved", use_presolve);
    encode_span.add("vars", static_cast<std::int64_t>(solver.num_vars()));
    encode_span.add("clauses", static_cast<std::uint64_t>(solver.num_clauses()));
    encode_span.add("xors", static_cast<std::uint64_t>(solver.num_xors()));
    encode_span.finish();
  }

  result.num_vars = solver.num_vars();
  result.num_clauses = solver.num_clauses();
  result.num_xors = solver.num_xors();

  if (!encode_ok || !solver.okay()) {
    // The encoding itself is contradictory (e.g. k > m, or a property that
    // cannot coexist with the cardinality bound): the preimage is empty and
    // complete. Don't spin up the enumeration machinery.
    result.final_status = Status::Unsat;
    result.stats = solver.stats();
    result.seconds_total =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (options.tracer != nullptr) options.tracer->event("sr.trivial_unsat");
  } else {
    sat::AllSatOptions as;
    as.max_models = options.max_solutions;
    as.limits = options.limits;
    as.with_config(options);
    const sat::AllSatResult models =
        sat::enumerate_models(solver, projection, as);

    result.final_status = models.final_status;
    result.seconds_to_each = models.seconds_to_model;
    result.seconds_total = models.seconds_total;
    result.stats = solver.stats();
    for (const auto& model : models.models) {
      if (use_presolve) {
        // Projection is the free columns; substitute the pivot values back.
        result.signals.push_back(
            Signal::from_bits(presolve_->expand(analysis, model)));
      } else {
        Signal s(enc_->m());
        for (std::size_t i = 0; i < model.size(); ++i) {
          if (model[i]) s.set_change(i);
        }
        result.signals.push_back(std::move(s));
      }
    }
    if (options.verify_models) {
      require_verified(*enc_, entry, result.signals, properties_);
    }
  }

  finish(result);
  return result;
}

CheckResult Reconstructor::check_hypothesis(const LogEntry& entry,
                                            const Property& hypothesis,
                                            const ReconstructionOptions& options) const {
  options.validate();
  const std::unique_ptr<Property> negated = hypothesis.negation();
  if (negated == nullptr) {
    throw std::invalid_argument("check_hypothesis: property '" +
                                hypothesis.describe() +
                                "' does not provide a negation");
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  obs::Tracer::Span span;
  if (options.tracer != nullptr) {
    span = options.tracer->span(
        "sr.check",
        {{"m", static_cast<std::uint64_t>(enc_->m())},
         {"k", static_cast<std::uint64_t>(entry.k)},
         {"hypothesis", hypothesis.describe()}});
  }

  const std::unique_ptr<SolverInterface> solver_ptr = options.make_solver();
  SolverInterface& solver = *solver_ptr;
  std::vector<Var> cycle_vars;
  bool encode_ok = encode_base(solver, cycle_vars, entry, options);
  encode_ok = negated->encode(solver, cycle_vars) && encode_ok;

  CheckResult result;
  result.num_vars = solver.num_vars();
  result.num_clauses = solver.num_clauses();
  result.num_xors = solver.num_xors();

  if (!encode_ok || !solver.okay()) {
    // No assignment satisfies the encoding plus the negated hypothesis —
    // vacuously, every reconstruction satisfies the hypothesis. Skip the
    // solve (which would only rediscover the root-level conflict).
    result.verdict = CheckVerdict::HoldsForAll;
    result.stats = solver.stats();
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (options.tracer != nullptr) options.tracer->event("sr.trivial_unsat");
    if (span.active()) {
      span.add("verdict", to_string(result.verdict));
      span.finish();
    }
    return result;
  }

  const Status st = solver.solve(options.limits);

  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.stats = solver.stats();
  switch (st) {
    case Status::Unsat:
      result.verdict = CheckVerdict::HoldsForAll;
      break;
    case Status::Sat: {
      result.verdict = CheckVerdict::ViolatedBySome;
      Signal witness(enc_->m());
      for (std::size_t i = 0; i < cycle_vars.size(); ++i) {
        if (solver.model_value(cycle_vars[i]) == sat::LBool::True) {
          witness.set_change(i);
        }
      }
      if (options.verify_models) {
        // The witness must be a genuine preimage member that violates the
        // hypothesis; re-check both halves independently of the encoding.
        require_verified(*enc_, entry, {witness}, properties_);
        if (hypothesis.holds(witness)) {
          throw std::logic_error(
              "model verification failed: check_hypothesis witness satisfies "
              "the hypothesis it should violate");
        }
      }
      result.witness = std::move(witness);
      break;
    }
    case Status::Unknown:
      result.verdict = CheckVerdict::Unknown;
      break;
  }
  if (span.active()) {
    span.add("verdict", to_string(result.verdict));
    span.finish();
  }
  return result;
}

namespace {

// Recursively choose the remaining changes of a k-subset, maintaining the
// running timeprint, and collect matching signals.
void brute_force_rec(const TimestampEncoding& enc, const LogEntry& entry,
                     const std::vector<const Property*>& props, std::size_t next,
                     std::size_t chosen, f2::BitVec& acc,
                     std::vector<std::size_t>& picks, std::vector<Signal>& out) {
  const std::size_t m = enc.m();
  if (chosen == entry.k) {
    if (acc == entry.tp) {
      Signal s = Signal::from_change_cycles(m, picks);
      for (const Property* p : props) {
        if (!p->holds(s)) return;
      }
      out.push_back(std::move(s));
    }
    return;
  }
  if (m - next < entry.k - chosen) return;  // not enough cycles left
  for (std::size_t i = next; i < m; ++i) {
    acc ^= enc.timestamp(i);
    picks.push_back(i);
    brute_force_rec(enc, entry, props, i + 1, chosen + 1, acc, picks, out);
    picks.pop_back();
    acc ^= enc.timestamp(i);
  }
}

}  // namespace

std::vector<Signal> Reconstructor::brute_force(
    const TimestampEncoding& encoding, const LogEntry& entry,
    const std::vector<const Property*>& props) {
  std::vector<Signal> out;
  f2::BitVec acc(encoding.width());
  std::vector<std::size_t> picks;
  brute_force_rec(encoding, entry, props, 0, 0, acc, picks, out);
  return out;
}

}  // namespace tp::core
