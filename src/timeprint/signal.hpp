#pragma once
// signal.hpp — change-signals over one trace-cycle.
//
// Following the paper (§4), a signal is a map S : [1..m] -> {0,1} where
// S(i) = 1 indicates that the traced on-chip signal changed its value in
// the i-th clock cycle of the trace-cycle. We index cycles 0-based
// internally; printed forms are cycle 1..m to match the paper.

#include <cstddef>
#include <string>
#include <vector>

#include "f2/bitvec.hpp"

namespace tp::core {

/// A change-signal over a trace-cycle of m clock cycles.
class Signal {
 public:
  /// All-zero signal (no changes) over m cycles.
  explicit Signal(std::size_t m) : changes_(m) {}

  /// Build from the set of (0-based) cycles in which a change occurred.
  static Signal from_change_cycles(std::size_t m,
                                   const std::vector<std::size_t>& cycles);

  /// Build from a bit vector (coordinate i = change in cycle i).
  static Signal from_bits(f2::BitVec bits) { return Signal(std::move(bits)); }

  /// Uniformly random signal with exactly k changes.
  static Signal random_with_changes(std::size_t m, std::size_t k, f2::Rng& rng);

  /// Derive the change-signal from a sampled waveform: `samples` holds the
  /// traced signal's value at each of the m cycles, `initial` its value just
  /// before the trace-cycle began. S(i) = 1 iff the value differs from the
  /// previous cycle's.
  static Signal from_waveform(const std::vector<bool>& samples, bool initial);

  /// Trace-cycle length m.
  std::size_t length() const { return changes_.size(); }

  /// True iff a change occurred in cycle i (0-based).
  bool has_change(std::size_t i) const { return changes_.get(i); }

  /// Mark/unmark a change in cycle i.
  void set_change(std::size_t i, bool value = true) { changes_.set(i, value); }

  /// Number of changes k.
  std::size_t num_changes() const { return changes_.popcount(); }

  /// The (0-based) cycles with a change, ascending.
  std::vector<std::size_t> change_cycles() const;

  /// The underlying bit vector (coordinate i = change in cycle i).
  const f2::BitVec& bits() const { return changes_; }

  /// Cycle-0-first string of '0'/'1', one character per clock cycle. (Note:
  /// unlike BitVec::to_string, which prints MSB first, this reads left to
  /// right in time order.)
  std::string to_string() const;

  bool operator==(const Signal&) const = default;

 private:
  explicit Signal(f2::BitVec bits) : changes_(std::move(bits)) {}

  f2::BitVec changes_;
};

}  // namespace tp::core
