#include "timeprint/parse.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace tp::core {

namespace {

[[noreturn]] void fail(const std::string& text, const std::string& why) {
  throw std::invalid_argument("parse_property: " + why + " in '" + text + "'");
}

std::vector<std::string> tokenize(std::string_view text) {
  std::istringstream ss{std::string(text)};
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

std::size_t parse_number(const std::string& text, const std::string& token) {
  // std::stoull is more liberal than the grammar: it skips whitespace and
  // accepts a sign, silently wrapping "-3" to 2^64-3. Only an unsigned
  // digit string is a number here.
  if (token.empty() || token[0] < '0' || token[0] > '9') {
    fail(text, "expected a number, got '" + token + "'");
  }
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(token, &pos);
    if (pos != token.size()) fail(text, "trailing characters in number '" + token + "'");
    return static_cast<std::size_t>(v);
  } catch (const std::invalid_argument&) {
    fail(text, "expected a number, got '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(text, "number out of range: '" + token + "'");
  }
}

}  // namespace

std::unique_ptr<Property> parse_property(std::string_view text) {
  const std::string original(text);
  const auto tokens = tokenize(text);
  if (tokens.empty()) fail(original, "empty expression");
  const std::string& head = tokens[0];

  auto expect_args = [&](std::size_t n) {
    if (tokens.size() != n + 1) {
      fail(original, "'" + head + "' expects " + std::to_string(n) + " argument(s)");
    }
  };

  if (head == "p2") {
    expect_args(0);
    return std::make_unique<ExistsConsecutivePair>();
  }
  if (head == "no-p2") {
    expect_args(0);
    return std::make_unique<NoConsecutivePair>();
  }
  if (head == "pairs") {
    expect_args(0);
    return std::make_unique<ChangesInConsecutivePairs>();
  }
  if (head == "before") {
    expect_args(3);
    const std::size_t deadline = parse_number(original, tokens[1]);
    const std::size_t k = parse_number(original, tokens[3]);
    if (tokens[2] == "min") return std::make_unique<MinChangesBefore>(deadline, k);
    if (tokens[2] == "max") return std::make_unique<MaxChangesBefore>(deadline, k);
    fail(original, "expected 'min' or 'max', got '" + tokens[2] + "'");
  }
  if (head == "window") {
    if (tokens.size() < 4) fail(original, "'window' expects <lo> <hi> <mode>");
    const std::size_t lo = parse_number(original, tokens[1]);
    const std::size_t hi = parse_number(original, tokens[2]);
    if (hi <= lo) fail(original, "window bounds must satisfy lo < hi");
    const std::string& mode = tokens[3];
    if (mode == "any") {
      expect_args(3);
      return std::make_unique<ChangeInWindow>(lo, hi);
    }
    if (mode == "none") {
      expect_args(3);
      return std::make_unique<NoChangeInWindow>(lo, hi);
    }
    if (mode == "exactly") {
      expect_args(4);
      return std::make_unique<ExactlyKInWindow>(lo, hi,
                                                parse_number(original, tokens[4]));
    }
    fail(original, "unknown window mode '" + mode + "'");
  }
  if (head == "gap") {
    expect_args(1);
    return std::make_unique<MinGap>(parse_number(original, tokens[1]));
  }
  if (head == "max-gap") {
    expect_args(1);
    return std::make_unique<MaxGap>(parse_number(original, tokens[1]));
  }
  if (head == "known") {
    expect_args(2);
    const std::size_t cycle = parse_number(original, tokens[1]);
    if (tokens[2] != "0" && tokens[2] != "1") {
      fail(original, "expected 0 or 1, got '" + tokens[2] + "'");
    }
    return std::make_unique<KnownValue>(cycle, tokens[2] == "1");
  }
  fail(original, "unknown property '" + head + "'");
}

std::unique_ptr<Property> parse_properties(std::string_view text) {
  std::vector<std::unique_ptr<Property>> parts;
  std::size_t start = 0;
  const std::string original(text);
  while (start <= text.size()) {
    const std::size_t sep = text.find(';', start);
    const std::string_view piece =
        text.substr(start, sep == std::string_view::npos ? std::string_view::npos
                                                         : sep - start);
    if (!tokenize(piece).empty()) parts.push_back(parse_property(piece));
    if (sep == std::string_view::npos) break;
    start = sep + 1;
  }
  if (parts.empty()) {
    throw std::invalid_argument("parse_properties: no properties in '" + original +
                                "'");
  }
  if (parts.size() == 1) return std::move(parts[0]);
  return std::make_unique<Conjunction>(std::move(parts));
}

}  // namespace tp::core
