#pragma once
// verify.hpp — solver-independent verification of reconstructed signals.
//
// The UNSAT side of a reconstruction answer is certified by DRAT proofs
// (sat/drat.hpp); this is the SAT/AllSAT side. Each enumerated signal is
// re-validated against the *mathematical* SR statement — A·x = TP over F2,
// |x| = k, and the registered temporal properties — using only f2::Matrix
// arithmetic and Property::holds(). Nothing here touches the SAT encoding,
// the solver, or the enumeration machinery, so an encoding bug (a wrong
// XOR row, a miscounted cardinality circuit, a property clause with the
// wrong sign) cannot also hide the evidence.
//
// Combined, the two sides certify a complete AllSAT answer end to end:
// every returned signal is checked to be a real preimage member (here),
// and the final UNSAT — "no models beyond the enumerated ones" — is
// checkable against the formula plus the emitted blocking clauses (there).

#include <string>
#include <vector>

#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/properties.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// Outcome of verifying one batch of signals against one log entry.
struct VerifyResult {
  bool ok = true;
  std::size_t checked = 0;  ///< signals examined (all of them when ok)
  std::string failure;      ///< first violation, empty when ok

  explicit operator bool() const { return ok; }
};

/// Check every signal in `signals` against `entry` under `encoding`:
/// A·x = TP (recomputed with f2::Matrix::multiply), |x| = k, each
/// registered property holds, and no signal appears twice. Stops at the
/// first violation.
VerifyResult verify_signals(const TimestampEncoding& encoding,
                            const LogEntry& entry,
                            const std::vector<Signal>& signals,
                            const std::vector<const Property*>& properties = {});

/// verify_signals, but a violation throws std::logic_error with the
/// failure text — the hook form the reconstruction engines call when
/// ReconstructionOptions::verify_models is set.
void require_verified(const TimestampEncoding& encoding, const LogEntry& entry,
                      const std::vector<Signal>& signals,
                      const std::vector<const Property*>& properties = {});

}  // namespace tp::core
