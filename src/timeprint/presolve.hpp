#pragma once
// presolve.hpp — F2 analysis of SR instances ahead of CNF emission.
//
// Every SR query against one encoding shares the matrix A (paper §4.2):
// A·x = TP, |x| = k. This layer owns one f2::Echelonizer over A and uses
// it three ways before any SAT solver exists:
//
//  * consistency — T·TP having a set bit at a row >= rank(A) proves the
//    linear system (and hence the whole instance) unsatisfiable, so the
//    engines return a complete empty preimage without a solver;
//  * direct decode — when nullity(A) <= presolve_enum_limit the affine
//    solution space particular ⊕ span(nullspace) is small enough to
//    enumerate outright, filtering on |x| = k and the registered
//    properties: the solver is skipped entirely;
//  * substituted encoding — otherwise the reduced rows let the engines
//    emit rank(A) XOR definitions (pivot variable = XOR of free-column
//    variables ⊕ constant) instead of the b raw rows, drop
//    constant-valued pivots from the solver, project enumeration onto the
//    free columns and substitute the pivot values back via expand().
//
// analyze_batch() rides the Echelonizer's bit-sliced transform: 64
// timeprints are consistency-checked/transformed per sweep, which is how
// BatchReconstructor's prepass disposes of Gauss-decidable entries before
// any worker spins up.

#include <cstdint>
#include <vector>

#include "f2/bitvec.hpp"
#include "f2/echelon.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/properties.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

class F2Presolve {
 public:
  /// Factor the encoding's matrix once (the encoding is not retained).
  explicit F2Presolve(const TimestampEncoding& encoding)
      : ech_(encoding.to_matrix()) {}

  const f2::Echelonizer& echelon() const { return ech_; }
  std::size_t nullity() const { return ech_.nullity(); }

  /// Per-timeprint F2 verdict: the transformed RHS T·TP and whether the
  /// linear system is consistent at all.
  struct Analysis {
    bool consistent = false;
    f2::BitVec transformed;  ///< T·TP, width b; bits [0, rank) are the
                             ///< reduced rows' RHS constants.
  };

  Analysis analyze(const f2::BitVec& tp) const;

  /// Bit-sliced analysis of many timeprints (64 per transform sweep).
  std::vector<Analysis> analyze_batch(const std::vector<f2::BitVec>& tps) const;

  /// Substitute a free-column assignment (indexed in free_cols() order)
  /// back into a full m-bit solution:
  /// x = particular(transformed) ⊕ Σ nullspace[j] over set positions j.
  f2::BitVec expand(const Analysis& analysis,
                    const std::vector<bool>& free_assignment) const;

  struct Decoded {
    std::vector<Signal> signals;
    bool truncated = false;  ///< stopped at max_solutions, preimage may be larger
  };

  /// Enumerate the full affine solution space (2^nullity candidates, gray
  /// code — one word-XOR per step) and keep the signals with |x| = k that
  /// satisfy every property. Precondition: analysis.consistent and a
  /// caller-checked nullity small enough to enumerate (< 64).
  Decoded decode_by_enumeration(const Analysis& analysis, std::size_t k,
                                const std::vector<const Property*>& properties,
                                std::uint64_t max_solutions) const;

 private:
  f2::Echelonizer ech_;
};

}  // namespace tp::core
