#include "timeprint/galois.hpp"

#include <algorithm>

namespace tp::core {

namespace {

bool contains_entry(const std::vector<LogEntry>& entries, const LogEntry& e) {
  return std::find(entries.begin(), entries.end(), e) != entries.end();
}

bool contains_signal(const std::vector<Signal>& signals, const Signal& s) {
  return std::find(signals.begin(), signals.end(), s) != signals.end();
}

}  // namespace

std::vector<LogEntry> alpha(const TimestampEncoding& encoding,
                            const std::vector<Signal>& signals) {
  Logger logger(encoding);
  std::vector<LogEntry> out;
  for (const Signal& s : signals) {
    LogEntry e = logger.log(s);
    if (!contains_entry(out, e)) out.push_back(std::move(e));
  }
  return out;
}

std::vector<Signal> gamma(const TimestampEncoding& encoding, const LogEntry& entry) {
  return Reconstructor::brute_force(encoding, entry);
}

std::vector<Signal> gamma(const TimestampEncoding& encoding,
                          const std::vector<LogEntry>& entries) {
  std::vector<Signal> out;
  for (const LogEntry& e : entries) {
    for (Signal& s : gamma(encoding, e)) {
      if (!contains_signal(out, s)) out.push_back(std::move(s));
    }
  }
  return out;
}

bool check_extensive(const TimestampEncoding& encoding,
                     const std::vector<Signal>& signals) {
  const std::vector<Signal> closure = gamma(encoding, alpha(encoding, signals));
  for (const Signal& s : signals) {
    if (!contains_signal(closure, s)) return false;
  }
  return true;
}

bool check_insertion(const TimestampEncoding& encoding,
                     const std::vector<LogEntry>& entries) {
  // Deduplicate the input set first (V is a set of log entries).
  std::vector<LogEntry> v;
  for (const LogEntry& e : entries) {
    if (!contains_entry(v, e)) v.push_back(e);
  }
  const std::vector<LogEntry> round = alpha(encoding, gamma(encoding, v));
  if (round.size() != v.size()) return false;
  for (const LogEntry& e : v) {
    if (!contains_entry(round, e)) return false;
  }
  return true;
}

}  // namespace tp::core
