#include "timeprint/verify.hpp"

#include <set>
#include <stdexcept>
#include <vector>

#include "f2/matrix.hpp"

namespace tp::core {

VerifyResult verify_signals(const TimestampEncoding& encoding,
                            const LogEntry& entry,
                            const std::vector<Signal>& signals,
                            const std::vector<const Property*>& properties) {
  VerifyResult res;
  const f2::Matrix a = encoding.to_matrix();
  std::set<std::vector<bool>> seen;
  for (const Signal& s : signals) {
    if (s.bits().size() != encoding.m()) {
      res.ok = false;
      res.failure = "signal " + std::to_string(res.checked) + " has " +
                    std::to_string(s.bits().size()) + " cycles, encoding has " +
                    std::to_string(encoding.m());
      return res;
    }
    if (a.multiply(s.bits()) != entry.tp) {
      res.ok = false;
      res.failure = "signal " + std::to_string(res.checked) +
                    " does not reproduce the timeprint (A·x != TP)";
      return res;
    }
    if (s.num_changes() != entry.k) {
      res.ok = false;
      res.failure = "signal " + std::to_string(res.checked) + " has " +
                    std::to_string(s.num_changes()) + " changes, entry says " +
                    std::to_string(entry.k);
      return res;
    }
    for (const Property* p : properties) {
      if (!p->holds(s)) {
        res.ok = false;
        res.failure = "signal " + std::to_string(res.checked) +
                      " violates property '" + p->describe() + "'";
        return res;
      }
    }
    std::vector<bool> key;
    key.reserve(encoding.m());
    for (std::size_t i = 0; i < encoding.m(); ++i) key.push_back(s.bits().get(i));
    if (!seen.insert(std::move(key)).second) {
      res.ok = false;
      res.failure =
          "signal " + std::to_string(res.checked) + " enumerated twice";
      return res;
    }
    ++res.checked;
  }
  return res;
}

void require_verified(const TimestampEncoding& encoding, const LogEntry& entry,
                      const std::vector<Signal>& signals,
                      const std::vector<const Property*>& properties) {
  const VerifyResult res =
      verify_signals(encoding, entry, signals, properties);
  if (!res.ok) {
    throw std::logic_error("model verification failed: " + res.failure);
  }
}

}  // namespace tp::core
