#include "timeprint/signal.hpp"

#include <cassert>

namespace tp::core {

Signal Signal::from_change_cycles(std::size_t m,
                                  const std::vector<std::size_t>& cycles) {
  Signal s(m);
  for (std::size_t c : cycles) {
    assert(c < m);
    s.set_change(c);
  }
  return s;
}

Signal Signal::random_with_changes(std::size_t m, std::size_t k, f2::Rng& rng) {
  assert(k <= m);
  // Floyd's algorithm for a uniform k-subset of [0, m).
  Signal s(m);
  for (std::size_t j = m - k; j < m; ++j) {
    const std::size_t t = rng.below(j + 1);
    if (s.has_change(t)) {
      s.set_change(j);
    } else {
      s.set_change(t);
    }
  }
  return s;
}

Signal Signal::from_waveform(const std::vector<bool>& samples, bool initial) {
  Signal s(samples.size());
  bool prev = initial;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i] != prev) s.set_change(i);
    prev = samples[i];
  }
  return s;
}

std::vector<std::size_t> Signal::change_cycles() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < length(); ++i) {
    if (has_change(i)) out.push_back(i);
  }
  return out;
}

std::string Signal::to_string() const {
  std::string s(length(), '0');
  for (std::size_t i = 0; i < length(); ++i) {
    if (has_change(i)) s[i] = '1';
  }
  return s;
}

}  // namespace tp::core
