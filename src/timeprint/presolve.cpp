#include "timeprint/presolve.hpp"

#include <bit>
#include <cassert>

namespace tp::core {

F2Presolve::Analysis F2Presolve::analyze(const f2::BitVec& tp) const {
  Analysis a;
  a.transformed = ech_.transform(tp);
  a.consistent = ech_.consistent_transformed(a.transformed);
  return a;
}

std::vector<F2Presolve::Analysis> F2Presolve::analyze_batch(
    const std::vector<f2::BitVec>& tps) const {
  std::vector<f2::BitVec> transformed = ech_.transform_batch(tps);
  std::vector<Analysis> out(transformed.size());
  for (std::size_t i = 0; i < transformed.size(); ++i) {
    out[i].consistent = ech_.consistent_transformed(transformed[i]);
    out[i].transformed = std::move(transformed[i]);
  }
  return out;
}

f2::BitVec F2Presolve::expand(const Analysis& analysis,
                              const std::vector<bool>& free_assignment) const {
  assert(analysis.consistent);
  assert(free_assignment.size() == ech_.nullity());
  f2::BitVec x = ech_.particular_from_transformed(analysis.transformed);
  for (std::size_t j = 0; j < free_assignment.size(); ++j) {
    if (free_assignment[j]) x ^= ech_.nullspace()[j];
  }
  return x;
}

F2Presolve::Decoded F2Presolve::decode_by_enumeration(
    const Analysis& analysis, std::size_t k,
    const std::vector<const Property*>& properties,
    std::uint64_t max_solutions) const {
  assert(analysis.consistent);
  assert(ech_.nullity() < 64);
  Decoded out;
  const auto& ns = ech_.nullspace();
  const std::uint64_t total = std::uint64_t{1} << ns.size();
  f2::BitVec x = ech_.particular_from_transformed(analysis.transformed);
  // Gray-code walk of the affine space: candidate i differs from its
  // predecessor by exactly one null-space vector.
  for (std::uint64_t i = 0;;) {
    if (x.popcount() == k) {
      Signal s = Signal::from_bits(x);
      bool keep = true;
      for (const Property* p : properties) {
        if (!p->holds(s)) {
          keep = false;
          break;
        }
      }
      if (keep) {
        out.signals.push_back(std::move(s));
        if (out.signals.size() >= max_solutions && i + 1 < total) {
          out.truncated = true;
          break;
        }
      }
    }
    if (++i >= total) break;
    x ^= ns[static_cast<std::size_t>(std::countr_zero(i))];
  }
  return out;
}

}  // namespace tp::core
