#pragma once
// parse.hpp — a small textual property language.
//
// The paper's experiments were driven by "a tool, that directly takes CAN
// messages, and other temporal properties as input, and encodes the
// corresponding clauses to the SAT solver input" (§5.2.1). This is the
// property-input half of that tool: a compact, line-oriented grammar that
// maps onto the Property AST, used by the tpr command-line front end and
// available to embedders.
//
// Grammar (one property per expression; expressions joined with ';'):
//   p2                       at least one pair of consecutive changes
//   no-p2                    no two consecutive changes
//   pairs                    changes come as exactly two consecutive ones
//   before <D> min <k>       at least k changes before cycle D   (Dk)
//   before <D> max <k>       at most  k changes before cycle D
//   window <lo> <hi> any     at least one change in [lo, hi)
//   window <lo> <hi> none    no change in [lo, hi)
//   window <lo> <hi> exactly <k>   exactly k changes in [lo, hi)
//   gap <g>                  changes at least g cycles apart
//   max-gap <g>              consecutive changes at most g cycles apart
//   known <cycle> <0|1>      the change bit of one cycle is known

#include <memory>
#include <string_view>
#include <vector>

#include "timeprint/properties.hpp"

namespace tp::core {

/// Parse one property expression. Throws std::invalid_argument with a
/// human-readable message on malformed input.
std::unique_ptr<Property> parse_property(std::string_view text);

/// Parse a ';'-separated list of property expressions into a Conjunction
/// (a single property parses to itself). Empty input is invalid.
std::unique_ptr<Property> parse_properties(std::string_view text);

}  // namespace tp::core
