#include "timeprint/encoding.hpp"

#include <cassert>
#include <cmath>

namespace tp::core {

const char* to_string(EncodingScheme scheme) {
  switch (scheme) {
    case EncodingScheme::OneHot: return "one-hot";
    case EncodingScheme::Binary: return "binary";
    case EncodingScheme::RandomConstrained: return "random-constrained";
    case EncodingScheme::Incremental: return "incremental";
  }
  return "?";
}

std::size_t counter_bits(std::size_t m) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < m + 1) ++bits;
  return bits;
}

TimestampEncoding TimestampEncoding::one_hot(std::size_t m) {
  assert(m > 0);
  std::vector<f2::BitVec> ts;
  ts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) ts.push_back(f2::BitVec::unit(m, i));
  return TimestampEncoding(std::move(ts), m, m, EncodingScheme::OneHot);
}

TimestampEncoding TimestampEncoding::binary(std::size_t m) {
  assert(m > 0);
  const std::size_t b = counter_bits(m);
  std::vector<f2::BitVec> ts;
  ts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    ts.push_back(f2::BitVec::from_uint(b, i + 1));
  }
  return TimestampEncoding(std::move(ts), b, 1, EncodingScheme::Binary);
}

TimestampEncoding TimestampEncoding::random_constrained(std::size_t m, std::size_t b,
                                                        std::size_t depth,
                                                        std::uint64_t seed,
                                                        std::uint64_t max_attempts) {
  assert(m > 0 && b > 0 && depth >= 1 && depth <= 4);
  f2::Rng rng(seed);
  f2::LiChecker li(b, depth);
  std::uint64_t attempts = 0;
  while (li.size() < m) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "random_constrained: width b=" + std::to_string(b) +
          " too small for m=" + std::to_string(m) + " at depth " +
          std::to_string(depth));
    }
    f2::BitVec v = f2::BitVec::random(b, rng);
    if (li.can_add(v)) li.add(v);
  }
  return TimestampEncoding(li.members(), b, depth, EncodingScheme::RandomConstrained);
}

TimestampEncoding TimestampEncoding::incremental(std::size_t m, std::size_t b,
                                                 std::size_t depth) {
  assert(m > 0 && b > 0 && depth >= 1 && depth <= 4);
  f2::LiChecker li(b, depth);
  f2::BitVec v(b);
  v.increment();  // start from 1 (the smallest nonzero value)
  while (li.size() < m) {
    if (li.can_add(v)) li.add(v);
    if (li.size() == m) break;
    v.increment();
    if (v.is_zero()) {  // wrapped: the whole b-bit space is exhausted
      throw std::runtime_error("incremental: width b=" + std::to_string(b) +
                               " too small for m=" + std::to_string(m) +
                               " at depth " + std::to_string(depth));
    }
  }
  return TimestampEncoding(li.members(), b, depth, EncodingScheme::Incremental);
}

TimestampEncoding TimestampEncoding::incremental_auto(std::size_t m,
                                                      std::size_t depth) {
  for (std::size_t b = counter_bits(m);; ++b) {
    try {
      return incremental(m, b, depth);
    } catch (const std::runtime_error&) {
      // width too small; grow
    }
  }
}

TimestampEncoding TimestampEncoding::random_constrained_auto(std::size_t m,
                                                             std::size_t depth,
                                                             std::uint64_t seed) {
  for (std::size_t b = counter_bits(m);; ++b) {
    try {
      return random_constrained(m, b, depth, seed);
    } catch (const std::runtime_error&) {
      // width too small; grow
    }
  }
}

TimestampEncoding TimestampEncoding::from_vectors(std::vector<f2::BitVec> timestamps,
                                                  std::size_t depth) {
  assert(!timestamps.empty());
  const std::size_t b = timestamps.front().size();
  for (const f2::BitVec& v : timestamps) {
    assert(v.size() == b);
    (void)v;
  }
  return TimestampEncoding(std::move(timestamps), b, depth,
                           EncodingScheme::RandomConstrained);
}

bool TimestampEncoding::verify_li(std::size_t depth) const {
  f2::LiChecker li(width_, depth);
  for (const f2::BitVec& v : timestamps_) {
    if (!li.can_add(v)) return false;
    li.add(v);
  }
  return true;
}

std::size_t TimestampEncoding::bits_per_trace_cycle() const {
  return width_ + counter_bits(m());
}

double TimestampEncoding::log_rate_bps(double clock_hz) const {
  return static_cast<double>(bits_per_trace_cycle()) * clock_hz /
         static_cast<double>(m());
}

}  // namespace tp::core
