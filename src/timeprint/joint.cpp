#include "timeprint/joint.hpp"

#include <cassert>
#include <memory>

#include "sat/xor_to_cnf.hpp"

namespace tp::core {

using sat::Lit;
using sat::mk_lit;
using sat::SolverInterface;
using sat::Var;

ReconstructionResult JointReconstructor::reconstruct(
    const std::vector<LogEntry>& entries, const ReconstructionOptions& options) const {
  options.validate();
  assert(!entries.empty());
  const std::size_t m = enc_->m();
  const std::size_t b = enc_->width();
  const std::size_t n = entries.size();

  const std::unique_ptr<SolverInterface> solver_ptr = options.make_solver();
  SolverInterface& solver = *solver_ptr;
  std::vector<Var> span_vars;
  span_vars.reserve(n * m);
  for (std::size_t i = 0; i < n * m; ++i) span_vars.push_back(solver.new_var());

  for (std::size_t w = 0; w < n; ++w) {
    assert(entries[w].tp.size() == b);
    // XOR system of window w over its own m variables.
    for (std::size_t j = 0; j < b; ++j) {
      std::vector<Var> row;
      for (std::size_t i = 0; i < m; ++i) {
        if (enc_->timestamp(i).get(j)) row.push_back(span_vars[w * m + i]);
      }
      const bool rhs = entries[w].tp.get(j);
      if (options.native_xor) {
        solver.add_xor(std::move(row), rhs);
      } else {
        sat::add_xor_as_cnf(solver, row, rhs);
      }
    }
    // Cardinality of window w.
    std::vector<Lit> lits;
    lits.reserve(m);
    for (std::size_t i = 0; i < m; ++i) lits.push_back(mk_lit(span_vars[w * m + i]));
    sat::encode_exactly(solver, lits, static_cast<int>(entries[w].k),
                        options.card_encoding);
  }

  // Span-wide properties.
  for (const Property* p : properties_) p->encode(solver, span_vars);

  sat::AllSatOptions as;
  as.max_models = options.max_solutions;
  as.limits = options.limits;
  as.with_config(options);
  const sat::AllSatResult models = sat::enumerate_models(solver, span_vars, as);

  ReconstructionResult result;
  result.final_status = models.final_status;
  result.seconds_to_each = models.seconds_to_model;
  result.seconds_total = models.seconds_total;
  result.stats = solver.stats();
  result.num_vars = solver.num_vars();
  result.num_clauses = solver.num_clauses();
  result.num_xors = solver.num_xors();
  for (const auto& model : models.models) {
    Signal s(n * m);
    for (std::size_t i = 0; i < model.size(); ++i) {
      if (model[i]) s.set_change(i);
    }
    result.signals.push_back(std::move(s));
  }
  return result;
}

}  // namespace tp::core
