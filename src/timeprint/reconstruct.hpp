#pragma once
// reconstruct.hpp — the Signal Reconstruction (SR) problem and its
// SAT-based solution.
//
// SR (paper §4.2): given an encoding TS, a timeprint TP and a change count
// k, find all signals S with α̃(S) = (TP, k). In linear-algebra form: all
// x ∈ F2^m with A·x = TP and |x| = k, where A's columns are the
// timestamps. SR is NP-hard (maximum-likelihood decoding, Berlekamp–
// McEliece–van Tilborg 1978).
//
// The SAT encoding introduces one variable per clock cycle; each bit j of
// the linear system becomes one XOR clause over the variables whose
// timestamp has bit j set (negated when TP's bit j is 0); the cardinality
// constraint |x| = k uses Sinz's sequential counter; known temporal
// properties add their clauses to prune the search (paper §5.1.3). Models
// are enumerated with blocking clauses, projected onto the cycle
// variables.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sat/allsat.hpp"
#include "sat/cardinality.hpp"
#include "sat/interface.hpp"
// solver_options() returns the sat::SolverOptions config struct by value,
// and that struct is defined in solver.hpp; no concrete sat::Solver is
// named here.
// tp-lint: allow(solver-interface-only) SolverOptions definition
#include "sat/solver.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/presolve.hpp"
#include "timeprint/properties.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// Knobs of one reconstruction run. Inherits the shared solver knobs from
/// sat::SolverConfig (interface.hpp): use_gauss, gauss_max_unassigned,
/// tracer, proof — the same fields SolverOptions inherits, so
/// solver_options() no longer hand-copies them. use_gauss defaults to
/// *true* here (the paper's path; the raw solver defaults to false).
struct ReconstructionOptions : sat::SolverConfig {
  ReconstructionOptions() { use_gauss = true; }

  /// Cardinality encoding for the |x| = k constraint.
  sat::CardEncoding card_encoding = sat::CardEncoding::SequentialCounter;
  /// true: native XOR constraints (CryptoMiniSat-style, the paper's path);
  /// false: Tseitin-chained CNF (ablation).
  bool native_xor = true;
  /// Deprecated alias of the inherited gauss_max_unassigned, kept for one
  /// release: 0 = defer to gauss_max_unassigned; non-zero wins over it.
  /// (0 in both = auto gate; SIZE_MAX = run the elimination at every
  /// fixpoint, which pays off when strong structural properties assign
  /// many cycle variables at once.)
  std::size_t gauss_gate = 0;
  /// Which solver backend every engine of this run builds through
  /// make_solver(): one sat::Solver, or a sat::PortfolioSolver racing
  /// `portfolio_members` diversified configurations per solve with
  /// first-wins cancellation and learnt-clause sharing. reconstruct_split
  /// always stays single-backend — cube-and-conquer is already the
  /// parallel axis there, and nesting races inside cubes oversubscribes.
  sat::SolverBackend solver_backend = sat::SolverBackend::Single;
  /// Portfolio width (ignored for the single backend).
  std::size_t portfolio_members = 4;
  /// Portfolio diversification preset (ignored for the single backend).
  sat::PortfolioDiversity portfolio_diversity = sat::PortfolioDiversity::Mixed;
  /// Stop after this many reconstructed signals (paper's .1/.10 columns).
  std::uint64_t max_solutions = UINT64_MAX;
  /// Decode streams through the incremental template engine
  /// (timeprint/incremental.hpp): the SR base is encoded once per worker
  /// and every further entry is just assumption literals, with learnt
  /// clauses, phases and activities warm-started across entries. Consumed
  /// by BatchReconstructor::reconstruct_all (per-worker template cache);
  /// Reconstructor::reconstruct and reconstruct_split keep the
  /// fresh-solver path regardless (the reference oracle). The template
  /// engine always uses the totalizer cardinality internally (the only
  /// encoding whose bound can vary under assumptions); card_encoding
  /// still selects the fresh path's encoding.
  bool incremental = false;
  /// Consult the shared F2 echelon factorization (timeprint/presolve.hpp)
  /// before emitting any CNF: an inconsistent linear system returns a
  /// complete empty preimage without a solver; a system whose nullity is
  /// at most presolve_enum_limit is decoded by direct enumeration of the
  /// affine solution space (no solver either); everything else gets the
  /// substituted encoding — rank(A) XOR definitions (pivot variable =
  /// XOR of free-column variables ⊕ constant) replace the b raw rows,
  /// constant pivots drop out of the solver entirely, enumeration
  /// projects onto the free columns and pivot values are substituted back
  /// into each model. Silently ignored when a DRAT proof sink is
  /// attached: the certified path must derive every verdict inside the
  /// solver, so it keeps the classic encoding. check_hypothesis and
  /// reconstruct_split also stay classic (single solve / cube-split over
  /// full cycle variables).
  bool presolve = true;
  /// Largest nullity the presolve decodes by direct enumeration
  /// (2^nullity candidates are walked; keep this small).
  std::size_t presolve_enum_limit = 4;
  /// Resource limits for the whole run (including `limits.interrupt`, the
  /// cooperative cancellation token honoured by every solve of the run).
  sat::SolveLimits limits;
  // Inherited from sat::SolverConfig:
  //
  //  * tracer — propagated to the SAT solver and enumeration layers, so a
  //    traced run yields "sr.reconstruct"/"sr.encode" spans wrapping
  //    "allsat.enumerate", "allsat.model" and "solver.*" lines. The
  //    tracer is thread-safe and shared by every worker of a batch run;
  //    it must outlive the run.
  //  * proof — DRAT proof sink (sat/drat.hpp). When attached, the solver
  //    logs every axiom/learnt/deleted clause of the run so an UNSAT or
  //    enumeration-complete answer can be certified by the independent
  //    checker (blocking clauses enter the axiom stream: the final UNSAT
  //    certifies "no models beyond the enumerated ones"). Requires
  //    use_gauss = false (validate() throws otherwise) and serves exactly
  //    one engine instance: the batch engines refuse it (their clones
  //    would interleave one stream); a portfolio routes it to member 0.
  /// Re-validate every enumerated signal (and every hypothesis-check
  /// witness) against A·x = TP, |x| = k and the registered properties
  /// using only f2::Matrix arithmetic (timeprint/verify.hpp), independent
  /// of the SAT encoding. A violation throws std::logic_error — it means
  /// the encoding or solver is wrong, never the input.
  bool verify_models = false;

  /// Reject inconsistent knob combinations (throws std::invalid_argument):
  /// the Gaussian engine only exists on the native-XOR path, a Gauss gate
  /// without the Gauss engine is dead, and max_solutions == 0 would make
  /// every run vacuously "complete". Called by reconstruct(),
  /// check_hypothesis() and the batch engine before encoding anything.
  void validate() const;

  /// The SolverOptions these knobs induce — since both structs inherit
  /// sat::SolverConfig this is one config-slice assignment plus the
  /// gauss_gate alias fold, the single source of truth for every engine
  /// that builds a solver for an SR query (fresh, split and template
  /// paths).
  sat::SolverOptions solver_options() const;

  /// Build the selected backend (solver_backend / portfolio_members /
  /// portfolio_diversity) over solver_options() via sat::SolverFactory.
  std::unique_ptr<sat::SolverInterface> make_solver() const;
};

/// Outcome of a reconstruction run.
struct ReconstructionResult {
  /// Reconstructed signals, in discovery order.
  std::vector<Signal> signals;
  /// Unsat => enumeration complete (`signals` is the full preimage).
  sat::Status final_status = sat::Status::Unknown;
  /// Wall-clock seconds until each signal was found.
  std::vector<double> seconds_to_each;
  /// Total wall-clock seconds.
  double seconds_total = 0.0;
  /// Solver effort (aggregated over all workers for a parallel run).
  sat::SolverStats stats;
  /// Encoded problem size.
  int num_vars = 0;
  std::size_t num_clauses = 0;
  std::size_t num_xors = 0;

  /// True iff every signal of the preimage was found.
  bool complete() const { return final_status == sat::Status::Unsat; }
};

/// Verdict of a hypothesis check over all reconstructions.
enum class CheckVerdict {
  HoldsForAll,     ///< every signal explaining (TP, k) satisfies the hypothesis
  ViolatedBySome,  ///< a counterexample reconstruction exists (see witness)
  Unknown,         ///< resource limit hit
};

/// Human-readable verdict name.
const char* to_string(CheckVerdict v);

/// Result of Reconstructor::check_hypothesis.
struct CheckResult {
  CheckVerdict verdict = CheckVerdict::Unknown;
  /// A reconstruction violating the hypothesis, when ViolatedBySome.
  std::optional<Signal> witness;
  double seconds = 0.0;
  /// Solver effort.
  sat::SolverStats stats;
  /// Encoded problem size (same meaning as in ReconstructionResult).
  int num_vars = 0;
  std::size_t num_clauses = 0;
  std::size_t num_xors = 0;
};

/// Solves SR instances against one timestamp encoding, with optional known
/// properties pruning the search space.
class Reconstructor {
 public:
  /// The encoding must outlive the reconstructor. Factors the encoding's
  /// matrix once (f2::Echelonizer via F2Presolve); every query of this
  /// reconstructor shares the factorization.
  explicit Reconstructor(const TimestampEncoding& encoding)
      : enc_(&encoding),
        presolve_(std::make_shared<const F2Presolve>(encoding)) {}

  /// Register a known (verified) property; its clauses are added to every
  /// query. The property must outlive the reconstructor.
  void add_property(const Property& property) { properties_.push_back(&property); }

  /// Currently registered properties.
  const std::vector<const Property*>& properties() const { return properties_; }

  /// Enumerate signals with α̃(S) = entry, subject to the registered
  /// properties.
  ReconstructionResult reconstruct(const LogEntry& entry,
                                   const ReconstructionOptions& options = {}) const;

  /// Decide whether *every* signal explaining `entry` (under the registered
  /// properties) satisfies `hypothesis`: encodes the hypothesis' negation
  /// and asks for a counterexample; UNSAT proves the hypothesis (the
  /// paper's §5.2.1 deadline proof). Throws std::invalid_argument if the
  /// hypothesis cannot provide a negation.
  CheckResult check_hypothesis(const LogEntry& entry, const Property& hypothesis,
                               const ReconstructionOptions& options = {}) const;

  /// Exhaustive reference reconstruction: enumerate all C(m, k) subsets
  /// (tests and the didactic Figure-4 example only; m must be small).
  static std::vector<Signal> brute_force(const TimestampEncoding& encoding,
                                         const LogEntry& entry,
                                         const std::vector<const Property*>& props = {});

  /// Build solver + cycle variables with the SR encoding and registered
  /// properties. Returns false iff trivially UNSAT. Public so engines that
  /// own the enumeration loop (the batch/cube engine, custom AllSAT
  /// drivers) can encode once and branch the solver per worker. Works
  /// against any SolverInterface backend.
  bool encode_base(sat::SolverInterface& solver, std::vector<sat::Var>& cycle_vars,
                   const LogEntry& entry, const ReconstructionOptions& options) const;

  /// The encoding this reconstructor solves against.
  const TimestampEncoding& encoding() const { return *enc_; }

  /// The shared F2 factorization of the encoding's matrix.
  const F2Presolve& presolve() const { return *presolve_; }

 private:
  /// Substituted encoding: free-column variables plus rank(A) XOR-defined
  /// pivot variables (constant pivots get no variable unless a property
  /// needs the full cycle array). Returns false iff trivially UNSAT;
  /// `free_vars` receives the enumeration projection in free_cols order.
  bool encode_presolved(sat::SolverInterface& solver,
                        std::vector<sat::Var>& free_vars, const LogEntry& entry,
                        const ReconstructionOptions& options,
                        const F2Presolve::Analysis& analysis) const;

  const TimestampEncoding* enc_;
  std::shared_ptr<const F2Presolve> presolve_;
  std::vector<const Property*> properties_;
};

}  // namespace tp::core
