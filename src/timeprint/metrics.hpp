#pragma once
// metrics.hpp — quality metrics of a timestamp encoding.
//
// The choice of timestamps governs the reconstruction ambiguity (paper
// §4.3): the relevant code-theoretic quantities are the rank of the
// timestamp matrix (how much of F2^b the code spans), the minimum weight
// of small timestamp combinations (a lower bound witness on the code
// distance: LI-4 <=> no <=4-subset sums to zero <=> distance >= 5 of the
// associated code), and how densely the encoding packs the b-bit space.
// These feed design-space exploration (bench_ablation_depth) and sanity
// checks in tests.

#include <cstddef>

#include "timeprint/encoding.hpp"

namespace tp::core {

/// Summary statistics of an encoding.
struct EncodingStats {
  std::size_t m = 0;      ///< number of timestamps
  std::size_t b = 0;      ///< timestamp width
  std::size_t rank = 0;   ///< rank of [TS(1) | ... | TS(m)]
  /// Largest d in [0, 4] such that every subset of <= d timestamps is
  /// linearly independent (the verified LI depth).
  std::size_t li_depth = 0;
  /// Fraction of the 2^b space occupied by the m timestamps.
  double density = 0.0;
  /// Expected number of reconstructions of a random weight-k entry,
  /// exp2(log2 C(m,k) - rank): the usable ambiguity estimate (uses rank,
  /// not b, because timeprints only range over the column span).
  double expected_solutions_k4 = 0.0;
  /// Minimum Hamming weight over all timestamps (weight-1 witness).
  std::size_t min_timestamp_weight = 0;
  /// Minimum Hamming weight over all pairwise XORs (distance witness: a
  /// low value means two cycles are nearly confusable under bit errors).
  std::size_t min_pair_distance = 0;
};

/// Compute the statistics (O(m^2) in the pairwise scan).
EncodingStats encoding_stats(const TimestampEncoding& encoding);

}  // namespace tp::core
