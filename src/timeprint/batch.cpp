#include "timeprint/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/allsat.hpp"
#include "timeprint/incremental.hpp"
#include "timeprint/verify.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace tp::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Auto guiding-path depth: 2^6 = 64 cubes balance load for any sane
/// worker count while staying instance-determined (never thread-count
/// determined — that would change the merged output with parallelism).
constexpr std::size_t kAutoCubeVars = 6;

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

void BatchOptions::validate() const {
  recon.validate();
  if (cube_vars > 16) {
    throw std::invalid_argument(
        "BatchOptions: cube_vars > 16 would spawn over 65536 cubes");
  }
  if (recon.proof != nullptr) {
    // One DRAT stream certifies one solver's derivations; the batch
    // engines clone solvers per worker/cube, which would leave the stream
    // truncated at the branch point. Certify through the single-solver
    // engines instead.
    throw std::invalid_argument(
        "BatchOptions: proof logging is not supported by the batch engines "
        "(worker clones detach from the proof stream)");
  }
}

std::uint64_t BatchResult::signals_total() const {
  std::uint64_t n = 0;
  for (const ReconstructionResult& r : results) n += r.signals.size();
  return n;
}

bool BatchResult::complete() const {
  return std::all_of(results.begin(), results.end(),
                     [](const ReconstructionResult& r) { return r.complete(); });
}

BatchResult BatchReconstructor::reconstruct_all(const std::vector<LogEntry>& entries,
                                                const BatchOptions& options) const {
  options.validate();
  const auto start = Clock::now();

  BatchResult out;
  out.results.resize(entries.size());
  out.threads_used = resolve_threads(options.num_threads);

  obs::Tracer* const tracer = options.recon.tracer;
  obs::Tracer::Span span;
  if (tracer != nullptr) {
    span = tracer->span(
        "batch.reconstruct_all",
        {{"entries", static_cast<std::uint64_t>(entries.size())},
         {"threads", static_cast<std::uint64_t>(out.threads_used)}});
  }

  // Presolve prepass: one bit-sliced sweep (Echelonizer::transform_batch,
  // 64 timeprints per word pass) classifies every entry before any solver
  // exists. Inconsistent entries get their complete empty preimage here;
  // when the encoding's nullity is within the enumeration limit *every*
  // consistent entry is decoded by walking the affine solution space, and
  // the thread pool below has nothing to do.
  const bool use_presolve =
      options.recon.presolve && options.recon.proof == nullptr;
  std::vector<char> resolved(entries.size(), 0);
  std::size_t resolved_count = 0;
  std::uint64_t resolved_signals = 0;
  if (use_presolve && !entries.empty()) {
    const F2Presolve& pre = rec_.presolve();
    std::vector<f2::BitVec> tps;
    tps.reserve(entries.size());
    for (const LogEntry& e : entries) tps.push_back(e.tp);
    const std::vector<F2Presolve::Analysis> analyses = pre.analyze_batch(tps);
    const bool decode_all =
        pre.nullity() <= options.recon.presolve_enum_limit;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      ReconstructionResult r;
      if (!analyses[i].consistent) {
        r.final_status = sat::Status::Unsat;
      } else if (decode_all) {
        F2Presolve::Decoded dec = pre.decode_by_enumeration(
            analyses[i], entries[i].k, rec_.properties(),
            options.recon.max_solutions);
        r.signals = std::move(dec.signals);
        r.final_status =
            dec.truncated ? sat::Status::Sat : sat::Status::Unsat;
        r.seconds_to_each.assign(r.signals.size(), 0.0);
        if (options.recon.verify_models) {
          require_verified(rec_.encoding(), entries[i], r.signals,
                           rec_.properties());
        }
      } else {
        continue;
      }
      resolved[i] = 1;
      ++resolved_count;
      resolved_signals += r.signals.size();
      out.results[i] = std::move(r);
    }
    if (tracer != nullptr) {
      tracer->event("batch.presolve",
                    {{"resolved", static_cast<std::uint64_t>(resolved_count)},
                     {"entries", static_cast<std::uint64_t>(entries.size())},
                     {"signals", resolved_signals}});
    }
  }

  // Incremental mode: one immutable master template (clone source only —
  // it is never solved on, so concurrent clone() reads race-free) feeding
  // a free-list of per-worker templates. A task pops the most recently
  // returned warm template (hit) or clones the master (miss, at most one
  // per worker thread) and returns it afterwards, so learnt clauses and
  // heuristic state accumulate across the entries each worker serves.
  // The idle list is bounded by options.template_cache_bytes over the
  // templates' retained clause-storage bytes: returning a template that
  // pushes the sum over the bound evicts from the cold (front) end — LRU,
  // keyed by retained-learnt bytes — so a long stream's warm state cannot
  // grow without bound.
  struct IdleTemplate {
    std::size_t bytes;
    std::unique_ptr<TemplateReconstructor> tmpl;
  };
  std::unique_ptr<TemplateReconstructor> master;
  std::deque<IdleTemplate> idle_templates;
  std::size_t idle_bytes = 0;
  util::Mutex template_mu{util::LockRank::kEngine};
  static obs::Counter& template_hits =
      obs::MetricsRegistry::global().counter("incremental.template_hits");
  static obs::Counter& template_misses =
      obs::MetricsRegistry::global().counter("incremental.template_misses");
  static obs::Counter& template_evictions =
      obs::MetricsRegistry::global().counter("incremental.template_evictions");
  static obs::Gauge& template_cache_bytes =
      obs::MetricsRegistry::global().gauge("incremental.template_cache_bytes");
  if (options.recon.incremental && resolved_count < entries.size()) {
    std::size_t k_max = 0;
    for (const LogEntry& e : entries) k_max = std::max(k_max, e.k);
    k_max = std::min(k_max, rec_.encoding().m());
    master = std::make_unique<TemplateReconstructor>(
        rec_.encoding(), rec_.properties(), options.recon,
        k_max == 0 ? rec_.encoding().m() : k_max);
  }
  auto run_entry = [&](const LogEntry& entry) -> ReconstructionResult {
    if (master == nullptr) return rec_.reconstruct(entry, options.recon);
    std::unique_ptr<TemplateReconstructor> tmpl;
    {
      util::MutexLock lock(template_mu);
      if (!idle_templates.empty()) {
        tmpl = std::move(idle_templates.back().tmpl);
        idle_bytes -= idle_templates.back().bytes;
        idle_templates.pop_back();
        template_cache_bytes.set(static_cast<std::int64_t>(idle_bytes));
      }
    }
    if (tmpl != nullptr) {
      template_hits.add(1);
    } else {
      template_misses.add(1);
      tmpl = master->clone();
    }
    ReconstructionResult r = tmpl->reconstruct(entry);
    // Size the template outside the lock (retained_bytes walks solver
    // storage), then return it hot-end first and evict cold-end idles
    // until the cache respects the bound again.
    const std::size_t bytes = tmpl->retained_bytes();
    std::vector<std::unique_ptr<TemplateReconstructor>> evicted;
    {
      util::MutexLock lock(template_mu);
      idle_bytes += bytes;
      idle_templates.push_back({bytes, std::move(tmpl)});
      if (options.template_cache_bytes != 0) {
        while (idle_bytes > options.template_cache_bytes &&
               !idle_templates.empty()) {
          idle_bytes -= idle_templates.front().bytes;
          evicted.push_back(std::move(idle_templates.front().tmpl));
          idle_templates.pop_front();
        }
      }
      template_cache_bytes.set(static_cast<std::int64_t>(idle_bytes));
    }
    // Solver teardown of evicted templates happens outside the lock.
    if (!evicted.empty()) {
      template_evictions.add(static_cast<std::int64_t>(evicted.size()));
      evicted.clear();
    }
    return r;
  };

  util::Mutex mu{util::LockRank::kEngine};
  std::size_t completed = resolved_count;
  std::uint64_t found = resolved_signals;
  {
    util::ThreadPool pool(out.threads_used);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (resolved[i]) continue;
      pool.submit([&, i] {
        ReconstructionResult r = run_entry(entries[i]);
        util::MutexLock lock(mu);
        found += r.signals.size();
        out.results[i] = std::move(r);
        ++completed;
        if (tracer != nullptr) {
          tracer->event("batch.progress",
                        {{"done", static_cast<std::uint64_t>(completed)},
                         {"total", static_cast<std::uint64_t>(entries.size())},
                         {"entry", static_cast<std::uint64_t>(i)},
                         {"signals", found}});
        }
        if (options.on_progress) {
          options.on_progress({entries.size(), completed, i, found});
        }
      });
    }
    pool.wait_idle();
  }

  for (const ReconstructionResult& r : out.results) out.stats += r.stats;
  out.seconds_total = std::chrono::duration<double>(Clock::now() - start).count();
  if (span.active()) {
    span.add("signals", out.signals_total());
    span.add("complete", out.complete());
    span.finish();
  }
  return out;
}

ReconstructionResult BatchReconstructor::reconstruct_split(
    const LogEntry& entry, const BatchOptions& options) const {
  options.validate();
  const ReconstructionOptions& ropts = options.recon;
  const auto start = Clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  ReconstructionResult result;

  obs::Tracer* const tracer = ropts.tracer;
  obs::Tracer::Span span;
  if (tracer != nullptr) {
    span = tracer->span("batch.reconstruct_split",
                        {{"k", static_cast<std::uint64_t>(entry.k)}});
  }

  // Encode the SR instance once; every cube branches from this state.
  // Always the single backend: cube-and-conquer is already the parallel
  // axis here, and nesting portfolio races inside cubes oversubscribes.
  const std::unique_ptr<sat::SolverInterface> base =
      sat::SolverFactory::make(ropts.solver_options());
  std::vector<sat::Var> cycle_vars;
  const bool ok = rec_.encode_base(*base, cycle_vars, entry, ropts);
  result.num_vars = base->num_vars();
  result.num_clauses = base->num_clauses();
  result.num_xors = base->num_xors();
  result.stats = base->stats();  // encode-time level-0 propagation effort
  if (!ok || !base->okay()) {
    result.final_status = sat::Status::Unsat;
    result.seconds_total = elapsed();
    if (tracer != nullptr) tracer->event("sr.trivial_unsat");
    if (span.active()) {
      span.add("signals", 0);
      span.add("status", sat::to_string(result.final_status));
      span.finish();
    }
    return result;
  }

  const std::size_t m = cycle_vars.size();
  const std::size_t g =
      std::min(options.cube_vars != 0 ? options.cube_vars : kAutoCubeVars, m);
  const std::size_t ncubes = std::size_t{1} << g;

  // Guiding-path variables: evenly spaced cycle variables, so the cubes
  // slice the trace-cycle rather than only its prefix.
  std::vector<sat::Var> split;
  split.reserve(g);
  for (std::size_t j = 0; j < g; ++j) split.push_back(cycle_vars[j * m / g]);

  struct Cube {
    sat::AllSatResult models;
    sat::SolverStats stats;
    bool done = false;
  };
  std::vector<Cube> cubes(ncubes);

  const std::uint64_t cap = ropts.max_solutions;
  std::atomic<bool> cancel{false};   // stops in-flight solves cooperatively
  bool cap_reached = false;          // guarded by `mu`
  util::Mutex mu{util::LockRank::kEngine};
  std::size_t completed = 0;
  std::uint64_t found = 0;

  {
    util::ThreadPool pool(resolve_threads(options.num_threads));
    for (std::size_t ci = 0; ci < ncubes; ++ci) {
      pool.submit([&, ci] {
        // Fold an external cancellation into the shared token (polled at
        // cube granularity; the token below is polled per conflict).
        if (ropts.limits.interrupt != nullptr &&
            ropts.limits.interrupt->load(std::memory_order_relaxed)) {
          cancel.store(true, std::memory_order_relaxed);
        }

        sat::AllSatOptions as;
        as.max_models = cap;
        as.limits = ropts.limits;
        as.limits.interrupt = &cancel;
        as.tracer = tracer;
        if (ropts.limits.max_seconds > 0) {
          // One global deadline: each cube gets what is left of it.
          as.limits.max_seconds = ropts.limits.max_seconds - elapsed();
        }
        as.assumptions.reserve(g);
        for (std::size_t j = 0; j < g; ++j) {
          as.assumptions.push_back(
              sat::Lit(split[j], /*negated=*/((ci >> j) & 1) == 0));
        }

        Cube cube;
        const bool deadline_passed =
            ropts.limits.max_seconds > 0 && as.limits.max_seconds <= 0;
        if (deadline_passed || cancel.load(std::memory_order_relaxed)) {
          cube.models.final_status = sat::Status::Unknown;
        } else {
          const std::unique_ptr<sat::SolverInterface> worker = base->clone();
          cube.models = sat::enumerate_models(*worker, cycle_vars, as);
          cube.stats = worker->stats();
        }
        cube.done = true;
        if (tracer != nullptr) {
          tracer->event(
              "batch.cube",
              {{"cube", static_cast<std::uint64_t>(ci)},
               {"models", static_cast<std::uint64_t>(cube.models.models.size())},
               {"status", sat::to_string(cube.models.final_status)},
               {"seconds", cube.models.seconds_total}});
        }

        util::MutexLock lock(mu);
        found += cube.models.models.size();
        cubes[ci] = std::move(cube);
        ++completed;
        // Prefix rule: once cubes 0..p are all finished and already supply
        // `cap` models, later cubes cannot contribute to the (cube-ordered,
        // truncated) output — stop them. Never triggered by partial results:
        // before the first cancellation every finished cube ran to its own
        // natural end, so the rule's decision is schedule-independent.
        if (!cap_reached && !cancel.load(std::memory_order_relaxed)) {
          std::uint64_t prefix = 0;
          for (const Cube& q : cubes) {
            if (!q.done) break;
            prefix += q.models.models.size();
            if (prefix >= cap) {
              cap_reached = true;
              cancel.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
        if (options.on_progress) {
          options.on_progress({ncubes, completed, ci, found});
        }
      });
    }
    pool.wait_idle();
  }

  // Deterministic merge: cube index first, discovery order within a cube.
  bool any_unknown = false;
  for (const Cube& c : cubes) {
    result.stats += c.stats;
    if (c.models.final_status == sat::Status::Unknown) any_unknown = true;
  }
  for (const Cube& c : cubes) {
    if (result.signals.size() >= cap) break;
    for (std::size_t i = 0; i < c.models.models.size(); ++i) {
      if (result.signals.size() >= cap) break;
      const std::vector<bool>& model = c.models.models[i];
      Signal s(m);
      for (std::size_t j = 0; j < model.size(); ++j) {
        if (model[j]) s.set_change(j);
      }
      result.signals.push_back(std::move(s));
      result.seconds_to_each.push_back(c.models.seconds_to_model[i]);
    }
  }
  if (ropts.verify_models) {
    // The split path materializes signals in its own merge loop, so it
    // carries its own verification hook (the other engines verify inside
    // Reconstructor/TemplateReconstructor). Also catches a cube overlap —
    // two cubes can only yield the same signal if the guiding-path
    // assumptions were mis-built — via the duplicate check.
    require_verified(rec_.encoding(), entry, result.signals, rec_.properties());
  }

  if (cap_reached) {
    result.final_status = sat::Status::Sat;  // cap hit, enumeration cut short
  } else if (any_unknown) {
    result.final_status = sat::Status::Unknown;  // a limit or interrupt fired
  } else {
    result.final_status = sat::Status::Unsat;  // every cube fully enumerated
  }
  result.seconds_total = elapsed();
  if (span.active()) {
    span.add("cubes", static_cast<std::uint64_t>(ncubes));
    span.add("signals", static_cast<std::uint64_t>(result.signals.size()));
    span.add("status", sat::to_string(result.final_status));
    span.finish();
  }
  return result;
}

}  // namespace tp::core
