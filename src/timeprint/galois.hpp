#pragma once
// galois.hpp — the abstraction/concretization pair (α, γ) of §4.1.
//
// The paper proves the logging procedure is a sound abstraction by
// exhibiting a Galois insertion between P(Sig) and P(Log):
//   * for every set F of signals,     F ⊆ γ(α(F));
//   * for every set V of log entries, V = α(γ(V)).
// These helpers compute α and γ explicitly (γ by exhaustive preimage, so
// only for small m) and check both laws — used by tests and the
// quickstart example to demonstrate Lemma 1 concretely.

#include <vector>

#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/reconstruct.hpp"
#include "timeprint/signal.hpp"

namespace tp::core {

/// α lifted to sets: abstract every signal, deduplicate.
std::vector<LogEntry> alpha(const TimestampEncoding& encoding,
                            const std::vector<Signal>& signals);

/// γ̃ of one log entry: the full preimage under α̃ (exhaustive; small m).
std::vector<Signal> gamma(const TimestampEncoding& encoding, const LogEntry& entry);

/// γ lifted to sets of log entries (deduplicated union of preimages).
std::vector<Signal> gamma(const TimestampEncoding& encoding,
                          const std::vector<LogEntry>& entries);

/// Law 1 of the Galois insertion: F ⊆ γ(α(F)).
bool check_extensive(const TimestampEncoding& encoding,
                     const std::vector<Signal>& signals);

/// Law 2 of the Galois insertion: V = α(γ(V)).
bool check_insertion(const TimestampEncoding& encoding,
                     const std::vector<LogEntry>& entries);

}  // namespace tp::core
