#pragma once
// incremental.hpp — the incremental (encode-once) reconstruction engine.
//
// The paper's workload is streaming: one decoder serves thousands of
// back-to-back trace-cycle log entries that share the same timestamp
// matrix A, properties and m, and differ only in (TP, k). The fresh-solver
// path (Reconstructor::reconstruct) re-encodes all b XOR rows plus an
// O(m·k) cardinality circuit per entry and throws away every learnt
// clause, saved phase and activity score. TemplateReconstructor instead
// encodes the base once and turns each entry into *assumption literals*
// — the MiniSat/CryptoMiniSat incremental-SAT idiom — via three tricks:
//
//  1. *Selector-variable RHS.* Every XOR row j is extended by a fresh
//     selector variable s_j and encoded with constant RHS 0:
//     (Σ_{i : A_ji = 1} x_i) ⊕ s_j = 0, i.e. the row's parity *equals*
//     s_j. Assuming s_j = TP_j per entry sets the row's right-hand side
//     without touching the clause database, so a new timeprint is just b
//     assumption literals.
//  2. *Totalizer under assumptions.* One shared Bailleux–Boufkhad
//     totalizer is built to k_max; its unary outputs o[j] ("at least j+1
//     inputs true", both implication directions encoded) turn |x| = k
//     into the two assumptions o[k-1] and ~o[k], so k varies per entry
//     with no re-encoding. (The Sinz counter hard-codes its bound, which
//     is why the template path always uses the totalizer.)
//  3. *Guard-literal retirement.* AllSAT blocking clauses carry a
//     per-entry guard literal (AllSatOptions::guard); after the entry's
//     enumeration the guard is permanently falsified, which satisfies all
//     of its blocking clauses at level 0. The next entry starts from a
//     clean model space but keeps the solver's learnt clauses, phases and
//     activities — blocking clauses only ever contain the guard
//     *negatively*, so no learnt clause can be poisoned by a retired
//     entry. Solver::simplify() then sweeps the root-satisfied ballast
//     out of the databases, keeping per-entry cost flat over arbitrarily
//     long streams.
//
// The engine is exact: for every entry it returns the same signal set as
// the fresh path (differentially tested in tests/test_incremental.cpp).
// Discovery *order* within an entry may differ — warm-started heuristic
// state steers the search — so with a max_solutions cap the two paths may
// truncate to different subsets of the preimage.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/interface.hpp"
#include "timeprint/reconstruct.hpp"

namespace tp::core {

/// Encode-once, solve-per-entry reconstruction against one timestamp
/// encoding. Not thread-safe: clone() one instance per worker (the batch
/// engine's per-worker template cache does exactly that).
class TemplateReconstructor {
 public:
  /// Build the template for `encoding` with the given known properties
  /// (all must outlive the reconstructor) under `options`. `k_max` bounds
  /// the change counts the shared totalizer can express (0 = m, the safe
  /// default); an entry with k > k_max forces a template rebuild, so pass
  /// the stream's true maximum when it is known and small.
  TemplateReconstructor(const TimestampEncoding& encoding,
                        std::vector<const Property*> properties,
                        const ReconstructionOptions& options,
                        std::size_t k_max = 0);

  /// Convenience: template over a Reconstructor's encoding and registered
  /// properties.
  TemplateReconstructor(const Reconstructor& reconstructor,
                        const ReconstructionOptions& options,
                        std::size_t k_max = 0);

  /// Decode one entry: assume the selector/totalizer literals for
  /// (TP, k), enumerate under a fresh guard, retire the guard. Returns
  /// the same fields as Reconstructor::reconstruct; `stats` is this
  /// entry's solver-effort delta.
  ReconstructionResult reconstruct(const LogEntry& entry);

  /// Independent copy with the same encoded base *and* the accumulated
  /// warm state (learnt clauses, phases, activities). Statistics start at
  /// zero in the clone.
  std::unique_ptr<TemplateReconstructor> clone() const;

  /// Largest change count the current template expresses via assumptions.
  std::size_t k_max() const { return k_max_; }

  /// Lifetime counters of this template instance.
  struct Stats {
    std::int64_t entries = 0;   ///< reconstruct() calls served
    std::int64_t builds = 0;    ///< base encodes, incl. the initial one
    /// Learnt clauses alive at entry start, summed over entries after the
    /// first — the clause capital the fresh path would have discarded.
    std::int64_t learnt_retained = 0;
    /// Budgeted inprocess() rounds run by the schedule (every
    /// SolverConfig::inprocess_interval entries and at rebuild edges).
    std::int64_t inprocess_rounds = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Approximate retained clause-storage bytes of the underlying solver —
  /// the quantity the batch engine's template cache bounds with LRU
  /// eviction.
  std::size_t retained_bytes() const { return solver_->retained_bytes(); }

  /// The encoding this template decodes against.
  const TimestampEncoding& encoding() const { return *enc_; }

 private:
  TemplateReconstructor(const TemplateReconstructor& other);

  /// (Re)encode the base into a fresh solver.
  void build();

  const TimestampEncoding* enc_;
  std::vector<const Property*> properties_;
  ReconstructionOptions options_;
  std::size_t k_max_;
  /// Shared echelon factorization of the encoding's matrix. With
  /// options_.presolve (and no proof sink) the base is encoded in
  /// substituted form — rank(A) selector XOR rows instead of b, pivot
  /// variables defined over the free columns — per-entry assumptions are
  /// the *transformed* timeprint bits, inconsistent entries return
  /// without a solve, and a small-nullity encoding bypasses the solver
  /// for every entry (decode_by_enumeration). Clones share the (const)
  /// factorization.
  std::shared_ptr<const F2Presolve> presolve_;
  bool presolved_base_ = false;
  std::unique_ptr<sat::SolverInterface> solver_;
  std::vector<sat::Var> cycle_vars_;
  std::vector<sat::Var> selectors_;   ///< one per XOR row (b, or rank(A))
  std::vector<sat::Lit> card_outs_;   ///< shared totalizer outputs
  bool encode_ok_ = true;
  Stats stats_;
};

}  // namespace tp::core
