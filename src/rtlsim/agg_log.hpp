#pragma once
// agg_log.hpp — register-level model of the timeprints agg-log unit.
//
// The hardware of Figure 3 / §5.2.2: a b-bit XOR-accumulator register, a
// change counter and a trace-cycle phase counter. Each clock cycle the
// change input is sampled; when set, the current cycle's timestamp (from a
// ROM initialized with the encoding) is XORed into the accumulator and the
// counter increments. At the trace-cycle boundary the (TP, k) pair is
// latched into an output register, the `entry_valid` strobe is raised for
// one cycle, and the accumulators clear — ready for the next back-to-back
// trace-cycle with no dead time and no trace buffer.
//
// The unit is the synthesizable twin of core::StreamingLogger; the test
// suite proves cycle-exact equivalence between the two.

#include "f2/bitvec.hpp"
#include "rtlsim/sim.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"

namespace tp::rtl {

/// Register-level timeprint generator (the "timeprints agg-log HW").
class AggLogUnit final : public Component {
 public:
  /// The encoding acts as the timestamp ROM; it must outlive the unit.
  explicit AggLogUnit(const core::TimestampEncoding& encoding);

  /// Drive the change input for the upcoming eval (combinational input).
  void set_change(bool change) { change_in_ = change; }

  /// One-cycle strobe: a log entry was produced at the last clock edge.
  bool entry_valid() const { return valid_.read(); }

  /// The latched output entry (valid while entry_valid()).
  core::LogEntry entry() const { return {out_tp_.read(), out_k_.read()}; }

  /// Convenience: every entry produced so far, in order (the "central
  /// database" the paper streams entries to).
  const core::TraceLog& log() const { return log_; }

  /// Phase within the current trace-cycle (0..m-1, committed value).
  std::size_t phase() const { return phase_.read(); }

  void eval() override;
  void commit() override;
  void reset() override;

 private:
  const core::TimestampEncoding* enc_;
  bool change_in_ = false;

  Reg<f2::BitVec> tp_;
  Reg<std::size_t> k_{0};
  Reg<std::size_t> phase_{0};
  Reg<f2::BitVec> out_tp_;
  Reg<std::size_t> out_k_{0};
  Reg<bool> valid_{false};

  core::TraceLog log_;
};

}  // namespace tp::rtl
