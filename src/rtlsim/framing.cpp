#include "rtlsim/framing.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace tp::rtl {

std::size_t entry_payload_bits(std::size_t m, std::size_t b) {
  return b + core::counter_bits(m);
}

std::vector<bool> serialize_entry(const core::LogEntry& entry, std::size_t m) {
  const std::size_t b = entry.tp.size();
  const std::size_t kb = core::counter_bits(m);
  assert(entry.k <= m);
  std::vector<bool> bits;
  bits.reserve(b + kb);
  for (std::size_t i = 0; i < b; ++i) bits.push_back(entry.tp.get(i));
  for (std::size_t i = 0; i < kb; ++i) bits.push_back((entry.k >> i) & 1);
  return bits;
}

core::LogEntry deserialize_entry(const std::vector<bool>& bits, std::size_t m,
                                 std::size_t b) {
  // Frames come off a wire (the RTL stream, a saved capture): a wrong
  // payload size or an impossible counter is data corruption, which must
  // surface in release builds too — not only under NDEBUG-off asserts.
  const std::size_t kb = core::counter_bits(m);
  if (bits.size() != b + kb) {
    throw std::runtime_error(
        "deserialize_entry: payload is " + std::to_string(bits.size()) +
        " bits, expected " + std::to_string(b + kb) + " (b=" +
        std::to_string(b) + " + counter=" + std::to_string(kb) + ")");
  }
  f2::BitVec tp(b);
  for (std::size_t i = 0; i < b; ++i) tp.set(i, bits[i]);
  std::size_t k = 0;
  for (std::size_t i = 0; i < kb; ++i) {
    if (bits[b + i]) k |= std::size_t{1} << i;
  }
  if (k > m) {
    throw std::runtime_error("deserialize_entry: change count k=" +
                             std::to_string(k) + " exceeds trace-cycle length m=" +
                             std::to_string(m));
  }
  return {std::move(tp), k};
}

}  // namespace tp::rtl
