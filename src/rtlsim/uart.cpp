#include "rtlsim/uart.hpp"

#include <cassert>

namespace tp::rtl {

UartTx::UartTx(std::size_t divisor) : divisor_(divisor) { assert(divisor >= 1); }

void UartTx::send(std::vector<bool> payload) {
  std::vector<bool> frame;
  frame.reserve(payload.size() + 2);
  frame.push_back(false);  // start
  frame.insert(frame.end(), payload.begin(), payload.end());
  frame.push_back(true);  // stop
  queue_.push_back(std::move(frame));
  max_queue_ = std::max(max_queue_, queue_.size());
}

void UartTx::eval() {
  next_ = state_;
  if (!next_.active) {
    if (!queue_.empty()) {
      next_.active = true;
      next_.bits = std::move(queue_.front());
      queue_.pop_front();
      next_.idx = 0;
      next_.phase = 0;
      next_.line = next_.bits[0];
    } else {
      next_.line = true;
    }
    return;
  }
  if (++next_.phase == divisor_) {
    next_.phase = 0;
    if (++next_.idx == next_.bits.size()) {
      next_.active = false;
      next_.line = true;
    } else {
      next_.line = next_.bits[next_.idx];
    }
  }
}

void UartTx::commit() { state_ = next_; }

void UartTx::reset() {
  queue_.clear();
  max_queue_ = 0;
  state_ = State{};
  next_ = State{};
}

UartRx::UartRx(std::size_t divisor, std::size_t payload_bits,
               std::function<bool()> line)
    : divisor_(divisor), payload_bits_(payload_bits), line_(std::move(line)) {
  assert(divisor_ >= 1);
}

void UartRx::eval() { sampled_ = line_(); }

void UartRx::commit() {
  switch (mode_) {
    case Mode::Idle:
      if (!sampled_) {
        // Falling edge: start bit. Sample the first data bit 1.5 bit-times
        // after the edge (mid-bit).
        mode_ = Mode::Data;
        countdown_ = divisor_ + divisor_ / 2;
        bits_.clear();
      }
      break;
    case Mode::Data:
      if (--countdown_ == 0) {
        bits_.push_back(sampled_);
        if (bits_.size() == payload_bits_) {
          mode_ = Mode::Stop;
        }
        countdown_ = divisor_;
      }
      break;
    case Mode::Stop:
      if (--countdown_ == 0) {
        if (sampled_) {
          frames_.push_back(bits_);
        } else {
          ++framing_errors_;
        }
        mode_ = Mode::Idle;
      }
      break;
  }
}

void UartRx::reset() {
  sampled_ = true;
  mode_ = Mode::Idle;
  countdown_ = 0;
  bits_.clear();
  frames_.clear();
  framing_errors_ = 0;
}

}  // namespace tp::rtl
