#pragma once
// sim.hpp — a small two-phase cycle-based RTL simulation kernel.
//
// The paper's §5.2.2 experiment implements the timeprints agg-log unit in
// hardware (Nexys3 FPGA next to a LEON3) and cross-checks it against a
// cycle-accurate RTL simulation (QuestaSim). This kernel plays the role of
// the RTL simulator: registered components evaluate combinationally from
// the *committed* state of the previous cycle (eval phase) and then latch
// simultaneously (commit phase), which reproduces synchronous-hardware
// semantics without delta cycles.

#include <cstdint>
#include <vector>

namespace tp::rtl {

/// A synchronous hardware block. eval() computes next-state from current
/// (committed) state and inputs; commit() latches it. Components must not
/// observe other components' *next* state during eval.
class Component {
 public:
  virtual ~Component() = default;

  /// Combinational phase: compute next state.
  virtual void eval() = 0;

  /// Clock edge: latch next state.
  virtual void commit() = 0;

  /// Asynchronous reset to the power-on state.
  virtual void reset() = 0;
};

/// A D-type register holding a value of type T with two-phase semantics.
template <typename T>
class Reg {
 public:
  Reg() = default;
  explicit Reg(T reset_value)
      : cur_(reset_value), next_(reset_value), reset_(reset_value) {}

  /// The committed (current-cycle) value.
  const T& read() const { return cur_; }

  /// Schedule a value for the next clock edge.
  void write(T v) { next_ = std::move(v); }

  /// Latch (called from Component::commit).
  void commit() { cur_ = next_; }

  /// Return to the reset value.
  void reset() { cur_ = next_ = reset_; }

 private:
  T cur_{};
  T next_{};
  T reset_{};
};

/// Drives a set of components with a common clock.
class Simulator {
 public:
  /// Register a component (not owned; must outlive the simulator).
  void add(Component& c) { components_.push_back(&c); }

  /// One clock cycle: eval all, then commit all.
  void step() {
    for (Component* c : components_) c->eval();
    for (Component* c : components_) c->commit();
    ++cycle_;
  }

  /// Run n clock cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

  /// Cycles elapsed since construction/reset.
  std::uint64_t cycle() const { return cycle_; }

  /// Reset every component and the cycle counter.
  void reset() {
    for (Component* c : components_) c->reset();
    cycle_ = 0;
  }

 private:
  std::vector<Component*> components_;
  std::uint64_t cycle_ = 0;
};

}  // namespace tp::rtl
