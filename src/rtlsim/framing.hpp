#pragma once
// framing.hpp — bit-level (de)serialization of log entries for the wire.
//
// A log entry occupies exactly b + ceil(log2(m+1)) payload bits: the
// timeprint (coordinate 0 first) followed by the change counter k
// (LSB first). The fixed width is what makes the paper's logging rate
// constant and the stream trivially searchable.

#include <vector>

#include "timeprint/logger.hpp"

namespace tp::rtl {

/// Serialize an entry into the fixed-width payload (b + counter bits).
std::vector<bool> serialize_entry(const core::LogEntry& entry, std::size_t m);

/// Inverse of serialize_entry. Throws std::runtime_error if `bits` is not
/// exactly b + counter_bits(m) long, or if the decoded change count
/// exceeds m (a counter pattern no legal trace-cycle can produce —
/// corruption, a framing slip, or a width mismatch).
core::LogEntry deserialize_entry(const std::vector<bool>& bits, std::size_t m,
                                 std::size_t b);

/// Payload width in bits of one entry.
std::size_t entry_payload_bits(std::size_t m, std::size_t b);

}  // namespace tp::rtl
