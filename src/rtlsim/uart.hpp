#pragma once
// uart.hpp — the "simplified USB-UART transmitter" of §5.2.2.
//
// Log entries leave the chip over a bit-serial line: each frame is a start
// bit (0), a fixed-length payload and a stop bit (1); the line idles high.
// A matching receiver model lets tests close the loop (agg-log -> TX ->
// line -> RX -> reconstructed TraceLog). The transmitter's FIFO depth is
// observable so experiments can demonstrate the paper's constant-rate
// claim: when the line rate covers (b + log m + 2 framing bits) per m
// clock cycles, the queue never grows — no trace buffer needed.

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "rtlsim/sim.hpp"

namespace tp::rtl {

/// Bit-serial transmitter with start/stop framing and a frame FIFO.
class UartTx final : public Component {
 public:
  /// divisor = clock cycles per line bit (>= 1).
  explicit UartTx(std::size_t divisor);

  /// Queue a payload for transmission (bits are sent in vector order,
  /// framed by a start 0 and a stop 1).
  void send(std::vector<bool> payload);

  /// Line level this cycle (idle high).
  bool line() const { return state_.line; }

  /// True while a frame is on the wire or queued.
  bool busy() const { return state_.active || !queue_.empty(); }

  /// Frames currently waiting (excludes the one being sent).
  std::size_t queue_depth() const { return queue_.size(); }

  /// High-water mark of the FIFO since reset — the paper's no-trace-buffer
  /// argument is "this stays at 0 or 1".
  std::size_t max_queue_depth() const { return max_queue_; }

  void eval() override;
  void commit() override;
  void reset() override;

 private:
  struct State {
    bool active = false;
    bool line = true;
    std::vector<bool> bits;  // start + payload + stop
    std::size_t idx = 0;     // bit being driven
    std::size_t phase = 0;   // clock cycles into the current bit
  };

  std::size_t divisor_;
  std::deque<std::vector<bool>> queue_;
  std::size_t max_queue_ = 0;
  State state_;
  State next_;
};

/// Bit-serial receiver expecting fixed-length payloads.
class UartRx final : public Component {
 public:
  /// `line` is sampled during eval (so it sees the transmitter's committed
  /// value); payload_bits is the fixed frame payload length.
  UartRx(std::size_t divisor, std::size_t payload_bits,
         std::function<bool()> line);

  /// Completed payloads, in arrival order.
  const std::vector<std::vector<bool>>& frames() const { return frames_; }

  /// Stop-bit violations observed.
  std::size_t framing_errors() const { return framing_errors_; }

  void eval() override;
  void commit() override;
  void reset() override;

 private:
  enum class Mode { Idle, Data, Stop };

  std::size_t divisor_;
  std::size_t payload_bits_;
  std::function<bool()> line_;
  bool sampled_ = true;

  Mode mode_ = Mode::Idle;
  std::size_t countdown_ = 0;
  std::vector<bool> bits_;
  std::vector<std::vector<bool>> frames_;
  std::size_t framing_errors_ = 0;
};

}  // namespace tp::rtl
