#include "rtlsim/agg_log.hpp"

namespace tp::rtl {

AggLogUnit::AggLogUnit(const core::TimestampEncoding& encoding)
    : enc_(&encoding),
      tp_(f2::BitVec(encoding.width())),
      out_tp_(f2::BitVec(encoding.width())),
      log_(encoding.m(), encoding.width()) {}

void AggLogUnit::eval() {
  const std::size_t m = enc_->m();
  const std::size_t phase = phase_.read();

  // Aggregation datapath: accumulator and counter including this cycle's
  // change bit.
  f2::BitVec tp_next = tp_.read();
  std::size_t k_next = k_.read();
  if (change_in_) {
    tp_next ^= enc_->timestamp(phase);
    ++k_next;
  }

  if (phase == m - 1) {
    // Trace-cycle boundary: latch the completed entry and clear the
    // accumulators for the next back-to-back trace-cycle.
    out_tp_.write(tp_next);
    out_k_.write(k_next);
    valid_.write(true);
    tp_.write(f2::BitVec(enc_->width()));
    k_.write(0);
    phase_.write(0);
  } else {
    out_tp_.write(out_tp_.read());
    out_k_.write(out_k_.read());
    valid_.write(false);
    tp_.write(std::move(tp_next));
    k_.write(k_next);
    phase_.write(phase + 1);
  }
}

void AggLogUnit::commit() {
  tp_.commit();
  k_.commit();
  phase_.commit();
  out_tp_.commit();
  out_k_.commit();
  valid_.commit();
  if (valid_.read()) {
    log_.append({out_tp_.read(), out_k_.read()});
  }
}

void AggLogUnit::reset() {
  tp_.reset();
  k_.reset();
  phase_.reset();
  out_tp_.reset();
  out_k_.reset();
  valid_.reset();
  log_ = core::TraceLog(enc_->m(), enc_->width());
}

}  // namespace tp::rtl
