#pragma once
// system.hpp — the Lion3 SoC: core + AHB memory with wait states, PSRAM
// temperature-compensated refresh and a thermal model.
//
// This is the substrate of §5.2.2. Two instances of the same SoC image are
// compared: the "FPGA" (refresh enabled, temperature evolving with
// activity) and the "RTL simulation" (plain SRAM model, no refresh — the
// Gaisler simulation library the paper used). A misconfigured wait-state
// count in the simulation shows up as a per-trace-cycle change-count (k)
// mismatch; after fixing it, the only remaining difference is the
// occasional one-cycle delay of a bus address event when an access
// collides with a PSRAM refresh slot — which happens earlier at higher
// temperature because the refresh rate is temperature-compensated.
//
// Modelling note (documented in DESIGN.md): a refresh collision delays the
// *visible address-phase event* by one clock cycle while the access'
// completion time stays inside its timing margin, so core timing (and thus
// k) is unaffected — matching the paper's observation that k agreed while
// timeprints diverged by exactly one delayed change instance.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "soc/isa.hpp"
#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/signal.hpp"

namespace tp::soc {

/// Memory-system and environment parameters.
struct MemoryConfig {
  /// Extra cycles after the address phase before data is ready. The
  /// experiment's bug: the simulation model had the wrong value.
  unsigned wait_states = 1;
  /// Enable PSRAM temperature-compensated distributed refresh.
  bool refresh_enabled = false;
  /// Ambient (board) temperature in °C.
  double ambient_c = 25.0;
  /// Refresh interval at 25 °C, in clock cycles.
  std::uint64_t refresh_base_interval = 4096;
  /// Interval shrinks by this many cycles per °C above 25 (temperature-
  /// compensated refresh: hotter silicon leaks faster).
  double refresh_slope = 40.0;
  /// Lower bound on the interval.
  std::uint64_t refresh_min_interval = 512;
  /// Cycles one refresh slot occupies the array. An access issued inside
  /// the slot has its visible address event deferred by one cycle (the
  /// completion margin absorbs the rest).
  std::uint64_t refresh_duration = 3;
  /// Offset of the first refresh slot (cycles). Varying it models the
  /// uncontrolled alignment between power-on and the refresh oscillator
  /// across the paper's re-runs.
  std::uint64_t refresh_phase = 0;
  /// Die heating per memory access (°C).
  double heat_per_access = 0.002;
  /// First-order cooling time constant (cycles).
  double tau_cycles = 20000.0;
};

/// Cycle-stepped model of the Lion3 SoC.
class SocSystem {
 public:
  struct Config {
    std::vector<Instr> program;
    MemoryConfig mem;
  };

  explicit SocSystem(Config config);

  /// Advance one clock cycle.
  void tick();

  /// True once the core executed Halt.
  bool halted() const { return halted_; }

  /// The traced bit for the *current* cycle (valid after tick()): did the
  /// AHB address bus change value this cycle?
  bool addr_changed() const { return addr_changed_now_; }

  /// Cycles elapsed.
  std::uint64_t cycle() const { return cycle_; }

  /// Die temperature (°C).
  double temperature() const { return temp_c_; }

  /// Number of refreshes performed / of address events jittered by one.
  std::uint64_t refresh_count() const { return refresh_count_; }
  std::uint64_t refresh_collisions() const { return collisions_; }

  /// Retired instruction count.
  std::uint64_t instructions() const { return instructions_; }

  /// Data memory (word-addressed by byte address).
  const std::unordered_map<std::uint32_t, std::uint32_t>& memory() const {
    return mem_;
  }

  /// Register file (r0 reads as 0, LEON-style).
  std::int32_t reg(int r) const { return r == 0 ? 0 : regs_[static_cast<std::size_t>(r)]; }

 private:
  void issue_access(std::uint32_t addr, bool write, std::uint32_t wdata);
  std::uint64_t refresh_interval() const;

  Config cfg_;
  std::vector<std::int32_t> regs_;
  std::unordered_map<std::uint32_t, std::uint32_t> mem_;
  std::size_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t cycle_ = 0;
  std::uint64_t instructions_ = 0;

  // Memory transaction in flight.
  bool mem_busy_ = false;
  std::uint64_t mem_done_at_ = 0;
  bool mem_is_load_ = false;
  int mem_rd_ = 0;
  std::uint32_t mem_addr_ = 0;

  // Visible address bus.
  std::uint32_t bus_addr_ = 0xFFFFFFFF;
  bool addr_changed_now_ = false;
  bool pending_change_ = false;  ///< change deferred one cycle by refresh

  // Refresh & thermal.
  std::uint64_t next_refresh_ = 0;
  std::uint64_t refresh_count_ = 0;
  std::uint64_t collisions_ = 0;
  double temp_c_;
};

/// Result of running a traced SoC.
struct SocRunResult {
  core::TraceLog log;                ///< the logged timeprints
  std::vector<core::Signal> signals; ///< ground-truth change signal per trace-cycle
  double final_temperature = 0.0;
  std::uint64_t refresh_collisions = 0;
  std::uint64_t cycles = 0;
};

/// Run the SoC for up to `max_cycles` (or until halt, rounded up to a full
/// trace-cycle), logging timeprints of the AHB address-change signal with
/// the given encoding.
SocRunResult run_soc(const SocSystem::Config& config,
                     const core::TimestampEncoding& encoding,
                     std::uint64_t max_cycles);

}  // namespace tp::soc
