#pragma once
// isa.hpp — the Lion3 mini-ISA.
//
// The §5.2.2 experiment runs a software image on a LEON3 and traces the
// AHB address bus. Our stand-in core ("Lion3") executes a small
// register-machine ISA that is rich enough to produce realistic,
// program-dependent memory traffic: immediate loads, ALU ops, loads/stores
// through the bus, and branches. Programs are deterministic, so two runs
// of the same image produce identical bus activity unless the memory
// system differs — which is exactly what the experiment detects.

#include <cstdint>
#include <vector>

namespace tp::soc {

/// Instruction opcodes.
enum class Op : std::uint8_t {
  Nop,    ///< do nothing (1 cycle)
  Halt,   ///< stop the core
  LoadI,  ///< rd = imm
  Load,   ///< rd = mem[ra + imm] (issues a bus read)
  Store,  ///< mem[ra + imm] = rb (issues a bus write)
  Add,    ///< rd = ra + rb
  Sub,    ///< rd = ra - rb
  AddI,   ///< rd = ra + imm
  Bne,    ///< if ra != rb: pc += imm (relative, in instructions)
  Jmp,    ///< pc += imm
};

/// One instruction. Fields are used per-opcode (see Op).
struct Instr {
  Op op = Op::Nop;
  int rd = 0;
  int ra = 0;
  int rb = 0;
  std::int32_t imm = 0;
};

/// Number of general-purpose registers.
inline constexpr int kNumRegs = 16;

// Tiny assembler helpers (keep example programs readable).
inline Instr nop() { return {Op::Nop, 0, 0, 0, 0}; }
inline Instr halt() { return {Op::Halt, 0, 0, 0, 0}; }
inline Instr loadi(int rd, std::int32_t imm) { return {Op::LoadI, rd, 0, 0, imm}; }
inline Instr load(int rd, int ra, std::int32_t imm) { return {Op::Load, rd, ra, 0, imm}; }
inline Instr store(int rb, int ra, std::int32_t imm) { return {Op::Store, 0, ra, rb, imm}; }
inline Instr add(int rd, int ra, int rb) { return {Op::Add, rd, ra, rb, 0}; }
inline Instr sub(int rd, int ra, int rb) { return {Op::Sub, rd, ra, rb, 0}; }
inline Instr addi(int rd, int ra, std::int32_t imm) { return {Op::AddI, rd, ra, 0, imm}; }
inline Instr bne(int ra, int rb, std::int32_t imm) { return {Op::Bne, 0, ra, rb, imm}; }
inline Instr jmp(std::int32_t imm) { return {Op::Jmp, 0, 0, 0, imm}; }

/// The experiment's demo image: writes a Fibonacci table to memory, then
/// repeatedly sweeps it computing a running sum — a loop-heavy, load/store-
/// dense workload whose bus traffic pattern varies over time.
std::vector<Instr> demo_image(int table_size = 32, int sweeps = 64);

/// Block-copy image: copies `words` words from 0x2000 to 0x3000 after
/// initializing the source — a store/load-alternating traffic pattern
/// distinct from demo_image's.
std::vector<Instr> memcpy_image(int words = 64);

/// Dense n×n integer matrix multiply (sources initialized to small
/// deterministic values, result stored) — the most load-heavy pattern,
/// with long bursts per result element.
std::vector<Instr> matmul_image(int n = 6);

}  // namespace tp::soc
