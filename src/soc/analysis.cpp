#include "soc/analysis.hpp"

#include "timeprint/properties.hpp"

namespace tp::soc {

Divergence compare_logs(const core::TraceLog& hw, const core::TraceLog& sim) {
  Divergence d;
  d.first_k_mismatch = hw.first_count_mismatch(sim);
  d.first_entry_mismatch = hw.first_mismatch(sim);
  d.compared = std::min(hw.size(), sim.size());
  return d;
}

std::optional<DelayLocalization> localize_delay(
    const core::TimestampEncoding& encoding, const core::LogEntry& hw_entry,
    const core::Signal& sim_signal, std::size_t delay,
    const core::ReconstructionOptions& options) {
  core::OneChangeDelayed hypothesis(sim_signal, delay);
  if (hypothesis.variants().empty()) return std::nullopt;

  core::Reconstructor rec(encoding);
  rec.add_property(hypothesis);

  core::ReconstructionOptions opts = options;
  opts.max_solutions = 2;  // uniqueness check: a second solution disqualifies
  const auto result = rec.reconstruct(hw_entry, opts);
  // Require exactly one solution, with the enumeration proving there is no
  // second one (complete() == the final solve returned Unsat).
  if (result.signals.size() != 1 || !result.complete()) return std::nullopt;

  const core::Signal& hw_signal = result.signals.front();
  // The delayed cycle: the reference change missing from the hw signal.
  for (std::size_t c : sim_signal.change_cycles()) {
    if (!hw_signal.has_change(c)) {
      DelayLocalization loc;
      loc.delayed_cycle = c;
      loc.hw_signal = hw_signal;
      loc.seconds = result.seconds_total;
      return loc;
    }
  }
  return std::nullopt;  // signals identical (shouldn't happen: TP differed)
}

}  // namespace tp::soc
