#include "soc/isa.hpp"

namespace tp::soc {

std::vector<Instr> demo_image(int table_size, int sweeps) {
  // r1 = i, r2 = fib(i-1), r3 = fib(i), r4 = base address, r5 = limit,
  // r6 = scratch, r7 = sum, r8 = sweep counter, r9 = sweep limit.
  std::vector<Instr> p;

  // --- phase 1: fill fib table ---
  p.push_back(loadi(1, 0));            // i = 0
  p.push_back(loadi(2, 0));            // fib(-1) = 0
  p.push_back(loadi(3, 1));            // fib(0) = 1
  p.push_back(loadi(4, 0x1000));       // base
  p.push_back(loadi(5, table_size));   // limit
  const std::int32_t fill_loop = static_cast<std::int32_t>(p.size());
  p.push_back(store(3, 4, 0));         // mem[base] = fib
  p.push_back(add(6, 2, 3));           // next = fib(i-1) + fib(i)
  p.push_back(add(2, 3, 0 /*r0=0*/));  // shift (r0 stays 0)
  p.push_back(add(3, 6, 0));
  p.push_back(addi(4, 4, 4));          // base += 4
  p.push_back(addi(1, 1, 1));          // ++i
  p.push_back(bne(1, 5, fill_loop - static_cast<std::int32_t>(p.size()) - 1));

  // --- phase 2: repeated sweeps summing the table ---
  p.push_back(loadi(8, 0));           // sweep = 0
  p.push_back(loadi(9, sweeps));      // sweep limit
  const std::int32_t sweep_outer = static_cast<std::int32_t>(p.size());
  p.push_back(loadi(4, 0x1000));      // base
  p.push_back(loadi(1, 0));           // i = 0
  p.push_back(loadi(7, 0));           // sum = 0
  const std::int32_t sweep_inner = static_cast<std::int32_t>(p.size());
  p.push_back(load(6, 4, 0));         // x = mem[base]
  p.push_back(add(7, 7, 6));          // sum += x
  p.push_back(addi(4, 4, 4));
  p.push_back(addi(1, 1, 1));
  p.push_back(nop());                 // compute slack between accesses
  p.push_back(bne(1, 5, sweep_inner - static_cast<std::int32_t>(p.size()) - 1));
  p.push_back(store(7, 4, 64));       // mem[end+64] = sum (varies per sweep)
  p.push_back(addi(8, 8, 1));
  p.push_back(bne(8, 9, sweep_outer - static_cast<std::int32_t>(p.size()) - 1));

  p.push_back(halt());
  return p;
}

std::vector<Instr> memcpy_image(int words) {
  // r1 = i, r2 = src, r3 = dst, r4 = limit, r5 = scratch.
  std::vector<Instr> p;
  p.push_back(loadi(1, 0));
  p.push_back(loadi(2, 0x2000));
  p.push_back(loadi(4, words));
  const std::int32_t init_loop = static_cast<std::int32_t>(p.size());
  p.push_back(store(1, 2, 0));  // src[i] = i
  p.push_back(addi(2, 2, 4));
  p.push_back(addi(1, 1, 1));
  p.push_back(bne(1, 4, init_loop - static_cast<std::int32_t>(p.size()) - 1));

  p.push_back(loadi(1, 0));
  p.push_back(loadi(2, 0x2000));
  p.push_back(loadi(3, 0x3000));
  const std::int32_t copy_loop = static_cast<std::int32_t>(p.size());
  p.push_back(load(5, 2, 0));
  p.push_back(store(5, 3, 0));
  p.push_back(addi(2, 2, 4));
  p.push_back(addi(3, 3, 4));
  p.push_back(addi(1, 1, 1));
  p.push_back(bne(1, 4, copy_loop - static_cast<std::int32_t>(p.size()) - 1));
  p.push_back(halt());
  return p;
}

std::vector<Instr> matmul_image(int n) {
  // A at 0x4000, B at 0x5000, C at 0x6000, row-major, 4-byte words.
  // r1 = i, r2 = j, r3 = l, r4 = n, r5 = acc, r6/r7 = operands,
  // r8/r9/r10 = addresses, r11 = scratch.
  std::vector<Instr> p;
  p.push_back(loadi(4, n));

  // Initialize A[i] = i+1 and B[i] = i+2 over n*n words.
  p.push_back(loadi(1, 0));
  p.push_back(loadi(8, 0x4000));
  p.push_back(loadi(9, 0x5000));
  p.push_back(loadi(11, n * n));
  const std::int32_t init_loop = static_cast<std::int32_t>(p.size());
  p.push_back(addi(5, 1, 1));
  p.push_back(store(5, 8, 0));
  p.push_back(addi(5, 1, 2));
  p.push_back(store(5, 9, 0));
  p.push_back(addi(8, 8, 4));
  p.push_back(addi(9, 9, 4));
  p.push_back(addi(1, 1, 1));
  p.push_back(bne(1, 11, init_loop - static_cast<std::int32_t>(p.size()) - 1));

  // Triple loop: C[i][j] = sum_l A[i][l] * ... (ISA has no multiply; use
  // repeated addition of A-element via the l loop: acc += A[i][l] + B[l][j]
  // — a deterministic stand-in that still walks both matrices.)
  p.push_back(loadi(1, 0));  // i
  const std::int32_t i_loop = static_cast<std::int32_t>(p.size());
  p.push_back(loadi(2, 0));  // j
  const std::int32_t j_loop = static_cast<std::int32_t>(p.size());
  p.push_back(loadi(3, 0));  // l
  p.push_back(loadi(5, 0));  // acc
  const std::int32_t l_loop = static_cast<std::int32_t>(p.size());
  // The ISA has no multiply, so addresses walk the first matrix rows
  // linearly (r8 = 0x4000 + 4*l, r9 = 0x5000 + 4*l): the bus traffic
  // pattern — interleaved double loads per inner iteration — is what the
  // tracing experiments care about, not the arithmetic.
  p.push_back(loadi(8, 0x4000));
  p.push_back(add(8, 8, 3));
  p.push_back(add(8, 8, 3));
  p.push_back(add(8, 8, 3));
  p.push_back(add(8, 8, 3));  // r8 = 0x4000 + 4*l
  p.push_back(load(6, 8, 0));
  p.push_back(loadi(9, 0x5000));
  p.push_back(add(9, 9, 3));
  p.push_back(add(9, 9, 3));
  p.push_back(add(9, 9, 3));
  p.push_back(add(9, 9, 3));
  p.push_back(load(7, 9, 0));
  p.push_back(add(5, 5, 6));
  p.push_back(add(5, 5, 7));
  p.push_back(addi(3, 3, 1));
  p.push_back(bne(3, 4, l_loop - static_cast<std::int32_t>(p.size()) - 1));
  // Result store: one write per (i, j) at 0x6000 + 4*j (row-overwriting —
  // again, the store burst pattern is what matters downstream).
  p.push_back(loadi(10, 0x6000));
  p.push_back(add(10, 10, 2));
  p.push_back(add(10, 10, 2));
  p.push_back(add(10, 10, 2));
  p.push_back(add(10, 10, 2));
  p.push_back(store(5, 10, 0));
  p.push_back(addi(2, 2, 1));
  p.push_back(bne(2, 4, j_loop - static_cast<std::int32_t>(p.size()) - 1));
  p.push_back(addi(1, 1, 1));
  p.push_back(bne(1, 4, i_loop - static_cast<std::int32_t>(p.size()) - 1));
  p.push_back(halt());
  return p;
}

}  // namespace tp::soc
