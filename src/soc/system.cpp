#include "soc/system.hpp"

#include <algorithm>
#include <cassert>

namespace tp::soc {

SocSystem::SocSystem(Config config)
    : cfg_(std::move(config)),
      regs_(kNumRegs, 0),
      temp_c_(cfg_.mem.ambient_c) {
  next_refresh_ = cfg_.mem.refresh_enabled
                      ? cfg_.mem.refresh_phase + refresh_interval()
                      : UINT64_MAX;
}

std::uint64_t SocSystem::refresh_interval() const {
  const double excess = std::max(0.0, temp_c_ - 25.0);
  const double interval =
      static_cast<double>(cfg_.mem.refresh_base_interval) -
      cfg_.mem.refresh_slope * excess;
  const double floor_val = static_cast<double>(cfg_.mem.refresh_min_interval);
  return static_cast<std::uint64_t>(std::max(interval, floor_val));
}

void SocSystem::issue_access(std::uint32_t addr, bool write, std::uint32_t wdata) {
  // Refresh collision: the address-phase event becomes visible one cycle
  // late; the access' completion is unaffected (absorbed by margin).
  const bool refresh_now = cfg_.mem.refresh_enabled &&
                           cycle_ >= next_refresh_ &&
                           cycle_ < next_refresh_ + cfg_.mem.refresh_duration;
  const bool changed = addr != bus_addr_;
  bus_addr_ = addr;
  if (changed) {
    if (refresh_now) {
      pending_change_ = true;  // visible next cycle
      ++collisions_;
    } else {
      addr_changed_now_ = true;
    }
  }
  mem_busy_ = true;
  mem_done_at_ = cycle_ + 1 + cfg_.mem.wait_states;
  mem_is_load_ = !write;
  mem_addr_ = addr;
  if (write) mem_[addr] = wdata;
}

void SocSystem::tick() {
  // --- refresh scheduling & thermal bookkeeping happen every cycle ---
  addr_changed_now_ = false;
  if (pending_change_) {
    addr_changed_now_ = true;
    pending_change_ = false;
  }

  bool accessed = false;

  if (!halted_) {
    if (mem_busy_) {
      if (cycle_ >= mem_done_at_) {
        // Data phase completes this cycle.
        if (mem_is_load_) {
          auto it = mem_.find(mem_addr_);
          if (mem_rd_ != 0) {
            regs_[static_cast<std::size_t>(mem_rd_)] =
                it == mem_.end() ? 0 : static_cast<std::int32_t>(it->second);
          }
        }
        mem_busy_ = false;
      }
    }
    if (!mem_busy_ && pc_ < cfg_.program.size()) {
      const Instr& in = cfg_.program[pc_];
      ++instructions_;
      auto rr = [&](int r) { return r == 0 ? 0 : regs_[static_cast<std::size_t>(r)]; };
      auto wr = [&](int r, std::int32_t v) {
        if (r != 0) regs_[static_cast<std::size_t>(r)] = v;
      };
      switch (in.op) {
        case Op::Nop:
          ++pc_;
          break;
        case Op::Halt:
          halted_ = true;
          break;
        case Op::LoadI:
          wr(in.rd, in.imm);
          ++pc_;
          break;
        case Op::Load:
          mem_rd_ = in.rd;
          issue_access(static_cast<std::uint32_t>(rr(in.ra) + in.imm), false, 0);
          accessed = true;
          ++pc_;
          break;
        case Op::Store:
          issue_access(static_cast<std::uint32_t>(rr(in.ra) + in.imm), true,
                       static_cast<std::uint32_t>(rr(in.rb)));
          accessed = true;
          ++pc_;
          break;
        case Op::Add:
          wr(in.rd, rr(in.ra) + rr(in.rb));
          ++pc_;
          break;
        case Op::Sub:
          wr(in.rd, rr(in.ra) - rr(in.rb));
          ++pc_;
          break;
        case Op::AddI:
          wr(in.rd, rr(in.ra) + in.imm);
          ++pc_;
          break;
        case Op::Bne:
          if (rr(in.ra) != rr(in.rb)) {
            pc_ = static_cast<std::size_t>(static_cast<std::int64_t>(pc_) + 1 + in.imm);
          } else {
            ++pc_;
          }
          break;
        case Op::Jmp:
          pc_ = static_cast<std::size_t>(static_cast<std::int64_t>(pc_) + 1 + in.imm);
          break;
      }
      if (pc_ >= cfg_.program.size()) halted_ = true;
    }
  }

  // Refresh slot bookkeeping (re-armed at the end of the slot).
  if (cfg_.mem.refresh_enabled &&
      cycle_ == next_refresh_ + cfg_.mem.refresh_duration - 1) {
    ++refresh_count_;
    next_refresh_ = cycle_ + 1 + refresh_interval();
  }

  // First-order thermal model.
  temp_c_ += (accessed ? cfg_.mem.heat_per_access : 0.0) -
             (temp_c_ - cfg_.mem.ambient_c) / cfg_.mem.tau_cycles;

  ++cycle_;
}

SocRunResult run_soc(const SocSystem::Config& config,
                     const core::TimestampEncoding& encoding,
                     std::uint64_t max_cycles) {
  SocSystem soc(config);
  core::StreamingLogger logger(encoding);
  const std::size_t m = encoding.m();

  SocRunResult result{core::TraceLog(m, encoding.width()), {}, 0.0, 0, 0};
  core::Signal current(m);
  std::size_t phase = 0;

  std::uint64_t cycles = 0;
  while (cycles < max_cycles && !(soc.halted() && phase == 0)) {
    soc.tick();
    const bool change = soc.addr_changed();
    logger.tick(change);
    if (change) current.set_change(phase);
    ++phase;
    ++cycles;
    if (phase == m) {
      result.signals.push_back(current);
      current = core::Signal(m);
      phase = 0;
    }
  }
  // Pad a partial trace-cycle so log and signals stay aligned.
  while (phase != 0) {
    logger.tick(false);
    ++phase;
    if (phase == m) {
      result.signals.push_back(current);
      phase = 0;
    }
  }

  result.log = logger.log();
  result.final_temperature = soc.temperature();
  result.refresh_collisions = soc.refresh_collisions();
  result.cycles = cycles;
  return result;
}

}  // namespace tp::soc
