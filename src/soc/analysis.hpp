#pragma once
// analysis.hpp — HW-vs-simulation divergence analysis (§5.2.2).
//
// Workflow reproduced from the paper: compare the timeprint log from the
// "FPGA" against the one from the RTL simulation. A change-count mismatch
// points at a functional/timing configuration error (the wrong SRAM wait
// states). Once counts agree, a timeprint mismatch with equal k indicates
// a pure timing shift; encoding the "one change instance is delayed by one
// clock cycle" hypothesis against the simulation's signal localizes the
// exact delayed cycle — without ever logging full signals on the HW side.

#include <cstddef>
#include <optional>

#include "timeprint/encoding.hpp"
#include "timeprint/logger.hpp"
#include "timeprint/reconstruct.hpp"
#include "timeprint/signal.hpp"

namespace tp::soc {

/// Where two trace logs first disagree.
struct Divergence {
  /// First trace-cycle whose change count k differs (size() if none).
  std::size_t first_k_mismatch;
  /// First trace-cycle whose (TP, k) entry differs (size() if none).
  std::size_t first_entry_mismatch;
  /// Number of compared trace-cycles.
  std::size_t compared;
};

/// Compare hardware and simulation logs.
Divergence compare_logs(const core::TraceLog& hw, const core::TraceLog& sim);

/// Outcome of the delay-hypothesis localization.
struct DelayLocalization {
  /// The (0-based) cycle within the trace-cycle whose change was delayed.
  std::size_t delayed_cycle = 0;
  /// The reconstructed hardware signal.
  core::Signal hw_signal;
  /// Solver wall-clock seconds.
  double seconds = 0.0;

  DelayLocalization() : hw_signal(0) {}
};

/// Given the hardware log entry of a diverging trace-cycle and the
/// simulation's (trusted, fully known) signal for the same trace-cycle,
/// find the unique signal that (a) explains the hardware timeprint and
/// (b) equals the simulation signal with exactly one change delayed by
/// `delay` cycles. Returns std::nullopt if no (or no unique) such signal
/// exists — i.e. the hypothesis does not explain the divergence.
std::optional<DelayLocalization> localize_delay(
    const core::TimestampEncoding& encoding, const core::LogEntry& hw_entry,
    const core::Signal& sim_signal, std::size_t delay = 1,
    const core::ReconstructionOptions& options = {});

}  // namespace tp::soc
