#include "util/thread_pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace tp::util {

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  ///< signalled on submit / shutdown
  std::condition_variable idle_cv;  ///< signalled when pending_ hits 0

  // One deque per worker; all guarded by `mu` (coarse tasks, see header).
  std::vector<std::deque<std::function<void()>>> queues;
  std::size_t pending = 0;  ///< queued + running tasks
  std::size_t next_queue = 0;
  bool stop = false;

  std::vector<std::thread> workers;

  /// Pop own deque from the back, else steal from the front of the others
  /// (scanning forward from the neighbour). Requires `mu` held.
  bool take(std::size_t self, std::function<void()>& out) {
    if (!queues[self].empty()) {
      out = std::move(queues[self].back());
      queues[self].pop_back();
      return true;
    }
    const std::size_t n = queues.size();
    for (std::size_t step = 1; step < n; ++step) {
      auto& victim = queues[(self + step) % n];
      if (!victim.empty()) {
        out = std::move(victim.front());
        victim.pop_front();
        return true;
      }
    }
    return false;
  }

  void run_worker(std::size_t self) {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      std::function<void()> task;
      if (take(self, task)) {
        lock.unlock();
        task();
        lock.lock();
        if (--pending == 0) idle_cv.notify_all();
        continue;
      }
      if (stop) return;
      work_cv.wait(lock);
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(std::make_unique<Impl>()) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  impl_->queues.resize(num_threads);
  impl_->workers.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->run_worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::num_workers() const { return impl_->workers.size(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queues[impl_->next_queue].push_back(std::move(task));
    impl_->next_queue = (impl_->next_queue + 1) % impl_->queues.size();
    ++impl_->pending;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle_cv.wait(lock, [this] { return impl_->pending == 0; });
}

}  // namespace tp::util
