#include "util/thread_pool.hpp"

#include <deque>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace tp::util {

struct ThreadPool::Impl {
  Mutex mu{LockRank::kPool};
  CondVar work_cv;  ///< signalled on submit / shutdown
  CondVar idle_cv;  ///< signalled when pending_ hits 0

  // One deque per worker; all guarded by `mu` (coarse tasks, see header).
  std::vector<std::deque<std::function<void()>>> queues TP_GUARDED_BY(mu);
  std::size_t pending TP_GUARDED_BY(mu) = 0;  ///< queued + running tasks
  std::size_t next_queue TP_GUARDED_BY(mu) = 0;
  bool stop TP_GUARDED_BY(mu) = false;

  // Written only in the ThreadPool constructor (under `mu`, before any
  // worker can observe it) and immutable afterwards, so num_workers() and
  // the destructor's join loop read it lock-free.
  std::vector<std::thread> workers;

  /// Pop own deque from the back, else steal from the front of the others
  /// (scanning forward from the neighbour).
  bool take(std::size_t self, std::function<void()>& out) TP_REQUIRES(mu) {
    if (!queues[self].empty()) {
      out = std::move(queues[self].back());
      queues[self].pop_back();
      return true;
    }
    const std::size_t n = queues.size();
    for (std::size_t step = 1; step < n; ++step) {
      auto& victim = queues[(self + step) % n];
      if (!victim.empty()) {
        out = std::move(victim.front());
        victim.pop_front();
        return true;
      }
    }
    return false;
  }

  void run_worker(std::size_t self) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mu);
        while (!take(self, task)) {
          if (stop) return;
          work_cv.wait(mu);
        }
      }
      task();
      MutexLock lock(mu);
      if (--pending == 0) idle_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(std::make_unique<Impl>()) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  // Hold the queue lock while publishing the deques and spawning: a worker
  // that starts early blocks on `mu` until construction is complete.
  MutexLock lock(impl_->mu);
  impl_->queues.resize(num_threads);
  impl_->workers.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->run_worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::num_workers() const { return impl_->workers.size(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(impl_->mu);
    impl_->queues[impl_->next_queue].push_back(std::move(task));
    impl_->next_queue = (impl_->next_queue + 1) % impl_->queues.size();
    ++impl_->pending;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(impl_->mu);
  while (impl_->pending != 0) impl_->idle_cv.wait(impl_->mu);
}

}  // namespace tp::util
