#pragma once
// thread_pool.hpp — a work-stealing thread pool for coarse-grained tasks.
//
// The pool backs the parallel reconstruction engine: each task is one SAT
// solve (an independent log entry, or one cube of a cube-and-conquer
// split), i.e. milliseconds to minutes of work. Tasks land in per-worker
// deques; a worker pops its own deque LIFO (cache-warm, depth-first) and
// steals FIFO from the others when it runs dry (oldest task first, the
// classic stealing order that grabs the biggest remaining subtree). At
// this granularity a single mutex guarding the deques is not a
// bottleneck, keeps the invariants obvious and the implementation clean
// under ThreadSanitizer; the *stealing structure* is what balances load
// when per-task cost varies by orders of magnitude, as SAT solves do.
// The mutex is a util::Mutex (util/sync.hpp) at LockRank::kPool, so the
// locking protocol is proven by Clang's thread-safety analysis and the
// acquisition order is asserted in debug builds.
//
// Determinism note: the pool promises nothing about execution order.
// Callers that need a deterministic result (the batch engine does) must
// make each task's output independent of scheduling and merge by task
// index, never by completion order.

#include <cstddef>
#include <functional>
#include <memory>

namespace tp::util {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// itself clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t num_workers() const;

  /// Enqueue a task (round-robin across worker deques). Safe to call from
  /// any thread, including from inside a task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Safe to call
  /// repeatedly; new submissions after it returns are allowed.
  void wait_idle();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tp::util
