#pragma once
// sync.hpp — capability-annotated synchronization primitives.
//
// Every mutex and condition variable in the tree goes through this header,
// for two machine-checked guarantees:
//
//  1. *Static lock-discipline proofs.* The TP_* macros map onto Clang's
//     Thread Safety Analysis attributes, so a field declared
//     TP_GUARDED_BY(mu) can only be touched while `mu` is held, and a
//     method declared TP_REQUIRES(mu) can only be called with `mu` held —
//     checked at compile time by the CI `thread-safety` job
//     (clang++ -Werror=thread-safety -Werror=thread-safety-beta). Off
//     Clang the macros expand to nothing; GCC builds are unaffected.
//
//  2. *Deadlock freedom by construction.* Each Mutex carries an optional
//     LockRank; debug builds maintain a thread-local stack of held ranks
//     and assert that ranked mutexes are acquired in strictly increasing
//     rank order. Since every thread respects one global order, a cycle
//     in the waits-for graph is impossible. Release builds compile the
//     checker away entirely (the rank field survives as one int).
//
// The lock-order hierarchy (outermost first — see docs/architecture.md,
// "Static analysis"):
//
//   kEngine (10)     batch-engine merge / template-cache locks
//   kPortfolio (20)  portfolio race coordination
//   kPool (30)       thread-pool work deques
//   kObs (40)        tracer sink, metrics registry — the universal leaf
//
// A lock may only be acquired while every lock already held has a
// *strictly lower* rank; same-rank nesting is rejected too (two instances
// of the same rank held together is exactly the ABBA shape the hierarchy
// exists to rule out). Unranked mutexes opt out of the check but still
// get the capability annotations.

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros. Canonical expansion per the
// Clang documentation; no-ops on compilers without the attributes.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define TP_TSA_(x) __attribute__((x))
#else
#define TP_TSA_(x)
#endif

/// Marks a class as a lockable capability ("mutex").
#define TP_CAPABILITY(x) TP_TSA_(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define TP_SCOPED_CAPABILITY TP_TSA_(scoped_lockable)
/// Field may only be read/written while the given capability is held.
#define TP_GUARDED_BY(x) TP_TSA_(guarded_by(x))
/// Pointer field whose *pointee* is protected by the given capability.
#define TP_PT_GUARDED_BY(x) TP_TSA_(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release).
#define TP_REQUIRES(...) TP_TSA_(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define TP_ACQUIRE(...) TP_TSA_(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define TP_RELEASE(...) TP_TSA_(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define TP_TRY_ACQUIRE(...) TP_TSA_(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (anti-deadlock annotation).
#define TP_EXCLUDES(...) TP_TSA_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define TP_RETURN_CAPABILITY(x) TP_TSA_(lock_returned(x))
/// Escape hatch: disables analysis inside the function body. Use only for
/// primitives whose protocol the analysis cannot express (CondVar::wait
/// releases and re-acquires), never to silence a real finding.
#define TP_NO_THREAD_SAFETY_ANALYSIS TP_TSA_(no_thread_safety_analysis)

namespace tp::util {

/// Position of a mutex in the global acquisition order. Values are spaced
/// so future subsystems (e.g. `tpr serve` shard locks) can slot between
/// existing levels without renumbering.
enum class LockRank : int {
  kUnranked = -1,  ///< opted out of the debug order check
  kEngine = 10,    ///< batch merge, template-cache free-list
  kPortfolio = 20, ///< portfolio race coordination
  kPool = 30,      ///< thread-pool work deques
  kObs = 40,       ///< tracer sink, metrics registry (leaf)
};

namespace detail {

#ifndef NDEBUG

/// Per-thread stack of held ranked locks. Fixed capacity: the hierarchy
/// has four levels, so a depth of 16 leaves slack for future subsystems.
struct HeldRanks {
  int rank[16];
  int depth = 0;
};

inline HeldRanks& held_ranks() {
  thread_local HeldRanks held;
  return held;
}

inline void rank_acquired(int rank) {
  if (rank < 0) return;
  HeldRanks& held = held_ranks();
  assert((held.depth == 0 || rank > held.rank[held.depth - 1]) &&
         "lock-order violation: acquiring a mutex whose rank is not above "
         "every rank already held (see the hierarchy in util/sync.hpp)");
  assert(held.depth < 16 && "lock-rank stack overflow");
  held.rank[held.depth++] = rank;
}

inline void rank_released(int rank) {
  if (rank < 0) return;
  HeldRanks& held = held_ranks();
  // Scoped locks release LIFO, but CondVar::wait re-acquires out of step
  // with destruction order, so remove the *latest* matching entry.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.rank[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) held.rank[j] = held.rank[j + 1];
      --held.depth;
      return;
    }
  }
  assert(false && "releasing a ranked mutex this thread does not hold");
}

#else

inline void rank_acquired(int) {}
inline void rank_released(int) {}

#endif  // NDEBUG

}  // namespace detail

/// A std::mutex with thread-safety-analysis capability annotations and an
/// optional debug-checked lock rank. Prefer MutexLock over manual
/// lock()/unlock() pairs; the analysis verifies both.
class TP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TP_ACQUIRE() {
    mu_.lock();
    detail::rank_acquired(rank_);
  }

  void unlock() TP_RELEASE() {
    detail::rank_released(rank_);
    mu_.unlock();
  }

  bool try_lock() TP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    detail::rank_acquired(rank_);
    return true;
  }

 private:
  std::mutex mu_;
  int rank_ = static_cast<int>(LockRank::kUnranked);
};

/// RAII lock for a Mutex (the std::lock_guard shape, with scoped-capability
/// annotations so the analysis knows the mutex is held for the block).
class TP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable on util::Mutex. wait() requires the mutex held; the
/// release/re-acquire inside is a protocol the static analysis cannot
/// track, so the bodies opt out — the *caller-facing* contract stays
/// checked. Rank bookkeeping is preserved across the wait because the
/// internal condition_variable_any goes through Mutex::lock()/unlock().
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) TP_REQUIRES(mu) TP_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <class Predicate>
  void wait(Mutex& mu, Predicate pred) TP_REQUIRES(mu)
      TP_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      TP_REQUIRES(mu) TP_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, dur);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tp::util
