#pragma once
// monitor.hpp — run-time verification monitors (the RV block of Figure 3).
//
// The methodology pairs timeprints with synthesized hardware monitors:
// monitors check *defined* properties during deployment, and — crucially
// for the postmortem phase — every property a monitor verified for a
// trace-cycle can be encoded into that trace-cycle's reconstruction query
// to prune the search space ("the properties already known to hold because
// the hardware monitors checking them indicate their satisfaction, can be
// encoded into the SAT-solver input", §2).
//
// A WindowMonitor is a small synthesizable-style automaton: reset at the
// trace-cycle start, stepped once per clock with the change bit, verdict
// available at the boundary. Each monitor names the temporal property its
// PASS verdict certifies, so a MonitorBank can hand the reconstruction the
// exact pruning constraints for any past window.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "timeprint/properties.hpp"
#include "timeprint/signal.hpp"

namespace tp::monitor {

/// A per-trace-cycle property checker with hardware-like semantics.
class WindowMonitor {
 public:
  virtual ~WindowMonitor() = default;

  /// Return to the initial state (trace-cycle start).
  virtual void reset() = 0;

  /// Observe one clock cycle (cycle_in_window counts 0..m-1).
  virtual void step(std::size_t cycle_in_window, bool change) = 0;

  /// Verdict for the completed window (valid after m steps).
  virtual bool passed() const = 0;

  /// The temporal property a PASS certifies (fresh instance; the caller
  /// owns it and may register it with a Reconstructor).
  virtual std::unique_ptr<core::Property> certified_property() const = 0;

  /// Short name for reports.
  virtual std::string name() const = 0;

  /// Reference evaluation on a whole signal (defaults to replaying steps;
  /// used by tests to cross-check automaton vs property semantics).
  bool evaluate(const core::Signal& signal);
};

/// PASS iff no two consecutive cycles both change.
class NoConsecutiveMonitor final : public WindowMonitor {
 public:
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return ok_; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override { return "no-consecutive"; }

 private:
  bool prev_ = false;
  bool ok_ = true;
};

/// PASS iff all maximal change runs have length exactly 2 (§3.3's
/// write-protocol property).
class PairsMonitor final : public WindowMonitor {
 public:
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return ok_ && run_ == 0; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override { return "pairs"; }

 private:
  std::size_t run_ = 0;
  bool ok_ = true;
};

/// PASS iff changes are at least `gap` cycles apart.
class MinGapMonitor final : public WindowMonitor {
 public:
  explicit MinGapMonitor(std::size_t gap) : gap_(gap) {}
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return ok_; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override;

 private:
  std::size_t gap_;
  std::size_t since_last_ = 0;
  bool seen_ = false;
  bool ok_ = true;
};

/// PASS iff consecutive changes are at most `gap` cycles apart.
class MaxGapMonitor final : public WindowMonitor {
 public:
  explicit MaxGapMonitor(std::size_t gap) : gap_(gap) {}
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return ok_; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override;

 private:
  std::size_t gap_;
  std::size_t since_last_ = 0;
  bool seen_ = false;
  bool ok_ = true;
};

/// PASS iff at least `min_changes` changes occurred before cycle
/// `deadline` (the Dk deadline monitor, the classic RV use).
class DeadlineMonitor final : public WindowMonitor {
 public:
  DeadlineMonitor(std::size_t deadline, std::size_t min_changes)
      : deadline_(deadline), min_changes_(min_changes) {}
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return count_ >= min_changes_; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override;

 private:
  std::size_t deadline_;
  std::size_t min_changes_;
  std::size_t count_ = 0;
};

/// PASS iff exactly `k` changes fall inside [lo, hi).
class WindowCountMonitor final : public WindowMonitor {
 public:
  WindowCountMonitor(std::size_t lo, std::size_t hi, std::size_t k)
      : lo_(lo), hi_(hi), k_(k) {}
  void reset() override;
  void step(std::size_t cycle, bool change) override;
  bool passed() const override { return count_ == k_; }
  std::unique_ptr<core::Property> certified_property() const override;
  std::string name() const override;

 private:
  std::size_t lo_, hi_, k_;
  std::size_t count_ = 0;
};

/// Drives a set of monitors over back-to-back trace-cycles and records the
/// verdict vector of every completed window.
class MonitorBank {
 public:
  explicit MonitorBank(std::size_t m) : m_(m) {}

  /// Register a monitor (owned by the bank). Returns its index.
  std::size_t add(std::unique_ptr<WindowMonitor> monitor);

  /// Observe one clock cycle of the traced signal.
  void tick(bool change);

  /// Number of monitors.
  std::size_t size() const { return monitors_.size(); }

  /// Verdicts per completed window: history()[w][i] is monitor i's PASS
  /// for trace-cycle w.
  const std::vector<std::vector<bool>>& history() const { return history_; }

  /// Monitor names, index order.
  std::vector<std::string> names() const;

  /// Fresh property instances certified (PASSed) for window w — ready to
  /// add to a Reconstructor for that window's log entry.
  std::vector<std::unique_ptr<core::Property>> certified_for(std::size_t w) const;

 private:
  std::size_t m_;
  std::size_t phase_ = 0;
  std::vector<std::unique_ptr<WindowMonitor>> monitors_;
  std::vector<std::vector<bool>> history_;
  bool started_ = false;
};

}  // namespace tp::monitor
