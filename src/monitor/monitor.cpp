#include "monitor/monitor.hpp"

#include <cassert>

namespace tp::monitor {

bool WindowMonitor::evaluate(const core::Signal& signal) {
  reset();
  for (std::size_t i = 0; i < signal.length(); ++i) {
    step(i, signal.has_change(i));
  }
  return passed();
}

// ---- NoConsecutiveMonitor ----

void NoConsecutiveMonitor::reset() {
  prev_ = false;
  ok_ = true;
}

void NoConsecutiveMonitor::step(std::size_t, bool change) {
  if (change && prev_) ok_ = false;
  prev_ = change;
}

std::unique_ptr<core::Property> NoConsecutiveMonitor::certified_property() const {
  return std::make_unique<core::NoConsecutivePair>();
}

// ---- PairsMonitor ----

void PairsMonitor::reset() {
  run_ = 0;
  ok_ = true;
}

void PairsMonitor::step(std::size_t, bool change) {
  if (change) {
    ++run_;
    if (run_ > 2) ok_ = false;
  } else {
    if (run_ == 1) ok_ = false;  // isolated change
    run_ = 0;
  }
}

std::unique_ptr<core::Property> PairsMonitor::certified_property() const {
  return std::make_unique<core::ChangesInConsecutivePairs>();
}

// ---- MinGapMonitor ----

void MinGapMonitor::reset() {
  since_last_ = 0;
  seen_ = false;
  ok_ = true;
}

void MinGapMonitor::step(std::size_t, bool change) {
  if (change) {
    if (seen_ && since_last_ < gap_) ok_ = false;
    seen_ = true;
    since_last_ = 0;
  }
  ++since_last_;
}

std::unique_ptr<core::Property> MinGapMonitor::certified_property() const {
  return std::make_unique<core::MinGap>(gap_);
}

std::string MinGapMonitor::name() const {
  return "min-gap(" + std::to_string(gap_) + ")";
}

// ---- MaxGapMonitor ----

void MaxGapMonitor::reset() {
  since_last_ = 0;
  seen_ = false;
  ok_ = true;
}

void MaxGapMonitor::step(std::size_t, bool change) {
  if (change) {
    if (seen_ && since_last_ > gap_) ok_ = false;
    seen_ = true;
    since_last_ = 0;
  }
  ++since_last_;
}

std::unique_ptr<core::Property> MaxGapMonitor::certified_property() const {
  return std::make_unique<core::MaxGap>(gap_);
}

std::string MaxGapMonitor::name() const {
  return "max-gap(" + std::to_string(gap_) + ")";
}

// ---- DeadlineMonitor ----

void DeadlineMonitor::reset() { count_ = 0; }

void DeadlineMonitor::step(std::size_t cycle, bool change) {
  if (change && cycle < deadline_) ++count_;
}

std::unique_ptr<core::Property> DeadlineMonitor::certified_property() const {
  return std::make_unique<core::MinChangesBefore>(deadline_, min_changes_);
}

std::string DeadlineMonitor::name() const {
  return "deadline(D=" + std::to_string(deadline_) +
         ",k=" + std::to_string(min_changes_) + ")";
}

// ---- WindowCountMonitor ----

void WindowCountMonitor::reset() { count_ = 0; }

void WindowCountMonitor::step(std::size_t cycle, bool change) {
  if (change && cycle >= lo_ && cycle < hi_) ++count_;
}

std::unique_ptr<core::Property> WindowCountMonitor::certified_property() const {
  return std::make_unique<core::ExactlyKInWindow>(lo_, hi_, k_);
}

std::string WindowCountMonitor::name() const {
  return "count[" + std::to_string(lo_) + "," + std::to_string(hi_) +
         ")==" + std::to_string(k_);
}

// ---- MonitorBank ----

std::size_t MonitorBank::add(std::unique_ptr<WindowMonitor> monitor) {
  assert(phase_ == 0 && history_.empty() && "add monitors before streaming");
  monitor->reset();
  monitors_.push_back(std::move(monitor));
  return monitors_.size() - 1;
}

void MonitorBank::tick(bool change) {
  if (phase_ == 0) {
    for (auto& mo : monitors_) mo->reset();
  }
  for (auto& mo : monitors_) mo->step(phase_, change);
  ++phase_;
  if (phase_ == m_) {
    std::vector<bool> verdicts;
    verdicts.reserve(monitors_.size());
    for (const auto& mo : monitors_) verdicts.push_back(mo->passed());
    history_.push_back(std::move(verdicts));
    phase_ = 0;
  }
}

std::vector<std::string> MonitorBank::names() const {
  std::vector<std::string> out;
  for (const auto& mo : monitors_) out.push_back(mo->name());
  return out;
}

std::vector<std::unique_ptr<core::Property>> MonitorBank::certified_for(
    std::size_t w) const {
  std::vector<std::unique_ptr<core::Property>> out;
  assert(w < history_.size());
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    if (history_[w][i]) out.push_back(monitors_[i]->certified_property());
  }
  return out;
}

}  // namespace tp::monitor
