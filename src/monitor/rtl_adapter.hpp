#pragma once
// rtl_adapter.hpp — mounts a MonitorBank on the simulated hardware clock.
//
// In the paper's deployment picture the RV monitors live next to the
// agg-log unit on the SoC (Figure 3). This adapter makes a MonitorBank a
// regular rtl::Component so a testbench can clock the traced signal into
// the agg-log hardware model and the monitors from one Simulator: both
// observe the change bit with identical two-phase timing.

#include "monitor/monitor.hpp"
#include "rtlsim/sim.hpp"

namespace tp::monitor {

/// rtl::Component wrapper: samples the change input during eval, advances
/// the bank on commit (so monitors see exactly one step per clock edge).
class MonitorBankComponent final : public rtl::Component {
 public:
  /// The bank must outlive the component.
  explicit MonitorBankComponent(MonitorBank& bank) : bank_(&bank) {}

  /// Drive the change input for the upcoming clock edge.
  void set_change(bool change) { change_in_ = change; }

  void eval() override { sampled_ = change_in_; }

  void commit() override { bank_->tick(sampled_); }

  void reset() override { sampled_ = false; }

  /// The wrapped bank (verdict history, certified properties).
  const MonitorBank& bank() const { return *bank_; }

 private:
  MonitorBank* bank_;
  bool change_in_ = false;
  bool sampled_ = false;
};

}  // namespace tp::monitor
