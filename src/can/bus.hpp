#pragma once
// bus.hpp — a bit-level CAN bus with multiple nodes and arbitration.
//
// The bus advances one bit-time per step (at 5 Mbps one bit-time is 200 ns;
// the timeprint trace clock of §5.2.1 runs at the same rate, so bus bits
// and trace clock cycles coincide). Nodes hold queues of scheduled
// messages; when the bus goes idle (EOF + 3-bit inter-frame space), every
// node with a due message starts transmitting and CSMA/CR bitwise
// arbitration picks the lowest identifier. The full line waveform is
// recorded — it is the traced signal — together with per-message records
// (node, start bit, end bit) that play the role of the coarse software log
// the paper's analysis starts from.

#include <cstdint>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace tp::can {

/// A message release: `frame` becomes ready for transmission at absolute
/// bus bit-time `release_bit` and re-arms every `period_bits` (0 = one
/// shot).
struct ScheduledMessage {
  CanFrame frame;
  std::uint64_t release_bit = 0;
  std::uint64_t period_bits = 0;
  std::string name;  ///< for logs, e.g. "EngineData"
};

/// One completed transmission on the bus.
struct BusRecord {
  CanFrame frame;
  std::string name;
  std::size_t node;             ///< index of the sending node
  std::uint64_t start_bit = 0;  ///< bus bit-time of the SOF
  std::uint64_t end_bit = 0;    ///< first bit-time after the EOF
  std::uint64_t release_bit = 0;  ///< when the message became ready
};

/// Bit-level CAN bus simulator.
class CanBus {
 public:
  /// `stuffing` selects whether frames are bit-stuffed on the wire (the
  /// paper's experiment ignores stuffing; default follows the paper).
  explicit CanBus(bool stuffing = false) : stuffing_(stuffing) {}

  /// Add a node; returns its index.
  std::size_t add_node() {
    nodes_.emplace_back();
    return nodes_.size() - 1;
  }

  /// Schedule a message on a node.
  void schedule(std::size_t node, ScheduledMessage message);

  /// Advance the bus by `bits` bit-times.
  void run(std::uint64_t bits);

  /// The recorded line waveform, one level per bit-time (true = recessive).
  const std::vector<bool>& waveform() const { return waveform_; }

  /// Completed transmissions in time order.
  const std::vector<BusRecord>& records() const { return records_; }

  /// Current bus time in bit-times.
  std::uint64_t now() const { return waveform_.size(); }

  bool stuffing() const { return stuffing_; }

 private:
  struct Pending {
    ScheduledMessage message;
    std::uint64_t ready_at = 0;
  };

  struct Node {
    std::vector<Pending> queue;
  };

  bool stuffing_;
  std::vector<Node> nodes_;
  std::vector<bool> waveform_;
  std::vector<BusRecord> records_;

  // Transmission in progress.
  bool busy_ = false;
  std::vector<bool> tx_bits_;
  std::size_t tx_pos_ = 0;
  BusRecord tx_record_;
  std::uint64_t idle_since_ = 0;  ///< consecutive recessive bits seen
};

}  // namespace tp::can
