#include "can/forensics.hpp"

#include <algorithm>
#include <cassert>

namespace tp::can {

using sat::Lit;
using sat::mk_lit;

std::vector<bool> frame_change_pattern(const CanFrame& frame, bool stuffing) {
  const std::vector<bool> bits = encode_frame(frame, stuffing);
  std::vector<bool> pattern(bits.size());
  bool prev = true;  // bus idles recessive
  for (std::size_t i = 0; i < bits.size(); ++i) {
    pattern[i] = bits[i] != prev;
    prev = bits[i];
  }
  return pattern;
}

FrameAtUnknownStart::FrameAtUnknownStart(std::size_t m, std::vector<bool> pattern,
                                         std::size_t window_lo,
                                         std::size_t window_hi)
    : m_(m), pattern_(std::move(pattern)), lo_(window_lo), hi_(window_hi) {
  assert(!pattern_.empty());
  // Clip the window so the whole pattern fits in the trace-cycle.
  const std::size_t max_start = pattern_.size() <= m_ ? m_ - pattern_.size() + 1 : 0;
  hi_ = std::min(hi_, max_start);
  lo_ = std::min(lo_, hi_);
}

bool FrameAtUnknownStart::matches_at(const core::Signal& signal,
                                     std::size_t start) const {
  for (std::size_t i = 0; i < pattern_.size(); ++i) {
    if (signal.has_change(start + i) != pattern_[i]) return false;
  }
  return true;
}

bool FrameAtUnknownStart::holds(const core::Signal& signal) const {
  for (std::size_t p = lo_; p < hi_; ++p) {
    if (matches_at(signal, p)) return true;
  }
  return false;
}

bool FrameAtUnknownStart::encode(sat::SolverInterface& solver,
                                 const std::vector<sat::Var>& x) const {
  assert(x.size() == m_);
  if (lo_ >= hi_) return solver.add_clause({});  // no feasible placement
  std::vector<Lit> selectors;
  bool ok = true;
  for (std::size_t p = lo_; p < hi_; ++p) {
    const Lit s = mk_lit(solver.new_var());
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
      ok = solver.add_clause({~s, Lit(x[p + i], /*negated=*/!pattern_[i])}) && ok;
    }
    selectors.push_back(s);
  }
  ok = solver.add_clause(std::move(selectors)) && ok;
  return ok;
}

std::string FrameAtUnknownStart::describe() const {
  return "frame pattern of " + std::to_string(pattern_.size()) +
         " bits starts in [" + std::to_string(lo_) + ", " + std::to_string(hi_) +
         ")";
}

std::vector<std::size_t> find_pattern(const core::Signal& signal,
                                      const std::vector<bool>& pattern,
                                      std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> out;
  if (pattern.size() > signal.length()) return out;
  const std::size_t max_start =
      std::min(hi, signal.length() - pattern.size() + 1);
  for (std::size_t p = lo; p < max_start; ++p) {
    bool match = true;
    for (std::size_t i = 0; i < pattern.size() && match; ++i) {
      match = signal.has_change(p + i) == pattern[i];
    }
    if (match) out.push_back(p);
  }
  return out;
}

}  // namespace tp::can
