#include "can/frame.hpp"

#include <cassert>

namespace tp::can {

std::uint16_t crc15(const std::vector<bool>& bits) {
  // ISO 11898-1 CRC register implementation.
  std::uint16_t reg = 0;
  for (bool bit : bits) {
    const bool crc_next = bit ^ ((reg >> 14) & 1);
    reg = static_cast<std::uint16_t>((reg << 1) & 0x7FFF);
    if (crc_next) reg ^= 0x4599;
  }
  return reg;
}

namespace {

// SOF through data: the bits covered by the CRC computation.
std::vector<bool> crc_covered_bits(const CanFrame& frame) {
  assert(frame.id < 2048);
  assert(frame.data.size() <= 8);
  std::vector<bool> bits;
  bits.push_back(false);  // SOF (dominant)
  for (int i = 10; i >= 0; --i) bits.push_back((frame.id >> i) & 1);
  bits.push_back(false);  // RTR: data frame
  bits.push_back(false);  // IDE: standard format
  bits.push_back(false);  // r0
  const auto dlc = static_cast<std::uint32_t>(frame.data.size());
  for (int i = 3; i >= 0; --i) bits.push_back((dlc >> i) & 1);
  for (std::uint8_t byte : frame.data) {
    for (int i = 7; i >= 0; --i) bits.push_back((byte >> i) & 1);
  }
  return bits;
}

// Insert a complement bit after every run of five identical bits.
std::vector<bool> stuff(const std::vector<bool>& bits) {
  std::vector<bool> out;
  out.reserve(bits.size() + bits.size() / 5);
  int run = 0;
  bool run_value = false;
  for (bool b : bits) {
    if (!out.empty() && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    out.push_back(b);
    if (run == 5) {
      out.push_back(!run_value);
      run_value = !run_value;
      run = 1;
    }
  }
  return out;
}

// Inverse of stuff(): drop every stuff bit; nullopt on a stuffing
// violation (six identical bits in a row).
std::optional<std::vector<bool>> unstuff(const std::vector<bool>& bits) {
  std::vector<bool> out;
  out.reserve(bits.size());
  int run = 0;
  bool run_value = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool b = bits[i];
    if (!out.empty() && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    out.push_back(b);
    if (run == 5) {
      if (i + 1 >= bits.size()) break;
      ++i;
      if (bits[i] == run_value) return std::nullopt;  // stuffing violation
      run_value = bits[i];
      run = 1;
    }
  }
  return out;
}

std::vector<bool> crc_bits(std::uint16_t crc) {
  std::vector<bool> bits;
  for (int i = 14; i >= 0; --i) bits.push_back((crc >> i) & 1);
  return bits;
}

}  // namespace

std::vector<bool> encode_frame(const CanFrame& frame, bool stuffing) {
  std::vector<bool> covered = crc_covered_bits(frame);
  const std::uint16_t crc = crc15(covered);
  for (bool b : crc_bits(crc)) covered.push_back(b);
  std::vector<bool> wire = stuffing ? stuff(covered) : covered;
  wire.push_back(true);   // CRC delimiter
  wire.push_back(false);  // ACK slot (driven dominant by a receiver)
  wire.push_back(true);   // ACK delimiter
  for (int i = 0; i < 7; ++i) wire.push_back(true);  // EOF
  return wire;
}

std::size_t frame_bit_length(const CanFrame& frame, bool stuffing) {
  return encode_frame(frame, stuffing).size();
}

std::optional<CanFrame> decode_frame(const std::vector<bool>& bits, bool stuffing) {
  // Frame tail is fixed: delimiter + ACK + delimiter + 7×EOF = 10 bits.
  if (bits.size() < 10 + 19 + 15) return std::nullopt;  // minimal dlc=0 frame
  const std::vector<bool> body(bits.begin(), bits.end() - 10);

  // We do not know the payload length before parsing the DLC, so unstuff
  // incrementally: first enough bits for the header, then the rest.
  std::vector<bool> flat;
  if (stuffing) {
    auto maybe = unstuff(body);
    if (!maybe.has_value()) return std::nullopt;
    flat = std::move(*maybe);
  } else {
    flat = body;
  }

  if (flat.size() < 19 + 15) return std::nullopt;
  std::size_t pos = 0;
  if (flat[pos++] != false) return std::nullopt;  // SOF must be dominant
  std::uint32_t id = 0;
  for (int i = 0; i < 11; ++i) id = (id << 1) | (flat[pos++] ? 1u : 0u);
  if (flat[pos++]) return std::nullopt;  // RTR
  if (flat[pos++]) return std::nullopt;  // IDE
  if (flat[pos++]) return std::nullopt;  // r0
  std::uint32_t dlc = 0;
  for (int i = 0; i < 4; ++i) dlc = (dlc << 1) | (flat[pos++] ? 1u : 0u);
  if (dlc > 8) return std::nullopt;
  if (flat.size() != 19 + dlc * 8 + 15) return std::nullopt;
  CanFrame frame;
  frame.id = id;
  for (std::uint32_t b = 0; b < dlc; ++b) {
    std::uint8_t byte = 0;
    for (int i = 0; i < 8; ++i) {
      byte = static_cast<std::uint8_t>((byte << 1) | (flat[pos++] ? 1 : 0));
    }
    frame.data.push_back(byte);
  }
  std::uint16_t got_crc = 0;
  for (int i = 0; i < 15; ++i) got_crc = static_cast<std::uint16_t>((got_crc << 1) | (flat[pos++] ? 1 : 0));
  const std::vector<bool> covered(flat.begin(), flat.begin() + static_cast<long>(19 + dlc * 8));
  if (crc15(covered) != got_crc) return std::nullopt;
  return frame;
}

std::string to_wire_string(const std::vector<bool>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (bool b : bits) s.push_back(b ? '1' : '0');
  return s;
}

}  // namespace tp::can
