#pragma once
// frame.hpp — CAN 2.0A (11-bit identifier) data frames at bit level.
//
// The §5.2.1 experiment traces the CAN bus line itself, so the substrate
// must produce bit-accurate frames: SOF, arbitration field, control field,
// data, CRC-15, delimiters, ACK and EOF, with optional bit-stuffing (the
// paper ignores stuffing "for simplicity"; both modes are supported and
// tested). Bus convention: 1 = recessive (idle), 0 = dominant.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tp::can {

/// A CAN 2.0A data frame (standard 11-bit identifier, 0-8 data bytes).
struct CanFrame {
  std::uint32_t id = 0;            ///< 11-bit identifier (< 2048)
  std::vector<std::uint8_t> data;  ///< 0..8 payload bytes

  bool operator==(const CanFrame&) const = default;
};

/// CRC-15-CAN (polynomial x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1,
/// i.e. 0x4599) over a bit sequence, MSB-first. Returns the 15-bit
/// remainder.
std::uint16_t crc15(const std::vector<bool>& bits);

/// Encode a frame to wire bits (1 = recessive). Layout: SOF(0), ID[10..0],
/// RTR(0), IDE(0), r0(0), DLC[3..0], data (MSB-first per byte), CRC-15,
/// CRC delimiter(1), ACK slot(0 — some receiver acknowledged), ACK
/// delimiter(1), EOF(7×1). With `stuffing`, a complement bit is inserted
/// after five equal bits from SOF through the CRC sequence (ISO 11898-1).
std::vector<bool> encode_frame(const CanFrame& frame, bool stuffing);

/// Number of wire bits of the encoded frame (without inter-frame space).
std::size_t frame_bit_length(const CanFrame& frame, bool stuffing);

/// Inter-frame space: 3 recessive bits after EOF before a new SOF may start.
inline constexpr std::size_t kInterFrameSpace = 3;

/// Decode wire bits back to a frame (inverse of encode_frame; `stuffing`
/// must match). Returns std::nullopt on malformed input or CRC mismatch.
std::optional<CanFrame> decode_frame(const std::vector<bool>& bits, bool stuffing);

/// Render as the paper's 0/1 wire string (index 0 = SOF).
std::string to_wire_string(const std::vector<bool>& bits);

}  // namespace tp::can
