#include "can/traffic.hpp"

namespace tp::can {

CanFrame gearbox_info_frame() { return {1020, {0x01}}; }

CanFrame engine_data_frame() {
  return {100, {0x00, 0x00, 0x19, 0x00, 0x00, 0x00, 0x00, 0x00}};
}

CanFrame abs_data_frame() {
  return {201, {0x00, 0x00, 0x00, 0x00, 0x00, 0x00}};
}

CanFrame ignition_info_frame() { return {103, {0x01, 0x00}}; }

CanBus make_canoe_demo(const CanoeDemoConfig& config) {
  CanBus bus(/*stuffing=*/false);  // the paper ignores bit-stuffing
  const std::size_t engine = bus.add_node();
  const std::size_t abs = bus.add_node();
  const std::size_t gearbox = bus.add_node();
  const std::size_t ignition = bus.add_node();

  bus.schedule(engine, {engine_data_frame(),
                        config.engine_offset + config.engine_extra_delay,
                        config.engine_period, "EngineData"});
  bus.schedule(abs, {abs_data_frame(), config.abs_offset, config.abs_period,
                     "ABSdata"});
  bus.schedule(gearbox, {gearbox_info_frame(), config.gearbox_offset,
                         config.gearbox_period, "GearBoxInfo"});
  bus.schedule(ignition, {ignition_info_frame(), config.ignition_offset,
                          config.ignition_period, "Ignition_Info"});
  return bus;
}

}  // namespace tp::can
