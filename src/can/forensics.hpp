#pragma once
// forensics.hpp — CAN-aware constraints for timeprint reconstruction.
//
// "We built a tool, that directly takes CAN messages, and other temporal
// properties as input, and encodes the corresponding clauses to the SAT
// solver input" (paper §5.2.1). That tool: a known frame's *content* fixes
// the bus line's change pattern exactly — only the frame's start position
// within the trace-cycle is unknown. FrameAtUnknownStart encodes "this
// frame occurs at some start position inside a window" with a one-hot
// selector per candidate position; after reconstruction, find_pattern
// recovers the exact start cycle (and thus the transmission time).

#include <cstddef>
#include <vector>

#include "can/frame.hpp"
#include "timeprint/properties.hpp"
#include "timeprint/signal.hpp"

namespace tp::can {

/// The change pattern a value-change tracer on the bus line sees during
/// one frame starting from idle: element 0 is the SOF edge, element i is
/// whether wire bit i differs from bit i-1. Length = frame bit length.
std::vector<bool> frame_change_pattern(const CanFrame& frame, bool stuffing);

/// Property: `pattern` occurs starting at some cycle p in
/// [window_lo, window_hi) of the trace-cycle, with the whole pattern
/// inside the trace-cycle. Cycles outside the matched span are left
/// unconstrained (other traffic may surround the frame).
class FrameAtUnknownStart final : public core::Property {
 public:
  FrameAtUnknownStart(std::size_t m, std::vector<bool> pattern,
                      std::size_t window_lo, std::size_t window_hi);

  bool holds(const core::Signal& signal) const override;
  bool encode(sat::SolverInterface& solver,
              const std::vector<sat::Var>& cycle_vars) const override;
  std::string describe() const override;

  /// Candidate start positions (window clipped so the pattern fits).
  std::size_t first_start() const { return lo_; }
  std::size_t last_start() const { return hi_; }  ///< exclusive

 private:
  bool matches_at(const core::Signal& signal, std::size_t start) const;

  std::size_t m_;
  std::vector<bool> pattern_;
  std::size_t lo_;
  std::size_t hi_;
};

/// All start positions in [lo, hi) where `pattern` matches `signal`
/// exactly.
std::vector<std::size_t> find_pattern(const core::Signal& signal,
                                      const std::vector<bool>& pattern,
                                      std::size_t lo, std::size_t hi);

}  // namespace tp::can
