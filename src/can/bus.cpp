#include "can/bus.hpp"

#include <cassert>
#include <limits>

namespace tp::can {

void CanBus::schedule(std::size_t node, ScheduledMessage message) {
  assert(node < nodes_.size());
  Pending p;
  p.ready_at = message.release_bit;
  p.message = std::move(message);
  nodes_[node].queue.push_back(std::move(p));
}

void CanBus::run(std::uint64_t bits) {
  for (std::uint64_t step = 0; step < bits; ++step) {
    const std::uint64_t t = now();

    if (!busy_ && idle_since_ >= kInterFrameSpace) {
      // Bus is free: start the highest-priority (lowest ID) due message.
      std::size_t best_node = nodes_.size();
      std::size_t best_idx = 0;
      std::uint32_t best_id = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        for (std::size_t i = 0; i < nodes_[n].queue.size(); ++i) {
          const Pending& p = nodes_[n].queue[i];
          if (p.ready_at <= t && p.message.frame.id < best_id) {
            best_id = p.message.frame.id;
            best_node = n;
            best_idx = i;
          }
        }
      }
      if (best_node != nodes_.size()) {
        Pending& p = nodes_[best_node].queue[best_idx];
        tx_bits_ = encode_frame(p.message.frame, stuffing_);
        tx_pos_ = 0;
        tx_record_ = BusRecord{p.message.frame, p.message.name, best_node, t, 0,
                               p.ready_at};
        busy_ = true;
        // Periodic messages re-arm; one-shots leave the queue.
        if (p.message.period_bits > 0) {
          p.ready_at += p.message.period_bits;
        } else {
          nodes_[best_node].queue.erase(nodes_[best_node].queue.begin() +
                                        static_cast<long>(best_idx));
        }
      }
    }

    bool level = true;  // recessive idle
    const bool transmitting = busy_;
    if (busy_) {
      level = tx_bits_[tx_pos_++];
      if (tx_pos_ == tx_bits_.size()) {
        busy_ = false;
        tx_record_.end_bit = t + 1;
        records_.push_back(tx_record_);
      }
    }
    waveform_.push_back(level);
    // Inter-frame space counts only fully idle bit-times (the EOF bits of
    // a frame are recessive but still part of the transmission).
    idle_since_ = level && !transmitting ? idle_since_ + 1 : 0;
  }
}

}  // namespace tp::can
