#pragma once
// traffic.hpp — CANoe-demo-like traffic for the §5.2.1 experiment.
//
// The paper drives its experiment with Vector CANoe's demo scenario and
// lists four messages in the software log. This generator reproduces that
// message set (same identifiers, DLCs and payloads) on the simulated bus
// with realistic periods, and allows injecting the "manual delay" the
// paper applies to the EngineData message whose transmission time is under
// dispute.

#include <cstdint>

#include "can/bus.hpp"

namespace tp::can {

/// The paper's four messages (names, decimal IDs, DLC and payloads match
/// the CAN log listing in §5.2.1).
CanFrame gearbox_info_frame();   ///< GearBoxInfo(1020), d 1, 01
CanFrame engine_data_frame();    ///< EngineData(100), d 8, 00 00 19 00 00 00 00 00
CanFrame abs_data_frame();       ///< ABSdata(201), d 6, 00 x6
CanFrame ignition_info_frame();  ///< Ignition_Info(103), d 2, 01 00

/// Message periods in bus bit-times at 5 Mbps (1 bit = 0.2 µs). The
/// periods are deliberately not multiples of typical trace-cycle lengths
/// (real ECU timers do not align with the tracer), so successive instances
/// of a message land at varying offsets within trace-cycles.
struct CanoeDemoConfig {
  std::uint64_t engine_period = 50107;     ///< ~10 ms
  std::uint64_t abs_period = 60013;        ///< ~12 ms
  std::uint64_t gearbox_period = 90019;    ///< ~18 ms
  std::uint64_t ignition_period = 110023;  ///< ~22 ms
  std::uint64_t engine_offset = 300;
  std::uint64_t abs_offset = 2100;
  std::uint64_t gearbox_offset = 5400;
  std::uint64_t ignition_offset = 9300;
  /// Extra delay applied to every EngineData release — the paper's
  /// manually injected delay that pushes the transmission past the
  /// deadline.
  std::uint64_t engine_extra_delay = 0;
};

/// Create a 4-node bus (one node per message) with the demo schedule.
CanBus make_canoe_demo(const CanoeDemoConfig& config = {});

}  // namespace tp::can
