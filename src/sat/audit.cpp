#include "sat/audit.hpp"

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sat/drat.hpp"
#include "sat/solver.hpp"

namespace tp::sat {

const char* to_string(AuditPoint p) {
  switch (p) {
    case AuditPoint::PostPropagate: return "post-propagate";
    case AuditPoint::PostBacktrack: return "post-backtrack";
    case AuditPoint::PostSimplify: return "post-simplify";
    case AuditPoint::Manual: return "manual";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(AuditPoint p, const std::string& what) {
  throw AuditFailure(std::string("sat audit [") + to_string(p) + "]: " + what);
}

}  // namespace

Auditor* Auditor::debug_env() {
  static Auditor* instance = [] {
    const char* env = std::getenv("TP_SAT_AUDIT");
    if (env == nullptr || env[0] == '\0' ||
        (env[0] == '0' && env[1] == '\0')) {
      return static_cast<Auditor*>(nullptr);
    }
    AuditOptions opts;
    opts.period = 64;
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 1) opts.period = static_cast<std::uint64_t>(parsed);
    static Auditor global(opts);
    return &global;
  }();
  return instance;
}

void Auditor::checkpoint(const Solver& solver, AuditPoint point) {
  const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (opts_.period > 1 && (n % opts_.period) != 0) return;
  audit(solver, point);
}

void Auditor::audit(const Solver& solver, AuditPoint point) {
  runs_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.check_trail) check_trail(solver, point);
  if (opts_.check_watches) check_watches(solver, point);
  if (opts_.check_arena) check_arena(solver, point);
  if (opts_.check_xor_watches) check_xor_watches(solver, point);
  if (opts_.check_fixpoint && point == AuditPoint::PostPropagate) {
    check_fixpoint(solver, point);
  }
  if (opts_.check_learnt_rup && point == AuditPoint::PostBacktrack) {
    check_learnt_rup(solver, point);
  }
}

void Auditor::check_trail(const Solver& s, AuditPoint p) const {
  const std::size_t n = s.trail_.size();
  if (s.qhead_ > n) fail(p, "qhead past the end of the trail");
  std::size_t prev = 0;
  for (std::size_t lim : s.trail_lim_) {
    if (lim < prev) fail(p, "trail level boundaries not monotone");
    if (lim > n) fail(p, "trail level boundary past the end of the trail");
    prev = lim;
  }

  std::vector<char> on_trail(s.assigns_.size(), 0);
  std::size_t lvl = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Lit l = s.trail_[i];
    const auto v = static_cast<std::size_t>(l.var());
    if (v >= s.assigns_.size()) fail(p, "trail literal over an unknown variable");
    if (on_trail[v]) fail(p, "variable appears twice on the trail");
    on_trail[v] = 1;
    if (s.assigns_[v] == LBool::Undef) fail(p, "trail literal unassigned");
    if ((s.assigns_[v] == LBool::True) != !l.negated()) {
      fail(p, "trail literal contradicts the assignment");
    }
    // Advance past every level opened at or before this position. Equal
    // boundaries are dummy levels (assumptions already true).
    while (lvl < s.trail_lim_.size() && s.trail_lim_[lvl] <= i) ++lvl;
    if (static_cast<std::size_t>(s.vardata_[v].level) != lvl) {
      fail(p, "trail literal's level does not match its trail segment");
    }
    const Solver::Reason r = s.vardata_[v].reason;
    if (lvl > 0 && r.none() && i != s.trail_lim_[lvl - 1]) {
      fail(p, "reason-less literal above level 0 is not a decision");
    }
    if (r.kind == Solver::Reason::Kind::Clause && s.arena_.lit(r.cref, 0) != l) {
      fail(p, "reason clause does not have the implied literal first");
    }
    if (r.kind == Solver::Reason::Kind::Binary &&
        s.value(r.other) != LBool::False) {
      fail(p, "binary reason's partner literal is not false");
    }
  }
  std::size_t assigned = 0;
  for (const LBool a : s.assigns_) {
    if (a != LBool::Undef) ++assigned;
  }
  if (assigned != n) fail(p, "assigned variables not in bijection with the trail");
}

void Auditor::check_watches(const Solver& s, AuditPoint p) const {
  std::unordered_set<ClauseRef> live;
  for (const ClauseRef c : s.clauses_) live.insert(c);
  for (const ClauseRef c : s.learnts_) live.insert(c);

  std::size_t total = 0;
  for (std::size_t code = 0; code < s.watches_.size(); ++code) {
    const Lit watched = ~Lit::from_code(static_cast<std::int32_t>(code));
    for (const Solver::Watcher& w : s.watches_[code]) {
      ++total;
      if (live.find(w.cref) == live.end()) {
        fail(p, "watcher points at a detached clause");
      }
      if (s.arena_.dead(w.cref)) fail(p, "watcher points at a dead clause");
      const std::size_t n = s.arena_.size(w.cref);
      if (n < 3) fail(p, "watched arena clause shorter than three literals");
      if (s.arena_.lit(w.cref, 0) != watched && s.arena_.lit(w.cref, 1) != watched) {
        fail(p, "watch-list entry does not match the clause's watched literals");
      }
      bool blocker_in_clause = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (s.arena_.lit(w.cref, i) == w.blocker) {
          blocker_in_clause = true;
          break;
        }
      }
      if (!blocker_in_clause) fail(p, "blocker is not a literal of its clause");
    }
  }
  if (total != 2 * live.size()) {
    fail(p, "global watcher count is not twice the clause count");
  }
  // The total being exact still allows one clause to be watched twice on
  // the same literal while another lost a watcher; pin each clause down.
  for (const ClauseRef c : live) {
    for (std::size_t i = 0; i < 2; ++i) {
      const Lit l = s.arena_.lit(c, i);
      const auto& wl = s.watches_[static_cast<std::size_t>((~l).code())];
      std::size_t count = 0;
      for (const Solver::Watcher& w : wl) {
        if (w.cref == c) ++count;
      }
      if (count != 1) fail(p, "clause not watched exactly once per watched literal");
    }
  }

  // Binary implication lists: every clause {a, b} holds one entry b in a's
  // falsification list and one entry a in b's, with matching learnt flags.
  // Counting canonical-side entries as +1 and the mirror side as -1 over
  // (unordered pair, learnt) keys must cancel exactly; the canonical-side
  // totals must match the solver's binary-clause counters.
  std::unordered_map<std::uint64_t, std::int64_t> pairing;
  std::size_t canon_problem = 0;
  std::size_t canon_learnt = 0;
  for (std::size_t code = 0; code < s.bin_watches_.size(); ++code) {
    const Lit a = ~Lit::from_code(static_cast<std::int32_t>(code));
    for (const Solver::BinWatcher& w : s.bin_watches_[code]) {
      const Lit b = w.other;
      if (static_cast<std::size_t>(b.var()) >= s.assigns_.size()) {
        fail(p, "binary watcher over an unknown variable");
      }
      if (a.var() == b.var()) fail(p, "degenerate binary clause on one variable");
      const auto ac = static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.code()));
      const auto bc = static_cast<std::uint64_t>(static_cast<std::uint32_t>(b.code()));
      const std::uint64_t lo = ac < bc ? ac : bc;
      const std::uint64_t hi = ac < bc ? bc : ac;
      const std::uint64_t key = (lo << 33) | (hi << 1) | (w.learnt != 0 ? 1 : 0);
      if (ac < bc) {
        pairing[key] += 1;
        if (w.learnt != 0) {
          ++canon_learnt;
        } else {
          ++canon_problem;
        }
      } else {
        pairing[key] -= 1;
      }
    }
  }
  for (const auto& [key, balance] : pairing) {
    if (balance != 0) {
      fail(p, "binary clause not mirrored across its two implication lists");
    }
  }
  if (canon_problem != s.num_bin_problem_ || canon_learnt != s.num_bin_learnt_) {
    fail(p, "binary implication lists disagree with the binary-clause counters");
  }
}

void Auditor::check_arena(const Solver& s, AuditPoint p) const {
  const std::size_t buf_words = s.arena_.buffer_words();
  std::size_t live_words = 0;
  auto check_db = [&](const std::vector<ClauseRef>& db, bool learnt) {
    for (const ClauseRef c : db) {
      if (c + ClauseArena::kHeaderWords > buf_words) {
        fail(p, "database ClauseRef outside the arena buffer");
      }
      if (s.arena_.dead(c)) fail(p, "database holds a dead ClauseRef");
      const std::size_t n = s.arena_.size(c);
      if (n < 3) fail(p, "arena clause shorter than three literals");
      if (c + ClauseArena::kHeaderWords + n > buf_words) {
        fail(p, "arena clause extends past the buffer");
      }
      if (s.arena_.learnt(c) != learnt) {
        fail(p, "arena learnt flag disagrees with the clause's database");
      }
      live_words += ClauseArena::kHeaderWords + n;
    }
  };
  check_db(s.clauses_, /*learnt=*/false);
  check_db(s.learnts_, /*learnt=*/true);
  if (live_words + s.arena_.wasted_words() != buf_words) {
    fail(p, "arena occupancy: live words + recorded waste != buffer size");
  }
}

void Auditor::check_xor_watches(const Solver& s, AuditPoint p) const {
  std::unordered_set<const XorConstraint*> live;
  for (const auto& x : s.xors_) live.insert(x.get());

  for (const auto& wl : s.xor_watch_) {
    for (const XorConstraint* x : wl) {
      // Stale entries (the constraint moved its watch away and the lazy
      // sweep has not visited this list since) are legal; dangling
      // pointers are not.
      if (live.find(x) == live.end()) {
        fail(p, "XOR watch list holds a dangling constraint pointer");
      }
    }
  }
  for (const auto& x : s.xors_) {
    if (x->vars.size() < 2) fail(p, "XOR constraint with fewer than two variables");
    if (x->w0 == x->w1) fail(p, "XOR watch positions coincide");
    if (x->w0 >= x->vars.size() || x->w1 >= x->vars.size()) {
      fail(p, "XOR watch position out of range");
    }
    for (const std::size_t w : {x->w0, x->w1}) {
      const auto v = static_cast<std::size_t>(x->vars[w]);
      const auto& wl = s.xor_watch_[v];
      bool found = false;
      for (const XorConstraint* entry : wl) {
        if (entry == x.get()) {
          found = true;
          break;
        }
      }
      if (!found) fail(p, "XOR constraint missing from its watched variable's list");
    }
  }
}

void Auditor::check_fixpoint(const Solver& s, AuditPoint p) const {
  auto clause_check = [&](const ClauseRef c) {
    const std::size_t n = s.arena_.size(c);
    std::size_t unassigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const LBool v = s.value(s.arena_.lit(c, i));
      if (v == LBool::True) return;
      if (v == LBool::Undef) ++unassigned;
    }
    if (unassigned == 0) fail(p, "clause falsified at a propagation fixpoint");
    if (unassigned == 1) fail(p, "unit clause unpropagated at a fixpoint");
  };
  for (const ClauseRef c : s.clauses_) clause_check(c);
  for (const ClauseRef c : s.learnts_) clause_check(c);

  // Binary clauses, visited once each from the canonical side.
  for (std::size_t code = 0; code < s.bin_watches_.size(); ++code) {
    const Lit a = ~Lit::from_code(static_cast<std::int32_t>(code));
    for (const Solver::BinWatcher& w : s.bin_watches_[code]) {
      if (a.code() >= w.other.code()) continue;
      const LBool va = s.value(a);
      const LBool vb = s.value(w.other);
      if (va == LBool::True || vb == LBool::True) continue;
      if (va == LBool::False && vb == LBool::False) {
        fail(p, "binary clause falsified at a propagation fixpoint");
      }
      if (va == LBool::False || vb == LBool::False) {
        fail(p, "unit binary clause unpropagated at a fixpoint");
      }
    }
  }

  for (const auto& x : s.xors_) {
    std::size_t unassigned = 0;
    bool parity = false;
    for (const Var v : x->vars) {
      const LBool a = s.value(v);
      if (a == LBool::Undef) {
        ++unassigned;
        if (unassigned > 1) break;
      } else if (a == LBool::True) {
        parity = !parity;
      }
    }
    if (unassigned == 0 && parity != x->rhs) {
      fail(p, "XOR constraint violated at a propagation fixpoint");
    }
    if (unassigned == 1) fail(p, "unit XOR constraint unpropagated at a fixpoint");
  }
}

void Auditor::check_learnt_rup(const Solver& s, AuditPoint p) const {
  // Row-combination reasons from the Gaussian engine cannot be replayed by
  // a clausal RUP check.
  if (s.opts_.use_gauss) return;
  for (const auto& x : s.xors_) {
    if (x->vars.size() > opts_.rup_max_xor_arity) return;
  }

  // Identify what this conflict just produced: a stored arena clause (it is
  // the reason of the newly asserted trail literal), a fresh binary (the
  // reason carries the partner literal), or a unit (asserted with no reason
  // after a backjump to level 0).
  if (s.trail_.empty()) return;
  const Lit asserted = s.trail_.back();
  const Solver::Reason reason =
      s.vardata_[static_cast<std::size_t>(asserted.var())].reason;
  ClauseRef candidate = kCRefUndef;
  bool candidate_binary = false;
  if (reason.kind == Solver::Reason::Kind::Clause && !s.learnts_.empty() &&
      reason.cref == s.learnts_.back()) {
    candidate = s.learnts_.back();
  } else if (reason.kind == Solver::Reason::Kind::Binary) {
    candidate_binary = true;  // the just-learnt binary {asserted, reason.other}
  } else if (!reason.none()) {
    return;  // checkpoint fired somewhere unexpected; nothing to certify
  }

  DratChecker checker(/*check_rat=*/false);
  auto feed = [&checker, &s](const ClauseRef c) {
    IntClause ic;
    const std::size_t n = s.arena_.size(c);
    ic.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ic.push_back(lit_to_dimacs(s.arena_.lit(c, i)));
    checker.add_clause(ic);
  };
  for (const ClauseRef c : s.clauses_) feed(c);
  for (const ClauseRef c : s.learnts_) {
    if (c != candidate) feed(c);
  }
  // Binary clauses, fed once each from the canonical side. When the claim
  // under test is itself a binary, exactly one stored instance of it is the
  // just-attached claim and must be withheld from the database.
  bool skipped_candidate_binary = false;
  for (std::size_t code = 0; code < s.bin_watches_.size(); ++code) {
    const Lit a = ~Lit::from_code(static_cast<std::int32_t>(code));
    for (const Solver::BinWatcher& w : s.bin_watches_[code]) {
      if (a.code() >= w.other.code()) continue;
      if (candidate_binary && !skipped_candidate_binary &&
          ((a == asserted && w.other == reason.other) ||
           (a == reason.other && w.other == asserted))) {
        skipped_candidate_binary = true;
        continue;
      }
      checker.add_clause({lit_to_dimacs(a), lit_to_dimacs(w.other)});
    }
  }
  for (const auto& x : s.xors_) {
    std::vector<int> vars;
    vars.reserve(x->vars.size());
    for (const Var v : x->vars) vars.push_back(v + 1);
    for (const auto& clause : xor_clauses(vars, x->rhs)) {
      checker.add_clause(clause);
    }
  }
  // Level-0 facts take part in conflict analysis but are dropped from the
  // learnt clause, so the independent derivation needs them as units. The
  // just-asserted unit itself (the candidate in the backjump-to-0 case) is
  // excluded — it is the claim under test.
  const bool unit_claim = candidate == kCRefUndef && !candidate_binary;
  const std::size_t level0_end =
      s.trail_lim_.empty() ? s.trail_.size() : s.trail_lim_[0];
  for (std::size_t i = 0; i < level0_end; ++i) {
    if (unit_claim && i + 1 == s.trail_.size()) continue;
    checker.add_clause({lit_to_dimacs(s.trail_[i])});
  }

  ProofOp claim;
  if (candidate != kCRefUndef) {
    const std::size_t n = s.arena_.size(candidate);
    for (std::size_t i = 0; i < n; ++i) {
      claim.lits.push_back(lit_to_dimacs(s.arena_.lit(candidate, i)));
    }
  } else if (candidate_binary) {
    claim.lits.push_back(lit_to_dimacs(asserted));
    claim.lits.push_back(lit_to_dimacs(reason.other));
  } else {
    claim.lits.push_back(lit_to_dimacs(asserted));
  }
  const DratChecker::Result res = checker.check({claim});
  if (!res.valid) {
    fail(p, "learnt clause is not RUP against the database: " + res.error);
  }
}

}  // namespace tp::sat
