#include "sat/dimacs.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tp::sat {

bool Cnf::load_into(SolverInterface& solver) const {
  while (solver.num_vars() < num_vars) solver.new_var();
  bool ok = true;
  // Canonicalize each clause before it reaches the solver: drop
  // tautologies outright and merge duplicate literals. DIMACS inputs from
  // other tools routinely carry both, and while the CDCL backend would
  // canonicalize again, front-end layers that buffer raw clauses (the
  // preprocessing wrapper) and the proof axiom stream are cleaner when
  // fed the canonical form.
  std::vector<Lit> canon;
  for (const auto& c : clauses) {
    canon.assign(c.begin(), c.end());
    std::sort(canon.begin(), canon.end());
    bool tautology = false;
    Lit prev = lit_undef;
    std::size_t keep = 0;
    for (Lit l : canon) {
      if (l == ~prev) {
        tautology = true;
        break;
      }
      if (l == prev) continue;
      canon[keep++] = l;
      prev = l;
    }
    if (tautology) continue;
    canon.resize(keep);
    ok = solver.add_clause(canon) && ok;
  }
  for (const auto& [vars, rhs] : xors) ok = solver.add_xor(vars, rhs) && ok;
  return ok;
}

bool Cnf::satisfied_by(const std::vector<bool>& assignment) const {
  for (const auto& c : clauses) {
    bool sat = false;
    for (Lit l : c) {
      if (assignment[static_cast<std::size_t>(l.var())] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  for (const auto& [vars, rhs] : xors) {
    bool parity = false;
    for (Var v : vars) parity ^= assignment[static_cast<std::size_t>(v)];
    if (parity != rhs) return false;
  }
  return true;
}

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream ss(line);
      std::string p, fmt;
      long vars = 0, clauses = 0;
      if (!(ss >> p >> fmt >> vars >> clauses)) {
        throw DimacsError(lineno, "malformed problem line, expected 'p cnf <vars> <clauses>'");
      }
      if (fmt != "cnf") throw DimacsError(lineno, "expected 'p cnf'");
      if (vars < 0 || clauses < 0) {
        throw DimacsError(lineno, "negative count in problem line");
      }
      cnf.num_vars = static_cast<int>(vars);
      continue;
    }
    const bool is_xor = line[0] == 'x';
    std::istringstream ss(is_xor ? line.substr(1) : line);
    std::vector<Lit> lits;
    bool parity = true;  // an XOR clause asserts XOR of its literals = true
    bool terminated = false;
    long v = 0;
    while (ss >> v) {
      if (v == 0) {
        terminated = true;
        break;
      }
      const Var var = static_cast<Var>(std::labs(v)) - 1;
      cnf.ensure_var(var);
      if (is_xor) {
        if (v < 0) parity = !parity;  // ¬x = x ⊕ 1
        lits.push_back(mk_lit(var));
      } else {
        lits.push_back(Lit(var, v < 0));
      }
    }
    if (!terminated) {
      // Distinguish "ran out of tokens" from "hit a non-numeric token":
      // both leave the extraction failed, but the messages should differ.
      ss.clear();
      std::string junk;
      if (ss >> junk) {
        throw DimacsError(lineno, "expected a literal, got '" + junk + "'");
      }
      throw DimacsError(lineno, "clause not 0-terminated");
    }
    std::string trailing;
    if (ss >> trailing) {
      throw DimacsError(lineno, "unexpected token '" + trailing +
                                    "' after the terminating 0");
    }
    if (is_xor) {
      std::vector<Var> vars;
      vars.reserve(lits.size());
      for (Lit l : lits) vars.push_back(l.var());
      cnf.xors.emplace_back(std::move(vars), parity);
    } else {
      cnf.clauses.push_back(std::move(lits));
    }
  }
  return cnf;
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.num_vars << ' ' << (cnf.clauses.size() + cnf.xors.size())
      << '\n';
  for (const auto& c : cnf.clauses) {
    for (Lit l : c) out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    out << "0\n";
  }
  for (const auto& [vars, rhs] : cnf.xors) {
    if (vars.empty()) {
      // An empty XOR asserting parity 1 is plain falsity: keep the
      // round-trip lossless by writing it as the empty clause. Parity 0 is
      // a tautology and can be dropped.
      if (rhs) out << "0\n";
      continue;
    }
    out << 'x';
    for (std::size_t i = 0; i < vars.size(); ++i) {
      // Express the parity on the first literal: a negated first literal
      // flips the asserted parity from true to false.
      const long lit = vars[i] + 1;
      out << ((i == 0 && !rhs) ? -lit : lit) << ' ';
    }
    out << "0\n";
  }
}

}  // namespace tp::sat
