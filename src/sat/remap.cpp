#include "sat/remap.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tp::sat {

VarRemapper::VarRemapper(int num_outer_vars)
    : fate_(static_cast<std::size_t>(num_outer_vars), Fate::Dropped),
      inner_(static_cast<std::size_t>(num_outer_vars), -1),
      elim_slot_(static_cast<std::size_t>(num_outer_vars), -1) {}

void VarRemapper::ensure_outer(Var v) {
  if (v >= static_cast<Var>(fate_.size())) {
    fate_.resize(static_cast<std::size_t>(v) + 1, Fate::Dropped);
    inner_.resize(static_cast<std::size_t>(v) + 1, -1);
    elim_slot_.resize(static_cast<std::size_t>(v) + 1, -1);
  }
}

void VarRemapper::set_fixed(Var v, bool value) {
  ensure_outer(v);
  fate_[static_cast<std::size_t>(v)] = value ? Fate::FixedTrue : Fate::FixedFalse;
}

void VarRemapper::set_eliminated(Lit lit, std::vector<std::vector<Lit>> stash,
                                 std::vector<std::vector<Lit>> others) {
  ensure_outer(lit.var());
  fate_[static_cast<std::size_t>(lit.var())] = Fate::Eliminated;
  elim_slot_[static_cast<std::size_t>(lit.var())] =
      static_cast<std::int32_t>(elim_stack_.size());
  elim_stack_.push_back({lit, std::move(stash), std::move(others), false});
}

void VarRemapper::bind_inner(Var outer, Var inner) {
  fate_[static_cast<std::size_t>(outer)] = Fate::Mapped;
  inner_[static_cast<std::size_t>(outer)] = inner;
  if (inner >= static_cast<Var>(outer_of_.size())) {
    outer_of_.resize(static_cast<std::size_t>(inner) + 1, -1);
  }
  outer_of_[static_cast<std::size_t>(inner)] = outer;
}

Var VarRemapper::add_mapped_var(Var inner) {
  const Var outer = static_cast<Var>(fate_.size());
  fate_.push_back(Fate::Dropped);
  inner_.push_back(-1);
  elim_slot_.push_back(-1);
  bind_inner(outer, inner);
  return outer;
}

const VarRemapper::Elimination& VarRemapper::elimination(Var outer) const {
  const std::int32_t slot = elim_slot_[static_cast<std::size_t>(outer)];
  if (slot < 0) {
    throw std::logic_error("sat::VarRemapper: variable " +
                           std::to_string(outer + 1) +
                           " has no elimination witness");
  }
  return elim_stack_[static_cast<std::size_t>(slot)];
}

void VarRemapper::restore(Var outer, Var inner) {
  const std::int32_t slot = elim_slot_[static_cast<std::size_t>(outer)];
  if (fate(outer) != Fate::Eliminated || slot < 0) {
    throw std::logic_error("sat::VarRemapper: restore() of variable " +
                           std::to_string(outer + 1) +
                           " which is not eliminated");
  }
  elim_stack_[static_cast<std::size_t>(slot)].restored = true;
  bind_inner(outer, inner);
}

void VarRemapper::map_var(Var outer, Var inner) {
  if (fate(outer) != Fate::Dropped) {
    throw std::logic_error("sat::VarRemapper: map_var() of variable " +
                           std::to_string(outer + 1) +
                           " which is not dropped");
  }
  bind_inner(outer, inner);
}

LBool VarRemapper::fixed_value(Var outer) const {
  switch (fate(outer)) {
    case Fate::FixedTrue:
      return LBool::True;
    case Fate::FixedFalse:
      return LBool::False;
    default:
      return LBool::Undef;
  }
}

namespace {
[[noreturn]] void throw_unfrozen(Var v, const char* what) {
  throw std::logic_error(
      "sat::VarRemapper: variable " + std::to_string(v + 1) + " used in a " +
      what + " after preprocessing " +
      "removed it — freeze() interface variables before the first solve()");
}
}  // namespace

VarRemapper::ClauseFate VarRemapper::translate_clause(
    const std::vector<Lit>& outer, std::vector<Lit>* out) const {
  out->clear();
  for (Lit l : outer) {
    switch (fate(l.var())) {
      case Fate::Mapped:
        out->push_back(inner_of(l));
        break;
      case Fate::FixedTrue:
        if (!l.negated()) return ClauseFate::Satisfied;
        break;  // false literal: drop it
      case Fate::FixedFalse:
        if (l.negated()) return ClauseFate::Satisfied;
        break;
      case Fate::Eliminated:
      case Fate::Dropped:
        throw_unfrozen(l.var(), "clause");
    }
  }
  return out->empty() ? ClauseFate::Empty : ClauseFate::Keep;
}

VarRemapper::ClauseFate VarRemapper::translate_xor(
    const std::vector<Var>& outer_vars, bool rhs, std::vector<Var>* out_vars,
    bool* out_rhs) const {
  out_vars->clear();
  bool r = rhs;
  for (Var v : outer_vars) {
    switch (fate(v)) {
      case Fate::Mapped:
        out_vars->push_back(inner_of(v));
        break;
      case Fate::FixedTrue:
        r = !r;  // fold a true variable into the parity target
        break;
      case Fate::FixedFalse:
        break;  // contributes nothing to the parity
      case Fate::Eliminated:
      case Fate::Dropped:
        throw_unfrozen(v, "xor");
    }
  }
  *out_rhs = r;
  if (out_vars->empty()) return r ? ClauseFate::Empty : ClauseFate::Satisfied;
  return ClauseFate::Keep;
}

void VarRemapper::replay_stashes(std::vector<LBool>& model) const {
  // SatELite model extension: walk eliminations newest-first. For the
  // elimination of literal l, every stashed clause contained l; make l
  // true iff some stashed clause has no other satisfied literal (the
  // resolvent set being satisfied guarantees the ~l side stays satisfied
  // either way). Every other literal inspected here already has a value:
  // a variable in an earlier stash was live at that elimination's time,
  // so it either survived (Mapped/Fixed/Dropped, filled above) or was
  // eliminated *later* — and later eliminations replay *earlier* in this
  // reverse walk. Restored eliminations are skipped: their variables are
  // Mapped again, already filled from the inner model above (which also
  // keeps the "every other literal has a value" invariant intact for the
  // stashes that do replay).
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    if (it->restored) continue;
    bool need_true = false;
    for (const auto& clause : it->clauses) {
      bool satisfied = false;
      for (Lit l : clause) {
        if (l == it->lit) continue;
        const LBool v = model[static_cast<std::size_t>(l.var())];
        if ((v == LBool::True && !l.negated()) ||
            (v == LBool::False && l.negated())) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        need_true = true;
        break;
      }
    }
    const auto i = static_cast<std::size_t>(it->lit.var());
    model[i] = (need_true != it->lit.negated()) ? LBool::True : LBool::False;
  }
}

}  // namespace tp::sat
