#pragma once
// audit.hpp — a debug invariant auditor for the CDCL solver.
//
// The auditor sweeps the solver's internal data structures for the
// invariants the search relies on but never re-checks in the hot path:
//
//  * watch-list integrity — every stored clause is watched exactly once on
//    each of its first two literals, every watcher entry points at a live
//    clause through one of its watch positions, blockers are clause
//    literals, and the global watcher count is exactly twice the clause
//    count (so no stale or duplicated entries survive detach/attach);
//    binary implication lists are checked for symmetric pairing (each
//    binary clause appears once from each side, with matching learnt
//    flags) and against the solver's binary-clause counters;
//  * arena integrity — every database ClauseRef is in range, not dead,
//    at least three literals long and carries the learnt flag of its
//    database, and the live clause words account exactly for the arena
//    occupancy (buffer minus recorded waste), so leaks and double-frees
//    surface at the next checkpoint rather than at the next GC;
//  * XOR watch consistency — each constraint's two watched variables are
//    distinct and in range, both appear in the constraint's watch lists,
//    and every watch-list entry points at a live constraint (stale entries
//    are tolerated — propagate_xor() prunes them lazily — but dangling
//    pointers are not);
//  * trail/level monotonicity — level boundaries are ascending, the
//    propagation head is in range, every trail literal's variable is
//    assigned to the matching value at the level of its trail segment,
//    every assigned variable appears on the trail exactly once, decisions
//    carry no reason, and implied literals carry one;
//  * propagation completeness (post-propagate fixpoint only) — no stored
//    clause is fully falsified or unit-unpropagated, and no XOR constraint
//    is violated or unit-unpropagated; and
//  * learnt-clause RUP redundancy (post-backtrack, opt-in) — the clause
//    just attached by conflict analysis is re-derived by an independent
//    unit-propagation check (sat::DratChecker) against the rest of the
//    database, catching analysis/minimization bugs at their source.
//
// The auditor observes the solver read-only (it is a friend of Solver) and
// throws AuditFailure on the first violation. Attach one explicitly with
// Solver::set_auditor(), or — in debug builds (#ifndef NDEBUG) — set the
// TP_SAT_AUDIT environment variable to auto-attach a process-wide auditor
// to every solver at construction (TP_SAT_AUDIT=<n> sets the checkpoint
// period; any other non-empty, non-"0" value uses the default). The
// sanitizer CI job runs the whole test suite that way. Checkpoint hooks in
// the solver are plain pointer tests, compiled in every build type, so an
// explicitly attached auditor also works under NDEBUG.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tp::sat {

class Solver;

/// Thrown by the auditor on the first violated invariant; the message
/// names the checkpoint and the structure that failed.
class AuditFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Where in the search loop a checkpoint fires.
enum class AuditPoint {
  PostPropagate,  ///< propagation reached a fixpoint without conflict
  PostBacktrack,  ///< conflict analyzed, learnt clause attached/enqueued
  PostSimplify,   ///< Solver::simplify() swept the databases
  Manual,         ///< an audit() call from outside the solver
};

const char* to_string(AuditPoint p);

/// Which sweeps run and how often.
struct AuditOptions {
  bool check_watches = true;      ///< clause + binary watch-list integrity
  bool check_arena = true;        ///< clause-arena occupancy/ref integrity
  bool check_xor_watches = true;  ///< XOR watch consistency
  bool check_trail = true;        ///< trail/level monotonicity
  /// Propagation-completeness sweep at PostPropagate checkpoints. O(DB)
  /// per fixpoint, so expensive at period 1 — but it is the check that
  /// catches watch bugs *semantically* (a falsified clause the watches
  /// lost track of), not just structurally.
  bool check_fixpoint = true;
  /// Re-derive the just-learnt clause by independent unit propagation at
  /// PostBacktrack checkpoints. Skipped automatically when the Gaussian
  /// engine is active (its reasons are row combinations no clausal check
  /// can replay) or an XOR constraint is too wide to expand. Off by
  /// default: O(DB²)-ish per conflict.
  bool check_learnt_rup = false;
  /// Arity bound for expanding XOR constraints in the RUP sweep.
  std::size_t rup_max_xor_arity = 16;
  /// Run the sweeps on every period-th checkpoint (1 = every checkpoint).
  std::uint64_t period = 1;
};

/// Read-only invariant sweeper. Thread-safe: one instance may serve many
/// solvers (the counters are atomic and checkpoint() touches only the
/// solver it is handed), which is what the TP_SAT_AUDIT process-wide
/// instance does under the parallel batch tests.
class Auditor {
 public:
  Auditor() = default;
  explicit Auditor(const AuditOptions& options) : opts_(options) {}

  /// Called by the solver at its checkpoint sites. Honors the period;
  /// throws AuditFailure on a violation.
  void checkpoint(const Solver& solver, AuditPoint point);

  /// Run every configured sweep now, ignoring the period. Callable from
  /// tests on any solver at decision level 0 (or from a checkpoint site).
  /// The fixpoint and learnt-RUP sweeps only make sense at their own
  /// checkpoints and are skipped for other points.
  void audit(const Solver& solver, AuditPoint point = AuditPoint::Manual);

  const AuditOptions& options() const { return opts_; }
  std::uint64_t checkpoints_seen() const { return seen_.load(); }
  std::uint64_t audits_run() const { return runs_.load(); }

  /// The process-wide auditor requested via the TP_SAT_AUDIT environment
  /// variable, or null when the variable is unset/empty/"0". Debug-build
  /// solver constructors attach this automatically.
  static Auditor* debug_env();

 private:
  void check_trail(const Solver& s, AuditPoint point) const;
  void check_watches(const Solver& s, AuditPoint point) const;
  void check_arena(const Solver& s, AuditPoint point) const;
  void check_xor_watches(const Solver& s, AuditPoint point) const;
  void check_fixpoint(const Solver& s, AuditPoint point) const;
  void check_learnt_rup(const Solver& s, AuditPoint point) const;

  AuditOptions opts_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> runs_{0};
};

}  // namespace tp::sat
