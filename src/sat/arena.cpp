#include "sat/arena.hpp"

namespace tp::sat {

ClauseRef ClauseArena::alloc(const std::vector<Lit>& lits, bool learnt) {
  const std::size_t n = lits.size();
  assert(n >= 2 && "arena clauses carry at least two literals");
  ClauseRef r;
  if (n < free_.size() && !free_[n].empty()) {
    r = free_[n].back();
    free_[n].pop_back();
    wasted_words_ -= kHeaderWords + n;
  } else {
    r = static_cast<ClauseRef>(buf_.size());
    buf_.resize(buf_.size() + kHeaderWords + n);
  }
  buf_[r] = static_cast<std::uint32_t>(n) << 3 | (learnt ? kLearntBit : 0u);
  buf_[r + 1] = 0;  // LBD
  buf_[r + 2] = 0;  // activity bits of 0.0f
  for (std::size_t i = 0; i < n; ++i) {
    buf_[r + kHeaderWords + i] = static_cast<std::uint32_t>(lits[i].code());
  }
  return r;
}

void ClauseArena::free_clause(ClauseRef r) {
  assert(!dead(r));
  const std::size_t n = size(r);
  buf_[r] |= kDeadBit;
  wasted_words_ += kHeaderWords + n;
  if (n < free_.size()) free_[n].push_back(r);
}

void ClauseArena::gc_begin() {
  assert(from_.empty());
  from_.swap(buf_);
  buf_.reserve(from_.size() - wasted_words_);
  for (auto& bucket : free_) bucket.clear();
}

ClauseRef ClauseArena::gc_move(ClauseRef r) {
  if ((from_[r] & kRelocBit) != 0) return from_[r + 1];
  assert((from_[r] & kDeadBit) == 0 && "moving a dead clause");
  const std::size_t words = kHeaderWords + (from_[r] >> 3);
  const auto nr = static_cast<ClauseRef>(buf_.size());
  buf_.insert(buf_.end(), from_.begin() + r, from_.begin() + r + words);
  from_[r] |= kRelocBit;
  from_[r + 1] = nr;
  return nr;
}

std::size_t ClauseArena::gc_end() {
  const std::size_t reclaimed =
      (from_.size() - buf_.size()) * sizeof(std::uint32_t);
  from_ = std::vector<std::uint32_t>();
  wasted_words_ = 0;
  ++gc_runs_;
  bytes_reclaimed_ += static_cast<std::int64_t>(reclaimed);
  return reclaimed;
}

}  // namespace tp::sat
