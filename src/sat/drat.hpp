#pragma once
// drat.hpp — DRAT proof logging and an independent RUP/RAT proof checker.
//
// A wrong UNSAT from the solver silently truncates a reconstruction's
// candidate set, which is exactly the failure mode post-silicon debug cannot
// tolerate. This header provides the two halves of the certification story:
//
//  * ProofSink — the solver-facing emission interface. The solver reports
//    three kinds of events: `axiom` (an input clause of the formula being
//    solved, including the CNF expansion of every attached XOR constraint),
//    `add` (a clause the solver claims is implied — learnt clauses and
//    assumption-failure clauses), and `del` (a clause dropped by
//    reduce_db()/simplify()). Writers serialize the add/del stream in the
//    standard DRAT formats (text and binary, as consumed by drat-trim);
//    MemoryProof keeps everything in memory for in-process checking.
//
//  * DratChecker — a self-contained RUP/RAT checker over int literals
//    (DIMACS convention: variable v > 0, negation -v). It shares *no* code
//    or data structures with the solver: clauses are plain vectors, unit
//    propagation is a naive repeated scan, deletion matching is by sorted
//    literal multiset. Slow and obviously correct, which is the point.
//
// Scope and trust boundary:
//  * Proof logging is incompatible with the Gaussian XOR engine: DRAT
//    cannot express row-combination reasoning (the same restriction
//    CryptoMiniSat has; its BIRD/Frat work exists precisely because of it).
//    Solver construction throws when both are requested.
//  * In proof mode the solver attaches XOR constraints whole (no chunk
//    splitting — the auxiliary link variables would need RAT-checked
//    definition clauses that the direct expansion avoids) and emits the
//    2^(n-1)-clause CNF expansion of each attached constraint as axioms;
//    the arity is capped to keep that expansion small.
//  * Axioms emitted after level-0 folding (of already-fixed variables into
//    an XOR's parity) are logically implied by earlier axioms via unit
//    propagation, so a checker seeded with the *original* formula still
//    accepts the proof: extra UP-implied clauses only add propagation power.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sat/arena.hpp"
#include "sat/types.hpp"

namespace tp::sat {

struct Cnf;

/// A DIMACS-convention clause: positive ints are positive literals,
/// negative ints negated ones. Zero never appears.
using IntClause = std::vector<int>;

/// Lit -> DIMACS int (variable v becomes v+1, negation flips the sign).
inline int lit_to_dimacs(Lit l) {
  const int v = l.var() + 1;
  return l.negated() ? -v : v;
}

/// Receives the solver's proof-relevant events. Implementations must not
/// throw from the emission hooks; they are called from the solver's inner
/// loop. One sink serves exactly one solver (clone() detaches the copy).
class ProofSink {
 public:
  virtual ~ProofSink();

  /// An input clause of the formula (original clause, or one clause of an
  /// attached XOR constraint's CNF expansion). File-based DRAT writers
  /// ignore this — their formula is the caller's input file.
  virtual void axiom(const std::vector<Lit>& lits);

  /// A clause the solver claims is RUP-implied by the formula plus all
  /// previously added (and not deleted) clauses.
  virtual void add(const std::vector<Lit>& lits) = 0;

  /// A clause the solver no longer uses for propagation.
  virtual void del(const std::vector<Lit>& lits) = 0;

  /// Deletion logged straight from the clause arena: materializes the
  /// clause's literals into a reused scratch buffer and forwards to the
  /// virtual del() above. This keeps the solver's deletion sites (which
  /// hold only a ClauseRef) free of per-call vector allocation.
  void del(const ClauseArena& arena, ClauseRef ref);

 private:
  std::vector<Lit> scratch_;  ///< reused by del(arena, ref)
};

/// Streams add/del lines in the textual DRAT format ("1 -2 0", "d 3 4 0").
class TextDratWriter : public ProofSink {
 public:
  /// The stream must outlive the writer. The caller flushes/closes it.
  explicit TextDratWriter(std::ostream& out) : out_(&out) {}

  void add(const std::vector<Lit>& lits) override;
  void del(const std::vector<Lit>& lits) override;

 private:
  std::ostream* out_;
};

/// Streams add/del records in the binary DRAT format: 'a' / 'd' prefix,
/// then each literal as a 7-bit variable-length unsigned (v>0 -> 2v,
/// v<0 -> -2v+1), clause terminated by a 0x00 byte.
class BinaryDratWriter : public ProofSink {
 public:
  explicit BinaryDratWriter(std::ostream& out) : out_(&out) {}

  void add(const std::vector<Lit>& lits) override;
  void del(const std::vector<Lit>& lits) override;

 private:
  std::ostream* out_;
};

/// One step of a DRAT proof.
struct ProofOp {
  enum class Kind { Add, Delete };
  Kind kind = Kind::Add;
  IntClause lits;
};

/// In-memory sink: records the axiom stream (the formula as the solver saw
/// it) and the add/del proof ops, ready to feed a DratChecker. Used by the
/// test suites for end-to-end certification without touching the disk.
class MemoryProof : public ProofSink {
 public:
  void axiom(const std::vector<Lit>& lits) override;
  void add(const std::vector<Lit>& lits) override;
  void del(const std::vector<Lit>& lits) override;

  const std::vector<IntClause>& formula() const { return formula_; }
  const std::vector<ProofOp>& ops() const { return ops_; }
  std::vector<ProofOp>& mutable_ops() { return ops_; }
  void clear();

 private:
  std::vector<IntClause> formula_;
  std::vector<ProofOp> ops_;
};

/// Parse a textual DRAT proof. Lines starting with 'c' are comments;
/// 'd' starts a deletion. Throws std::runtime_error on malformed input.
std::vector<ProofOp> parse_drat_text(std::istream& in);

/// Parse a binary DRAT proof. Throws std::runtime_error on malformed input.
std::vector<ProofOp> parse_drat_binary(std::istream& in);

/// The CNF expansion of an XOR constraint over DIMACS variables: one clause
/// per parity-violating assignment (2^(n-1) clauses). `vars` must be
/// positive and distinct. An empty XOR with rhs=true yields the empty
/// clause.
std::vector<IntClause> xor_clauses(const std::vector<int>& vars, bool rhs);

/// A purely clausal view of a parsed DIMACS instance: plain clauses plus
/// the expansion of every x-line. Throws std::invalid_argument when an
/// XOR's arity exceeds `max_xor_arity` (the expansion would be huge).
std::vector<IntClause> clausal_view(const Cnf& cnf,
                                    std::size_t max_xor_arity = 20);

/// Self-contained RUP/DRAT proof checker. Feed the formula with
/// add_clause(), then verify a proof with check(). Intentionally naive:
/// unit propagation is a repeated full scan, so keep instances small
/// (tests and spot-checks, not competition-scale proofs).
class DratChecker {
 public:
  /// When `check_rat` is set (the default), an addition that fails the RUP
  /// test falls back to the full RAT test on its first literal.
  explicit DratChecker(bool check_rat = true) : check_rat_(check_rat) {}

  /// Add one clause of the input formula.
  void add_clause(const IntClause& lits);

  struct Result {
    bool valid = false;        ///< every addition passed RUP (or RAT)
    bool proved_unsat = false;  ///< a valid empty clause was derived
    std::size_t ops_checked = 0;
    std::size_t ignored_deletions = 0;  ///< deletions of unknown clauses
    std::string error;  ///< first failure, empty when valid
  };

  /// Verify the proof against the formula fed so far. Mutates checker
  /// state (clauses are added/deleted as the proof replays); construct a
  /// fresh checker per verification.
  Result check(const std::vector<ProofOp>& proof);

 private:
  struct StoredClause {
    IntClause lits;
    bool active = true;
  };

  int val(int lit) const;
  void assign_true(int lit);
  void ensure_var(int var);
  void reset_assignment();
  /// Seed the negation of `clause` and propagate. True iff a conflict is
  /// derived (i.e. `clause` is RUP).
  bool rup(const IntClause& clause);
  bool rat(const IntClause& clause);
  bool propagate_to_conflict();
  void store(const IntClause& lits);
  bool erase(const IntClause& lits);

  bool check_rat_ = true;
  std::vector<StoredClause> clauses_;
  std::vector<signed char> assign_;  ///< 1-based by variable; -1/0/+1
  std::vector<int> touched_;         ///< variables assigned since last reset
};

}  // namespace tp::sat
