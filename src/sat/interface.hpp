#pragma once
// interface.hpp — the abstract solver boundary of the SAT layer.
//
// Everything above src/sat/ (the timeprint engines, the CAN forensics
// encoders, the AllSAT driver) talks to a solver through SolverInterface,
// an IPASIR-flavoured incremental API extended with the two capabilities
// the reconstruction workload cannot live without: native XOR constraints
// and budgeted solves (SolveLimits). Backends implementing it today are
// the in-tree CDCL solver (sat::Solver) and the racing portfolio
// (sat::PortfolioSolver); an external solver would slot in behind the same
// small set of virtuals.
//
// Interface contract (the guarantees every backend must provide):
//
//  * *Incrementality.* add_clause()/add_xor() may be interleaved with
//    solve() calls; after Status::Sat the model is readable until the next
//    mutating call. assume() literals apply to the next solve() only.
//  * *Budget semantics.* solve(limits) returns Status::Unknown when a
//    conflict/time budget is exhausted or `limits.interrupt` is observed
//    set; the solver stays usable. A backend may overshoot a budget by a
//    bounded amount (limits are polled, not preempted).
//  * *Failed assumptions.* After an assumption-Unsat, failed() is a clause
//    over the responsible assumptions (each literal the negation of one).
//  * *Thread-safety.* A SolverInterface instance is single-threaded: no
//    concurrent calls on one instance. clone() produces an independent
//    instance that may be driven from another thread; backends guarantee
//    clones share no mutable state (an attached ProofSink is detached by
//    clone(); an obs::Tracer is shared, which is safe — it locks).
//  * *Proof ownership.* A ProofSink certifies exactly one backend
//    instance's derivation stream. Composite backends (the portfolio)
//    route the sink to exactly one member and only report proof-bearing
//    verdicts from it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/types.hpp"

namespace tp::obs {
class Tracer;
}

namespace tp::sat {

class ProofSink;  // drat.hpp — DRAT proof logging

/// Resource limits for one solve() call. Negative values mean "unlimited".
struct SolveLimits {
  std::int64_t max_conflicts = -1;
  double max_seconds = -1.0;
  /// Cooperative cancellation token: when non-null and set, the solve
  /// returns Status::Unknown at the next conflict or decision. Shared by
  /// every worker of a parallel batch so one worker hitting a global limit
  /// stops the others. The pointee must outlive the solve() call.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Counters accumulated over the lifetime of a solver.
struct SolverStats {
  std::int64_t conflicts = 0;
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t xor_propagations = 0;
  std::int64_t restarts = 0;
  std::int64_t learnt_clauses = 0;
  std::int64_t removed_clauses = 0;
  std::int64_t minimized_literals = 0;
  /// Invocations of the Gaussian elimination engine (propagation fixpoints
  /// at which the gate let the row reduction run).
  std::int64_t gauss_runs = 0;
  /// Literals removed from stored clauses by root-level vivification.
  std::int64_t vivified_literals = 0;
  /// Clauses deleted by on-the-fly backward subsumption (the just-learnt
  /// clause was a strict subset of the conflicting clause).
  std::int64_t subsumed_clauses = 0;
  /// Mark-and-compact collections of the clause arena.
  std::int64_t arena_gc_runs = 0;
  /// Bytes the arena GC gave back across those collections.
  std::int64_t arena_bytes_reclaimed = 0;
  /// Budgeted inprocessing rounds run between solves (inprocess()).
  std::int64_t inprocess_rounds = 0;
  /// Wall-clock seconds spent inside solve() calls (accumulated). For a
  /// portfolio this sums the members' concurrent solve time, so it can
  /// exceed wall-clock time by up to the member count.
  double solve_seconds = 0.0;

  /// Propagation throughput over the accumulated solve time — the headline
  /// rate bench_solver tracks against BENCH_solver.json. 0 before any solve.
  double propagations_per_sec() const {
    return solve_seconds > 0.0
               ? static_cast<double>(propagations) / solve_seconds
               : 0.0;
  }

  /// Element-wise accumulation (aggregating per-worker solvers of a batch).
  SolverStats& operator+=(const SolverStats& o);
};

/// The solver knobs shared by every layer that configures a solver —
/// SolverOptions (sat/solver.hpp) and ReconstructionOptions
/// (timeprint/reconstruct.hpp) inherit it, AllSatOptions adopts it via
/// with_config(); previously each struct carried hand-copied duplicates of
/// these fields.
struct SolverConfig {
  /// Route XOR constraints through the Gaussian-elimination engine instead
  /// of watched-variable propagation. At every propagation fixpoint the
  /// whole XOR system is row-reduced under the current assignment, so
  /// implications of *linear combinations* of rows are found — the
  /// CryptoMiniSat capability the paper's reconstruction times rely on.
  bool use_gauss = false;
  /// Gate for the Gaussian engine: skip the (relatively costly) elimination
  /// while more than this many of its variables are unassigned — a row
  /// combination can only become unit near the endgame anyway. 0 = auto
  /// (4·rows + 32); SIZE_MAX = always run.
  std::size_t gauss_max_unassigned = 0;
  /// Event tracer (obs/trace.hpp), or null for no tracing. Thread-safe and
  /// shared by clone()s; must outlive the solver.
  obs::Tracer* tracer = nullptr;
  /// DRAT proof sink (drat.hpp), or null for no proof logging. Serves
  /// exactly one solver instance (clone() detaches it from the copy) and
  /// must outlive the solver. Incompatible with use_gauss.
  ProofSink* proof = nullptr;
  /// CNF preprocessing front-end (sat/preprocess.hpp): run bounded
  /// variable elimination, backward/self-subsuming subsumption, pure- and
  /// failed-literal probing over the clause database once before the
  /// first solve, then compact the surviving variables into a dense range
  /// (sat/remap.hpp). SolverFactory::make wraps the selected backend in a
  /// PreprocessingSolver when set, so every consumer of the interface
  /// inherits it. freeze() variables the caller will assume on or mention
  /// in later-added clauses — frozen variables are never eliminated, only
  /// renumbered. An unfrozen variable that is used late anyway is
  /// *restored* on demand (re-introduced together with its stashed
  /// witness clauses), so freezing is a performance contract, not a
  /// correctness one. DRAT-safe: each preprocessing step emits the
  /// add/delete ops that keep an UNSAT proof checkable.
  bool preprocess = false;
  /// Failed-literal probing budget, counted in clause-literal visits of
  /// the preprocessing-time propagation (0 disables probing).
  std::int64_t preprocess_probe_budget = 2'000'000;
  /// Work budget of one inprocess() round — root-level vivification,
  /// backward subsumption and failed-literal probing between solves —
  /// counted in clause-literal visits / propagations per phase. 0
  /// disables inprocessing entirely (inprocess() degrades to simplify()).
  /// Long-running incremental consumers (TemplateReconstructor) call
  /// inprocess() on the schedule below; one-shot solves never pay for it.
  std::int64_t inprocess_budget = 100'000;
  /// Template-engine schedule: run an inprocess() round every this many
  /// served entries (and at every template rebuild edge). 0 = rebuild
  /// edges only.
  std::uint32_t inprocess_interval = 32;
  /// Bounded variable elimination keeps an elimination only when the
  /// number of surviving resolvents is at most the number of clauses it
  /// removes plus this growth allowance. A small positive allowance lets
  /// BVE finish off chains whose middle resolvents briefly grow the
  /// database; large values trade propagation speed for variable count
  /// (bench_solver regresses noticeably at 16).
  int preprocess_bve_growth = 4;
  /// BVE skips variables with more occurrences than this in *both*
  /// phases (the resolvent cross-product would be quadratic ballast).
  std::size_t preprocess_occ_limit = 30;
};

/// Abstract incremental SAT solver with native XOR support. See the file
/// comment for the interface contract.
class SolverInterface {
 public:
  virtual ~SolverInterface();

  // --- building the formula (level 0 only) ---

  /// Create a fresh variable and return it.
  virtual Var new_var() = 0;

  /// Number of variables created so far.
  virtual int num_vars() const = 0;

  /// Add a disjunctive clause. Returns false iff the solver became
  /// trivially unsatisfiable.
  virtual bool add_clause(std::vector<Lit> lits) = 0;

  /// Add an XOR constraint (parity of `vars` equals rhs). Returns false
  /// iff trivially unsatisfiable.
  virtual bool add_xor(std::vector<Var> vars, bool rhs) = 0;

  /// Declare a variable part of the external interface: a preprocessing
  /// front-end (SolverConfig::preprocess) must not eliminate it, because
  /// the caller intends to assume on it or mention it in later-added
  /// clauses. Frozen variables may still be *fixed* by unit propagation —
  /// only structural elimination is ruled out. Default: no-op (backends
  /// without preprocessing never eliminate variables).
  virtual void freeze(Var v);

  // --- solving ---

  /// Queue an assumption literal for the next solve() call only (IPASIR
  /// idiom). Cleared when that solve returns.
  virtual void assume(Lit l) = 0;

  /// Run the search under the queued assumptions. Sat/Unsat, or Unknown
  /// when a limit was hit or `limits.interrupt` observed set.
  virtual Status solve(const SolveLimits& limits = {}) = 0;

  /// After Status::Sat: the model value of a variable (never Undef).
  virtual LBool model(Var v) const = 0;

  /// After an assumption-Unsat: clause over the failed assumptions (each
  /// literal is the negation of a responsible assumption).
  virtual const std::vector<Lit>& failed() const = 0;

  /// False once the clause database is known unsatisfiable.
  virtual bool okay() const = 0;

  /// Value of a variable fixed at decision level 0, or Undef.
  virtual LBool fixed_value(Var v) const = 0;

  /// Root-level database simplification between solves. Returns okay().
  virtual bool simplify() = 0;

  /// Finalize the formula built so far *now* instead of at the first
  /// solve(). For plain backends this is a no-op; the preprocessing
  /// front-end runs its pipeline and constructs the inner backend here,
  /// so an immutable template master pays for preprocessing exactly once
  /// and clone()s copy the already-built inner solver. Idempotent.
  virtual void prepare();

  /// Budgeted root-level inprocessing between solves: simplify() plus a
  /// bounded round of backward subsumption and failed-literal probing
  /// (SolverConfig::inprocess_budget work units; budget 0 degrades to
  /// plain simplify()). DRAT-correct: derived facts are emitted as adds
  /// before any enabled deletion. Returns okay(). Default forwards to
  /// simplify().
  virtual bool inprocess();

  // --- introspection ---

  /// Approximate bytes of retained clause storage (problem + learnt) —
  /// the quantity the batch template cache bounds with LRU eviction.
  /// Default: a coarse heuristic over num_clauses()/num_learnts().
  virtual std::size_t retained_bytes() const;

  /// True iff a preprocessing front-end structurally eliminated `v` (the
  /// variable can still be restored on demand). Plain backends: false.
  virtual bool var_eliminated(Var v) const;

  /// Lifetime statistics (aggregated over members for composite backends).
  virtual SolverStats stats() const = 0;

  /// Problem clauses currently held (binaries included).
  virtual std::size_t num_clauses() const = 0;

  /// XOR constraints currently held.
  virtual std::size_t num_xors() const = 0;

  /// Learnt clauses currently held (binaries included).
  virtual std::size_t num_learnts() const = 0;

  // --- wiring ---

  /// Attach (or detach, with null) an event tracer. The tracer is
  /// thread-safe; it may be shared across backends and clones.
  virtual void set_tracer(obs::Tracer* tracer) = 0;

  /// Independent deep copy at decision level 0 — no mutable state is
  /// shared with the original (a ProofSink does NOT travel; a Tracer
  /// does, by design). The branching point for cube-and-conquer workers
  /// and template caches.
  virtual std::unique_ptr<SolverInterface> clone() const = 0;

  // --- non-virtual conveniences over the primitives ---

  /// Solve under assumptions: the given literals are fixed for this call
  /// only. Unsat means "unsatisfiable together with the assumptions";
  /// failed() then holds the responsible subset, negated, as a clause.
  Status solve_assuming(const std::vector<Lit>& assumptions,
                        const SolveLimits& limits = {});

  /// After Status::Sat: the model value of a variable / literal.
  LBool model_value(Var v) const { return model(v); }
  LBool model_value(Lit l) const {
    const LBool v = model(l.var());
    return l.negated() ? ~v : v;
  }

  /// Alias of failed() predating the IPASIR naming.
  const std::vector<Lit>& final_conflict() const { return failed(); }
};

/// Which backend a SolverFactory builds.
enum class SolverBackend {
  Single,     ///< one sat::Solver
  Portfolio,  ///< sat::PortfolioSolver racing N diverse members
};

/// Human-readable backend name ("single" / "portfolio").
const char* to_string(SolverBackend backend);

/// How PortfolioSolver diversifies its members (member 0 always runs the
/// caller's base configuration unchanged, so a 1-member portfolio degrades
/// to the single backend plus scheduling overhead).
enum class PortfolioDiversity {
  /// Rotate through everything below — the default.
  Mixed,
  /// Alternate the Gaussian engine on/off and vary its gate; the
  /// watched-XOR members chunk their rows, the Gauss members do not, so
  /// the two halves explore structurally different encodings.
  GaussSplit,
  /// Keep the XOR path fixed and vary branching/restart behaviour
  /// (restart_base, var_decay, default_polarity, phase_saving).
  Heuristics,
};

/// Knobs of a portfolio backend.
struct PortfolioOptions {
  /// Racing members (clamped to at least 1).
  std::size_t members = 4;
  PortfolioDiversity diversity = PortfolioDiversity::Mixed;
  /// Learnt-clause sharing after each race: up to share_max_clauses of the
  /// winner's freshest learnts with LBD <= share_max_lbd are imported by
  /// every loser. 0 clauses disables sharing. Sharing is disabled in proof
  /// mode regardless (foreign clauses are not RUP in a member's stream).
  std::uint32_t share_max_lbd = 2;
  std::size_t share_max_clauses = 64;
  /// Worker threads of the portfolio's own pool (0 = one per member).
  std::size_t num_threads = 0;
};

/// Builds solver backends from a base configuration.
class SolverFactory {
 public:
  /// One sat::Solver with the given options.
  static std::unique_ptr<SolverInterface> make(const struct SolverOptions& base);

  /// The requested backend; `portfolio` is consulted only for
  /// SolverBackend::Portfolio.
  static std::unique_ptr<SolverInterface> make(
      SolverBackend backend, const struct SolverOptions& base,
      const PortfolioOptions& portfolio = {});
};

}  // namespace tp::sat
