#include "sat/allsat.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tp::sat {

AllSatResult enumerate_models(Solver& solver, const std::vector<Var>& projection,
                              const AllSatOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  static obs::Counter& runs = obs::MetricsRegistry::global().counter("allsat.runs");
  static obs::Counter& models_total =
      obs::MetricsRegistry::global().counter("allsat.models");
  runs.add(1);

  obs::Tracer::Span span;
  if (options.tracer != nullptr) {
    span = options.tracer->span(
        "allsat.enumerate",
        {{"projection", static_cast<std::uint64_t>(projection.size())},
         {"max_models", options.max_models == UINT64_MAX
                            ? obs::Json()
                            : obs::Json(options.max_models)},
         {"assumptions", static_cast<std::uint64_t>(options.assumptions.size())}});
  }

  AllSatResult result;
  while (result.models.size() < options.max_models) {
    SolveLimits limits = options.limits;
    if (limits.max_seconds > 0) {
      limits.max_seconds -= elapsed();
      if (limits.max_seconds <= 0) {
        result.final_status = Status::Unknown;
        break;
      }
    }
    const Status st = options.assumptions.empty()
                          ? solver.solve(limits)
                          : solver.solve_assuming(options.assumptions, limits);
    result.final_status = st;
    if (st != Status::Sat) break;

    std::vector<bool> model;
    model.reserve(projection.size());
    std::vector<Lit> blocking;
    blocking.reserve(projection.size());
    for (Var v : projection) {
      const bool val = solver.model_value(v) == LBool::True;
      model.push_back(val);
      blocking.push_back(Lit(v, /*negated=*/val));  // literal false under model
    }
    result.models.push_back(std::move(model));
    result.seconds_to_model.push_back(elapsed());
    if (options.tracer != nullptr) {
      options.tracer->event(
          "allsat.model",
          {{"index", static_cast<std::uint64_t>(result.models.size() - 1)},
           {"seconds", result.seconds_to_model.back()}});
    }

    if (!solver.add_clause(std::move(blocking))) {
      // Blocking clause made the instance unsatisfiable: enumeration done.
      result.final_status = Status::Unsat;
      break;
    }
  }
  result.seconds_total = elapsed();
  models_total.add(static_cast<std::int64_t>(result.models.size()));
  if (span.active()) {
    span.add("models", static_cast<std::uint64_t>(result.models.size()));
    span.add("status", to_string(result.final_status));
    span.finish();
  }
  return result;
}

}  // namespace tp::sat
