#include "sat/allsat.hpp"

#include <cassert>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tp::sat {

AllSatResult enumerate_models(SolverInterface& solver,
                              const std::vector<Var>& projection,
                              const AllSatOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  static obs::Counter& runs = obs::MetricsRegistry::global().counter("allsat.runs");
  static obs::Counter& models_total =
      obs::MetricsRegistry::global().counter("allsat.models");
  runs.add(1);

  // Guard resolution (see header): an explicit guard is caller-owned; a run
  // with assumptions but no guard gets an internal guard so its blocking
  // clauses do not outlive the assumption cube — without one they would be
  // permanent, silently shrinking every later enumeration on this solver.
  Lit guard = options.guard;
  bool internal_guard = false;
  if (guard == lit_undef && !options.assumptions.empty()) {
    guard = mk_lit(solver.new_var());
    internal_guard = true;
  }
  std::vector<Lit> assumptions = options.assumptions;
  if (guard != lit_undef) assumptions.push_back(guard);

  // Pin the enumeration's interface variables before the first solve: a
  // preprocessing front-end (SolverConfig::preprocess) must not eliminate
  // the projection (blocking clauses mention it), the assumption cube, or
  // the guard. No-op on backends without preprocessing.
  for (Var v : projection) solver.freeze(v);
  for (Lit l : options.assumptions) solver.freeze(l.var());
  if (guard != lit_undef) solver.freeze(guard.var());

  obs::Tracer::Span span;
  if (options.tracer != nullptr) {
    span = options.tracer->span(
        "allsat.enumerate",
        {{"projection", static_cast<std::uint64_t>(projection.size())},
         {"max_models", options.max_models == UINT64_MAX
                            ? obs::Json()
                            : obs::Json(options.max_models)},
         {"assumptions", static_cast<std::uint64_t>(options.assumptions.size())},
         {"guarded", guard != lit_undef}});
  }

  AllSatResult result;
  while (result.models.size() < options.max_models) {
    SolveLimits limits = options.limits;
    if (limits.max_seconds > 0) {
      limits.max_seconds -= elapsed();
      if (limits.max_seconds <= 0) {
        result.final_status = Status::Unknown;
        break;
      }
    }
    const Status st = assumptions.empty()
                          ? solver.solve(limits)
                          : solver.solve_assuming(assumptions, limits);
    result.final_status = st;
    if (st != Status::Sat) break;

    std::vector<bool> model;
    model.reserve(projection.size());
    std::vector<Lit> blocking;
    blocking.reserve(projection.size() + 1);
    if (guard != lit_undef) blocking.push_back(~guard);
    std::size_t weight = 0;
    for (Var v : projection) {
      const bool val = solver.model_value(v) == LBool::True;
      model.push_back(val);
      weight += val ? 1 : 0;
      // Weight-aware blocking: under a declared fixed weight the k true
      // literals suffice (another weight-k model cannot contain them all).
      if (!options.fixed_weight.has_value() || val) {
        blocking.push_back(Lit(v, /*negated=*/val));  // literal false under model
      }
    }
    assert(!options.fixed_weight.has_value() || weight == *options.fixed_weight);
    (void)weight;
    result.models.push_back(std::move(model));
    result.seconds_to_model.push_back(elapsed());
    if (options.tracer != nullptr) {
      options.tracer->event(
          "allsat.model",
          {{"index", static_cast<std::uint64_t>(result.models.size() - 1)},
           {"seconds", result.seconds_to_model.back()}});
    }

    if (!solver.add_clause(std::move(blocking))) {
      // Blocking clause made the instance unsatisfiable: enumeration done.
      result.final_status = Status::Unsat;
      break;
    }
  }
  if (internal_guard) solver.add_clause({~guard});  // retire this run's blocks
  result.seconds_total = elapsed();
  models_total.add(static_cast<std::int64_t>(result.models.size()));
  if (span.active()) {
    span.add("models", static_cast<std::uint64_t>(result.models.size()));
    span.add("status", to_string(result.final_status));
    span.finish();
  }
  return result;
}

}  // namespace tp::sat
