#pragma once
// arena.hpp — flat clause storage for the CDCL hot path.
//
// Clauses live back-to-back in one contiguous uint32_t buffer and are
// addressed by 32-bit ClauseRef offsets instead of pointers, the layout
// MiniSat-lineage solvers (including the paper's CryptoMiniSat [21]) use:
//
//     word 0   size << 3 | reloc << 2 | dead << 1 | learnt
//     word 1   LBD  — or the forwarding ClauseRef while reloc is set
//     word 2   activity (IEEE-754 float bits)
//     word 3+  literal codes (Lit::code), one per word
//
// Propagation then walks cache-line-adjacent words rather than chasing
// per-clause heap allocations, watcher entries shrink to 8 bytes, and
// clone() of a whole database is a flat buffer copy with every reference
// still valid.
//
// Lifetime protocol (the Auditor checks these invariants):
//  * alloc() returns a ref that stays valid until free_clause(ref);
//    freeing only marks the clause dead and recycles the slot through a
//    size-bucketed free list, so the caller must have removed every
//    watcher/DB/reason reference first — a reused slot aliases a new
//    clause.
//  * Dead slots that no bucket fits accumulate as waste; when want_gc()
//    turns true the owner runs the mark-and-compact cycle
//    gc_begin() → gc_move(ref) for every live root → reloc(ref) for every
//    remaining reference → gc_end(), which drops the old buffer. Moving is
//    idempotent (the first move installs a forwarding ref in word 1).
//  * GC never runs concurrently with propagation; the solver triggers it
//    only from reduce_db()/simplify().
//
// The arena is copyable (clone support) and keeps its own reclamation
// statistics for the observability layer.

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sat/types.hpp"

namespace tp::sat {

/// Word offset of a clause header inside the arena buffer.
using ClauseRef = std::uint32_t;

/// Sentinel "no clause" reference.
inline constexpr ClauseRef kCRefUndef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  static constexpr std::size_t kHeaderWords = 3;

  /// Append (or recycle a freed slot for) a clause. The literals are
  /// copied; LBD starts at 0 and activity at 0.0f.
  ClauseRef alloc(const std::vector<Lit>& lits, bool learnt);

  /// Mark a clause dead and recycle its slot. The caller guarantees no
  /// watcher, database or reason reference to `r` survives this call.
  void free_clause(ClauseRef r);

  std::size_t size(ClauseRef r) const { return buf_[r] >> 3; }
  bool learnt(ClauseRef r) const { return (buf_[r] & kLearntBit) != 0; }
  /// Clear the learnt flag: the clause was promoted to the irredundant
  /// database (it subsumed a problem clause and now carries its constraint).
  void promote(ClauseRef r) { buf_[r] &= ~kLearntBit; }
  bool dead(ClauseRef r) const { return (buf_[r] & kDeadBit) != 0; }

  std::uint32_t lbd(ClauseRef r) const { return buf_[r + 1]; }
  void set_lbd(ClauseRef r, std::uint32_t lbd) { buf_[r + 1] = lbd; }

  float activity(ClauseRef r) const {
    float a;
    std::memcpy(&a, &buf_[r + 2], sizeof a);
    return a;
  }
  void set_activity(ClauseRef r, float a) {
    std::memcpy(&buf_[r + 2], &a, sizeof a);
  }

  Lit lit(ClauseRef r, std::size_t i) const {
    return Lit::from_code(static_cast<std::int32_t>(buf_[r + kHeaderWords + i]));
  }
  void set_lit(ClauseRef r, std::size_t i, Lit l) {
    buf_[r + kHeaderWords + i] = static_cast<std::uint32_t>(l.code());
  }
  void swap_lits(ClauseRef r, std::size_t i, std::size_t j) {
    std::swap(buf_[r + kHeaderWords + i], buf_[r + kHeaderWords + j]);
  }
  /// Raw literal-code words of a clause; valid until the next alloc()/GC.
  std::uint32_t* lits(ClauseRef r) { return buf_.data() + r + kHeaderWords; }
  const std::uint32_t* lits(ClauseRef r) const {
    return buf_.data() + r + kHeaderWords;
  }

  // --- occupancy and reclamation statistics ---
  std::size_t bytes_used() const { return buf_.size() * sizeof(std::uint32_t); }
  std::size_t bytes_live() const {
    return (buf_.size() - wasted_words_) * sizeof(std::uint32_t);
  }
  std::size_t wasted_bytes() const { return wasted_words_ * sizeof(std::uint32_t); }
  std::size_t wasted_words() const { return wasted_words_; }
  std::size_t buffer_words() const { return buf_.size(); }
  std::int64_t gc_runs() const { return gc_runs_; }
  std::int64_t bytes_reclaimed() const { return bytes_reclaimed_; }

  /// True once enough of the buffer is dead to be worth compacting
  /// (a quarter of the buffer, with a floor so tiny databases never GC).
  bool want_gc() const {
    return wasted_words_ >= kMinGcWords && 4 * wasted_words_ >= buf_.size();
  }

  // --- mark-and-compact cycle (see file comment for the protocol) ---
  void gc_begin();

  /// Copy a live clause into the new buffer (idempotent) and return its
  /// new reference.
  ClauseRef gc_move(ClauseRef r);

  /// Forwarded reference of a clause already moved by gc_move().
  ClauseRef reloc(ClauseRef r) const {
    assert((from_[r] & kRelocBit) != 0 && "reloc of an unmoved clause");
    return from_[r + 1];
  }

  /// Drop the old buffer; returns the number of bytes reclaimed.
  std::size_t gc_end();

 private:
  static constexpr std::uint32_t kLearntBit = 1u;
  static constexpr std::uint32_t kDeadBit = 2u;
  static constexpr std::uint32_t kRelocBit = 4u;
  static constexpr std::size_t kMinGcWords = 1024;
  /// Freed slots of up to this many literals are recycled exactly-sized;
  /// larger ones stay dead until the next compaction.
  static constexpr std::size_t kMaxFreeBucket = 64;

  std::vector<std::uint32_t> buf_;
  std::vector<std::uint32_t> from_;  ///< old space, non-empty only mid-GC
  std::vector<std::vector<ClauseRef>> free_{kMaxFreeBucket + 1};
  std::size_t wasted_words_ = 0;
  std::int64_t gc_runs_ = 0;
  std::int64_t bytes_reclaimed_ = 0;
};

}  // namespace tp::sat
