#include "sat/xor_to_cnf.hpp"

namespace tp::sat {

Lit tseitin_xor(SolverInterface& solver, Lit a, Lit b) {
  const Lit t = mk_lit(solver.new_var());
  // t <-> a XOR b
  solver.add_clause({a, b, ~t});
  solver.add_clause({a, ~b, t});
  solver.add_clause({~a, b, t});
  solver.add_clause({~a, ~b, ~t});
  return t;
}

bool add_xor_as_cnf(SolverInterface& solver, const std::vector<Var>& vars, bool rhs) {
  if (vars.empty()) {
    if (rhs) return solver.add_clause({});
    return solver.okay();
  }
  if (vars.size() == 1) {
    return solver.add_clause({Lit(vars[0], !rhs)});
  }
  Lit cur = mk_lit(vars[0]);
  for (std::size_t i = 1; i + 1 < vars.size(); ++i) {
    cur = tseitin_xor(solver, cur, mk_lit(vars[i]));
  }
  // Final pair: cur XOR last = rhs, encoded directly with two clauses.
  const Lit last = mk_lit(vars.back());
  bool ok = true;
  if (rhs) {
    ok = solver.add_clause({cur, last}) && ok;
    ok = solver.add_clause({~cur, ~last}) && ok;
  } else {
    ok = solver.add_clause({cur, ~last}) && ok;
    ok = solver.add_clause({~cur, last}) && ok;
  }
  return ok;
}

}  // namespace tp::sat
