#include "sat/reference.hpp"

#include <cassert>

namespace tp::sat {

std::vector<std::vector<bool>> reference_all_models(const Cnf& cnf) {
  assert(cnf.num_vars <= 30);
  const std::uint64_t total = std::uint64_t{1} << cnf.num_vars;
  std::vector<std::vector<bool>> models;
  std::vector<bool> assignment(static_cast<std::size_t>(cnf.num_vars));
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < cnf.num_vars; ++v) {
      assignment[static_cast<std::size_t>(v)] = (bits >> v) & 1;
    }
    if (cnf.satisfied_by(assignment)) models.push_back(assignment);
  }
  return models;
}

std::uint64_t reference_model_count(const Cnf& cnf) {
  assert(cnf.num_vars <= 30);
  const std::uint64_t total = std::uint64_t{1} << cnf.num_vars;
  std::uint64_t count = 0;
  std::vector<bool> assignment(static_cast<std::size_t>(cnf.num_vars));
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 0; v < cnf.num_vars; ++v) {
      assignment[static_cast<std::size_t>(v)] = (bits >> v) & 1;
    }
    if (cnf.satisfied_by(assignment)) ++count;
  }
  return count;
}

}  // namespace tp::sat
