#include "sat/drat.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sat/dimacs.hpp"

namespace tp::sat {

ProofSink::~ProofSink() = default;

void ProofSink::axiom(const std::vector<Lit>& /*lits*/) {}

void ProofSink::del(const ClauseArena& arena, ClauseRef ref) {
  const std::size_t n = arena.size(ref);
  scratch_.clear();
  scratch_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scratch_.push_back(arena.lit(ref, i));
  del(scratch_);
}

namespace {

void write_text_clause(std::ostream& out, const std::vector<Lit>& lits) {
  for (Lit l : lits) out << lit_to_dimacs(l) << ' ';
  out << "0\n";
}

// Binary DRAT literal mapping (drat-trim): v>0 -> 2v, v<0 -> -2v+1, then
// 7-bit groups, high bit set on all but the last byte.
void write_binary_lit(std::ostream& out, int lit) {
  auto u = static_cast<std::uint64_t>(lit > 0 ? 2L * lit : -2L * lit + 1);
  while (u >= 0x80) {
    out.put(static_cast<char>((u & 0x7f) | 0x80));
    u >>= 7;
  }
  out.put(static_cast<char>(u));
}

void write_binary_clause(std::ostream& out, const std::vector<Lit>& lits) {
  for (Lit l : lits) write_binary_lit(out, lit_to_dimacs(l));
  out.put('\0');
}

}  // namespace

void TextDratWriter::add(const std::vector<Lit>& lits) {
  write_text_clause(*out_, lits);
}

void TextDratWriter::del(const std::vector<Lit>& lits) {
  *out_ << "d ";
  write_text_clause(*out_, lits);
}

void BinaryDratWriter::add(const std::vector<Lit>& lits) {
  out_->put('a');
  write_binary_clause(*out_, lits);
}

void BinaryDratWriter::del(const std::vector<Lit>& lits) {
  out_->put('d');
  write_binary_clause(*out_, lits);
}

namespace {

IntClause to_int_clause(const std::vector<Lit>& lits) {
  IntClause out;
  out.reserve(lits.size());
  for (Lit l : lits) out.push_back(lit_to_dimacs(l));
  return out;
}

}  // namespace

void MemoryProof::axiom(const std::vector<Lit>& lits) {
  formula_.push_back(to_int_clause(lits));
}

void MemoryProof::add(const std::vector<Lit>& lits) {
  ops_.push_back({ProofOp::Kind::Add, to_int_clause(lits)});
}

void MemoryProof::del(const std::vector<Lit>& lits) {
  ops_.push_back({ProofOp::Kind::Delete, to_int_clause(lits)});
}

void MemoryProof::clear() {
  formula_.clear();
  ops_.clear();
}

std::vector<ProofOp> parse_drat_text(std::istream& in) {
  std::vector<ProofOp> ops;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;  // blank line
    if (tok == "c") continue;
    ProofOp op;
    bool have = true;
    if (tok == "d") {
      op.kind = ProofOp::Kind::Delete;
      have = static_cast<bool>(ss >> tok);
    }
    // Token-by-token with full validation: a stream extraction straight
    // into a number writes 0 on failure, which would make junk look like
    // the clause terminator.
    bool terminated = false;
    while (have) {
      if (terminated) {
        throw std::runtime_error("drat: line " + std::to_string(lineno) +
                                 ": trailing tokens after terminating 0");
      }
      std::istringstream ts(tok);
      long v = 0;
      if (!(ts >> v) || !ts.eof()) {
        throw std::runtime_error("drat: line " + std::to_string(lineno) +
                                 ": expected a literal, got '" + tok + "'");
      }
      if (v == 0) {
        terminated = true;
      } else {
        op.lits.push_back(static_cast<int>(v));
      }
      have = static_cast<bool>(ss >> tok);
    }
    if (!terminated) {
      throw std::runtime_error("drat: line " + std::to_string(lineno) +
                               ": clause not 0-terminated");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<ProofOp> parse_drat_binary(std::istream& in) {
  std::vector<ProofOp> ops;
  int c = 0;
  while ((c = in.get()) != std::char_traits<char>::eof()) {
    ProofOp op;
    if (c == 'a') {
      op.kind = ProofOp::Kind::Add;
    } else if (c == 'd') {
      op.kind = ProofOp::Kind::Delete;
    } else {
      throw std::runtime_error("drat: binary record must start with 'a' or 'd'");
    }
    while (true) {
      std::uint64_t u = 0;
      int shift = 0;
      int byte = 0;
      do {
        byte = in.get();
        if (byte == std::char_traits<char>::eof()) {
          throw std::runtime_error("drat: truncated binary literal");
        }
        u |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        shift += 7;
        if (shift > 63) throw std::runtime_error("drat: binary literal overflow");
      } while ((byte & 0x80) != 0);
      if (u == 0) break;  // end of clause
      const auto mag = static_cast<long>(u >> 1);
      op.lits.push_back(static_cast<int>((u & 1) != 0 ? -mag : mag));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<IntClause> xor_clauses(const std::vector<int>& vars, bool rhs) {
  const std::size_t n = vars.size();
  if (n == 0) {
    return rhs ? std::vector<IntClause>{{}} : std::vector<IntClause>{};
  }
  if (n > 24) {
    throw std::invalid_argument("xor_clauses: arity too large to expand");
  }
  std::vector<IntClause> out;
  out.reserve(std::size_t{1} << (n - 1));
  for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << n); ++mask) {
    // `mask` bit i set = variable i true. Forbid assignments whose parity
    // violates the constraint with the clause of their negations.
    bool parity = false;
    for (std::size_t i = 0; i < n; ++i) parity ^= ((mask >> i) & 1) != 0;
    if (parity == rhs) continue;
    IntClause clause;
    clause.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      clause.push_back(((mask >> i) & 1) != 0 ? -vars[i] : vars[i]);
    }
    out.push_back(std::move(clause));
  }
  return out;
}

std::vector<IntClause> clausal_view(const Cnf& cnf, std::size_t max_xor_arity) {
  std::vector<IntClause> out;
  out.reserve(cnf.clauses.size());
  for (const auto& c : cnf.clauses) {
    IntClause ic;
    ic.reserve(c.size());
    for (Lit l : c) ic.push_back(lit_to_dimacs(l));
    out.push_back(std::move(ic));
  }
  for (const auto& [vars, rhs] : cnf.xors) {
    if (vars.size() > max_xor_arity) {
      throw std::invalid_argument(
          "clausal_view: XOR arity " + std::to_string(vars.size()) +
          " exceeds the expansion cap of " + std::to_string(max_xor_arity));
    }
    std::vector<int> ivars;
    ivars.reserve(vars.size());
    for (Var v : vars) ivars.push_back(v + 1);
    // Duplicate variables cancel pairwise; the expansion needs them distinct.
    std::sort(ivars.begin(), ivars.end());
    std::vector<int> distinct;
    bool parity = rhs;
    for (std::size_t i = 0; i < ivars.size();) {
      if (i + 1 < ivars.size() && ivars[i] == ivars[i + 1]) {
        i += 2;
        continue;
      }
      distinct.push_back(ivars[i]);
      ++i;
    }
    for (auto& clause : xor_clauses(distinct, parity)) {
      out.push_back(std::move(clause));
    }
  }
  return out;
}

// ------------------------------------------------------------ checker ----

int DratChecker::val(int lit) const {
  const auto v = static_cast<std::size_t>(std::abs(lit));
  if (v >= assign_.size()) return 0;
  const int a = assign_[v];
  return lit > 0 ? a : -a;
}

void DratChecker::assign_true(int lit) {
  const int v = std::abs(lit);
  ensure_var(v);
  assign_[static_cast<std::size_t>(v)] = lit > 0 ? 1 : -1;
  touched_.push_back(v);
}

void DratChecker::ensure_var(int var) {
  if (static_cast<std::size_t>(var) >= assign_.size()) {
    assign_.resize(static_cast<std::size_t>(var) + 1, 0);
  }
}

void DratChecker::reset_assignment() {
  for (int v : touched_) assign_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();
}

void DratChecker::add_clause(const IntClause& lits) { store(lits); }

void DratChecker::store(const IntClause& lits) {
  for (int l : lits) ensure_var(std::abs(l));
  clauses_.push_back({lits, true});
}

bool DratChecker::erase(const IntClause& lits) {
  IntClause key = lits;
  std::sort(key.begin(), key.end());
  for (auto& c : clauses_) {
    if (!c.active || c.lits.size() != key.size()) continue;
    IntClause have = c.lits;
    std::sort(have.begin(), have.end());
    if (have == key) {
      c.active = false;
      return true;
    }
  }
  return false;
}

bool DratChecker::propagate_to_conflict() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& c : clauses_) {
      if (!c.active) continue;
      int unassigned = 0;
      int unit = 0;
      bool satisfied = false;
      for (int l : c.lits) {
        const int v = val(l);
        if (v > 0) {
          satisfied = true;
          break;
        }
        // Count *distinct* unassigned literals: logged axioms are the raw
        // input clauses, which may repeat a literal.
        if (v == 0 && l != unit) {
          ++unassigned;
          unit = l;
          if (unassigned > 1) break;
        }
      }
      if (satisfied || unassigned > 1) continue;
      if (unassigned == 0) return true;  // fully falsified clause
      assign_true(unit);
      changed = true;
    }
  }
  return false;
}

bool DratChecker::rup(const IntClause& clause) {
  reset_assignment();
  for (int l : clause) {
    if (val(l) > 0) return true;  // negation self-contradicts: tautology
    assign_true(-l);
  }
  return propagate_to_conflict();
}

bool DratChecker::rat(const IntClause& clause) {
  if (clause.empty()) return false;
  const int pivot = clause[0];
  // Snapshot indices first: rup() below never mutates the clause list, but
  // iterate by index anyway so the logic survives future reordering.
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (!clauses_[i].active) continue;
    const IntClause& other = clauses_[i].lits;
    if (std::find(other.begin(), other.end(), -pivot) == other.end()) continue;
    IntClause resolvent;
    resolvent.reserve(clause.size() + other.size() - 2);
    for (int l : clause) {
      if (l != pivot) resolvent.push_back(l);
    }
    bool tautology = false;
    for (int l : other) {
      if (l == -pivot) continue;
      if (std::find(resolvent.begin(), resolvent.end(), -l) != resolvent.end()) {
        tautology = true;
        break;
      }
      resolvent.push_back(l);
    }
    if (tautology) continue;
    if (!rup(resolvent)) return false;
  }
  return true;
}

DratChecker::Result DratChecker::check(const std::vector<ProofOp>& proof) {
  Result res;
  for (const ProofOp& op : proof) {
    ++res.ops_checked;
    if (op.kind == ProofOp::Kind::Delete) {
      // The solver's stored clause may differ from any logged axiom after
      // level-0 simplification; an unmatched deletion is harmless (keeping
      // a clause only adds propagation power) and is counted, not failed.
      if (!erase(op.lits)) ++res.ignored_deletions;
      continue;
    }
    if (!rup(op.lits) && !(check_rat_ && rat(op.lits))) {
      std::string text;
      for (int l : op.lits) text += std::to_string(l) + ' ';
      res.error = "addition " + std::to_string(res.ops_checked) +
                  " is neither RUP nor RAT: " + text + "0";
      return res;
    }
    if (op.lits.empty()) {
      res.valid = true;
      res.proved_unsat = true;
      return res;  // anything after a verified empty clause is irrelevant
    }
    store(op.lits);
  }
  res.valid = true;
  return res;
}

}  // namespace tp::sat
