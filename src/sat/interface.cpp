#include "sat/interface.hpp"

#include <memory>

#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace tp::sat {

SolverInterface::~SolverInterface() = default;

Status SolverInterface::solve_assuming(const std::vector<Lit>& assumptions,
                                       const SolveLimits& limits) {
  for (Lit l : assumptions) assume(l);
  return solve(limits);
}

const char* to_string(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::Single:
      return "single";
    case SolverBackend::Portfolio:
      return "portfolio";
  }
  return "?";
}

std::unique_ptr<SolverInterface> SolverFactory::make(const SolverOptions& base) {
  return std::make_unique<Solver>(base);
}

std::unique_ptr<SolverInterface> SolverFactory::make(
    SolverBackend backend, const SolverOptions& base,
    const PortfolioOptions& portfolio) {
  switch (backend) {
    case SolverBackend::Single:
      return std::make_unique<Solver>(base);
    case SolverBackend::Portfolio:
      return std::make_unique<PortfolioSolver>(base, portfolio);
  }
  return nullptr;
}

}  // namespace tp::sat
