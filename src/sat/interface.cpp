#include "sat/interface.hpp"

#include <memory>

#include "sat/portfolio.hpp"
#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

namespace tp::sat {

SolverInterface::~SolverInterface() = default;

void SolverInterface::freeze(Var) {}

void SolverInterface::prepare() {}

bool SolverInterface::inprocess() { return simplify(); }

std::size_t SolverInterface::retained_bytes() const {
  // Coarse default for backends without byte-accurate storage accounting:
  // header + an average handful of literals per clause.
  return (num_clauses() + num_learnts()) * 40;
}

bool SolverInterface::var_eliminated(Var) const { return false; }

Status SolverInterface::solve_assuming(const std::vector<Lit>& assumptions,
                                       const SolveLimits& limits) {
  for (Lit l : assumptions) assume(l);
  return solve(limits);
}

const char* to_string(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::Single:
      return "single";
    case SolverBackend::Portfolio:
      return "portfolio";
  }
  return "?";
}

std::unique_ptr<SolverInterface> SolverFactory::make(const SolverOptions& base) {
  return make(SolverBackend::Single, base);
}

std::unique_ptr<SolverInterface> SolverFactory::make(
    SolverBackend backend, const SolverOptions& base,
    const PortfolioOptions& portfolio) {
  if (base.preprocess) {
    // The CNF front-end wraps whichever backend was requested; it builds
    // the inner backend lazily at the first solve, over the preprocessed
    // and densely renumbered formula (with preprocess cleared, so this
    // wrapping never recurses).
    return std::make_unique<PreprocessingSolver>(backend, base, portfolio);
  }
  switch (backend) {
    case SolverBackend::Single:
      return std::make_unique<Solver>(base);
    case SolverBackend::Portfolio:
      return std::make_unique<PortfolioSolver>(base, portfolio);
  }
  return nullptr;
}

}  // namespace tp::sat
