#pragma once
// remap.hpp — dense variable renumbering for the preprocessing front-end.
//
// After the Preprocessor (sat/preprocess.hpp) has fixed, eliminated, or
// dropped variables, the survivors are scattered across the original
// range: totalizer/Sinz auxiliaries killed by BVE and presolve leftovers
// leave gaps that inflate every per-variable array of the inner CDCL
// solver (watch tables, activity heap, phase store). VarRemapper owns the
// outer↔inner translation:
//
//  * Every outer variable has a fate — Mapped (survives under a dense
//    inner index), FixedTrue/FixedFalse (root-level unit), Eliminated
//    (removed by resolution; its defining clauses are stashed so a model
//    can be reconstructed), or Dropped (occurred nowhere; any value
//    works).
//  * translate_clause / translate_xor rewrite constraints added *after*
//    preprocessing into inner numbering, folding fixed variables away.
//    Mentioning an Eliminated/Dropped variable there throws — unless the
//    caller (PreprocessingSolver) first *restores* the variable through
//    restore()/map_var(), re-introducing it under a fresh inner index.
//    Restoration is what lets AllSAT blocking clauses mention eliminated
//    cycle variables after a warm template master was preprocessed with
//    only its assumption-bearing variables frozen.
//  * extend_model turns an inner model back into a full outer model,
//    replaying the eliminated-clause stashes in reverse elimination
//    order (the SatELite reconstruction rule: make the eliminated
//    literal true iff some stashed clause is otherwise unsatisfied).
//    Restored eliminations are skipped — their variables are Mapped
//    again and read straight from the inner model.
//
// The remapper is deliberately dumb — it holds no clause database and
// performs no reasoning beyond the stash replay, so PreprocessingSolver
// can clone it by plain copy.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace tp::sat {

class VarRemapper {
 public:
  enum class Fate : unsigned char {
    Mapped,      ///< survives; inner_of() is valid
    FixedTrue,   ///< root-level true before the inner solver existed
    FixedFalse,  ///< root-level false before the inner solver existed
    Eliminated,  ///< removed by bounded variable elimination
    Dropped,     ///< occurred in no constraint; model value is free
  };

  /// Outcome of translating one outer constraint into inner numbering.
  enum class ClauseFate : unsigned char {
    Keep,       ///< `out` holds the inner-numbered constraint
    Satisfied,  ///< satisfied by fixed variables; nothing to add
    Empty,      ///< falsified by fixed variables; formula is unsat
  };

  /// The witness of one bounded-variable elimination: every clause the
  /// variable occurred in at elimination time, split by phase. `clauses`
  /// (the designated replay phase, all containing `lit`) drives the
  /// SatELite model-extension rule; `others` (all containing ~lit) rides
  /// along so restore() can re-introduce the variable's full defining
  /// clause set later.
  struct Elimination {
    Lit lit;  ///< the literal whose clauses drive the model replay
    std::vector<std::vector<Lit>> clauses;  ///< clauses containing lit
    std::vector<std::vector<Lit>> others;   ///< clauses containing ~lit
    bool restored = false;  ///< variable re-introduced; replay skips it
  };

  explicit VarRemapper(int num_outer_vars = 0);

  // --- construction (driven by the Preprocessor) ---

  /// Grow the outer range; new variables start as Dropped.
  void ensure_outer(Var v);

  void set_fixed(Var v, bool value);

  /// Record an elimination: `lit` was resolved away, `stash` holds every
  /// clause that contained `lit` (in outer numbering, including `lit`
  /// itself) and `others` every clause that contained ~lit. Stashes are
  /// replayed LIFO by extend_model.
  void set_eliminated(Lit lit, std::vector<std::vector<Lit>> stash,
                      std::vector<std::vector<Lit>> others = {});

  /// Assign dense inner indices (in ascending outer order) to every
  /// outer variable still Dropped for which `keep` returns true; the
  /// rest stay Dropped. Returns the inner variable count.
  template <typename KeepFn>
  int assign_dense(KeepFn&& keep) {
    int next = 0;
    for (Var v = 0; v < static_cast<Var>(fate_.size()); ++v) {
      if (fate_[static_cast<std::size_t>(v)] != Fate::Dropped || !keep(v)) {
        continue;
      }
      fate_[static_cast<std::size_t>(v)] = Fate::Mapped;
      inner_[static_cast<std::size_t>(v)] = next++;
      outer_of_.push_back(v);
    }
    return next;
  }

  /// Register a fresh outer variable mapped to the given inner index
  /// post-preprocessing (the wrapper's new_var after the front-end ran;
  /// `inner` is whatever the inner backend's new_var returned — inner
  /// indices may skip ahead of the dense range when the backend created
  /// auxiliary variables of its own, e.g. XOR chunk links). Returns the
  /// new outer variable.
  Var add_mapped_var(Var inner);

  // --- restoration (late use of a removed variable) ---

  /// The witness stash of an Eliminated outer variable (precondition:
  /// fate(outer) == Eliminated).
  const Elimination& elimination(Var outer) const;

  /// Re-introduce an Eliminated outer variable under a fresh inner index:
  /// its fate flips back to Mapped and its stash entry is marked restored
  /// so extend_model reads the inner model instead of replaying clauses.
  /// The caller re-adds the witness clauses to the inner solver.
  void restore(Var outer, Var inner);

  /// Map a Dropped outer variable to a fresh inner index (a late clause —
  /// or a witness clause being restored — mentions a variable that
  /// occurred nowhere after preprocessing).
  void map_var(Var outer, Var inner);

  // --- queries ---

  int num_outer() const { return static_cast<int>(fate_.size()); }
  int num_inner() const { return static_cast<int>(outer_of_.size()); }
  Fate fate(Var outer) const { return fate_[static_cast<std::size_t>(outer)]; }
  bool is_mapped(Var outer) const { return fate(outer) == Fate::Mapped; }
  /// Fixed value of an outer variable, or Undef when not fixed here.
  LBool fixed_value(Var outer) const;

  /// Inner index of a Mapped outer variable (precondition: is_mapped).
  Var inner_of(Var outer) const {
    return inner_[static_cast<std::size_t>(outer)];
  }
  /// Outer variable of an inner index, or -1 for inner indices that have
  /// no outer counterpart (backend-internal auxiliaries).
  Var outer_of(Var inner) const {
    return outer_of_[static_cast<std::size_t>(inner)];
  }
  Lit inner_of(Lit outer) const {
    return Lit(inner_of(outer.var()), outer.negated());
  }
  Lit outer_lit_of(Lit inner) const {
    return Lit(outer_of(inner.var()), inner.negated());
  }

  /// Eliminated variables recorded so far (stash count).
  std::size_t num_eliminated() const { return elim_stack_.size(); }

  // --- translation ---

  /// Rewrite an outer clause into inner numbering. Throws
  /// std::logic_error if a literal's variable is Eliminated or Dropped —
  /// the caller violated the freeze() contract.
  ClauseFate translate_clause(const std::vector<Lit>& outer,
                              std::vector<Lit>* out) const;

  /// Rewrite an outer XOR into inner numbering, folding fixed variables
  /// into the rhs. Same Eliminated/Dropped policy as translate_clause.
  /// ClauseFate::Empty means "0 = 1": unsatisfiable. Satisfied means the
  /// constraint degenerated to "0 = 0".
  ClauseFate translate_xor(const std::vector<Var>& outer_vars, bool rhs,
                           std::vector<Var>* out_vars, bool* out_rhs) const;

  /// Build the full outer model from an inner model (any callable
  /// Var -> LBool over inner indices). Fixed variables take their fixed
  /// value, Dropped variables default to false, Eliminated variables are
  /// reconstructed from the stashes in reverse elimination order.
  template <typename InnerModelFn>
  std::vector<LBool> extend_model(InnerModelFn&& inner_model) const {
    std::vector<LBool> m(fate_.size(), LBool::Undef);
    for (Var v = 0; v < static_cast<Var>(fate_.size()); ++v) {
      const auto i = static_cast<std::size_t>(v);
      switch (fate_[i]) {
        case Fate::Mapped:
          m[i] = inner_model(inner_[i]);
          break;
        case Fate::FixedTrue:
          m[i] = LBool::True;
          break;
        case Fate::FixedFalse:
          m[i] = LBool::False;
          break;
        case Fate::Eliminated:
          break;  // filled by the stash replay below
        case Fate::Dropped:
          m[i] = LBool::False;
          break;
      }
    }
    replay_stashes(m);
    return m;
  }

 private:
  void replay_stashes(std::vector<LBool>& model) const;
  void bind_inner(Var outer, Var inner);

  std::vector<Fate> fate_;
  std::vector<Var> inner_;     ///< valid where fate_ == Mapped
  std::vector<Var> outer_of_;  ///< inner index -> outer variable (or -1)
  std::vector<Elimination> elim_stack_;  ///< in elimination order
  /// Outer variable -> index into elim_stack_, or -1 (parallel to fate_).
  std::vector<std::int32_t> elim_slot_;
};

}  // namespace tp::sat
