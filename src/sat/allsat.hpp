#pragma once
// allsat.hpp — AllSAT model enumeration over a projection.
//
// The reconstruction problem asks for *all* signals that abstract to a log
// entry (paper §4.2, "Find all signals S with α̃(S) = (TP, k)"). We
// enumerate models of the SAT encoding projected onto the m signal
// variables: after each model, a blocking clause over the projection
// excludes it and the solver runs again, until UNSAT (enumeration
// complete) or a limit is reached. Auxiliary variables (cardinality
// registers, Tseitin variables) are not part of the projection, so each
// reconstructed signal is reported exactly once.
//
// Two refinements make the enumeration solver-reuse friendly:
//
//  * *Guard literals* — with AllSatOptions::guard set, every blocking
//    clause is (~guard ∨ blocking...) and `guard` is assumed during the
//    run. The caller retires the run afterwards with
//    solver.add_clause({~guard}): all of its blocking clauses become
//    level-0 satisfied and the solver is reusable for the next query
//    (the incremental reconstruction engine's per-entry scoping). Runs
//    with assumptions but no explicit guard get an internal one, so an
//    assumption-restricted enumeration never leaks permanent blocking
//    clauses into later solves on the same solver.
//  * *Weight-aware blocking* — when the caller declares that every model
//    has the same projection Hamming weight (AllSatOptions::fixed_weight,
//    e.g. the |x| = k cardinality of a reconstruction query), the
//    blocking clause needs only the k true literals: any other
//    fixed-weight model must already clear one of them. Shorter clauses,
//    faster propagation.

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/interface.hpp"
#include "sat/types.hpp"

namespace tp::sat {

/// Limits for one enumeration run.
struct AllSatOptions {
  /// Stop after this many models (the paper's c-SAT.1 / c-SAT.10 columns
  /// use 1 and 10).
  std::uint64_t max_models = UINT64_MAX;
  /// Per-run resource limits (applied to the whole enumeration).
  SolveLimits limits;
  /// Enumerate only models consistent with these literals (fixed for every
  /// solve of the run, not encoded as clauses). This is the cube of a
  /// cube-and-conquer split: disjoint cubes partition the model space, so
  /// per-cube enumerations can run in parallel and merge without
  /// deduplication.
  std::vector<Lit> assumptions;
  /// Entry-scoping guard (see file comment). When not lit_undef, the
  /// literal is assumed for every solve of the run and ~guard is prepended
  /// to every blocking clause. The *caller* owns retirement: adding the
  /// unit clause {~guard} permanently satisfies the run's blocking clauses
  /// without poisoning later queries. When left lit_undef but `assumptions`
  /// is non-empty, the run creates and retires an internal guard itself.
  Lit guard = lit_undef;
  /// Declared projection Hamming weight: every model of the current
  /// constraints has exactly this many true projection variables (the
  /// caller's promise — e.g. an encoded |x| = k constraint). Blocking
  /// clauses then contain only the true literals' negations.
  std::optional<std::size_t> fixed_weight;
  /// Event tracer, or null for no tracing. When attached, the run emits
  /// one "allsat.enumerate" span plus one "allsat.model" event per model
  /// (with its index and seconds-to-model latency). Independent of the
  /// solver's own tracer — usually both point at the same obs::Tracer.
  obs::Tracer* tracer = nullptr;

  /// Adopt the shared solver knobs of a sat::SolverConfig (today that is
  /// the tracer; the engines call this instead of hand-copying fields from
  /// ReconstructionOptions / SolverOptions, which both inherit the
  /// config). Returns *this for chaining.
  AllSatOptions& with_config(const SolverConfig& config) {
    tracer = config.tracer;
    return *this;
  }
};

/// Result of an enumeration run.
struct AllSatResult {
  /// Each entry is one model restricted to the projection variables, in
  /// the order the projection was given.
  std::vector<std::vector<bool>> models;
  /// Unsat => the enumeration is complete (all models found). Sat => the
  /// model cap was reached with more models possibly remaining. Unknown =>
  /// a resource limit was hit.
  Status final_status = Status::Unknown;
  /// Seconds until the i-th model was found (same indexing as `models`).
  std::vector<double> seconds_to_model;
  /// Total wall-clock seconds of the enumeration.
  double seconds_total = 0.0;

  /// True iff every model was found.
  bool complete() const { return final_status == Status::Unsat; }
};

/// Enumerate models of `solver` projected onto `projection`. The solver is
/// left in a usable state, so callers can continue adding constraints
/// afterwards. Without a guard and without assumptions the blocking
/// clauses stay in force (later solves see the enumerated models
/// excluded); guarded runs — explicit or internal — leave no lasting
/// constraints once their guard is retired. Works against any
/// SolverInterface backend — single solver or portfolio.
AllSatResult enumerate_models(SolverInterface& solver,
                              const std::vector<Var>& projection,
                              const AllSatOptions& options = {});

}  // namespace tp::sat
