#include "sat/portfolio.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace tp::sat {

namespace {

/// Retire period for the shared-clause dedup set: past this many distinct
/// clauses the set is cleared (a re-share after that is harmless).
constexpr std::size_t kSharedHashCap = 1u << 16;

/// The k-th diversified variant of `base` (k = 0 is the first *variant*;
/// the portfolio's member 0 runs `base` itself). Variants never carry the
/// proof sink, so they are free to enable the Gaussian engine even when
/// the base could not.
SolverOptions diversify(const SolverOptions& base, std::size_t k,
                        PortfolioDiversity diversity) {
  SolverOptions o = base;
  o.proof = nullptr;

  auto gauss_variant = [&o, &base](std::size_t g) {
    switch (g % 4) {
      case 0:  // the opposite XOR engine of the base
        o.use_gauss = !base.use_gauss;
        o.gauss_max_unassigned = 0;
        break;
      case 1:  // Gauss with the endgame gate wide open
        o.use_gauss = true;
        o.gauss_max_unassigned = SIZE_MAX;
        break;
      case 2:  // watched XOR, short chunks (cheap reasons)
        o.use_gauss = false;
        o.xor_chunk_size = 6;
        break;
      case 3:  // watched XOR, long chunks (fewer link variables)
        o.use_gauss = false;
        o.xor_chunk_size = 14;
        break;
    }
  };
  auto heuristic_variant = [&o, &base](std::size_t h) {
    switch (h % 4) {
      case 0:  // hot: rapid restarts, fast-decaying activities
        o.restart_base = std::max(25, base.restart_base / 4);
        o.var_decay = 0.90;
        break;
      case 1:  // stable: long runs between restarts, slow decay
        o.restart_base = base.restart_base * 4;
        o.var_decay = 0.99;
        break;
      case 2:  // inverted default phase
        o.default_polarity = !base.default_polarity;
        break;
      case 3:  // no phase memory, medium-hot restarts
        o.phase_saving = !base.phase_saving;
        o.restart_base = std::max(25, base.restart_base / 2);
        break;
    }
  };

  switch (diversity) {
    case PortfolioDiversity::GaussSplit:
      gauss_variant(k);
      break;
    case PortfolioDiversity::Heuristics:
      heuristic_variant(k);
      break;
    case PortfolioDiversity::Mixed:
      if (k % 2 == 0) {
        gauss_variant(k / 2);
      } else {
        heuristic_variant(k / 2);
      }
      break;
  }
  return o;
}

/// Order-independent clause fingerprint for the share dedup set.
std::uint64_t clause_hash(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (Lit l : lits) {
    h ^= static_cast<std::uint64_t>(l.code()) + 1;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PortfolioSolver::PortfolioSolver(const SolverOptions& base,
                                 const PortfolioOptions& portfolio)
    : base_(base), popts_(portfolio) {
  popts_.members = std::max<std::size_t>(1, popts_.members);
  proof_member_ = base.proof != nullptr ? 0 : -1;

  members_.reserve(popts_.members);
  for (std::size_t i = 0; i < popts_.members; ++i) {
    Member m;
    m.opts = i == 0 ? base : diversify(base, i - 1, popts_.diversity);
    m.solver = std::make_unique<Solver>(m.opts);
    members_.push_back(std::move(m));
  }

  stats_.wins.assign(members_.size(), 0);
  win_counters_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    win_counters_.push_back(&obs::MetricsRegistry::global().counter(
        "portfolio.wins.member" + std::to_string(i)));
  }
}

PortfolioSolver::PortfolioSolver(const PortfolioSolver& other)
    : base_(other.base_),
      popts_(other.popts_),
      proof_member_(-1),  // a ProofSink certifies exactly one instance
      ext_vars_(other.ext_vars_),
      win_counters_(other.win_counters_) {
  base_.proof = nullptr;
  members_.reserve(other.members_.size());
  for (const Member& m : other.members_) {
    Member c;
    c.solver = m.solver->clone_solver();  // detaches the proof by contract
    c.opts = m.opts;
    c.opts.proof = nullptr;
    c.ext2int = m.ext2int;
    c.int2ext = m.int2ext;
    members_.push_back(std::move(c));
  }
  stats_.wins.assign(members_.size(), 0);
}

PortfolioSolver::~PortfolioSolver() = default;

util::ThreadPool& PortfolioSolver::pool() {
  if (!pool_) {
    const std::size_t threads =
        popts_.num_threads != 0 ? popts_.num_threads : members_.size();
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  return *pool_;
}

const SolverOptions& PortfolioSolver::member_options(std::size_t i) const {
  return members_[i].opts;
}

Var PortfolioSolver::new_var() {
  const Var ext = ext_vars_++;
  for (Member& m : members_) {
    const Var iv = m.solver->new_var();
    // Catch up over any private auxiliaries the member minted since the
    // last external variable (XOR chunk links).
    m.int2ext.resize(static_cast<std::size_t>(iv) + 1, -1);
    m.int2ext[static_cast<std::size_t>(iv)] = ext;
    m.ext2int.push_back(iv);
  }
  return ext;
}

bool PortfolioSolver::add_clause(std::vector<Lit> lits) {
  bool ok = true;
  for (Member& m : members_) {
    std::vector<Lit> mapped;
    mapped.reserve(lits.size());
    for (Lit l : lits) mapped.push_back(to_member(m, l));
    ok = m.solver->add_clause(std::move(mapped)) && ok;
  }
  return ok;
}

bool PortfolioSolver::add_xor(std::vector<Var> vars, bool rhs) {
  bool ok = true;
  for (Member& m : members_) {
    std::vector<Var> mapped;
    mapped.reserve(vars.size());
    for (Var v : vars) {
      mapped.push_back(m.ext2int[static_cast<std::size_t>(v)]);
    }
    ok = m.solver->add_xor(std::move(mapped), rhs) && ok;
  }
  return ok;
}

Status PortfolioSolver::solve(const SolveLimits& limits) {
  static obs::Counter& races_m =
      obs::MetricsRegistry::global().counter("portfolio.races");
  static obs::Counter& sat_m =
      obs::MetricsRegistry::global().counter("portfolio.sat");
  static obs::Counter& unsat_m =
      obs::MetricsRegistry::global().counter("portfolio.unsat");
  static obs::Counter& unknown_m =
      obs::MetricsRegistry::global().counter("portfolio.unknown");
  static obs::Counter& cancelled_m =
      obs::MetricsRegistry::global().counter("portfolio.cancelled_members");

  std::vector<Lit> assumed;
  assumed.swap(pending_);
  winner_ = -1;
  failed_.clear();

  // An already-set caller token means "don't start": a fast member could
  // otherwise settle the race before the coordinator's relay loop ever
  // observes the token, making pre-cancelled solves nondeterministic.
  if (limits.interrupt != nullptr &&
      limits.interrupt->load(std::memory_order_relaxed)) {
    unknown_m.add(1);
    return Status::Unknown;
  }

  // A member that already knows the formula unsatisfiable settles the race
  // before it starts. In proof mode only the sink's owner may report it —
  // anyone else's early detection is real but uncertified, and member 0
  // will derive the same verdict through its own (logged) propagation.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].solver->okay()) continue;
    if (proof_member_ >= 0 && static_cast<int>(i) != proof_member_) continue;
    winner_ = static_cast<int>(i);
    unsat_m.add(1);
    return Status::Unsat;
  }

  const std::size_t n = members_.size();
  if (n == 1) {
    // Degenerate portfolio: solve inline, no threads.
    Member& m = members_[0];
    std::vector<Lit> as;
    as.reserve(assumed.size());
    for (Lit l : assumed) as.push_back(to_member(m, l));
    const Status st = m.solver->solve_assuming(as, limits);
    if (st != Status::Unknown) {
      winner_ = 0;
      ++stats_.wins[0];
      win_counters_[0]->add(1);
    }
    if (st == Status::Unsat) {
      for (Lit l : m.solver->final_conflict()) {
        const Var ev = int_to_ext(m, l.var());
        assert(ev >= 0 && "failed assumption maps to an external variable");
        failed_.push_back(Lit(ev, l.negated()));
      }
    }
    (st == Status::Sat ? sat_m : st == Status::Unsat ? unsat_m : unknown_m)
        .add(1);
    return st;
  }

  ++stats_.races;
  races_m.add(1);
  race_stop_.store(false, std::memory_order_relaxed);

  std::vector<Status> results(n, Status::Unknown);
  util::Mutex mtx{util::LockRank::kPortfolio};
  util::CondVar cv;
  std::size_t done = 0;
  int first = -1;               // winning member, first usable verdict
  int uncertified_unsat = -1;   // proofless Unsat while a sink is attached

  util::ThreadPool& tp = pool();
  for (std::size_t i = 0; i < n; ++i) {
    tp.submit([this, i, &assumed, &results, &mtx, &cv, &done, &first,
               &uncertified_unsat, limits] {
      Member& m = members_[i];
      std::vector<Lit> as;
      as.reserve(assumed.size());
      for (Lit l : assumed) as.push_back(to_member(m, l));
      SolveLimits member_limits = limits;
      member_limits.interrupt = &race_stop_;
      const Status st = m.solver->solve_assuming(as, member_limits);
      {
        util::MutexLock lock(mtx);
        results[i] = st;
        ++done;
        if (st != Status::Unknown) {
          // In proof mode an Unsat is only usable from the sink's owner;
          // a Sat is usable from anyone (models are verified
          // solver-independently).
          const bool usable = proof_member_ < 0 ||
                              static_cast<int>(i) == proof_member_ ||
                              st == Status::Sat;
          if (usable) {
            if (first < 0) {
              first = static_cast<int>(i);
              race_stop_.store(true, std::memory_order_relaxed);
            }
          } else if (uncertified_unsat < 0) {
            uncertified_unsat = static_cast<int>(i);
          }
        }
        // Notify while still holding mtx: the coordinator destroys cv and
        // mtx (stack locals of solve()) as soon as it observes done == n,
        // which it can only do after this worker releases the lock — so
        // an unlocked notify here would race the destruction (TSan-caught
        // use-after-free when the coordinator wakes by timeout instead of
        // by this notification).
        cv.notify_all();
      }
    });
  }

  {
    // Join the race, relaying the caller's interrupt token into it: the
    // members only watch race_stop_, so an external cancellation must be
    // copied over by this coordinating thread.
    util::MutexLock lock(mtx);
    while (done < n) {
      cv.wait_for(mtx, std::chrono::milliseconds(2));
      if (limits.interrupt != nullptr &&
          limits.interrupt->load(std::memory_order_relaxed)) {
        race_stop_.store(true, std::memory_order_relaxed);
      }
    }
  }

  Status st = Status::Unknown;
  if (first >= 0) {
    winner_ = first;
    st = results[static_cast<std::size_t>(first)];
    ++stats_.wins[static_cast<std::size_t>(first)];
    win_counters_[static_cast<std::size_t>(first)]->add(1);
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) != first && results[i] == Status::Unknown) {
        ++stats_.cancelled_members;
        cancelled_m.add(1);
      }
    }
    if (st == Status::Unsat) {
      const Member& w = members_[static_cast<std::size_t>(first)];
      for (Lit l : w.solver->final_conflict()) {
        const Var ev = int_to_ext(w, l.var());
        assert(ev >= 0 && "failed assumption maps to an external variable");
        failed_.push_back(Lit(ev, l.negated()));
      }
    }
    share_clauses(static_cast<std::size_t>(first));
  } else if (uncertified_unsat >= 0) {
    // A proofless member derived Unsat but the sink's owner ran out of
    // budget first. Withhold the verdict — Unknown is always legal under
    // limits — so every *reported* UNSAT stays DRAT-checkable. (Without
    // limits this branch is unreachable: member 0 always concludes.)
    st = Status::Unknown;
  }

  switch (st) {
    case Status::Sat:
      ++stats_.sat_races;
      sat_m.add(1);
      break;
    case Status::Unsat:
      ++stats_.unsat_races;
      unsat_m.add(1);
      break;
    case Status::Unknown:
      ++stats_.unknown_races;
      unknown_m.add(1);
      break;
  }
  return st;
}

void PortfolioSolver::share_clauses(std::size_t winner) {
  static obs::Counter& exported_m =
      obs::MetricsRegistry::global().counter("portfolio.clauses_exported");
  static obs::Counter& imported_m =
      obs::MetricsRegistry::global().counter("portfolio.clauses_imported");

  // Proof mode shares nothing: a foreign clause is not RUP in any member's
  // own derivation stream.
  if (popts_.share_max_clauses == 0 || proof_member_ >= 0 ||
      members_.size() < 2) {
    return;
  }

  std::vector<std::pair<std::vector<Lit>, std::uint32_t>> exported;
  members_[winner].solver->export_learnts(popts_.share_max_lbd,
                                          popts_.share_max_clauses, exported);
  const Member& w = members_[winner];
  for (auto& [lits, lbd] : exported) {
    std::vector<Lit> ext;
    ext.reserve(lits.size());
    bool mappable = true;
    for (Lit l : lits) {
      const Var ev = int_to_ext(w, l.var());
      if (ev < 0) {  // touches a member-private chunk link: untranslatable
        mappable = false;
        break;
      }
      ext.push_back(Lit(ev, l.negated()));
    }
    if (!mappable) continue;
    if (!shared_hashes_.insert(clause_hash(ext)).second) continue;

    ++stats_.clauses_exported;
    exported_m.add(1);
    for (std::size_t j = 0; j < members_.size(); ++j) {
      if (j == winner) continue;
      Member& m = members_[j];
      std::vector<Lit> mapped;
      mapped.reserve(ext.size());
      for (Lit l : ext) mapped.push_back(to_member(m, l));
      m.solver->import_learnt(std::move(mapped), lbd);
      ++stats_.clauses_imported;
      imported_m.add(1);
    }
  }
  if (shared_hashes_.size() > kSharedHashCap) shared_hashes_.clear();
}

LBool PortfolioSolver::model(Var v) const {
  assert(winner_ >= 0 && "model() requires a preceding Sat verdict");
  const Member& m = members_[static_cast<std::size_t>(winner_)];
  return m.solver->model_value(m.ext2int[static_cast<std::size_t>(v)]);
}

bool PortfolioSolver::okay() const {
  for (const Member& m : members_) {
    if (!m.solver->okay()) return false;
  }
  return true;
}

LBool PortfolioSolver::fixed_value(Var v) const {
  const Member& m = members_.front();
  return m.solver->fixed_value(m.ext2int[static_cast<std::size_t>(v)]);
}

bool PortfolioSolver::simplify() {
  for (Member& m : members_) m.solver->simplify();
  return okay();
}

SolverStats PortfolioSolver::stats() const {
  SolverStats total;
  for (const Member& m : members_) total += m.solver->stats();
  return total;
}

std::size_t PortfolioSolver::num_clauses() const {
  return members_.front().solver->num_clauses();
}

std::size_t PortfolioSolver::num_xors() const {
  return members_.front().solver->num_xors();
}

std::size_t PortfolioSolver::num_learnts() const {
  return members_.front().solver->num_learnts();
}

void PortfolioSolver::set_tracer(obs::Tracer* tracer) {
  base_.tracer = tracer;
  for (Member& m : members_) {
    m.opts.tracer = tracer;
    m.solver->set_tracer(tracer);
  }
}

std::unique_ptr<SolverInterface> PortfolioSolver::clone() const {
  return std::unique_ptr<SolverInterface>(new PortfolioSolver(*this));
}

}  // namespace tp::sat
