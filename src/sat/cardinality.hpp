#pragma once
// cardinality.hpp — CNF encodings of cardinality constraints.
//
// The reconstruction query needs "exactly k of the m signal variables are
// true" (paper §4.2). A naive encoding needs C(m, k+1) + C(m, m-k+1)
// clauses; the paper instead uses Sinz's sequential-counter encoding [20],
// which introduces O(m·k) auxiliary variables and clauses. We implement
// that, plus Bailleux–Boufkhad's totalizer as an ablation alternative.

#include <vector>

#include "sat/interface.hpp"
#include "sat/types.hpp"

namespace tp::sat {

/// Which CNF cardinality encoding to emit.
enum class CardEncoding {
  SequentialCounter,  ///< Sinz 2005 (the paper's choice, O(m·k))
  Totalizer,          ///< Bailleux–Boufkhad 2003 (O(m·k·log m), better arc-consistency)
};

/// Constrain at most k of `lits` to be true. Returns false iff the solver
/// became unsatisfiable while adding the clauses.
bool encode_at_most(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                    CardEncoding enc = CardEncoding::SequentialCounter);

/// Constrain at least k of `lits` to be true.
bool encode_at_least(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                     CardEncoding enc = CardEncoding::SequentialCounter);

/// Constrain exactly k of `lits` to be true.
bool encode_exactly(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                    CardEncoding enc = CardEncoding::SequentialCounter);

/// Build a totalizer over `lits` and return its unary output literals
/// o[0..cap-1], where o[j] is true iff at least j+1 of the inputs are true
/// (both implication directions are encoded). `cap` bounds the number of
/// outputs built; counts above cap saturate into o[cap-1].
std::vector<Lit> totalizer_outputs(SolverInterface& solver, const std::vector<Lit>& lits,
                                   int cap);

}  // namespace tp::sat
