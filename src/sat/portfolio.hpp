#pragma once
// portfolio.hpp — a racing solver portfolio behind SolverInterface.
//
// Hard SR entries are hard for *one* configuration: the Gauss engine wins
// on dense XOR systems, watched-XOR chunking wins on sparse ones, and
// restart/branching temperament decides how fast a preimage with few
// models is exhausted. Nobody knows which member wins before the race —
// the classic portfolio observation (ManySAT, Plingeling). PortfolioSolver
// keeps N diversified sat::Solver members in lockstep on the same formula
// and races them per solve() on a private util::ThreadPool:
//
//  * *Lockstep building.* new_var/add_clause/add_xor forward to every
//    member. Members may create private auxiliary variables (XOR chunk
//    links, and their count differs per configuration!), so the portfolio
//    keeps per-member external<->internal variable maps and translates
//    every literal crossing the boundary.
//  * *First-wins cancellation.* Each member solves under the caller's
//    limits plus a shared interrupt token; the first decisive (Sat/Unsat)
//    member stops the rest via SolveLimits::interrupt — cooperative, so
//    losers unwind at their next conflict/decision and stay reusable. The
//    caller's own interrupt token is relayed into the race by the
//    coordinating thread.
//  * *Learnt-clause sharing.* After each race the winner exports its
//    freshest learnt clauses with LBD <= share_max_lbd through the clause
//    arena; losers import the ones whose literals all map back to
//    external variables. Learnt clauses are implied by the formula, so
//    sharing preserves soundness and model sets.
//  * *Certifiable verdicts.* In proof mode the ProofSink is owned by
//    member 0 alone, sharing is disabled, and an Unsat verdict is only
//    reported once member 0 itself derives it — so every reported UNSAT
//    has one complete, checkable DRAT stream. Sat verdicts may come from
//    any member (models are checked solver-independently by
//    timeprint::verify).
//
// Thread-safety matches the SolverInterface contract: one instance is
// driven by one thread; the internal races never outlive solve().

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sat/interface.hpp"
#include "sat/solver.hpp"

namespace tp::util {
class ThreadPool;
}

namespace tp::obs {
class Counter;
}

namespace tp::sat {

/// SolverInterface backend racing N diversified CDCL members. See file
/// comment.
class PortfolioSolver : public SolverInterface {
 public:
  /// Build `portfolio.members` members: member 0 runs `base` unchanged
  /// (so a 1-member portfolio solves exactly like the single backend),
  /// the rest run diversified variants per `portfolio.diversity` with the
  /// proof sink stripped. The thread pool is created lazily on the first
  /// solve(), so encode-only instances and never-raced clones cost no
  /// threads.
  PortfolioSolver(const SolverOptions& base, const PortfolioOptions& portfolio);
  ~PortfolioSolver() override;

  Var new_var() override;
  int num_vars() const override { return ext_vars_; }
  bool add_clause(std::vector<Lit> lits) override;
  bool add_xor(std::vector<Var> vars, bool rhs) override;

  void assume(Lit l) override { pending_.push_back(l); }
  Status solve(const SolveLimits& limits = {}) override;
  LBool model(Var v) const override;
  const std::vector<Lit>& failed() const override { return failed_; }
  bool okay() const override;
  LBool fixed_value(Var v) const override;
  bool simplify() override;

  SolverStats stats() const override;
  std::size_t num_clauses() const override;
  std::size_t num_xors() const override;
  std::size_t num_learnts() const override;

  void set_tracer(obs::Tracer* tracer) override;
  std::unique_ptr<SolverInterface> clone() const override;

  /// Lifetime counters of this portfolio instance (also exported through
  /// obs::MetricsRegistry as portfolio.races / portfolio.cancelled_members
  /// / portfolio.clauses_{exported,imported} / portfolio.wins.member<i>).
  struct Stats {
    std::int64_t races = 0;          ///< solve() calls that actually raced
    std::int64_t sat_races = 0;
    std::int64_t unsat_races = 0;
    std::int64_t unknown_races = 0;
    /// Losing members interrupted by a first-wins cancellation.
    std::int64_t cancelled_members = 0;
    std::int64_t clauses_exported = 0;
    std::int64_t clauses_imported = 0;
    /// Races won per member (index = member).
    std::vector<std::int64_t> wins;
  };
  const Stats& portfolio_stats() const { return stats_; }

  /// Number of racing members.
  std::size_t members() const { return members_.size(); }

  /// The effective options of one member (diagnostics and tests).
  const SolverOptions& member_options(std::size_t i) const;

 private:
  struct Member {
    std::unique_ptr<Solver> solver;
    SolverOptions opts;
    /// external var -> this member's var (always defined).
    std::vector<Var> ext2int;
    /// this member's var -> external var, or -1 for a member-private
    /// auxiliary (XOR chunk link).
    std::vector<Var> int2ext;
  };

  PortfolioSolver(const PortfolioSolver& other);

  Lit to_member(const Member& m, Lit l) const {
    return Lit(m.ext2int[static_cast<std::size_t>(l.var())], l.negated());
  }

  /// Member var -> external var, or -1 for a member-private auxiliary
  /// (including ones the int2ext map has not been stretched over yet).
  Var int_to_ext(const Member& m, Var v) const {
    const auto idx = static_cast<std::size_t>(v);
    return idx < m.int2ext.size() ? m.int2ext[idx] : -1;
  }

  void share_clauses(std::size_t winner);
  util::ThreadPool& pool();

  SolverOptions base_;
  PortfolioOptions popts_;
  std::vector<Member> members_;
  int proof_member_ = -1;  ///< sole owner of the DRAT sink, or -1
  int ext_vars_ = 0;
  int winner_ = -1;        ///< decisive member of the last race, or -1

  std::vector<Lit> pending_;  ///< assume() queue (external literals)
  std::vector<Lit> failed_;   ///< last race's failed assumptions (external)

  std::atomic<bool> race_stop_{false};
  std::unique_ptr<util::ThreadPool> pool_;

  /// Hashes of already-shared clauses (collision = clause not shared
  /// again, which is harmless), capped to bound memory on long streams.
  std::unordered_set<std::uint64_t> shared_hashes_;

  Stats stats_;
  std::vector<obs::Counter*> win_counters_;  ///< portfolio.wins.member<i>
};

}  // namespace tp::sat
