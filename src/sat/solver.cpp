#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sat/audit.hpp"
#include "sat/drat.hpp"

namespace tp::sat {

namespace {
using Clock = std::chrono::steady_clock;
}

double luby(double y, int i) {
  // Find the finite subsequence that contains index i and the size of that
  // subsequence (standard MiniSat implementation).
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

SolverStats& SolverStats::operator+=(const SolverStats& o) {
  conflicts += o.conflicts;
  decisions += o.decisions;
  propagations += o.propagations;
  xor_propagations += o.xor_propagations;
  restarts += o.restarts;
  learnt_clauses += o.learnt_clauses;
  removed_clauses += o.removed_clauses;
  minimized_literals += o.minimized_literals;
  gauss_runs += o.gauss_runs;
  vivified_literals += o.vivified_literals;
  subsumed_clauses += o.subsumed_clauses;
  arena_gc_runs += o.arena_gc_runs;
  arena_bytes_reclaimed += o.arena_bytes_reclaimed;
  inprocess_rounds += o.inprocess_rounds;
  solve_seconds += o.solve_seconds;
  return *this;
}

// ---------------------------------------------------------------- heap ----

void Solver::VarOrderHeap::insert(Var v, const std::vector<double>& act) {
  if (contains(v)) return;
  positions_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1, act);
}

Var Solver::VarOrderHeap::pop(const std::vector<double>& act) {
  Var top = heap_.front();
  positions_[static_cast<std::size_t>(top)] = -1;
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    positions_[static_cast<std::size_t>(heap_.front())] = 0;
    sift_down(0, act);
  }
  return top;
}

void Solver::VarOrderHeap::increased(Var v, const std::vector<double>& act) {
  if (contains(v)) sift_up(static_cast<std::size_t>(positions_[static_cast<std::size_t>(v)]), act);
}

void Solver::VarOrderHeap::sift_up(std::size_t i, const std::vector<double>& act) {
  Var v = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (act[static_cast<std::size_t>(heap_[parent])] >= act[static_cast<std::size_t>(v)]) break;
    heap_[i] = heap_[parent];
    positions_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  positions_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::VarOrderHeap::sift_down(std::size_t i, const std::vector<double>& act) {
  Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        act[static_cast<std::size_t>(heap_[child + 1])] > act[static_cast<std::size_t>(heap_[child])]) {
      ++child;
    }
    if (act[static_cast<std::size_t>(heap_[child])] <= act[static_cast<std::size_t>(v)]) break;
    heap_[i] = heap_[child];
    positions_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  positions_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

// -------------------------------------------------------------- solver ----

Solver::Solver() : Solver(SolverOptions{}) {}

Solver::Solver(const SolverOptions& options) : opts_(options) {
  if (opts_.proof != nullptr && opts_.use_gauss) {
    // A Gaussian conflict/implication comes from a *combination* of rows,
    // which DRAT's clause-redundancy checks cannot express (the same
    // restriction CryptoMiniSat documents for its BIRD work).
    throw std::invalid_argument(
        "SolverOptions: proof logging is incompatible with use_gauss");
  }
  next_reduce_ = opts_.reduce_base;
#ifndef NDEBUG
  // Debug builds can force an auditor onto every solver in the process via
  // the environment — the sanitizer CI job runs the whole suite this way.
  audit_ = Auditor::debug_env();
#endif
}

Solver::~Solver() = default;

std::unique_ptr<Solver> Solver::clone_solver() const {
  assert(decision_level() == 0 && "clone() only between solve() calls");
  auto c = std::make_unique<Solver>(opts_);

  // A proof certifies one solver's derivation stream; interleaving a
  // clone's additions would corrupt it, so the copy starts unlogged (and
  // unaudited — attach a fresh auditor explicitly if wanted).
  c->opts_.proof = nullptr;
  c->proof_empty_done_ = false;

  c->ok_ = ok_;
  c->assigns_ = assigns_;
  c->lit_assigns_ = lit_assigns_;
  c->polarity_ = polarity_;
  c->activity_ = activity_;
  c->trail_ = trail_;
  c->trail_lim_ = trail_lim_;
  c->qhead_ = qhead_;
  c->order_ = order_;
  c->var_inc_ = var_inc_;
  c->cla_inc_ = cla_inc_;
  c->model_ = model_;
  c->seen_.assign(seen_.size(), 0);
  c->lbd_seen_.assign(lbd_seen_.size(), 0);
  c->next_reduce_ = next_reduce_;
  c->num_reduces_ = num_reduces_;
  c->vivify_head_ = vivify_head_;
  c->probe_head_ = probe_head_;

  // The clause store is position-addressed, so the whole database — arena
  // buffer, ref lists, watcher lists (same order, same blockers) and binary
  // implication lists — copies flat with every ClauseRef still valid.
  c->arena_ = arena_;
  c->clauses_ = clauses_;
  c->learnts_ = learnts_;
  c->watches_ = watches_;
  c->bin_watches_ = bin_watches_;
  c->num_bin_problem_ = num_bin_problem_;
  c->num_bin_learnt_ = num_bin_learnt_;

  // Only the XOR constraints hold heap identity: duplicate them and remap
  // their watch lists and reason pointers. Each constraint's circular
  // search_pos travels with it, so the clone's watch replacement scans
  // start exactly where the original's would.
  std::unordered_map<const XorConstraint*, XorConstraint*> xmap;
  c->xors_.reserve(xors_.size());
  for (const auto& x : xors_) {
    auto copy = std::make_unique<XorConstraint>(*x);
    xmap.emplace(x.get(), copy.get());
    c->xors_.push_back(std::move(copy));
  }
  c->xor_watch_.resize(xor_watch_.size());
  for (std::size_t i = 0; i < xor_watch_.size(); ++i) {
    c->xor_watch_[i].reserve(xor_watch_[i].size());
    for (XorConstraint* x : xor_watch_[i]) {
      c->xor_watch_[i].push_back(xmap.at(x));
    }
  }

  c->vardata_ = vardata_;
  for (VarData& vd : c->vardata_) {
    if (vd.reason.kind == Reason::Kind::Xor) vd.reason.xr = xmap.at(vd.reason.xr);
  }

  c->gauss_rows_ = gauss_rows_;
  c->gauss_raw_ = gauss_raw_;
  c->gauss_dirty_ = gauss_dirty_;
  c->gauss_cols_ = gauss_cols_;
  c->gauss_col_of_ = gauss_col_of_;
  c->gauss_reason_of_var_ = gauss_reason_of_var_;
  c->gauss_conflict_ = gauss_conflict_;

  return c;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  lit_assigns_.push_back(LBool::Undef);
  lit_assigns_.push_back(LBool::Undef);
  vardata_.push_back({});
  polarity_.push_back(opts_.default_polarity);
  activity_.push_back(0.0);
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  xor_watch_.emplace_back();
  gauss_reason_of_var_.emplace_back();
  order_.grow(assigns_.size());
  order_.insert(v, activity_);
  return v;
}

LBool Solver::fixed_value(Var v) const {
  if (assigns_[static_cast<std::size_t>(v)] != LBool::Undef &&
      vardata_[static_cast<std::size_t>(v)].level == 0) {
    return assigns_[static_cast<std::size_t>(v)];
  }
  return LBool::Undef;
}

// ------------------------------------------- portfolio clause sharing ----

std::size_t Solver::export_learnts(
    std::uint32_t max_lbd, std::size_t max_clauses,
    std::vector<std::pair<std::vector<Lit>, std::uint32_t>>& out) const {
  std::size_t appended = 0;
  // Newest first: the freshest learnts are the ones most relevant to the
  // query the race just finished.
  for (auto it = learnts_.rbegin();
       it != learnts_.rend() && appended < max_clauses; ++it) {
    const ClauseRef c = *it;
    if (arena_.lbd(c) > max_lbd) continue;
    std::vector<Lit> lits;
    const std::size_t n = arena_.size(c);
    lits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) lits.push_back(arena_.lit(c, i));
    out.emplace_back(std::move(lits), arena_.lbd(c));
    ++appended;
  }
  return appended;
}

bool Solver::import_learnt(std::vector<Lit> lits, std::uint32_t lbd) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  if (opts_.proof != nullptr) return ok_;  // foreign clause: not RUP here

  // Same level-0 canonicalization as add_clause, without the axiom log:
  // the clause is implied by the formula, not part of it.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    assert(l.var() < num_vars());
    if (value(l) == LBool::True || l == ~prev) return true;
    if (value(l) == LBool::False || l == prev) continue;
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], {});
    ok_ = propagate().none();
    return ok_;
  }
  if (out.size() == 2) {
    attach_binary(out[0], out[1], /*learnt=*/true);
    return true;
  }
  const ClauseRef c = arena_.alloc(out, /*learnt=*/true);
  arena_.set_lbd(c, std::max<std::uint32_t>(lbd, 2));
  // Start at the current activity scale so the import survives until it
  // has had a chance to prove itself in reduce_db().
  arena_.set_activity(c, static_cast<float>(cla_inc_));
  attach_clause(c);
  learnts_.push_back(c);
  return true;
}

// ----------------------------------------------------- proof emission ----

void Solver::proof_axiom(const std::vector<Lit>& lits) {
  if (opts_.proof != nullptr) opts_.proof->axiom(lits);
}

void Solver::proof_add(const std::vector<Lit>& lits) {
  if (opts_.proof != nullptr) opts_.proof->add(lits);
}

void Solver::proof_del(const std::vector<Lit>& lits) {
  if (opts_.proof != nullptr) opts_.proof->del(lits);
}

void Solver::proof_del_ref(ClauseRef c) {
  if (opts_.proof != nullptr) opts_.proof->del(arena_, c);
}

void Solver::proof_empty() {
  if (opts_.proof == nullptr || proof_empty_done_) return;
  proof_empty_done_ = true;
  opts_.proof->add({});
}

void Solver::proof_xor_axioms(const std::vector<Var>& vars, bool rhs) {
  // One axiom per parity-violating assignment: 2^(n-1) clauses forbidding
  // exactly the assignments whose parity differs from rhs. Arity is capped
  // by add_xor before this is reached.
  const std::size_t n = vars.size();
  std::vector<Lit> clause(n, lit_undef);
  for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << n); ++mask) {
    bool parity = false;
    for (std::size_t i = 0; i < n; ++i) parity ^= ((mask >> i) & 1) != 0;
    if (parity == rhs) continue;
    for (std::size_t i = 0; i < n; ++i) {
      clause[i] = Lit(vars[i], /*negated=*/((mask >> i) & 1) != 0);
    }
    opts_.proof->axiom(clause);
  }
}

// ------------------------------------------------------- constraints -----

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  proof_axiom(lits);

  // Level-0 simplification: drop false literals, detect satisfied clauses,
  // merge duplicates, detect tautologies.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    assert(l.var() < num_vars());
    if (value(l) == LBool::True || l == ~prev) return true;  // satisfied / tautology
    if (value(l) == LBool::False || l == prev) continue;     // false / duplicate
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    // Every literal of the logged axiom is false at level 0, so the empty
    // clause is derivable by unit propagation alone.
    ok_ = false;
    proof_empty();
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], {});
    ok_ = propagate().none();
    if (!ok_) proof_empty();
    return ok_;
  }
  if (out.size() == 2) {
    attach_binary(out[0], out[1], /*learnt=*/false);
    return true;
  }
  const ClauseRef c = arena_.alloc(out, /*learnt=*/false);
  attach_clause(c);
  clauses_.push_back(c);
  return true;
}

bool Solver::add_xor(std::vector<Var> vars, bool rhs) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Canonicalize: duplicated variables cancel pairwise; variables fixed at
  // level 0 fold into the parity.
  std::sort(vars.begin(), vars.end());
  std::vector<Var> out;
  for (std::size_t i = 0; i < vars.size();) {
    assert(vars[i] < num_vars());
    if (i + 1 < vars.size() && vars[i] == vars[i + 1]) {
      i += 2;  // x XOR x = 0
      continue;
    }
    const LBool fv = value(vars[i]);
    if (fv != LBool::Undef) {
      if (fv == LBool::True) rhs = !rhs;
    } else {
      out.push_back(vars[i]);
    }
    ++i;
  }

  if (out.empty()) {
    if (rhs) {
      // Degenerate fold: the constraint contradicts the level-0 fixings.
      // The contradiction lives in the *folded-away* literals, which the
      // proof's clausal axioms cannot see, so the empty clause is emitted
      // as an axiom (a documented trust boundary — covered by the
      // differential fuzz suites, not by the checker).
      proof_axiom({});
      ok_ = false;
      proof_empty();  // RUP against the axiom just logged
    }
    return ok_;
  }
  if (out.size() == 1) {
    // Same trust boundary as above: the folded unit is an axiom.
    const Lit unit(out[0], /*negated=*/!rhs);
    proof_axiom({unit});
    unchecked_enqueue(unit, {});
    ok_ = propagate().none();
    if (!ok_) proof_empty();
    return ok_;
  }

  if (opts_.use_gauss) {
    gauss_add_row(out, rhs);
    return true;
  }

  if (opts_.proof != nullptr) {
    // Proof mode attaches the constraint whole: chunk splitting introduces
    // definitional link variables whose clauses are only RAT in an order
    // the emission stream cannot promise once chains get long. The direct
    // expansion needs no new variables, at the cost of a 2^(n-1) axiom
    // fan-out — hence the arity cap.
    if (out.size() > kProofMaxXorArity) {
      throw std::invalid_argument(
          "add_xor: XOR arity exceeds kProofMaxXorArity under proof logging");
    }
    proof_xor_axioms(out, rhs);
    return attach_xor(std::move(out), rhs);
  }

  // Split long constraints into a chain of short XORs linked by fresh
  // parity variables: t1 = v1^..^vc, t2 = t1^v_{c+1}^..., last chunk
  // carries rhs. Keeps watched-variable scans and XOR reason clauses short.
  const std::size_t chunk = opts_.xor_chunk_size;
  if (chunk >= 3 && out.size() > chunk) {
    std::size_t consumed = 0;
    Var link = -1;
    while (out.size() - consumed > chunk) {
      // Take (chunk-1) inputs plus the incoming link; produce a new link.
      std::vector<Var> part;
      if (link >= 0) part.push_back(link);
      const std::size_t take = chunk - part.size() - 1;
      for (std::size_t i = 0; i < take; ++i) part.push_back(out[consumed++]);
      link = new_var();
      part.push_back(link);  // link = parity of the part's other vars
      if (!attach_xor(std::move(part), false)) return false;
    }
    std::vector<Var> tail;
    if (link >= 0) tail.push_back(link);
    while (consumed < out.size()) tail.push_back(out[consumed++]);
    return attach_xor(std::move(tail), rhs);
  }
  return attach_xor(std::move(out), rhs);
}

// Precondition: vars are distinct, unassigned, size >= 2.
bool Solver::attach_xor(std::vector<Var> vars, bool rhs) {
  auto x = std::make_unique<XorConstraint>();
  x->vars = std::move(vars);
  x->rhs = rhs;
  x->w0 = 0;
  x->w1 = 1;
  xor_watch_[static_cast<std::size_t>(x->vars[0])].push_back(x.get());
  xor_watch_[static_cast<std::size_t>(x->vars[1])].push_back(x.get());
  xors_.push_back(std::move(x));
  return true;
}

void Solver::attach_clause(ClauseRef c) {
  assert(arena_.size(c) >= 3);
  const Lit l0 = arena_.lit(c, 0);
  const Lit l1 = arena_.lit(c, 1);
  watches_[static_cast<std::size_t>((~l0).code())].push_back({c, l1});
  watches_[static_cast<std::size_t>((~l1).code())].push_back({c, l0});
}

void Solver::detach_clause(ClauseRef c) {
  for (std::size_t i = 0; i < 2; ++i) {
    auto& wl = watches_[static_cast<std::size_t>((~arena_.lit(c, i)).code())];
    auto it = std::find_if(wl.begin(), wl.end(),
                           [c](const Watcher& w) { return w.cref == c; });
    assert(it != wl.end());
    *it = wl.back();
    wl.pop_back();
  }
}

void Solver::attach_binary(Lit a, Lit b, bool learnt) {
  // Implication form: a false forces b, b false forces a.
  bin_watches_[static_cast<std::size_t>((~a).code())].push_back(
      {b, learnt ? 1u : 0u});
  bin_watches_[static_cast<std::size_t>((~b).code())].push_back(
      {a, learnt ? 1u : 0u});
  if (learnt) {
    ++num_bin_learnt_;
  } else {
    ++num_bin_problem_;
  }
}

void Solver::unchecked_enqueue(Lit l, Reason reason) {
  assert(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = to_lbool(!l.negated());
  lit_assigns_[static_cast<std::size_t>(l.code())] = LBool::True;
  lit_assigns_[static_cast<std::size_t>((~l).code())] = LBool::False;
  vardata_[v] = {reason, decision_level()};
  trail_.push_back(l);
}

bool Solver::enqueue(Lit l, Reason reason) {
  const LBool v = value(l);
  if (v != LBool::Undef) return v == LBool::True;
  unchecked_enqueue(l, reason);
  return true;
}

Solver::Reason Solver::propagate() {
  Reason conflict;
  while (true) {
    bcp(conflict);
    if (!conflict.none() || !opts_.use_gauss) break;
    if (!gauss_propagate(conflict)) break;  // nothing implied: fixpoint
    if (!conflict.none()) break;
  }
  return conflict;
}

void Solver::bcp(Reason& conflict) {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // ---- binary implications: clauses (~p ∨ q), no clause memory ----
    {
      const auto& bl = bin_watches_[static_cast<std::size_t>(p.code())];
      for (const BinWatcher& w : bl) {
        const LBool v = value(w.other);
        if (v == LBool::True) continue;
        if (v == LBool::False) {
          bin_conflict_ = {~p, w.other};
          conflict.kind = Reason::Kind::Binary;
          conflict.other = w.other;
          qhead_ = trail_.size();
          break;
        }
        unchecked_enqueue(w.other, Reason::binary(~p));
      }
      if (!conflict.none()) break;
    }

    // ---- clause watches: clauses in which ~p is watched ----
    auto& wl = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    std::size_t idx = 0;
    for (; idx < wl.size(); ++idx) {
      const Watcher w = wl[idx];
      if (value(w.blocker) == LBool::True) {
        wl[keep++] = w;
        continue;
      }
      std::uint32_t* lits = arena_.lits(w.cref);
      const Lit false_lit = ~p;
      const auto false_code = static_cast<std::uint32_t>(false_lit.code());
      if (lits[0] == false_code) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_code);

      const Lit first = Lit::from_code(static_cast<std::int32_t>(lits[0]));
      if (value(first) == LBool::True) {
        wl[keep++] = {w.cref, first};
        continue;
      }
      const std::size_t size = arena_.size(w.cref);
      bool moved = false;
      for (std::size_t i = 2; i < size; ++i) {
        const Lit li = Lit::from_code(static_cast<std::int32_t>(lits[i]));
        if (value(li) != LBool::False) {
          std::swap(lits[1], lits[i]);
          watches_[static_cast<std::size_t>((~li).code())].push_back(
              {w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      wl[keep++] = {w.cref, first};
      if (value(first) == LBool::False) {
        conflict = Reason::clause(w.cref);
        qhead_ = trail_.size();
        // Copy the remaining (unprocessed) watchers back.
        for (++idx; idx < wl.size(); ++idx) wl[keep++] = wl[idx];
        break;
      }
      unchecked_enqueue(first, Reason::clause(w.cref));
    }
    wl.resize(keep);
    if (!conflict.none()) break;

    // ---- XOR watches on the assigned variable ----
    auto& xl = xor_watch_[static_cast<std::size_t>(p.var())];
    std::size_t xkeep = 0;
    std::size_t xi = 0;
    for (; xi < xl.size(); ++xi) {
      XorConstraint& x = *xl[xi];
      bool kept = true;
      if (!propagate_xor(x, p.var(), conflict)) {
        kept = false;  // moved to another variable's watch list
      }
      if (kept) xl[xkeep++] = xl[xi];
      if (!conflict.none()) {
        qhead_ = trail_.size();
        for (++xi; xi < xl.size(); ++xi) xl[xkeep++] = xl[xi];
        break;
      }
    }
    xl.resize(xkeep);
    if (!conflict.none()) break;
  }
}

void Solver::gauss_add_row(const std::vector<Var>& vars, bool rhs) {
  gauss_raw_.emplace_back(vars, rhs);
  gauss_dirty_ = true;
}

bool Solver::gauss_propagate(Reason& conflict) {
  if (gauss_dirty_) {
    // (Re)build the column space and the row masks.
    gauss_cols_.clear();
    gauss_col_of_.clear();
    for (const auto& [vars, rhs] : gauss_raw_) {
      for (Var v : vars) {
        if (gauss_col_of_.emplace(v, gauss_cols_.size()).second) {
          gauss_cols_.push_back(v);
        }
      }
    }
    gauss_rows_.clear();
    for (const auto& [vars, rhs] : gauss_raw_) {
      GaussRow row{f2::BitVec(gauss_cols_.size()), rhs};
      for (Var v : vars) row.mask.set(gauss_col_of_[v], true);
      gauss_rows_.push_back(std::move(row));
    }
    gauss_dirty_ = false;
  }
  if (gauss_rows_.empty()) return false;

  const std::size_t ncols = gauss_cols_.size();
  f2::BitVec assigned(ncols);
  f2::BitVec value(ncols);
  std::size_t unassigned = 0;
  for (std::size_t c = 0; c < ncols; ++c) {
    const LBool a = assigns_[static_cast<std::size_t>(gauss_cols_[c])];
    if (a != LBool::Undef) {
      assigned.set(c, true);
      if (a == LBool::True) value.set(c, true);
    } else {
      ++unassigned;
    }
  }
  const std::size_t gate = opts_.gauss_max_unassigned != 0
                               ? opts_.gauss_max_unassigned
                               : 4 * gauss_rows_.size() + 32;
  if (unassigned > gate) return false;

  ++stats_.gauss_runs;
  if (opts_.tracer != nullptr && (stats_.gauss_runs & 1023) == 0) {
    opts_.tracer->event(
        "solver.gauss",
        {{"runs", stats_.gauss_runs},
         {"unassigned", static_cast<std::uint64_t>(unassigned)},
         {"rows", static_cast<std::uint64_t>(gauss_rows_.size())}});
  }

  // Working rows: residual mask (unassigned vars), full combination mask,
  // residual parity.
  struct Working {
    f2::BitVec res;
    f2::BitVec full;
    bool rhs;
  };
  std::vector<Working> rows;
  rows.reserve(gauss_rows_.size());
  for (const GaussRow& g : gauss_rows_) {
    Working w{g.mask, g.mask, g.rhs != g.mask.dot(value)};
    w.res.and_not(assigned);
    rows.push_back(std::move(w));
  }

  // Gauss-Jordan elimination on the residual columns (full reduction: the
  // extra row combinations find strictly more unit rows per call than
  // forward-only echelon form, which measures faster overall).
  std::size_t next = 0;
  for (std::size_t col = 0; col < ncols && next < rows.size(); ++col) {
    std::size_t pivot = rows.size();
    for (std::size_t r = next; r < rows.size(); ++r) {
      if (rows[r].res.get(col)) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows.size()) continue;
    std::swap(rows[next], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next && rows[r].res.get(col)) {
        rows[r].res ^= rows[next].res;
        rows[r].full ^= rows[next].full;
        rows[r].rhs = rows[r].rhs != rows[next].rhs;
      }
    }
    ++next;
  }

  auto false_literal = [&](std::size_t col) {
    const Var v = gauss_cols_[col];
    return Lit(v, /*negated=*/assigns_[static_cast<std::size_t>(v)] == LBool::True);
  };

  bool enqueued = false;
  for (const Working& w : rows) {
    const std::size_t pc = w.res.popcount();
    if (pc == 0) {
      if (w.rhs) {
        // The combined constraint is violated by assigned variables only.
        gauss_conflict_.clear();
        for (std::size_t c = 0; c < ncols; ++c) {
          if (w.full.get(c)) gauss_conflict_.push_back(false_literal(c));
        }
        conflict = Reason::gauss();
        return true;
      }
      continue;
    }
    if (pc == 1) {
      const std::size_t col = w.res.lowest_set();
      const Var v = gauss_cols_[col];
      const Lit implied(v, /*negated=*/!w.rhs);
      std::vector<Lit> reason;
      reason.push_back(implied);
      for (std::size_t c = 0; c < ncols; ++c) {
        if (c != col && w.full.get(c) && assigned.get(c)) {
          reason.push_back(false_literal(c));
        }
      }
      gauss_reason_of_var_[static_cast<std::size_t>(v)] = std::move(reason);
      unchecked_enqueue(implied, Reason::gauss());
      ++stats_.xor_propagations;
      enqueued = true;
    }
  }
  return enqueued;
}

// Returns true if the constraint stays in `assigned`'s watch list, false if
// the watch moved elsewhere. Sets `conflict` on parity violation.
bool Solver::propagate_xor(XorConstraint& x, Var assigned, Reason& conflict) {
  std::size_t* my_watch;
  if (x.vars[x.w0] == assigned) {
    my_watch = &x.w0;
  } else if (x.vars[x.w1] == assigned) {
    my_watch = &x.w1;
  } else {
    return false;  // stale entry: constraint no longer watches this variable
  }

  // Try to find an unassigned, unwatched variable to take over the watch.
  // The circular search pointer avoids rescanning the (assigned) prefix on
  // every call, keeping a full pass amortized linear.
  const std::size_t other = (my_watch == &x.w0) ? x.w1 : x.w0;
  const std::size_t n = x.vars.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t j = (x.search_pos + step) % n;
    if (j == x.w0 || j == x.w1) continue;
    if (value(x.vars[j]) == LBool::Undef) {
      *my_watch = j;
      x.search_pos = (j + 1) % n;
      xor_watch_[static_cast<std::size_t>(x.vars[j])].push_back(&x);
      return false;
    }
  }

  // All variables except possibly vars[other] are assigned.
  bool parity = x.rhs;
  for (std::size_t j = 0; j < x.vars.size(); ++j) {
    if (j == other) continue;
    assert(value(x.vars[j]) != LBool::Undef);
    if (value(x.vars[j]) == LBool::True) parity = !parity;
  }
  const LBool other_val = value(x.vars[other]);
  if (other_val == LBool::Undef) {
    // Unit: vars[other] must take the residual parity.
    ++stats_.xor_propagations;
    unchecked_enqueue(Lit(x.vars[other], /*negated=*/!parity), Reason::xor_c(&x));
    return true;
  }
  if ((other_val == LBool::True) != parity) {
    conflict = Reason::xor_c(&x);
  }
  return true;
}

void Solver::cancel_until(int lvl) {
  if (decision_level() <= lvl) return;
  const std::size_t bound = trail_lim_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    const auto vi = static_cast<std::size_t>(v);
    if (opts_.phase_saving) polarity_[vi] = !trail_[i].negated();
    assigns_[vi] = LBool::Undef;
    lit_assigns_[static_cast<std::size_t>(trail_[i].code())] = LBool::Undef;
    lit_assigns_[static_cast<std::size_t>((~trail_[i]).code())] = LBool::Undef;
    vardata_[vi].reason = {};
    order_.insert(v, activity_);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(lvl));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (!order_.empty()) {
    // Peek-and-pop until an unassigned variable surfaces.
    Var v = order_.pop(activity_);
    if (value(v) == LBool::Undef) {
      ++stats_.decisions;
      return Lit(v, /*negated=*/!polarity_[static_cast<std::size_t>(v)]);
    }
  }
  return lit_undef;
}

void Solver::reason_literals(Lit p, Reason r, std::vector<Lit>& out) const {
  out.clear();
  switch (r.kind) {
    case Reason::Kind::Gauss:
      out = gauss_reason_of_var_[static_cast<std::size_t>(p.var())];
      assert(!out.empty() && out[0] == p);
      return;
    case Reason::Kind::Clause: {
      out.push_back(p);
      const std::size_t n = arena_.size(r.cref);
      for (std::size_t i = 0; i < n; ++i) {
        const Lit l = arena_.lit(r.cref, i);
        if (l != p) out.push_back(l);
      }
      return;
    }
    case Reason::Kind::Binary:
      out.push_back(p);
      out.push_back(r.other);
      return;
    case Reason::Kind::Xor:
      // Materialize the implication clause of an XOR propagation: p is
      // implied by the conjunction of the other variables' assignments.
      out.push_back(p);
      for (Var v : r.xr->vars) {
        if (v == p.var()) continue;
        assert(value(v) != LBool::Undef);
        out.push_back(Lit(v, /*negated=*/value(v) == LBool::True));  // false literal
      }
      return;
    case Reason::Kind::None:
      assert(false && "reason_literals on a decision");
      return;
  }
}

void Solver::conflict_literals(Reason r, std::vector<Lit>& out) const {
  out.clear();
  switch (r.kind) {
    case Reason::Kind::Gauss:
      out = gauss_conflict_;
      return;
    case Reason::Kind::Clause: {
      const std::size_t n = arena_.size(r.cref);
      for (std::size_t i = 0; i < n; ++i) out.push_back(arena_.lit(r.cref, i));
      return;
    }
    case Reason::Kind::Binary:
      out.push_back(bin_conflict_[0]);
      out.push_back(bin_conflict_[1]);
      return;
    case Reason::Kind::Xor:
      for (Var v : r.xr->vars) {
        assert(value(v) != LBool::Undef);
        out.push_back(Lit(v, /*negated=*/value(v) == LBool::True));  // all false
      }
      return;
    case Reason::Kind::None:
      assert(false && "conflict_literals on an empty reason");
      return;
  }
}

void Solver::bump_var(Var v) {
  const auto vi = static_cast<std::size_t>(v);
  activity_[vi] += var_inc_;
  if (activity_[vi] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.increased(v, activity_);
}

void Solver::decay_var_activity() { var_inc_ /= opts_.var_decay; }

void Solver::bump_clause(ClauseRef c) {
  const float a = arena_.activity(c) + static_cast<float>(cla_inc_);
  arena_.set_activity(c, a);
  if (a > 1e20f) {
    for (ClauseRef l : learnts_) {
      arena_.set_activity(l, arena_.activity(l) * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::decay_clause_activity() { cla_inc_ /= opts_.clause_decay; }

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  ++lbd_stamp_;
  std::uint32_t lbd = 0;
  for (Lit l : lits) {
    const auto lv = static_cast<std::size_t>(level(l.var()));
    if (lv == 0) continue;
    if (lbd_seen_.size() <= lv) lbd_seen_.resize(lv + 1, 0);
    if (lbd_seen_[lv] != lbd_stamp_) {
      lbd_seen_[lv] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

int Solver::analyze(Reason conflict, std::vector<Lit>& learnt) {
  learnt.clear();
  learnt.push_back(lit_undef);  // slot for the asserting literal

  int counter = 0;
  Lit p = lit_undef;
  std::size_t index = trail_.size();

  conflict_literals(conflict, reason_buf_);
  if (conflict.kind == Reason::Kind::Clause && arena_.learnt(conflict.cref)) {
    bump_clause(conflict.cref);
  }

  while (true) {
    for (Lit q : reason_buf_) {
      if (p != lit_undef && q == p) continue;
      const auto qv = static_cast<std::size_t>(q.var());
      if (!seen_[qv] && level(q.var()) > 0) {
        seen_[qv] = 1;
        to_clear_.push_back(q.var());
        bump_var(q.var());
        if (level(q.var()) >= decision_level()) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select the next literal of the current level to resolve on.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --counter;
    if (counter == 0) break;
    const Reason r = vardata_[static_cast<std::size_t>(p.var())].reason;
    assert(!r.none());
    if (r.kind == Reason::Kind::Clause && arena_.learnt(r.cref)) {
      bump_clause(r.cref);
    }
    reason_literals(p, r, reason_buf_);
  }
  learnt[0] = ~p;

  // Conflict-clause minimization (single-step self-subsumption: a literal is
  // redundant if its reason's literals are all already in the clause or at
  // level 0).
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (!literal_redundant(learnt[i])) {
      learnt[kept++] = learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);

  // Compute the backtrack level and put a literal of that level at slot 1.
  int bt = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level(learnt[i].var()) > level(learnt[max_i].var())) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt = level(learnt[1].var());
  }

  // Clear every flag set during this analysis, including those of literals
  // dropped by minimization.
  for (Var v : to_clear_) seen_[static_cast<std::size_t>(v)] = 0;
  to_clear_.clear();
  return bt;
}

bool Solver::literal_redundant(Lit l) {
  const Reason r = vardata_[static_cast<std::size_t>(l.var())].reason;
  if (r.none()) return false;
  std::vector<Lit>& rl = redundant_buf_;
  reason_literals(~l, r, rl);
  for (std::size_t i = 1; i < rl.size(); ++i) {
    const Lit q = rl[i];
    if (level(q.var()) == 0) continue;
    if (!seen_[static_cast<std::size_t>(q.var())]) return false;
  }
  return true;
}

bool Solver::locked(ClauseRef c) const {
  const Lit first = arena_.lit(c, 0);
  if (value(first) != LBool::True) return false;
  const Reason r = vardata_[static_cast<std::size_t>(first.var())].reason;
  return r.kind == Reason::Kind::Clause && r.cref == c;
}

// --------------------------------------------- database maintenance -----

void Solver::remove_clause(ClauseRef c) {
  detach_clause(c);
  proof_del_ref(c);
  auto erase_from = [c](std::vector<ClauseRef>& db) {
    // Recent clauses are removed most often: search from the back.
    auto it = std::find(db.rbegin(), db.rend(), c);
    if (it == db.rend()) return false;
    db.erase(std::next(it).base());
    return true;
  };
  if (!erase_from(learnts_)) {
    const bool found = erase_from(clauses_);
    assert(found);
    (void)found;
  }
  arena_.free_clause(c);
}

void Solver::reduce_db() {
  ++num_reduces_;
  // Sort learnt clauses: keep low-LBD / high-activity ones.
  std::vector<ClauseRef> sorted = learnts_;
  std::sort(sorted.begin(), sorted.end(), [this](ClauseRef a, ClauseRef b) {
    if (arena_.lbd(a) != arena_.lbd(b)) return arena_.lbd(a) > arena_.lbd(b);
    return arena_.activity(a) < arena_.activity(b);
  });

  const std::size_t target = sorted.size() / 2;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < target; ++i) {
    const ClauseRef c = sorted[i];
    if (arena_.lbd(c) <= 2 || locked(c)) continue;
    detach_clause(c);
    proof_del_ref(c);
    arena_.free_clause(c);
    ++removed;
  }
  if (removed != 0) {
    stats_.removed_clauses += static_cast<std::int64_t>(removed);
    learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                  [this](ClauseRef c) { return arena_.dead(c); }),
                   learnts_.end());
  }
  maybe_gc();
}

void Solver::try_subsume_conflict(Reason conflict, const std::vector<Lit>& learnt) {
  // On-the-fly backward subsumption: when the freshly learnt clause is a
  // strict subset of the arena clause the conflict arose in, that clause is
  // redundant from now on — every assignment the long clause rejects the
  // short one rejects earlier. Binary and constraint conflicts are skipped
  // (binaries are already minimal; XOR/Gauss conflicts have no stored
  // clause to delete).
  if (conflict.kind != Reason::Kind::Clause) return;
  const ClauseRef c = conflict.cref;
  const std::size_t n = arena_.size(c);
  if (learnt.size() >= n || learnt.empty()) return;
  if (learnt.size() * n > 512) return;  // cap the quadratic membership scan
  if (locked(c)) return;
  for (const Lit l : learnt) {
    const auto code = static_cast<std::uint32_t>(l.code());
    const std::uint32_t* lits = arena_.lits(c);
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (lits[i] == code) {
        found = true;
        break;
      }
    }
    if (!found) return;
  }
  if (!arena_.learnt(c)) {
    // The subsumed clause is irredundant, so its constraint now rests on
    // the subsuming learnt clause alone — which must therefore stop being
    // eligible for reduce_db() deletion, or the constraint is silently
    // lost (an AllSAT blocking clause would readmit its model). Promote
    // the learnt clause into the problem database. A unit learnt needs no
    // promotion: it is a permanent root-level assignment.
    if (learnt.size() == 2) {
      auto promote_side = [this](Lit from, Lit other) {
        for (BinWatcher& w : bin_watches_[static_cast<std::size_t>((~from).code())]) {
          if (w.other == other && w.learnt != 0) {
            w.learnt = 0;
            return;
          }
        }
        assert(false && "subsuming learnt binary not found in watch list");
      };
      promote_side(learnt[0], learnt[1]);
      promote_side(learnt[1], learnt[0]);
      --num_bin_learnt_;
      ++num_bin_problem_;
    } else if (learnt.size() >= 3) {
      const ClauseRef lc = learnts_.back();  // attached just before this call
      assert(arena_.size(lc) == learnt.size() && !arena_.dead(lc));
      arena_.promote(lc);
      learnts_.pop_back();
      clauses_.push_back(lc);
    }
  }
  // The learnt clause was proof_add'ed before this call, so deleting the
  // subsumed clause keeps the DRAT stream checkable (add before delete).
  remove_clause(c);
  ++stats_.subsumed_clauses;
}

void Solver::vivify_round(std::int64_t budget) {
  // Root-level clause vivification (distillation): for each stored clause
  // C = (l1 ∨ ... ∨ ln), assume the negation of its literals one at a time
  // (with C itself detached) and unit-propagate.
  //  * some li propagates to true  → the prefix ¬l1..¬l(i-1) implies li:
  //    C shrinks to (l1..li);
  //  * some li propagates to false → li is redundant in C (resolving C with
  //    the propagation reasons yields C \ {li}): drop it;
  //  * propagation conflicts       → the prefix alone is contradictory:
  //    C shrinks to (l1..li).
  // Every shrink is a RUP consequence of the remaining database, so the
  // DRAT stream records add(new) before del(old). The round is bounded by
  // `budget` propagations and resumes round-robin at vivify_head_.
  assert(decision_level() == 0);
  if (clauses_.empty()) return;
  const std::int64_t start_props = stats_.propagations;
  std::size_t visited = 0;
  const std::size_t total = clauses_.size();
  if (vivify_head_ >= clauses_.size()) vivify_head_ = 0;

  std::vector<Lit> work;
  std::vector<Lit> kept;
  while (visited < total && ok_ &&
         stats_.propagations - start_props < budget) {
    ++visited;
    if (vivify_head_ >= clauses_.size()) vivify_head_ = 0;
    const std::size_t idx = vivify_head_;
    const ClauseRef c = clauses_[idx];
    if (locked(c)) {
      ++vivify_head_;
      continue;
    }

    // Earlier units of this round may have touched the clause at level 0:
    // a true literal means the whole clause is satisfied ballast, false
    // literals fall away for free.
    work.clear();
    bool satisfied = false;
    const std::size_t n = arena_.size(c);
    for (std::size_t i = 0; i < n && !satisfied; ++i) {
      const Lit l = arena_.lit(c, i);
      if (value(l) == LBool::True) satisfied = true;
      if (value(l) == LBool::Undef) work.push_back(l);
    }
    if (satisfied) {
      remove_clause(c);
      ++stats_.removed_clauses;
      continue;  // clauses_[idx] now holds the next clause
    }

    detach_clause(c);
    kept.clear();
    bool conflicted = false;
    for (const Lit l : work) {
      const LBool v = value(l);
      if (v == LBool::True) {
        kept.push_back(l);  // prefix implies l: truncate here
        break;
      }
      if (v == LBool::False) continue;  // prefix refutes l: drop it
      kept.push_back(l);
      trail_lim_.push_back(trail_.size());
      unchecked_enqueue(~l, {});
      if (!propagate().none()) {
        conflicted = true;  // prefix is contradictory: truncate here
        break;
      }
    }
    cancel_until(0);
    (void)conflicted;

    if (kept.size() == work.size() && work.size() == n) {
      attach_clause(c);  // nothing learned; literals are still level-0 free
      ++vivify_head_;
      continue;
    }

    stats_.vivified_literals += static_cast<std::int64_t>(n - kept.size());
    proof_add(kept);
    proof_del_ref(c);
    assert(!kept.empty());
    if (kept.size() == 1) {
      clauses_.erase(clauses_.begin() + static_cast<std::ptrdiff_t>(idx));
      arena_.free_clause(c);
      if (value(kept[0]) == LBool::Undef) {
        unchecked_enqueue(kept[0], {});
        ok_ = propagate().none();
      } else if (value(kept[0]) == LBool::False) {
        ok_ = false;
      }
      if (!ok_) proof_empty();
    } else if (kept.size() == 2) {
      clauses_.erase(clauses_.begin() + static_cast<std::ptrdiff_t>(idx));
      arena_.free_clause(c);
      attach_binary(kept[0], kept[1], /*learnt=*/false);
    } else {
      const ClauseRef nc = arena_.alloc(kept, /*learnt=*/false);
      clauses_[idx] = nc;
      arena_.free_clause(c);
      attach_clause(nc);
      ++vivify_head_;
    }
  }
}

bool Solver::simplify() {
  assert(decision_level() == 0);
  if (!ok_) return false;
  auto satisfied = [this](ClauseRef c) {
    const std::size_t n = arena_.size(c);
    for (std::size_t i = 0; i < n; ++i) {
      if (value(arena_.lit(c, i)) == LBool::True) return true;
    }
    return false;
  };
  auto sweep = [&](std::vector<ClauseRef>& db) {
    std::size_t removed = 0;
    for (const ClauseRef c : db) {
      if (satisfied(c) && !locked(c)) {
        detach_clause(c);
        proof_del_ref(c);
        arena_.free_clause(c);
        ++removed;
      }
    }
    if (removed != 0) {
      db.erase(std::remove_if(db.begin(), db.end(),
                              [this](ClauseRef c) { return arena_.dead(c); }),
               db.end());
    }
    return removed;
  };
  stats_.removed_clauses += static_cast<std::int64_t>(sweep(learnts_) + sweep(clauses_));

  // Sweep the binary implication lists: a binary clause {a, b} is level-0
  // satisfied ballast once either literal is fixed true. Each clause
  // appears in two lists; the proof deletion and the counter decrement are
  // emitted from its canonical side only.
  for (std::size_t code = 0; code < bin_watches_.size(); ++code) {
    auto& bl = bin_watches_[code];
    if (bl.empty()) continue;
    const Lit a = ~Lit::from_code(static_cast<std::int32_t>(code));
    const LBool va = value(a);
    std::size_t keep = 0;
    for (const BinWatcher& w : bl) {
      if (va != LBool::True && value(w.other) != LBool::True) {
        bl[keep++] = w;
        continue;
      }
      if (a.code() < w.other.code()) {  // canonical side
        proof_del({a, w.other});
        if (w.learnt != 0) {
          --num_bin_learnt_;
        } else {
          --num_bin_problem_;
        }
        ++stats_.removed_clauses;
      }
    }
    bl.resize(keep);
  }

  if (opts_.vivify && ok_) vivify_round(opts_.vivify_budget);
  maybe_gc();
  if (audit_ != nullptr) audit_->checkpoint(*this, AuditPoint::PostSimplify);
  return ok_;
}

void Solver::subsume_round(std::int64_t budget) {
  // Backward subsumption between solves: a stored problem clause C
  // subsumes every other stored clause D ⊇ C (problem or learnt), which
  // can then be deleted — any assignment D rejects, C rejects no later.
  // Deletions only, so the DRAT stream needs nothing but the del ops.
  // Bounded by `budget` literal visits; occurrence lists are rebuilt per
  // round (the solver keeps none between solves).
  assert(decision_level() == 0);
  if (clauses_.empty()) return;
  std::int64_t work = budget;

  // lit code -> refs of clauses containing it (problem + learnt).
  std::vector<std::vector<ClauseRef>> occ(2 * static_cast<std::size_t>(num_vars()));
  auto index_db = [&](const std::vector<ClauseRef>& db) {
    for (const ClauseRef c : db) {
      const std::size_t n = arena_.size(c);
      work -= static_cast<std::int64_t>(n);
      for (std::size_t i = 0; i < n; ++i) {
        occ[static_cast<std::size_t>(arena_.lit(c, i).code())].push_back(c);
      }
    }
  };
  index_db(clauses_);
  index_db(learnts_);
  if (work <= 0) return;

  std::vector<unsigned char> marked(2 * static_cast<std::size_t>(num_vars()), 0);
  std::size_t removed = 0;
  for (const ClauseRef c : clauses_) {
    if (work <= 0) break;
    if (arena_.dead(c) || locked(c)) continue;
    const std::size_t n = arena_.size(c);

    // Scan the occurrence list of c's least-occurring literal: every
    // superset of c must appear there.
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const auto code = static_cast<std::size_t>(arena_.lit(c, i).code());
      if (occ[code].size() <
          occ[static_cast<std::size_t>(arena_.lit(c, best).code())].size()) {
        best = i;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      marked[static_cast<std::size_t>(arena_.lit(c, i).code())] = 1;
    }
    for (const ClauseRef d :
         occ[static_cast<std::size_t>(arena_.lit(c, best).code())]) {
      if (d == c || arena_.dead(d) || locked(d)) continue;
      const std::size_t dn = arena_.size(d);
      if (dn < n) continue;
      if (dn == n && d < c) continue;  // duplicate pair: delete once
      work -= static_cast<std::int64_t>(dn);
      std::size_t hits = 0;
      for (std::size_t i = 0; i < dn; ++i) {
        hits += marked[static_cast<std::size_t>(arena_.lit(d, i).code())];
      }
      if (hits == n) {
        detach_clause(d);
        proof_del_ref(d);
        arena_.free_clause(d);
        ++removed;
      }
      if (work <= 0) break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      marked[static_cast<std::size_t>(arena_.lit(c, i).code())] = 0;
    }
  }
  if (removed != 0) {
    auto drop_dead = [this](std::vector<ClauseRef>& db) {
      db.erase(std::remove_if(db.begin(), db.end(),
                              [this](ClauseRef c) { return arena_.dead(c); }),
               db.end());
    };
    drop_dead(clauses_);
    drop_dead(learnts_);
    stats_.removed_clauses += static_cast<std::int64_t>(removed);
    stats_.subsumed_clauses += static_cast<std::int64_t>(removed);
  }
}

void Solver::probe_round(std::int64_t budget) {
  // Root-level failed-literal probing: assume each unfixed literal in
  // turn and unit-propagate; a conflict makes the negation a root unit
  // (RUP against the database that just refuted it, so the DRAT add goes
  // out before the unit is enqueued). Bounded by `budget` propagations,
  // resuming round-robin at probe_head_ like vivify_round.
  assert(decision_level() == 0);
  const auto n = static_cast<std::size_t>(num_vars());
  if (n == 0) return;
  const std::int64_t start_props = stats_.propagations;
  if (probe_head_ >= n) probe_head_ = 0;
  std::size_t visited = 0;
  while (visited < n && ok_ && stats_.propagations - start_props < budget) {
    const Var v = static_cast<Var>(probe_head_);
    probe_head_ = (probe_head_ + 1) % n;
    ++visited;
    for (int sign = 0; sign < 2 && ok_; ++sign) {
      const Lit l(v, sign == 1);
      if (value(l) != LBool::Undef) break;  // fixed (possibly just now)
      trail_lim_.push_back(trail_.size());
      unchecked_enqueue(l, {});
      const bool conflicted = !propagate().none();
      cancel_until(0);
      if (!conflicted) continue;
      proof_add({~l});
      unchecked_enqueue(~l, {});
      if (!propagate().none()) {
        ok_ = false;
        proof_empty();
      }
    }
  }
}

bool Solver::inprocess() {
  assert(decision_level() == 0);
  if (!simplify()) return false;  // satisfied sweep + vivification + GC
  const std::int64_t budget = opts_.inprocess_budget;
  if (budget <= 0) return ok_;
  subsume_round(budget);
  if (ok_) probe_round(budget);
  maybe_gc();
  ++stats_.inprocess_rounds;
  static obs::Counter& rounds_m =
      obs::MetricsRegistry::global().counter("solver.inprocess.rounds");
  rounds_m.add(1);
  return ok_;
}

std::size_t Solver::retained_bytes() const {
  // Live arena bytes plus the binaries, which live in the implication
  // lists (two watcher entries per binary clause) rather than the arena.
  return arena_.bytes_live() +
         (num_bin_problem_ + num_bin_learnt_) * 2 * sizeof(BinWatcher);
}

void Solver::maybe_gc() {
  if (arena_.want_gc()) garbage_collect();
}

void Solver::garbage_collect() {
  // Mark-and-compact: move every live clause into a fresh buffer, then
  // rewrite all outstanding references. gc_move is idempotent, so the
  // database lists, the watcher lists and the trail reasons can each be
  // walked independently. Locked clauses are never freed, so every reason
  // ref on the trail is live by construction.
  arena_.gc_begin();
  for (ClauseRef& c : clauses_) c = arena_.gc_move(c);
  for (ClauseRef& c : learnts_) c = arena_.gc_move(c);
  for (auto& wl : watches_) {
    for (Watcher& w : wl) w.cref = arena_.gc_move(w.cref);
  }
  for (const Lit l : trail_) {
    Reason& r = vardata_[static_cast<std::size_t>(l.var())].reason;
    if (r.kind == Reason::Kind::Clause) r.cref = arena_.gc_move(r.cref);
  }
  const std::size_t reclaimed = arena_.gc_end();
  ++stats_.arena_gc_runs;
  stats_.arena_bytes_reclaimed += static_cast<std::int64_t>(reclaimed);
}

// ------------------------------------------------------------- search ----

Status Solver::search(const SolveLimits& limits, std::int64_t conflict_budget,
                      std::int64_t conflicts_at_start) {
  const auto start = Clock::now();
  std::int64_t conflicts_here = 0;

  while (true) {
    if (limits.interrupt != nullptr &&
        limits.interrupt->load(std::memory_order_relaxed)) {
      cancel_until(0);
      return Status::Unknown;
    }
    Reason conflict = propagate();
    if (audit_ != nullptr && conflict.none()) {
      audit_->checkpoint(*this, AuditPoint::PostPropagate);
    }
    if (!conflict.none()) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (opts_.tracer != nullptr && (stats_.conflicts & 4095) == 0) {
        opts_.tracer->event(
            "solver.progress",
            {{"conflicts", stats_.conflicts},
             {"decisions", stats_.decisions},
             {"propagations", stats_.propagations},
             {"learnts", static_cast<std::uint64_t>(num_learnts())},
             {"trail", static_cast<std::uint64_t>(trail_.size())}});
      }
      if (decision_level() == 0) {
        proof_empty();
        return Status::Unsat;
      }

      // The gated Gauss engine can detect a conflict whose literals were
      // all assigned below the current decision level (the violated row
      // combination existed earlier but the elimination only ran now).
      // 1UIP analysis needs a current-level literal to resolve on, so hop
      // down to the conflict's own level first. Clause, binary and watched-
      // XOR conflicts always surface while propagating a current-level
      // literal that appears in them, so only Gauss conflicts pay the
      // materialization and level scan.
      if (conflict.kind == Reason::Kind::Gauss) {
        int max_level = 0;
        for (Lit q : gauss_conflict_) max_level = std::max(max_level, level(q.var()));
        if (max_level == 0) {
          proof_empty();  // unreachable in proof mode (Gauss is excluded)
          return Status::Unsat;
        }
        if (max_level < decision_level()) cancel_until(max_level);
      }

      std::vector<Lit>& learnt = learnt_buf_;
      const int bt = analyze(conflict, learnt);
      cancel_until(bt);
      // The 1UIP clause (minimization included) is derived by resolution
      // over stored clauses and materialized XOR implications, all of which
      // were logged as axioms or earlier additions — so it is RUP here.
      proof_add(learnt);

      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], {});
      } else if (learnt.size() == 2) {
        attach_binary(learnt[0], learnt[1], /*learnt=*/true);
        unchecked_enqueue(learnt[0], Reason::binary(learnt[1]));
        ++stats_.learnt_clauses;
      } else {
        const ClauseRef c = arena_.alloc(learnt, /*learnt=*/true);
        arena_.set_lbd(c, compute_lbd(learnt));
        bump_clause(c);
        attach_clause(c);
        unchecked_enqueue(learnt[0], Reason::clause(c));
        learnts_.push_back(c);
        ++stats_.learnt_clauses;
      }
      if (audit_ != nullptr) audit_->checkpoint(*this, AuditPoint::PostBacktrack);
      // Subsumption deletes the conflict clause only *after* the checkpoint:
      // the learnt-RUP audit replays the learnt clause against the database
      // as it was when the clause was derived.
      try_subsume_conflict(conflict, learnt);
      decay_var_activity();
      decay_clause_activity();

      if ((stats_.conflicts & 1023) == 0 && limits.max_seconds > 0) {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (elapsed > limits.max_seconds) return Status::Unknown;
      }
      if (limits.max_conflicts >= 0 &&
          stats_.conflicts - conflicts_at_start >= limits.max_conflicts) {
        return Status::Unknown;
      }
      if (conflict_budget >= 0 && conflicts_here >= conflict_budget) {
        cancel_until(0);
        return Status::Unknown;  // restart
      }
      if (static_cast<std::int64_t>(num_learnts()) >= next_reduce_) {
        next_reduce_ += opts_.reduce_increment;
        reduce_db();
      }
    } else {
      Lit next = lit_undef;
      // Re-assert pending assumptions as pseudo-decisions.
      while (decision_level() < static_cast<int>(assumptions_.size())) {
        const Lit a = assumptions_[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          trail_lim_.push_back(trail_.size());  // dummy level, already holds
        } else if (value(a) == LBool::False) {
          analyze_final(~a);
          assumption_conflict_ = true;
          // The failure clause resolves only stored constraints (the
          // assumptions enter as decisions, never as resolution inputs),
          // so it is RUP against the database alone. A certifier of the
          // conditional UNSAT appends the assumptions as unit clauses and
          // then derives the empty clause by unit propagation.
          proof_add(final_conflict_);
          return Status::Unsat;
        } else {
          next = a;
          break;
        }
      }
      if (next == lit_undef) next = pick_branch_lit();
      if (next == lit_undef) {
        // All variables assigned: model found.
        model_.assign(assigns_.begin(), assigns_.end());
        return Status::Sat;
      }
      trail_lim_.push_back(trail_.size());
      unchecked_enqueue(next, {});
    }
  }
}

void Solver::analyze_final(Lit p) {
  final_conflict_.clear();
  final_conflict_.push_back(p);
  if (decision_level() == 0) return;

  seen_[static_cast<std::size_t>(p.var())] = 1;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    const Var v = trail_[i].var();
    const auto vi = static_cast<std::size_t>(v);
    if (!seen_[vi]) continue;
    const Reason r = vardata_[vi].reason;
    if (r.none()) {
      // A decision: under assumption solving every decision below the
      // assumption prefix is an assumption.
      final_conflict_.push_back(~trail_[i]);
    } else {
      reason_literals(trail_[i], r, reason_buf_);
      for (std::size_t j = 1; j < reason_buf_.size(); ++j) {
        const Lit q = reason_buf_[j];
        if (level(q.var()) > 0) seen_[static_cast<std::size_t>(q.var())] = 1;
      }
    }
    seen_[vi] = 0;
  }
  seen_[static_cast<std::size_t>(p.var())] = 0;
}

Status Solver::solve_assuming(const std::vector<Lit>& assumptions,
                              const SolveLimits& limits) {
  assumptions_ = assumptions;
  const Status st = solve(limits);
  assumptions_.clear();
  return st;
}

Status Solver::solve(const SolveLimits& limits) {
  if (!pending_assumptions_.empty()) {
    // assume() queue (IPASIR idiom): consume it as a one-shot assumption
    // set. solve_assuming re-enters solve() with the queue empty.
    std::vector<Lit> assumed;
    assumed.swap(pending_assumptions_);
    return solve_assuming(assumed, limits);
  }
  static obs::Counter& solves = obs::MetricsRegistry::global().counter("solver.solves");
  static obs::Counter& conflicts = obs::MetricsRegistry::global().counter("solver.conflicts");
  static obs::Counter& decisions = obs::MetricsRegistry::global().counter("solver.decisions");
  static obs::Counter& propagations =
      obs::MetricsRegistry::global().counter("solver.propagations");
  static obs::Counter& xor_props =
      obs::MetricsRegistry::global().counter("solver.xor_propagations");
  static obs::Counter& restarts_m = obs::MetricsRegistry::global().counter("solver.restarts");
  static obs::Counter& gc_runs_m =
      obs::MetricsRegistry::global().counter("solver.arena_gc_runs");
  static obs::Counter& gc_bytes_m =
      obs::MetricsRegistry::global().counter("solver.arena_bytes_reclaimed");
  static obs::Gauge& arena_live_m =
      obs::MetricsRegistry::global().gauge("solver.arena_bytes_live");
  static obs::Timing& solve_time =
      obs::MetricsRegistry::global().timing("solver.solve_seconds");

  const SolverStats before = stats_;
  obs::Tracer::Span span;
  if (opts_.tracer != nullptr) {
    span = opts_.tracer->span(
        "solver.solve",
        {{"vars", static_cast<std::int64_t>(num_vars())},
         {"clauses", static_cast<std::uint64_t>(num_clauses())},
         {"xors", static_cast<std::uint64_t>(num_xors())}});
  }
  const auto t0 = Clock::now();
  const Status st = solve_main(limits);
  const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  stats_.solve_seconds += seconds;

  solves.add(1);
  conflicts.add(stats_.conflicts - before.conflicts);
  decisions.add(stats_.decisions - before.decisions);
  propagations.add(stats_.propagations - before.propagations);
  xor_props.add(stats_.xor_propagations - before.xor_propagations);
  restarts_m.add(stats_.restarts - before.restarts);
  gc_runs_m.add(stats_.arena_gc_runs - before.arena_gc_runs);
  gc_bytes_m.add(stats_.arena_bytes_reclaimed - before.arena_bytes_reclaimed);
  arena_live_m.set(static_cast<std::int64_t>(arena_.bytes_live()));
  solve_time.observe(seconds);

  if (span.active()) {
    span.add("status", std::string(to_string(st)));
    span.add("conflicts", stats_.conflicts - before.conflicts);
    span.add("decisions", stats_.decisions - before.decisions);
    span.add("propagations", stats_.propagations - before.propagations);
    span.add("restarts", stats_.restarts - before.restarts);
    span.add("props_per_sec",
             seconds > 0.0
                 ? static_cast<double>(stats_.propagations - before.propagations) / seconds
                 : 0.0);
    span.add("arena_bytes_live", static_cast<std::uint64_t>(arena_.bytes_live()));
    span.add("arena_gc_runs", stats_.arena_gc_runs - before.arena_gc_runs);
    span.add("arena_bytes_reclaimed",
             stats_.arena_bytes_reclaimed - before.arena_bytes_reclaimed);
    span.finish();
  }
  return st;
}

Status Solver::solve_main(const SolveLimits& limits) {
  if (!ok_) return Status::Unsat;
  assumption_conflict_ = false;
  final_conflict_.clear();
  cancel_until(0);
  if (!propagate().none()) {
    ok_ = false;
    proof_empty();
    return Status::Unsat;
  }

  const auto start = Clock::now();
  const std::int64_t conflicts_at_start = stats_.conflicts;
  int restarts = 0;
  while (true) {
    SolveLimits inner = limits;
    if (limits.max_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      inner.max_seconds = limits.max_seconds - elapsed;
      if (inner.max_seconds <= 0) return Status::Unknown;
    }
    const auto budget =
        static_cast<std::int64_t>(luby(2.0, restarts) * opts_.restart_base);
    const Status st = search(inner, budget, conflicts_at_start);
    if (st == Status::Sat) {
      cancel_until(0);
      return st;
    }
    if (st == Status::Unsat) {
      cancel_until(0);
      if (!assumption_conflict_) ok_ = false;  // unconditional unsatisfiability
      return st;
    }
    // Unknown: either a real limit, an interrupt, or a restart.
    if (limits.interrupt != nullptr &&
        limits.interrupt->load(std::memory_order_relaxed)) {
      cancel_until(0);
      return Status::Unknown;
    }
    if (limits.max_conflicts >= 0 &&
        stats_.conflicts - conflicts_at_start >= limits.max_conflicts) {
      cancel_until(0);
      return Status::Unknown;
    }
    if (limits.max_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (elapsed > limits.max_seconds) {
        cancel_until(0);
        return Status::Unknown;
      }
    }
    ++restarts;
    ++stats_.restarts;
    if (opts_.tracer != nullptr) {
      opts_.tracer->event(
          "solver.restart",
          {{"restart", restarts},
           {"conflicts", stats_.conflicts - conflicts_at_start},
           {"learnts", static_cast<std::uint64_t>(num_learnts())}});
    }
    cancel_until(0);
  }
}

}  // namespace tp::sat
