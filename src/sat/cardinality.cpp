#include "sat/cardinality.hpp"

#include <cassert>

namespace tp::sat {

namespace {

// Sinz's sequential counter (LT-SEQ) for "at most k of lits". Introduces
// registers s[i][j] meaning "at least j+1 of lits[0..i] are true".
bool sinz_at_most(SolverInterface& s, const std::vector<Lit>& lits, int k) {
  const int n = static_cast<int>(lits.size());
  assert(k >= 1 && k < n);

  // s_vars[i][j] for i in [0, n-2], j in [0, k-1].
  std::vector<std::vector<Lit>> reg(static_cast<std::size_t>(n - 1));
  for (auto& row : reg) {
    row.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) row.push_back(mk_lit(s.new_var()));
  }

  bool ok = true;
  auto add = [&](std::vector<Lit> c) { ok = s.add_clause(std::move(c)) && ok; };

  add({~lits[0], reg[0][0]});
  for (int j = 1; j < k; ++j) add({~reg[0][static_cast<std::size_t>(j)]});
  for (int i = 1; i < n - 1; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    add({~lits[ui], reg[ui][0]});
    add({~reg[ui - 1][0], reg[ui][0]});
    for (int j = 1; j < k; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      add({~lits[ui], ~reg[ui - 1][uj - 1], reg[ui][uj]});
      add({~reg[ui - 1][uj], reg[ui][uj]});
    }
    add({~lits[ui], ~reg[ui - 1][static_cast<std::size_t>(k - 1)]});
  }
  add({~lits[static_cast<std::size_t>(n - 1)],
       ~reg[static_cast<std::size_t>(n - 2)][static_cast<std::size_t>(k - 1)]});
  return ok;
}

// Recursive totalizer build over lits[lo, hi).
std::vector<Lit> totalizer_build(SolverInterface& s, const std::vector<Lit>& lits,
                                 std::size_t lo, std::size_t hi, int cap,
                                 bool& ok) {
  if (hi - lo == 1) return {lits[lo]};
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::vector<Lit> a = totalizer_build(s, lits, lo, mid, cap, ok);
  const std::vector<Lit> b = totalizer_build(s, lits, mid, hi, cap, ok);

  const int p = static_cast<int>(a.size());
  const int q = static_cast<int>(b.size());
  const int size = std::min(p + q, cap);
  std::vector<Lit> r;
  r.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) r.push_back(mk_lit(s.new_var()));

  auto add = [&](std::vector<Lit> c) { ok = s.add_clause(std::move(c)) && ok; };

  for (int alpha = 0; alpha <= p; ++alpha) {
    for (int beta = 0; beta <= q; ++beta) {
      const int sigma = alpha + beta;
      if (sigma >= 1) {
        // >= direction: alpha of a and beta of b true => at least
        // min(sigma, cap) total (saturating at the cap).
        const int target = std::min(sigma, cap);
        std::vector<Lit> c;
        if (alpha > 0) c.push_back(~a[static_cast<std::size_t>(alpha - 1)]);
        if (beta > 0) c.push_back(~b[static_cast<std::size_t>(beta - 1)]);
        c.push_back(r[static_cast<std::size_t>(target - 1)]);
        add(std::move(c));
      }
      if (sigma + 1 <= size) {
        // <= direction: at most alpha of a and at most beta of b true =>
        // fewer than sigma+1 total.
        std::vector<Lit> c;
        if (alpha < p) c.push_back(a[static_cast<std::size_t>(alpha)]);
        if (beta < q) c.push_back(b[static_cast<std::size_t>(beta)]);
        c.push_back(~r[static_cast<std::size_t>(sigma)]);
        add(std::move(c));
      }
    }
  }
  return r;
}

}  // namespace

std::vector<Lit> totalizer_outputs(SolverInterface& solver, const std::vector<Lit>& lits,
                                   int cap) {
  assert(cap >= 1);
  if (lits.empty()) return {};
  bool ok = true;
  return totalizer_build(solver, lits, 0, lits.size(), cap, ok);
}

bool encode_at_most(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                    CardEncoding enc) {
  const int n = static_cast<int>(lits.size());
  if (k < 0) return solver.add_clause({});  // impossible
  if (k >= n) return solver.okay();
  if (k == 0) {
    bool ok = true;
    for (Lit l : lits) ok = solver.add_clause({~l}) && ok;
    return ok;
  }
  if (enc == CardEncoding::SequentialCounter) return sinz_at_most(solver, lits, k);
  const std::vector<Lit> outs = totalizer_outputs(solver, lits, k + 1);
  if (static_cast<int>(outs.size()) >= k + 1) {
    return solver.add_clause({~outs[static_cast<std::size_t>(k)]});
  }
  return solver.okay();
}

bool encode_at_least(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                     CardEncoding enc) {
  const int n = static_cast<int>(lits.size());
  if (k <= 0) return solver.okay();
  if (k > n) return solver.add_clause({});  // impossible
  if (enc == CardEncoding::SequentialCounter) {
    std::vector<Lit> negated;
    negated.reserve(lits.size());
    for (Lit l : lits) negated.push_back(~l);
    return encode_at_most(solver, negated, n - k, enc);
  }
  const std::vector<Lit> outs = totalizer_outputs(solver, lits, k);
  return solver.add_clause({outs[static_cast<std::size_t>(k - 1)]});
}

bool encode_exactly(SolverInterface& solver, const std::vector<Lit>& lits, int k,
                    CardEncoding enc) {
  const int n = static_cast<int>(lits.size());
  if (k < 0 || k > n) return solver.add_clause({});  // impossible
  if (enc == CardEncoding::Totalizer && n > 0 && k >= 1) {
    // One shared totalizer serves both bounds.
    const std::vector<Lit> outs = totalizer_outputs(solver, lits, k + 1);
    bool ok = solver.add_clause({outs[static_cast<std::size_t>(k - 1)]});
    if (static_cast<int>(outs.size()) >= k + 1) {
      ok = solver.add_clause({~outs[static_cast<std::size_t>(k)]}) && ok;
    }
    return ok;
  }
  const bool ok1 = encode_at_most(solver, lits, k, enc);
  const bool ok2 = encode_at_least(solver, lits, k, enc);
  return ok1 && ok2;
}

}  // namespace tp::sat
