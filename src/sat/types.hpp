#pragma once
// types.hpp — basic SAT-solver types: variables, literals, ternary values.
//
// Conventions follow MiniSat: variables are dense 0-based integers; a
// literal packs (variable, sign) into one integer so that watch lists can
// be indexed directly by literal.

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tp::sat {

/// A propositional variable, 0-based.
using Var = std::int32_t;

/// A literal: a variable or its negation. Internally 2*var + sign where
/// sign == 1 means negated.
class Lit {
 public:
  /// Invalid literal (use lit_undef).
  constexpr Lit() : code_(-2) {}

  /// Literal for variable v, negated iff `negated`.
  constexpr Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {
    assert(v >= 0);
  }

  /// The underlying variable.
  constexpr Var var() const { return code_ >> 1; }

  /// True iff this is the negative literal of its variable.
  constexpr bool negated() const { return (code_ & 1) != 0; }

  /// Negation.
  constexpr Lit operator~() const { return from_code(code_ ^ 1); }

  /// Dense index usable for watch-list arrays: in [0, 2*num_vars).
  constexpr std::int32_t code() const { return code_; }

  /// Rebuild a literal from its code.
  static constexpr Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  constexpr bool operator==(const Lit&) const = default;
  constexpr auto operator<=>(const Lit&) const = default;

  /// DIMACS-style text: variable+1 with a leading '-' when negated.
  std::string to_string() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  std::int32_t code_;
};

/// Sentinel "no literal" value.
inline constexpr Lit lit_undef{};

/// Positive literal of v.
constexpr Lit mk_lit(Var v) { return Lit(v, false); }

/// Ternary truth value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/// The LBool for a plain bool.
constexpr LBool to_lbool(bool b) { return b ? LBool::True : LBool::False; }

/// Negate an LBool (Undef stays Undef).
constexpr LBool operator~(LBool v) {
  if (v == LBool::Undef) return LBool::Undef;
  return v == LBool::True ? LBool::False : LBool::True;
}

/// Result of a solve call.
enum class Status : std::uint8_t {
  Sat,      ///< a model was found
  Unsat,    ///< proven unsatisfiable
  Unknown,  ///< a resource limit was hit first
};

/// Human-readable status name.
inline const char* to_string(Status s) {
  switch (s) {
    case Status::Sat: return "SAT";
    case Status::Unsat: return "UNSAT";
    case Status::Unknown: return "UNKNOWN";
  }
  return "?";
}

}  // namespace tp::sat

template <>
struct std::hash<tp::sat::Lit> {
  std::size_t operator()(tp::sat::Lit l) const {
    return std::hash<std::int32_t>()(l.code());
  }
};
