#pragma once
// dimacs.hpp — reading/writing DIMACS CNF extended with XOR clauses.
//
// The extension follows CryptoMiniSat's convention: a line starting with
// 'x' is an XOR clause, e.g. "x1 2 -3 0" means x1 ⊕ x2 ⊕ ¬x3 = true.
// Negating a literal flips the parity of the constraint, so every XOR
// clause normalizes to (set of variables, required parity).

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sat/interface.hpp"
#include "sat/types.hpp"

namespace tp::sat {

/// Parse failure with the 1-based input line it occurred on. what() is
/// "dimacs: line N: <detail>"; line() gives N for programmatic use.
class DimacsError : public std::runtime_error {
 public:
  DimacsError(std::size_t line, const std::string& detail)
      : std::runtime_error("dimacs: line " + std::to_string(line) + ": " +
                           detail),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A problem in memory: plain clauses plus normalized XOR constraints.
/// Used as the neutral exchange format between DIMACS files, the CDCL
/// solver and the brute-force reference solver.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
  /// Each entry: (variables, parity) meaning XOR of variables == parity.
  std::vector<std::pair<std::vector<Var>, bool>> xors;

  /// Grow num_vars to cover variable v.
  void ensure_var(Var v) {
    if (v + 1 > num_vars) num_vars = v + 1;
  }

  /// Add every clause and XOR to a solver (native XOR path). Returns false
  /// iff the solver became unsatisfiable.
  bool load_into(SolverInterface& solver) const;

  /// True iff the given full assignment satisfies all clauses and XORs.
  bool satisfied_by(const std::vector<bool>& assignment) const;
};

/// Parse extended DIMACS. Throws DimacsError (a std::runtime_error whose
/// message carries the offending 1-based line number) on malformed input:
/// a bad problem line, a clause without its terminating 0, non-numeric
/// junk inside a clause, or tokens after the terminating 0.
Cnf parse_dimacs(std::istream& in);

/// Write extended DIMACS.
void write_dimacs(const Cnf& cnf, std::ostream& out);

}  // namespace tp::sat
