#pragma once
// xor_to_cnf.hpp — Tseitin chaining of XOR constraints into plain CNF.
//
// Fallback path for solvers without native XOR support: a parity constraint
// v1 ⊕ … ⊕ vn = rhs is split into a chain t_i ↔ t_{i-1} ⊕ v_i of 3-input
// XORs, each of which needs 4 CNF clauses, for a total of O(n) clauses and
// n-2 auxiliary variables (instead of the 2^(n-1) clauses of the direct
// encoding). Used by the bench_ablation_xor comparison against the native
// watched-variable XOR engine.

#include <vector>

#include "sat/interface.hpp"
#include "sat/types.hpp"

namespace tp::sat {

/// Add v1 ⊕ … ⊕ vn = rhs as chained CNF. Returns false iff the solver
/// became unsatisfiable.
bool add_xor_as_cnf(SolverInterface& solver, const std::vector<Var>& vars, bool rhs);

/// Create a fresh variable t with t ↔ (a ⊕ b) and return its positive
/// literal (4 clauses).
Lit tseitin_xor(SolverInterface& solver, Lit a, Lit b);

}  // namespace tp::sat
