#include "sat/preprocess.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tp::sat {

namespace {

// Internal work budgets of the optional phases, in clause-literal visits.
// They bound worst-case preprocessing time on adversarial instances; on
// the reconstruction encodings the phases converge long before these hit.
constexpr std::int64_t kSubsumptionBudget = 10'000'000;
constexpr std::int64_t kBveBudget = 20'000'000;
constexpr int kBveRounds = 8;

std::uint64_t clause_sig(const std::vector<Lit>& lits) {
  std::uint64_t sig = 0;
  for (Lit l : lits) sig |= std::uint64_t{1} << (l.code() & 63);
  return sig;
}

/// The whole pipeline over a private clause database with occurrence
/// lists. Occurrence lists are lazy: entries go stale when a clause is
/// deleted or strengthened, and every visitor re-checks membership.
class Engine {
 public:
  Engine(int num_vars, std::vector<std::vector<Lit>>&& clauses,
         const std::vector<std::pair<std::vector<Var>, bool>>& xors,
         const std::vector<char>& frozen, const PreprocessConfig& cfg)
      : cfg_(cfg),
        nvars_(num_vars),
        val_(static_cast<std::size_t>(num_vars), LBool::Undef),
        occ_(static_cast<std::size_t>(num_vars) * 2),
        frozen_(frozen),
        remap_(num_vars) {
    frozen_.resize(static_cast<std::size_t>(num_vars), 0);
    // XOR members are implicitly frozen: elimination reasons over the
    // clausal view cannot see parity constraints, so resolving an XOR
    // variable away would change the model set.
    for (const auto& [vars, rhs] : xors) {
      (void)rhs;
      for (Var v : vars) frozen_[static_cast<std::size_t>(v)] = 1;
    }
    stats_.vars_before = num_vars;
    stats_.clauses_before = static_cast<std::int64_t>(clauses.size());
    for (auto& c : clauses) {
      if (!ok_) break;
      insert_input(std::move(c));
    }
  }

  Preprocessor::Result run() {
    if (ok_) ok_ = propagate();
    if (ok_) subsume_all();
    if (ok_ && cfg_.probe_budget > 0) probe_all();
    if (ok_) bve_all();
    return finish();
  }

 private:
  bool interrupted() const {
    return cfg_.interrupt != nullptr &&
           cfg_.interrupt->load(std::memory_order_relaxed);
  }

  LBool value(Lit l) const {
    const LBool v = val_[static_cast<std::size_t>(l.var())];
    if (v == LBool::Undef) return LBool::Undef;
    return l.negated() ? ~v : v;
  }

  static bool contains(const std::vector<Lit>& lits, Lit l) {
    return std::binary_search(lits.begin(), lits.end(), l);
  }

  void proof_add(const std::vector<Lit>& lits) {
    if (cfg_.proof != nullptr) cfg_.proof->add(lits);
  }
  /// Unit clauses are never proof-deleted: they cost the checker nothing
  /// and keep its propagation at least as strong as the engine's.
  void proof_del(const std::vector<Lit>& lits) {
    if (cfg_.proof != nullptr && lits.size() > 1) cfg_.proof->del(lits);
  }
  void conflict() {
    if (ok_) {
      ok_ = false;
      proof_add({});
    }
  }

  struct PClause {
    std::vector<Lit> lits;  ///< sorted, duplicate-free
    std::uint64_t sig = 0;
    bool deleted = false;
  };

  // --- database maintenance ---

  void insert_input(std::vector<Lit>&& lits) {
    // Canonicalize defensively (PreprocessingSolver already did for its
    // own buffers, but run() is a public entry point).
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = lit_undef;
    for (Lit l : lits) {
      if (l == ~prev) return;  // tautology
      if (l == prev) continue;
      out.push_back(l);
      prev = l;
    }
    if (out.empty()) {
      conflict();
      return;
    }
    if (out.size() == 1) {
      // Input unit: already an axiom of the stream, no add needed.
      assign_unit(out[0]);
      return;
    }
    insert_clause(std::move(out));
  }

  void insert_clause(std::vector<Lit>&& lits) {
    const auto idx = static_cast<std::uint32_t>(db_.size());
    PClause c;
    c.sig = clause_sig(lits);
    c.lits = std::move(lits);
    for (Lit l : c.lits) occ_[static_cast<std::size_t>(l.code())].push_back(idx);
    db_.push_back(std::move(c));
  }

  void remove_clause(std::uint32_t idx, bool keep_in_proof = false) {
    PClause& c = db_[idx];
    if (c.deleted) return;
    c.deleted = true;
    // BVE parent clauses stay in the proof stream (deletions are optional
    // in DRAT): a retained clause only strengthens the checker's unit
    // propagation, and it is exactly what makes a later restoration
    // re-add of the witness a plain RUP add.
    if (!keep_in_proof) proof_del(c.lits);
    // Occurrence entries go stale; visitors re-check membership.
  }

  /// `true` iff the assignment is consistent so far.
  bool assign_unit(Lit l) {
    const LBool v = value(l);
    if (v == LBool::True) return true;
    if (v == LBool::False) {
      conflict();
      return false;
    }
    val_[static_cast<std::size_t>(l.var())] =
        l.negated() ? LBool::False : LBool::True;
    queue_.push_back(l);
    return true;
  }

  /// Remove `l` (known false at root) from clause `idx`. The shrunken
  /// clause is RUP (resolvent with the falsifying context), so it is
  /// emitted before the original is deleted.
  bool strengthen(std::uint32_t idx, Lit l) {
    PClause& c = db_[idx];
    scratch_.clear();
    for (Lit q : c.lits) {
      if (q != l) scratch_.push_back(q);
    }
    ++stats_.strengthened_clauses;
    if (scratch_.empty()) {
      conflict();
      return false;
    }
    proof_add(scratch_);
    if (scratch_.size() == 1) {
      const Lit unit = scratch_[0];
      remove_clause(idx);
      return assign_unit(unit);
    }
    proof_del(c.lits);
    c.lits = scratch_;
    c.sig = clause_sig(c.lits);
    return true;
  }

  /// Root unit propagation to fixpoint over the occurrence lists. After
  /// it returns true, no live clause mentions an assigned variable.
  bool propagate() {
    while (qhead_ < queue_.size()) {
      const Lit l = queue_[qhead_++];
      ++stats_.propagations;
      auto& sat_occ = occ_[static_cast<std::size_t>(l.code())];
      for (std::uint32_t idx : sat_occ) {
        PClause& c = db_[idx];
        if (c.deleted || !contains(c.lits, l)) continue;
        remove_clause(idx);
      }
      sat_occ.clear();
      auto& neg_occ = occ_[static_cast<std::size_t>((~l).code())];
      for (std::uint32_t idx : neg_occ) {
        PClause& c = db_[idx];
        if (c.deleted || !contains(c.lits, ~l)) continue;
        if (!strengthen(idx, ~l)) return false;
      }
      neg_occ.clear();
    }
    return true;
  }

  // --- subsumption / self-subsuming resolution ---

  static bool subset(const std::vector<Lit>& a, const std::vector<Lit>& b) {
    auto it = b.begin();
    for (Lit l : a) {
      it = std::lower_bound(it, b.end(), l);
      if (it == b.end() || *it != l) return false;
      ++it;
    }
    return true;
  }

  /// Every literal of `a` except `skip` is in `b`, and ~skip is in `b` —
  /// i.e. b ⊇ (a \ {skip}) ∪ {~skip}, the self-subsumption condition.
  static bool subset_with_flip(const std::vector<Lit>& a, Lit skip,
                               const std::vector<Lit>& b) {
    if (!contains(b, ~skip)) return false;
    auto it = b.begin();
    for (Lit l : a) {
      if (l == skip) continue;
      it = std::lower_bound(it, b.end(), l);
      if (it == b.end() || *it != l) return false;
      ++it;
    }
    return true;
  }

  void subsume_all() {
    std::int64_t budget = kSubsumptionBudget;
    for (std::uint32_t i = 0; i < db_.size() && budget > 0 && ok_; ++i) {
      if (interrupted()) return;
      if (db_[i].deleted) continue;
      if (!subsume_with(i, budget)) return;
    }
  }

  /// Use clause `i` to subsume or strengthen other clauses (backward
  /// subsumption). Returns ok_.
  bool subsume_with(std::uint32_t i, std::int64_t& budget) {
    // Copy: strengthening other clauses never touches clause i, but the
    // db_ vector itself must not be held by reference across mutation.
    const std::vector<Lit> base = db_[i].lits;
    const std::uint64_t sig = db_[i].sig;

    // Scan the shortest occurrence list among base's literals — every
    // superset of base occurs in all of them.
    Lit pivot = base[0];
    std::size_t best = occ_[static_cast<std::size_t>(pivot.code())].size();
    for (Lit l : base) {
      const std::size_t n = occ_[static_cast<std::size_t>(l.code())].size();
      if (n < best) {
        best = n;
        pivot = l;
      }
    }
    for (std::uint32_t idx : occ_[static_cast<std::size_t>(pivot.code())]) {
      if (idx == i) continue;
      PClause& d = db_[idx];
      if (d.deleted || !contains(d.lits, pivot)) continue;
      budget -= static_cast<std::int64_t>(d.lits.size());
      if (d.lits.size() < base.size() || (sig & ~d.sig) != 0) continue;
      if (subset(base, d.lits)) {
        remove_clause(idx);
        ++stats_.subsumed_clauses;
      }
    }

    // Self-subsuming resolution: find D ⊇ (base \ {l}) ∪ {~l} and drop
    // ~l from D (D shrinks to the resolvent of base and D on l).
    for (Lit l : base) {
      const std::uint64_t flip_sig =
          (sig & ~(std::uint64_t{1} << (l.code() & 63))) |
          (std::uint64_t{1} << ((~l).code() & 63));
      for (std::uint32_t idx : occ_[static_cast<std::size_t>((~l).code())]) {
        PClause& d = db_[idx];
        if (d.deleted || !contains(d.lits, ~l)) continue;
        budget -= static_cast<std::int64_t>(d.lits.size());
        if (d.lits.size() < base.size() || (flip_sig & ~d.sig) != 0) continue;
        if (subset_with_flip(base, l, d.lits)) {
          if (!strengthen(idx, ~l)) return false;
        }
      }
      if (budget <= 0) break;
    }
    if (qhead_ < queue_.size()) return propagate();
    return true;
  }

  // --- failed-literal probing ---

  void probe_all() {
    std::int64_t budget = cfg_.probe_budget;
    for (Var v = 0; v < nvars_ && budget > 0 && ok_; ++v) {
      if (interrupted()) return;
      if (val_[static_cast<std::size_t>(v)] != LBool::Undef) continue;
      const Lit pos = mk_lit(v);
      if (occ_[static_cast<std::size_t>(pos.code())].empty() &&
          occ_[static_cast<std::size_t>((~pos).code())].empty()) {
        continue;
      }
      for (int phase = 0; phase < 2 && ok_; ++phase) {
        if (val_[static_cast<std::size_t>(v)] != LBool::Undef) break;
        const Lit l(v, phase == 1);
        ++stats_.probes;
        if (probe(l, budget)) {
          // Probing l hit a conflict by clause-only unit propagation, so
          // {~l} is RUP against the current database.
          ++stats_.failed_literals;
          proof_add({~l});
          if (!assign_unit(~l) || !propagate()) return;
        }
        if (budget <= 0) return;
      }
    }
  }

  /// Trial-assign `l` and run clause-only unit propagation without
  /// touching the database. Returns true iff a conflict was derived.
  /// Root-assigned variables never appear in live clauses, so the trial
  /// values can share val_ with the root assignment; the trail undoes
  /// exactly the trial part.
  bool probe(Lit start, std::int64_t& budget) {
    ptrail_.clear();
    trial_assign(start);
    bool found_conflict = false;
    std::size_t head = 0;
    while (head < ptrail_.size() && !found_conflict && budget > 0) {
      const Lit p = ptrail_[head++];
      ++stats_.propagations;
      for (std::uint32_t idx : occ_[static_cast<std::size_t>((~p).code())]) {
        const PClause& c = db_[idx];
        if (c.deleted || !contains(c.lits, ~p)) continue;
        budget -= static_cast<std::int64_t>(c.lits.size());
        Lit unassigned = lit_undef;
        int num_unassigned = 0;
        bool satisfied = false;
        for (Lit q : c.lits) {
          const LBool v = value(q);
          if (v == LBool::True) {
            satisfied = true;
            break;
          }
          if (v == LBool::Undef) {
            if (++num_unassigned > 1) break;
            unassigned = q;
          }
        }
        if (satisfied || num_unassigned > 1) continue;
        if (num_unassigned == 0) {
          found_conflict = true;
          break;
        }
        trial_assign(unassigned);
      }
    }
    for (Lit p : ptrail_) {
      val_[static_cast<std::size_t>(p.var())] = LBool::Undef;
    }
    return found_conflict;
  }

  void trial_assign(Lit l) {
    val_[static_cast<std::size_t>(l.var())] =
        l.negated() ? LBool::False : LBool::True;
    ptrail_.push_back(l);
  }

  // --- bounded variable elimination ---

  /// Live clause indices containing `l`, compacting the occurrence list
  /// as a side effect.
  std::vector<std::uint32_t> live_occ(Lit l) {
    auto& list = occ_[static_cast<std::size_t>(l.code())];
    std::vector<std::uint32_t> out;
    std::size_t keep = 0;
    for (std::uint32_t idx : list) {
      const PClause& c = db_[idx];
      if (c.deleted || !contains(c.lits, l)) continue;
      list[keep++] = idx;
      out.push_back(idx);
    }
    list.resize(keep);
    return out;
  }

  /// Resolvent of c (containing pos) and d (containing ~pos) on pos.
  /// Returns false when the resolvent is a tautology.
  bool resolve(const std::vector<Lit>& c, const std::vector<Lit>& d, Lit pos,
               std::vector<Lit>& out) {
    out.clear();
    for (Lit l : c) {
      if (l != pos) out.push_back(l);
    }
    for (Lit l : d) {
      if (l != ~pos) out.push_back(l);
    }
    std::sort(out.begin(), out.end());
    Lit prev = lit_undef;
    std::size_t keep = 0;
    for (Lit l : out) {
      if (l == ~prev) return false;  // tautological resolvent
      if (l == prev) continue;
      out[keep++] = l;
      prev = l;
    }
    out.resize(keep);
    return true;
  }

  void bve_all() {
    std::int64_t budget = kBveBudget;
    bool changed = true;
    for (int round = 0; round < kBveRounds && changed && ok_ && budget > 0;
         ++round) {
      changed = false;
      for (Var v = 0; v < nvars_ && ok_ && budget > 0; ++v) {
        if (interrupted()) return;
        if (frozen_[static_cast<std::size_t>(v)] ||
            val_[static_cast<std::size_t>(v)] != LBool::Undef) {
          continue;
        }
        if (try_eliminate(v, budget)) changed = true;
      }
    }
  }

  bool try_eliminate(Var v, std::int64_t& budget) {
    const Lit pos = mk_lit(v);
    const auto p_occ = live_occ(pos);
    const auto n_occ = live_occ(~pos);
    if (p_occ.empty() && n_occ.empty()) return false;  // Dropped later
    if (p_occ.size() > cfg_.occ_limit && n_occ.size() > cfg_.occ_limit) {
      return false;
    }

    // Count resolvents; keep the elimination only when it does not grow
    // the database beyond the removed clauses plus the growth allowance
    // (pure literals are the zero-resolvent special case).
    const std::size_t limit =
        p_occ.size() + n_occ.size() +
        static_cast<std::size_t>(std::max(0, cfg_.bve_growth));
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> tmp;
    for (std::uint32_t pi : p_occ) {
      for (std::uint32_t ni : n_occ) {
        budget -= static_cast<std::int64_t>(db_[pi].lits.size() +
                                            db_[ni].lits.size());
        if (budget <= 0) return false;
        if (!resolve(db_[pi].lits, db_[ni].lits, pos, tmp)) continue;
        if (resolvents.size() + 1 > limit) return false;
        resolvents.push_back(tmp);
      }
    }

    // Commit. Resolvents are RUP while both parents are still present,
    // so the adds go out before any parent deletion.
    for (const auto& r : resolvents) proof_add(r);

    // Stash both phases' clauses. The replay phase (`stash`) drives the
    // SatELite model-extension rule — it must carry the chosen literal,
    // and with no resolvents (pure literal) only the non-empty side may
    // be chosen. The other phase rides along so an on-demand restoration
    // can re-introduce the variable's full defining clause set.
    const bool stash_pos =
        n_occ.empty() || (!p_occ.empty() && p_occ.size() <= n_occ.size());
    const auto& stash_side = stash_pos ? p_occ : n_occ;
    const auto& other_side = stash_pos ? n_occ : p_occ;
    std::vector<std::vector<Lit>> stash;
    std::vector<std::vector<Lit>> others;
    stash.reserve(stash_side.size());
    others.reserve(other_side.size());
    for (std::uint32_t idx : stash_side) {
      stats_.witness_bytes +=
          static_cast<std::int64_t>(db_[idx].lits.size() * sizeof(Lit));
      stash.push_back(db_[idx].lits);
    }
    for (std::uint32_t idx : other_side) {
      stats_.witness_bytes +=
          static_cast<std::int64_t>(db_[idx].lits.size() * sizeof(Lit));
      others.push_back(db_[idx].lits);
    }
    remap_.set_eliminated(stash_pos ? pos : ~pos, std::move(stash),
                          std::move(others));

    const bool keep_in_proof = cfg_.proof != nullptr;
    for (std::uint32_t idx : p_occ) remove_clause(idx, keep_in_proof);
    for (std::uint32_t idx : n_occ) remove_clause(idx, keep_in_proof);
    ++stats_.vars_eliminated;
    stats_.bve_clauses_removed +=
        static_cast<std::int64_t>(p_occ.size() + n_occ.size());

    for (auto& r : resolvents) {
      ++stats_.bve_resolvents_added;
      if (r.size() == 1) {
        if (!assign_unit(r[0])) return true;
      } else {
        insert_clause(std::move(r));
      }
    }
    if (qhead_ < queue_.size()) propagate();
    return true;
  }

  // --- final fates ---

  Preprocessor::Result finish() {
    Preprocessor::Result result;
    result.stats = stats_;
    result.ok = ok_;
    if (!ok_) {
      result.remap = std::move(remap_);
      return result;
    }
    for (Var v = 0; v < nvars_; ++v) {
      const LBool val = val_[static_cast<std::size_t>(v)];
      if (val != LBool::Undef) {
        remap_.set_fixed(v, val == LBool::True);
        ++result.stats.vars_fixed;
      }
    }
    std::vector<char> occurs(static_cast<std::size_t>(nvars_), 0);
    for (const auto& c : db_) {
      if (c.deleted) continue;
      for (Lit l : c.lits) occurs[static_cast<std::size_t>(l.var())] = 1;
      result.clauses.push_back(c.lits);
    }
    result.stats.clauses_after =
        static_cast<std::int64_t>(result.clauses.size());
    result.stats.vars_after = remap_.assign_dense([&](Var v) {
      return frozen_[static_cast<std::size_t>(v)] != 0 ||
             occurs[static_cast<std::size_t>(v)] != 0;
    });
    result.remap = std::move(remap_);
    return result;
  }

  const PreprocessConfig& cfg_;
  const int nvars_;
  bool ok_ = true;

  std::vector<PClause> db_;
  std::vector<LBool> val_;
  std::vector<std::vector<std::uint32_t>> occ_;  ///< by Lit::code, lazy
  std::vector<char> frozen_;
  VarRemapper remap_;

  std::vector<Lit> queue_;  ///< root units awaiting propagation
  std::size_t qhead_ = 0;
  std::vector<Lit> ptrail_;   ///< probe trial trail
  std::vector<Lit> scratch_;  ///< strengthen buffer

  PreprocessStats stats_;
};

}  // namespace

Preprocessor::Result Preprocessor::run(
    int num_vars, std::vector<std::vector<Lit>> clauses,
    const std::vector<std::pair<std::vector<Var>, bool>>& xors,
    const std::vector<char>& frozen, const PreprocessConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  Engine engine(num_vars, std::move(clauses), xors, frozen, cfg);
  Result result = engine.run();
  result.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

// --- RemapProofSink ---

const std::vector<Lit>& RemapProofSink::translate(
    const std::vector<Lit>& inner) {
  buf_.clear();
  for (Lit l : inner) {
    const Var outer = remap_->outer_of(l.var());
    // Backend-internal auxiliaries (outer < 0) cannot reach the proof
    // stream: proof mode disables XOR chunking, the one source of them.
    assert(outer >= 0);
    buf_.push_back(Lit(outer, l.negated()));
  }
  return buf_;
}

void RemapProofSink::axiom(const std::vector<Lit>& lits) {
  if (implied_axioms_) {
    outer_->add(translate(lits));
  } else {
    outer_->axiom(translate(lits));
  }
}

void RemapProofSink::add(const std::vector<Lit>& lits) {
  outer_->add(translate(lits));
}

void RemapProofSink::del(const std::vector<Lit>& lits) {
  outer_->del(translate(lits));
}

// --- PreprocessingSolver ---

PreprocessingSolver::PreprocessingSolver(SolverBackend backend,
                                         const SolverOptions& base,
                                         const PortfolioOptions& portfolio)
    : backend_(backend), opts_(base), popts_(portfolio) {
  if (opts_.proof != nullptr && opts_.use_gauss) {
    // Mirror the inner solver's restriction at construction time rather
    // than at the (lazy) first solve.
    throw std::invalid_argument(
        "SolverOptions: proof logging is incompatible with use_gauss");
  }
}

PreprocessingSolver::~PreprocessingSolver() = default;

PreprocessingSolver::PreprocessingSolver(const PreprocessingSolver& o)
    : backend_(o.backend_),
      opts_(o.opts_),
      popts_(o.popts_),
      built_(o.built_),
      ok_(o.ok_),
      next_var_(o.next_var_),
      pending_clauses_(o.pending_clauses_),
      pending_xors_(o.pending_xors_),
      frozen_(o.frozen_),
      pending_fixed_(o.pending_fixed_),
      remap_(o.remap_),
      pstats_(o.pstats_),
      restored_vars_(o.restored_vars_) {
  opts_.proof = nullptr;  // a proof sink serves exactly one instance
  // The clone's inner backend starts with fresh SolverStats, so the
  // front-end work folded into stats() must not travel either: a batch
  // summing per-worker stats would otherwise count the (single) master
  // preprocessing run once per worker.
  pstats_.propagations = 0;
  if (o.inner_ != nullptr) inner_ = o.inner_->clone();
}

std::unique_ptr<SolverInterface> PreprocessingSolver::clone() const {
  return std::unique_ptr<SolverInterface>(new PreprocessingSolver(*this));
}

void PreprocessingSolver::proof_empty() {
  if (opts_.proof == nullptr || proof_empty_done_) return;
  proof_empty_done_ = true;
  opts_.proof->add({});
}

Var PreprocessingSolver::new_var() {
  if (!built_) {
    frozen_.push_back(0);
    pending_fixed_.push_back(LBool::Undef);
    return next_var_++;
  }
  // Post-preprocessing variables get an outer/inner pair straight away
  // (nothing to eliminate — they have no clauses yet).
  const Var inner = inner_ != nullptr ? inner_->new_var()
                                      : static_cast<Var>(remap_.num_inner());
  return remap_.add_mapped_var(inner);
}

int PreprocessingSolver::num_vars() const {
  return built_ ? remap_.num_outer() : next_var_;
}

bool PreprocessingSolver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (!built_) {
    if (opts_.proof != nullptr) opts_.proof->axiom(lits);
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = lit_undef;
    for (Lit l : lits) {
      assert(l.var() < next_var_);
      if (l == ~prev) return true;  // tautology
      if (l == prev) continue;
      out.push_back(l);
      prev = l;
    }
    if (out.empty()) {
      ok_ = false;
      proof_empty();
      return false;
    }
    if (out.size() == 1) {
      // Track direct units so fixed_value() answers before the build,
      // and catch the trivial l / ~l conflict early.
      auto& fv = pending_fixed_[static_cast<std::size_t>(out[0].var())];
      const LBool want = out[0].negated() ? LBool::False : LBool::True;
      if (fv != LBool::Undef && fv != want) {
        ok_ = false;
        proof_empty();
        return false;
      }
      fv = want;
    }
    pending_clauses_.push_back(std::move(out));
    return true;
  }
  if (inner_ == nullptr) return false;  // refuted during preprocessing
  // A late clause over removed variables re-introduces them (AllSAT
  // blocking clauses over eliminated cycle variables land here).
  for (Lit l : lits) restore_outer(l.var());
  if (!ok_) return false;
  switch (remap_.translate_clause(lits, &scratch_)) {
    case VarRemapper::ClauseFate::Keep:
      // The inner solver reports the folded clause as its axiom; the
      // proof adapter translates it back to outer numbering.
      return inner_->add_clause(scratch_);
    case VarRemapper::ClauseFate::Satisfied:
      if (opts_.proof != nullptr) opts_.proof->axiom(lits);
      return true;
    case VarRemapper::ClauseFate::Empty:
      if (opts_.proof != nullptr) opts_.proof->axiom(lits);
      ok_ = false;
      proof_empty();
      return false;
  }
  return false;  // unreachable
}

bool PreprocessingSolver::add_xor(std::vector<Var> vars, bool rhs) {
  if (!ok_) return false;
  if (!built_) {
    // Canonicalize: duplicated variables cancel pairwise. (No folding —
    // level-0 knowledge lives in the preprocessor, which runs later.)
    std::sort(vars.begin(), vars.end());
    std::vector<Var> out;
    for (std::size_t i = 0; i < vars.size();) {
      assert(vars[i] < next_var_);
      if (i + 1 < vars.size() && vars[i] == vars[i + 1]) {
        i += 2;  // x XOR x = 0
        continue;
      }
      out.push_back(vars[i]);
      ++i;
    }
    if (out.empty()) {
      if (rhs) {
        if (opts_.proof != nullptr) opts_.proof->axiom({});
        ok_ = false;
        proof_empty();
        return false;
      }
      return true;
    }
    if (opts_.proof != nullptr) {
      if (out.size() > kProofMaxXorArity) {
        throw std::invalid_argument(
            "add_xor: XOR arity exceeds kProofMaxXorArity under proof "
            "logging");
      }
      // One axiom per parity-violating assignment, exactly as the
      // unwrapped solver emits them (outer numbering).
      const std::size_t n = out.size();
      std::vector<Lit> clause(n, lit_undef);
      for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << n); ++mask) {
        bool parity = false;
        for (std::size_t i = 0; i < n; ++i) parity ^= ((mask >> i) & 1) != 0;
        if (parity == rhs) continue;
        for (std::size_t i = 0; i < n; ++i) {
          clause[i] = Lit(out[i], /*negated=*/((mask >> i) & 1) != 0);
        }
        opts_.proof->axiom(clause);
      }
    }
    if (out.size() == 1) {
      // A unit parity constraint is a unit clause; storing it as one lets
      // the preprocessor fold it instead of pinning the variable frozen.
      return add_clause_unlogged({Lit(out[0], /*negated=*/!rhs)});
    }
    pending_xors_.emplace_back(std::move(out), rhs);
    return true;
  }
  if (inner_ == nullptr) return false;
  for (Var v : vars) restore_outer(v);
  if (!ok_) return false;
  std::vector<Var> inner_vars;
  bool inner_rhs = false;
  switch (remap_.translate_xor(vars, rhs, &inner_vars, &inner_rhs)) {
    case VarRemapper::ClauseFate::Keep:
      return inner_->add_xor(std::move(inner_vars), inner_rhs);
    case VarRemapper::ClauseFate::Satisfied:
      return true;
    case VarRemapper::ClauseFate::Empty:
      // Same trust boundary as the unwrapped solver's degenerate fold.
      if (opts_.proof != nullptr) opts_.proof->axiom({});
      ok_ = false;
      proof_empty();
      return false;
  }
  return false;  // unreachable
}

bool PreprocessingSolver::add_clause_unlogged(std::vector<Lit> lits) {
  // Pre-build insertion that skips the axiom hook (the caller already
  // logged the constraint in another form, e.g. an XOR expansion).
  ProofSink* saved = opts_.proof;
  opts_.proof = nullptr;
  const bool ok = add_clause(std::move(lits));
  opts_.proof = saved;
  if (!ok && !ok_) proof_empty();
  return ok;
}

void PreprocessingSolver::freeze(Var v) {
  if (!built_) {
    frozen_[static_cast<std::size_t>(v)] = 1;
  }
  // Post-build freezes are inert: the variable either survived (and
  // stays usable) or is already gone — misuse surfaces at translation.
}

void PreprocessingSolver::assume(Lit l) { assumptions_.push_back(l); }

void PreprocessingSolver::build(const SolveLimits& limits) {
  built_ = true;
  obs::Tracer::Span span;
  if (opts_.tracer != nullptr) span = opts_.tracer->span("solver.preprocess");

  PreprocessConfig cfg;
  cfg.probe_budget = opts_.preprocess_probe_budget;
  cfg.bve_growth = opts_.preprocess_bve_growth;
  cfg.occ_limit = opts_.preprocess_occ_limit;
  cfg.interrupt = limits.interrupt;
  cfg.proof = opts_.proof;

  Preprocessor::Result result = Preprocessor::run(
      next_var_, std::move(pending_clauses_), pending_xors_, frozen_, cfg);
  pending_clauses_.clear();
  pending_fixed_.clear();
  frozen_.clear();
  pstats_ = result.stats;
  remap_ = std::move(result.remap);

  if (!result.ok) {
    // The preprocessor already emitted the empty clause.
    ok_ = false;
    proof_empty_done_ = opts_.proof != nullptr;
    pending_xors_.clear();
  } else {
    SolverOptions inner_opts = opts_;
    inner_opts.preprocess = false;
    if (opts_.proof != nullptr) {
      proof_adapter_ = std::make_unique<RemapProofSink>(opts_.proof, &remap_);
      // Everything the load phase reports as an axiom is implied by the
      // outer stream (preprocessed clauses were added there; folded XOR
      // expansions are unit-strengthened originals), so it goes out as
      // checkable adds — file-based DRAT stays verifiable end to end.
      proof_adapter_->set_implied_axioms(true);
      inner_opts.proof = proof_adapter_.get();
    }
    inner_ = SolverFactory::make(backend_, inner_opts, popts_);
    for (std::int64_t i = 0; i < pstats_.vars_after; ++i) inner_->new_var();
    for (const auto& c : result.clauses) {
      scratch_.clear();
      for (Lit l : c) scratch_.push_back(remap_.inner_of(l));
      if (!inner_->add_clause(scratch_)) break;
    }
    std::vector<Var> inner_vars;
    bool inner_rhs = false;
    for (const auto& [vars, rhs] : pending_xors_) {
      if (!inner_->okay()) break;
      switch (remap_.translate_xor(vars, rhs, &inner_vars, &inner_rhs)) {
        case VarRemapper::ClauseFate::Keep:
          inner_->add_xor(inner_vars, inner_rhs);
          break;
        case VarRemapper::ClauseFate::Satisfied:
          break;
        case VarRemapper::ClauseFate::Empty:
          // The violated parity's expansion clause is falsified by the
          // derived units, so the empty clause is RUP here.
          ok_ = false;
          proof_empty();
          break;
      }
      if (!ok_) break;
    }
    pending_xors_.clear();
    if (proof_adapter_ != nullptr) proof_adapter_->set_implied_axioms(false);
  }

  record_metrics();
  if (span.active()) {
    span.add("vars_before", pstats_.vars_before);
    span.add("vars_after", pstats_.vars_after);
    span.add("vars_eliminated", pstats_.vars_eliminated);
    span.add("vars_fixed", pstats_.vars_fixed);
    span.add("clauses_before", pstats_.clauses_before);
    span.add("clauses_after", pstats_.clauses_after);
    span.add("resolvents_added", pstats_.bve_resolvents_added);
    span.add("subsumed", pstats_.subsumed_clauses);
    span.add("strengthened", pstats_.strengthened_clauses);
    span.add("failed_literals", pstats_.failed_literals);
    span.add("witness_bytes", pstats_.witness_bytes);
    span.add("density", pstats_.remap_density());
    span.add("seconds", pstats_.seconds);
  }
}

void PreprocessingSolver::record_metrics() const {
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& runs = reg.counter("solver.preprocess.runs");
  static obs::Counter& eliminated =
      reg.counter("solver.preprocess.vars_eliminated");
  static obs::Counter& fixed = reg.counter("solver.preprocess.vars_fixed");
  static obs::Counter& added =
      reg.counter("solver.preprocess.resolvents_added");
  static obs::Counter& removed =
      reg.counter("solver.preprocess.clauses_removed");
  static obs::Counter& subsumed = reg.counter("solver.preprocess.subsumed");
  static obs::Counter& strengthened =
      reg.counter("solver.preprocess.strengthened");
  static obs::Counter& failed_lits =
      reg.counter("solver.preprocess.failed_literals");
  static obs::Counter& witness =
      reg.counter("solver.preprocess.witness_bytes");
  static obs::Gauge& before = reg.gauge("solver.preprocess.vars_before");
  static obs::Gauge& after = reg.gauge("solver.preprocess.vars_after");
  runs.add(1);
  witness.add(pstats_.witness_bytes);
  eliminated.add(pstats_.vars_eliminated);
  fixed.add(pstats_.vars_fixed);
  added.add(pstats_.bve_resolvents_added);
  removed.add(pstats_.bve_clauses_removed);
  subsumed.add(pstats_.subsumed_clauses);
  strengthened.add(pstats_.strengthened_clauses);
  failed_lits.add(pstats_.failed_literals);
  before.set(pstats_.vars_before);
  after.set(pstats_.vars_after);
}

void PreprocessingSolver::restore_outer(Var v) {
  switch (remap_.fate(v)) {
    case VarRemapper::Fate::Mapped:
    case VarRemapper::Fate::FixedTrue:
    case VarRemapper::Fate::FixedFalse:
      return;  // usable as-is (fixed variables fold at translation)
    case VarRemapper::Fate::Dropped:
      // Occurred nowhere after preprocessing: a fresh inner index is the
      // whole restoration.
      remap_.map_var(v, inner_->new_var());
      return;
    case VarRemapper::Fate::Eliminated:
      break;
  }

  // Re-introduce the eliminated variable: fresh inner index first (the
  // witness clauses mention v), then make every other variable of the
  // witness set usable — an eliminated one was eliminated strictly later
  // (it was live in a clause of v's stash), so the recursion terminates —
  // and finally re-add the witness clauses to the inner solver. In proof
  // mode the witnesses were never deleted from the outer stream, so the
  // inner axiom events are forwarded as plain RUP adds
  // (set_implied_axioms), keeping file-based DRAT checkable.
  const bool outermost = restore_depth_ == 0;
  ++restore_depth_;
  if (outermost && proof_adapter_ != nullptr) {
    proof_adapter_->set_implied_axioms(true);
  }

  remap_.restore(v, inner_->new_var());
  ++restored_vars_;
  static obs::Counter& restored_m =
      obs::MetricsRegistry::global().counter("solver.preprocess.restored_vars");
  restored_m.add(1);

  const VarRemapper::Elimination& elim = remap_.elimination(v);
  for (const auto* side : {&elim.clauses, &elim.others}) {
    for (const auto& witness : *side) {
      for (Lit l : witness) {
        if (l.var() != v) restore_outer(l.var());
      }
    }
  }
  std::vector<Lit> inner_clause;
  for (const auto* side : {&elim.clauses, &elim.others}) {
    for (const auto& witness : *side) {
      switch (remap_.translate_clause(witness, &inner_clause)) {
        case VarRemapper::ClauseFate::Keep:
          if (!inner_->add_clause(inner_clause)) ok_ = inner_->okay();
          break;
        case VarRemapper::ClauseFate::Satisfied:
          break;  // folded away by fixed variables
        case VarRemapper::ClauseFate::Empty:
          // Unreachable: v itself survives translation. Defensive only.
          ok_ = false;
          proof_empty();
          break;
      }
    }
  }

  --restore_depth_;
  if (outermost && proof_adapter_ != nullptr) {
    proof_adapter_->set_implied_axioms(false);
  }
}

Status PreprocessingSolver::solve(const SolveLimits& limits) {
  if (!built_ && ok_) build(limits);
  std::vector<Lit> assumptions = std::move(assumptions_);
  assumptions_.clear();
  failed_.clear();
  if (!ok_ || inner_ == nullptr || !inner_->okay()) return Status::Unsat;

  std::vector<Lit> inner_assumptions;
  inner_assumptions.reserve(assumptions.size());
  for (Lit l : assumptions) {
    // An assumption on a removed variable re-introduces it (the freeze()
    // contract is a performance hint, not a correctness one).
    restore_outer(l.var());
    if (!ok_) return Status::Unsat;
    switch (remap_.fate(l.var())) {
      case VarRemapper::Fate::Mapped:
        inner_assumptions.push_back(remap_.inner_of(l));
        break;
      case VarRemapper::Fate::FixedTrue:
      case VarRemapper::Fate::FixedFalse: {
        const bool fixed_true =
            remap_.fate(l.var()) == VarRemapper::Fate::FixedTrue;
        if (fixed_true != l.negated()) break;  // assumption already holds
        // The root-level unit ~l refutes the assumption outright.
        failed_ = {~l};
        if (opts_.proof != nullptr) opts_.proof->add(failed_);
        return Status::Unsat;
      }
      case VarRemapper::Fate::Eliminated:
      case VarRemapper::Fate::Dropped:
        break;  // unreachable: restore_outer just mapped it
    }
  }

  const Status status = inner_->solve_assuming(inner_assumptions, limits);
  if (status == Status::Sat) {
    model_ = remap_.extend_model(
        [this](Var inner) { return inner_->model(inner); });
  } else if (status == Status::Unsat) {
    for (Lit il : inner_->failed()) {
      failed_.push_back(remap_.outer_lit_of(il));
    }
  }
  return status;
}

LBool PreprocessingSolver::model(Var v) const {
  return model_[static_cast<std::size_t>(v)];
}

bool PreprocessingSolver::okay() const {
  if (!ok_) return false;
  if (!built_) return true;
  return inner_ != nullptr && inner_->okay();
}

LBool PreprocessingSolver::fixed_value(Var v) const {
  if (!built_) return pending_fixed_[static_cast<std::size_t>(v)];
  switch (remap_.fate(v)) {
    case VarRemapper::Fate::FixedTrue:
      return LBool::True;
    case VarRemapper::Fate::FixedFalse:
      return LBool::False;
    case VarRemapper::Fate::Mapped:
      return inner_ != nullptr ? inner_->fixed_value(remap_.inner_of(v))
                               : LBool::Undef;
    case VarRemapper::Fate::Eliminated:
    case VarRemapper::Fate::Dropped:
      return LBool::Undef;
  }
  return LBool::Undef;
}

bool PreprocessingSolver::simplify() {
  if (!built_) return ok_;
  if (!ok_ || inner_ == nullptr) return false;
  return inner_->simplify();
}

void PreprocessingSolver::prepare() {
  if (!built_ && ok_) build({});
}

bool PreprocessingSolver::inprocess() {
  if (!built_) return ok_;
  if (!ok_ || inner_ == nullptr) return false;
  return inner_->inprocess();
}

std::size_t PreprocessingSolver::retained_bytes() const {
  if (inner_ != nullptr) return inner_->retained_bytes();
  std::size_t bytes = 0;
  for (const auto& c : pending_clauses_) bytes += c.size() * sizeof(Lit);
  return bytes;
}

bool PreprocessingSolver::var_eliminated(Var v) const {
  return built_ && v < remap_.num_outer() &&
         remap_.fate(v) == VarRemapper::Fate::Eliminated;
}

SolverStats PreprocessingSolver::stats() const {
  SolverStats s = inner_ != nullptr ? inner_->stats() : SolverStats{};
  s.propagations += pstats_.propagations;  // front-end UP work (see hpp)
  return s;
}

std::size_t PreprocessingSolver::num_clauses() const {
  if (!built_) return pending_clauses_.size();
  return inner_ != nullptr ? inner_->num_clauses() : 0;
}

std::size_t PreprocessingSolver::num_xors() const {
  if (!built_) return pending_xors_.size();
  return inner_ != nullptr ? inner_->num_xors() : 0;
}

std::size_t PreprocessingSolver::num_learnts() const {
  return inner_ != nullptr ? inner_->num_learnts() : 0;
}

void PreprocessingSolver::set_tracer(obs::Tracer* tracer) {
  opts_.tracer = tracer;
  if (inner_ != nullptr) inner_->set_tracer(tracer);
}

}  // namespace tp::sat
