#pragma once
// preprocess.hpp — a SatELite-style CNF preprocessing front-end.
//
// The reconstruction encodings hand the CDCL loop a CNF whose shape the
// encoder chose for convenience, not for search: Sinz/totalizer
// cardinality ballast, XOR-to-CNF expansion auxiliaries and presolve
// leftovers inflate the variable range and the watch tables. This module
// runs the classic preprocessing pipeline once, between encoding and the
// first solve:
//
//   1. root unit propagation to fixpoint (clauses strengthened in place);
//   2. backward subsumption and self-subsuming resolution (signature
//      pre-filter over occurrence lists, operation-budgeted);
//   3. failed-literal probing (clause-only unit propagation under a trial
//      assignment, budgeted in clause-literal visits; a conflict makes
//      the negation a permanent unit) — pure-literal elimination falls
//      out of step 4 as the zero-resolvent case;
//   4. bounded variable elimination: resolve a variable away when the
//      non-tautological resolvent count does not exceed the clauses
//      removed plus a growth allowance, stashing the clauses of one phase
//      for model reconstruction (sat/remap.hpp).
//
// Everything is DRAT-correct: strengthened clauses, resolvents and failed
// literals are emitted as `add` ops (each is RUP at its emission point),
// removed clauses as `del` ops, so an UNSAT answer from the preprocessed
// solver still certifies against the original formula.
//
// PreprocessingSolver wraps any SolverInterface backend behind the same
// interface: it buffers the formula, runs the Preprocessor at the first
// solve() (or at prepare(), for template masters that want the cost paid
// before clone()), renumbers the survivors densely (VarRemapper) and
// builds the inner backend over the compacted instance. Models, failed()
// cores and later-added constraints are translated at the boundary.
// Variables of XOR constraints are frozen implicitly — elimination
// reasons over the clausal view cannot see parity constraints.
//
// freeze() (interface.hpp) is a performance contract here, not a
// correctness one: when a late clause, XOR or assumption mentions a
// variable that preprocessing removed, the wrapper *restores* it — the
// variable gets a fresh inner index and its stashed witness clauses
// (both phases of the eliminated variable's occurrence set) are re-added
// to the inner solver, recursively restoring any eliminated variable a
// witness clause mentions (always eliminated strictly later, so the
// recursion terminates). In proof mode the witness clauses were never
// deleted from the DRAT stream (BVE parent deletions are suppressed —
// deletions are optional in DRAT), so each re-add is a plain RUP add and
// UNSAT answers remain certifiable against the original formula. This is
// what lets a warm template master eliminate its cycle variables and
// still serve AllSAT blocking clauses over them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/drat.hpp"
#include "sat/interface.hpp"
#include "sat/remap.hpp"
#include "sat/solver.hpp"

namespace tp::obs {
class Tracer;
}

namespace tp::sat {

/// Counters of one preprocessing run (also mirrored into obs::metrics
/// under "solver.preprocess.*" by PreprocessingSolver).
struct PreprocessStats {
  std::int64_t vars_before = 0;       ///< outer variables seen
  std::int64_t vars_after = 0;        ///< dense inner variables
  std::int64_t vars_fixed = 0;        ///< roots units (input + derived)
  std::int64_t vars_eliminated = 0;   ///< removed by BVE / pure literals
  std::int64_t clauses_before = 0;
  std::int64_t clauses_after = 0;
  std::int64_t bve_resolvents_added = 0;
  std::int64_t bve_clauses_removed = 0;
  std::int64_t subsumed_clauses = 0;
  std::int64_t strengthened_clauses = 0;  ///< self-subsumption + unit strengthening
  std::int64_t failed_literals = 0;
  std::int64_t probes = 0;            ///< literals probed
  /// Bytes held by the elimination witness stashes (both phases) that
  /// model reconstruction and on-demand restoration replay from.
  std::int64_t witness_bytes = 0;
  /// Unit-propagation assignments performed by the front-end (root UP to
  /// fixpoint plus the probing trials) — the same unit of work the CDCL
  /// loop's SolverStats::propagations counts, and folded into it by
  /// PreprocessingSolver::stats() so throughput rates stay comparable
  /// across preprocessed and raw runs.
  std::int64_t propagations = 0;
  double seconds = 0.0;

  /// Surviving fraction of the variable range (1.0 = nothing removed).
  double remap_density() const {
    return vars_before > 0
               ? static_cast<double>(vars_after) / static_cast<double>(vars_before)
               : 1.0;
  }
};

/// Knobs of one preprocessing run (a slice of SolverConfig plus the
/// run-scoped wiring).
struct PreprocessConfig {
  std::int64_t probe_budget = 2'000'000;
  int bve_growth = 0;
  std::size_t occ_limit = 30;
  /// Cooperative cancellation: optional phases (subsumption, probing,
  /// BVE) stop early when set; the result is still sound, just less
  /// reduced.
  const std::atomic<bool>* interrupt = nullptr;
  /// Outer-numbering proof sink for the preprocessing derivation stream.
  ProofSink* proof = nullptr;
};

/// One-shot CNF preprocessor. See the file comment for the pipeline.
class Preprocessor {
 public:
  struct Result {
    bool ok = true;  ///< false: formula refuted during preprocessing
    /// Surviving clauses, outer numbering, free of fixed variables,
    /// every clause of size >= 2.
    std::vector<std::vector<Lit>> clauses;
    /// Fates of every outer variable, dense mapping already assigned.
    VarRemapper remap;
    PreprocessStats stats;
  };

  /// Run the pipeline. `clauses` is consumed; `xors` only pins its
  /// variables (they are implicitly frozen and reported Mapped — the
  /// caller re-adds the XOR constraints, folded through the remapper).
  /// `frozen` is indexed by variable (may be shorter than num_vars).
  static Result run(int num_vars, std::vector<std::vector<Lit>> clauses,
                    const std::vector<std::pair<std::vector<Var>, bool>>& xors,
                    const std::vector<char>& frozen,
                    const PreprocessConfig& cfg);
};

/// ProofSink adapter between an inner (preprocessed, densely renumbered)
/// solver and the caller's outer-numbering sink. Lives inside
/// PreprocessingSolver; inner literals are translated through the
/// remapper. Inner *axiom* events are forwarded as outer `add` ops while
/// the wrapper loads the preprocessed formula (each loaded clause — and
/// each clause of a folded XOR's CNF expansion — is RUP against the outer
/// stream at that point, which keeps file-based DRAT checkable), and as
/// translated axioms afterwards (a genuinely new input clause is an
/// axiom, exactly as in the unwrapped solver).
class RemapProofSink : public ProofSink {
 public:
  RemapProofSink(ProofSink* outer, const VarRemapper* remap)
      : outer_(outer), remap_(remap) {}

  /// While set, axiom() forwards as add() (the load phase — see above).
  void set_implied_axioms(bool implied) { implied_axioms_ = implied; }

  void axiom(const std::vector<Lit>& lits) override;
  void add(const std::vector<Lit>& lits) override;
  void del(const std::vector<Lit>& lits) override;

 private:
  const std::vector<Lit>& translate(const std::vector<Lit>& inner);

  ProofSink* outer_;
  const VarRemapper* remap_;
  bool implied_axioms_ = false;
  std::vector<Lit> buf_;
};

/// SolverInterface wrapper that preprocesses the formula before the first
/// solve() and renumbers it densely for the wrapped backend. Built by
/// SolverFactory::make when SolverConfig::preprocess is set. See the file
/// comment for the contract.
class PreprocessingSolver : public SolverInterface {
 public:
  /// Wraps the backend that `backend`/`base`/`portfolio` select (the
  /// inner backend is built lazily at the first solve, over the
  /// preprocessed formula; base.preprocess is ignored here — this *is*
  /// the preprocessing layer).
  PreprocessingSolver(SolverBackend backend, const SolverOptions& base,
                      const PortfolioOptions& portfolio = {});
  ~PreprocessingSolver() override;

  Var new_var() override;
  int num_vars() const override;
  bool add_clause(std::vector<Lit> lits) override;
  bool add_xor(std::vector<Var> vars, bool rhs) override;
  void freeze(Var v) override;
  void assume(Lit l) override;
  Status solve(const SolveLimits& limits = {}) override;
  LBool model(Var v) const override;
  const std::vector<Lit>& failed() const override { return failed_; }
  bool okay() const override;
  LBool fixed_value(Var v) const override;
  bool simplify() override;
  /// Run the preprocessing pipeline and build the inner backend now
  /// (instead of lazily at the first solve). The template-master idiom:
  /// prepare() once, then clone() workers that copy the built inner
  /// solver instead of re-running the front-end.
  void prepare() override;
  bool inprocess() override;
  std::size_t retained_bytes() const override;
  bool var_eliminated(Var v) const override;
  SolverStats stats() const override;
  std::size_t num_clauses() const override;
  std::size_t num_xors() const override;
  std::size_t num_learnts() const override;
  void set_tracer(obs::Tracer* tracer) override;
  std::unique_ptr<SolverInterface> clone() const override;

  /// Whether the front-end has run yet (it runs at the first solve()).
  bool preprocessed() const { return built_; }

  /// Stats of the preprocessing run (zeros before the first solve()).
  const PreprocessStats& preprocess_stats() const { return pstats_; }

  /// The outer->inner variable mapping (meaningful once preprocessed()).
  const VarRemapper& remapper() const { return remap_; }

  /// Eliminated variables re-introduced on demand by late clauses, XORs
  /// or assumptions (see the file comment).
  std::int64_t restored_vars() const { return restored_vars_; }

 private:
  PreprocessingSolver(const PreprocessingSolver& o);  // for clone()

  /// Run the preprocessor and construct the inner backend (first solve).
  void build(const SolveLimits& limits);
  /// Pre-build add_clause that skips the axiom hook (the constraint was
  /// already logged in another form, e.g. as an XOR expansion).
  bool add_clause_unlogged(std::vector<Lit> lits);
  void record_metrics() const;
  void proof_empty();
  /// Re-introduce a removed (Eliminated or Dropped) outer variable under
  /// a fresh inner index, re-adding its witness clauses and recursively
  /// restoring removed variables those clauses mention. No-op for
  /// Mapped/Fixed variables.
  void restore_outer(Var v);

  SolverBackend backend_;
  SolverOptions opts_;  ///< inner CDCL tunables; preprocess cleared
  PortfolioOptions popts_;

  bool built_ = false;
  bool ok_ = true;
  bool proof_empty_done_ = false;

  // --- pre-build buffers (outer numbering) ---
  Var next_var_ = 0;
  std::vector<std::vector<Lit>> pending_clauses_;
  std::vector<std::pair<std::vector<Var>, bool>> pending_xors_;
  std::vector<char> frozen_;
  std::vector<LBool> pending_fixed_;  ///< from buffered unit clauses

  // --- post-build state ---
  std::unique_ptr<SolverInterface> inner_;
  VarRemapper remap_;
  std::unique_ptr<RemapProofSink> proof_adapter_;
  PreprocessStats pstats_;
  std::int64_t restored_vars_ = 0;
  int restore_depth_ = 0;  ///< recursion depth of restore_outer()

  std::vector<Lit> assumptions_;  ///< outer, for the next solve only
  std::vector<Lit> failed_;       ///< outer
  std::vector<LBool> model_;      ///< outer, valid after Status::Sat
  std::vector<Lit> scratch_;
};

}  // namespace tp::sat
