#pragma once
// reference.hpp — brute-force reference solver for cross-checking.
//
// Enumerates all 2^n assignments of a Cnf (n capped at 30) and returns the
// satisfying ones. Only used by tests and by the didactic Figure-4
// reproduction, where the paper itself counts all 256 solutions of a
// 16-variable instance exhaustively.

#include <vector>

#include "sat/dimacs.hpp"

namespace tp::sat {

/// All satisfying assignments of `cnf`, each as a num_vars-length bool
/// vector, in lexicographic order (variable 0 = least significant).
/// Precondition: cnf.num_vars <= 30.
std::vector<std::vector<bool>> reference_all_models(const Cnf& cnf);

/// Count of satisfying assignments (same precondition).
std::uint64_t reference_model_count(const Cnf& cnf);

}  // namespace tp::sat
