#pragma once
// solver.hpp — a CDCL SAT solver with native XOR-constraint propagation.
//
// The solver is a from-scratch reimplementation of the algorithmic core the
// paper relies on (CryptoMiniSat [21]): conflict-driven clause learning with
// two-watched-literal propagation, 1UIP conflict analysis with clause
// minimization, EVSIDS branching, phase saving, Luby restarts and LBD-based
// learnt-clause database reduction — plus *native XOR constraints*
// propagated with a watched-variable scheme. XOR constraints are exactly
// what the timeprint reconstruction needs: each bit j of A·x = TP is one
// XOR clause over the signal variables (paper §4.2).
//
// Clause storage is a flat ClauseArena (arena.hpp): clauses are addressed
// by 32-bit ClauseRef offsets into one contiguous buffer, watchers carry a
// blocking literal next to the ref, and binary clauses skip the arena
// entirely — they live in per-literal implication lists, so propagating
// them touches no clause memory at all. A mark-and-compact GC run from
// reduce_db()/simplify() keeps the arena dense. simplify() additionally
// runs lightweight inprocessing: root-level clause vivification, paired
// with on-the-fly backward subsumption during conflict analysis; both emit
// the DRAT add/delete ops that keep proofs checkable.
//
// Usage:
//   Solver s;
//   Var a = s.new_var(), b = s.new_var();
//   s.add_clause({mk_lit(a), ~mk_lit(b)});
//   s.add_xor({a, b}, true);            // a XOR b = 1
//   Status st = s.solve();
//   if (st == Status::Sat) { ... s.model_value(a) ... }
//
// The solver is incremental in the AllSAT sense: after a Sat answer you may
// add further (e.g. blocking) clauses and call solve() again.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "f2/bitvec.hpp"
#include "obs/trace.hpp"
#include "sat/arena.hpp"
#include "sat/interface.hpp"
#include "sat/types.hpp"

namespace tp::sat {

class Auditor;     // audit.hpp — debug invariant auditor

/// An XOR constraint: the parity of the variables' values must equal rhs.
/// Propagated with two watched *variables* (an XOR constraint can only
/// become unit/conflicting once all but one of its variables are assigned).
struct XorConstraint {
  std::vector<Var> vars;  ///< distinct variables
  bool rhs = false;       ///< required parity
  std::size_t w0 = 0;     ///< index into vars of the first watched variable
  std::size_t w1 = 1;     ///< index into vars of the second watched variable
  std::size_t search_pos = 0;  ///< circular scan start for watch replacement
};

/// Tunable solver parameters (defaults follow MiniSat-era folklore). The
/// cross-layer knobs — Gauss engine, Gauss gate, tracer, proof sink — live
/// in the inherited sat::SolverConfig (interface.hpp), shared verbatim with
/// ReconstructionOptions; only the CDCL-specific tunables are declared
/// here. SolveLimits and SolverStats also moved to interface.hpp (they are
/// part of the abstract solver contract) and are re-exported unchanged.
struct SolverOptions : SolverConfig {
  double var_decay = 0.95;        ///< EVSIDS decay per conflict
  double clause_decay = 0.999;    ///< learnt-clause activity decay
  int restart_base = 100;         ///< conflicts per Luby unit
  int reduce_base = 4000;         ///< learnt clauses before first reduction
  int reduce_increment = 1000;    ///< growth of the reduction threshold
  bool phase_saving = true;       ///< remember last polarity per variable
  bool default_polarity = false;  ///< polarity used before any saving
  /// Root-level clause vivification inside simplify(): each stored clause
  /// is re-derived under assumed negations of its own literals, dropping
  /// literals (or the whole clause) that unit propagation proves
  /// redundant. Bounded by vivify_budget propagations per simplify() call,
  /// resuming round-robin where the previous call stopped.
  bool vivify = true;
  std::int64_t vivify_budget = 50000;
  /// XOR constraints longer than this are split into a chain of short XORs
  /// linked by fresh auxiliary parity variables (0 disables splitting).
  /// Short XORs keep watched-variable propagation and reason clauses cheap;
  /// without splitting, an m-variable reconstruction instance has XOR rows
  /// of ~m/2 variables and propagation dominates the runtime.
  std::size_t xor_chunk_size = 10;
  // Inherited from SolverConfig (see interface.hpp for full semantics):
  //
  //  * use_gauss / gauss_max_unassigned — the Gaussian elimination engine
  //    and its endgame gate. When the tracer is attached, every solve()
  //    emits a "solver.solve" span with its stats delta, each restart a
  //    "solver.restart" event, and the search loop emits sampled
  //    "solver.progress" / "solver.gauss" events (every 4096 conflicts /
  //    1024 eliminations, so tracing never dominates the inner loop).
  //  * proof — when attached, every input clause (and the CNF expansion of
  //    every attached XOR constraint) is reported as an axiom, every
  //    learnt clause and assumption-failure clause as an addition, and
  //    every clause dropped by reduce_db()/simplify()/inprocessing as a
  //    deletion, so an UNSAT answer can be certified by an independent
  //    checker. Restrictions: incompatible with use_gauss (the constructor
  //    throws — DRAT cannot express row-combination reasoning), disables
  //    xor_chunk_size splitting (XORs attach whole) and caps XOR arity at
  //    kProofMaxXorArity (add_xor throws above it). The sink serves
  //    exactly one solver — clone() detaches it from the copy.
};

/// Largest XOR arity (after level-0 canonicalization) accepted while proof
/// logging: the axiom stream carries the 2^(n-1)-clause CNF expansion.
inline constexpr std::size_t kProofMaxXorArity = 20;

/// CDCL SAT solver with XOR-constraint support. See file comment.
class Solver : public SolverInterface {
 public:
  Solver();
  explicit Solver(const SolverOptions& options);
  ~Solver() override;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Deep copy of the solver at decision level 0 (the state between
  /// solve() calls): variables, level-0 assignments, problem and learnt
  /// clauses, XOR constraints (watched and Gaussian, including each
  /// constraint's circular search_pos), activities, phases and watch lists
  /// are all duplicated, so the clone searches exactly as the original
  /// would. The clause arena is copied as one flat buffer — every
  /// ClauseRef stays valid in the copy, so cloning costs a few memcpys
  /// instead of a per-clause heap walk. Statistics start at zero in the
  /// clone. This is the branching point for cube-and-conquer workers:
  /// encode once, clone per cube, solve each clone under its guiding-path
  /// assumptions. An attached ProofSink does not travel (one sink, one
  /// solver); the thread-safe tracer is shared; pending assume() literals
  /// do not carry over.
  std::unique_ptr<Solver> clone_solver() const;

  /// SolverInterface clone — same deep copy, interface-typed.
  std::unique_ptr<SolverInterface> clone() const override {
    return clone_solver();
  }

  /// Create a fresh variable and return it.
  Var new_var() override;

  /// Number of variables created so far.
  int num_vars() const override { return static_cast<int>(assigns_.size()); }

  /// Add a disjunctive clause. Returns false iff the solver became
  /// trivially unsatisfiable (empty clause after level-0 simplification).
  /// Must be called at decision level 0 (which is always the case between
  /// solve() calls).
  bool add_clause(std::vector<Lit> lits) override;

  /// Add an XOR constraint over the given variables with the given parity.
  /// Duplicated variables cancel; variables already fixed at level 0 fold
  /// into the parity. Returns false iff trivially unsatisfiable.
  bool add_xor(std::vector<Var> vars, bool rhs) override;

  /// Queue an assumption for the next solve() call only (IPASIR idiom);
  /// equivalent to collecting the literals and calling solve_assuming.
  void assume(Lit l) override { pending_assumptions_.push_back(l); }

  /// Run the CDCL search. Returns Sat/Unsat, or Unknown when a limit hit.
  Status solve(const SolveLimits& limits = {}) override;

  /// Solve under assumptions: the given literals are fixed for this call
  /// only (decision levels 1..n). Unsat means "unsatisfiable together with
  /// the assumptions" — the solver stays usable and final_conflict()
  /// holds the subset of assumptions responsible (negated, as a clause).
  /// An unconditional Unsat (okay() turns false) can also surface.
  Status solve_assuming(const std::vector<Lit>& assumptions,
                        const SolveLimits& limits = {});

  /// After an assumption-Unsat: clause over the failed assumptions
  /// (each literal is the negation of a responsible assumption).
  const std::vector<Lit>& failed() const override { return final_conflict_; }

  /// Alias of failed() predating the IPASIR naming.
  const std::vector<Lit>& final_conflict() const { return final_conflict_; }

  /// After Status::Sat: the model value of a variable (never Undef).
  LBool model(Var v) const override {
    return model_[static_cast<std::size_t>(v)];
  }

  /// After Status::Sat: the model value of a variable / literal.
  LBool model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }
  LBool model_value(Lit l) const {
    LBool v = model_value(l.var());
    return l.negated() ? ~v : v;
  }

  /// False once the clause database is known unsatisfiable.
  bool okay() const override { return ok_; }

  /// Value of a variable fixed at decision level 0, or Undef.
  LBool fixed_value(Var v) const override;

  /// Lifetime statistics.
  SolverStats stats() const override { return stats_; }

  /// Attach (or detach) the event tracer consulted by solve()/search.
  void set_tracer(obs::Tracer* tracer) override { opts_.tracer = tracer; }

  /// Number of problem (non-learnt) clauses currently held, counting the
  /// binary clauses stored in the implication lists.
  std::size_t num_clauses() const override {
    return clauses_.size() + num_bin_problem_;
  }

  /// Number of XOR constraints currently held (watched + Gaussian rows).
  std::size_t num_xors() const override {
    return xors_.size() + gauss_raw_.size();
  }

  /// Number of learnt clauses currently held (the warm-start capital an
  /// incremental engine carries from one query to the next), counting
  /// learnt binaries.
  std::size_t num_learnts() const override {
    return learnts_.size() + num_bin_learnt_;
  }

  /// Portfolio clause sharing, export side: append up to `max_clauses` of
  /// the freshest learnt arena clauses with LBD <= max_lbd to `out` as
  /// (literals, LBD) pairs, in this solver's literal space. Learnt
  /// binaries are not exported (the implication lists carry no LBD).
  /// Returns the number appended.
  std::size_t export_learnts(
      std::uint32_t max_lbd, std::size_t max_clauses,
      std::vector<std::pair<std::vector<Lit>, std::uint32_t>>& out) const;

  /// Portfolio clause sharing, import side: attach a clause another member
  /// learnt from the *same formula* as a learnt clause here. Level 0 only.
  /// Refused (no-op, returns okay()) while a proof sink is attached — a
  /// foreign clause is not RUP in this solver's own derivation stream.
  /// Returns false iff the import made the solver unsatisfiable.
  bool import_learnt(std::vector<Lit> lits, std::uint32_t lbd);

  /// Bytes of the clause arena occupied by live clauses right now.
  std::size_t arena_bytes_live() const { return arena_.bytes_live(); }

  /// Root-level database simplification (MiniSat's simplify()): remove
  /// clauses satisfied by the level-0 assignment from both the problem and
  /// learnt databases and their watch lists, vivify stored clauses under
  /// the vivify options, and compact the clause arena when enough of it is
  /// dead. The workhorse of guard-literal retirement — once a run's guard
  /// g is fixed false, every blocking or learnt clause containing ¬g is
  /// root-satisfied ballast that would otherwise slow propagation for the
  /// rest of the solver's life. Clauses currently locked as a propagation
  /// reason are kept. Only callable between solves (decision level 0).
  /// Returns okay().
  bool simplify() override;

  /// simplify() plus one budgeted round of heavier root-level
  /// inprocessing (SolverOptions::inprocess_budget work units): backward
  /// subsumption of stored clauses against each other and failed-literal
  /// probing at the root (each failed probe becomes a DRAT-logged unit).
  /// Budget 0 degrades to plain simplify(). Only callable between solves.
  /// Returns okay().
  bool inprocess() override;

  /// Retained clause storage: live arena bytes plus the binary watch
  /// lists (the arena excludes binaries).
  std::size_t retained_bytes() const override;

  /// Attach (or detach, with null) an invariant auditor. The auditor is
  /// consulted at the search-loop checkpoints (post-propagate fixpoint,
  /// post-backtrack, post-simplify); it observes the solver read-only and
  /// throws AuditFailure on an invariant violation. Not owned; must outlive
  /// the solver. One auditor may serve many solvers (its counters are
  /// atomic), but a clone() starts detached. In debug builds (NDEBUG unset)
  /// a process-wide auditor is auto-attached at construction when the
  /// TP_SAT_AUDIT environment variable is set (see Auditor::debug_env).
  void set_auditor(Auditor* auditor) { audit_ = auditor; }
  Auditor* auditor() const { return audit_; }

 private:
  friend class Auditor;  // read-only invariant sweeps over the internals

  /// What implied a literal (or what a conflict arose in). Binary reasons
  /// and conflicts are self-contained — they store the partner literal(s)
  /// directly, so they never dangle across arena GC or implication-list
  /// sweeps.
  struct Reason {
    enum class Kind : std::uint8_t { None, Clause, Binary, Xor, Gauss };
    Kind kind = Kind::None;
    ClauseRef cref = kCRefUndef;   ///< Kind::Clause
    Lit other = lit_undef;         ///< Kind::Binary: the (false) partner
    XorConstraint* xr = nullptr;   ///< Kind::Xor

    bool none() const { return kind == Kind::None; }
    static Reason clause(ClauseRef c) {
      Reason r;
      r.kind = Kind::Clause;
      r.cref = c;
      return r;
    }
    static Reason binary(Lit other) {
      Reason r;
      r.kind = Kind::Binary;
      r.other = other;
      return r;
    }
    static Reason xor_c(XorConstraint* x) {
      Reason r;
      r.kind = Kind::Xor;
      r.xr = x;
      return r;
    }
    static Reason gauss() {
      Reason r;
      r.kind = Kind::Gauss;
      return r;
    }
  };

  /// Watch-list entry for clauses of three or more literals: the clause
  /// ref plus a blocking literal — when the blocker is already true the
  /// visit never touches clause memory.
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  /// Implication-list entry for binary clauses: for an entry q in
  /// bin_watches_[p.code()], the stored clause is (~p ∨ q) — p becoming
  /// true implies q directly, no arena access.
  struct BinWatcher {
    Lit other;
    std::uint32_t learnt;
  };

  struct VarData {
    Reason reason;
    int level = 0;
  };

  /// Mutable max-heap over variables ordered by EVSIDS activity.
  class VarOrderHeap {
   public:
    void grow(std::size_t n) { positions_.resize(n, -1); }
    bool empty() const { return heap_.empty(); }
    bool contains(Var v) const { return positions_[static_cast<std::size_t>(v)] >= 0; }
    void insert(Var v, const std::vector<double>& act);
    Var pop(const std::vector<double>& act);
    void increased(Var v, const std::vector<double>& act);

   private:
    void sift_up(std::size_t i, const std::vector<double>& act);
    void sift_down(std::size_t i, const std::vector<double>& act);
    std::vector<Var> heap_;
    std::vector<std::int32_t> positions_;
  };

  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  /// Literal values are kept in a code-indexed mirror of assigns_ so the
  /// propagation loop's dominant operation is one load with no sign fixup.
  LBool value(Lit l) const {
    return lit_assigns_[static_cast<std::size_t>(l.code())];
  }
  int level(Var v) const { return vardata_[static_cast<std::size_t>(v)].level; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void unchecked_enqueue(Lit l, Reason reason);
  bool enqueue(Lit l, Reason reason);

  /// Propagate all enqueued assignments. Returns the conflicting constraint
  /// (as a Reason) or an empty Reason when no conflict arose.
  Reason propagate();
  void bcp(Reason& conflict);
  bool propagate_xor(XorConstraint& x, Var assigned, Reason& conflict);
  /// Row-reduce the Gaussian XOR system under the current assignment.
  /// Enqueues implied literals (returns true if any) or sets `conflict`.
  bool gauss_propagate(Reason& conflict);
  void gauss_add_row(const std::vector<Var>& vars, bool rhs);

  void attach_clause(ClauseRef c);
  void detach_clause(ClauseRef c);
  void attach_binary(Lit a, Lit b, bool learnt);
  bool attach_xor(std::vector<Var> vars, bool rhs);

  void cancel_until(int lvl);
  Lit pick_branch_lit();

  /// 1UIP conflict analysis; fills `learnt` (asserting literal first) and
  /// returns the backtrack level.
  int analyze(Reason conflict, std::vector<Lit>& learnt);
  bool literal_redundant(Lit l);
  /// The literals of the constraint that implied `p` (p first). For XOR
  /// reasons the clause is materialized from the current assignment.
  void reason_literals(Lit p, Reason r, std::vector<Lit>& out) const;
  void conflict_literals(Reason r, std::vector<Lit>& out) const;

  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(ClauseRef c);
  void decay_clause_activity();
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);

  void reduce_db();
  bool locked(ClauseRef c) const;

  /// On-the-fly backward subsumption: after learning `learnt` from a
  /// clause conflict, delete the conflicting clause when the learnt clause
  /// is a strict subset of it (the conflict clause became redundant).
  void try_subsume_conflict(Reason conflict, const std::vector<Lit>& learnt);
  /// Root-level vivification over the problem clauses, resuming at the
  /// round-robin cursor, spending at most `budget` propagations.
  void vivify_round(std::int64_t budget);
  void subsume_round(std::int64_t budget);
  void probe_round(std::int64_t budget);
  /// Detach + proof-delete + free + erase from its database list.
  void remove_clause(ClauseRef c);

  /// Compact the arena when enough of it is dead: moves every live clause,
  /// then rewrites the database lists, the watcher refs and the reasons of
  /// all trail variables.
  void maybe_gc();
  void garbage_collect();

  /// The restart/search driver behind solve(), which wraps it with
  /// observability (span emission and metrics accounting).
  Status solve_main(const SolveLimits& limits);
  Status search(const SolveLimits& limits, std::int64_t conflict_budget,
                std::int64_t conflicts_at_start);
  /// Collect the assumptions responsible for forcing ~p (into
  /// final_conflict_, starting with p itself).
  void analyze_final(Lit p);

  // --- state ---
  SolverOptions opts_;
  bool ok_ = true;

  std::vector<LBool> assigns_;
  std::vector<LBool> lit_assigns_;  ///< indexed by Lit::code, mirrors assigns_
  std::vector<VarData> vardata_;
  std::vector<bool> polarity_;
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::unique_ptr<XorConstraint>> xors_;

  std::vector<std::vector<Watcher>> watches_;           // indexed by Lit::code
  std::vector<std::vector<BinWatcher>> bin_watches_;    // indexed by Lit::code
  std::size_t num_bin_problem_ = 0;
  std::size_t num_bin_learnt_ = 0;
  std::array<Lit, 2> bin_conflict_{lit_undef, lit_undef};
  std::vector<std::vector<XorConstraint*>> xor_watch_;  // indexed by Var

  VarOrderHeap order_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  std::vector<LBool> model_;
  SolverStats stats_;
  std::vector<Lit> assumptions_;
  std::vector<Lit> pending_assumptions_;  ///< assume() queue for next solve
  std::vector<Lit> final_conflict_;
  bool assumption_conflict_ = false;

  // --- certification hooks (no-ops when opts_.proof / audit_ are null) ---
  Auditor* audit_ = nullptr;
  bool proof_empty_done_ = false;  ///< the empty clause is emitted only once
  void proof_axiom(const std::vector<Lit>& lits);
  void proof_add(const std::vector<Lit>& lits);
  void proof_del(const std::vector<Lit>& lits);
  /// Deletion logged straight from the arena (no vector materialized).
  void proof_del_ref(ClauseRef c);
  /// Record the empty clause: the point where ok_ turns false is always a
  /// level-0 propagation conflict, from which the empty clause is RUP.
  void proof_empty();
  /// Emit the CNF expansion of an attached XOR constraint as axioms.
  void proof_xor_axioms(const std::vector<Var>& vars, bool rhs);

  // scratch buffers for analyze()
  std::vector<char> seen_;
  std::vector<Var> to_clear_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> reason_buf_;
  std::vector<Lit> redundant_buf_;  ///< literal_redundant()'s reason scratch
  std::vector<Lit> learnt_buf_;     ///< search()'s learnt-clause scratch
  std::vector<std::uint32_t> lbd_seen_;
  std::uint32_t lbd_stamp_ = 0;

  std::int64_t next_reduce_ = 0;
  int num_reduces_ = 0;
  std::size_t vivify_head_ = 0;  ///< round-robin cursor over clauses_
  std::size_t probe_head_ = 0;   ///< round-robin cursor over variables

  // --- Gaussian XOR engine state ---
  struct GaussRow {
    f2::BitVec mask;  ///< variable membership over the gauss column space
    bool rhs = false;
  };
  std::vector<GaussRow> gauss_rows_;
  std::vector<std::pair<std::vector<Var>, bool>> gauss_raw_;  ///< rows awaiting build
  bool gauss_dirty_ = false;
  std::vector<Var> gauss_cols_;  ///< column index -> variable
  std::unordered_map<Var, std::size_t> gauss_col_of_;
  std::vector<std::vector<Lit>> gauss_reason_of_var_;  ///< reason per implied var
  std::vector<Lit> gauss_conflict_;                    ///< materialized conflict
};

/// The Luby restart sequence value luby(y, i) scaled by y (1-based i).
double luby(double y, int i);

}  // namespace tp::sat
