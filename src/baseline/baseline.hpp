#pragma once
// baseline.hpp — the conventional cycle-accurate tracing schemes the paper
// compares against (§1, §3).
//
// Two baselines:
//  * RawWaveformLogger — capture one bit per clock cycle (logic-analyzer
//    style): m bits per trace-cycle, lossless, "easily exceeds several
//    Gigabytes per second" at SoC clock rates.
//  * EventLogger — log the precise timestamp of every value change
//    (trace-buffer style): k·ceil(log2 m) bits per trace-cycle. Lossless,
//    but the rate varies with k, bursts can overrun any fixed-rate link
//    (max m/log2(m) events per trace-cycle over a 1-bit pin), and the
//    variable framing makes the stream hard to search.
//
// Both reconstruct exactly (they are not abstractions), which is what
// makes their cost the fair comparison point for the timeprint's constant
// b + log2(m) bits. bench_storage regenerates the paper's motivating
// numbers from these models.

#include <cstdint>
#include <vector>

#include "timeprint/encoding.hpp"
#include "timeprint/signal.hpp"

namespace tp::baseline {

/// Raw per-cycle capture: m bits per trace-cycle regardless of activity.
class RawWaveformLogger {
 public:
  explicit RawWaveformLogger(std::size_t m) : m_(m) {}

  /// Record one trace-cycle.
  void log(const core::Signal& signal);

  /// Recorded trace-cycles.
  const std::vector<core::Signal>& windows() const { return windows_; }

  /// Exact reconstruction is the identity.
  const core::Signal& reconstruct(std::size_t index) const { return windows_[index]; }

  /// Total bits stored so far.
  std::size_t total_bits() const { return windows_.size() * m_; }

  /// Bits per second for a signal clocked at clock_hz (independent of k).
  static double rate_bps(std::size_t /*m*/, double clock_hz) { return clock_hz; }

 private:
  std::size_t m_;
  std::vector<core::Signal> windows_;
};

/// One trace-cycle of precise change timestamps.
struct EventRecord {
  std::vector<std::size_t> change_cycles;  ///< ascending, 0-based
};

/// Precise event logging: k timestamps of ceil(log2 m) bits each.
class EventLogger {
 public:
  explicit EventLogger(std::size_t m) : m_(m) {}

  /// Record one trace-cycle.
  void log(const core::Signal& signal);

  const std::vector<EventRecord>& records() const { return records_; }

  /// Exact reconstruction from the stored timestamps.
  core::Signal reconstruct(std::size_t index) const;

  /// Bits per change event: ceil(log2 m) for the timestamp.
  std::size_t bits_per_event() const;

  /// Total bits stored so far (sum of k_i x bits_per_event; the per-window
  /// k field itself, log2(m) bits, is charged too so the stream is
  /// self-delimiting).
  std::size_t total_bits() const;

  /// Expected bits per second at the given clock rate and change density
  /// (changes per cycle in [0, 1]).
  static double rate_bps(std::size_t m, double clock_hz, double change_density);

  /// Maximum events per trace-cycle that a 1-bit/cycle logging pin can
  /// sustain: m / log2(m) (paper §3's pin argument).
  static double max_loggable_events(std::size_t m);

 private:
  std::size_t m_;
  std::vector<EventRecord> records_;
};

/// Storage-rate summary for one scheme/workload combination.
struct StorageRate {
  const char* scheme;
  double bits_per_second;
};

/// The three schemes' sustained rates for a signal at `clock_hz` with the
/// given change density, using timeprint parameters (m, b).
std::vector<StorageRate> compare_rates(std::size_t m, std::size_t b,
                                       double clock_hz, double change_density);

}  // namespace tp::baseline
