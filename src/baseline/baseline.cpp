#include "baseline/baseline.hpp"

#include <cassert>

#include "timeprint/design.hpp"

namespace tp::baseline {

void RawWaveformLogger::log(const core::Signal& signal) {
  assert(signal.length() == m_);
  windows_.push_back(signal);
}

void EventLogger::log(const core::Signal& signal) {
  assert(signal.length() == m_);
  records_.push_back({signal.change_cycles()});
}

core::Signal EventLogger::reconstruct(std::size_t index) const {
  return core::Signal::from_change_cycles(m_, records_[index].change_cycles);
}

std::size_t EventLogger::bits_per_event() const { return core::counter_bits(m_ - 1); }

std::size_t EventLogger::total_bits() const {
  std::size_t bits = 0;
  for (const EventRecord& r : records_) {
    bits += core::counter_bits(m_);  // the per-window event count
    bits += r.change_cycles.size() * bits_per_event();
  }
  return bits;
}

double EventLogger::rate_bps(std::size_t m, double clock_hz, double change_density) {
  const double events_per_second = clock_hz * change_density;
  const double count_overhead =
      static_cast<double>(core::counter_bits(m)) * clock_hz / static_cast<double>(m);
  return events_per_second * static_cast<double>(core::counter_bits(m - 1)) +
         count_overhead;
}

double EventLogger::max_loggable_events(std::size_t m) {
  return static_cast<double>(m) / static_cast<double>(core::counter_bits(m - 1));
}

std::vector<StorageRate> compare_rates(std::size_t m, std::size_t b,
                                       double clock_hz, double change_density) {
  return {
      {"raw waveform", RawWaveformLogger::rate_bps(m, clock_hz)},
      {"event log", EventLogger::rate_bps(m, clock_hz, change_density)},
      {"timeprint", core::log_rate_bps(m, b, clock_hz)},
  };
}

}  // namespace tp::baseline
