# Empty compiler generated dependencies file for bench_ablation_xor.
# This may be replaced when dependencies are built.
