file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xor.dir/bench_ablation_xor.cpp.o"
  "CMakeFiles/bench_ablation_xor.dir/bench_ablation_xor.cpp.o.d"
  "bench_ablation_xor"
  "bench_ablation_xor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
