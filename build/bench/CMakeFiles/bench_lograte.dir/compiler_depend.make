# Empty compiler generated dependencies file for bench_lograte.
# This may be replaced when dependencies are built.
