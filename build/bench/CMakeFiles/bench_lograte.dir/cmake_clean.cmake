file(REMOVE_RECURSE
  "CMakeFiles/bench_lograte.dir/bench_lograte.cpp.o"
  "CMakeFiles/bench_lograte.dir/bench_lograte.cpp.o.d"
  "bench_lograte"
  "bench_lograte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lograte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
