file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_card.dir/bench_ablation_card.cpp.o"
  "CMakeFiles/bench_ablation_card.dir/bench_ablation_card.cpp.o.d"
  "bench_ablation_card"
  "bench_ablation_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
