# Empty dependencies file for bench_ablation_card.
# This may be replaced when dependencies are built.
