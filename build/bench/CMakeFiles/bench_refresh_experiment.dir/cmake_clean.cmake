file(REMOVE_RECURSE
  "CMakeFiles/bench_refresh_experiment.dir/bench_refresh_experiment.cpp.o"
  "CMakeFiles/bench_refresh_experiment.dir/bench_refresh_experiment.cpp.o.d"
  "bench_refresh_experiment"
  "bench_refresh_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
