# Empty compiler generated dependencies file for bench_refresh_experiment.
# This may be replaced when dependencies are built.
