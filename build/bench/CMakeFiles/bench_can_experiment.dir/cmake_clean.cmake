file(REMOVE_RECURSE
  "CMakeFiles/bench_can_experiment.dir/bench_can_experiment.cpp.o"
  "CMakeFiles/bench_can_experiment.dir/bench_can_experiment.cpp.o.d"
  "bench_can_experiment"
  "bench_can_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_can_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
