# Empty compiler generated dependencies file for bench_can_experiment.
# This may be replaced when dependencies are built.
