
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeprint/archive.cpp" "src/timeprint/CMakeFiles/tp_core.dir/archive.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/archive.cpp.o.d"
  "/root/repo/src/timeprint/design.cpp" "src/timeprint/CMakeFiles/tp_core.dir/design.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/design.cpp.o.d"
  "/root/repo/src/timeprint/encoding.cpp" "src/timeprint/CMakeFiles/tp_core.dir/encoding.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/encoding.cpp.o.d"
  "/root/repo/src/timeprint/galois.cpp" "src/timeprint/CMakeFiles/tp_core.dir/galois.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/galois.cpp.o.d"
  "/root/repo/src/timeprint/joint.cpp" "src/timeprint/CMakeFiles/tp_core.dir/joint.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/joint.cpp.o.d"
  "/root/repo/src/timeprint/logger.cpp" "src/timeprint/CMakeFiles/tp_core.dir/logger.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/logger.cpp.o.d"
  "/root/repo/src/timeprint/metrics.cpp" "src/timeprint/CMakeFiles/tp_core.dir/metrics.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/metrics.cpp.o.d"
  "/root/repo/src/timeprint/multi.cpp" "src/timeprint/CMakeFiles/tp_core.dir/multi.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/multi.cpp.o.d"
  "/root/repo/src/timeprint/parse.cpp" "src/timeprint/CMakeFiles/tp_core.dir/parse.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/parse.cpp.o.d"
  "/root/repo/src/timeprint/properties.cpp" "src/timeprint/CMakeFiles/tp_core.dir/properties.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/properties.cpp.o.d"
  "/root/repo/src/timeprint/reconstruct.cpp" "src/timeprint/CMakeFiles/tp_core.dir/reconstruct.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/reconstruct.cpp.o.d"
  "/root/repo/src/timeprint/signal.cpp" "src/timeprint/CMakeFiles/tp_core.dir/signal.cpp.o" "gcc" "src/timeprint/CMakeFiles/tp_core.dir/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/f2/CMakeFiles/tp_f2.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/tp_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
