file(REMOVE_RECURSE
  "CMakeFiles/tp_core.dir/archive.cpp.o"
  "CMakeFiles/tp_core.dir/archive.cpp.o.d"
  "CMakeFiles/tp_core.dir/design.cpp.o"
  "CMakeFiles/tp_core.dir/design.cpp.o.d"
  "CMakeFiles/tp_core.dir/encoding.cpp.o"
  "CMakeFiles/tp_core.dir/encoding.cpp.o.d"
  "CMakeFiles/tp_core.dir/galois.cpp.o"
  "CMakeFiles/tp_core.dir/galois.cpp.o.d"
  "CMakeFiles/tp_core.dir/joint.cpp.o"
  "CMakeFiles/tp_core.dir/joint.cpp.o.d"
  "CMakeFiles/tp_core.dir/logger.cpp.o"
  "CMakeFiles/tp_core.dir/logger.cpp.o.d"
  "CMakeFiles/tp_core.dir/metrics.cpp.o"
  "CMakeFiles/tp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/tp_core.dir/multi.cpp.o"
  "CMakeFiles/tp_core.dir/multi.cpp.o.d"
  "CMakeFiles/tp_core.dir/parse.cpp.o"
  "CMakeFiles/tp_core.dir/parse.cpp.o.d"
  "CMakeFiles/tp_core.dir/properties.cpp.o"
  "CMakeFiles/tp_core.dir/properties.cpp.o.d"
  "CMakeFiles/tp_core.dir/reconstruct.cpp.o"
  "CMakeFiles/tp_core.dir/reconstruct.cpp.o.d"
  "CMakeFiles/tp_core.dir/signal.cpp.o"
  "CMakeFiles/tp_core.dir/signal.cpp.o.d"
  "libtp_core.a"
  "libtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
