file(REMOVE_RECURSE
  "CMakeFiles/tp_sat.dir/allsat.cpp.o"
  "CMakeFiles/tp_sat.dir/allsat.cpp.o.d"
  "CMakeFiles/tp_sat.dir/cardinality.cpp.o"
  "CMakeFiles/tp_sat.dir/cardinality.cpp.o.d"
  "CMakeFiles/tp_sat.dir/dimacs.cpp.o"
  "CMakeFiles/tp_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/tp_sat.dir/reference.cpp.o"
  "CMakeFiles/tp_sat.dir/reference.cpp.o.d"
  "CMakeFiles/tp_sat.dir/solver.cpp.o"
  "CMakeFiles/tp_sat.dir/solver.cpp.o.d"
  "CMakeFiles/tp_sat.dir/xor_to_cnf.cpp.o"
  "CMakeFiles/tp_sat.dir/xor_to_cnf.cpp.o.d"
  "libtp_sat.a"
  "libtp_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
