
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/allsat.cpp" "src/sat/CMakeFiles/tp_sat.dir/allsat.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/allsat.cpp.o.d"
  "/root/repo/src/sat/cardinality.cpp" "src/sat/CMakeFiles/tp_sat.dir/cardinality.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/cardinality.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/sat/CMakeFiles/tp_sat.dir/dimacs.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/dimacs.cpp.o.d"
  "/root/repo/src/sat/reference.cpp" "src/sat/CMakeFiles/tp_sat.dir/reference.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/reference.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/sat/CMakeFiles/tp_sat.dir/solver.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/solver.cpp.o.d"
  "/root/repo/src/sat/xor_to_cnf.cpp" "src/sat/CMakeFiles/tp_sat.dir/xor_to_cnf.cpp.o" "gcc" "src/sat/CMakeFiles/tp_sat.dir/xor_to_cnf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/f2/CMakeFiles/tp_f2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
