file(REMOVE_RECURSE
  "libtp_sat.a"
)
