# Empty dependencies file for tp_sat.
# This may be replaced when dependencies are built.
