# Empty compiler generated dependencies file for tp_can.
# This may be replaced when dependencies are built.
