
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/bus.cpp" "src/can/CMakeFiles/tp_can.dir/bus.cpp.o" "gcc" "src/can/CMakeFiles/tp_can.dir/bus.cpp.o.d"
  "/root/repo/src/can/forensics.cpp" "src/can/CMakeFiles/tp_can.dir/forensics.cpp.o" "gcc" "src/can/CMakeFiles/tp_can.dir/forensics.cpp.o.d"
  "/root/repo/src/can/frame.cpp" "src/can/CMakeFiles/tp_can.dir/frame.cpp.o" "gcc" "src/can/CMakeFiles/tp_can.dir/frame.cpp.o.d"
  "/root/repo/src/can/traffic.cpp" "src/can/CMakeFiles/tp_can.dir/traffic.cpp.o" "gcc" "src/can/CMakeFiles/tp_can.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeprint/CMakeFiles/tp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/tp_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/f2/CMakeFiles/tp_f2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
